package vmmk

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesCompile type-checks and compiles every example main without
// running it. Unlike TestExamplesRun it is cheap enough to keep in -short
// mode, so a broken example can never slip through a quick test cycle.
func TestExamplesCompile(t *testing.T) {
	out, err := exec.Command("go", "build", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("examples no longer compile: %v\n%s", err, out)
	}
}

// TestQuickstartRuns runs the quickstart example end-to-end — it terminates
// in well under a second, so it stays enabled even in -short mode.
func TestQuickstartRuns(t *testing.T) {
	out, err := exec.Command("go", "run", "./examples/quickstart").CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "IPC-equivalent ops") {
		t.Fatalf("quickstart output missing marker:\n%s", out)
	}
}

// TestExamplesRun builds and runs every example program, checking each
// completes successfully and prints its expected marker line. This keeps
// the documentation-facing code from rotting.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs six example binaries")
	}
	cases := []struct {
		dir     string
		markers []string
	}{
		{"quickstart", []string{"IPC-equivalent ops"}},
		{"ioserver", []string{"driver-domain CPU"}},
		{"faultlab", []string{"blast radius"}},
		{"portability", []string{"nine architectures"}},
		{"migration", []string{"memory travels whole", "live pre-copy blacked out"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+c.dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, marker := range c.markers {
				if !strings.Contains(string(out), marker) {
					t.Fatalf("output missing marker %q:\n%s", marker, out)
				}
			}
		})
	}
}
