package vmmk

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example program, checking each
// completes successfully and prints its expected marker line. This keeps
// the documentation-facing code from rotting.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs six example binaries")
	}
	cases := []struct {
		dir    string
		marker string
	}{
		{"quickstart", "IPC-equivalent ops"},
		{"ioserver", "driver-domain CPU"},
		{"faultlab", "blast radius"},
		{"portability", "nine architectures"},
		{"migration", "memory travels whole"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+c.dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), c.marker) {
				t.Fatalf("output missing marker %q:\n%s", c.marker, out)
			}
		})
	}
}
