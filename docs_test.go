package vmmk

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"vmmk/internal/core"
)

// updateDocs regenerates the registry-generated block in EXPERIMENTS.md:
// go test -run TestExperimentsRegistryTableCurrent -update-docs .
var updateDocs = flag.Bool("update-docs", false, "rewrite generated doc sections")

// TestExperimentsRegistryTableCurrent pins the generated experiment/
// parameter table in EXPERIMENTS.md to core.RegistryMarkdown(): the docs
// can never drift from the registry — registering a new experiment or
// changing a parameter default fails this test until the table is
// regenerated with -update-docs.
func TestExperimentsRegistryTableCurrent(t *testing.T) {
	const file = "EXPERIMENTS.md"
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	begin := strings.Index(text, "<!-- registry:begin")
	end := strings.Index(text, "<!-- registry:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("%s: registry markers missing or out of order", file)
	}
	close := strings.Index(text[begin:end], "-->")
	if close < 0 {
		t.Fatalf("%s: unterminated registry:begin comment", file)
	}
	blockStart := begin + close + len("-->\n")
	want := core.RegistryMarkdown()
	if got := text[blockStart:end]; got != want {
		if *updateDocs {
			if err := os.WriteFile(file, []byte(text[:blockStart]+want+text[end:]), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		t.Errorf("%s: generated registry table is stale; run\n  go test -run TestExperimentsRegistryTableCurrent -update-docs .\ngot:\n%s\nwant:\n%s", file, got, want)
	}
}

// TestDocsMarkdownLinks is the docs-CI link check: every relative link in
// every tracked *.md file must resolve to a file or directory in the
// repository. External URLs are left alone (CI must not depend on the
// network), and intra-document anchors are accepted as long as the file
// half resolves.
func TestDocsMarkdownLinks(t *testing.T) {
	mdFiles, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found at the repository root")
	}
	// [text](target) — good enough for the hand-written docs here; code
	// spans containing brackets don't produce false matches in practice
	// because the target must also parse as a path.
	link := regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range link.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not checked offline
			}
			if strings.HasPrefix(target, "/") {
				// Absolute paths only appear when quoting other
				// repositories' layouts (SNIPPETS.md); they are not links
				// into this repository.
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue // pure anchor into the same document
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s: broken relative link %q", md, m[1])
			}
		}
	}
}

// TestDocsExportedSymbolsDocumented enforces the documentation contract
// the docs CI job gates on: every exported top-level symbol in internal/...
// carries a doc comment. go vet checks comment *form* (the name must lead);
// this test checks *presence*, which vet deliberately does not.
func TestDocsExportedSymbolsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	err := filepath.WalkDir("internal", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		pos := func(n ast.Node) string { return fset.Position(n.Pos()).String() }
		for _, decl := range f.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				// Methods on unexported receivers never surface in go
				// doc, so only exported receivers are held to the rule.
				if dd.Recv != nil && !exportedReceiver(dd.Recv) {
					continue
				}
				if dd.Name.IsExported() && dd.Doc.Text() == "" {
					t.Errorf("%s: exported func %s has no doc comment", pos(dd), dd.Name.Name)
				}
			case *ast.GenDecl:
				// A doc comment on the grouped decl covers its specs
				// (the idiom const/var blocks here use).
				groupDoc := dd.Doc.Text() != ""
				for _, spec := range dd.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !groupDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
							t.Errorf("%s: exported type %s has no doc comment", pos(s), s.Name.Name)
						}
					case *ast.ValueSpec:
						if !groupDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
							for _, name := range s.Names {
								if name.IsExported() {
									t.Errorf("%s: exported %s %s has no doc comment",
										pos(s), dd.Tok, name.Name)
								}
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// exportedReceiver reports whether a method's receiver names an exported
// type (unwrapping pointers and generic instantiations).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.IndexListExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
