// Command tracedump boots one platform with event logging enabled, runs a
// small canned workload, and dumps the raw kernel-event trace — the tool
// you reach for when a table in vmmklab looks wrong and you want to see
// every boundary crossing with its cycle timestamp.
//
// Usage:
//
//	tracedump [-platform mk|vmm] [-packets n] [-syscalls n] [-last n]
package main

import (
	"flag"
	"fmt"
	"os"

	"vmmk/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracedump", flag.ContinueOnError)
	platform := fs.String("platform", "vmm", "which stack to trace: mk or vmm")
	packets := fs.Int("packets", 3, "RX packets to run")
	syscalls := fs.Int("syscalls", 3, "syscalls to run")
	last := fs.Int("last", 200, "print only the last n events (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.Config{LogCap: 65536}
	var p core.Platform
	var err error
	switch *platform {
	case "mk":
		p, err = core.NewMKStack(cfg)
	case "vmm":
		p, err = core.NewXenStack(cfg)
	default:
		return fmt.Errorf("unknown platform %q", *platform)
	}
	if err != nil {
		return err
	}

	for i := 0; i < *syscalls; i++ {
		if err := p.DoSyscall(0, 1, 0); err != nil {
			return err
		}
	}
	p.InjectPackets(*packets, 256, 0)
	p.DrainRx(0)
	if err := p.StorageWrite(0, 1, []byte("trace")); err != nil {
		return err
	}

	rec := p.M().Rec
	fmt.Printf("platform: %s  packets: %d  syscalls: %d\n\n", p.Name(), *packets, *syscalls)
	fmt.Println(rec.Summary())
	log := rec.Log()
	if *last > 0 && len(log) > *last {
		log = log[len(log)-*last:]
	}
	fmt.Printf("event log (last %d entries):\n", len(log))
	for _, r := range log {
		fmt.Printf("  %12d  %-18s %-14s %6d cyc", r.At, r.Kind, r.Component, r.Cycles)
		if r.Count > 1 {
			fmt.Printf("  x%d", r.Count)
		}
		fmt.Println()
	}
	return nil
}
