package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestDumpVMM(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-platform", "vmm", "-packets", "2", "-syscalls", "1", "-last", "20"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"platform: vmm", "events:", "cycles:", "event log", "vmm.pageflip"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestDumpMK(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-platform", "mk", "-packets", "1", "-syscalls", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ipc.call") {
		t.Errorf("mk dump missing IPC events:\n%s", out[:200])
	}
}

func TestBadPlatform(t *testing.T) {
	if err := run([]string{"-platform", "hurd"}); err == nil {
		t.Fatal("unknown platform accepted")
	}
}
