// Command vmmklint is the simulator's domain-specific multichecker: it runs
// the internal/lint analyzer suite (detrand, maporder, tracecomp, boundedgo,
// regspec) over the given package patterns and exits non-zero on any
// finding. CI runs `go run ./cmd/vmmklint ./...` on every push; the repo
// must stay clean.
//
// Usage:
//
//	go run ./cmd/vmmklint [-json] [packages]
//
// With no patterns it checks ./... relative to the current directory.
// Findings print as file:line:col: message (analyzer); -json emits one JSON
// object per finding instead. A finding can be suppressed with a
// `//vmmklint:ignore <reason>` comment on the same line or the line above —
// the reason is mandatory and the escape hatch is for the rare site where
// the rule is deliberately broken (see DESIGN.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vmmk/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vmmklint [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Machine-checks the simulator's determinism and charging invariants.\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmmklint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(lint.All(), pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmmklint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		if *jsonOut {
			b, err := json.Marshal(d)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vmmklint:", err)
				os.Exit(2)
			}
			fmt.Println(string(b))
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
