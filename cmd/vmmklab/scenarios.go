package main

import (
	"fmt"
	"strings"

	"vmmk/internal/core"
	"vmmk/internal/scenario"
)

// runScenarios is the `vmmklab scenarios` subcommand: the fault-injection
// scenario matrix (internal/scenario). With no further arguments it runs
// the whole matrix; `scenarios list` prints the declared rows without
// running anything; -run selects a comma-separated subset; -shuffle runs
// the whole matrix in a seeded pseudo-random order, proving no row depends
// on its neighbours' pool residue. Output goes through the same
// text/CSV/JSON renderers as the experiments. Any failing row makes the
// command return an error (nonzero exit) — this is what the CI scenarios
// job keys on.
func runScenarios(positional []string, runIDs string, shuffle uint64, parallel int, csv, jsonOut bool) error {
	list := false
	for _, a := range positional {
		switch a {
		case "list":
			list = true
		default:
			return fmt.Errorf("unknown scenarios argument %q (try 'scenarios list' or -run <ids>)", a)
		}
	}
	if shuffle != 0 && (list || runIDs != "") {
		return fmt.Errorf("usage: -shuffle runs the whole matrix; it cannot combine with list or -run")
	}

	var res *core.Result
	var failed int
	if list {
		res = scenario.ListReport()
	} else {
		var ids []string
		if shuffle != 0 {
			ids = scenario.ShuffledIDs(shuffle)
		}
		if runIDs != "" {
			for _, id := range strings.Split(runIDs, ",") {
				if id = strings.TrimSpace(id); id != "" {
					ids = append(ids, id)
				}
			}
		}
		results, err := scenario.Run(scenario.Options{Parallel: parallel, IDs: ids})
		if err != nil {
			return err
		}
		_, failed, _ = scenario.Summarize(results)
		res = scenario.Report(results)
	}

	switch {
	case jsonOut:
		b, err := res.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	case csv:
		fmt.Printf("== %s: %s ==\n", res.Experiment, res.Title)
		fmt.Print(res.CSV())
	default:
		fmt.Printf("== %s: %s ==\n", res.Experiment, res.Title)
		fmt.Print(res.Text())
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(res.Tables[0].Rows))
	}
	return nil
}
