// Command vmmklab runs the paper-reproduction experiments and prints their
// result tables.
//
// Usage:
//
//	vmmklab [flags] <experiment>...
//	vmmklab all
//	vmmklab list
//
// Experiments are e1 through e12 (see EXPERIMENTS.md for the index). Flags
// may appear before or after experiment names (vmmklab e12 -cpus 2 works):
//
//	-packets n   packet count for E1 sweeps (default 100)
//	-syscalls n  iteration count for E3/E7 (default 200)
//	-guests n    guest count for E4 (default 3)
//	-requests n  request count for E8 (default 50)
//	-frames n    guest memory pages for E11 migrations (default 96)
//	-rounds n    max pre-copy round budget for E11 (default 4)
//	-dirty n     peak dirty rate (pages/round) for E11 (default 48)
//	-cpus list   comma-separated core counts for the E12 SMP sweep
//	             (default 1,2,4,8)
//	-parallel n  max experiment cells in flight (default GOMAXPROCS)
//	-csv         emit CSV instead of aligned tables
//
// Every parameter flag must be positive (each -cpus entry likewise); zero
// or negative values are usage errors, not silent clamps.
//
// Every experiment decomposes into independent cells — one simulated
// machine per (platform, parameter-point) pair — which fan out across
// -parallel workers. Results are deterministic: any -parallel value
// produces byte-identical tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"vmmk/internal/core"
	"vmmk/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vmmklab:", err)
		os.Exit(1)
	}
}

// maxCPUs bounds the E12 sweep; the simulation is exact, not sampled, so a
// four-digit core count is a typo, not an experiment.
const maxCPUs = 64

// parseCPUList parses the -cpus flag: comma-separated positive core
// counts, each at most maxCPUs.
func parseCPUList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("usage: -cpus entries must be integers (got %q)", part)
		}
		if n < 1 {
			return nil, fmt.Errorf("usage: -cpus entries must be positive (got %d)", n)
		}
		if n > maxCPUs {
			return nil, fmt.Errorf("usage: -cpus entries must be at most %d (got %d)", maxCPUs, n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("usage: -cpus needs at least one core count")
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("vmmklab", flag.ContinueOnError)
	packets := fs.Int("packets", 100, "packet count for E1 sweeps")
	syscalls := fs.Int("syscalls", 200, "iteration count for E3/E7/E10")
	guests := fs.Int("guests", 3, "guest count for E4")
	requests := fs.Int("requests", 50, "request count for E8")
	frames := fs.Int("frames", 96, "guest memory pages for E11 migrations")
	rounds := fs.Int("rounds", 4, "max pre-copy round budget for E11")
	dirty := fs.Int("dirty", 48, "peak dirty rate (pages/round) for E11")
	cpus := fs.String("cpus", "1,2,4,8", "comma-separated core counts for the E12 SMP sweep")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "max experiment cells in flight")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	// Accept flags on either side of experiment names ("vmmklab e12 -cpus
	// 2" reads naturally): parse, peel off leading positionals, and keep
	// parsing whatever remains. The flag package's conventions survive
	// the loop: a standalone "--" ends flag parsing for everything after
	// it, and a lone "-" is an ordinary (non-flag) argument.
	var positional, tail []string
	rest := args
	for i, a := range args {
		if a == "--" {
			rest = args[:i]
			tail = args[i+1:]
			break
		}
	}
	for {
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rest = fs.Args()
		for len(rest) > 0 && (rest[0] == "-" || !strings.HasPrefix(rest[0], "-")) {
			positional = append(positional, rest[0])
			rest = rest[1:]
		}
		if len(rest) == 0 {
			break
		}
	}
	positional = append(positional, tail...)
	// Every experiment parameter must be positive: a zero or negative
	// count is a usage error, never a panic or a silent clamp.
	// (-parallel is engine config, not an experiment parameter: <= 0
	// falls back to GOMAXPROCS by design.)
	for _, p := range []struct {
		name  string
		value int
	}{
		{"packets", *packets},
		{"syscalls", *syscalls},
		{"guests", *guests},
		{"requests", *requests},
		{"frames", *frames},
		{"rounds", *rounds},
		{"dirty", *dirty},
	} {
		if p.value < 1 {
			fs.Usage()
			return fmt.Errorf("usage: -%s must be positive (got %d)", p.name, p.value)
		}
	}
	cpuCounts, err := parseCPUList(*cpus)
	if err != nil {
		fs.Usage()
		return err
	}
	if len(positional) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given; try 'vmmklab list'")
	}

	eng := core.NewRunner(*parallel)

	emit := func(t *trace.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
	}

	runners := map[string]func() error{
		"e1": func() error {
			cfg := core.E1Defaults()
			cfg.Packets = *packets
			rows, err := eng.E1(cfg)
			if err != nil {
				return err
			}
			emit(core.E1Table(rows))
			return nil
		},
		"e2": func() error {
			rows, err := eng.E2()
			if err != nil {
				return err
			}
			emit(core.E2Table(rows))
			return nil
		},
		"e3": func() error {
			rows, err := eng.E3(*syscalls)
			if err != nil {
				return err
			}
			emit(core.E3Table(rows))
			return nil
		},
		"e4": func() error {
			rows, err := eng.E4(*guests)
			if err != nil {
				return err
			}
			emit(core.E4Table(rows))
			return nil
		},
		"e5": func() error {
			rows, err := eng.E5()
			if err != nil {
				return err
			}
			emit(core.E5Table(rows))
			return nil
		},
		"e6": func() error {
			rows, err := eng.E6()
			if err != nil {
				return err
			}
			emit(core.E6Table(rows))
			return nil
		},
		"e7": func() error {
			rows, err := eng.E7(*syscalls)
			if err != nil {
				return err
			}
			emit(core.E7Table(rows))
			return nil
		},
		"e8": func() error {
			rows, err := eng.E8(*requests)
			if err != nil {
				return err
			}
			emit(core.E8Table(rows))
			return nil
		},
		"e9": func() error {
			rows, err := eng.E9()
			if err != nil {
				return err
			}
			emit(core.E9Table(rows))
			return nil
		},
		"e10": func() error {
			rows, err := eng.E10(*syscalls)
			if err != nil {
				return err
			}
			emit(core.E10Table(rows))
			return nil
		},
		"e11": func() error {
			low := *dirty / 6
			if low < 1 {
				low = 1
			}
			cfg := core.E11Config{
				Frames:     *frames,
				DirtyRates: []int{0, low, *dirty},
				Budgets:    []int{0, 1, *rounds},
				Cutoff:     2,
			}
			rows, err := eng.E11(cfg)
			if err != nil {
				return err
			}
			emit(core.E11Table(rows))
			return nil
		},
		"e12": func() error {
			cfg := core.E12Defaults()
			cfg.CPUCounts = cpuCounts
			rows, err := eng.E12(cfg)
			if err != nil {
				return err
			}
			emit(core.E12Table(rows))
			return nil
		},
	}

	var ids []string
	for _, a := range positional {
		switch a {
		case "all":
			for _, e := range core.Experiments() {
				ids = append(ids, e.ID)
			}
		case "list":
			for _, e := range core.Experiments() {
				fmt.Printf("%-4s %s\n", e.ID, e.Title)
			}
			return nil
		default:
			if _, ok := runners[a]; !ok {
				return fmt.Errorf("unknown experiment %q (try 'list')", a)
			}
			ids = append(ids, a)
		}
	}
	for _, id := range ids {
		for _, e := range core.Experiments() {
			if e.ID == id {
				fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
			}
		}
		if err := runners[id](); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}
