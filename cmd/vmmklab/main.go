// Command vmmklab runs the paper-reproduction experiments and prints their
// result tables.
//
// Usage:
//
//	vmmklab [flags] <experiment>...
//	vmmklab all
//	vmmklab list
//	vmmklab scenarios [list] [-run id,id,...] [-shuffle seed]
//
// Experiments are e1 through e13 (see EXPERIMENTS.md for the index). The
// parameter flags are generated from the experiment registry
// (internal/core): each registered parameter becomes one flag, shared by
// every experiment that declares it. Run `vmmklab -h` for the generated
// list; at the time of writing:
//
//	-packets n   packet count for E1 sweeps (default 100)
//	-syscalls n  iteration count for E3/E7/E10 (default 200)
//	-guests n    guest count for E4 (default 3)
//	-requests n  request count for E8 (default 50)
//	-frames n    guest memory pages for E11 migrations (default 96)
//	-rounds n    max pre-copy round budget for E11 (default 4)
//	-dirty n     peak dirty rate (pages/round) for E11 (default 48)
//	-cpus list   comma-separated core counts for the E12 SMP sweep
//	             (default 1,2,4,8)
//	-fleet list  comma-separated host counts for the E13 fleet sweep
//	             (default 2,4,8)
//	-churn list  comma-separated churn event counts for E13 (default 24,96)
//	-hostframes n  physical pages per E13 host (default 192)
//
// Engine and output flags (not experiment parameters):
//
//	-parallel n  max experiment cells in flight (default GOMAXPROCS)
//	-csv         emit CSV instead of aligned tables
//	-json        emit one JSON document per experiment (see EXPERIMENTS.md
//	             for the schema); try `vmmklab e3 -json | jq`
//
// `vmmklab scenarios` runs the fault-injection scenario matrix
// (internal/scenario): every row injects one fault and checks the stack
// reports the declared typed error, panic, post-mortem state or cross-leg
// trace invariant. `scenarios list` prints the declared rows; -run selects
// a subset; -shuffle <seed> runs the whole matrix in a seeded
// pseudo-random order (the same seed always yields the same order). A
// failing row exits nonzero — the CI scenarios job keys on that.
//
// Flags may appear before or after experiment names (vmmklab e12 -cpus 2
// works). Every parameter flag must be positive (each -cpus entry likewise);
// zero or negative values are usage errors, not silent clamps — enforced by
// the registry's shared validator.
//
// Every experiment decomposes into independent cells — one simulated
// machine per (platform, parameter-point) pair — which fan out across
// -parallel workers. Results are deterministic: any -parallel value
// produces byte-identical tables.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"vmmk/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vmmklab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vmmklab", flag.ContinueOnError)
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "max experiment cells in flight")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := fs.Bool("json", false, "emit one JSON document per experiment")
	runIDs := fs.String("run", "", "comma-separated scenario ids (scenarios subcommand only)")
	shuffle := fs.Uint64("shuffle", 0, "seed for a pseudo-random scenario order (scenarios subcommand only; 0 = ID order)")
	// Every experiment parameter flag is generated from the registry: one
	// flag per declared parameter name, shared across the experiments that
	// declare it.
	intFlags := map[string]*int{}
	listFlags := map[string]*string{}
	for _, p := range core.FlagParams() {
		switch p.Kind {
		case core.ParamIntList:
			listFlags[p.Name] = fs.String(p.Name, p.DefaultString(), p.Help)
		default:
			intFlags[p.Name] = fs.Int(p.Name, p.DefaultInt, p.Help)
		}
	}
	// Accept flags on either side of experiment names ("vmmklab e12 -cpus
	// 2" reads naturally): parse, peel off leading positionals, and keep
	// parsing whatever remains. The flag package's conventions survive
	// the loop: a standalone "--" ends flag parsing for everything after
	// it, and a lone "-" is an ordinary (non-flag) argument.
	var positional, tail []string
	rest := args
	for i, a := range args {
		if a == "--" {
			rest = args[:i]
			tail = args[i+1:]
			break
		}
	}
	for {
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rest = fs.Args()
		for len(rest) > 0 && (rest[0] == "-" || !strings.HasPrefix(rest[0], "-")) {
			positional = append(positional, rest[0])
			rest = rest[1:]
		}
		if len(rest) == 0 {
			break
		}
	}
	positional = append(positional, tail...)
	if *csv && *jsonOut {
		return fmt.Errorf("usage: -csv and -json are mutually exclusive")
	}
	// Validate every parameter through the registry's shared validator —
	// a zero or negative value is a usage error even when the selected
	// experiments don't read that flag. (-parallel is engine config, not
	// an experiment parameter: <= 0 falls back to GOMAXPROCS by design.)
	values := core.Params{}
	for _, p := range core.FlagParams() {
		switch p.Kind {
		case core.ParamIntList:
			v, err := p.Parse(*listFlags[p.Name])
			if err != nil {
				fs.Usage()
				return err
			}
			values[p.Name] = v
		default:
			v := *intFlags[p.Name]
			if err := p.Validate(v); err != nil {
				fs.Usage()
				return err
			}
			values[p.Name] = v
		}
	}
	if len(positional) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given; try 'vmmklab list'")
	}
	// The scenario matrix is a subcommand, not an experiment: it has its
	// own registry (internal/scenario) and pass/fail semantics.
	if positional[0] == "scenarios" {
		return runScenarios(positional[1:], *runIDs, *shuffle, *parallel, *csv, *jsonOut)
	}

	var ids []string
	for _, a := range positional {
		switch a {
		case "all":
			for _, s := range core.Specs() {
				ids = append(ids, s.ID)
			}
		case "list":
			for _, s := range core.Specs() {
				fmt.Printf("%-4s %s\n", s.ID, s.Title)
			}
			return nil
		default:
			if _, ok := core.Lookup(a); !ok {
				return fmt.Errorf("unknown experiment %q (try 'list')", a)
			}
			ids = append(ids, a)
		}
	}

	eng := core.NewRunner(*parallel)
	for _, id := range ids {
		spec, _ := core.Lookup(id)
		params := core.Params{}
		for _, p := range spec.Params {
			params[p.Name] = values[p.Name]
		}
		res, err := eng.RunExperiment(context.Background(), id, params)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		switch {
		case *jsonOut:
			b, err := res.JSON()
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Println(string(b))
		case *csv:
			fmt.Printf("== %s: %s ==\n", spec.ID, spec.Title)
			fmt.Print(res.CSV())
		default:
			fmt.Printf("== %s: %s ==\n", spec.ID, spec.Title)
			fmt.Print(res.Text())
		}
	}
	return nil
}
