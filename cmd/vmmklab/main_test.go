package main

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"vmmk/internal/core"
)

// update regenerates the golden files under testdata from the current
// output: go test ./cmd/vmmklab -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	return out, runErr
}

func TestListCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	// Every registered experiment must appear — the list is generated, so
	// the check is against the registry, not a hand-kept id list.
	for _, s := range core.Specs() {
		if !strings.Contains(out, s.ID+" ") || !strings.Contains(out, s.Title) {
			t.Errorf("list output missing %s (%s)", s.ID, s.Title)
		}
	}
}

// TestFlagValidationRegistryDriven is the property test the registry makes
// possible: for EVERY registered parameter of EVERY experiment, zero and
// negative values must come back as usage errors naming the flag — never a
// panic, never a silently clamped run. List parameters additionally reject
// empty and garbage lists and entries above their bound. The cases are
// generated from core.Specs(), so a new experiment's parameters are covered
// the moment it registers.
func TestFlagValidationRegistryDriven(t *testing.T) {
	type tc struct {
		name string
		args []string
		flag string
	}
	var cases []tc
	add := func(spec core.Spec, p core.Param, bad string) {
		cases = append(cases, tc{
			name: spec.ID + " -" + p.Name + "=" + bad,
			args: []string{"-" + p.Name, bad, spec.ID},
			flag: p.Name,
		})
	}
	nparams := 0
	for _, spec := range core.Specs() {
		for _, p := range spec.Params {
			nparams++
			switch p.Kind {
			case core.ParamIntList:
				bads := []string{"0", "2,-4", "two", ","}
				if p.Max > 0 {
					bads = append(bads, strconv.Itoa(p.Max+1))
				}
				for _, b := range bads {
					add(spec, p, b)
				}
			default:
				for _, b := range []string{"0", "-5"} {
					add(spec, p, b)
				}
			}
			// Flags must be rejected after the experiment name too.
			cases = append(cases, tc{
				name: spec.ID + " -" + p.Name + " after name",
				args: []string{spec.ID, "-" + p.Name, "0"},
				flag: p.Name,
			})
		}
	}
	if nparams == 0 {
		t.Fatal("registry declares no parameters — property test is vacuous")
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := capture(t, func() error { return run(c.args) })
			if err == nil {
				t.Fatalf("run(%v) accepted an invalid parameter", c.args)
			}
			if !strings.Contains(err.Error(), c.flag) {
				t.Fatalf("error %q does not name the offending -%s flag", err, c.flag)
			}
			if !strings.Contains(err.Error(), "usage") {
				t.Fatalf("error %q is not a usage error", err)
			}
		})
	}
}

// goldenArgs returns the trimmed parameter flags each experiment's golden
// files were captured with (sized to keep the test fast).
func goldenArgs(id string) []string {
	switch id {
	case "e1":
		return []string{"-packets", "30"}
	case "e3", "e7", "e10":
		return []string{"-syscalls", "50"}
	case "e4":
		return []string{"-guests", "2"}
	case "e8":
		return []string{"-requests", "10"}
	case "e11":
		return []string{"-frames", "48", "-rounds", "2", "-dirty", "8"}
	case "e12":
		return []string{"-cpus", "1,2"}
	case "e13":
		return []string{"-fleet", "2,3", "-churn", "24", "-hostframes", "128"}
	}
	return nil
}

// checkGolden compares the CLI's output for args against the named golden
// file byte for byte (or rewrites the file under -update).
func checkGolden(t *testing.T, file string, args []string) {
	t.Helper()
	out, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", file)
	if *update {
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("%s: output differs from golden\n--- got ---\n%s\n--- want ---\n%s", file, out, want)
	}
}

// TestGoldenTextAndCSV pins the text and CSV rendering of every registered
// experiment to the output captured from the pre-registry CLI: the
// api_redesign moved all twelve experiments onto core.Spec/core.Result
// without changing a byte of what users see.
func TestGoldenTextAndCSV(t *testing.T) {
	for _, spec := range core.Specs() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			args := goldenArgs(spec.ID)
			checkGolden(t, spec.ID+".txt.golden", append([]string{spec.ID}, args...))
			checkGolden(t, spec.ID+".csv.golden", append([]string{"-csv", spec.ID}, args...))
		})
	}
}

// TestGoldenJSON pins the stable JSON encoding for a representative subset
// (a sweep, a fixed-configuration table, the SMP grid, and the fleet sweep).
func TestGoldenJSON(t *testing.T) {
	for _, id := range []string{"e1", "e3", "e12", "e13"} {
		id := id
		t.Run(id, func(t *testing.T) {
			checkGolden(t, id+".json.golden", append([]string{"-json", id}, goldenArgs(id)...))
		})
	}
}

// TestAllJSONParses is the sweep-level smoke: `vmmklab all -json` (with
// trimmed parameters) must emit one JSON document per registered
// experiment, each carrying the experiment id, the echoed params, and at
// least one table with columns and rows.
func TestAllJSONParses(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	args := []string{"-packets", "20", "-syscalls", "40", "-guests", "2", "-requests", "10",
		"-frames", "48", "-rounds", "2", "-dirty", "8", "-cpus", "1,2",
		"-fleet", "2", "-churn", "24", "-hostframes", "128", "all", "-json"}
	out, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	type table struct {
		Title   string `json:"title"`
		Columns []struct {
			Name string `json:"name"`
			Unit string `json:"unit"`
		} `json:"columns"`
		Rows [][]any `json:"rows"`
	}
	type doc struct {
		Experiment string         `json:"experiment"`
		Title      string         `json:"title"`
		Params     map[string]any `json:"params"`
		Tables     []table        `json:"tables"`
	}
	dec := json.NewDecoder(strings.NewReader(out))
	var seen []string
	for dec.More() {
		var d doc
		if err := dec.Decode(&d); err != nil {
			t.Fatalf("invalid JSON document after %v: %v", seen, err)
		}
		if d.Experiment == "" || d.Title == "" || len(d.Tables) == 0 {
			t.Fatalf("degenerate document: %+v", d)
		}
		for _, tb := range d.Tables {
			if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
				t.Errorf("%s: table %q has no columns or rows", d.Experiment, tb.Title)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Columns) {
					t.Errorf("%s: row width %d != %d columns", d.Experiment, len(row), len(tb.Columns))
				}
			}
		}
		seen = append(seen, d.Experiment)
	}
	if len(seen) != len(core.Specs()) {
		t.Fatalf("decoded %d documents (%v), want %d", len(seen), seen, len(core.Specs()))
	}
}

func TestCSVAndJSONMutuallyExclusive(t *testing.T) {
	_, err := capture(t, func() error { return run([]string{"-csv", "-json", "e5"}) })
	if err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("want usage error for -csv -json, got %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"e99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestBareDashTerminates: a lone "-" is a non-flag argument to the flag
// package; the interleaved-flag parse loop must treat it as an (invalid)
// experiment name rather than spinning forever on it.
func TestBareDashTerminates(t *testing.T) {
	done := make(chan error, 1)
	go func() { done <- run([]string{"e7", "-"}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("bare '-' accepted as an experiment")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run([e7 -]) hung instead of rejecting the bare '-'")
	}
}

// TestDoubleDashEndsFlags: everything after a standalone "--" is
// positional, even when it looks like a flag — the flag package's
// convention must survive the interleaved parse loop.
func TestDoubleDashEndsFlags(t *testing.T) {
	err := run([]string{"--", "-csv"})
	if err == nil {
		t.Fatal("'-csv' after '--' was not treated as a positional")
	}
	if !strings.Contains(err.Error(), "unknown experiment") || !strings.Contains(err.Error(), "-csv") {
		t.Fatalf("want unknown-experiment error naming -csv, got %v", err)
	}
}

func TestNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("empty invocation accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-syscalls", "50", "e3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "glibc TLS") || !strings.Contains(out, "== e3:") {
		t.Fatalf("e3 output malformed:\n%s", out)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-guests", "2", "e4", "e5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== e4:") || !strings.Contains(out, "== e5:") {
		t.Fatalf("missing experiment headers:\n%s", out)
	}
}

func TestAllCheapExperimentsThroughCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments")
	}
	out, err := capture(t, func() error {
		return run([]string{"-syscalls", "40", "-requests", "10", "-packets", "20",
			"-frames", "48", "-rounds", "2", "-dirty", "8",
			"e1", "e2", "e6", "e7", "e8", "e9", "e10", "e11"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e2", "e6", "e7", "e8", "e9", "e10", "e11"} {
		if !strings.Contains(out, "== "+id+":") {
			t.Errorf("missing %s output", id)
		}
	}
}

// TestE11FlagsAndDeterminism runs the migration sweep through the CLI at
// two worker widths and requires byte-identical tables with the expected
// modes present.
func TestE11FlagsAndDeterminism(t *testing.T) {
	args := func(parallel string) []string {
		return []string{"-parallel", parallel, "-frames", "48", "-rounds", "2", "-dirty", "8", "e11"}
	}
	serial, err := capture(t, func() error { return run(args("1")) })
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := capture(t, func() error { return run(args("4")) })
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("-parallel changed the E11 table:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	for _, want := range []string{"== e11:", "stop&copy", "pre-copy", "downtime cyc"} {
		if !strings.Contains(serial, want) {
			t.Errorf("e11 output missing %q:\n%s", want, serial)
		}
	}
}

// TestE12FlagsAndDeterminism runs the SMP sweep through the CLI — with the
// flags after the experiment name, the way the docs show it — at two
// worker widths and requires byte-identical tables with the expected
// workloads present.
func TestE12FlagsAndDeterminism(t *testing.T) {
	args := func(parallel string) []string {
		return []string{"e12", "-cpus", "1,2", "-parallel", parallel}
	}
	serial, err := capture(t, func() error { return run(args("1")) })
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := capture(t, func() error { return run(args("4")) })
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("-parallel changed the E12 table:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	for _, want := range []string{"== e12:", "ipc-pingpong", "dirty-scan", "driver-io", "shootdowns"} {
		if !strings.Contains(serial, want) {
			t.Errorf("e12 output missing %q:\n%s", want, serial)
		}
	}
}

// TestParallelFlagDeterministic runs the same experiment serially and on a
// four-worker pool through the CLI and requires identical output — the
// user-visible face of the engine's determinism guarantee.
func TestParallelFlagDeterministic(t *testing.T) {
	serial, err := capture(t, func() error {
		return run([]string{"-parallel", "1", "-syscalls", "50", "e3", "e7"})
	})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := capture(t, func() error {
		return run([]string{"-parallel", "4", "-syscalls", "50", "e3", "e7"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("-parallel changed the tables:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

func TestCSVOutput(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-csv", "e5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "platform,count,security mechanisms,primitives") {
		t.Fatalf("no CSV header in:\n%s", out)
	}
}

// TestGoldenScenarios pins the scenarios subcommand's three output shapes:
// the full matrix run as text and JSON, and the declaration listing. The
// matrix is all-pass and deterministic, so the run output is stable.
func TestGoldenScenarios(t *testing.T) {
	checkGolden(t, "scenarios.txt.golden", []string{"scenarios", "-parallel", "4"})
	checkGolden(t, "scenarios.json.golden", []string{"-json", "scenarios", "-parallel", "4"})
	checkGolden(t, "scenarios-list.txt.golden", []string{"scenarios", "list"})
}

// TestScenariosSubset runs a subset via -run and checks only those rows
// appear, in the order requested.
func TestScenariosSubset(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"scenarios", "-run", "mk/ipc-dead-partner,hw/alloc-beyond-physmem"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mk/ipc-dead-partner") || !strings.Contains(out, "hw/alloc-beyond-physmem") {
		t.Fatalf("subset output missing requested rows:\n%s", out)
	}
	if strings.Contains(out, "fslite/") {
		t.Fatalf("subset output contains unrequested rows:\n%s", out)
	}
	if strings.Index(out, "mk/ipc-dead-partner") > strings.Index(out, "hw/alloc-beyond-physmem") {
		t.Fatal("subset rows not in requested order")
	}
}

// TestScenariosUnknownID: asking for a row the matrix does not declare is a
// usage error, not an empty run.
func TestScenariosUnknownID(t *testing.T) {
	_, err := capture(t, func() error {
		return run([]string{"scenarios", "-run", "vmm/no-such-row"})
	})
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("err = %v, want unknown-scenario error", err)
	}
}

// TestScenariosUnknownArgument: stray positionals after `scenarios` are
// rejected rather than silently ignored.
func TestScenariosUnknownArgument(t *testing.T) {
	_, err := capture(t, func() error { return run([]string{"scenarios", "bogus"}) })
	if err == nil || !strings.Contains(err.Error(), "unknown scenarios argument") {
		t.Fatalf("err = %v, want unknown-argument error", err)
	}
}
