package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestListCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e5", "e9"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"e99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("empty invocation accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-syscalls", "50", "e3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "glibc TLS") || !strings.Contains(out, "== e3:") {
		t.Fatalf("e3 output malformed:\n%s", out)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-guests", "2", "e4", "e5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== e4:") || !strings.Contains(out, "== e5:") {
		t.Fatalf("missing experiment headers:\n%s", out)
	}
}

func TestAllCheapExperimentsThroughCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments")
	}
	out, err := capture(t, func() error {
		return run([]string{"-syscalls", "40", "-requests", "10", "-packets", "20", "e1", "e2", "e6", "e7", "e8", "e9", "e10"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e2", "e6", "e7", "e8", "e9", "e10"} {
		if !strings.Contains(out, "== "+id+":") {
			t.Errorf("missing %s output", id)
		}
	}
}

// TestParallelFlagDeterministic runs the same experiment serially and on a
// four-worker pool through the CLI and requires identical output — the
// user-visible face of the engine's determinism guarantee.
func TestParallelFlagDeterministic(t *testing.T) {
	serial, err := capture(t, func() error {
		return run([]string{"-parallel", "1", "-syscalls", "50", "e3", "e7"})
	})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := capture(t, func() error {
		return run([]string{"-parallel", "4", "-syscalls", "50", "e3", "e7"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("-parallel changed the tables:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

func TestCSVOutput(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-csv", "e5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "platform,count,security mechanisms,primitives") {
		t.Fatalf("no CSV header in:\n%s", out)
	}
}
