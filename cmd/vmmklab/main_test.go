package main

import (
	"os"
	"strings"
	"testing"
	"time"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestListCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e5", "e9", "e11"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

// TestFlagValidation covers zero and negative values for every experiment
// parameter flag: each must come back as a usage error naming the flag —
// never a panic, never a silently clamped run.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		flag string
	}{
		{"e1 packets zero", []string{"-packets", "0", "e1"}, "packets"},
		{"e1 packets negative", []string{"-packets", "-5", "e1"}, "packets"},
		{"e3 syscalls zero", []string{"-syscalls", "0", "e3"}, "syscalls"},
		{"e7 syscalls negative", []string{"-syscalls", "-1", "e7"}, "syscalls"},
		{"e10 syscalls zero", []string{"-syscalls", "0", "e10"}, "syscalls"},
		{"e4 guests zero", []string{"-guests", "0", "e4"}, "guests"},
		{"e4 guests negative", []string{"-guests", "-3", "e4"}, "guests"},
		{"e8 requests zero", []string{"-requests", "0", "e8"}, "requests"},
		{"e8 requests negative", []string{"-requests", "-10", "e8"}, "requests"},
		{"e11 frames zero", []string{"-frames", "0", "e11"}, "frames"},
		{"e11 frames negative", []string{"-frames", "-96", "e11"}, "frames"},
		{"e11 rounds zero", []string{"-rounds", "0", "e11"}, "rounds"},
		{"e11 rounds negative", []string{"-rounds", "-4", "e11"}, "rounds"},
		{"e11 dirty zero", []string{"-dirty", "0", "e11"}, "dirty"},
		{"e11 dirty negative", []string{"-dirty", "-8", "e11"}, "dirty"},
		{"e12 cpus zero", []string{"-cpus", "0", "e12"}, "cpus"},
		{"e12 cpus negative entry", []string{"-cpus", "2,-4", "e12"}, "cpus"},
		{"e12 cpus junk", []string{"-cpus", "two", "e12"}, "cpus"},
		{"e12 cpus absurd", []string{"-cpus", "4096", "e12"}, "cpus"},
		{"e12 cpus empty", []string{"-cpus", ",", "e12"}, "cpus"},
		{"e12 cpus zero after name", []string{"e12", "-cpus", "0"}, "cpus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := capture(t, func() error { return run(tc.args) })
			if err == nil {
				t.Fatalf("run(%v) accepted an invalid parameter", tc.args)
			}
			if !strings.Contains(err.Error(), tc.flag) {
				t.Fatalf("error %q does not name the offending -%s flag", err, tc.flag)
			}
			if !strings.Contains(err.Error(), "usage") {
				t.Fatalf("error %q is not a usage error", err)
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"e99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestBareDashTerminates: a lone "-" is a non-flag argument to the flag
// package; the interleaved-flag parse loop must treat it as an (invalid)
// experiment name rather than spinning forever on it.
func TestBareDashTerminates(t *testing.T) {
	done := make(chan error, 1)
	go func() { done <- run([]string{"e7", "-"}) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("bare '-' accepted as an experiment")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run([e7 -]) hung instead of rejecting the bare '-'")
	}
}

// TestDoubleDashEndsFlags: everything after a standalone "--" is
// positional, even when it looks like a flag — the flag package's
// convention must survive the interleaved parse loop.
func TestDoubleDashEndsFlags(t *testing.T) {
	err := run([]string{"--", "-csv"})
	if err == nil {
		t.Fatal("'-csv' after '--' was not treated as a positional")
	}
	if !strings.Contains(err.Error(), "unknown experiment") || !strings.Contains(err.Error(), "-csv") {
		t.Fatalf("want unknown-experiment error naming -csv, got %v", err)
	}
}

func TestNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("empty invocation accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-syscalls", "50", "e3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "glibc TLS") || !strings.Contains(out, "== e3:") {
		t.Fatalf("e3 output malformed:\n%s", out)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-guests", "2", "e4", "e5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== e4:") || !strings.Contains(out, "== e5:") {
		t.Fatalf("missing experiment headers:\n%s", out)
	}
}

func TestAllCheapExperimentsThroughCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments")
	}
	out, err := capture(t, func() error {
		return run([]string{"-syscalls", "40", "-requests", "10", "-packets", "20",
			"-frames", "48", "-rounds", "2", "-dirty", "8",
			"e1", "e2", "e6", "e7", "e8", "e9", "e10", "e11"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e2", "e6", "e7", "e8", "e9", "e10", "e11"} {
		if !strings.Contains(out, "== "+id+":") {
			t.Errorf("missing %s output", id)
		}
	}
}

// TestE11FlagsAndDeterminism runs the migration sweep through the CLI at
// two worker widths and requires byte-identical tables with the expected
// modes present.
func TestE11FlagsAndDeterminism(t *testing.T) {
	args := func(parallel string) []string {
		return []string{"-parallel", parallel, "-frames", "48", "-rounds", "2", "-dirty", "8", "e11"}
	}
	serial, err := capture(t, func() error { return run(args("1")) })
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := capture(t, func() error { return run(args("4")) })
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("-parallel changed the E11 table:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	for _, want := range []string{"== e11:", "stop&copy", "pre-copy", "downtime cyc"} {
		if !strings.Contains(serial, want) {
			t.Errorf("e11 output missing %q:\n%s", want, serial)
		}
	}
}

// TestE12FlagsAndDeterminism runs the SMP sweep through the CLI — with the
// flags after the experiment name, the way the docs show it — at two
// worker widths and requires byte-identical tables with the expected
// workloads present.
func TestE12FlagsAndDeterminism(t *testing.T) {
	args := func(parallel string) []string {
		return []string{"e12", "-cpus", "1,2", "-parallel", parallel}
	}
	serial, err := capture(t, func() error { return run(args("1")) })
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := capture(t, func() error { return run(args("4")) })
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("-parallel changed the E12 table:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	for _, want := range []string{"== e12:", "ipc-pingpong", "dirty-scan", "driver-io", "shootdowns"} {
		if !strings.Contains(serial, want) {
			t.Errorf("e12 output missing %q:\n%s", want, serial)
		}
	}
}

// TestParallelFlagDeterministic runs the same experiment serially and on a
// four-worker pool through the CLI and requires identical output — the
// user-visible face of the engine's determinism guarantee.
func TestParallelFlagDeterministic(t *testing.T) {
	serial, err := capture(t, func() error {
		return run([]string{"-parallel", "1", "-syscalls", "50", "e3", "e7"})
	})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := capture(t, func() error {
		return run([]string{"-parallel", "4", "-syscalls", "50", "e3", "e7"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("-parallel changed the tables:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

func TestCSVOutput(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-csv", "e5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "platform,count,security mechanisms,primitives") {
		t.Fatalf("no CSV header in:\n%s", out)
	}
}
