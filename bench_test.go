package vmmk

// One benchmark per experiment table (see DESIGN.md's experiment index),
// plus primitive micro-benchmarks. Each BenchmarkE* regenerates its table's
// underlying measurement; `go test -bench=. -benchmem` is the paper's whole
// evaluation section.
//
// The serial benchmarks pin the engine to one worker so they measure the
// experiments themselves; the *Parallel variants run the same tables on a
// GOMAXPROCS-wide pool, so comparing the two is the engine's speedup:
//
//	go test -bench='E7Micro|E8Macro' -run=^$
//
// Both variants produce identical tables (see core's determinism tests).

import (
	"context"
	"io"
	"testing"

	"vmmk/internal/core"
	"vmmk/internal/hw"
	"vmmk/internal/mk"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
)

var (
	serialEng   = core.SerialRunner()
	parallelEng = core.DefaultRunner() // GOMAXPROCS workers
)

// BenchmarkE1Dom0Overhead regenerates the Cherkasova-Gardner sweep.
func BenchmarkE1Dom0Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := serialEng.E1(core.E1Config{Sizes: []int{64, 1500, 4096}, Packets: 50})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkE1Dom0OverheadParallel fans the sweep's six cells across the
// worker pool.
func BenchmarkE1Dom0OverheadParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := parallelEng.E1(core.E1Config{Sizes: []int{64, 1500, 4096}, Packets: 50})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkE2IPCCount regenerates the IPC-equivalence comparison.
func BenchmarkE2IPCCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := serialEng.E2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3SyscallPath regenerates the syscall-path table.
func BenchmarkE3SyscallPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := serialEng.E3(100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4BlastRadius regenerates the fault-isolation table.
func BenchmarkE4BlastRadius(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := serialEng.E4(3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Census regenerates the primitive census.
func BenchmarkE5Census(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := serialEng.E5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Portability regenerates the nine-architecture table.
func BenchmarkE6Portability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := serialEng.E6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Micro regenerates the primitive microbenchmarks.
func BenchmarkE7Micro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := serialEng.E7(100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7MicroParallel runs the three measurement blocks concurrently.
func BenchmarkE7MicroParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := parallelEng.E7(100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8Macro regenerates the web-serving macro comparison.
func BenchmarkE8Macro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := serialEng.E8(20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8MacroParallel serves the three platforms' request streams
// concurrently.
func BenchmarkE8MacroParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := parallelEng.E8(20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Ablation regenerates the ablation table.
func BenchmarkE9Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := serialEng.E9(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9AblationParallel fans all eighteen ablation cells out at once.
func BenchmarkE9AblationParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := parallelEng.E9(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Extension regenerates the minimal-extension complexity table.
func BenchmarkE10Extension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := serialEng.E10(50); err != nil {
			b.Fatal(err)
		}
	}
}

// benchE11Config is a trimmed migration sweep sized for benchmarking.
var benchE11Config = core.E11Config{
	Frames:     64,
	DirtyRates: []int{0, 16},
	Budgets:    []int{0, 2},
	Cutoff:     2,
}

// BenchmarkE11LiveMig regenerates the live-migration downtime sweep.
func BenchmarkE11LiveMig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := serialEng.E11(benchE11Config)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkE11LiveMigParallel fans the migration cells (two machines each)
// across the worker pool.
func BenchmarkE11LiveMigParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := parallelEng.E11(benchE11Config)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// benchE12Config is a trimmed SMP sweep sized for benchmarking.
var benchE12Config = core.E12Config{
	CPUCounts: []int{1, 4},
	Ops:       120,
	Pages:     32,
	Packets:   12,
}

// BenchmarkE12SMP regenerates the SMP scaling sweep.
func BenchmarkE12SMP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := serialEng.E12(benchE12Config)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkE12SMPParallel fans the SMP cells across the worker pool.
func BenchmarkE12SMPParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := parallelEng.E12(benchE12Config)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// benchE13Config is a trimmed fleet sweep sized for benchmarking.
var benchE13Config = core.E13Config{
	Fleets:     []int{2, 4},
	Churns:     []int{32},
	HostFrames: 160,
}

// BenchmarkE13Cluster regenerates the fleet placement-and-migration sweep.
func BenchmarkE13Cluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := serialEng.E13(benchE13Config)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkE13ClusterParallel fans the fleet cells (each booting a whole
// cluster of pooled hosts) across the worker pool.
func BenchmarkE13ClusterParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := parallelEng.E13(benchE13Config)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAllExperiments runs the entire evaluation once per iteration —
// the end-to-end "reproduce the paper" cost.
func BenchmarkAllExperiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := serialEng.RunAll(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllExperimentsParallel is the same evaluation with every
// experiment's cells fanned across the worker pool — the wall-clock win the
// engine exists for.
func BenchmarkAllExperimentsParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := parallelEng.RunAll(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryE7 runs E7 through the registry's uniform entry point
// (normalization, the experiment, Result assembly) — the path the CLI and
// every future plug-in experiment use.
func BenchmarkRegistryE7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := serialEng.RunExperiment(context.Background(), "e7", core.Params{"syscalls": 100})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// BenchmarkResultJSON measures the stable JSON encoding of a finished
// Result — the cost downstream tooling pays per stored document.
func BenchmarkResultJSON(b *testing.B) {
	res, err := serialEng.RunExperiment(context.Background(), "e7", core.Params{"syscalls": 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.JSON(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- primitive micro-benchmarks (real-time cost of the simulators
// themselves, complementing the simulated-cycle numbers in E7) ---

// BenchmarkMKIPCCall measures the wall-clock cost of one simulated IPC
// round trip.
func BenchmarkMKIPCCall(b *testing.B) {
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 256})
	k := mk.New(m)
	cs, err := k.NewSpace("c", mk.NilThread)
	if err != nil {
		b.Fatal(err)
	}
	ss, err := k.NewSpace("s", mk.NilThread)
	if err != nil {
		b.Fatal(err)
	}
	cl := k.NewThread(cs, "c", 1, nil)
	srv := k.NewThread(ss, "s", 2, func(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
		return msg, nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Call(cl.ID, srv.ID, mk.Msg{Words: []uint64{1}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMMHypercall measures the wall-clock cost of one simulated
// hypercall.
func BenchmarkVMMHypercall(b *testing.B) {
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 512})
	h, _, err := vmm.New(m, 64)
	if err != nil {
		b.Fatal(err)
	}
	dU, err := h.CreateDomain("u", 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Hypercall(dU.ID, "nop", 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMMPageFlip measures the wall-clock cost of one simulated grant
// + flip pair, ping-ponging a single frame between two domains so the
// benchmark is balanced at any iteration count.
func BenchmarkVMMPageFlip(b *testing.B) {
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 512})
	h, d0, err := vmm.New(m, 64)
	if err != nil {
		b.Fatal(err)
	}
	dU, err := h.CreateDomain("u", 16)
	if err != nil {
		b.Fatal(err)
	}
	f := d0.FrameAt(0)
	owner, peer := d0, dU
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, err := h.GrantAccess(owner.ID, f, peer.ID, false)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.GrantTransfer(peer.ID, owner.ID, ref); err != nil {
			b.Fatal(err)
		}
		owner, peer = peer, owner
	}
}

// BenchmarkMachinePool measures the engine's machine-recycling path — one
// Get (a Reset machine after the first iteration) plus one Put — against
// booting the same machine from scratch, the fixed cost every experiment
// cell used to pay.
func BenchmarkMachinePool(b *testing.B) {
	cfg := &hw.MachineConfig{Frames: 2048}
	b.Run("pooled", func(b *testing.B) {
		p := hw.NewMachinePool()
		p.Put(p.Get(hw.X86(), cfg)) // warm the pool
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Put(p.Get(hw.X86(), cfg))
		}
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if m := hw.NewMachine(hw.X86(), cfg); m == nil {
				b.Fatal("nil machine")
			}
		}
	})
}

// BenchmarkChargeN compares charging 64 homogeneous events through the CPU
// one at a time against the single batched ChargeN call the hot loops now
// use. Both leave identical counters; the gap is the engine's win.
func BenchmarkChargeN(b *testing.B) {
	const n = 64
	b.Run("loop", func(b *testing.B) {
		m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 16})
		c := m.Rec.Intern("bench.comp")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				m.CPU.Charge(c, trace.KTrap, 100)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 16})
		c := m.Rec.Intern("bench.comp")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.CPU.ChargeN(c, trace.KTrap, 100, n)
		}
	})
}

// BenchmarkXenStackRxPacket measures the full end-to-end receive path.
func BenchmarkXenStackRxPacket(b *testing.B) {
	s, err := core.NewXenStack(core.Config{Frames: 16384})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InjectPackets(1, 512, 0)
		if s.DrainRx(0) != 1 {
			b.Fatal("packet lost")
		}
	}
}

// BenchmarkMKStackRxPacket measures the microkernel's receive path.
func BenchmarkMKStackRxPacket(b *testing.B) {
	s, err := core.NewMKStack(core.Config{Frames: 16384})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InjectPackets(1, 512, 0)
		if s.DrainRx(0) != 1 {
			b.Fatal("packet lost")
		}
	}
}
