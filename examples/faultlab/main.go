// faultlab demonstrates the liability-inversion argument of §3.1: crash the
// shared storage service on each platform and survey the wreckage. The
// Parallax appliance on the VMM and the store server on the microkernel
// fail identically — their clients lose storage, nothing else notices —
// while the monolithic baseline loses everything.
//
//	go run ./examples/faultlab
package main

import (
	"fmt"
	"log"

	"vmmk/internal/core"
	"vmmk/internal/trace"
)

func main() {
	log.SetFlags(0)
	const guests = 4

	fmt.Println("faultlab — blast radius of a storage-service crash")
	fmt.Println()

	table := trace.NewTable("", "platform", "component", "before", "after crash")
	builders := []func() (core.Platform, error){
		func() (core.Platform, error) { return core.NewMKStack(core.Config{Guests: guests}) },
		func() (core.Platform, error) { return core.NewXenStack(core.Config{Guests: guests}) },
		func() (core.Platform, error) { return core.NewNativeStack(core.Config{Guests: guests}) },
	}
	for _, build := range builders {
		p, err := build()
		if err != nil {
			log.Fatal(err)
		}
		// Every guest writes a block before the crash.
		for g := 0; g < guests; g++ {
			if p.Name() == "native" && g > 0 {
				break // the baseline models a single OS image
			}
			if err := p.StorageWrite(g, 1, []byte("precious")); err != nil {
				log.Fatalf("%s guest %d pre-crash write: %v", p.Name(), g, err)
			}
		}
		before := statusMap(p)
		p.KillStorage()
		after := map[string]string{}
		for _, cs := range p.Alive() {
			if cs.Alive {
				after[cs.Name] = "alive"
			} else {
				after[cs.Name] = "DEAD"
			}
		}
		// Service probes beat liveness bits: what actually still works?
		if err := p.StorageWrite(0, 2, []byte("x")); err != nil {
			after["storage service"] = "FAILED: " + truncate(err.Error(), 40)
		} else {
			after["storage service"] = "working"
		}
		if err := p.SendPackets(1, 64, 0); err != nil {
			after["network service"] = "FAILED: " + truncate(err.Error(), 40)
		} else {
			after["network service"] = "working"
		}

		names := append([]string{}, componentNames(p)...)
		names = append(names, "storage service", "network service")
		for _, name := range names {
			b := before[name]
			if b == "" {
				b = "working"
			}
			table.AddRow(p.Name(), name, b, after[name])
		}
	}
	fmt.Println(table)
	fmt.Println("§3.1's point, measured: the user-level storage server and the Parallax")
	fmt.Println("appliance have the same failure semantics. 'We fail to see the")
	fmt.Println("difference between a VMM and a microkernel in this respect.'")
}

func statusMap(p core.Platform) map[string]string {
	out := map[string]string{}
	for _, cs := range p.Alive() {
		if cs.Alive {
			out[cs.Name] = "alive"
		} else {
			out[cs.Name] = "DEAD"
		}
	}
	return out
}

func componentNames(p core.Platform) []string {
	var out []string
	for _, cs := range p.Alive() {
		out = append(out, cs.Name)
	}
	return out
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
