// Quickstart: boot both systems on identical simulated hardware, run the
// same tiny workload on each, and print the comparison the library exists
// to make — who crossed which protection boundary, how often, and at what
// CPU cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vmmk/internal/core"
	"vmmk/internal/trace"
)

func main() {
	log.SetFlags(0)

	fmt.Println("vmmk quickstart — one workload, two system structures")
	fmt.Println()

	// The workload: 20 received packets, 20 syscalls, 5 storage writes.
	drive := func(p core.Platform) {
		for i := 0; i < 20; i++ {
			if err := p.DoSyscall(0, 1, 0); err != nil {
				log.Fatalf("%s syscall: %v", p.Name(), err)
			}
		}
		p.InjectPackets(20, 512, 0)
		if got := p.DrainRx(0); got != 20 {
			log.Fatalf("%s: lost packets: %d/20", p.Name(), got)
		}
		for b := uint64(0); b < 5; b++ {
			if err := p.StorageWrite(0, b, []byte("quickstart")); err != nil {
				log.Fatalf("%s storage: %v", p.Name(), err)
			}
		}
	}

	table := trace.NewTable("", "system", "IPC-equivalent ops", "kernel/monitor cyc", "driver-side cyc", "total cyc")
	for _, build := range []func() (core.Platform, error){
		func() (core.Platform, error) { return core.NewMKStack(core.Config{}) },
		func() (core.Platform, error) { return core.NewXenStack(core.Config{}) },
	} {
		p, err := build()
		if err != nil {
			log.Fatal(err)
		}
		rec := p.M().Rec
		snap := rec.Snapshot()
		drive(p)
		kernel := rec.Cycles("mk.kernel") + rec.Cycles("vmm.xen")
		table.AddRow(p.Name(), rec.IPCEquivalentSince(snap), kernel, p.DriverSideCycles(), rec.TotalCycles())
	}
	fmt.Println(table)
	fmt.Println("The paper's §3.2 claim in one table: the two structures do essentially")
	fmt.Println("the same number of kernel-mediated transfers for the same work.")
}
