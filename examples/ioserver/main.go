// ioserver reproduces the Cherkasova-Gardner study as a library consumer: a
// network-receive sweep over packet sizes and delivery modes, reporting the
// driver-domain CPU burden — the measurement §3.2 of the paper uses to
// refute "IPC performance is irrelevant for VMMs".
//
//	go run ./examples/ioserver
package main

import (
	"fmt"
	"log"

	"vmmk/internal/core"
	"vmmk/internal/trace"
)

func main() {
	log.SetFlags(0)
	const packets = 200

	fmt.Println("ioserver — driver-domain CPU under receive load (CG05 reproduction)")
	fmt.Println()

	table := trace.NewTable("", "mode", "pkt size", "flips", "evtchn", "driver cyc/pkt", "driver CPU share")
	for _, copyMode := range []bool{false, true} {
		for _, size := range []int{64, 512, 1500, 4096} {
			s, err := core.NewXenStack(core.Config{CopyMode: copyMode})
			if err != nil {
				log.Fatal(err)
			}
			rec := s.M().Rec
			snap := rec.Snapshot()
			d0 := s.DriverSideCycles()
			t0 := rec.TotalCycles()

			s.InjectPackets(packets, size, 0)
			if got := s.DrainRx(0); got != packets {
				log.Fatalf("lost packets: %d/%d", got, packets)
			}

			driver := s.DriverSideCycles() - d0
			total := rec.TotalCycles() - t0
			mode := "flip"
			if copyMode {
				mode = "copy"
			}
			table.AddRow(mode, size,
				rec.CountsSince(snap, trace.KPageFlip),
				rec.CountsSince(snap, trace.KEvtchnSend),
				driver/packets,
				fmt.Sprintf("%.0f%%", 100*float64(driver)/float64(total)))
		}
	}
	fmt.Println(table)
	fmt.Println("Shape to notice: in flip mode the per-packet driver cost does not move")
	fmt.Println("with packet size — it tracks the number of page flips, exactly the")
	fmt.Println("proportionality Cherkasova & Gardner measured on real Xen. In copy mode")
	fmt.Println("the cost grows with bytes, and the small-packet crossover explains why")
	fmt.Println("later Xen switched network RX from flipping to copying.")
}
