// portability demonstrates §2.2's nine-platform claim: the identical OS
// personality (OS server, drivers, storage) boots and runs on every
// architecture descriptor through the microkernel's abstractions, while a
// VMM guest faces a different raw interface on each — quantified as the
// list of porting work items.
//
//	go run ./examples/portability
package main

import (
	"fmt"
	"log"
	"strings"

	"vmmk/internal/core"
	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

func main() {
	log.SetFlags(0)

	fmt.Println("portability — one component, nine architectures")
	fmt.Println()

	rows, err := core.RunE6()
	if err != nil {
		log.Fatal(err)
	}
	table := trace.NewTable("", "architecture", "mk personality", "VMM guest port items")
	for _, r := range rows {
		status := "runs unchanged"
		if !r.MKRuns {
			status = "FAILED"
		}
		items := "(baseline)"
		if len(r.VMMDeltaNames) > 0 {
			items = strings.Join(r.VMMDeltaNames, "; ")
		}
		table.AddRow(r.Arch, status, items)
	}
	fmt.Println(table)

	// Show it concretely: the same IPC echo on the two extremes of the
	// span, an embedded ARM and a big-iron PPC64.
	fmt.Println("cycle cost of the same IPC round trip across the span:")
	for _, arch := range hw.AllArchs() {
		s, err := core.NewMKStack(core.Config{Arch: arch})
		if err != nil {
			log.Fatal(err)
		}
		t0 := s.M().Now()
		if err := s.DoSyscall(0, 1, 0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %6d cycles\n", arch.Name, s.M().Now()-t0)
	}
	fmt.Println()
	fmt.Println("\"software that is written for an L4 microkernel naturally runs on nine")
	fmt.Println("different processor platforms\" — the costs differ, the code does not.")
}
