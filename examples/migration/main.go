// migration demonstrates the management story that made "treat the OS as a
// component" (§3.3) compelling on the VMM side: pause a running guest,
// serialise it, move it to a different physical machine, resume it — with
// its memory and page tables intact — and pair it with a Parallax
// copy-on-write snapshot of its storage, the Warfield et al. combination
// the rebuttal's §3.1 discusses.
//
// A second leg repeats the move with live pre-copy migration: the guest
// keeps running (and writing memory) while its pages stream across, and
// only a final whittled-down working set crosses during the blackout — the
// downtime comparison is printed at the end.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"vmmk/internal/core"
	"vmmk/internal/hw"
	"vmmk/internal/vmm"
	"vmmk/internal/vmmos"
)

func main() {
	log.SetFlags(0)
	fmt.Println("migration — a guest and its storage move between machines")
	fmt.Println()

	// Machine A: full stack with one guest.
	src, err := core.NewXenStack(core.Config{Guests: 1})
	if err != nil {
		log.Fatal(err)
	}
	guest := src.Guests[0]

	// The guest does some work and writes state it will need later.
	if _, err := guest.Syscall(src.Procs[0], vmmos.SysGetPID); err != nil {
		log.Fatal(err)
	}
	if err := guest.Blk.Write(3, []byte("pre-migration state")); err != nil {
		log.Fatal(err)
	}
	// Snapshot the virtual disk before moving (crash-consistent point).
	captured, err := src.PX.Snapshot(guest.Dom.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine A: guest %q ran, wrote block 3, snapshot captured %d block(s)\n",
		guest.Dom.Name, captured)

	// Distinctive memory pattern to verify the move end to end.
	copy(src.M().Mem.Data(guest.Dom.FrameAt(9)), []byte("memory travels whole"))

	// Machine B: an empty destination hypervisor.
	dst, err := core.NewXenStack(core.Config{Guests: 0})
	if err != nil {
		log.Fatal(err)
	}

	s0, d0 := src.M().Now(), dst.M().Now()
	moved, err := vmm.Migrate(src.H, guest.Dom.ID, dst.H)
	if err != nil {
		log.Fatal(err)
	}
	stopDowntime := (src.M().Now() - s0) + (dst.M().Now() - d0)
	fmt.Printf("migrated: source alive=%v, destination domain %q paused=%v\n",
		src.H.Alive(guest.Dom.ID), moved.Name, dst.H.Paused(moved.ID))

	if got := string(dst.M().Mem.Data(moved.FrameAt(9))[:20]); got != "memory travels whole" {
		log.Fatalf("memory corrupted in flight: %q", got)
	}
	fmt.Println("memory verified at destination: \"memory travels whole\"")

	// Resume and reconnect devices (frontends always reconnect after a
	// migration; connection state deliberately does not travel).
	if err := dst.H.Unpause(moved.ID); err != nil {
		log.Fatal(err)
	}
	gk2 := vmmos.NewGuestKernel(dst.H, moved)
	if _, err := vmmos.ConnectNet(dst.DD, gk2); err != nil {
		log.Fatal(err)
	}
	if _, err := dst.PX.AttachClient(gk2, 256); err != nil {
		log.Fatal(err)
	}
	p := gk2.Spawn("app")
	if _, err := gk2.Syscall(p.PID, vmmos.SysGetPID); err != nil {
		log.Fatal(err)
	}
	if err := gk2.Blk.Write(4, []byte("post-migration write")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("destination: guest resumed, syscalls and storage work")
	fmt.Println()
	fmt.Println("The snapshot on machine A still holds the pre-migration data:")
	snap := src.PX.SnapshotRead(guest.Dom.ID, 3)
	fmt.Printf("  snapshot(block 3) = %q\n", snap[:19])

	// ------------------------------------------------------------------
	// Leg two: the same move, live. The guest keeps executing while its
	// memory streams across; the dirty log catches its writes and each
	// pre-copy round re-sends only what changed since the last one.
	fmt.Println()
	fmt.Println("live pre-copy migration — the guest keeps running while it moves")
	fmt.Println()

	srcB, err := core.NewXenStack(core.Config{Guests: 1})
	if err != nil {
		log.Fatal(err)
	}
	gB := srcB.Guests[0]
	if err := gB.Blk.Write(3, []byte("live-guest state")); err != nil {
		log.Fatal(err)
	}
	if _, err := srcB.PX.Snapshot(gB.Dom.ID); err != nil {
		log.Fatal(err)
	}
	dstB, err := core.NewXenStack(core.Config{Guests: 0})
	if err != nil {
		log.Fatal(err)
	}

	// The concurrent workload: every pre-copy round the guest keeps
	// scribbling into a small hot set, plus one late page the final
	// blackout round must carry.
	hot := []int{10, 11, 12}
	work := func(round int) {
		for _, gpn := range hot {
			msg := fmt.Sprintf("hot page %d, round %d", gpn, round)
			if err := gB.WriteMemory(gpn, 0, []byte(msg)); err != nil {
				log.Fatal(err)
			}
		}
	}
	movedB, stats, err := vmm.MigrateLive(srcB.H, gB.Dom.ID, dstB.H, vmm.LiveOpts{
		MaxRounds: 4,
		WSSCutoff: 2,
		GuestWork: work,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-copy ran %d round(s): %d page transfers in total, only %d during the blackout\n",
		stats.Rounds, stats.PagesMoved, stats.PagesFinal)

	// The last round's writes made it, even though the guest never paused
	// until the final instant.
	want := fmt.Sprintf("hot page %d, round %d", hot[0], stats.Rounds)
	got := string(dstB.M().Mem.Data(movedB.FrameAt(hot[0]))[:len(want)])
	if got != want {
		log.Fatalf("live write lost in flight: %q != %q", got, want)
	}
	fmt.Printf("last live round's write verified at destination: %q\n", got)

	// Frontends reconnect exactly as in the stop-and-copy leg.
	if err := dstB.H.Unpause(movedB.ID); err != nil {
		log.Fatal(err)
	}
	gkB := vmmos.NewGuestKernel(dstB.H, movedB)
	if _, err := vmmos.ConnectNet(dstB.DD, gkB); err != nil {
		log.Fatal(err)
	}
	if _, err := dstB.PX.AttachClient(gkB, 256); err != nil {
		log.Fatal(err)
	}
	if err := gkB.Blk.Write(4, []byte("post-live write")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("destination: live-migrated guest resumed, storage reconnected")
	fmt.Println()
	fmt.Printf("downtime: stop-and-copy froze the guest for %d cycles;\n", stopDowntime)
	fmt.Printf("          live pre-copy blacked out for %d cycles (%.1fx shorter)\n",
		stats.Downtime, float64(stopDowntime)/float64(maxCycles(stats.Downtime, 1)))
	fmt.Println()
	fmt.Println("This is the workload the paper's debate is really about: whole-OS")
	fmt.Println("mobility and storage management as ordinary operations over components.")
}

func maxCycles(a, b hw.Cycles) hw.Cycles {
	if a > b {
		return a
	}
	return b
}
