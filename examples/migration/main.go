// migration demonstrates the management story that made "treat the OS as a
// component" (§3.3) compelling on the VMM side: pause a running guest,
// serialise it, move it to a different physical machine, resume it — with
// its memory and page tables intact — and pair it with a Parallax
// copy-on-write snapshot of its storage, the Warfield et al. combination
// the rebuttal's §3.1 discusses.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"vmmk/internal/core"
	"vmmk/internal/vmm"
	"vmmk/internal/vmmos"
)

func main() {
	log.SetFlags(0)
	fmt.Println("migration — a guest and its storage move between machines")
	fmt.Println()

	// Machine A: full stack with one guest.
	src, err := core.NewXenStack(core.Config{Guests: 1})
	if err != nil {
		log.Fatal(err)
	}
	guest := src.Guests[0]

	// The guest does some work and writes state it will need later.
	if _, err := guest.Syscall(src.Procs[0], vmmos.SysGetPID); err != nil {
		log.Fatal(err)
	}
	if err := guest.Blk.Write(3, []byte("pre-migration state")); err != nil {
		log.Fatal(err)
	}
	// Snapshot the virtual disk before moving (crash-consistent point).
	captured, err := src.PX.Snapshot(guest.Dom.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine A: guest %q ran, wrote block 3, snapshot captured %d block(s)\n",
		guest.Dom.Name, captured)

	// Distinctive memory pattern to verify the move end to end.
	copy(src.M().Mem.Data(guest.Dom.FrameAt(9)), []byte("memory travels whole"))

	// Machine B: an empty destination hypervisor.
	dst, err := core.NewXenStack(core.Config{Guests: 0})
	if err != nil {
		log.Fatal(err)
	}

	moved, err := vmm.Migrate(src.H, guest.Dom.ID, dst.H)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrated: source alive=%v, destination domain %q paused=%v\n",
		src.H.Alive(guest.Dom.ID), moved.Name, dst.H.Paused(moved.ID))

	if got := string(dst.M().Mem.Data(moved.FrameAt(9))[:20]); got != "memory travels whole" {
		log.Fatalf("memory corrupted in flight: %q", got)
	}
	fmt.Println("memory verified at destination: \"memory travels whole\"")

	// Resume and reconnect devices (frontends always reconnect after a
	// migration; connection state deliberately does not travel).
	if err := dst.H.Unpause(moved.ID); err != nil {
		log.Fatal(err)
	}
	gk2 := vmmos.NewGuestKernel(dst.H, moved)
	if _, err := vmmos.ConnectNet(dst.DD, gk2); err != nil {
		log.Fatal(err)
	}
	if _, err := dst.PX.AttachClient(gk2, 256); err != nil {
		log.Fatal(err)
	}
	p := gk2.Spawn("app")
	if _, err := gk2.Syscall(p.PID, vmmos.SysGetPID); err != nil {
		log.Fatal(err)
	}
	if err := gk2.Blk.Write(4, []byte("post-migration write")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("destination: guest resumed, syscalls and storage work")
	fmt.Println()
	fmt.Println("The snapshot on machine A still holds the pre-migration data:")
	snap := src.PX.SnapshotRead(guest.Dom.ID, 3)
	fmt.Printf("  snapshot(block 3) = %q\n", snap[:19])
	fmt.Println()
	fmt.Println("This is the workload the paper's debate is really about: whole-OS")
	fmt.Println("mobility and storage management as ordinary operations over components.")
}
