// Package linttest runs lint analyzers over fixture packages and checks
// their findings against `// want "regexp"` comments, in the spirit of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is one directory of Go files under testdata (so the go tool
// never builds it) that still type-checks: its imports — standard library or
// module packages — resolve through export data from the module root. Every
// line expecting a diagnostic carries a trailing comment
//
//	// want "regexp"
//
// (several per line allowed); the harness fails the test for every expected
// finding that did not fire and every finding that was not expected. Ignore
// directives are honoured, so a fixture can also prove the escape hatch
// works.
package linttest

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"vmmk/internal/lint"
)

// wantRE extracts the expectations of one want comment; patterns may be
// double-quoted or backquoted.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// ModuleRoot locates the enclosing module's root directory via the go tool.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" || gomod == "NUL" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// expectation is one want comment: where it points and what must match.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package at dir (relative to the module root if not
// absolute), applies the analyzer, and diffs findings against the fixture's
// want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	root := ModuleRoot(t)
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(root, dir)
	}
	pkg, err := lint.LoadDir(root, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.Run([]*lint.Analyzer{a}, []*lint.Package{pkg})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[i+len("// want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a %s finding matching %q, got none", w.file, w.line, a.Name, w.pattern)
		}
	}
}
