// Package lint is the simulator's domain-specific static analysis suite:
// five analyzers that machine-check the invariants the experimental claims
// rest on, plus the tiny framework that runs them.
//
// The invariants are the ones the repository otherwise enforces only by
// convention and golden-file diffing:
//
//   - detrand: results must be bit-deterministic, so simulator code may not
//     read wall-clock time (time.Now and friends) or use math/rand; virtual
//     time flows through hw.Clock and randomness through internal/simrand.
//   - maporder: Go map iteration order is randomised per run, so a range
//     over a map may not let the visit order escape into rows, rendered
//     tables, formatted output or the trace log without a sorted-keys idiom.
//   - tracecomp: all cycle charging goes through trace.Comp handles interned
//     at construction time (the flat-ledger invariant that bought the
//     22 -> 4.2 ns/op charge path); component names may not be built with
//     fmt.Sprintf or string concatenation at a charge site.
//   - boundedgo: all parallelism goes through the bounded worker pool in
//     internal/core/runner.go, so cancellation and the serial==parallel
//     determinism guarantee hold; naked go statements are forbidden
//     elsewhere.
//   - regspec: the experiment registry conventions from the declarative
//     registry refactor — every internal/core/eN_*.go registers exactly one
//     core.Spec in init, every core.Param declares a unit and bounds, every
//     result column schema is a compile-time constant.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) but is self-contained: packages are loaded with
// `go list -export` plus the standard library's go/parser and go/types, so
// the suite builds with no third-party dependencies. cmd/vmmklint is the
// multichecker binary; `go run ./cmd/vmmklint ./...` must exit clean on this
// repository and CI enforces that on every push.
//
// A finding can be suppressed with a trailing or preceding line comment
//
//	//vmmklint:ignore <reason>
//
// The reason is mandatory; a bare directive is itself a diagnostic. The
// directive applies to its own source line and the line directly below it,
// and is meant for the handful of sites where the rule is deliberately
// broken (there are currently none in the tree).
package lint
