package lint

import (
	"go/ast"
	"strings"

	"vmmk/internal/scenario"
)

// AnalyzerScenrow enforces the scenario-matrix row conventions at compile
// time: every scenario.S literal declares a constant non-empty ID,
// Subsystem and Fault; the ID is "<subsystem>/<slug>" for a known
// subsystem; the expected outcome is an inline scenario.Outcome literal
// with a constant non-empty Desc and at least one of Err, Panic, Check or
// Compare; and the row has a Run. scenario.Register re-checks most of this
// at init, but a malformed row should fail `vmmklint`, not the first
// program that imports the matrix.
var AnalyzerScenrow = &Analyzer{
	Name: "scenrow",
	Doc: "scenario-matrix conventions: constant id/subsystem/fault on every " +
		"scenario.S, ids shaped <subsystem>/<slug>, inline Outcome with a " +
		"Desc and at least one of Err/Panic/Check/Compare, and a Run",
	Run: runScenrow,
}

const scenarioPath = "vmmk/internal/scenario"

func runScenrow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isNamedType(pass.TypeOf(lit), scenarioPath, "S") {
				return true
			}
			checkScenarioRow(pass, lit)
			return true
		})
	}
	return nil
}

// checkScenarioRow validates one scenario.S composite literal.
func checkScenarioRow(pass *Pass, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 {
		return // the zero S is Lookup's not-found sentinel, not a row
	}
	if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
		pass.Reportf(lit.Pos(), "scenario.S literal must use keyed fields so the row is auditable")
		return
	}
	fields := keyedFields(lit)

	strs := map[string]string{}
	for _, name := range []string{"ID", "Subsystem", "Fault"} {
		v, present := fields[name]
		if !present {
			pass.Reportf(lit.Pos(), "scenario.S literal is missing %s; every row declares its id, subsystem and injected fault", name)
			continue
		}
		s, isConst := constString(pass, v)
		if !isConst || s == "" {
			pass.Reportf(v.Pos(), "scenario.S %s must be a non-empty string constant", name)
			continue
		}
		strs[name] = s
	}
	if sub, ok := strs["Subsystem"]; ok {
		known := false
		for _, s := range scenario.Subsystems {
			if sub == s {
				known = true
			}
		}
		if !known {
			pass.Reportf(fields["Subsystem"].Pos(), "scenario.S names unknown subsystem %q (known: %s)", sub, strings.Join(scenario.Subsystems, ", "))
		} else if id, ok := strs["ID"]; ok && !strings.HasPrefix(id, sub+"/") {
			pass.Reportf(fields["ID"].Pos(), "scenario.S id %q must start with %q", id, sub+"/")
		}
	}

	expect, present := fields["Expect"]
	if !present {
		pass.Reportf(lit.Pos(), "scenario.S literal is missing Expect; every row declares its expected outcome")
	} else {
		checkOutcomeLit(pass, expect)
	}
	if _, present := fields["Run"]; !present {
		pass.Reportf(lit.Pos(), "scenario.S literal is missing Run")
	}
}

// checkOutcomeLit validates the inline Outcome literal of a row's Expect.
func checkOutcomeLit(pass *Pass, e ast.Expr) {
	out, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok || !isNamedType(pass.TypeOf(out), scenarioPath, "Outcome") {
		pass.Reportf(e.Pos(), "scenario.S Expect must be an inline scenario.Outcome literal so the expected outcome is statically auditable")
		return
	}
	fields := keyedFields(out)
	desc, present := fields["Desc"]
	if !present {
		pass.Reportf(out.Pos(), "scenario.Outcome is missing Desc; listings and result tables show it")
	} else if s, isConst := constString(pass, desc); !isConst || s == "" {
		pass.Reportf(desc.Pos(), "scenario.Outcome Desc must be a non-empty string constant")
	}
	graded := false
	for _, name := range []string{"Err", "Panic", "Check", "Compare"} {
		if _, has := fields[name]; has {
			graded = true
		}
	}
	if !graded {
		pass.Reportf(out.Pos(), "scenario.Outcome declares none of Err, Panic, Check or Compare; the armed run needs at least one graded expectation")
	}
}
