package lint

import (
	"go/ast"
	"strconv"
)

// forbiddenTimeFuncs are the package time entry points that read or depend
// on the host's wall clock. Referencing any of them (called or not) from
// simulator code breaks bit-determinism: virtual time must come from
// hw.Clock and schedules from cycle arithmetic.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// forbiddenRandImports are the unseeded-by-default randomness packages.
// internal/simrand is the sanctioned source: seeded, stable across Go
// releases, and deterministic by construction.
var forbiddenRandImports = map[string]string{
	"math/rand":    "math/rand's global source is unseeded",
	"math/rand/v2": "math/rand/v2 is seeded from runtime entropy",
	"crypto/rand":  "crypto/rand is nondeterministic by design",
}

// AnalyzerDetrand forbids wall-clock and nondeterministic-randomness sources
// in simulator code.
var AnalyzerDetrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock time (time.Now, time.Since, timers) and " +
		"nondeterministic randomness (math/rand, crypto/rand) in simulator " +
		"code; virtual time flows through hw.Clock and randomness through " +
		"internal/simrand",
	Run: runDetrand,
}

func runDetrand(pass *Pass) error {
	// simrand is the sanctioned wrapper and documents its own determinism
	// contract; everything else answers to the rule.
	if pass.Pkg.Path() == "vmmk/internal/simrand" {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := forbiddenRandImports[path]; bad {
				pass.Reportf(imp.Pos(), "import of %s in simulator code (%s); use vmmk/internal/simrand with an explicit seed", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if forbiddenTimeFuncs[obj.Name()] {
				pass.Reportf(sel.Pos(), "time.%s reads the host wall clock; simulator time must come from hw.Clock (Machine.Now)", obj.Name())
			}
			return true
		})
	}
	return nil
}
