// Package a is the tracecomp fixture: components built at charge sites must
// fire, while charging through handles interned at construction must pass.
package a

import (
	"fmt"
	"strconv"

	"vmmk/internal/trace"
)

type srv struct {
	rec  *trace.Recorder
	comp trace.Comp
}

// newSrv interns at construction — the sanctioned idiom, even for a
// dynamically built name.
func newSrv(rec *trace.Recorder, id int) *srv {
	return &srv{rec: rec, comp: rec.Intern("srv." + strconv.Itoa(id))}
}

func (s *srv) good() {
	s.rec.Charge(0, trace.KTrap, s.comp, 10)
	s.rec.ChargeCycles(s.comp, 5)
	// The batched variant through a stored handle is the sanctioned hot-loop
	// idiom.
	s.rec.ChargeN(0, trace.KTrap, s.comp, 10, 64)
}

func (s *srv) bad(name string, i int) {
	s.rec.Charge(0, trace.KTrap, s.rec.Intern(name), 10)          // want `inline Intern call`
	s.rec.ChargeCycles(s.rec.Intern("srv."+name), 5)              // want `inline Intern call`
	s.rec.ChargeCycles(s.rec.Intern(fmt.Sprintf("srv.%d", i)), 5) // want `inline Intern call`
	// Batching a loop's charges does not license building the handle there.
	s.rec.ChargeN(0, trace.KTrap, s.rec.Intern(name), 10, 64)            // want `inline Intern call`
	s.rec.ChargeN(0, trace.KTrap, handleFor(s.rec, "srv."+name), 10, 64) // want `string concatenation at the charge site`
}

// handleFor hides the Intern behind a helper; the concatenation at the
// charge site still gives the construction away.
func handleFor(rec *trace.Recorder, name string) trace.Comp { return rec.Intern(name) }

func (s *srv) alsoBad(name string) {
	s.rec.ChargeCycles(handleFor(s.rec, "srv."+name), 1) // want `string concatenation at the charge site`
}
