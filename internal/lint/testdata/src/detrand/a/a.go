// Package a is the detrand fixture: wall-clock and randomness sources that
// must fire, next to the sanctioned idioms that must pass.
package a

import (
	"math/rand" // want `import of math/rand in simulator code`
	"time"

	"vmmk/internal/simrand"
)

// tick shows that time.Duration arithmetic is fine: no wall clock is read.
const tick = 50 * time.Millisecond

func bad() uint64 {
	t := time.Now()      // want `time.Now reads the host wall clock`
	_ = time.Since(t)    // want `time.Since reads the host wall clock`
	time.Sleep(tick)     // want `time.Sleep reads the host wall clock`
	_ = time.After(tick) // want `time.After reads the host wall clock`
	return rand.Uint64()
}

func good() uint64 {
	r := simrand.New(42)
	return r.Uint64()
}

func ignored() time.Time {
	//vmmklint:ignore host-side profiling clock, never part of simulated results
	return time.Now()
}
