// Package a proves a reasonless ignore directive is rejected: the go
// statement below must still be reported, and the directive itself becomes a
// finding.
package a

func bad(f func()) {
	//vmmklint:ignore
	go f()
}
