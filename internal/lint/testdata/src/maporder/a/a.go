// Package a is the maporder fixture: map-iteration-order escapes that must
// fire, next to the sanctioned order-insensitive idioms that must pass.
package a

import (
	"fmt"
	"sort"
	"strings"
)

func bad(m map[string]int, b *strings.Builder, ch chan string, out []string) []string {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `map iteration order escapes into Printf`
	}
	for k := range m {
		b.WriteString(k) // want `map iteration order escapes into WriteString`
	}
	for k := range m {
		ch <- k // want `map iteration order escapes into a channel send`
	}
	var rows []string
	for k, v := range m {
		rows = append(rows, fmt.Sprintf("%s=%d", k, v)) // want `append of derived data` `escapes into Sprintf`
	}
	i := 0
	for k := range m {
		out[i] = k // want `map iteration order decides slice element positions`
		i++
	}
	return rows
}

func good(m map[string]int) []string {
	var keys []string
	for k := range m { // collecting bare keys to sort afterwards is the idiom
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0
	for _, v := range m {
		sum += v // commutative accumulation is order-insensitive
	}
	inverse := make(map[int]string, len(m))
	for k, v := range m {
		inverse[v] = k // writing another map is keyed, not ordered
	}
	for k := range m {
		delete(m, k)
	}
	keys = append(keys, fmt.Sprint(sum, len(inverse)))
	return keys
}

func ignoredPick(m map[string]int) string {
	for k := range m {
		//vmmklint:ignore any element will do, result feeds an unordered set
		return fmt.Sprint(k)
	}
	return ""
}
