// Package a is the scenrow fixture: malformed scenario rows must fire,
// the sanctioned declaration shape must pass.
package a

import (
	"errors"

	scenario "vmmk/internal/scenario"
)

var errBoom = errors.New("boom")

// sharedOutcome exists to prove Expect must be inline, not a variable.
var sharedOutcome = scenario.Outcome{Desc: "shared", Err: errBoom}

func rows() []scenario.S {
	return []scenario.S{
		{
			// The sanctioned shape: constant strings, prefixed id, inline
			// Outcome with Desc and a graded expectation, and a Run.
			ID: "mk/good-row", Subsystem: "mk", Fault: "fixture fault",
			Expect: scenario.Outcome{Desc: "ErrBoom", Err: errBoom},
			Run:    func(*scenario.Env) error { return nil },
		},
		{
			// Check alone is a valid expectation, and Desc may describe it.
			ID: "hw/check-only", Subsystem: "hw", Fault: "fixture fault",
			Expect: scenario.Outcome{Desc: "state predicate", Check: func(*scenario.Env) error { return nil }},
			Run:    func(*scenario.Env) error { return nil },
		},
		{
			// Compare alone is a valid expectation: a cross-leg trace invariant.
			ID: "hw/compare-only", Subsystem: "hw", Fault: "fixture fault",
			Expect: scenario.Outcome{Desc: "trace invariant", Compare: func(_, _ *scenario.Env) error { return nil }},
			Run:    func(*scenario.Env) error { return nil },
		},
		{ // want `missing ID` `missing Fault`
			Subsystem: "mk",
			Expect:    scenario.Outcome{Desc: "d", Err: errBoom},
			Run:       func(*scenario.Env) error { return nil },
		},
		{
			ID: "mk/misfiled", Subsystem: "vmm", Fault: "fixture fault", // want `id "mk/misfiled" must start with "vmm/"`
			Expect: scenario.Outcome{Desc: "d", Err: errBoom},
			Run:    func(*scenario.Env) error { return nil },
		},
		{
			ID: "net/row", Subsystem: "net", Fault: "fixture fault", // want `unknown subsystem "net"`
			Expect: scenario.Outcome{Desc: "d", Err: errBoom},
			Run:    func(*scenario.Env) error { return nil },
		},
		{
			ID: rowID(), Subsystem: "mk", Fault: "fixture fault", // want `ID must be a non-empty string constant`
			Expect: scenario.Outcome{Desc: "d", Err: errBoom},
			Run:    func(*scenario.Env) error { return nil },
		},
		{ // want `missing Run`
			ID: "mk/no-run", Subsystem: "mk", Fault: "fixture fault",
			Expect: scenario.Outcome{Desc: "d", Err: errBoom},
		},
		{
			ID: "mk/shared-outcome", Subsystem: "mk", Fault: "fixture fault",
			Expect: sharedOutcome, // want `Expect must be an inline scenario.Outcome literal`
			Run:    func(*scenario.Env) error { return nil },
		},
		{
			ID: "mk/ungraded", Subsystem: "mk", Fault: "fixture fault",
			Expect: scenario.Outcome{Desc: "d"}, // want `declares none of Err, Panic, Check or Compare`
			Run:    func(*scenario.Env) error { return nil },
		},
		{
			ID: "mk/no-desc", Subsystem: "mk", Fault: "fixture fault",
			Expect: scenario.Outcome{Err: errBoom}, // want `missing Desc`
			Run:    func(*scenario.Env) error { return nil },
		},
		{ // want `missing Expect`
			ID: "mk/no-expect", Subsystem: "mk", Fault: "fixture fault",
			Run: func(*scenario.Env) error { return nil },
		},
	}
}

func rowID() string { return "mk/computed" }
