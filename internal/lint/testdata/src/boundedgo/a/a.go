// Package a is the boundedgo fixture: naked go statements must fire
// everywhere (only internal/core/runner.go is exempt, and that file is not
// this one).
package a

func bad(f func()) {
	go f()      // want `naked go statement`
	go func() { // want `naked go statement`
		f()
	}()
}

func good(f func()) {
	f()
}
