// Package a is the regspec fixture: experiment files that violate the
// registry conventions must fire, while the sanctioned declaration shape
// must pass. File names matter here — the eN_*.go pattern is what puts a
// file under the one-registration-per-file rule.
package a

import (
	"context"

	core "vmmk/internal/core"
)

func init() {
	core.Register(core.Spec{
		ID:    "e90",
		Title: "well-formed fixture experiment",
		Params: []core.Param{{
			Name: "n", Kind: core.ParamInt, DefaultInt: 100, Max: 1 << 20,
			Unit: "ops", Help: "iteration count",
		}},
		Run: run90,
	})
}

func run90(_ context.Context, _ *core.Runner, _ core.Params) (*core.Result, error) {
	return nil, nil
}
