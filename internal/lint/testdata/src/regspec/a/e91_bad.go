package a

import (
	"context"

	core "vmmk/internal/core"
)

func init() {
	core.Register(core.Spec{ // want `missing Title` `missing Run`
		ID: "e91",
		Params: []core.Param{
			{Name: "n", Kind: core.ParamInt, DefaultInt: 100}, // want `missing Help` `missing Unit` `missing Max`
		},
	})
}

// alsoRegisters breaks the one-registration-per-file rule twice over: a
// second Register call, and one outside init.
func alsoRegisters() {
	core.Register(core.Spec{ // want `registers 2 core.Specs` `outside init`
		ID:    "e91b",
		Title: "duplicate registration",
		Run:   run91,
	})
}

func run91(_ context.Context, _ *core.Runner, _ core.Params) (*core.Result, error) {
	return nil, nil
}
