package a

// cols.go deliberately does not match the eN_*.go pattern: the column-schema
// and Param-literal rules are package-wide, the one-registration rule is
// not.

import core "vmmk/internal/core"

func tables(unit string) *core.ResultTable {
	return core.NewResultTable("fixture",
		core.Col("ops", "ops"),
		core.Col("mode", ""), // an explicit dimensionless label column is fine
		core.Col("x", unit),  // want `Col unit must be a compile-time string constant`
		core.Col("", "ops"),  // want `Col name must not be empty`
	)
}
