package a // want `experiment file e93_empty.go registers no core.Spec`

// This file matches the eN_*.go pattern but never registers: the whole point
// of the convention is that an experiment file with no registration is dead
// weight the CLI cannot see.
