package a

import (
	"context"

	core "vmmk/internal/core"
)

func init() {
	core.Register(core.Spec{
		ID:    "e92",
		Title: "defaults must sit inside the declared bounds",
		Params: []core.Param{
			{Name: "n", Kind: core.ParamInt, Unit: "ops", Help: "count",
				DefaultInt: 200, Max: 100}, // want `DefaultInt 200 is outside`
			{Name: "list", Kind: core.ParamIntList, Unit: "cores", Help: "cores", Max: 8,
				DefaultList: []int{1,
					16}}, // want `DefaultList entry 16 is outside`
		},
		Run: run92,
	})
}

func run92(_ context.Context, _ *core.Runner, _ core.Params) (*core.Result, error) {
	return nil, nil
}
