package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one loaded, type-checked package: the unit an Analyzer runs on.
// Only the package's own non-test sources are parsed; imports (including the
// module's other packages) are resolved through compiler export data, so a
// whole-repo load costs one `go list -export` plus a type-check of each
// analyzed package's own files.
type Package struct {
	// ImportPath is the package's import path ("vmmk/internal/trace").
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// GoFiles are the non-test source file names the package built from.
	GoFiles []string
	// Fset maps positions for Files (shared across one Load).
	Fset *token.FileSet
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info records the type-checker's facts about every expression.
	Info *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// listFields names the -json fields requested from `go list`; asking for a
// fixed set keeps the output small and the contract explicit.
const listFields = "ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error"

// goList runs `go list -deps -export -json` in dir over the given patterns
// and returns the decoded package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=" + listFields}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup function over the export data
// files `go list -export` reported.
func exportLookup(pkgs []*listPackage) func(string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
}

// newInfo returns a types.Info with every fact map analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// checkFiles parses and type-checks one package's files against imp.
func checkFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		GoFiles:    goFiles,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Load resolves the patterns with `go list` in dir (the module root) and
// returns every matched package parsed and type-checked, dependencies
// resolved through export data. Test files are not loaded: the invariants
// the analyzers guard are about simulator code, and tests legitimately use
// wall-clock timeouts and ad-hoc iteration.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
	}
	lookup := exportLookup(listed)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := checkFiles(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir parses and type-checks the single package rooted at dir, resolving
// its imports against the module at moduleRoot. This is the fixture loader:
// dir may live under a testdata tree the go tool refuses to list, while its
// imports (standard library or module packages) still resolve through export
// data. The synthetic import path is "fixture/" plus the directory base.
func LoadDir(moduleRoot, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(goFiles)

	// Parse first to discover the imports the fixture needs, then ask the
	// go tool for their export data (std and module packages alike).
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(goFiles))
	imports := map[string]bool{}
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[path] = true
		}
	}
	patterns := make([]string, 0, len(imports))
	for path := range imports {
		patterns = append(patterns, path)
	}
	sort.Strings(patterns)
	var listed []*listPackage
	if len(patterns) > 0 {
		if listed, err = goList(moduleRoot, patterns); err != nil {
			return nil, err
		}
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(listed))
	info := newInfo()
	conf := types.Config{Importer: imp}
	importPath := "fixture/" + filepath.Base(dir)
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", dir, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		GoFiles:    goFiles,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
