package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer so the checks could be ported to a
// stock multichecker wholesale if the dependency ever becomes available.
type Analyzer struct {
	// Name is the analyzer's identifier, shown with every diagnostic.
	Name string
	// Doc is the one-paragraph description `vmmklint -help` prints.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding: which analyzer fired, where, and why.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that reported the finding.
	Analyzer string `json:"analyzer"`
	// Pos locates the finding (file, line, column).
	Pos token.Position `json:"pos"`
	// Message explains the finding and names the sanctioned idiom.
	Message string `json:"message"`
}

// String renders the diagnostic the way compilers do: file:line:col: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression, use and definition facts.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ignoreDirective is the comment prefix that suppresses findings on its own
// line and the line directly below it. A reason is mandatory.
const ignoreDirective = "//vmmklint:ignore"

// Run applies every analyzer to every package, applies the ignore
// directives, and returns the surviving diagnostics sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		pkgDiags = append(pkgDiags, suppress(pkg, nil)...)
		diags = append(diags, applyIgnores(pkg, pkgDiags)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppress returns framework diagnostics for malformed ignore directives in
// pkg (a directive without a reason suppresses nothing and is itself an
// error, so a lazy blanket ignore can never slip in silently).
func suppress(pkg *Package, out []Diagnostic) []Diagnostic {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, ignoreDirective))
				if reason == "" {
					out = append(out, Diagnostic{
						Analyzer: "vmmklint",
						Pos:      pkg.Fset.Position(c.Pos()),
						Message:  "vmmklint:ignore directive needs a reason",
					})
				}
			}
		}
	}
	return out
}

// applyIgnores drops diagnostics covered by a well-formed ignore directive:
// a directive suppresses findings on its own line (trailing comment) and on
// the line directly below it (comment above the statement).
func applyIgnores(pkg *Package, diags []Diagnostic) []Diagnostic {
	ignored := map[string]map[int]bool{} // filename -> suppressed lines
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				if strings.TrimSpace(strings.TrimPrefix(c.Text, ignoreDirective)) == "" {
					continue // malformed; reported by suppress, never honoured
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := ignored[pos.Filename]
				if lines == nil {
					lines = map[int]bool{}
					ignored[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "vmmklint" && ignored[d.Pos.Filename][d.Pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}
