package lint_test

import (
	"testing"

	"vmmk/internal/lint"
	"vmmk/internal/lint/linttest"
)

// The fixture tests prove each analyzer both fires on violations and stays
// quiet on the sanctioned idioms (every `// want` in the fixture must match
// a finding, every finding must match a `// want`).

func TestDetrandFixture(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/detrand/a", lint.AnalyzerDetrand)
}

func TestMaporderFixture(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/maporder/a", lint.AnalyzerMaporder)
}

func TestTracecompFixture(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/tracecomp/a", lint.AnalyzerTracecomp)
}

func TestBoundedgoFixture(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/boundedgo/a", lint.AnalyzerBoundedgo)
}

func TestRegspecFixture(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/regspec/a", lint.AnalyzerRegspec)
}

func TestScenrowFixture(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/scenrow/a", lint.AnalyzerScenrow)
}
