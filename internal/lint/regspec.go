package lint

import (
	"go/ast"
	"go/constant"
	"path/filepath"
	"regexp"
)

// AnalyzerRegspec enforces the declarative experiment-registry conventions:
// every internal/core/eN_*.go file registers exactly one core.Spec from an
// init function; every core.Param literal declares a non-empty Unit and Help
// and a positive Max bound (with constant defaults inside those bounds); and
// every Col(...) column schema is built from compile-time string constants,
// so the machine-readable output schema can never depend on runtime state.
var AnalyzerRegspec = &Analyzer{
	Name: "regspec",
	Doc: "registry conventions: one core.Spec registration per eN file " +
		"(from init), units and bounds on every core.Param, constant " +
		"column schemas via Col",
	Run: runRegspec,
}

// experimentFile matches the per-experiment source files the registry
// convention applies to (e1_dom0.go, e12_smp.go, ...).
var experimentFile = regexp.MustCompile(`^e[0-9]+_.+\.go$`)

const corePath = "vmmk/internal/core"

func runRegspec(pass *Pass) error {
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if experimentFile.MatchString(base) {
			checkExperimentFile(pass, f, base)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if isNamedType(pass.TypeOf(n), corePath, "Param") {
					checkParamLit(pass, n)
				}
			case *ast.CallExpr:
				if fn := calleeFunc(pass.Info, n); isPkgFunc(fn, corePath, "Col") && len(n.Args) == 2 {
					checkColCall(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkExperimentFile enforces the one-registration-per-file shape: exactly
// one core.Register call, lexically inside an init function, with an inline
// Spec literal whose ID, Title and Run are all present.
func checkExperimentFile(pass *Pass, f *ast.File, base string) {
	type regCall struct {
		call   *ast.CallExpr
		inInit bool
	}
	var regs []regCall
	for _, decl := range f.Decls {
		fd, isFunc := decl.(*ast.FuncDecl)
		inInit := isFunc && fd.Recv == nil && fd.Name.Name == "init"
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass.Info, call); isPkgFunc(fn, corePath, "Register") {
				regs = append(regs, regCall{call, inInit})
			}
			return true
		})
	}
	switch len(regs) {
	case 0:
		pass.Reportf(f.Pos(), "experiment file %s registers no core.Spec; every eN_*.go must call Register exactly once from init", base)
		return
	case 1:
	default:
		pass.Reportf(regs[1].call.Pos(), "experiment file %s registers %d core.Specs; every eN_*.go must call Register exactly once from init", base, len(regs))
	}
	for _, r := range regs {
		if !r.inInit {
			pass.Reportf(r.call.Pos(), "core.Register call outside init; experiments self-register at package init so the CLI and the sweep see one consistent registry")
		}
		checkSpecArg(pass, r.call)
	}
}

// checkSpecArg validates the inline Spec literal of a Register call.
func checkSpecArg(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
	if !ok || !isNamedType(pass.TypeOf(lit), corePath, "Spec") {
		pass.Reportf(call.Args[0].Pos(), "Register wants an inline core.Spec literal so the registration is statically auditable")
		return
	}
	fields := keyedFields(lit)
	for _, name := range []string{"ID", "Title"} {
		v, present := fields[name]
		if !present {
			pass.Reportf(lit.Pos(), "core.Spec literal is missing %s", name)
			continue
		}
		if s, isConst := constString(pass, v); !isConst || s == "" {
			pass.Reportf(v.Pos(), "core.Spec %s must be a non-empty string constant", name)
		}
	}
	if _, present := fields["Run"]; !present {
		pass.Reportf(lit.Pos(), "core.Spec literal is missing Run")
	}
}

// checkParamLit validates one core.Param composite literal: named, helped,
// united and bounded, with constant defaults inside the bounds.
func checkParamLit(pass *Pass, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 {
		return // the zero Param is a not-found sentinel, not a declaration
	}
	if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
		pass.Reportf(lit.Pos(), "core.Param literal must use keyed fields so the declaration is auditable")
		return
	}
	fields := keyedFields(lit)
	for _, name := range []string{"Name", "Help", "Unit"} {
		v, present := fields[name]
		if !present {
			pass.Reportf(lit.Pos(), "core.Param literal is missing %s; every parameter declares its flag name, help text and unit", name)
			continue
		}
		if s, isConst := constString(pass, v); isConst && s == "" {
			pass.Reportf(v.Pos(), "core.Param %s must not be empty", name)
		}
	}
	maxExpr, present := fields["Max"]
	if !present {
		pass.Reportf(lit.Pos(), "core.Param literal is missing Max; every parameter declares an explicit upper bound (pick a generous one rather than none)")
		return
	}
	max, maxConst := constInt(pass, maxExpr)
	if maxConst && max <= 0 {
		pass.Reportf(maxExpr.Pos(), "core.Param Max must be positive (got %d)", max)
		return
	}
	if !maxConst {
		return
	}
	if d, ok := fields["DefaultInt"]; ok {
		if v, isConst := constInt(pass, d); isConst && (v < 1 || v > max) {
			pass.Reportf(d.Pos(), "core.Param DefaultInt %d is outside [1, Max=%d]", v, max)
		}
	}
	if d, ok := fields["DefaultList"]; ok {
		if dl, isLit := ast.Unparen(d).(*ast.CompositeLit); isLit {
			for _, e := range dl.Elts {
				if v, isConst := constInt(pass, e); isConst && (v < 1 || v > max) {
					pass.Reportf(e.Pos(), "core.Param DefaultList entry %d is outside [1, Max=%d]", v, max)
				}
			}
		}
	}
}

// checkColCall requires Col's name and unit to be compile-time string
// constants (the unit may be the empty string for dimensionless label
// columns, but it must be spelled out, never computed).
func checkColCall(pass *Pass, call *ast.CallExpr) {
	name, nameConst := constString(pass, call.Args[0])
	if !nameConst {
		pass.Reportf(call.Args[0].Pos(), "Col name must be a compile-time string constant so the result schema is statically auditable")
	} else if name == "" {
		pass.Reportf(call.Args[0].Pos(), "Col name must not be empty")
	}
	if _, unitConst := constString(pass, call.Args[1]); !unitConst {
		pass.Reportf(call.Args[1].Pos(), "Col unit must be a compile-time string constant (\"\" is allowed for label columns, a computed unit is not)")
	}
}

// keyedFields maps a composite literal's keyed field names to their values.
func keyedFields(lit *ast.CompositeLit) map[string]ast.Expr {
	out := map[string]ast.Expr{}
	for _, e := range lit.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			out[id.Name] = kv.Value
		}
	}
	return out
}

// constString evaluates e as a compile-time string constant.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// constInt evaluates e as a compile-time integer constant.
func constInt(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return v, true
}
