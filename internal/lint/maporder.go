package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerMaporder flags range statements over maps whose iteration order
// escapes into output: formatted text, table rows, writers, channels or
// order-dependent slice stores. Go randomises map iteration per run, so any
// such escape breaks the byte-identical-results guarantee the golden files
// pin.
//
// The sanctioned idioms pass: collecting bare keys (or values) into a slice
// to sort afterwards, accumulating commutative sums, building another map,
// and deleting entries.
var AnalyzerMaporder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops whose visit order escapes into rows, " +
		"rendered tables, formatted output, writers or channels; collect " +
		"keys and sort first (map iteration order is randomised per run)",
	Run: runMaporder,
}

// orderSinkMethods are method names that append, render or record their
// arguments in call order: feeding them map-iteration-ordered data makes the
// output order random per run.
var orderSinkMethods = map[string]bool{
	"Write":        true,
	"WriteString":  true,
	"WriteByte":    true,
	"WriteRune":    true,
	"AddRow":       true,
	"Record":       true,
	"Charge":       true,
	"ChargeN":      true,
	"ChargeCycles": true,
	"Count":        true,
	"CountN":       true,
	"Emit":         true,
	"Log":          true,
	"Logf":         true,
	"Append":       true,
	"Push":         true,
	"Enqueue":      true,
	"Print":        true,
	"Printf":       true,
	"Println":      true,
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			vars := map[types.Object]bool{}
			var keyObj, valObj types.Object
			if rs.Key != nil {
				if keyObj = defObj(pass.Info, rs.Key); keyObj != nil {
					vars[keyObj] = true
				}
			}
			if rs.Value != nil {
				if valObj = defObj(pass.Info, rs.Value); valObj != nil {
					vars[valObj] = true
				}
			}
			if len(vars) == 0 {
				return true // `for range m` visits nothing order-dependent
			}
			checkMapBody(pass, rs, vars, keyObj, valObj)
			return true
		})
	}
	return nil
}

// checkMapBody walks a range-over-map body looking for order sinks fed by
// the loop variables.
func checkMapBody(pass *Pass, rs *ast.RangeStmt, vars map[types.Object]bool, keyObj, valObj types.Object) {
	info := pass.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkMapCall(pass, n, vars, keyObj, valObj)
		case *ast.SendStmt:
			if mentionsAny(info, n.Value, vars) {
				pass.Reportf(n.Pos(), "map iteration order escapes into a channel send; iterate sorted keys instead")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				xt := pass.TypeOf(idx.X)
				if xt == nil {
					continue
				}
				switch xt.Underlying().(type) {
				case *types.Slice, *types.Array:
				default:
					continue
				}
				if mentionsAny(info, idx.Index, vars) {
					continue // indexed by the key itself: position is data-determined
				}
				for _, rhs := range n.Rhs {
					if mentionsAny(info, rhs, vars) {
						pass.Reportf(n.Pos(), "map iteration order decides slice element positions here; iterate sorted keys instead")
						break
					}
				}
			}
		}
		return true
	})
}

// checkMapCall classifies one call inside a range-over-map body.
func checkMapCall(pass *Pass, call *ast.CallExpr, vars map[types.Object]bool, keyObj, valObj types.Object) {
	info := pass.Info
	// append: collecting the bare key or bare value into a slice is the
	// first half of the collect-then-sort idiom and passes; appending
	// anything composed from the loop variables bakes the visit order into
	// the slice.
	if isBuiltin(info, call, "append") {
		for _, arg := range call.Args[1:] {
			if o := defObj(info, ast.Unparen(arg)); o != nil && (o == keyObj || o == valObj) {
				continue
			}
			if mentionsAny(info, arg, vars) {
				pass.Reportf(call.Pos(), "map iteration order escapes into an append of derived data; collect bare keys and sort, then build rows in key order")
			}
		}
		return
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	isSink := (fn.Pkg() != nil && fn.Pkg().Path() == "fmt") ||
		(fn.Type().(*types.Signature).Recv() != nil && orderSinkMethods[fn.Name()])
	if !isSink {
		return
	}
	for _, arg := range call.Args {
		if mentionsAny(info, arg, vars) {
			pass.Reportf(call.Pos(), "map iteration order escapes into %s; iterate sorted keys so output is deterministic", fn.Name())
			return
		}
	}
}
