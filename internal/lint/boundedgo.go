package lint

import (
	"go/ast"
	"path/filepath"
)

// AnalyzerBoundedgo forbids naked go statements outside the bounded worker
// pool. internal/core/runner.go is the one place allowed to spawn: its pool
// bounds parallelism, propagates context cancellation, and preserves the
// serial==parallel determinism guarantee (results are ordered by cell index,
// never by completion). A goroutine launched anywhere else escapes all three
// properties.
var AnalyzerBoundedgo = &Analyzer{
	Name: "boundedgo",
	Doc: "forbid naked go statements outside internal/core/runner.go; all " +
		"parallelism goes through the bounded core.Runner pool so " +
		"cancellation and serial==parallel determinism hold",
	Run: runBoundedgo,
}

func runBoundedgo(pass *Pass) error {
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if pass.Pkg.Path() == "vmmk/internal/core" && filepath.Base(pos.Filename) == "runner.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "naked go statement: spawn through the bounded core.Runner pool (internal/core/runner.go) so cancellation and determinism guarantees hold")
			}
			return true
		})
	}
	return nil
}
