package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// AnalyzerTracecomp enforces the flat-ledger charging invariant: every
// charge site passes a trace.Comp handle that was interned at construction
// time. Building the component at the charge site — an inline Intern call, a
// fmt.Sprintf, or string concatenation — reintroduces the hashing and
// allocation the handle refactor removed from the hot path (22 -> 4.2
// ns/op), so it is forbidden wherever a Comp flows into a Charge* method —
// the batched ChargeN included: one aggregate call per loop makes the
// per-call overhead rarer, not acceptable.
var AnalyzerTracecomp = &Analyzer{
	Name: "tracecomp",
	Doc: "forbid component names built at Recorder/CPU charge sites " +
		"(inline Intern, fmt.Sprintf, string concatenation); intern a " +
		"trace.Comp once at construction and charge through the stored handle",
	Run: runTracecomp,
}

func runTracecomp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !strings.HasPrefix(fn.Name(), "Charge") {
				return true
			}
			for _, arg := range call.Args {
				if !isNamedType(pass.TypeOf(arg), "vmmk/internal/trace", "Comp") {
					continue
				}
				if bad, what := builtAtChargeSite(pass, arg); bad {
					pass.Reportf(arg.Pos(), "component handle passed to %s is built at the charge site (%s); intern the trace.Comp at construction and charge through the stored handle", fn.Name(), what)
				}
			}
			return true
		})
	}
	return nil
}

// builtAtChargeSite reports whether the Comp-typed argument expression
// constructs its component on the spot, and names the offending construct.
func builtAtChargeSite(pass *Pass, arg ast.Expr) (bool, string) {
	var what string
	ast.Inspect(arg, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n); fn != nil {
				if fn.Name() == "Intern" {
					what = "inline Intern call"
					return false
				}
				if isPkgFunc(fn, "fmt", "Sprintf") || isPkgFunc(fn, "fmt", "Sprint") {
					what = "fmt.Sprint at the charge site"
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.TypeOf(n.X)) {
				what = "string concatenation at the charge site"
				return false
			}
		}
		return true
	})
	return what != "", what
}
