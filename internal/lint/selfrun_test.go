package lint_test

import (
	"testing"

	"vmmk/internal/lint"
	"vmmk/internal/lint/linttest"
)

// TestVmmklintClean is the self-run: the whole repository must pass its own
// analyzer suite. A failure here is a real invariant regression (or a new
// false positive, which is a bug in the analyzer — fix the analyzer, do not
// reach for the ignore directive).
func TestVmmklintClean(t *testing.T) {
	root := linttest.ModuleRoot(t)
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags, err := lint.Run(lint.All(), pkgs)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestIgnoreDirectiveNeedsReason pins the framework rule that a bare
// //vmmklint:ignore suppresses nothing and is itself reported.
func TestIgnoreDirectiveNeedsReason(t *testing.T) {
	root := linttest.ModuleRoot(t)
	pkg, err := lint.LoadDir(root, root+"/internal/lint/testdata/src/bareignore/a")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := lint.Run([]*lint.Analyzer{lint.AnalyzerBoundedgo}, []*lint.Package{pkg})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	var sawDirective, sawFinding bool
	for _, d := range diags {
		switch d.Analyzer {
		case "vmmklint":
			sawDirective = true
		case "boundedgo":
			sawFinding = true
		}
	}
	if !sawDirective {
		t.Error("bare ignore directive was not reported")
	}
	if !sawFinding {
		t.Error("bare ignore directive suppressed a finding; only reasoned directives may")
	}
}
