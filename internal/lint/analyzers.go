package lint

// All returns the full vmmklint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerBoundedgo,
		AnalyzerDetrand,
		AnalyzerMaporder,
		AnalyzerRegspec,
		AnalyzerScenrow,
		AnalyzerTracecomp,
	}
}
