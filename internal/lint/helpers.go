package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call expression invokes, or
// nil for builtins, conversions and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function of the named package.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// mentionsAny reports whether the expression tree under n references any of
// the given objects.
func mentionsAny(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	if n == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// isNamedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// defObj returns the object an assignment target defines or uses: the loop
// variables of a range statement arrive here as *ast.Ident expressions.
func defObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
