package cluster

import (
	"errors"
	"fmt"

	"vmmk/internal/vmm"
)

// MigrateGuest live-migrates a placed guest to the host with fleet index
// dst over the cluster's link. On success the guest runs on dst (unpaused)
// and the source host's remaining guests reflate; an aborted migration
// (vmm.ErrMigrationAborted, e.g. the link went down) leaves both hosts
// clean — the source guest keeps running, the destination keeps nothing.
func (c *Cluster) MigrateGuest(name string, dst int) (*vmm.LiveStats, error) {
	g, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGuest, name)
	}
	if dst < 0 || dst >= len(c.hosts) {
		return nil, fmt.Errorf("%w: %d (fleet of %d)", ErrBadHost, dst, len(c.hosts))
	}
	if c.hosts[dst] == g.host {
		return nil, fmt.Errorf("%w: %q already runs on host%d", ErrBadHost, name, dst)
	}
	return c.migrate(g, c.hosts[dst], nil)
}

// workFactory builds the guest-activity hook for one migration — churn
// uses it to keep the guest dirtying pages while its memory crosses.
type workFactory func(g *Guest) func(round int)

// migrate performs one admission-checked live migration.
func (c *Cluster) migrate(g *Guest, dst *Host, guestWork func(round int)) (*vmm.LiveStats, error) {
	src := g.host
	if !c.admits(dst, g.Nominal) {
		return nil, fmt.Errorf("%w: host%d cannot admit %q", ErrNoHostFits, dst.index, g.Name)
	}
	// The destination must physically hold the guest's resident set; under
	// overcommit that may mean squeezing the guests already there.
	resident := g.Resident()
	if free := dst.m.Mem.FreeFrames(); free < resident {
		if free+c.reclaimable(dst) < resident {
			return nil, fmt.Errorf("%w: host%d lacks %d frames for %q", ErrNoHostFits, dst.index, resident-free, g.Name)
		}
		if err := c.squeeze(dst, resident-free); err != nil {
			return nil, err
		}
	}
	link := &vmm.Link{
		PerPage: c.cfg.LinkPerPage,
		Latency: c.cfg.LinkLatency,
		Budget:  c.cfg.LinkBudget,
	}
	shell, stats, err := vmm.MigrateLive(src.hv, g.dom, dst.hv, vmm.LiveOpts{
		MaxRounds: c.cfg.MaxRounds,
		WSSCutoff: 2,
		GuestWork: guestWork,
		Transport: link.Transport(src.m, dst.m),
	})
	if err != nil {
		// MigrateLive unwound both ends (shell destroyed, dirty log off,
		// source resumed); hand any frames the squeeze freed on the
		// destination back to its guests and report the abort.
		c.stats.Aborted++
		c.logf("abort %s host%d->host%d", g.Name, src.index, dst.index)
		if rerr := c.reflate(dst); rerr != nil {
			return nil, rerr
		}
		return nil, err
	}
	src.committed -= g.Nominal
	for i, sg := range src.guests {
		if sg == g {
			src.guests = append(src.guests[:i], src.guests[i+1:]...)
			break
		}
	}
	g.dom, g.host = shell.ID, dst
	dst.guests = append(dst.guests, g)
	dst.committed += g.Nominal
	if err := dst.hv.Unpause(shell.ID); err != nil {
		return nil, fmt.Errorf("cluster: resume %q on host%d: %w", g.Name, dst.index, err)
	}
	c.stats.Migrations++
	c.stats.Downtimes = append(c.stats.Downtimes, stats.Downtime)
	c.logf("migrate %s host%d->host%d", g.Name, src.index, dst.index)
	if err := c.reflate(src); err != nil {
		return nil, err
	}
	return stats, nil
}

// Rebalance runs one policy-driven migration pass: under BinPack it tries
// to evacuate lightly loaded hosts onto the rest of the fleet (shrinking
// the set of hosts in use); under Spread it moves one guest from the most-
// to the least-committed host when that strictly narrows the gap. It
// returns how many migrations ran. Physical shortfall mid-pass stops the
// pass cleanly rather than failing it.
func (c *Cluster) Rebalance() (int, error) { return c.rebalance(nil) }

// rebalance dispatches on policy, threading the churn dirtier through.
func (c *Cluster) rebalance(work workFactory) (int, error) {
	if c.cfg.Policy == Spread {
		return c.level(work)
	}
	return c.consolidate(work)
}

// consolidate evacuates one lightly loaded host per pass: if the least-
// committed host under half utilization can have all its guests admitted
// elsewhere, migrate them off, emptying it. One evacuation per pass keeps
// the migration rate proportional to churn instead of thrashing the fleet.
func (c *Cluster) consolidate(work workFactory) (int, error) {
	src := c.evacuationTarget()
	if src == nil {
		return 0, nil
	}
	plan, ok := c.evacuationPlan(src)
	if !ok {
		return 0, nil
	}
	moved := 0
	// Snapshot the source's guest list: migrate mutates it.
	guests := append([]*Guest(nil), src.guests...)
	for i, g := range guests {
		var hook func(int)
		if work != nil {
			hook = work(g)
		}
		if _, err := c.migrate(g, c.hosts[plan[i]], hook); err != nil {
			if errors.Is(err, ErrNoHostFits) {
				// The plan was admission-feasible but physical frames ran
				// out (residency floors); stop consolidating this round.
				c.logf("consolidate host%d stopped at %s", src.index, g.Name)
				return moved, nil
			}
			return moved, err
		}
		moved++
	}
	return moved, nil
}

// evacuationTarget picks the host to empty: the least-committed host that
// still has guests and sits under half utilization (an evacuation must be
// worth its migrations), ties to the higher index (pack downward into the
// low indexes). With fewer than two non-empty hosts there is nothing to
// consolidate.
func (c *Cluster) evacuationTarget() *Host {
	var target *Host
	nonEmpty := 0
	for _, h := range c.hosts {
		if len(h.guests) == 0 {
			continue
		}
		nonEmpty++
		if 2*h.committed >= h.cap {
			continue
		}
		if target == nil || h.committed <= target.committed {
			target = h
		}
	}
	if nonEmpty < 2 {
		return nil
	}
	return target
}

// evacuationPlan simulates admitting every guest of src elsewhere, in
// placement order, and returns the destination index per guest. It reports
// false when any guest has no admissible destination — the evacuation is
// all-or-nothing at admission level.
func (c *Cluster) evacuationPlan(src *Host) ([]int, bool) {
	sim := make([]int, len(c.hosts))
	for i, h := range c.hosts {
		sim[i] = h.committed
	}
	plan := make([]int, 0, len(src.guests))
	for _, g := range src.guests {
		best := -1
		for _, h := range c.hosts {
			if h == src || g.Nominal > h.cap {
				continue
			}
			if sim[h.index]+g.Nominal > h.cap*c.cfg.OvercommitPct/100 {
				continue
			}
			if best < 0 || sim[h.index] > sim[best] {
				best = h.index
			}
		}
		if best < 0 {
			return nil, false
		}
		sim[best] += g.Nominal
		plan = append(plan, best)
	}
	return plan, true
}

// level narrows the spread policy's commitment gap by one migration: the
// guest on the most-committed host whose size best closes the gap without
// overshooting moves to the least-committed host.
func (c *Cluster) level(work workFactory) (int, error) {
	var hi, lo *Host
	for _, h := range c.hosts {
		if hi == nil || h.committed > hi.committed {
			hi = h
		}
		if lo == nil || h.committed < lo.committed {
			lo = h
		}
	}
	if hi == nil || hi == lo {
		return 0, nil
	}
	diff := hi.committed - lo.committed
	var pick *Guest
	for _, g := range hi.guests {
		// Moving g must not overshoot (2*Nominal <= diff keeps hi >= lo
		// afterwards, so leveling cannot ping-pong); among candidates the
		// largest mover closes the most gap, ties to the earliest placed.
		if 2*g.Nominal <= diff && (pick == nil || g.Nominal > pick.Nominal) {
			pick = g
		}
	}
	if pick == nil {
		return 0, nil
	}
	var hook func(int)
	if work != nil {
		hook = work(pick)
	}
	if _, err := c.migrate(pick, lo, hook); err != nil {
		if errors.Is(err, ErrNoHostFits) {
			c.logf("level host%d->host%d blocked at %s", hi.index, lo.index, pick.Name)
			return 0, nil
		}
		return 0, err
	}
	return 1, nil
}
