package cluster

import (
	"reflect"
	"testing"

	"vmmk/internal/hw"
)

// churnRun drives one cluster through a fixed churn and returns its
// placement log, stats and final per-host clocks.
func churnRun(t *testing.T, fleet int, p Policy, seed uint64, src MachineSource) ([]string, Stats, []hw.Cycles) {
	t.Helper()
	c, err := New(Config{Hosts: fleet, Policy: p}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RunChurn(ChurnOpts{Events: 48, Seed: seed, MinPages: 12, MaxPages: 44}); err != nil {
		t.Fatal(err)
	}
	clocks := make([]hw.Cycles, 0, fleet)
	for _, h := range c.Hosts() {
		clocks = append(clocks, h.Machine().Now())
	}
	return c.Log(), c.Stats(), clocks
}

// TestPlacementReproducible is the property the whole package is built
// around: every placement decision — and therefore the log, the stats and
// each host's cycle count — is a pure function of (seed, policy, fleet).
func TestPlacementReproducible(t *testing.T) {
	for _, p := range Policies {
		for _, fleet := range []int{2, 3, 5} {
			for seed := uint64(1); seed <= 5; seed++ {
				log1, stats1, clocks1 := churnRun(t, fleet, p, seed, nil)
				log2, stats2, clocks2 := churnRun(t, fleet, p, seed, nil)
				if !reflect.DeepEqual(log1, log2) {
					t.Fatalf("%s fleet=%d seed=%d: placement logs differ\n%v\nvs\n%v", p, fleet, seed, log1, log2)
				}
				if !reflect.DeepEqual(stats1, stats2) {
					t.Fatalf("%s fleet=%d seed=%d: stats differ: %+v vs %+v", p, fleet, seed, stats1, stats2)
				}
				if !reflect.DeepEqual(clocks1, clocks2) {
					t.Fatalf("%s fleet=%d seed=%d: host clocks differ: %v vs %v", p, fleet, seed, clocks1, clocks2)
				}
			}
		}
	}
}

// TestSeedsDiverge guards the property test against vacuity: different
// seeds must actually produce different runs.
func TestSeedsDiverge(t *testing.T) {
	log1, _, _ := churnRun(t, 2, BinPack, 1, nil)
	log2, _, _ := churnRun(t, 2, BinPack, 2, nil)
	if reflect.DeepEqual(log1, log2) {
		t.Fatal("seeds 1 and 2 produced identical placement logs")
	}
}

// TestPooledVsFreshHosts pins host-pooling equivalence at fleet level: a
// cluster booted on recycled (Reset) machines must behave cycle-for-cycle
// like one booted on fresh machines. This is the cluster-shaped version of
// the engine-wide pooled-vs-fresh differential in internal/core.
func TestPooledVsFreshHosts(t *testing.T) {
	pool := hw.NewMachinePool()
	pooled := func(cfg *hw.MachineConfig) (*hw.Machine, func()) {
		m := pool.Get(hw.X86(), cfg)
		return m, func() { pool.Put(m) }
	}
	for _, p := range Policies {
		freshLog, freshStats, freshClocks := churnRun(t, 3, p, 42, nil)
		// First pooled run warms the pool; the second runs wholly on
		// machines Reset from the first.
		churnRun(t, 3, p, 42, pooled)
		hits0, _ := pool.Stats()
		log, stats, clocks := churnRun(t, 3, p, 42, pooled)
		if hits, _ := pool.Stats(); hits-hits0 == 0 {
			t.Fatalf("%s: second pooled run hit the pool 0 times", p)
		}
		if !reflect.DeepEqual(freshLog, log) {
			t.Fatalf("%s: pooled placement log diverged from fresh\n%v\nvs\n%v", p, freshLog, log)
		}
		if !reflect.DeepEqual(freshStats, stats) {
			t.Fatalf("%s: pooled stats diverged: %+v vs %+v", p, freshStats, stats)
		}
		if !reflect.DeepEqual(freshClocks, clocks) {
			t.Fatalf("%s: pooled host clocks diverged: %v vs %v", p, freshClocks, clocks)
		}
	}
}
