// Package cluster is the fleet layer of the simulator: N simulated hosts,
// each a pooled hw.Machine running a vmm.Hypervisor, under one placement
// control plane. It is where the paper's closing argument — VMMs won
// because they manage *whole systems*, not just address spaces — becomes
// measurable: admission control and bin-packing vs. spread placement,
// memory overcommit realized with the balloon hypercalls, and cross-host
// live migration composed from vmm.MigrateLive and a vmm.Link whose
// bandwidth, latency and budget are charged to each host's own trace
// components.
//
// Everything is deterministic: placement scans hosts in index order with
// strict-inequality tie-breaks, churn draws from a caller-seeded
// simrand.Rand, and no code path ranges over a map. Running the same
// (seed, policy, fleet) twice produces the same placement log, the same
// migrations and the same per-host cycle counts — the property E13 and the
// scenario matrix pin.
//
// The package deliberately does not import internal/core: the experiment
// layer hands New a MachineSource bound to its per-worker machine pool,
// and the scenario matrix binds one to its Env. A nil source boots fresh
// machines, so direct use needs no harness.
package cluster
