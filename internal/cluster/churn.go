package cluster

import (
	"errors"
	"fmt"

	"vmmk/internal/simrand"
)

// ChurnOpts parameterises a churn run. The zero value is normalized to the
// published defaults; only Seed has no default — equal seeds mean equal
// runs, which is the point.
type ChurnOpts struct {
	// Events is how many arrival/departure events to draw (default 32).
	Events int
	// Seed seeds the churn's simrand stream. Every decision — arrival vs
	// departure, guest size, which guest departs, migration dirtying —
	// draws from this one stream, so (Seed, Policy, fleet) reproduces the
	// run exactly.
	Seed uint64
	// MinPages/MaxPages bound arriving guests' nominal sizes
	// (defaults 8 and 24).
	MinPages, MaxPages int
	// ArrivalPct is the percentage of events that are arrivals
	// (default 60); an empty cluster always takes an arrival.
	ArrivalPct int
	// DirtyPerRound is how many pages a migrating guest writes per
	// pre-copy round while its memory crosses (default 4).
	DirtyPerRound int
}

// defaults normalizes zero fields in place.
func (o *ChurnOpts) defaults() {
	if o.Events <= 0 {
		o.Events = 32
	}
	if o.MinPages <= 0 {
		o.MinPages = 8
	}
	if o.MaxPages < o.MinPages {
		o.MaxPages = o.MinPages + 16
	}
	if o.ArrivalPct <= 0 {
		o.ArrivalPct = 60
	}
	if o.DirtyPerRound <= 0 {
		o.DirtyPerRound = 4
	}
}

// RunChurn drives the cluster through a seeded arrival/departure workload:
// arrivals place a guest of random size (admission rejections are counted,
// not fatal); departures remove a random guest and then rebalance under
// the cluster's policy — consolidation migrations for BinPack, leveling
// for Spread — with the departing workload's neighbours dirtying pages
// while they move. Stats() and Log() record what happened.
func (c *Cluster) RunChurn(o ChurnOpts) error {
	o.defaults()
	rng := simrand.New(o.Seed)
	dirt := func(g *Guest) func(round int) {
		// Capture the guest's placement at migration start; the writes go
		// through the source hypervisor, where the dirty log sees them.
		hv, dom := g.host.hv, g.dom
		return func(round int) {
			d := hv.Domain(dom)
			if d == nil {
				return
			}
			span := len(d.Frames())
			if span == 0 {
				return
			}
			for k := 0; k < o.DirtyPerRound; k++ {
				gpn := rng.Intn(span)
				// Writes to ballooned-out holes fail by design; the draw
				// still advances the stream deterministically.
				_ = hv.GuestMemWrite(dom, gpn, 0, []byte{byte(round + k)})
			}
		}
	}
	for i := 0; i < o.Events; i++ {
		arrival := len(c.guests) == 0 || int(rng.Uint64n(100)) < o.ArrivalPct
		if arrival {
			pages := o.MinPages + rng.Intn(o.MaxPages-o.MinPages+1)
			name := fmt.Sprintf("d%03d", c.seq)
			c.seq++
			if _, err := c.Place(name, pages); err != nil && !errors.Is(err, ErrNoHostFits) {
				return fmt.Errorf("cluster: churn event %d: %w", i, err)
			}
			continue
		}
		victim := c.guests[rng.Intn(len(c.guests))]
		if err := c.Remove(victim.Name); err != nil {
			return fmt.Errorf("cluster: churn event %d: %w", i, err)
		}
		if _, err := c.rebalance(dirt); err != nil {
			return fmt.Errorf("cluster: churn event %d rebalance: %w", i, err)
		}
	}
	return nil
}
