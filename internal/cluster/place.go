package cluster

import (
	"fmt"
)

// squeezeChunk bounds how many pages one balloon-out takes from a single
// guest before the squeeze reconsiders who is richest — spreading the pain
// across a host's guests instead of draining one.
const squeezeChunk = 8

// Place admits a guest of nominal pages under the cluster's policy and
// creates its domain. Under overcommit the chosen host may be physically
// short; the control plane then balloons placed guests down (never below
// MinResident) to free real frames. Placement failures are typed:
// ErrAlreadyPlaced for a duplicate name, ErrNoHostFits when no host can
// admit the guest either by commitment or physically.
func (c *Cluster) Place(name string, nominal int) (*Guest, error) {
	if nominal <= 0 {
		return nil, fmt.Errorf("cluster: guest %q needs a positive size, got %d", name, nominal)
	}
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrAlreadyPlaced, name)
	}
	for _, h := range c.candidates(nominal, -1) {
		free := h.m.Mem.FreeFrames()
		if free < nominal && free+c.reclaimable(h) < nominal {
			continue // admitted by commitment but physically hopeless
		}
		if free < nominal {
			if err := c.squeeze(h, nominal-free); err != nil {
				return nil, err
			}
		}
		d, err := h.hv.CreateDomain(name, nominal)
		if err != nil {
			return nil, fmt.Errorf("cluster: place %q on host%d: %w", name, h.index, err)
		}
		g := &Guest{Name: name, Nominal: nominal, dom: d.ID, host: h}
		h.guests = append(h.guests, g)
		h.committed += nominal
		c.guests = append(c.guests, g)
		c.byName[name] = g
		c.stats.Placed++
		c.logf("place %s(%dp) -> host%d", name, nominal, h.index)
		return g, nil
	}
	c.stats.Rejected++
	c.logf("reject %s(%dp)", name, nominal)
	return nil, fmt.Errorf("%w: %q (%d pages)", ErrNoHostFits, name, nominal)
}

// Remove destroys a placed guest's domain and reflates the remaining
// guests on its host back toward their nominal sizes.
func (c *Cluster) Remove(name string) error {
	g, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownGuest, name)
	}
	h := g.host
	if err := h.hv.DestroyDomain(g.dom); err != nil {
		return fmt.Errorf("cluster: remove %q: %w", name, err)
	}
	c.drop(g)
	c.stats.Removed++
	c.logf("remove %s <- host%d", name, h.index)
	return c.reflate(h)
}

// drop erases the guest from the control plane's books.
func (c *Cluster) drop(g *Guest) {
	h := g.host
	h.committed -= g.Nominal
	for i, hg := range h.guests {
		if hg == g {
			h.guests = append(h.guests[:i], h.guests[i+1:]...)
			break
		}
	}
	for i, cg := range c.guests {
		if cg == g {
			c.guests = append(c.guests[:i], c.guests[i+1:]...)
			break
		}
	}
	delete(c.byName, g.Name)
}

// reclaimable returns how many pages the squeeze could balloon out of h's
// guests without pushing any below MinResident.
func (c *Cluster) reclaimable(h *Host) int {
	total := 0
	for _, g := range h.guests {
		if own := g.Resident(); own > c.cfg.MinResident {
			total += own - c.cfg.MinResident
		}
	}
	return total
}

// squeeze balloons need pages out of h's guests, repeatedly taking up to
// squeezeChunk from whichever guest is richest (ties favor the earliest
// placed). Callers check reclaimable first; running dry anyway is an
// internal inconsistency, not an admission rejection.
func (c *Cluster) squeeze(h *Host, need int) error {
	for need > 0 {
		var victim *Guest
		most := c.cfg.MinResident
		for _, g := range h.guests {
			if own := g.Resident(); own > most {
				victim, most = g, own
			}
		}
		if victim == nil {
			return fmt.Errorf("cluster: host%d squeeze ran dry with %d pages still needed", h.index, need)
		}
		take := most - c.cfg.MinResident
		if take > need {
			take = need
		}
		if take > squeezeChunk {
			take = squeezeChunk
		}
		got, err := h.hv.BalloonOut(victim.dom, take)
		if err != nil {
			return fmt.Errorf("cluster: squeeze %q on host%d: %w", victim.Name, h.index, err)
		}
		c.stats.Squeezed += got
		need -= got
	}
	return nil
}

// reflate gives freed frames back to h's squeezed guests, in placement
// order, until each is back at its nominal size or the host runs out of
// free frames.
func (c *Cluster) reflate(h *Host) error {
	free := h.m.Mem.FreeFrames()
	for _, g := range h.guests {
		if free <= 0 {
			break
		}
		deficit := g.Nominal - g.Resident()
		if deficit <= 0 {
			continue
		}
		if deficit > free {
			deficit = free
		}
		got, err := h.hv.BalloonIn(g.dom, deficit)
		if err != nil {
			return fmt.Errorf("cluster: reflate %q on host%d: %w", g.Name, h.index, err)
		}
		free -= got
	}
	return nil
}
