package cluster

import "errors"

// Policy selects how the control plane chooses a host for a new guest.
type Policy int

// The placement policies.
const (
	// BinPack places each guest on the most-committed host that can still
	// admit it — consolidating load onto few hosts, the policy that makes
	// overcommit (and the balloon squeeze) earn its keep.
	BinPack Policy = iota
	// Spread places each guest on the least-committed host — leveling
	// load, trading consolidation for headroom.
	Spread
)

// String returns the policy's table label.
func (p Policy) String() string {
	switch p {
	case BinPack:
		return "binpack"
	case Spread:
		return "spread"
	default:
		return "invalid"
	}
}

// Policies lists every placement policy in sweep order.
var Policies = []Policy{BinPack, Spread}

// Typed control-plane errors. Callers match them with errors.Is.
var (
	// ErrNoHostFits is the admission rejection: no host can admit the
	// guest within its overcommit bound (or physically, after squeezing
	// placed guests to their residency floor).
	ErrNoHostFits = errors.New("cluster: no host can admit the domain")
	// ErrAlreadyPlaced is returned when placing a name the cluster
	// already tracks.
	ErrAlreadyPlaced = errors.New("cluster: domain name already placed")
	// ErrUnknownGuest is returned for operations on a name never placed
	// (or already removed).
	ErrUnknownGuest = errors.New("cluster: no such guest")
	// ErrBadHost is returned for a host index outside the fleet.
	ErrBadHost = errors.New("cluster: host index out of range")
)

// admits reports whether h can admit nominal more pages within the
// overcommit bound. A guest larger than the host's whole capacity never
// fits, overcommit or not.
func (c *Cluster) admits(h *Host, nominal int) bool {
	if nominal > h.cap {
		return false
	}
	return h.committed+nominal <= h.cap*c.cfg.OvercommitPct/100
}

// candidates returns the hosts that admit nominal pages, best-preference
// first under the cluster's policy. The scan is by host index with strict
// comparisons, so ties deterministically favor the lower index.
func (c *Cluster) candidates(nominal, exclude int) []*Host {
	var out []*Host
	for _, h := range c.hosts {
		if h.index == exclude || !c.admits(h, nominal) {
			continue
		}
		out = append(out, h)
	}
	// Insertion sort by preference keeps the index-order tie-break stable
	// without a comparison function ranging over anything unordered.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && c.prefer(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// prefer reports whether a is a strictly better placement target than b
// under the cluster's policy.
func (c *Cluster) prefer(a, b *Host) bool {
	switch c.cfg.Policy {
	case Spread:
		return a.committed < b.committed
	default: // BinPack
		return a.committed > b.committed
	}
}
