package cluster

import (
	"errors"
	"testing"

	"vmmk/internal/vmm"
)

// small boots a 2-host cluster sized so a few guests fill it.
func small(t *testing.T, p Policy) *Cluster {
	t.Helper()
	c, err := New(Config{Hosts: 2, HostFrames: 96, Policy: p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestBinPackConsolidates(t *testing.T) {
	c := small(t, BinPack)
	a, err := c.Place("a", 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Place("b", 16)
	if err != nil {
		t.Fatal(err)
	}
	// Bin-packing stacks both guests on the same host.
	if a.Host() != b.Host() {
		t.Fatalf("binpack split guests across hosts %d and %d", a.Host(), b.Host())
	}
}

func TestSpreadLevels(t *testing.T) {
	c := small(t, Spread)
	a, err := c.Place("a", 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Place("b", 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Host() == b.Host() {
		t.Fatalf("spread stacked both guests on host %d", a.Host())
	}
}

func TestPlaceTypedErrors(t *testing.T) {
	c := small(t, BinPack)
	if _, err := c.Place("dup", 16); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place("dup", 16); !errors.Is(err, ErrAlreadyPlaced) {
		t.Fatalf("double place: err = %v, want ErrAlreadyPlaced", err)
	}
	// Larger than any host's whole capacity: rejected outright.
	if _, err := c.Place("huge", 10_000); !errors.Is(err, ErrNoHostFits) {
		t.Fatalf("oversized place: err = %v, want ErrNoHostFits", err)
	}
	if err := c.Remove("never-placed"); !errors.Is(err, ErrUnknownGuest) {
		t.Fatalf("remove unknown: err = %v, want ErrUnknownGuest", err)
	}
	s := c.Stats()
	if s.Placed != 1 || s.Rejected != 1 {
		t.Fatalf("stats = %+v, want 1 placed, 1 rejected", s)
	}
}

// TestOvercommitSqueezes pins the balloon path: admission by commitment
// can exceed physical memory, with placed guests squeezed down to make
// real frames, and removal reflating them back toward nominal.
func TestOvercommitSqueezes(t *testing.T) {
	c, err := New(Config{Hosts: 1, HostFrames: 96, Dom0Frames: 16, Policy: BinPack}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	capacity := c.Hosts()[0].Capacity()
	first, err := c.Place("first", capacity-8)
	if err != nil {
		t.Fatal(err)
	}
	// Physically the host is nearly full, but the 150% commitment bound
	// still admits a second guest — the squeeze must find the frames.
	second, err := c.Place("second", capacity/3)
	if err != nil {
		t.Fatalf("overcommitted place failed: %v", err)
	}
	if first.Resident() >= first.Nominal {
		t.Fatalf("first guest not squeezed: resident %d of %d", first.Resident(), first.Nominal)
	}
	if second.Resident() != second.Nominal {
		t.Fatalf("new guest short: resident %d of %d", second.Resident(), second.Nominal)
	}
	if s := c.Stats(); s.Squeezed == 0 {
		t.Fatal("no pages recorded squeezed")
	}
	squeezed := first.Resident()
	if err := c.Remove("second"); err != nil {
		t.Fatal(err)
	}
	if first.Resident() <= squeezed {
		t.Fatalf("first guest not reflated: resident %d, was %d", first.Resident(), squeezed)
	}
}

func TestMigrateGuestMoves(t *testing.T) {
	c := small(t, Spread)
	g, err := c.Place("mover", 16)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := c.Place("peer", 16)
	if err != nil {
		t.Fatal(err)
	}
	from, to := g.Host(), peer.Host()
	stats, err := c.MigrateGuest("mover", to)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Downtime <= 0 {
		t.Fatal("migration reported zero downtime")
	}
	if g.Host() != to {
		t.Fatalf("guest on host %d, want %d", g.Host(), to)
	}
	dst := c.Hosts()[to]
	if !dst.Hypervisor().Alive(g.DomID()) || dst.Hypervisor().Paused(g.DomID()) {
		t.Fatal("migrated guest not running on destination")
	}
	if got := c.Hosts()[from].GuestCount(); got != 0 {
		t.Fatalf("source still tracks %d guests", got)
	}
	if _, err := c.MigrateGuest("mover", to); !errors.Is(err, ErrBadHost) {
		t.Fatalf("same-host migrate: err = %v, want ErrBadHost", err)
	}
	if _, err := c.MigrateGuest("mover", 99); !errors.Is(err, ErrBadHost) {
		t.Fatalf("out-of-range migrate: err = %v, want ErrBadHost", err)
	}
}

// TestMigrateDeadLinkLeavesHostsClean pins the abort contract at fleet
// level: a migration over a link whose budget cannot carry the guest
// aborts with the vmm sentinels and leaves both hosts exactly as they
// were — guest running at the source, nothing leaked at the destination.
func TestMigrateDeadLinkLeavesHostsClean(t *testing.T) {
	c, err := New(Config{Hosts: 2, HostFrames: 96, Policy: Spread, LinkBudget: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g, err := c.Place("doomed", 16)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := c.Hosts()[g.Host()], c.Hosts()[1-g.Host()]
	dstFree := dst.Machine().Mem.FreeFrames()
	dstDoms := len(dst.Hypervisor().Domains())
	_, err = c.MigrateGuest("doomed", dst.Index())
	if !errors.Is(err, vmm.ErrMigrationAborted) || !errors.Is(err, vmm.ErrLinkDown) {
		t.Fatalf("err = %v, want ErrMigrationAborted wrapping ErrLinkDown", err)
	}
	if g.Host() != src.Index() {
		t.Fatal("control plane moved the guest despite the abort")
	}
	if !src.Hypervisor().Alive(g.DomID()) || src.Hypervisor().Paused(g.DomID()) {
		t.Fatal("source guest not left running")
	}
	if got := dst.Machine().Mem.FreeFrames(); got != dstFree {
		t.Fatalf("destination leaked frames: free %d, was %d", got, dstFree)
	}
	if got := len(dst.Hypervisor().Domains()); got != dstDoms {
		t.Fatalf("destination kept %d domains, was %d", got, dstDoms)
	}
	if s := c.Stats(); s.Aborted != 1 || s.Migrations != 0 {
		t.Fatalf("stats = %+v, want 1 aborted, 0 migrations", s)
	}
}

func TestChurnRuns(t *testing.T) {
	for _, p := range Policies {
		c, err := New(Config{Hosts: 4, Policy: p}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RunChurn(ChurnOpts{Events: 64, Seed: 7, MinPages: 12, MaxPages: 44}); err != nil {
			t.Fatalf("%s churn: %v", p, err)
		}
		s := c.Stats()
		if s.Placed == 0 || s.Removed == 0 {
			t.Fatalf("%s churn did nothing: %+v", p, s)
		}
		// Books must balance: every placed guest is on exactly one host and
		// commitment sums match.
		total := 0
		for _, h := range c.Hosts() {
			total += h.GuestCount()
		}
		if total != len(c.Guests()) {
			t.Fatalf("%s: hosts track %d guests, cluster %d", p, total, len(c.Guests()))
		}
		if s.Placed-s.Removed != len(c.Guests()) {
			t.Fatalf("%s: placed %d - removed %d != %d live", p, s.Placed, s.Removed, len(c.Guests()))
		}
		c.Close()
	}
}
