package cluster

import (
	"sort"

	"vmmk/internal/hw"
)

// Stats accumulates what the control plane did over a cluster's lifetime.
type Stats struct {
	// Placed and Rejected count admission outcomes; Removed counts
	// departures.
	Placed, Rejected, Removed int
	// Migrations counts completed live migrations; Aborted counts
	// migrations that failed cleanly (dead link, dying source).
	Migrations, Aborted int
	// Squeezed counts pages ballooned out of placed guests to make
	// physical room under overcommit.
	Squeezed int
	// Downtimes holds each completed migration's guest-observable
	// blackout, in completion order.
	Downtimes []hw.Cycles
}

// Stats returns a copy of the cluster's accumulated statistics.
func (c *Cluster) Stats() Stats {
	s := c.stats
	s.Downtimes = append([]hw.Cycles(nil), c.stats.Downtimes...)
	return s
}

// DowntimeP99 returns the nearest-rank 99th-percentile migration downtime,
// or 0 when no migration has completed.
func (s Stats) DowntimeP99() hw.Cycles {
	if len(s.Downtimes) == 0 {
		return 0
	}
	sorted := append([]hw.Cycles(nil), s.Downtimes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (99*len(sorted) + 99) / 100 // ceil(0.99 n), nearest-rank
	return sorted[rank-1]
}

// SLOViolations counts service-level violations: admission rejections plus
// migrations whose downtime exceeded slo.
func (s Stats) SLOViolations(slo hw.Cycles) int {
	n := s.Rejected
	for _, d := range s.Downtimes {
		if d > slo {
			n++
		}
	}
	return n
}

// HostsInUse returns how many hosts currently run at least one guest.
func (c *Cluster) HostsInUse() int {
	n := 0
	for _, h := range c.hosts {
		if len(h.guests) > 0 {
			n++
		}
	}
	return n
}

// CommittedPages returns the fleet-wide sum of placed guests' nominal
// sizes.
func (c *Cluster) CommittedPages() int {
	total := 0
	for _, h := range c.hosts {
		total += h.committed
	}
	return total
}

// ConsolidationPct returns how full the in-use hosts are: committed pages
// as a percentage of the in-use hosts' combined capacity (0 with no
// guests). Overcommit can push it past 100; bin-packing drives it up by
// emptying hosts, spreading drives it down by keeping every host warm.
func (c *Cluster) ConsolidationPct() float64 {
	capacity := 0
	for _, h := range c.hosts {
		if len(h.guests) > 0 {
			capacity += h.cap
		}
	}
	if capacity == 0 {
		return 0
	}
	return 100 * float64(c.CommittedPages()) / float64(capacity)
}
