package cluster

import (
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/vmm"
)

// MachineSource provides the machines a Cluster boots its hosts on. The
// experiment layer binds this to its per-worker machine pool; a nil source
// boots fresh machines. The returned release function hands the machine
// back when the cluster closes.
type MachineSource func(cfg *hw.MachineConfig) (*hw.Machine, func())

// Config shapes a Cluster. The zero value is normalized to a small but
// realistic fleet; see the field comments for the defaults.
type Config struct {
	// Hosts is the fleet size (default 2).
	Hosts int
	// HostFrames is the physical memory of each host in pages (default 192).
	HostFrames int
	// Dom0Frames is the control-domain size each host's hypervisor boots
	// with (default 32).
	Dom0Frames int
	// Policy selects the placement policy (default BinPack).
	Policy Policy
	// OvercommitPct is the admission bound in percent of host capacity:
	// a host admits a guest while committed nominal pages stay within
	// cap*OvercommitPct/100 (default 150). Physical shortfall under
	// overcommit is resolved by ballooning placed guests down.
	OvercommitPct int
	// MinResident is the floor (in pages) below which the balloon squeeze
	// never takes a guest (default 8).
	MinResident int
	// LinkPerPage is the migration link's bandwidth term in cycles per
	// page (default 2).
	LinkPerPage hw.Cycles
	// LinkLatency is the migration link's per-round propagation cost in
	// cycles (default 400).
	LinkLatency hw.Cycles
	// LinkBudget, when positive, bounds the pages any single migration's
	// link carries before it goes down — the fault-injection knob the
	// scenario matrix arms.
	LinkBudget int
	// MaxRounds is the pre-copy round budget for live migrations
	// (default 3).
	MaxRounds int
}

// defaults normalizes zero fields in place.
func (c *Config) defaults() {
	if c.Hosts <= 0 {
		c.Hosts = 2
	}
	if c.HostFrames <= 0 {
		c.HostFrames = 192
	}
	if c.Dom0Frames <= 0 {
		c.Dom0Frames = 32
	}
	if c.OvercommitPct <= 0 {
		c.OvercommitPct = 150
	}
	if c.MinResident <= 0 {
		c.MinResident = 8
	}
	if c.LinkPerPage <= 0 {
		c.LinkPerPage = 2
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 400
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 3
	}
}

// Host is one fleet member: a machine, its hypervisor, and the control
// plane's accounting for it.
type Host struct {
	index     int
	m         *hw.Machine
	hv        *vmm.Hypervisor
	cap       int // frames available to guests after boot
	committed int // sum of placed guests' nominal sizes
	guests    []*Guest
	release   func()
}

// Index returns the host's fleet index.
func (h *Host) Index() int { return h.index }

// Machine returns the host's simulated machine.
func (h *Host) Machine() *hw.Machine { return h.m }

// Hypervisor returns the host's hypervisor.
func (h *Host) Hypervisor() *vmm.Hypervisor { return h.hv }

// Capacity returns the frames the host had available to guests at boot.
func (h *Host) Capacity() int { return h.cap }

// Committed returns the sum of placed guests' nominal sizes — the
// admission controller's view, which overcommit lets exceed physical free
// memory.
func (h *Host) Committed() int { return h.committed }

// GuestCount returns how many guests are placed on the host.
func (h *Host) GuestCount() int { return len(h.guests) }

// Guest is one placed domain as the control plane tracks it.
type Guest struct {
	// Name is the cluster-unique domain name.
	Name string
	// Nominal is the requested size in pages; ballooning may leave the
	// guest resident below it.
	Nominal int

	dom  vmm.DomID
	host *Host
}

// Host returns the fleet index of the host the guest currently runs on.
func (g *Guest) Host() int { return g.host.index }

// DomID returns the guest's current domain id (it changes on migration).
func (g *Guest) DomID() vmm.DomID { return g.dom }

// Resident returns the pages the guest currently owns on its host —
// Nominal minus whatever the balloon squeeze took and reflation has not
// yet returned.
func (g *Guest) Resident() int {
	d := g.host.hv.Domain(g.dom)
	if d == nil {
		return 0
	}
	return d.OwnedPages()
}

// Cluster is a fleet of hosts under one placement control plane.
type Cluster struct {
	cfg    Config
	hosts  []*Host
	guests []*Guest // cluster-wide, in placement order
	byName map[string]*Guest
	seq    int // next churn guest number; names are unique per cluster
	log    []string
	stats  Stats
}

// New boots a fleet of cfg.Hosts hosts on machines from src (nil src boots
// fresh machines) and returns the cluster. Close releases the machines.
func New(cfg Config, src MachineSource) (*Cluster, error) {
	cfg.defaults()
	c := &Cluster{cfg: cfg, byName: make(map[string]*Guest)}
	for i := 0; i < cfg.Hosts; i++ {
		m, release := obtain(src, &hw.MachineConfig{Frames: cfg.HostFrames})
		hv, _, err := vmm.New(m, cfg.Dom0Frames)
		if err != nil {
			release()
			c.Close()
			return nil, fmt.Errorf("cluster: boot host%d: %w", i, err)
		}
		c.hosts = append(c.hosts, &Host{
			index: i, m: m, hv: hv, cap: m.Mem.FreeFrames(), release: release,
		})
	}
	return c, nil
}

// obtain resolves the machine source, building fresh when src is nil.
func obtain(src MachineSource, cfg *hw.MachineConfig) (*hw.Machine, func()) {
	if src == nil {
		return hw.NewMachine(hw.X86(), cfg), func() {}
	}
	return src(cfg)
}

// Close releases every host machine back to its source, in reverse boot
// order (mirroring the machine pool's LIFO reuse). The cluster must not be
// used afterwards.
func (c *Cluster) Close() {
	for i := len(c.hosts) - 1; i >= 0; i-- {
		c.hosts[i].release()
	}
	c.hosts = nil
}

// Config returns the normalized configuration the cluster booted with.
func (c *Cluster) Config() Config { return c.cfg }

// Hosts returns the fleet in index order.
func (c *Cluster) Hosts() []*Host { return c.hosts }

// Guests returns every placed guest in placement order. Migration moves a
// guest between hosts without changing its position here.
func (c *Cluster) Guests() []*Guest { return append([]*Guest(nil), c.guests...) }

// Guest returns the placed guest with the given name.
func (c *Cluster) Guest(name string) (*Guest, bool) {
	g, ok := c.byName[name]
	return g, ok
}

// Log returns the placement decision log: one line per control-plane
// action, in order. Two runs with the same (seed, policy, fleet) produce
// identical logs — the reproducibility property the tests pin.
func (c *Cluster) Log() []string { return append([]string(nil), c.log...) }

// logf appends one decision to the placement log.
func (c *Cluster) logf(format string, args ...any) {
	c.log = append(c.log, fmt.Sprintf(format, args...))
}
