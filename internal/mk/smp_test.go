package mk

import (
	"errors"
	"fmt"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// smpRig boots a kernel on an n-CPU machine with one client thread and one
// echo server, both homed on the boot CPU until tests move them.
func smpRig(t testing.TB, ncpus int) (*hw.Machine, *Kernel, *Thread, *Thread) {
	t.Helper()
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 512, NCPUs: ncpus})
	k := New(m)
	cs, err := k.NewSpace("client", NilThread)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := k.NewSpace("server", NilThread)
	if err != nil {
		t.Fatal(err)
	}
	client := k.NewThread(cs, "client", 1, nil)
	server := k.NewThread(ss, "server", 2, func(k *Kernel, _ ThreadID, msg Msg) (Msg, error) {
		return msg, nil
	})
	return m, k, client, server
}

func TestSetAffinityValidation(t *testing.T) {
	_, k, client, _ := smpRig(t, 2)
	if err := k.SetAffinity(client.ID, 2); !errors.Is(err, ErrBadCPU) {
		t.Fatalf("out-of-range CPU: got %v, want ErrBadCPU", err)
	}
	if err := k.SetAffinity(client.ID, -1); !errors.Is(err, ErrBadCPU) {
		t.Fatalf("negative CPU: got %v, want ErrBadCPU", err)
	}
	if err := k.SetAffinity(9999, 1); !errors.Is(err, ErrNoSuchThread) {
		t.Fatalf("missing thread: got %v, want ErrNoSuchThread", err)
	}
	if err := k.SetAffinity(client.ID, 1); err != nil {
		t.Fatal(err)
	}
	if client.Affinity != 1 {
		t.Fatalf("affinity = %d, want 1", client.Affinity)
	}
}

// TestCrossCPUIPCChargesIPIs: a call to a partner homed on another CPU
// pays exactly two IPIs (wake and reply); a same-CPU call pays none.
func TestCrossCPUIPCChargesIPIs(t *testing.T) {
	m, k, client, server := smpRig(t, 2)

	if _, err := k.Call(client.ID, server.ID, Msg{Label: 1}); err != nil {
		t.Fatal(err)
	}
	if got := m.Rec.Counts(trace.KIPI); got != 0 {
		t.Fatalf("same-CPU call sent %d IPIs", got)
	}

	if err := k.SetAffinity(server.ID, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Call(client.ID, server.ID, Msg{Label: 2}); err != nil {
		t.Fatal(err)
	}
	if got := m.Rec.Counts(trace.KIPI); got != 2 {
		t.Fatalf("cross-CPU call sent %d IPIs, want 2", got)
	}
	if got := k.CrossCPUIPC(); got != 1 {
		t.Fatalf("CrossCPUIPC = %d, want 1", got)
	}
	if m.Rec.Cycles("cpu0.ipi") == 0 || m.Rec.Cycles("cpu1.ipi") == 0 {
		t.Fatal("IPI cycles not attributed to both CPUs' components")
	}

	if err := k.Send(client.ID, server.ID, Msg{Label: 3}); err != nil {
		t.Fatal(err)
	}
	if got := m.Rec.Counts(trace.KIPI); got != 3 {
		t.Fatalf("cross-CPU send raised IPI count to %d, want 3", got)
	}
}

// TestThreadNeverOnTwoCPUs schedules every CPU many times over a small
// thread pool (forcing steals) and asserts the cardinal invariant: no
// thread is installed on two CPUs at once.
func TestThreadNeverOnTwoCPUs(t *testing.T) {
	const ncpus = 4
	m, k, _, _ := smpRig(t, ncpus)
	_ = m
	// Two more threads, all homed on CPU 0, so CPUs 1-3 must steal.
	sp, err := k.NewSpace("pool", NilThread)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		k.NewThread(sp, fmt.Sprintf("pool%d", i), 3, nil)
	}
	for round := 0; round < 8; round++ {
		for cpu := 0; cpu < ncpus; cpu++ {
			k.ScheduleOn(cpu)
			seen := map[*Thread]int{}
			for c := 0; c < ncpus; c++ {
				cur := k.CurrentOn(c)
				if cur == nil {
					continue
				}
				if prev, dup := seen[cur]; dup {
					t.Fatalf("round %d: thread %q on CPUs %d and %d at once",
						round, cur.Name, prev, c)
				}
				seen[cur] = c
			}
		}
	}
	if k.Steals() == 0 {
		t.Fatal("scenario did not exercise work stealing")
	}
}

// TestWorkStealingPreservesSwitches: stealing moves where a switch happens
// but never mints or loses one — the total equals the sum of the per-CPU
// counters, and every installation of a new thread is counted exactly once.
func TestWorkStealingPreservesSwitches(t *testing.T) {
	const ncpus = 3
	_, k, _, _ := smpRig(t, ncpus)
	sp, err := k.NewSpace("pool", NilThread)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		k.NewThread(sp, fmt.Sprintf("pool%d", i), 3, nil)
	}
	installs := uint64(0)
	for round := 0; round < 6; round++ {
		for cpu := 0; cpu < ncpus; cpu++ {
			before := k.CurrentOn(cpu)
			if got := k.ScheduleOn(cpu); got != nil && got != before {
				installs++
			}
		}
	}
	var perCPU uint64
	for cpu := 0; cpu < ncpus; cpu++ {
		perCPU += k.SwitchesOn(cpu)
	}
	if k.Switches() != perCPU {
		t.Fatalf("Switches() = %d but per-CPU sum = %d", k.Switches(), perCPU)
	}
	if k.Switches() != installs {
		t.Fatalf("Switches() = %d but observed %d installations", k.Switches(), installs)
	}
	if k.Steals() == 0 {
		t.Fatal("scenario did not exercise work stealing")
	}
}

// TestUnmapShootsDownRunningSpaces: unmapping a page of a space that is
// installed on other CPUs invalidates their TLBs by shootdown; a space
// running nowhere else costs nothing.
func TestUnmapShootsDownRunningSpaces(t *testing.T) {
	m, k, _, _ := smpRig(t, 3)
	sp, err := k.NewSpace("shared", NilThread)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		w := k.NewThread(sp, fmt.Sprintf("w%d", c), 5, nil)
		if c > 0 {
			if err := k.SetAffinity(w.ID, c); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := k.AllocAndMap(sp, 0x100, 2, hw.PermRW); err != nil {
		t.Fatal(err)
	}

	k.UnmapPage(sp, 0x100) // space not installed anywhere yet
	if got := m.Rec.Counts(trace.KTLBShootdown); got != 0 {
		t.Fatalf("idle space unmap shot down %d CPUs", got)
	}

	for c := 0; c < 3; c++ {
		k.ScheduleOn(c)
	}
	k.UnmapPage(sp, 0x101)
	// CPUs 1 and 2 run the space's workers; CPU 0 flushed locally.
	if got := m.Rec.Counts(trace.KTLBShootdown); got != 2 {
		t.Fatalf("unmap of a live space shot down %d CPUs, want 2", got)
	}
}

// TestUniprocessorKernelChargesNoSMP is the accounting guard for E1–E11:
// a full IPC + schedule + unmap workout on a default 1-CPU machine leaves
// every SMP counter and component at zero.
func TestUniprocessorKernelChargesNoSMP(t *testing.T) {
	m, k, client, server := smpRig(t, 1)
	for i := 0; i < 10; i++ {
		if _, err := k.Call(client.ID, server.ID, Msg{Label: uint32(i)}); err != nil {
			t.Fatal(err)
		}
		k.Schedule()
	}
	if _, err := k.AllocAndMap(server.Space, 0x200, 4, hw.PermRW); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		k.UnmapPage(server.Space, 0x200+hw.VPN(p))
	}
	if m.Rec.Counts(trace.KIPI) != 0 || m.Rec.Counts(trace.KTLBShootdown) != 0 {
		t.Fatal("uniprocessor kernel counted SMP events")
	}
	if got := m.Rec.CyclesPrefix("cpu"); got != 0 {
		t.Fatalf("uniprocessor kernel charged %d SMP cycles", got)
	}
	if k.Steals() != 0 || k.CrossCPUIPC() != 0 {
		t.Fatal("uniprocessor kernel recorded cross-CPU activity")
	}
}
