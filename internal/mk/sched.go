package mk

import (
	"fmt"
	"sort"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// scheduler distributes threads over per-CPU priority round-robin run
// queues. The synchronous IPC model resolves most control transfer
// directly, so the scheduler's observable job is (a) picking whom a timer
// tick preempts to, (b) charging context-switch costs when a CPU's running
// thread changes, and (c) on multiprocessors, placing threads by affinity
// and stealing work across CPUs when a queue runs dry — each steal is a
// real migration paid for with an IPI. A 1-CPU machine collapses to the
// single global queue the macro experiments (E8) were calibrated on.
type scheduler struct {
	k      *Kernel
	cpus   []*cpuQueue // one per machine CPU; index == hw CPU index
	steals uint64
}

// cpuQueue is one CPU's run queue: priority classes in FIFO order plus the
// thread currently installed on that CPU.
type cpuQueue struct {
	queues   map[int][]*Thread // priority -> FIFO
	prios    []int             // sorted descending
	current  *Thread
	switches uint64
}

func newScheduler(k *Kernel) *scheduler {
	s := &scheduler{k: k, cpus: make([]*cpuQueue, k.M.NCPUs())}
	for i := range s.cpus {
		s.cpus[i] = &cpuQueue{queues: make(map[int][]*Thread)}
	}
	return s
}

func (q *cpuQueue) add(t *Thread) {
	fifo, ok := q.queues[t.Prio]
	if !ok {
		q.prios = append(q.prios, t.Prio)
		sort.Sort(sort.Reverse(sort.IntSlice(q.prios)))
	}
	q.queues[t.Prio] = append(fifo, t)
}

func (q *cpuQueue) remove(t *Thread) {
	fifo := q.queues[t.Prio]
	for i, x := range fifo {
		if x == t {
			q.queues[t.Prio] = append(fifo[:i], fifo[i+1:]...)
			break
		}
	}
	if q.current == t {
		q.current = nil
		t.onCPU = -1
	}
}

func (s *scheduler) add(t *Thread)    { s.cpus[t.Affinity].add(t) }
func (s *scheduler) remove(t *Thread) { s.cpus[t.Affinity].remove(t) }

// pick returns the next ready thread for cpu in priority order, rotating
// the winner's queue for round-robin fairness. Threads currently installed
// on another CPU are skipped — a thread never runs on two CPUs at once.
// An empty queue falls back to stealing.
func (s *scheduler) pick(cpu int) *Thread {
	q := s.cpus[cpu]
	for _, p := range q.prios {
		fifo := q.queues[p]
		for i, t := range fifo {
			if t.State != StateReady {
				continue
			}
			if t.onCPU >= 0 && t.onCPU != cpu {
				continue
			}
			// Rotate: move to the back of its priority class.
			q.queues[p] = append(append(append([]*Thread{}, fifo[:i]...), fifo[i+1:]...), t)
			return t
		}
	}
	return s.steal(cpu)
}

// steal migrates the first stealable thread from another CPU's queue
// (victims scanned in ascending CPU order, each in its own priority order)
// to cpu, paying a reschedule IPI toward the victim. It returns nil when
// no CPU has spare ready work.
func (s *scheduler) steal(cpu int) *Thread {
	for v, vq := range s.cpus {
		if v == cpu {
			continue
		}
		for _, p := range vq.prios {
			for _, t := range vq.queues[p] {
				if t.State != StateReady || t.onCPU >= 0 {
					continue
				}
				vq.remove(t)
				t.Affinity = cpu
				s.cpus[cpu].add(t)
				s.steals++
				s.k.M.SendIPI(cpu, v)
				return t
			}
		}
	}
	return nil
}

// Schedule runs one scheduling decision on the boot CPU — the uniprocessor
// entry point every pre-SMP caller uses. See ScheduleOn.
func (k *Kernel) Schedule() *Thread { return k.ScheduleOn(0) }

// ScheduleOn runs one scheduling decision on the given CPU: dispatch
// pending interrupts (boot CPU only — external interrupts are routed
// there), then switch to the next ready thread, charging the switch to
// that CPU. It returns the chosen thread (nil if none ready anywhere).
func (k *Kernel) ScheduleOn(cpu int) *Thread {
	if cpu < 0 || cpu >= len(k.sched.cpus) {
		panic(fmt.Sprintf("mk: schedule on nonexistent CPU %d", cpu))
	}
	c := k.M.CPUs[cpu]
	q := k.sched.cpus[cpu]
	c.Trap(k.comp, false)
	if cpu == 0 {
		k.M.IRQ.DispatchPending(k.comp)
	}
	next := k.sched.pick(cpu)
	if next != nil && next != q.current {
		q.switches++
		if old := q.current; old != nil {
			old.onCPU = -1
		}
		c.Charge(k.comp, trace.KContextSwitch, k.M.Arch.Costs.CtxSave)
		c.SwitchSpace(k.comp, next.Space.PT)
		q.current = next
		next.onCPU = cpu
	}
	c.Charge(k.comp, trace.KSchedule, 50)
	c.ReturnTo(k.comp, hw.Ring3)
	return next
}

// Current returns the thread last chosen by Schedule on the boot CPU.
func (k *Kernel) Current() *Thread { return k.CurrentOn(0) }

// CurrentOn returns the thread currently installed on the given CPU.
func (k *Kernel) CurrentOn(cpu int) *Thread { return k.sched.cpus[cpu].current }

// Switches returns the number of thread switches performed, summed over
// all CPUs — stealing moves where a switch happens, never how many there
// are (the invariant TestWorkStealingPreservesSwitches pins).
func (k *Kernel) Switches() uint64 {
	var n uint64
	for _, q := range k.sched.cpus {
		n += q.switches
	}
	return n
}

// SwitchesOn returns the thread switches performed by one CPU.
func (k *Kernel) SwitchesOn(cpu int) uint64 { return k.sched.cpus[cpu].switches }

// Steals returns how many cross-CPU work-steal migrations have happened.
func (k *Kernel) Steals() uint64 { return k.sched.steals }

// SetAffinity re-homes a thread onto the given CPU. Re-homing to the
// thread's current CPU is free; an actual migration moves the thread's
// queue entry and, if the thread is installed on its old CPU, kicks that
// CPU with a reschedule IPI. The boot-time pinning a platform does before
// any thread has run charges nothing.
func (k *Kernel) SetAffinity(tid ThreadID, cpu int) error {
	t := k.threads[tid]
	if t == nil || t.State == StateDead {
		return ErrNoSuchThread
	}
	if cpu < 0 || cpu >= k.M.NCPUs() {
		return ErrBadCPU
	}
	if t.Affinity == cpu {
		return nil
	}
	wasOn := t.onCPU
	k.sched.cpus[t.Affinity].remove(t)
	t.Affinity = cpu
	k.sched.cpus[cpu].add(t)
	if wasOn >= 0 {
		k.M.SendIPI(cpu, wasOn)
	}
	return nil
}

// cpusRunningSpace returns the CPUs (ascending, excluding except) whose
// installed thread belongs to space s — the set whose TLBs may cache the
// space's translations and therefore the target list for a shootdown.
func (k *Kernel) cpusRunningSpace(s *Space, except int) []int {
	var out []int
	for i, q := range k.sched.cpus {
		if i == except {
			continue
		}
		if q.current != nil && q.current.Space == s {
			out = append(out, i)
		}
	}
	return out
}
