package mk

import (
	"sort"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// scheduler is a priority round-robin run queue. The synchronous IPC model
// resolves most control transfer directly, so the scheduler's observable
// job is (a) picking whom a timer tick preempts to, and (b) charging
// context-switch costs when the running thread changes — both of which the
// macro experiments (E8) need for honest totals.
type scheduler struct {
	k        *Kernel
	queues   map[int][]*Thread // priority -> FIFO
	prios    []int             // sorted descending
	current  *Thread
	switches uint64
}

func newScheduler(k *Kernel) *scheduler {
	return &scheduler{k: k, queues: make(map[int][]*Thread)}
}

func (s *scheduler) add(t *Thread) {
	q, ok := s.queues[t.Prio]
	if !ok {
		s.prios = append(s.prios, t.Prio)
		sort.Sort(sort.Reverse(sort.IntSlice(s.prios)))
	}
	s.queues[t.Prio] = append(q, t)
}

func (s *scheduler) remove(t *Thread) {
	q := s.queues[t.Prio]
	for i, x := range q {
		if x == t {
			s.queues[t.Prio] = append(q[:i], q[i+1:]...)
			break
		}
	}
	if s.current == t {
		s.current = nil
	}
}

// pick returns the next ready thread in priority order, rotating the
// winner's queue for round-robin fairness.
func (s *scheduler) pick() *Thread {
	for _, p := range s.prios {
		q := s.queues[p]
		for i, t := range q {
			if t.State == StateReady {
				// Rotate: move to the back of its priority class.
				s.queues[p] = append(append(append([]*Thread{}, q[:i]...), q[i+1:]...), t)
				return t
			}
		}
	}
	return nil
}

// Schedule runs one scheduling decision: dispatch pending interrupts, then
// switch to the next ready thread, charging the switch. It returns the
// chosen thread (nil if none ready).
func (k *Kernel) Schedule() *Thread {
	k.M.CPU.Trap(k.comp, false)
	k.M.IRQ.DispatchPending(k.comp)
	next := k.sched.pick()
	if next != nil && next != k.sched.current {
		k.sched.switches++
		k.M.CPU.Charge(k.comp, trace.KContextSwitch, k.M.Arch.Costs.CtxSave)
		k.M.CPU.SwitchSpace(k.comp, next.Space.PT)
		k.sched.current = next
	}
	k.M.CPU.Charge(k.comp, trace.KSchedule, 50)
	k.M.CPU.ReturnTo(k.comp, hw.Ring3)
	return next
}

// Current returns the thread last chosen by Schedule.
func (k *Kernel) Current() *Thread { return k.sched.current }

// Switches returns the number of thread switches performed.
func (k *Kernel) Switches() uint64 { return k.sched.switches }
