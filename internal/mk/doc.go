// Package mk implements an L4-style microkernel over the hw substrate:
// threads, address spaces, synchronous IPC with register/string/map
// transfer, interrupt delivery as IPC, external pagers, and a priority
// round-robin scheduler with per-CPU run queues. It is "system A" of the
// paper's comparison; package vmm is its Xen-shaped counterpart, package
// mkos the OS personality that runs on it, and package core boots and
// measures the two side by side.
//
// Following Liedtke's dictum quoted in the paper ("minimize the kernel and
// implement whatever possible outside of the kernel"), the kernel knows
// nothing about devices, files, networks or guest operating systems; all of
// that lives in user-level servers (package mkos). IPC is the single
// extensibility primitive and serves the paper's three purposes: control
// transfer, data transfer, and resource delegation by mutual agreement.
//
// Execution model: the simulation is synchronous and deterministic. A
// server thread is a reactive handler; Call runs the complete IPC path —
// kernel entry, transfer, address-space switch, the handler itself, and the
// reply — charging every step to the right component. This collapses
// scheduling interleavings that the paper's arguments do not depend on
// while preserving exactly what they do depend on: who crosses which
// protection boundary, how often, and at what cost.
//
// Multiprocessor model: threads have a home CPU (Thread.Affinity, set by
// SetAffinity) and each CPU schedules from its own run queue (ScheduleOn),
// stealing work from other CPUs — a charged migration — when its queue
// runs dry. IPC between threads homed on different CPUs pays wake and
// reply IPIs, and unmapping a page of a space installed on other CPUs
// triggers a TLB shootdown to each of them. A thread is never installed on
// two CPUs at once. All of this is inert on the 1-CPU machines E1–E11 use;
// experiment E12 is what exercises it.
package mk
