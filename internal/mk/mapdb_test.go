package mk

import (
	"testing"
	"testing/quick"

	"vmmk/internal/hw"
)

// chainRig builds A -> B -> C: A maps a page to B, B maps it onward to C.
type chainRig struct {
	m       *hw.Machine
	k       *Kernel
	a, b, c *Space
	at, bt  *Thread
	ct      *Thread
	frame   hw.FrameID
}

func newChainRig(t *testing.T) *chainRig {
	t.Helper()
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 64})
	k := New(m)
	a, _ := k.NewSpace("a", NilThread)
	b, _ := k.NewSpace("b", NilThread)
	c, _ := k.NewSpace("c", NilThread)
	echo := func(k *Kernel, from ThreadID, msg Msg) (Msg, error) { return Msg{}, nil }
	at := k.NewThread(a, "a", 1, echo)
	bt := k.NewThread(b, "b", 1, echo)
	ct := k.NewThread(c, "c", 1, echo)
	frames, err := k.AllocAndMap(a, 0x10, 1, hw.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	r := &chainRig{m: m, k: k, a: a, b: b, c: c, at: at, bt: bt, ct: ct, frame: frames[0]}
	// A -> B at 0x20.
	if _, err := k.Call(at.ID, bt.ID, Msg{Map: []MapItem{{SrcVPN: 0x10, DstVPN: 0x20, Count: 1, Perms: hw.PermRW}}}); err != nil {
		t.Fatal(err)
	}
	// B -> C at 0x30.
	if _, err := k.Call(bt.ID, ct.ID, Msg{Map: []MapItem{{SrcVPN: 0x20, DstVPN: 0x30, Count: 1, Perms: hw.PermR}}}); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMapDBTracksDerivations(t *testing.T) {
	r := newChainRig(t)
	if got := r.k.MappingChildren(r.a, 0x10); got != 1 {
		t.Fatalf("A children = %d, want 1", got)
	}
	if got := r.k.MappingChildren(r.b, 0x20); got != 1 {
		t.Fatalf("B children = %d, want 1", got)
	}
}

func TestUnmapRecursiveRevokesWholeChain(t *testing.T) {
	r := newChainRig(t)
	n := r.k.UnmapRecursive(r.a, 0x10, true)
	if n != 3 {
		t.Fatalf("revoked %d mappings, want 3 (A, B, C)", n)
	}
	for _, probe := range []struct {
		s   *Space
		vpn hw.VPN
	}{{r.a, 0x10}, {r.b, 0x20}, {r.c, 0x30}} {
		if _, ok := probe.s.PT.Lookup(probe.vpn); ok {
			t.Fatalf("mapping in %s survived recursive unmap", probe.s.Name)
		}
	}
}

func TestUnmapRecursiveChildrenOnly(t *testing.T) {
	r := newChainRig(t)
	n := r.k.UnmapRecursive(r.a, 0x10, false)
	if n != 2 {
		t.Fatalf("revoked %d, want 2 (B and C, not A)", n)
	}
	if _, ok := r.a.PT.Lookup(0x10); !ok {
		t.Fatal("root mapping must survive children-only flush")
	}
}

func TestUnmapMidChainKeepsAncestors(t *testing.T) {
	r := newChainRig(t)
	n := r.k.UnmapRecursive(r.b, 0x20, true)
	if n != 2 {
		t.Fatalf("revoked %d, want 2 (B and C)", n)
	}
	if _, ok := r.a.PT.Lookup(0x10); !ok {
		t.Fatal("ancestor mapping must survive")
	}
	if _, ok := r.c.PT.Lookup(0x30); ok {
		t.Fatal("descendant survived")
	}
}

func TestGrantBreaksDerivationChain(t *testing.T) {
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 64})
	k := New(m)
	a, _ := k.NewSpace("a", NilThread)
	b, _ := k.NewSpace("b", NilThread)
	echo := func(k *Kernel, from ThreadID, msg Msg) (Msg, error) { return Msg{}, nil }
	at := k.NewThread(a, "a", 1, echo)
	bt := k.NewThread(b, "b", 1, echo)
	if _, err := k.AllocAndMap(a, 0x10, 1, hw.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Call(at.ID, bt.ID, Msg{Map: []MapItem{{SrcVPN: 0x10, DstVPN: 0x20, Count: 1, Perms: hw.PermRW, Grant: true}}}); err != nil {
		t.Fatal(err)
	}
	// The gift is B's now; A has no mapping and no revocation authority.
	if n := k.UnmapRecursive(a, 0x10, true); n != 0 {
		t.Fatalf("grant left %d revocable mappings behind", n)
	}
	if _, ok := b.PT.Lookup(0x20); !ok {
		t.Fatal("granted mapping must survive the donor's unmap")
	}
}

func TestRemapSeversOldDerivation(t *testing.T) {
	r := newChainRig(t)
	// B's 0x20 gets overwritten by an unrelated direct mapping; the old
	// derivation from A must be severed so A's revocation no longer
	// reaches it (and C, derived from the old page, still falls with B's
	// old chain... here C's parent was B@0x20 which now refers to the new
	// mapping; L4 semantics tie derivation to the page, and our model
	// severs on overwrite).
	f2, err := r.m.Mem.Alloc("mk.b")
	if err != nil {
		t.Fatal(err)
	}
	r.k.MapPage(r.b, 0x20, f2, hw.PermRW)
	// Re-record by a fresh map item from B to a new space D.
	if n := r.k.UnmapRecursive(r.a, 0x10, true); n != 1 {
		t.Fatalf("revoked %d, want 1 (only A; B's slot was overwritten)", n)
	}
	_ = f2
}

func TestKernelMapPageSeversDerivation(t *testing.T) {
	r := newChainRig(t)
	r.k.UnmapPage(r.b, 0x20)
	// C's mapping survives a plain (non-recursive) unmap of its parent,
	// but the derivation bookkeeping for B must be gone.
	if _, ok := r.c.PT.Lookup(0x30); !ok {
		t.Fatal("plain unmap must not recurse")
	}
	if got := r.k.MappingChildren(r.a, 0x10); got != 0 {
		t.Fatalf("A still has %d children after B's unmap", got)
	}
}

func TestQuickMapDBNoOrphans(t *testing.T) {
	// Random map/unmap sequences never leave a child whose parent is
	// unknown to the database.
	f := func(ops []uint8) bool {
		m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 128})
		k := New(m)
		spaces := make([]*Space, 4)
		threads := make([]*Thread, 4)
		echo := func(k *Kernel, from ThreadID, msg Msg) (Msg, error) { return Msg{}, nil }
		for i := range spaces {
			spaces[i], _ = k.NewSpace(string(rune('a'+i)), NilThread)
			threads[i] = k.NewThread(spaces[i], string(rune('a'+i)), 1, echo)
		}
		if _, err := k.AllocAndMap(spaces[0], 0, 8, hw.PermRW); err != nil {
			return false
		}
		for _, op := range ops {
			src := int(op) % 4
			dst := (int(op) / 4) % 4
			vpn := hw.VPN(op % 8)
			if src == dst {
				k.UnmapRecursive(spaces[src], vpn, op%2 == 0)
				continue
			}
			// Mapping may fail if src has nothing there; fine.
			k.Call(threads[src].ID, threads[dst].ID, Msg{
				Map: []MapItem{{SrcVPN: vpn, DstVPN: vpn, Count: 1, Perms: hw.PermR}},
			})
		}
		// Invariant: every parent pointer has a matching child entry.
		for child, parent := range k.mapdb.parent {
			found := false
			for _, c := range k.mapdb.children[parent] {
				if c == child {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
