package mk

import (
	"vmmk/internal/hw"
)

// The mapping database tracks the derivation tree of delegated pages, which
// is what makes L4's unmap a *revocation* primitive: when a pager or server
// unmaps a page it handed out, every mapping transitively derived from it
// disappears too. Grants are not recorded — ownership moved, so the sender
// keeps no revocation authority (this is the semantic difference between
// L4's map and grant, and between a loan and a gift).
//
// The database is the third face of the paper's single-primitive argument:
// resource delegation by mutual agreement, with the delegator retaining
// control. The VMM needs a separate mechanism (grant-table revocation,
// which cannot recurse) for the same job.

// mapNode identifies one mapping: a page in a space.
type mapNode struct {
	space SpaceID
	vpn   hw.VPN
}

// mapDB is the kernel's derivation forest.
type mapDB struct {
	children map[mapNode][]mapNode
	parent   map[mapNode]mapNode
}

func newMapDB() *mapDB {
	return &mapDB{
		children: make(map[mapNode][]mapNode),
		parent:   make(map[mapNode]mapNode),
	}
}

// record notes that dst was derived from src by a map (not grant) item.
// A page can have at most one parent; re-mapping over an existing child
// first detaches its old derivation (and orphans anything derived from the
// overwritten mapping — those pages remain mapped but are no longer
// revocable through this slot).
func (db *mapDB) record(src, dst mapNode) {
	db.drop(dst)
	db.children[src] = append(db.children[src], dst)
	db.parent[dst] = src
}

// sever removes dst from its parent's child list (dst's own subtree is
// untouched — used when dst is overwritten by an unrelated mapping).
func (db *mapDB) sever(dst mapNode) {
	p, ok := db.parent[dst]
	if !ok {
		return
	}
	kids := db.children[p]
	for i, k := range kids {
		if k == dst {
			db.children[p] = append(kids[:i], kids[i+1:]...)
			break
		}
	}
	delete(db.parent, dst)
}

// subtree returns every node transitively derived from n, depth first,
// excluding n itself.
func (db *mapDB) subtree(n mapNode) []mapNode {
	var out []mapNode
	stack := append([]mapNode(nil), db.children[n]...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, cur)
		stack = append(stack, db.children[cur]...)
	}
	return out
}

// drop removes n from the forest: detached from its parent, and its direct
// children become roots (their mappings, if any, survive; only the
// revocation path through n is gone).
func (db *mapDB) drop(n mapNode) {
	db.sever(n)
	for _, c := range db.children[n] {
		delete(db.parent, c)
	}
	delete(db.children, n)
}

// UnmapRecursive revokes the mapping at (s, vpn) and every mapping derived
// from it in other spaces, charging PTE and TLB costs per revoked entry.
// If revokeSelf is false the root mapping stays (the L4 "flush children
// only" mode used by pagers that want to downgrade, not discard). It
// returns the number of mappings removed.
func (k *Kernel) UnmapRecursive(s *Space, vpn hw.VPN, revokeSelf bool) int {
	root := mapNode{space: s.ID, vpn: vpn}
	victims := k.mapdb.subtree(root)
	n := 0
	for i := len(victims) - 1; i >= 0; i-- { // leaves first
		v := victims[i]
		vs := k.spaces[v.space]
		if vs != nil {
			if _, ok := vs.PT.Lookup(v.vpn); ok {
				vs.PT.Unmap(v.vpn)
				k.M.CPU.Work(k.comp, k.M.Arch.Costs.PTEUpdate)
				k.M.CPU.FlushTLBEntry(k.comp, uint16(vs.ID), v.vpn)
				n++
			}
		}
		k.mapdb.drop(v)
	}
	if revokeSelf {
		if _, ok := s.PT.Lookup(vpn); ok {
			s.PT.Unmap(vpn)
			k.M.CPU.Work(k.comp, k.M.Arch.Costs.PTEUpdate)
			k.M.CPU.FlushTLBEntry(k.comp, uint16(s.ID), vpn)
			n++
		}
		k.mapdb.drop(root)
	}
	return n
}

// MappingChildren returns how many direct derivations exist for (s, vpn) —
// an introspection hook for tests and the census.
func (k *Kernel) MappingChildren(s *Space, vpn hw.VPN) int {
	return len(k.mapdb.children[mapNode{space: s.ID, vpn: vpn}])
}
