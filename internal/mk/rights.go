package mk

import "errors"

// IPC rights: a minimal capability-flavoured control over who may IPC whom.
// L4's lineage went from clans & chiefs (V2) to redirectors (X.2) to full
// capability spaces (seL4); the experiments need only the enforcement
// point, which is the same in all three: the kernel checks the sender's
// authority on every IPC before any transfer happens. The default is
// allow-all (classic L4); once a thread is restricted, only whitelisted
// partners are reachable.

// ErrIPCDenied is returned when an IPC is blocked by rights.
var ErrIPCDenied = errors.New("mk: IPC denied by rights restriction")

// rightsTable holds per-sender whitelists; absence means unrestricted.
type rightsTable struct {
	allowed map[ThreadID]map[ThreadID]bool
}

func newRightsTable() *rightsTable {
	return &rightsTable{allowed: make(map[ThreadID]map[ThreadID]bool)}
}

// RestrictIPC puts sender under a whitelist regime (initially empty: it can
// reach nobody until AllowIPC is called).
func (k *Kernel) RestrictIPC(sender ThreadID) error {
	if k.threads[sender] == nil {
		return ErrNoSuchThread
	}
	if k.rights.allowed[sender] == nil {
		k.rights.allowed[sender] = make(map[ThreadID]bool)
	}
	k.M.CPU.Work(k.comp, 100)
	return nil
}

// AllowIPC whitelists receiver for a restricted sender (and restricts the
// sender if it was not yet).
func (k *Kernel) AllowIPC(sender, receiver ThreadID) error {
	if k.threads[sender] == nil || k.threads[receiver] == nil {
		return ErrNoSuchThread
	}
	if k.rights.allowed[sender] == nil {
		k.rights.allowed[sender] = make(map[ThreadID]bool)
	}
	k.rights.allowed[sender][receiver] = true
	k.M.CPU.Work(k.comp, 100)
	return nil
}

// RevokeIPC removes receiver from a restricted sender's whitelist.
func (k *Kernel) RevokeIPC(sender, receiver ThreadID) {
	if wl := k.rights.allowed[sender]; wl != nil {
		delete(wl, receiver)
		k.M.CPU.Work(k.comp, 80)
	}
}

// UnrestrictIPC returns the sender to the default allow-all regime.
func (k *Kernel) UnrestrictIPC(sender ThreadID) {
	delete(k.rights.allowed, sender)
}

// ipcAllowed is the enforcement point, consulted in the IPC preamble.
func (k *Kernel) ipcAllowed(sender, receiver ThreadID) bool {
	wl, restricted := k.rights.allowed[sender]
	if !restricted {
		return true
	}
	return wl[receiver]
}
