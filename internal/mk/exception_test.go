package mk

import (
	"errors"
	"testing"

	"vmmk/internal/hw"
)

// excRig: a user thread whose space has an exception-handler server.
type excRig struct {
	m       *hw.Machine
	k       *Kernel
	user    *Thread
	handler *Thread
	seen    []int
	verdict uint64 // what the handler replies: 1 resume, 0 kill
}

func newExcRig(t *testing.T) *excRig {
	t.Helper()
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 128})
	k := New(m)
	r := &excRig{m: m, k: k, verdict: 1}
	hs, err := k.NewSpace("excsrv", NilThread)
	if err != nil {
		t.Fatal(err)
	}
	r.handler = k.NewThread(hs, "excsrv", 5, func(k *Kernel, from ThreadID, msg Msg) (Msg, error) {
		if msg.Label == LabelException {
			r.seen = append(r.seen, int(msg.Words[0]))
		}
		k.M.CPU.Work(k.M.Rec.Intern("mk.excsrv"), 150)
		return Msg{Words: []uint64{r.verdict}}, nil
	})
	us, err := k.NewSpace("user", NilThread)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetExceptionHandler(us, r.handler.ID); err != nil {
		t.Fatal(err)
	}
	r.user = k.NewThread(us, "user", 1, nil)
	return r
}

func TestExceptionForwardedAsIPC(t *testing.T) {
	r := newExcRig(t)
	sends0, _, _ := r.k.Stats()
	_ = sends0
	resumed, err := r.k.RaiseException(r.user.ID, 6) // illegal instruction
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("handled exception must resume the thread")
	}
	if len(r.seen) != 1 || r.seen[0] != 6 {
		t.Fatalf("handler saw %v", r.seen)
	}
	if !r.k.Alive(r.user.ID) {
		t.Fatal("resumed thread is dead")
	}
	if r.m.Rec.Cycles("mk.excsrv") == 0 {
		t.Fatal("handler work not attributed")
	}
}

func TestExceptionHandlerKillsThread(t *testing.T) {
	r := newExcRig(t)
	r.verdict = 0 // handler declines to resume
	resumed, err := r.k.RaiseException(r.user.ID, 13)
	if err != nil {
		t.Fatal(err)
	}
	if resumed || r.k.Alive(r.user.ID) {
		t.Fatal("declined exception must kill the faulter")
	}
	// The handler itself is fine.
	if !r.k.Alive(r.handler.ID) {
		t.Fatal("handler harmed")
	}
}

func TestExceptionWithoutHandlerIsFatal(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	s, _ := k.NewSpace("bare", NilThread)
	u := k.NewThread(s, "bare", 1, nil)
	resumed, err := k.RaiseException(u.ID, 0)
	if err != nil || resumed {
		t.Fatalf("unhandled exception: resumed=%v err=%v", resumed, err)
	}
	if k.Alive(u.ID) {
		t.Fatal("thread survived unhandled exception")
	}
}

func TestExceptionHandlerDeathConfinesToClients(t *testing.T) {
	r := newExcRig(t)
	r.k.KillThread(r.handler.ID)
	resumed, err := r.k.RaiseException(r.user.ID, 6)
	if err != nil || resumed {
		t.Fatal("exception with dead handler should be fatal to the faulter")
	}
	if r.k.Alive(r.user.ID) {
		t.Fatal("faulter survived with dead handler")
	}
}

func TestSetExceptionHandlerValidation(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	s, _ := k.NewSpace("s", NilThread)
	if err := k.SetExceptionHandler(s, 999); !errors.Is(err, ErrNoSuchThread) {
		t.Fatalf("err = %v, want ErrNoSuchThread", err)
	}
	if err := k.SetExceptionHandler(s, NilThread); err != nil {
		t.Fatal("clearing the handler must be allowed")
	}
}

func TestExceptionOnMissingThread(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	if _, err := k.RaiseException(42, 1); !errors.Is(err, ErrNoSuchThread) {
		t.Fatalf("err = %v, want ErrNoSuchThread", err)
	}
}
