package mk

import (
	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// Page-fault protocol labels. The kernel converts a hardware fault into an
// IPC to the faulting space's pager; the pager replies with a map item that
// resolves it. This is the external-pager mechanism at the centre of the
// paper's §3.1 liability-inversion argument.
const (
	LabelPageFault uint32 = 0xFFF0 + iota
	LabelPageFaultReply
	LabelIRQ
	LabelException
)

// Touch simulates thread t accessing virtual page vpn with the given
// rights: translate, and on failure run the pager protocol and retry. It
// returns the resolved PTE.
func (k *Kernel) Touch(tid ThreadID, vpn hw.VPN, want hw.Perm) (hw.PTE, error) {
	t := k.threads[tid]
	if t == nil {
		return hw.PTE{}, ErrNoSuchThread
	}
	k.M.CPU.SwitchSpace(t.comp, t.Space.PT)
	e, res := k.M.CPU.Translate(t.comp, vpn, want)
	if res == hw.XlateOK {
		return e, nil
	}
	if err := k.handleFault(t, vpn, want); err != nil {
		return hw.PTE{}, err
	}
	e, res = k.M.CPU.Translate(t.comp, vpn, want)
	if res != hw.XlateOK {
		return hw.PTE{}, ErrPagerFailed
	}
	return e, nil
}

// handleFault runs the kernel fault path: enter the kernel, synthesise a
// fault IPC to the pager, apply the pager's reply mapping.
func (k *Kernel) handleFault(t *Thread, vpn hw.VPN, want hw.Perm) error {
	k.M.CPU.Trap(k.comp, false) // faults always take the slow gate
	k.M.CPU.Charge(k.comp, trace.KPageFault, k.M.Arch.Costs.PrivCheck)

	pagerID := t.Space.Pager
	if pagerID == NilThread {
		k.M.CPU.ReturnTo(k.comp, hw.Ring3)
		return ErrNoPager
	}
	pager := k.threads[pagerID]
	if pager == nil || pager.State == StateDead || pager.Space.Dead || pager.Handler == nil {
		// Pager gone: the fault cannot be resolved. The faulting thread
		// is the casualty; the kernel and everyone else survive.
		k.M.CPU.ReturnTo(k.comp, hw.Ring3)
		return ErrNoPager
	}

	// Fault IPC: kernel-synthesised message on behalf of the faulter.
	k.faultsIPCd++
	k.M.CPU.Charge(k.comp, trace.KPagerFault, 30)
	k.M.CPU.SwitchSpace(k.comp, pager.Space.PT)
	k.M.CPU.ReturnTo(k.comp, hw.Ring3)

	k.callDepth++
	reply, herr := pager.Handler(k, t.ID, Msg{
		Label: LabelPageFault,
		Words: []uint64{uint64(vpn), uint64(want)},
	})
	k.callDepth--

	k.M.CPU.Trap(k.comp, false)
	if herr == nil && len(reply.Map) > 0 {
		if merr := k.applyMapItems(pager.Space, t.Space, reply.Map); merr != nil {
			herr = merr
		}
	} else if herr == nil {
		herr = ErrPagerFailed
	}
	k.M.CPU.SwitchSpace(k.comp, t.Space.PT)
	k.M.CPU.ReturnTo(k.comp, hw.Ring3)
	return herr
}

// SetExceptionHandler nominates the thread that receives a space's non-
// page-fault exceptions (divide error, illegal instruction, …) as IPC —
// the L4 exception protocol, the exact structural twin of the VMM's
// exception virtualisation (primitive 7). A space without a handler kills
// the faulting thread.
func (k *Kernel) SetExceptionHandler(s *Space, handler ThreadID) error {
	if handler != NilThread && k.threads[handler] == nil {
		return ErrNoSuchThread
	}
	s.ExcHandler = handler
	k.M.CPU.Work(k.comp, 100)
	return nil
}

// RaiseException simulates thread tid taking a synchronous exception with
// the given vector. The kernel converts it into an IPC to the space's
// exception handler; the handler's reply resumes the thread (true) or the
// kernel kills it (false, or no handler).
func (k *Kernel) RaiseException(tid ThreadID, vector int) (resumed bool, err error) {
	t := k.threads[tid]
	if t == nil {
		return false, ErrNoSuchThread
	}
	k.M.CPU.Trap(k.comp, false)
	k.M.CPU.Work(k.comp, k.M.Arch.Costs.PrivCheck)

	hid := t.Space.ExcHandler
	handler := k.threads[hid]
	if handler == nil || handler.State == StateDead || handler.Space.Dead || handler.Handler == nil {
		// Unhandled: the faulter dies; nobody else is touched.
		k.M.CPU.ReturnTo(k.comp, hw.Ring3)
		k.KillThread(tid)
		return false, nil
	}
	// Exception IPC, kernel-synthesised on behalf of the faulter.
	k.M.CPU.Charge(k.comp, trace.KIPCSend, 30)
	k.M.CPU.SwitchSpace(k.comp, handler.Space.PT)
	k.M.CPU.ReturnTo(k.comp, hw.Ring3)
	k.callDepth++
	reply, herr := handler.Handler(k, tid, Msg{
		Label: LabelException,
		Words: []uint64{uint64(vector)},
	})
	k.callDepth--
	k.M.CPU.Trap(k.comp, false)
	k.M.CPU.SwitchSpace(k.comp, t.Space.PT)
	k.M.CPU.ReturnTo(k.comp, hw.Ring3)
	if herr != nil || len(reply.Words) == 0 || reply.Words[0] == 0 {
		k.KillThread(tid)
		return false, nil
	}
	return true, nil
}

// RegisterIRQ routes a hardware interrupt line to a driver thread: the
// kernel's interrupt handler becomes a synthesised IPC send, which is how
// L4 delivers device interrupts to user-level drivers.
func (k *Kernel) RegisterIRQ(line hw.IRQLine, tid ThreadID) error {
	if k.threads[tid] == nil {
		return ErrNoSuchThread
	}
	k.irqOwner[line] = tid
	k.M.IRQ.SetHandler(line, func(l hw.IRQLine) {
		owner := k.irqOwner[l]
		t := k.threads[owner]
		if t == nil || t.State == StateDead || t.Space.Dead {
			return // driver died; interrupt is dropped, kernel unharmed
		}
		// Interrupt IPC: conceptually from the "hardware thread".
		k.M.CPU.Charge(k.comp, trace.KIPCSend, 20)
		if t.Handler != nil {
			prev := k.M.CPU.PageTable()
			k.M.CPU.SwitchSpace(k.comp, t.Space.PT)
			k.callDepth++
			_, _ = t.Handler(k, NilThread, Msg{Label: LabelIRQ, Words: []uint64{uint64(l)}})
			k.callDepth--
			if prev != nil {
				k.M.CPU.SwitchSpace(k.comp, prev)
			}
		} else {
			t.Inbox = append(t.Inbox, Envelope{From: NilThread, Msg: Msg{Label: LabelIRQ, Words: []uint64{uint64(l)}}})
		}
		t.ipcIn++
		k.ipcSends++
	})
	k.M.CPU.Work(k.comp, 100)
	return nil
}

// KillThread marks a thread dead (fault injection / crash). Its queued
// messages are discarded; future IPC to it fails with ErrDeadPartner.
func (k *Kernel) KillThread(tid ThreadID) {
	t := k.threads[tid]
	if t == nil || t.State == StateDead {
		return
	}
	t.State = StateDead
	t.Inbox = nil
	t.Handler = nil
	k.sched.remove(t)
	k.M.Rec.Charge(uint64(k.M.Clock.Now()), trace.KFault, t.comp, 0)
}

// KillSpace kills a whole protection domain: every thread in it dies and
// its mappings are torn down. Other spaces' mappings of shared frames are
// untouched — exactly the isolation property E4 measures.
func (k *Kernel) KillSpace(s *Space) {
	if s.Dead {
		return
	}
	s.Dead = true
	for _, t := range k.threads {
		if t.Space == s {
			k.KillThread(t.ID)
		}
	}
	s.PT.Each(func(v hw.VPN, _ hw.PTE) {})
	k.M.Rec.Charge(uint64(k.M.Clock.Now()), trace.KFault, s.comp, 0)
}

// Alive reports whether the thread exists and is not dead.
func (k *Kernel) Alive(tid ThreadID) bool {
	t := k.threads[tid]
	return t != nil && t.State != StateDead && !t.Space.Dead
}
