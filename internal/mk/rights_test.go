package mk

import (
	"errors"
	"testing"

	"vmmk/internal/hw"
)

func TestDefaultIsAllowAll(t *testing.T) {
	r := newRig(t, hw.X86())
	if _, err := r.k.Call(r.client.ID, r.server.ID, Msg{}); err != nil {
		t.Fatal(err)
	}
}

func TestRestrictedSenderBlocked(t *testing.T) {
	r := newRig(t, hw.X86())
	if err := r.k.RestrictIPC(r.client.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.k.Call(r.client.ID, r.server.ID, Msg{}); !errors.Is(err, ErrIPCDenied) {
		t.Fatalf("err = %v, want ErrIPCDenied", err)
	}
	// Send is enforced through the same preamble.
	if err := r.k.Send(r.client.ID, r.server.ID, Msg{}); !errors.Is(err, ErrIPCDenied) {
		t.Fatalf("send err = %v, want ErrIPCDenied", err)
	}
}

func TestAllowThenRevoke(t *testing.T) {
	r := newRig(t, hw.X86())
	r.k.RestrictIPC(r.client.ID)
	if err := r.k.AllowIPC(r.client.ID, r.server.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.k.Call(r.client.ID, r.server.ID, Msg{}); err != nil {
		t.Fatalf("whitelisted call failed: %v", err)
	}
	r.k.RevokeIPC(r.client.ID, r.server.ID)
	if _, err := r.k.Call(r.client.ID, r.server.ID, Msg{}); !errors.Is(err, ErrIPCDenied) {
		t.Fatalf("err after revoke = %v, want ErrIPCDenied", err)
	}
}

func TestUnrestrictRestoresAllowAll(t *testing.T) {
	r := newRig(t, hw.X86())
	r.k.RestrictIPC(r.client.ID)
	r.k.UnrestrictIPC(r.client.ID)
	if _, err := r.k.Call(r.client.ID, r.server.ID, Msg{}); err != nil {
		t.Fatal(err)
	}
}

func TestRestrictionIsPerSender(t *testing.T) {
	r := newRig(t, hw.X86())
	// Restricting the client must not affect the server's own sends.
	r.k.RestrictIPC(r.client.ID)
	if err := r.k.Send(r.server.ID, r.client.ID, Msg{Label: 9}); err != nil {
		t.Fatalf("unrestricted sender blocked: %v", err)
	}
}

func TestRightsOnMissingThreads(t *testing.T) {
	r := newRig(t, hw.X86())
	if err := r.k.RestrictIPC(999); !errors.Is(err, ErrNoSuchThread) {
		t.Fatal("restrict on missing thread accepted")
	}
	if err := r.k.AllowIPC(r.client.ID, 999); !errors.Is(err, ErrNoSuchThread) {
		t.Fatal("allow on missing receiver accepted")
	}
}

func TestDeniedIPCChargesValidationOnly(t *testing.T) {
	// A denied IPC must cost the kernel entry + check, not a transfer:
	// the denial happens before any copy or switch.
	r := newRig(t, hw.X86())
	r.k.RestrictIPC(r.client.ID)
	t0 := r.m.Now()
	r.k.Call(r.client.ID, r.server.ID, Msg{Data: make([]byte, 65536)})
	denied := r.m.Now() - t0

	r.k.UnrestrictIPC(r.client.ID)
	t1 := r.m.Now()
	r.k.Call(r.client.ID, r.server.ID, Msg{Data: make([]byte, 65536)})
	allowed := r.m.Now() - t1
	if denied >= allowed/4 {
		t.Fatalf("denied IPC cost %d, allowed %d — denial must be early", denied, allowed)
	}
}
