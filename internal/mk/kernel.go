package mk

import (
	"errors"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// ThreadID names a thread. The kernel component itself uses thread ID 0,
// which is never allocated.
type ThreadID uint32

// NilThread is the absent thread.
const NilThread ThreadID = 0

// SpaceID names an address space.
type SpaceID uint16

// Errors returned by kernel operations.
var (
	ErrNoSuchThread   = errors.New("mk: no such thread")
	ErrDeadPartner    = errors.New("mk: IPC partner is dead")
	ErrNotResponding  = errors.New("mk: partner not accepting IPC")
	ErrMsgTooLarge    = errors.New("mk: message exceeds transfer limit")
	ErrBadMapping     = errors.New("mk: map item references unmapped page")
	ErrPermDenied     = errors.New("mk: insufficient rights for transfer")
	ErrNoPager        = errors.New("mk: fault with no pager registered")
	ErrPagerFailed    = errors.New("mk: pager could not resolve fault")
	ErrSpaceExhausted = errors.New("mk: out of address-space IDs")
	ErrCallDepth      = errors.New("mk: IPC call chain too deep")
	ErrBadCPU         = errors.New("mk: CPU index out of range")
)

// KernelComponent is the trace attribution name of kernel-mode work.
const KernelComponent = "mk.kernel"

// maxCallDepth bounds nested server-calls-server chains; a cycle in the
// server graph is a deadlock in a real synchronous-IPC system and a bug in
// the simulation.
const maxCallDepth = 16

// Kernel is the microkernel proper.
type Kernel struct {
	M *hw.Machine

	comp trace.Comp // KernelComponent, interned at boot

	threads map[ThreadID]*Thread
	spaces  map[SpaceID]*Space

	nextTID  ThreadID
	nextASID SpaceID

	irqOwner map[hw.IRQLine]ThreadID

	sched  *scheduler
	mapdb  *mapDB
	rights *rightsTable

	callDepth int

	// stats
	ipcCalls    uint64
	ipcSends    uint64
	ipcCrossCPU uint64
	faultsIPCd  uint64
}

// New boots a microkernel on machine m. The kernel reserves ASID 0 for
// itself; user spaces start at 1.
func New(m *hw.Machine) *Kernel {
	k := &Kernel{
		M:        m,
		comp:     m.Rec.Intern(KernelComponent),
		threads:  make(map[ThreadID]*Thread),
		spaces:   make(map[SpaceID]*Space),
		nextTID:  1,
		nextASID: 1,
		irqOwner: make(map[hw.IRQLine]ThreadID),
	}
	k.sched = newScheduler(k)
	k.mapdb = newMapDB()
	k.rights = newRightsTable()
	// Boot cost: set up kernel space, IDT-equivalent, etc.
	m.CPU.Work(k.comp, 5000)
	return k
}

// Space is one protection domain: a page table plus the pager thread that
// handles its faults (the external-pager mechanism of §3.1).
type Space struct {
	ID    SpaceID
	Name  string
	PT    *hw.PageTable
	Pager ThreadID
	// ExcHandler receives the space's non-page-fault exceptions as IPC
	// (the L4 exception protocol); NilThread means faults are fatal to
	// the faulting thread.
	ExcHandler ThreadID
	Dead       bool

	comp     trace.Comp // "mk."+Name, interned at creation
	compName string     // "mk."+Name, cached for per-allocation owner tags
}

// Component returns the trace attribution name for work done in the space.
func (s *Space) Component() string { return s.compName }

// Comp returns the space's interned trace attribution handle.
func (s *Space) Comp() trace.Comp { return s.comp }

// NewSpace creates an empty address space. Pager may be NilThread for
// spaces that must never fault (drivers with pinned memory).
func (k *Kernel) NewSpace(name string, pager ThreadID) (*Space, error) {
	if k.nextASID == 0 { // wrapped
		return nil, ErrSpaceExhausted
	}
	s := &Space{
		ID:    k.nextASID,
		Name:  name,
		PT:    hw.NewPageTable(uint16(k.nextASID)),
		Pager: pager,
		comp:  k.M.Rec.Intern("mk." + name),
	}
	s.compName = "mk." + name
	k.nextASID++
	k.spaces[s.ID] = s
	k.M.CPU.Work(k.comp, 300) // space construction
	return s, nil
}

// Handler is the body of a server thread: it receives a message from a
// client and produces a reply. Handlers run "in" the server's space; the
// kernel has already switched to it and charged the switch.
type Handler func(k *Kernel, from ThreadID, msg Msg) (Msg, error)

// ThreadState is a thread's scheduling state.
type ThreadState uint8

// Thread states.
const (
	StateReady ThreadState = iota
	StateBlocked
	StateDead
)

// String names the scheduling state.
func (s ThreadState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateBlocked:
		return "blocked"
	case StateDead:
		return "dead"
	}
	return "invalid"
}

// Thread is a kernel-scheduled activity bound to one space.
type Thread struct {
	ID      ThreadID
	Name    string
	Space   *Space
	Prio    int // higher runs first
	State   ThreadState
	Handler Handler

	// Affinity is the CPU whose run queue homes the thread (0 on a
	// uniprocessor). SetAffinity re-homes it; work stealing may migrate
	// it when its home CPU has surplus ready work.
	Affinity int
	// onCPU is the CPU the thread is currently installed on, -1 when not
	// running anywhere — the invariant that a thread never occupies two
	// CPUs at once is enforced through it.
	onCPU int

	// Inbox holds one-way sends awaiting the thread's next activation.
	Inbox []Envelope

	ipcIn  uint64
	ipcOut uint64

	comp     trace.Comp // "mk."+Name, interned at creation
	compName string     // "mk."+Name, cached for per-allocation owner tags
}

// Envelope is a queued one-way message.
type Envelope struct {
	From ThreadID
	Msg  Msg
}

// Component returns the thread's trace attribution name.
func (t *Thread) Component() string { return t.compName }

// Comp returns the thread's interned trace attribution handle.
func (t *Thread) Comp() trace.Comp { return t.comp }

// NewThread creates a thread in space with the given priority and handler
// (nil for pure client threads that only originate IPC).
func (k *Kernel) NewThread(space *Space, name string, prio int, h Handler) *Thread {
	t := &Thread{
		ID:      k.nextTID,
		Name:    name,
		Space:   space,
		Prio:    prio,
		State:   StateReady,
		Handler: h,
		onCPU:   -1,
		comp:    k.M.Rec.Intern("mk." + name),
	}
	t.compName = "mk." + name
	k.nextTID++
	k.threads[t.ID] = t
	k.sched.add(t)
	k.M.CPU.Work(k.comp, 400) // TCB allocation and setup
	return t
}

// Comp returns the kernel's interned trace attribution handle.
func (k *Kernel) Comp() trace.Comp { return k.comp }

// Thread returns the thread for id, or nil.
func (k *Kernel) Thread(id ThreadID) *Thread { return k.threads[id] }

// Threads returns the number of live threads.
func (k *Kernel) Threads() int {
	n := 0
	for _, t := range k.threads {
		if t.State != StateDead {
			n++
		}
	}
	return n
}

// MapPage installs a mapping in a space with root (sigma0) authority,
// charging PTE update cost. It is how initial memory is handed out; all
// later delegation goes through IPC map items. Overwriting a slot detaches
// any derivation recorded for it.
func (k *Kernel) MapPage(s *Space, vpn hw.VPN, f hw.FrameID, perms hw.Perm) {
	s.PT.Map(vpn, hw.PTE{Frame: f, Perms: perms, User: true})
	k.M.CPU.Work(k.comp, k.M.Arch.Costs.PTEUpdate)
	k.mapdb.drop(mapNode{space: s.ID, vpn: vpn})
}

// UnmapPage removes a single mapping and invalidates the TLB entry, on the
// local CPU directly and on any other CPU currently running a thread of the
// space by cross-CPU shootdown. Derived mappings in other spaces survive
// (use UnmapRecursive to revoke them).
func (k *Kernel) UnmapPage(s *Space, vpn hw.VPN) {
	s.PT.Unmap(vpn)
	k.M.CPU.Work(k.comp, k.M.Arch.Costs.PTEUpdate)
	k.M.CPU.FlushTLBEntry(k.comp, uint16(s.ID), vpn)
	if targets := k.cpusRunningSpace(s, 0); len(targets) > 0 {
		k.M.ShootdownEntry(0, targets, uint16(s.ID), vpn)
	}
	k.mapdb.drop(mapNode{space: s.ID, vpn: vpn})
}

// AllocAndMap allocates n frames to the space's name and maps them starting
// at base. It returns the frames.
func (k *Kernel) AllocAndMap(s *Space, base hw.VPN, n int, perms hw.Perm) ([]hw.FrameID, error) {
	frames, err := k.M.Mem.AllocN(s.Component(), n)
	if err != nil {
		return nil, err
	}
	for i, f := range frames {
		k.MapPage(s, base+hw.VPN(i), f, perms)
	}
	return frames, nil
}

// PumpIO drives the machine until quiescent or maxRounds: fire every due
// scheduled event, then dispatch pending interrupts (which become IPCs to
// driver threads). Returns the number of events plus interrupts processed.
func (k *Kernel) PumpIO(maxRounds int) int {
	total := 0
	for round := 0; round < maxRounds; round++ {
		n := k.M.Events.RunUntilIdle(1024)
		n += k.M.IRQ.DispatchPending(k.comp)
		total += n
		if n == 0 {
			break
		}
	}
	return total
}

// Stats returns cumulative IPC operation counts.
func (k *Kernel) Stats() (calls, sends, faultIPCs uint64) {
	return k.ipcCalls, k.ipcSends, k.faultsIPCd
}

// CrossCPUIPC returns how many IPC operations crossed a CPU boundary (and
// therefore paid the IPI surcharge).
func (k *Kernel) CrossCPUIPC() uint64 { return k.ipcCrossCPU }
