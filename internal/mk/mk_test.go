package mk

import (
	"errors"
	"testing"
	"testing/quick"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// rig is a booted microkernel with a client thread and an echo server in
// separate spaces.
type rig struct {
	m      *hw.Machine
	k      *Kernel
	client *Thread
	server *Thread
}

func newRig(t testing.TB, arch *hw.Arch) *rig {
	t.Helper()
	m := hw.NewMachine(arch, &hw.MachineConfig{Frames: 256})
	k := New(m)
	cs, err := k.NewSpace("client", NilThread)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := k.NewSpace("server", NilThread)
	if err != nil {
		t.Fatal(err)
	}
	client := k.NewThread(cs, "client", 1, nil)
	server := k.NewThread(ss, "server", 2, func(k *Kernel, from ThreadID, msg Msg) (Msg, error) {
		k.M.CPU.Work(k.M.Rec.Intern("mk.server"), 100) // pretend to do something
		return Msg{Label: msg.Label + 1, Words: msg.Words, Data: msg.Data}, nil
	})
	return &rig{m: m, k: k, client: client, server: server}
}

func TestCallRoundTrip(t *testing.T) {
	r := newRig(t, hw.X86())
	reply, err := r.k.Call(r.client.ID, r.server.ID, Msg{Label: 10, Words: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Label != 11 || len(reply.Words) != 2 || reply.Words[1] != 2 {
		t.Fatalf("bad reply %+v", reply)
	}
	if r.m.Rec.Counts(trace.KIPCCall) != 1 {
		t.Fatalf("KIPCCall = %d, want 1", r.m.Rec.Counts(trace.KIPCCall))
	}
	calls, _, _ := r.k.Stats()
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestCallChargesKernelAndServer(t *testing.T) {
	r := newRig(t, hw.X86())
	k0 := r.m.Rec.Cycles(KernelComponent)
	_, err := r.k.Call(r.client.ID, r.server.ID, Msg{})
	if err != nil {
		t.Fatal(err)
	}
	if r.m.Rec.Cycles(KernelComponent) <= k0 {
		t.Fatal("kernel cycles not charged")
	}
	if r.m.Rec.Cycles("mk.server") != 100 {
		t.Fatalf("server cycles = %d, want 100", r.m.Rec.Cycles("mk.server"))
	}
	// Round trip must include at least two traps and two kernel exits.
	if r.m.Rec.Counts(trace.KTrap) < 2 {
		t.Fatalf("traps = %d, want >= 2", r.m.Rec.Counts(trace.KTrap))
	}
}

func TestCallToDeadServer(t *testing.T) {
	r := newRig(t, hw.X86())
	r.k.KillThread(r.server.ID)
	_, err := r.k.Call(r.client.ID, r.server.ID, Msg{})
	if !errors.Is(err, ErrDeadPartner) {
		t.Fatalf("err = %v, want ErrDeadPartner", err)
	}
	// The failure is the client's problem only: kernel still functional.
	if !r.k.Alive(r.client.ID) {
		t.Fatal("client died with the server — isolation broken")
	}
	if r.m.Rec.Counts(trace.KFault) != 1 {
		t.Fatal("kill not recorded as fault event")
	}
}

func TestCallToHandlerlessThread(t *testing.T) {
	r := newRig(t, hw.X86())
	_, err := r.k.Call(r.server.ID, r.client.ID, Msg{})
	if !errors.Is(err, ErrNotResponding) {
		t.Fatalf("err = %v, want ErrNotResponding", err)
	}
}

func TestCallNoSuchThread(t *testing.T) {
	r := newRig(t, hw.X86())
	if _, err := r.k.Call(r.client.ID, 999, Msg{}); !errors.Is(err, ErrNoSuchThread) {
		t.Fatalf("err = %v, want ErrNoSuchThread", err)
	}
}

func TestShortIPCCheaperThanString(t *testing.T) {
	r := newRig(t, hw.X86())
	t0 := r.m.Now()
	r.k.Call(r.client.ID, r.server.ID, Msg{Words: []uint64{1, 2, 3}})
	short := r.m.Now() - t0
	t1 := r.m.Now()
	r.k.Call(r.client.ID, r.server.ID, Msg{Data: make([]byte, 8192)})
	long := r.m.Now() - t1
	if long <= short {
		t.Fatalf("string IPC (%d) should cost more than short IPC (%d)", long, short)
	}
	if r.m.Rec.Counts(trace.KIPCStringTransfer) != 2 { // request + echoed reply
		t.Fatalf("string transfers = %d, want 2", r.m.Rec.Counts(trace.KIPCStringTransfer))
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	r := newRig(t, hw.X86())
	_, err := r.k.Call(r.client.ID, r.server.ID, Msg{Data: make([]byte, maxStringTransfer+1)})
	if !errors.Is(err, ErrMsgTooLarge) {
		t.Fatalf("err = %v, want ErrMsgTooLarge", err)
	}
}

func TestMapTransferSharesFrame(t *testing.T) {
	r := newRig(t, hw.X86())
	frames, err := r.k.AllocAndMap(r.client.Space, 0x100, 1, hw.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	copy(r.m.Mem.Data(frames[0]), []byte("shared"))
	_, err = r.k.Call(r.client.ID, r.server.ID, Msg{
		Map: []MapItem{{SrcVPN: 0x100, DstVPN: 0x200, Count: 1, Perms: hw.PermR}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := r.server.Space.PT.Lookup(0x200)
	if !ok || e.Frame != frames[0] {
		t.Fatal("map transfer did not install the frame")
	}
	if e.Perms != hw.PermR {
		t.Fatalf("receiver perms = %v, want r--", e.Perms)
	}
	// Sender keeps its mapping on map (not grant).
	if _, ok := r.client.Space.PT.Lookup(0x100); !ok {
		t.Fatal("map (non-grant) removed the sender's mapping")
	}
	if r.m.Rec.Counts(trace.KIPCMapTransfer) != 1 {
		t.Fatal("map transfer not recorded")
	}
}

func TestGrantMovesOwnership(t *testing.T) {
	r := newRig(t, hw.X86())
	frames, _ := r.k.AllocAndMap(r.client.Space, 0x100, 1, hw.PermRW)
	_, err := r.k.Call(r.client.ID, r.server.ID, Msg{
		Map: []MapItem{{SrcVPN: 0x100, DstVPN: 0x300, Count: 1, Perms: hw.PermRW, Grant: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.client.Space.PT.Lookup(0x100); ok {
		t.Fatal("grant left the sender's mapping")
	}
	if r.m.Mem.Owner(frames[0]) != "mk.server" {
		t.Fatalf("frame owner = %q, want mk.server", r.m.Mem.Owner(frames[0]))
	}
}

func TestMapItemRightsNotAmplified(t *testing.T) {
	r := newRig(t, hw.X86())
	if _, err := r.k.AllocAndMap(r.client.Space, 0x100, 1, hw.PermR); err != nil {
		t.Fatal(err)
	}
	_, err := r.k.Call(r.client.ID, r.server.ID, Msg{
		Map: []MapItem{{SrcVPN: 0x100, DstVPN: 0x200, Count: 1, Perms: hw.PermRW}},
	})
	if !errors.Is(err, ErrPermDenied) {
		t.Fatalf("err = %v, want ErrPermDenied (delegation must not amplify rights)", err)
	}
}

func TestMapItemUnmappedSource(t *testing.T) {
	r := newRig(t, hw.X86())
	_, err := r.k.Call(r.client.ID, r.server.ID, Msg{
		Map: []MapItem{{SrcVPN: 0x999, DstVPN: 0x200, Count: 1, Perms: hw.PermR}},
	})
	if !errors.Is(err, ErrBadMapping) {
		t.Fatalf("err = %v, want ErrBadMapping", err)
	}
}

func TestSendQueuesToHandlerless(t *testing.T) {
	r := newRig(t, hw.X86())
	if err := r.k.Send(r.server.ID, r.client.ID, Msg{Label: 7}); err != nil {
		t.Fatal(err)
	}
	env, ok := r.k.Receive(r.client.ID)
	if !ok || env.Msg.Label != 7 || env.From != r.server.ID {
		t.Fatalf("bad envelope %+v ok=%v", env, ok)
	}
	if _, ok := r.k.Receive(r.client.ID); ok {
		t.Fatal("inbox should be empty")
	}
}

func TestSendDeliversToHandler(t *testing.T) {
	r := newRig(t, hw.X86())
	got := 0
	ss, _ := r.k.NewSpace("sink", NilThread)
	sink := r.k.NewThread(ss, "sink", 1, func(k *Kernel, from ThreadID, msg Msg) (Msg, error) {
		got++
		return Msg{}, nil
	})
	if err := r.k.Send(r.client.ID, sink.ID, Msg{}); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatal("handler not invoked on send")
	}
	_, sends, _ := r.k.Stats()
	if sends != 1 {
		t.Fatalf("sends = %d, want 1", sends)
	}
}

func TestNestedCallsServerToServer(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	cs, _ := k.NewSpace("c", NilThread)
	bs, _ := k.NewSpace("b", NilThread)
	as, _ := k.NewSpace("a", NilThread)
	var backendID ThreadID
	backend := k.NewThread(bs, "backend", 2, func(k *Kernel, from ThreadID, msg Msg) (Msg, error) {
		return Msg{Words: []uint64{msg.Words[0] * 2}}, nil
	})
	backendID = backend.ID
	frontSelf := ThreadID(0)
	front := k.NewThread(as, "front", 2, func(k *Kernel, from ThreadID, msg Msg) (Msg, error) {
		return k.Call(frontSelf, backendID, msg)
	})
	frontSelf = front.ID
	client := k.NewThread(cs, "cl", 1, nil)
	reply, err := k.Call(client.ID, front.ID, Msg{Words: []uint64{21}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Words[0] != 42 {
		t.Fatalf("nested call reply = %d, want 42", reply.Words[0])
	}
	calls, _, _ := k.Stats()
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestCallDepthBounded(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	s, _ := k.NewSpace("loop", NilThread)
	var selfID ThreadID
	self := k.NewThread(s, "loop", 1, func(k *Kernel, from ThreadID, msg Msg) (Msg, error) {
		return k.Call(selfID, selfID, msg) // infinite recursion
	})
	selfID = self.ID
	_, err := k.Call(selfID, selfID, Msg{})
	if !errors.Is(err, ErrCallDepth) {
		t.Fatalf("err = %v, want ErrCallDepth", err)
	}
}

func TestPagerResolvesFault(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	ps, _ := k.NewSpace("pager", NilThread)
	var pagerSpace = ps
	pager := k.NewThread(ps, "pager", 3, func(k *Kernel, from ThreadID, msg Msg) (Msg, error) {
		if msg.Label != LabelPageFault {
			return Msg{}, nil
		}
		vpn := hw.VPN(msg.Words[0])
		// Allocate backing, map it into the pager's own window, then
		// delegate to the faulter.
		f, err := k.M.Mem.Alloc("mk.pager")
		if err != nil {
			return Msg{}, err
		}
		window := hw.VPN(0x8000) + vpn
		pagerSpace.PT.Map(window, hw.PTE{Frame: f, Perms: hw.PermRW, User: true})
		return Msg{
			Label: LabelPageFaultReply,
			Map:   []MapItem{{SrcVPN: window, DstVPN: vpn, Count: 1, Perms: hw.PermRW}},
		}, nil
	})
	us, _ := k.NewSpace("user", pager.ID)
	u := k.NewThread(us, "user", 1, nil)

	if _, err := k.Touch(u.ID, 0x42, hw.PermW); err != nil {
		t.Fatal(err)
	}
	if _, ok := us.PT.Lookup(0x42); !ok {
		t.Fatal("pager reply did not install mapping")
	}
	if m.Rec.Counts(trace.KPagerFault) != 1 {
		t.Fatal("pager fault IPC not recorded")
	}
	// Second touch: no new fault.
	if _, err := k.Touch(u.ID, 0x42, hw.PermW); err != nil {
		t.Fatal(err)
	}
	if m.Rec.Counts(trace.KPagerFault) != 1 {
		t.Fatal("resolved page faulted again")
	}
}

func TestFaultWithDeadPagerKillsOnlyFaulter(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	ps, _ := k.NewSpace("pager", NilThread)
	pager := k.NewThread(ps, "pager", 3, func(k *Kernel, from ThreadID, msg Msg) (Msg, error) {
		return Msg{}, nil
	})
	us, _ := k.NewSpace("user", pager.ID)
	u := k.NewThread(us, "user", 1, nil)
	other, _ := k.NewSpace("other", NilThread)
	o := k.NewThread(other, "other", 1, nil)

	k.KillThread(pager.ID)
	_, err := k.Touch(u.ID, 0x10, hw.PermR)
	if !errors.Is(err, ErrNoPager) {
		t.Fatalf("err = %v, want ErrNoPager", err)
	}
	// Blast radius: only the client of the dead pager is affected.
	if !k.Alive(o.ID) {
		t.Fatal("unrelated thread harmed by pager death")
	}
}

func TestFaultNoPagerRegistered(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	us, _ := k.NewSpace("user", NilThread)
	u := k.NewThread(us, "user", 1, nil)
	if _, err := k.Touch(u.ID, 0x10, hw.PermR); !errors.Is(err, ErrNoPager) {
		t.Fatalf("err = %v, want ErrNoPager", err)
	}
}

func TestIRQDeliveredAsIPC(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	ds, _ := k.NewSpace("drv", NilThread)
	gotLine := hw.IRQLine(-1)
	drv := k.NewThread(ds, "drv", 4, func(k *Kernel, from ThreadID, msg Msg) (Msg, error) {
		if msg.Label == LabelIRQ {
			gotLine = hw.IRQLine(msg.Words[0])
		}
		return Msg{}, nil
	})
	if err := k.RegisterIRQ(5, drv.ID); err != nil {
		t.Fatal(err)
	}
	m.IRQ.Raise(5)
	m.IRQ.DispatchPending(m.Rec.Intern(KernelComponent))
	if gotLine != 5 {
		t.Fatalf("driver saw line %d, want 5", gotLine)
	}
	_, sends, _ := k.Stats()
	if sends != 1 {
		t.Fatalf("IRQ should count as one IPC send, got %d", sends)
	}
}

func TestIRQToDeadDriverDropped(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	ds, _ := k.NewSpace("drv", NilThread)
	drv := k.NewThread(ds, "drv", 4, func(k *Kernel, from ThreadID, msg Msg) (Msg, error) {
		t.Fatal("dead driver's handler ran")
		return Msg{}, nil
	})
	k.RegisterIRQ(5, drv.ID)
	k.KillThread(drv.ID)
	m.IRQ.Raise(5)
	m.IRQ.DispatchPending(m.Rec.Intern(KernelComponent)) // must not panic or invoke
}

func TestKillSpaceKillsAllItsThreads(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	s, _ := k.NewSpace("victim", NilThread)
	t1 := k.NewThread(s, "v1", 1, nil)
	t2 := k.NewThread(s, "v2", 1, nil)
	other, _ := k.NewSpace("other", NilThread)
	t3 := k.NewThread(other, "o", 1, nil)
	k.KillSpace(s)
	if k.Alive(t1.ID) || k.Alive(t2.ID) {
		t.Fatal("threads survived space kill")
	}
	if !k.Alive(t3.ID) {
		t.Fatal("kill leaked into another space")
	}
	if k.Threads() != 1 {
		t.Fatalf("live threads = %d, want 1", k.Threads())
	}
}

func TestSchedulerPriorityAndRoundRobin(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	s, _ := k.NewSpace("s", NilThread)
	lo := k.NewThread(s, "lo", 1, nil)
	hi1 := k.NewThread(s, "hi1", 5, nil)
	hi2 := k.NewThread(s, "hi2", 5, nil)

	first := k.Schedule()
	second := k.Schedule()
	third := k.Schedule()
	if first.Prio != 5 || second.Prio != 5 {
		t.Fatal("high priority threads must run first")
	}
	if first == second {
		t.Fatal("round robin did not rotate within priority class")
	}
	if third != first {
		t.Fatal("rotation should come back around")
	}
	_ = lo
	_, _ = hi1, hi2
	// Kill the high-priority threads; low must finally run.
	k.KillThread(hi1.ID)
	k.KillThread(hi2.ID)
	if got := k.Schedule(); got == nil || got.Prio != 1 {
		t.Fatal("low priority thread never scheduled after highs died")
	}
}

func TestScheduleChargesSwitch(t *testing.T) {
	m := hw.NewMachine(hw.X86(), nil)
	k := New(m)
	s1, _ := k.NewSpace("s1", NilThread)
	s2, _ := k.NewSpace("s2", NilThread)
	k.NewThread(s1, "a", 1, nil)
	k.NewThread(s2, "b", 1, nil)
	k.Schedule()
	k.Schedule()
	if k.Switches() != 2 {
		t.Fatalf("switches = %d, want 2", k.Switches())
	}
	if m.Rec.Counts(trace.KContextSwitch) != 2 {
		t.Fatal("context switches not recorded")
	}
	// Switching spaces on untagged x86 must have flushed the TLB.
	if m.Rec.Counts(trace.KTLBFlush) == 0 {
		t.Fatal("no TLB flush recorded on address-space switch")
	}
}

func TestMsgCloneIsolation(t *testing.T) {
	r := newRig(t, hw.X86())
	var captured Msg
	ss, _ := r.k.NewSpace("cap", NilThread)
	capture := r.k.NewThread(ss, "cap", 1, func(k *Kernel, from ThreadID, msg Msg) (Msg, error) {
		captured = msg
		return Msg{}, nil
	})
	data := []byte("original")
	if _, err := r.k.Call(r.client.ID, capture.ID, Msg{Data: data}); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	if string(captured.Data) != "original" {
		t.Fatal("receiver aliases sender memory — IPC must copy")
	}
}

func TestIPCEquivalentCountsOnMK(t *testing.T) {
	r := newRig(t, hw.X86())
	snap := r.m.Rec.Snapshot()
	for i := 0; i < 10; i++ {
		if _, err := r.k.Call(r.client.ID, r.server.ID, Msg{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.m.Rec.IPCEquivalentSince(snap); got != 10 {
		t.Fatalf("IPC-equivalent ops = %d, want 10", got)
	}
}

func TestQuickMapTransferPreservesFrameOwnership(t *testing.T) {
	f := func(grant bool, count uint8) bool {
		n := int(count%4) + 1
		m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 64})
		k := New(m)
		cs, _ := k.NewSpace("c", NilThread)
		ss, _ := k.NewSpace("s", NilThread)
		c := k.NewThread(cs, "c", 1, nil)
		srv := k.NewThread(ss, "s", 1, func(k *Kernel, from ThreadID, msg Msg) (Msg, error) {
			return Msg{}, nil
		})
		frames, err := k.AllocAndMap(cs, 0, n, hw.PermRW)
		if err != nil {
			return false
		}
		_, err = k.Call(c.ID, srv.ID, Msg{Map: []MapItem{{SrcVPN: 0, DstVPN: 0x100, Count: n, Perms: hw.PermR, Grant: grant}}})
		if err != nil {
			return false
		}
		for i, fr := range frames {
			if _, ok := ss.PT.Lookup(0x100 + hw.VPN(i)); !ok {
				return false
			}
			wantOwner := "mk.c"
			if grant {
				wantOwner = "mk.s"
			}
			if m.Mem.Owner(fr) != wantOwner {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossArchIPCWorksUnchanged(t *testing.T) {
	// The same client/server component code must run on all nine
	// platforms with zero changes — the portability claim in microcosm.
	for _, arch := range hw.AllArchs() {
		arch := arch
		t.Run(arch.Name, func(t *testing.T) {
			r := newRig(t, arch)
			reply, err := r.k.Call(r.client.ID, r.server.ID, Msg{Label: 1, Data: []byte("portable")})
			if err != nil {
				t.Fatal(err)
			}
			if string(reply.Data) != "portable" {
				t.Fatal("payload corrupted")
			}
		})
	}
}

func TestIPCCostVariesByArch(t *testing.T) {
	cost := func(arch *hw.Arch) hw.Cycles {
		r := newRig(t, arch)
		t0 := r.m.Now()
		r.k.Call(r.client.ID, r.server.ID, Msg{})
		return r.m.Now() - t0
	}
	x86 := cost(hw.X86())
	arm := cost(hw.ARM())
	// ARM has a tagged TLB and cheap traps; its IPC must beat x86's.
	if arm >= x86 {
		t.Fatalf("ARM IPC (%d) should be cheaper than x86 (%d)", arm, x86)
	}
}
