package mk

import (
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// Msg is an IPC message. A message no larger than the architecture's
// register file travels as a "short IPC" without touching memory; Data adds
// a string (copy) transfer; Map adds flexpage delegation. The three
// transfer classes are the paper's three orthogonal purposes of IPC fused
// into one primitive.
type Msg struct {
	Label uint32   // protocol selector, by convention
	Words []uint64 // untyped register words
	Data  []byte   // string item (copied into the receiver)
	Map   []MapItem
}

// MapItem delegates pages from the sender's space into the receiver's:
// resource delegation requiring mutual agreement (the sender constructs the
// item; the receiver accepts it by performing the receive).
type MapItem struct {
	SrcVPN hw.VPN // first page in the sender's space
	DstVPN hw.VPN // first page in the receiver's space
	Count  int
	Perms  hw.Perm
	Grant  bool // grant removes the sender's own mapping (ownership moves)
}

// Size returns the message's memory-transfer size in bytes (the string
// part; register words are free beyond the base IPC cost).
func (m Msg) Size() int { return len(m.Data) }

// clone deep-copies the message so sender and receiver cannot alias.
func (m Msg) clone() Msg {
	out := Msg{Label: m.Label}
	if len(m.Words) > 0 {
		out.Words = append([]uint64(nil), m.Words...)
	}
	if len(m.Data) > 0 {
		out.Data = append([]byte(nil), m.Data...)
	}
	if len(m.Map) > 0 {
		out.Map = append([]MapItem(nil), m.Map...)
	}
	return out
}

// maxStringTransfer bounds one string item, mirroring L4's transfer limits.
const maxStringTransfer = 1 << 20

// ipcTransferCost charges the kernel for moving the message body and
// returns an error for oversized messages.
func (k *Kernel) ipcTransferCost(msg Msg) error {
	arch := k.M.Arch
	words := len(msg.Words)
	if words <= arch.RegisterIPCWords {
		// Short IPC: words ride in registers, no memory traffic.
		k.M.CPU.Work(k.comp, 20)
	} else {
		extra := uint64(words-arch.RegisterIPCWords) * uint64(arch.WordBytes())
		k.M.CPU.Work(k.comp, k.M.CPU.CopyCost(extra))
	}
	if len(msg.Data) > 0 {
		if len(msg.Data) > maxStringTransfer {
			return ErrMsgTooLarge
		}
		k.M.CPU.Charge(k.comp, trace.KIPCStringTransfer, k.M.CPU.CopyCost(uint64(len(msg.Data))))
	}
	return nil
}

// applyMapItems installs the message's map items from src into dst,
// validating that the sender actually holds the pages with sufficient
// rights. Delegated rights can only be narrowed, never amplified.
func (k *Kernel) applyMapItems(src, dst *Space, items []MapItem) error {
	for _, it := range items {
		if it.Count <= 0 {
			return fmt.Errorf("%w: non-positive count", ErrBadMapping)
		}
		for i := 0; i < it.Count; i++ {
			e, ok := src.PT.Lookup(it.SrcVPN + hw.VPN(i))
			if !ok {
				return ErrBadMapping
			}
			if !e.Perms.Allows(it.Perms) {
				return ErrPermDenied
			}
			dst.PT.Map(it.DstVPN+hw.VPN(i), hw.PTE{Frame: e.Frame, Perms: it.Perms, User: true})
			k.M.CPU.Work(k.comp, k.M.Arch.Costs.PTEUpdate)
			srcNode := mapNode{space: src.ID, vpn: it.SrcVPN + hw.VPN(i)}
			dstNode := mapNode{space: dst.ID, vpn: it.DstVPN + hw.VPN(i)}
			if it.Grant {
				src.PT.Unmap(it.SrcVPN + hw.VPN(i))
				k.M.CPU.Work(k.comp, k.M.Arch.Costs.PTEUpdate)
				k.M.CPU.FlushTLBEntry(k.comp, uint16(src.ID), it.SrcVPN+hw.VPN(i))
				// Frame accounting follows the grant, and the sender's
				// node leaves the derivation tree: a gift carries no
				// revocation authority.
				k.M.Mem.Transfer(e.Frame, dst.Component())
				k.mapdb.drop(srcNode)
			} else {
				// A map is a loan: record the derivation so the sender
				// (or its ancestors) can revoke recursively.
				k.mapdb.record(srcNode, dstNode)
			}
		}
		k.M.CPU.Charge(k.comp, trace.KIPCMapTransfer, 0)
	}
	return nil
}

// ipcPreamble validates the partner and charges kernel entry. It returns
// the destination thread.
func (k *Kernel) ipcPreamble(from, to ThreadID) (*Thread, *Thread, error) {
	src := k.threads[from]
	dst := k.threads[to]
	if src == nil || dst == nil {
		return nil, nil, ErrNoSuchThread
	}
	// Kernel entry from the sender's context.
	k.M.CPU.Trap(k.comp, k.M.Arch.HasFastSyscall)
	k.M.CPU.Work(k.comp, k.M.Arch.Costs.PrivCheck) // validate partner ID / rights
	if !k.ipcAllowed(from, to) {
		k.M.CPU.ReturnTo(k.comp, hw.Ring3)
		return nil, nil, ErrIPCDenied
	}
	if dst.State == StateDead || dst.Space.Dead {
		// The kernel stays correct; the failure is confined to the
		// caller, which receives an error exactly as the paper's §3.1
		// describes for a failed user-level server.
		k.M.CPU.ReturnTo(k.comp, hw.Ring3)
		return nil, nil, ErrDeadPartner
	}
	return src, dst, nil
}

// Call performs a synchronous call IPC: transfer to the server, run it,
// transfer the reply back. Cycle charges: kernel entry/exit, message
// transfer, two address-space switches, and whatever the handler itself
// charges. This is the microkernel's only extensibility primitive.
func (k *Kernel) Call(from, to ThreadID, msg Msg) (Msg, error) {
	src, dst, err := k.ipcPreamble(from, to)
	if err != nil {
		return Msg{}, err
	}
	if dst.Handler == nil {
		k.M.CPU.ReturnTo(k.comp, hw.Ring3)
		return Msg{}, ErrNotResponding
	}
	if k.callDepth >= maxCallDepth {
		k.M.CPU.ReturnTo(k.comp, hw.Ring3)
		return Msg{}, ErrCallDepth
	}

	if err := k.ipcTransferCost(msg); err != nil {
		k.M.CPU.ReturnTo(k.comp, hw.Ring3)
		return Msg{}, err
	}
	if len(msg.Map) > 0 {
		if err := k.applyMapItems(src.Space, dst.Space, msg.Map); err != nil {
			k.M.CPU.ReturnTo(k.comp, hw.Ring3)
			return Msg{}, err
		}
	}

	// Control transfer: switch to the server's space and drop to user. A
	// partner homed on another CPU first needs that CPU kicked awake — the
	// cross-CPU IPC surcharge the SMP experiment (E12) measures; same-CPU
	// rendezvous (and every uniprocessor call) pays nothing here.
	if src.Affinity != dst.Affinity {
		k.ipcCrossCPU++
		k.M.SendIPI(src.Affinity, dst.Affinity)
	}
	k.M.CPU.SwitchSpace(k.comp, dst.Space.PT)
	k.M.CPU.Charge(k.comp, trace.KIPCCall, k.M.Arch.Costs.CtxSave)
	k.M.CPU.ReturnTo(k.comp, hw.Ring3)

	src.ipcOut++
	dst.ipcIn++
	k.ipcCalls++

	k.callDepth++
	reply, herr := dst.Handler(k, from, msg.clone())
	k.callDepth--

	// Reply path: kernel entry from the server, transfer, switch back —
	// and the return kick when the caller waits on another CPU.
	if src.Affinity != dst.Affinity {
		k.M.SendIPI(dst.Affinity, src.Affinity)
	}
	k.M.CPU.Trap(k.comp, k.M.Arch.HasFastSyscall)
	if herr == nil {
		if terr := k.ipcTransferCost(reply); terr != nil {
			herr = terr
		} else if len(reply.Map) > 0 {
			if merr := k.applyMapItems(dst.Space, src.Space, reply.Map); merr != nil {
				herr = merr
			}
		}
	}
	k.M.CPU.SwitchSpace(k.comp, src.Space.PT)
	k.M.CPU.Work(k.comp, k.M.Arch.Costs.CtxSave)
	k.M.CPU.ReturnTo(k.comp, hw.Ring3)

	if herr != nil {
		return Msg{}, herr
	}
	return reply.clone(), nil
}

// Send performs a one-way send. If the destination has a handler it is
// delivered immediately (the handler's reply is discarded); otherwise it is
// queued in the destination's inbox for its next activation. Either way the
// sender does not wait for a reply.
func (k *Kernel) Send(from, to ThreadID, msg Msg) error {
	src, dst, err := k.ipcPreamble(from, to)
	if err != nil {
		return err
	}
	if err := k.ipcTransferCost(msg); err != nil {
		k.M.CPU.ReturnTo(k.comp, hw.Ring3)
		return err
	}
	if len(msg.Map) > 0 {
		if err := k.applyMapItems(src.Space, dst.Space, msg.Map); err != nil {
			k.M.CPU.ReturnTo(k.comp, hw.Ring3)
			return err
		}
	}
	src.ipcOut++
	dst.ipcIn++
	k.ipcSends++
	if src.Affinity != dst.Affinity {
		k.ipcCrossCPU++
		k.M.SendIPI(src.Affinity, dst.Affinity)
	}
	k.M.CPU.Charge(k.comp, trace.KIPCSend, 10)

	if dst.Handler != nil {
		k.M.CPU.SwitchSpace(k.comp, dst.Space.PT)
		k.M.CPU.ReturnTo(k.comp, hw.Ring3)
		if k.callDepth >= maxCallDepth {
			return ErrCallDepth
		}
		k.callDepth++
		_, herr := dst.Handler(k, from, msg.clone())
		k.callDepth--
		// One-way: handler errors do not propagate to the sender, but a
		// crash of the handler is a real event.
		_ = herr
		k.M.CPU.Trap(k.comp, k.M.Arch.HasFastSyscall)
		k.M.CPU.SwitchSpace(k.comp, src.Space.PT)
		k.M.CPU.ReturnTo(k.comp, hw.Ring3)
		return nil
	}
	dst.Inbox = append(dst.Inbox, Envelope{From: from, Msg: msg.clone()})
	k.M.CPU.ReturnTo(k.comp, hw.Ring3)
	return nil
}

// Receive drains one queued envelope from the thread's inbox, charging the
// receive half of the IPC path. ok is false when the inbox is empty
// (modelled as a polling receive; blocking is a scheduler concern the
// simulation resolves synchronously).
func (k *Kernel) Receive(tid ThreadID) (Envelope, bool) {
	t := k.threads[tid]
	if t == nil || len(t.Inbox) == 0 {
		return Envelope{}, false
	}
	k.M.CPU.Trap(k.comp, k.M.Arch.HasFastSyscall)
	env := t.Inbox[0]
	t.Inbox = t.Inbox[1:]
	k.M.CPU.Charge(k.comp, trace.KIPCReceive, 10)
	k.M.CPU.ReturnTo(k.comp, hw.Ring3)
	return env, true
}
