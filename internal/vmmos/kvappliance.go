package vmmos

import (
	"vmmk/internal/hw"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
)

// KVAppliance is the same minimal extension as mkos.KVServer — a tiny
// key-value cache — built the way a VMM forces you to build it: as a guest
// domain. To serve one request it must bring up a domain with validated
// page tables, register kernel hooks, bind an event channel per client, and
// move request/response payloads through granted pages. None of that is the
// service's logic; all of it is the interface (§2.2: "the VMM's interfaces
// significantly increase the complexity of software design"). Experiment
// E10 counts the difference.
type KVAppliance struct {
	H   *vmm.Hypervisor
	GK  *GuestKernel
	Dom *vmm.Domain

	data  map[string][]byte
	conns map[vmm.DomID]*kvConn

	gets, puts uint64
}

// kvConn is the per-client channel + shared-page state.
type kvConn struct {
	client    vmm.DomID
	appPort   vmm.Port
	frontPort vmm.Port
	req       *kvReq
	front     *KVClient
}

type kvReq struct {
	op    uint32 // reuse the mkos label values for symmetry
	ref   vmm.GrantRef
	frame hw.FrameID
	n     int
	done  bool
	found bool
	respN int
}

// NewKVAppliance boots the extension as a domain.
func NewKVAppliance(h *vmm.Hypervisor, dom *vmm.Domain) *KVAppliance {
	a := &KVAppliance{
		H:     h,
		GK:    NewGuestKernel(h, dom), // kernel hooks: syscall/event/virq
		Dom:   dom,
		data:  make(map[string][]byte),
		conns: make(map[vmm.DomID]*kvConn),
	}
	return a
}

// Component returns the appliance's trace attribution name.
func (a *KVAppliance) Component() string { return a.Dom.Component() }

// Comp returns the interned trace attribution handle.
func (a *KVAppliance) Comp() trace.Comp { return a.Dom.Comp() }

// Connect attaches a client guest: event channel + a dedicated request page
// the client grants per call.
func (a *KVAppliance) Connect(gk *GuestKernel) (*KVClient, error) {
	appPort, frontPort, err := a.H.BindChannel(a.Dom.ID, gk.Dom.ID)
	if err != nil {
		return nil, err
	}
	buf, err := a.H.M.Mem.Alloc(gk.Component())
	if err != nil {
		return nil, err
	}
	c := &KVClient{gk: gk, app: a, localPort: frontPort, buf: buf}
	conn := &kvConn{client: gk.Dom.ID, appPort: appPort, frontPort: frontPort, front: c}
	c.conn = conn
	a.conns[gk.Dom.ID] = conn
	a.GK.ExtraEvent[appPort] = func() { a.serve(conn) }
	gk.ExtraEvent[frontPort] = func() { gk.H.M.CPU.Work(gk.Comp(), 100) }
	return c, nil
}

// serve handles one client kick: map the granted request page, run the
// lookup, write the response back through the same page, unmap, notify.
func (a *KVAppliance) serve(conn *kvConn) {
	comp := a.Comp()
	h := a.H
	r := conn.req
	if r == nil {
		return
	}
	conn.req = nil
	h.M.CPU.Work(comp, 200) // hash, lookup — identical service logic cost
	const window = hw.VPN(0xF000)
	if err := h.GrantMap(a.Dom.ID, conn.client, r.ref, window); err != nil {
		r.done = true
		h.NotifyChannel(a.Dom.ID, conn.appPort)
		return
	}
	e, _ := a.Dom.PT.Lookup(window)
	page := h.M.Mem.Data(e.Frame)
	key, value := splitKVPage(page[:r.n])
	switch r.op {
	case 0x200: // get
		if v, ok := a.data[key]; ok {
			a.gets++
			r.found = true
			r.respN = copy(page, v)
			h.M.CPU.Work(comp, h.M.CPU.CopyCost(uint64(r.respN)))
		}
	case 0x201: // put
		a.puts++
		a.data[key] = append([]byte(nil), value...)
		h.M.CPU.Work(comp, h.M.CPU.CopyCost(uint64(len(value))))
		r.found = true
	case 0x202: // delete
		delete(a.data, key)
		r.found = true
	}
	h.GrantUnmap(a.Dom.ID, conn.client, r.ref, window)
	r.done = true
	h.NotifyChannel(a.Dom.ID, conn.appPort)
}

func splitKVPage(data []byte) (string, []byte) {
	for i, b := range data {
		if b == 0 {
			return string(data[:i]), data[i+1:]
		}
	}
	return string(data), nil
}

// Stats returns served get/put counts.
func (a *KVAppliance) Stats() (gets, puts uint64) { return a.gets, a.puts }

// KVClient is a guest's stub for the appliance.
type KVClient struct {
	gk        *GuestKernel
	app       *KVAppliance
	conn      *kvConn
	localPort vmm.Port
	buf       hw.FrameID
}

// call moves one request through the grant + event-channel machinery.
func (c *KVClient) call(op uint32, key string, value []byte) (*kvReq, error) {
	h := c.gk.H
	if !h.Alive(c.app.Dom.ID) {
		return nil, ErrBackendDead
	}
	page := h.M.Mem.Data(c.buf)
	n := copy(page, append(append([]byte(key), 0), value...))
	ref, err := h.GrantAccess(c.gk.Dom.ID, c.buf, c.app.Dom.ID, false)
	if err != nil {
		return nil, err
	}
	req := &kvReq{op: op, ref: ref, frame: c.buf, n: n}
	c.conn.req = req
	if err := h.NotifyChannel(c.gk.Dom.ID, c.conn.frontPort); err != nil {
		return nil, err
	}
	for i := 0; i < 16 && !req.done; i++ {
		if h.PumpIO(8) == 0 {
			break
		}
	}
	if !req.done {
		return nil, ErrIOTimeout
	}
	return req, nil
}

// Get fetches a key.
func (c *KVClient) Get(key string) ([]byte, bool, error) {
	req, err := c.call(0x200, key, nil)
	if err != nil {
		return nil, false, err
	}
	if !req.found {
		return nil, false, nil
	}
	out := make([]byte, req.respN)
	copy(out, c.gk.H.M.Mem.Data(c.buf)[:req.respN])
	return out, true, nil
}

// Put stores a key.
func (c *KVClient) Put(key string, value []byte) error {
	_, err := c.call(0x201, key, value)
	return err
}

// Delete removes a key.
func (c *KVClient) Delete(key string) error {
	_, err := c.call(0x202, key, nil)
	return err
}
