package vmmos

import (
	"bytes"
	"errors"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
)

func kvVRig(t *testing.T) (*vmm.Hypervisor, *KVAppliance, *KVClient) {
	t.Helper()
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 1024})
	h, _, err := vmm.New(m, 64)
	if err != nil {
		t.Fatal(err)
	}
	appDom, err := h.CreateDomain("kv", 64)
	if err != nil {
		t.Fatal(err)
	}
	app := NewKVAppliance(h, appDom)
	clDom, err := h.CreateDomain("client", 64)
	if err != nil {
		t.Fatal(err)
	}
	cgk := NewGuestKernel(h, clDom)
	cl, err := app.Connect(cgk)
	if err != nil {
		t.Fatal(err)
	}
	return h, app, cl
}

func TestKVAppliancePutGetDelete(t *testing.T) {
	_, app, cl := kvVRig(t)
	if err := cl.Put("alpha", []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.Get("alpha")
	if err != nil || !ok || !bytes.Equal(v, []byte("one")) {
		t.Fatalf("get = %q, %v, %v", v, ok, err)
	}
	if err := cl.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cl.Get("alpha"); ok {
		t.Fatal("deleted key found")
	}
	gets, puts := app.Stats()
	if gets != 1 || puts != 1 {
		t.Fatalf("stats = %d/%d", gets, puts)
	}
}

func TestKVApplianceMissingKey(t *testing.T) {
	_, _, cl := kvVRig(t)
	if _, ok, err := cl.Get("ghost"); ok || err != nil {
		t.Fatalf("missing-key get = %v, %v", ok, err)
	}
}

func TestKVApplianceMultipleClients(t *testing.T) {
	h, app, cl1 := kvVRig(t)
	d2, err := h.CreateDomain("client2", 64)
	if err != nil {
		t.Fatal(err)
	}
	gk2 := NewGuestKernel(h, d2)
	cl2, err := app.Connect(gk2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl1.Put("shared", []byte("from-1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl2.Get("shared")
	if err != nil || !ok || string(v) != "from-1" {
		t.Fatalf("cross-client get = %q, %v, %v", v, ok, err)
	}
}

func TestKVApplianceDeathConfined(t *testing.T) {
	h, app, cl := kvVRig(t)
	h.DestroyDomain(app.Dom.ID)
	if err := cl.Put("x", nil); !errors.Is(err, ErrBackendDead) {
		t.Fatalf("err = %v, want ErrBackendDead", err)
	}
	if !h.Alive(cl.gk.Dom.ID) {
		t.Fatal("client domain died with the appliance")
	}
}

func TestKVApplianceUsesGrantAndEventMachinery(t *testing.T) {
	// The point of E10: even this trivial service cannot avoid the grant
	// and channel machinery on the VMM.
	h, _, cl := kvVRig(t)
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	rec := h.M.Rec
	if rec.Counts(trace.KGrantMap) == 0 {
		t.Fatal("appliance served without grant maps?")
	}
	if rec.Counts(trace.KEvtchnSend) == 0 {
		t.Fatal("appliance served without event channels?")
	}
}
