package vmmos

import (
	"errors"
	"fmt"

	"vmmk/internal/fslite"
	"vmmk/internal/hw"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
)

// PID identifies a guest process.
type PID uint32

// Syscall numbers implemented by the guest kernel.
const (
	SysGetPID uint32 = iota + 1
	SysWrite
	SysYield
	SysNetSend
	SysNetRecv
	SysBlockRead
	SysBlockWrite
)

// Errors surfaced by the guest kernel and drivers.
var (
	ErrNoSuchProcess = errors.New("vmmos: no such process")
	ErrNoNetwork     = errors.New("vmmos: no network frontend configured")
	ErrNoBlock       = errors.New("vmmos: no block frontend configured")
	ErrBackendDead   = errors.New("vmmos: backend domain is dead")
	ErrIOTimeout     = errors.New("vmmos: I/O did not complete")
)

// Process is one guest user process.
type Process struct {
	PID  PID
	Name string

	rxDelivered uint64
}

// GuestKernel is a paravirtualised kernel running in a domain at ring 1.
// It registers the domain's hypervisor hooks at construction.
type GuestKernel struct {
	H   *vmm.Hypervisor
	Dom *vmm.Domain

	procs   map[PID]*Process
	nextPID PID

	Net *NetFront
	Blk BlockDevice

	// ExtraEvent lets backends (netback, blkback, Parallax) claim ports
	// on this kernel's domain; ExtraVIRQ chains physical-interrupt
	// handling (Dom0's device IRQs).
	ExtraEvent map[vmm.Port]func()
	ExtraVIRQ  func(virq int)

	console []byte

	syscallWork hw.Cycles // per-syscall in-kernel work, tunable per workload

	argScratch []uint64 // reused Syscall argument buffer (see Syscall)
	zeroTx     []byte   // reused all-zero TX payload (see SysNetSend)
}

// zeroBuf returns a reusable all-zero buffer of length n. The synthetic
// workloads transmit blank payloads, and every consumer below only reads
// them, so one grow-only buffer serves all sends.
func (gk *GuestKernel) zeroBuf(n int) []byte {
	if cap(gk.zeroTx) < n {
		gk.zeroTx = make([]byte, n)
	}
	return gk.zeroTx[:n]
}

// NewGuestKernel boots a guest kernel into dom, installing its hooks.
func NewGuestKernel(h *vmm.Hypervisor, dom *vmm.Domain) *GuestKernel {
	gk := &GuestKernel{
		H:           h,
		Dom:         dom,
		procs:       make(map[PID]*Process),
		nextPID:     1,
		syscallWork: 150,
		ExtraEvent:  make(map[vmm.Port]func()),
	}
	dom.SetHooks(vmm.GuestHooks{
		OnSyscall: gk.handleSyscall,
		OnEvent:   gk.handleEvent,
		OnVIRQ:    gk.handleVIRQ,
	})
	// Guest kernel boot: set up its virtual memory via validated updates,
	// which is visible monitor work (primitive 5).
	for vpn := 0; vpn < 8; vpn++ {
		_ = h.MMUUpdate(dom.ID, hw.VPN(0x1000+vpn), vpn, hw.PermRW, false)
	}
	return gk
}

// Component returns the domain's trace attribution name.
func (gk *GuestKernel) Component() string { return gk.Dom.Component() }

// Comp returns the interned trace attribution handle.
func (gk *GuestKernel) Comp() trace.Comp { return gk.Dom.Comp() }

// SetSyscallWork tunes the modelled in-kernel work per syscall.
func (gk *GuestKernel) SetSyscallWork(c hw.Cycles) { gk.syscallWork = c }

// Place gives the guest one vCPU per argument, pinned to the named
// physical CPUs (a pass-through to vmm.PlaceVCPUs). A placed guest's
// shadow-page-table invalidations shoot down every placed pCPU and event
// deliveries to it pay an IPI — the SMP costs E12 sweeps. Guests that are
// never placed keep the free uniprocessor arrangement.
func (gk *GuestKernel) Place(pcpus ...int) error {
	return gk.H.PlaceVCPUs(gk.Dom.ID, pcpus...)
}

// Spawn creates a guest process.
func (gk *GuestKernel) Spawn(name string) *Process {
	p := &Process{PID: gk.nextPID, Name: name}
	gk.nextPID++
	gk.procs[p.PID] = p
	gk.H.M.CPU.Work(gk.Comp(), 500) // fork+exec stand-in
	return p
}

// Process returns the process for pid, or nil.
func (gk *GuestKernel) Process(pid PID) *Process { return gk.procs[pid] }

// Syscall issues a system call from process pid through the hypervisor's
// guest-syscall path (fast or bounced, whichever is live).
func (gk *GuestKernel) Syscall(pid PID, no uint32, args ...uint64) ([]uint64, error) {
	if gk.procs[pid] == nil {
		return nil, ErrNoSuchProcess
	}
	// Reused scratch: GuestSyscall consumes args synchronously (the hook
	// chain never re-enters Syscall), so one buffer serves every call.
	buf := append(gk.argScratch[:0], uint64(pid))
	buf = append(buf, args...)
	gk.argScratch = buf
	return gk.H.GuestSyscall(gk.Dom.ID, no, buf)
}

// handleSyscall is the guest kernel's trap entry (registered as the
// domain's OnSyscall hook). args[0] is the calling PID by convention.
func (gk *GuestKernel) handleSyscall(no uint32, args []uint64) []uint64 {
	comp := gk.Comp()
	gk.H.M.CPU.Work(comp, gk.syscallWork)
	var pid PID
	if len(args) > 0 {
		pid = PID(args[0])
	}
	switch no {
	case SysGetPID:
		return []uint64{uint64(pid)}
	case SysWrite:
		gk.console = append(gk.console, byte(args[1]))
		return []uint64{1}
	case SysYield:
		return nil
	case SysNetSend:
		if gk.Net == nil {
			return []uint64{^uint64(0)}
		}
		n := int(args[1])
		if err := gk.Net.Send(gk.zeroBuf(n)); err != nil {
			return []uint64{^uint64(0)}
		}
		return []uint64{uint64(n)}
	case SysNetRecv:
		if gk.Net == nil {
			return []uint64{^uint64(0)}
		}
		n, ok := gk.Net.RecvLen()
		if !ok {
			return []uint64{0}
		}
		if p := gk.procs[pid]; p != nil {
			p.rxDelivered++
		}
		return []uint64{uint64(n)}
	case SysBlockRead, SysBlockWrite:
		if gk.Blk == nil {
			return []uint64{^uint64(0)}
		}
		var err error
		if no == SysBlockRead {
			_, err = gk.Blk.Read(args[1])
		} else {
			err = gk.Blk.Write(args[1], []byte(fmt.Sprintf("pid%d-block%d", pid, args[1])))
		}
		if err != nil {
			return []uint64{^uint64(0)}
		}
		return []uint64{0}
	}
	return []uint64{^uint64(0)} // ENOSYS
}

// handleEvent demultiplexes event-channel upcalls to the frontends and any
// registered backends.
func (gk *GuestKernel) handleEvent(port vmm.Port) {
	gk.H.M.CPU.Work(gk.Comp(), 80) // upcall demux
	if gk.Net != nil && port == gk.Net.localPort {
		gk.Net.onEvent()
		return
	}
	if gk.Blk != nil && port == gk.Blk.port() {
		gk.Blk.onEvent()
		return
	}
	if h, ok := gk.ExtraEvent[port]; ok {
		h()
	}
}

// handleVIRQ handles timer and other virtual interrupts, chaining to the
// driver domain's hook when one is registered.
func (gk *GuestKernel) handleVIRQ(virq int) {
	gk.H.M.CPU.Work(gk.Comp(), 60)
	if gk.ExtraVIRQ != nil {
		gk.ExtraVIRQ(virq)
	}
}

// BlockDevice is the guest-side view of a block service: the real blkfront
// talking to Dom0, or a Parallax-backed virtual disk. Read returns the
// block's contents; Write stores them.
type BlockDevice interface {
	Read(block uint64) ([]byte, error)
	Write(block uint64, data []byte) error
	port() vmm.Port
	onEvent()
}

// MountFS formats and mounts an fslite filesystem over the guest's block
// device (blkfront or a Parallax virtual disk) — the identical filesystem
// code package mkos mounts over its storage server.
func (gk *GuestKernel) MountFS(blocks uint64) (*fslite.FS, error) {
	if gk.Blk == nil {
		return nil, ErrNoBlock
	}
	return fslite.Mkfs(gk.Blk, gk.H.M.Mem.PageSize(), blocks)
}

// WriteMemory models guest code storing data into its own page gpn at
// byte offset off. When the hypervisor has the domain's dirty log armed
// (live pre-copy migration in flight), the first store per page per round
// takes the write-protect fault the log relies on — from the guest's
// point of view it is just a slightly slower store.
func (gk *GuestKernel) WriteMemory(gpn, off int, data []byte) error {
	return gk.H.GuestMemWrite(gk.Dom.ID, gpn, off, data)
}

// Console returns what guest processes wrote with SysWrite.
func (gk *GuestKernel) Console() []byte { return gk.console }

// RxDelivered returns how many packets pid has consumed.
func (p *Process) RxDelivered() uint64 { return p.rxDelivered }
