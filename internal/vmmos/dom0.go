package vmmos

import (
	"vmmk/internal/hw"
	"vmmk/internal/hw/dev"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
)

// RxMode selects how netback moves received packets into a guest.
type RxMode int

// Receive modes: page flipping (Xen 2.x default, what Cherkasova & Gardner
// measured) or hypervisor-mediated grant copy (the later Xen design; the E9
// ablation compares them).
const (
	RxFlip RxMode = iota
	RxCopy
)

// String names the receive delivery mode.
func (m RxMode) String() string {
	if m == RxFlip {
		return "flip"
	}
	return "copy"
}

// rxSlot is one packet the backend has published to a frontend: a grant on
// the page holding it, the page itself (so copy mode can recycle it into
// the NIC pool), and the payload length.
type rxSlot struct {
	ref   vmm.GrantRef
	frame hw.FrameID
	len   int
}

// txSlot is one packet a frontend has published for transmission.
type txSlot struct {
	ref vmm.GrantRef
	len int
}

// netConn is the shared state of one netback/netfront pair (the moral
// equivalent of the shared ring page plus its two event-channel ports).
type netConn struct {
	guest     vmm.DomID
	backPort  vmm.Port // dom0's port
	frontPort vmm.Port // guest's port
	rxRing    []rxSlot
	txRing    []txSlot
	front     *NetFront
}

// blkReq is one outstanding block request.
type blkReq struct {
	op    dev.DiskOp
	block uint64
	ref   vmm.GrantRef
	frame hw.FrameID // guest's buffer frame (granted)
	tag   uint64
	done  bool
	ok    bool
}

// blkConn is the shared state of one blkback/blkfront pair.
type blkConn struct {
	guest     vmm.DomID
	backPort  vmm.Port
	frontPort vmm.Port
	reqs      []*blkReq
	inflight  map[uint64]*blkReq
	front     *BlkFront
	base      uint64 // partition offset on the physical disk
	size      uint64 // partition length in blocks
}

// DriverDomain is Dom0: the privileged domain that encapsulates the legacy
// device drivers, exactly the structure §3.2 discusses ("Xen uses a
// separate virtual machine (called Dom0) to encapsulate legacy device
// drivers. Hence, any I/O operation implies at least one round-trip
// communication between the guest VM and Dom0.").
type DriverDomain struct {
	H  *vmm.Hypervisor
	GK *GuestKernel

	NIC  *dev.NIC
	Disk *dev.Disk

	Mode RxMode

	netConns []*netConn
	blkConns map[vmm.DomID]*blkConn

	rxPoolTarget int
	nextBlkBase  uint64
	nextTag      uint64

	rxHandled uint64
	txHandled uint64
}

// NewDriverDomain boots Dom0's kernel and its physical drivers, routing the
// device interrupts to the domain.
func NewDriverDomain(h *vmm.Hypervisor, d0 *vmm.Domain, nic *dev.NIC, disk *dev.Disk) (*DriverDomain, error) {
	dd := &DriverDomain{
		H:            h,
		GK:           NewGuestKernel(h, d0),
		NIC:          nic,
		Disk:         disk,
		blkConns:     make(map[vmm.DomID]*blkConn),
		rxPoolTarget: 32,
	}
	dd.GK.ExtraVIRQ = dd.handleIRQ
	if nic != nil {
		if err := h.RouteIRQ(nic.RxIRQ(), d0.ID); err != nil {
			return nil, err
		}
		if err := h.RouteIRQ(nic.TxIRQ(), d0.ID); err != nil {
			return nil, err
		}
		dd.replenishRxPool()
	}
	if disk != nil {
		if err := h.RouteIRQ(disk.IRQ(), d0.ID); err != nil {
			return nil, err
		}
	}
	return dd, nil
}

// Component returns Dom0's trace attribution name.
func (dd *DriverDomain) Component() string { return dd.GK.Component() }

// Comp returns the interned trace attribution handle.
func (dd *DriverDomain) Comp() trace.Comp { return dd.GK.Comp() }

// replenishRxPool posts fresh dom0-owned frames to the NIC until the target
// depth is reached. Pool management is real driver work and is charged.
func (dd *DriverDomain) replenishRxPool() {
	for dd.NIC.PostedBuffers() < dd.rxPoolTarget {
		f, err := dd.H.M.Mem.Alloc(dd.Component())
		if err != nil {
			return // memory pressure: run with a shallower pool
		}
		dd.H.M.CPU.Work(dd.Comp(), 120) // buffer alloc + descriptor write
		if !dd.NIC.PostRxBuffer(f) {
			dd.H.M.Mem.Free(f)
			return
		}
	}
}

// handleIRQ is Dom0's physical interrupt handler (injected by the monitor).
func (dd *DriverDomain) handleIRQ(virq int) {
	switch {
	case dd.NIC != nil && virq == int(dd.NIC.RxIRQ()):
		dd.netbackRx()
	case dd.NIC != nil && virq == int(dd.NIC.TxIRQ()):
		dd.H.M.CPU.Work(dd.Comp(), 150) // reap TX descriptors
	case dd.Disk != nil && virq == int(dd.Disk.IRQ()):
		dd.blkbackComplete()
	}
}

// netbackRx drains the NIC and pushes each packet to the owning guest:
// demux by destination byte, publish a grant, kick the event channel.
func (dd *DriverDomain) netbackRx() {
	comp := dd.Comp()
	for _, c := range dd.NIC.ReapRx() {
		dd.rxHandled++
		dd.H.M.CPU.Work(comp, 400) // driver RX path: demux, checksum, skb
		if len(dd.netConns) == 0 {
			dd.H.M.Mem.Free(c.Frame) // nobody to deliver to
			continue
		}
		dst := int(dd.H.M.Mem.Data(c.Frame)[0]) % len(dd.netConns)
		conn := dd.netConns[dst]
		if !dd.H.Alive(conn.guest) {
			dd.H.M.Mem.Free(c.Frame)
			continue
		}
		readOnly := dd.Mode == RxCopy
		ref, err := dd.H.GrantAccess(dd.GK.Dom.ID, c.Frame, conn.guest, readOnly)
		if err != nil {
			dd.H.M.Mem.Free(c.Frame)
			continue
		}
		conn.rxRing = append(conn.rxRing, rxSlot{ref: ref, frame: c.Frame, len: c.Len})
		// The notification: asynchronous IPC in all but name.
		if err := dd.H.NotifyChannel(dd.GK.Dom.ID, conn.backPort); err != nil {
			continue
		}
	}
	dd.replenishRxPool()
}

// netbackTx is dom0's event handler for a guest's TX kick: map each granted
// packet page, hand it to the NIC, unmap.
func (dd *DriverDomain) netbackTx(conn *netConn) {
	comp := dd.Comp()
	ring := conn.txRing
	conn.txRing = nil
	const txWindow = hw.VPN(0xD000)
	for _, slot := range ring {
		dd.txHandled++
		dd.H.M.CPU.Work(comp, 350) // driver TX path
		if err := dd.H.GrantMap(dd.GK.Dom.ID, conn.guest, slot.ref, txWindow); err != nil {
			continue
		}
		e, ok := dd.GK.Dom.PT.Lookup(txWindow)
		if ok {
			dd.NIC.Transmit(e.Frame, slot.len)
		}
		dd.H.GrantUnmap(dd.GK.Dom.ID, conn.guest, slot.ref, txWindow)
	}
}

// blkbackSubmit is dom0's event handler for a guest's block kick: validate,
// translate partition-relative blocks, submit to the physical disk with the
// guest's granted frame as the DMA target.
func (dd *DriverDomain) blkbackSubmit(conn *blkConn) {
	comp := dd.Comp()
	reqs := conn.reqs
	conn.reqs = nil
	for _, r := range reqs {
		dd.H.M.CPU.Work(comp, 300) // request validation and translation
		if r.block >= conn.size {
			r.done, r.ok = true, false
			dd.H.NotifyChannel(dd.GK.Dom.ID, conn.backPort)
			continue
		}
		dd.nextTag++
		r.tag = dd.nextTag
		conn.inflight[r.tag] = r
		dd.Disk.Submit(dev.DiskReq{Op: r.op, Block: conn.base + r.block, Frame: r.frame, Tag: r.tag})
	}
}

// blkbackComplete handles the physical disk's completion interrupt: match
// tags, notify the owning guests.
func (dd *DriverDomain) blkbackComplete() {
	comp := dd.Comp()
	for _, c := range dd.Disk.Reap() {
		dd.H.M.CPU.Work(comp, 200)
		for _, conn := range dd.blkConns {
			if r, ok := conn.inflight[c.Req.Tag]; ok {
				r.done, r.ok = true, c.OK
				delete(conn.inflight, c.Req.Tag)
				dd.H.NotifyChannel(dd.GK.Dom.ID, conn.backPort)
				break
			}
		}
	}
}

// Stats returns packets handled by netback.
func (dd *DriverDomain) Stats() (rx, tx uint64) { return dd.rxHandled, dd.txHandled }
