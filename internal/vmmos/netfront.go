package vmmos

import (
	"vmmk/internal/hw"
	"vmmk/internal/vmm"
)

// NetFront is the guest side of the split network driver. Receive follows
// the backend's mode: in flip mode the frontend pulls each published page
// into its own memory with a grant transfer (one flip per packet); in copy
// mode it grant-copies the payload into a local buffer and lets the backend
// keep its page. Transmit grants the packet page to Dom0 read-only and
// kicks the event channel.
type NetFront struct {
	gk        *GuestKernel
	dd        *DriverDomain
	conn      *netConn
	localPort vmm.Port
	mode      RxMode

	rxQueue []int      // lengths of undelivered packets, in arrival order
	rxBuf   hw.FrameID // copy-mode landing buffer
	txBuf   hw.FrameID
	txNext  hw.VPN

	rxFlips  uint64
	rxCopies uint64
	sent     uint64
}

// ConnectNet wires a guest kernel to the driver domain's netback, creating
// the event channel and ring state.
func ConnectNet(dd *DriverDomain, gk *GuestKernel) (*NetFront, error) {
	backPort, frontPort, err := dd.H.BindChannel(dd.GK.Dom.ID, gk.Dom.ID)
	if err != nil {
		return nil, err
	}
	nf := &NetFront{gk: gk, dd: dd, localPort: frontPort, mode: dd.Mode}
	// Dedicated guest-owned buffers for copy-mode RX and for TX staging.
	rxb, err := dd.H.M.Mem.Alloc(gk.Component())
	if err != nil {
		return nil, err
	}
	txb, err := dd.H.M.Mem.Alloc(gk.Component())
	if err != nil {
		return nil, err
	}
	nf.rxBuf, nf.txBuf = rxb, txb
	// Make the guest kernel the legal owner list holder of these frames.
	conn := &netConn{guest: gk.Dom.ID, backPort: backPort, frontPort: frontPort, front: nf}
	nf.conn = conn
	dd.netConns = append(dd.netConns, conn)
	dd.GK.ExtraEvent[backPort] = func() { dd.netbackTx(conn) }
	gk.Net = nf
	return nf, nil
}

// onEvent is the frontend's upcall: drain the RX ring.
func (nf *NetFront) onEvent() {
	comp := nf.gk.Comp()
	h := nf.gk.H
	ring := nf.conn.rxRing
	nf.conn.rxRing = nil
	for _, slot := range ring {
		h.M.CPU.Work(comp, 250) // frontend RX path: ring walk, skb alloc
		switch nf.mode {
		case RxFlip:
			f, err := h.GrantTransfer(nf.gk.Dom.ID, nf.dd.GK.Dom.ID, slot.ref)
			if err != nil {
				continue
			}
			nf.rxFlips++
			// The flipped page IS the packet (zero-copy); only the
			// descriptor outlives this upcall, since user space consumes
			// packets by length (RecvLen).
			nf.rxQueue = append(nf.rxQueue, slot.len)
			// Return the page to the machine pool; dom0 balloons a
			// replacement for its NIC pool. (Xen 2.x exchanged pages;
			// the flip count per packet — the measured quantity — is
			// identical.)
			nf.gk.Dom.ReleaseFrame(f)
		case RxCopy:
			if err := h.GrantCopy(nf.gk.Dom.ID, nf.dd.GK.Dom.ID, slot.ref, nf.rxBuf, uint64(slot.len)); err != nil {
				continue
			}
			nf.rxCopies++
			// GrantCopy has already landed the bytes in rxBuf and charged
			// the copy; queue the descriptor.
			nf.rxQueue = append(nf.rxQueue, slot.len)
			// Backend keeps its page: revoke the grant and let dom0
			// recycle the frame straight back into the NIC pool.
			h.GrantRevoke(nf.dd.GK.Dom.ID, slot.ref)
			nf.dd.H.M.CPU.Work(nf.dd.Comp(), 80) // pool recycle
			nf.dd.NIC.PostRxBuffer(slot.frame)
		}
	}
}

// RecvLen pops one received packet and returns its length (guest-kernel
// side; SysNetRecv calls this). Packets are delivered to user space as
// descriptors — the simulation accounts the data movement in cycles, so
// the queue carries lengths, not materialized payload bytes.
func (nf *NetFront) RecvLen() (int, bool) {
	if len(nf.rxQueue) == 0 {
		return 0, false
	}
	n := nf.rxQueue[0]
	nf.rxQueue = nf.rxQueue[1:]
	return n, true
}

// Pending returns the number of undelivered received packets.
func (nf *NetFront) Pending() int { return len(nf.rxQueue) }

// Send transmits one packet: stage into the TX buffer, grant it to Dom0,
// kick the channel.
func (nf *NetFront) Send(data []byte) error {
	comp := nf.gk.Comp()
	h := nf.gk.H
	if !h.Alive(nf.dd.GK.Dom.ID) {
		return ErrBackendDead
	}
	h.M.CPU.Work(comp, 300+h.M.CPU.CopyCost(uint64(len(data))))
	copy(h.M.Mem.Data(nf.txBuf), data)
	ref, err := h.GrantAccess(nf.gk.Dom.ID, nf.txBuf, nf.dd.GK.Dom.ID, true)
	if err != nil {
		return err
	}
	nf.conn.txRing = append(nf.conn.txRing, txSlot{ref: ref, len: len(data)})
	nf.sent++
	return h.NotifyChannel(nf.gk.Dom.ID, nf.conn.frontPort)
}

// Stats returns flip/copy/sent counters.
func (nf *NetFront) Stats() (flips, copies, sent uint64) {
	return nf.rxFlips, nf.rxCopies, nf.sent
}
