package vmmos

import (
	"vmmk/internal/hw"
	"vmmk/internal/hw/dev"
	"vmmk/internal/vmm"
)

// BlkFront is the guest side of the split block driver. Each request grants
// a guest buffer page to Dom0, kicks the event channel, and waits for the
// completion event by driving the machine's event queue (the simulation's
// stand-in for blocking).
type BlkFront struct {
	gk        *GuestKernel
	dd        *DriverDomain
	conn      *blkConn
	localPort vmm.Port
	buf       hw.FrameID

	reads  uint64
	writes uint64
}

// ConnectBlk attaches a guest to a fresh partition of the physical disk of
// size blocks, served by Dom0's blkback.
func ConnectBlk(dd *DriverDomain, gk *GuestKernel, blocks uint64) (*BlkFront, error) {
	backPort, frontPort, err := dd.H.BindChannel(dd.GK.Dom.ID, gk.Dom.ID)
	if err != nil {
		return nil, err
	}
	buf, err := dd.H.M.Mem.Alloc(gk.Component())
	if err != nil {
		return nil, err
	}
	bf := &BlkFront{gk: gk, dd: dd, localPort: frontPort, buf: buf}
	conn := &blkConn{
		guest:     gk.Dom.ID,
		backPort:  backPort,
		frontPort: frontPort,
		inflight:  make(map[uint64]*blkReq),
		front:     bf,
		base:      dd.nextBlkBase,
		size:      blocks,
	}
	dd.nextBlkBase += blocks
	bf.conn = conn
	dd.blkConns[gk.Dom.ID] = conn
	dd.GK.ExtraEvent[backPort] = func() { dd.blkbackSubmit(conn) }
	gk.Blk = bf
	return bf, nil
}

func (bf *BlkFront) port() vmm.Port { return bf.localPort }

// onEvent: completion notifications arrive here; state was already updated
// by blkback through the shared request, so only demux work is charged.
func (bf *BlkFront) onEvent() {
	bf.gk.H.M.CPU.Work(bf.gk.Comp(), 150)
}

// submit runs one request to completion.
func (bf *BlkFront) submit(op dev.DiskOp, block uint64) (*blkReq, error) {
	h := bf.gk.H
	if !h.Alive(bf.dd.GK.Dom.ID) {
		return nil, ErrBackendDead
	}
	h.M.CPU.Work(bf.gk.Comp(), 250) // request construction
	readOnly := op == dev.DiskWrite // dom0 only reads our page on write
	ref, err := h.GrantAccess(bf.gk.Dom.ID, bf.buf, bf.dd.GK.Dom.ID, readOnly)
	if err != nil {
		return nil, err
	}
	req := &blkReq{op: op, block: block, ref: ref, frame: bf.buf}
	bf.conn.reqs = append(bf.conn.reqs, req)
	if err := h.NotifyChannel(bf.gk.Dom.ID, bf.conn.frontPort); err != nil {
		return nil, err
	}
	// "Block": drive the machine until the completion lands. The disk
	// event is scheduled, so a bounded pump suffices.
	for i := 0; i < 64 && !req.done; i++ {
		if h.PumpIO(8) == 0 {
			break
		}
	}
	if !req.done {
		return nil, ErrIOTimeout
	}
	if !req.ok {
		return nil, ErrIOTimeout
	}
	return req, nil
}

// Read returns the contents of a partition-relative block.
func (bf *BlkFront) Read(block uint64) ([]byte, error) {
	if _, err := bf.submit(dev.DiskRead, block); err != nil {
		return nil, err
	}
	bf.reads++
	out := make([]byte, bf.gk.H.M.Mem.PageSize())
	copy(out, bf.gk.H.M.Mem.Data(bf.buf))
	return out, nil
}

// Write stores data into a partition-relative block.
func (bf *BlkFront) Write(block uint64, data []byte) error {
	buf := bf.gk.H.M.Mem.Data(bf.buf)
	n := copy(buf, data)
	clear(buf[n:])
	if _, err := bf.submit(dev.DiskWrite, block); err != nil {
		return err
	}
	bf.writes++
	return nil
}

// Stats returns completed read and write counts.
func (bf *BlkFront) Stats() (reads, writes uint64) { return bf.reads, bf.writes }
