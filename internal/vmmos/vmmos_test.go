package vmmos

import (
	"bytes"
	"errors"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/hw/dev"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
)

// stack is a complete Xen-like software stack: hypervisor, Dom0 with NIC
// and disk, and one guest with net+block frontends.
type stack struct {
	m     *hw.Machine
	h     *vmm.Hypervisor
	dd    *DriverDomain
	nic   *dev.NIC
	disk  *dev.Disk
	guest *GuestKernel
	proc  *Process
}

func newStack(t testing.TB, mode RxMode) *stack {
	t.Helper()
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 2048, IRQLines: 16})
	h, d0, err := vmm.New(m, 128)
	if err != nil {
		t.Fatal(err)
	}
	nic := dev.NewNIC(m, dev.NICConfig{RxIRQ: 1, TxIRQ: 2, RingSize: 64})
	disk := dev.NewDisk(m, dev.DiskConfig{IRQ: 3, Latency: 5000})
	dd, err := NewDriverDomain(h, d0, nic, disk)
	if err != nil {
		t.Fatal(err)
	}
	dd.Mode = mode
	dU, err := h.CreateDomain("domU1", 128)
	if err != nil {
		t.Fatal(err)
	}
	gk := NewGuestKernel(h, dU)
	if _, err := ConnectNet(dd, gk); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectBlk(dd, gk, 256); err != nil {
		t.Fatal(err)
	}
	proc := gk.Spawn("app")
	return &stack{m: m, h: h, dd: dd, nic: nic, disk: disk, guest: gk, proc: proc}
}

// pump delivers in-flight device work.
func (s *stack) pump() { s.h.PumpIO(64) }

func TestSyscallGetPID(t *testing.T) {
	s := newStack(t, RxFlip)
	ret, err := s.guest.Syscall(s.proc.PID, SysGetPID)
	if err != nil {
		t.Fatal(err)
	}
	if PID(ret[0]) != s.proc.PID {
		t.Fatalf("getpid = %d, want %d", ret[0], s.proc.PID)
	}
	total, _ := s.guest.Dom.Syscalls()
	if total != 1 {
		t.Fatalf("syscalls = %d, want 1", total)
	}
}

func TestSyscallUnknownIsENOSYS(t *testing.T) {
	s := newStack(t, RxFlip)
	ret, err := s.guest.Syscall(s.proc.PID, 999)
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != ^uint64(0) {
		t.Fatal("unknown syscall should return ENOSYS marker")
	}
}

func TestSyscallBadProcess(t *testing.T) {
	s := newStack(t, RxFlip)
	if _, err := s.guest.Syscall(999, SysGetPID); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("err = %v, want ErrNoSuchProcess", err)
	}
}

func TestConsoleWrite(t *testing.T) {
	s := newStack(t, RxFlip)
	for _, b := range []byte("hi") {
		if _, err := s.guest.Syscall(s.proc.PID, SysWrite, uint64(b)); err != nil {
			t.Fatal(err)
		}
	}
	if string(s.guest.Console()) != "hi" {
		t.Fatalf("console = %q", s.guest.Console())
	}
}

func injectPacket(s *stack, size int) {
	pkt := make([]byte, size)
	// First byte selects the destination guest (index 0).
	s.nic.Inject(pkt)
	s.m.IRQ.DispatchPending(s.m.Rec.Intern(vmm.HypervisorComponent))
}

func TestNetRxFlipEndToEnd(t *testing.T) {
	s := newStack(t, RxFlip)
	injectPacket(s, 1500)
	s.pump()
	if s.guest.Net.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.guest.Net.Pending())
	}
	ret, err := s.guest.Syscall(s.proc.PID, SysNetRecv)
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != 1500 {
		t.Fatalf("recv len = %d, want 1500", ret[0])
	}
	flips, copies, _ := s.guest.Net.Stats()
	if flips != 1 || copies != 0 {
		t.Fatalf("flips/copies = %d/%d, want 1/0", flips, copies)
	}
	if s.m.Rec.Counts(trace.KPageFlip) != 1 {
		t.Fatal("page flip not recorded")
	}
	if s.proc.RxDelivered() != 1 {
		t.Fatal("process delivery count wrong")
	}
}

func TestNetRxCopyEndToEnd(t *testing.T) {
	s := newStack(t, RxCopy)
	injectPacket(s, 800)
	s.pump()
	if s.guest.Net.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.guest.Net.Pending())
	}
	flips, copies, _ := s.guest.Net.Stats()
	if flips != 0 || copies != 1 {
		t.Fatalf("flips/copies = %d/%d, want 0/1", flips, copies)
	}
	if s.m.Rec.Counts(trace.KGrantCopy) != 1 {
		t.Fatal("grant copy not recorded")
	}
	if s.m.Rec.Counts(trace.KPageFlip) != 0 {
		t.Fatal("copy mode must not flip")
	}
}

func TestNetRxBurstConservesMemory(t *testing.T) {
	s := newStack(t, RxFlip)
	free0 := s.m.Mem.FreeFrames()
	for i := 0; i < 50; i++ {
		injectPacket(s, 100)
		s.pump()
	}
	for {
		ret, err := s.guest.Syscall(s.proc.PID, SysNetRecv)
		if err != nil {
			t.Fatal(err)
		}
		if ret[0] == 0 {
			break
		}
	}
	// The flip path frees consumed pages and dom0 re-allocates its pool:
	// steady state must not leak frames (tolerate pool-depth variation).
	free1 := s.m.Mem.FreeFrames()
	if free0-free1 > 40 {
		t.Fatalf("frame leak: free %d -> %d", free0, free1)
	}
	if s.guest.Dom.Dead {
		t.Fatal("guest died during burst")
	}
}

func TestNetRxEvtchnPerPacket(t *testing.T) {
	s := newStack(t, RxFlip)
	ev0 := s.m.Rec.Counts(trace.KEvtchnSend)
	for i := 0; i < 10; i++ {
		injectPacket(s, 64)
		s.pump()
	}
	ev1 := s.m.Rec.Counts(trace.KEvtchnSend)
	if ev1-ev0 != 10 {
		t.Fatalf("evtchn sends = %d, want 10 (one per packet)", ev1-ev0)
	}
}

func TestNetTxEndToEnd(t *testing.T) {
	s := newStack(t, RxFlip)
	ret, err := s.guest.Syscall(s.proc.PID, SysNetSend, 900)
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != 900 {
		t.Fatalf("send returned %d", ret[0])
	}
	s.pump()
	pkts := s.nic.Transmitted()
	if len(pkts) != 1 || len(pkts[0].Data) != 900 {
		t.Fatalf("wire saw %d packets", len(pkts))
	}
	_, tx := s.dd.Stats()
	if tx != 1 {
		t.Fatalf("netback tx = %d, want 1", tx)
	}
}

func TestNetSendToDeadDom0Fails(t *testing.T) {
	s := newStack(t, RxFlip)
	s.h.DestroyDomain(vmm.Dom0)
	err := s.guest.Net.Send([]byte("x"))
	if !errors.Is(err, ErrBackendDead) {
		t.Fatalf("err = %v, want ErrBackendDead", err)
	}
	// Guest itself survives — the blast radius is the service dependency.
	if !s.h.Alive(s.guest.Dom.ID) {
		t.Fatal("guest killed by dom0 death")
	}
}

func TestBlockWriteReadRoundTrip(t *testing.T) {
	s := newStack(t, RxFlip)
	want := []byte("persistent-data-123")
	if err := s.guest.Blk.Write(7, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.guest.Blk.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(want)], want) {
		t.Fatalf("read back %q, want %q", got[:len(want)], want)
	}
	bf := s.guest.Blk.(*BlkFront)
	r, w := bf.Stats()
	if r != 1 || w != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", r, w)
	}
}

func TestBlockPartitionIsolation(t *testing.T) {
	s := newStack(t, RxFlip)
	// Second guest with its own partition.
	d2, err := s.h.CreateDomain("domU2", 64)
	if err != nil {
		t.Fatal(err)
	}
	gk2 := NewGuestKernel(s.h, d2)
	if _, err := ConnectBlk(s.dd, gk2, 256); err != nil {
		t.Fatal(err)
	}
	if err := s.guest.Blk.Write(0, []byte("guest1")); err != nil {
		t.Fatal(err)
	}
	if err := gk2.Blk.Write(0, []byte("guest2")); err != nil {
		t.Fatal(err)
	}
	g1, _ := s.guest.Blk.Read(0)
	g2, _ := gk2.Blk.Read(0)
	if string(g1[:6]) != "guest1" || string(g2[:6]) != "guest2" {
		t.Fatal("partitions overlap — block isolation broken")
	}
}

func TestBlockOutOfRange(t *testing.T) {
	s := newStack(t, RxFlip)
	if _, err := s.guest.Blk.Read(9999); err == nil {
		t.Fatal("out-of-partition read must fail")
	}
}

func TestBlockViaSyscall(t *testing.T) {
	s := newStack(t, RxFlip)
	ret, err := s.guest.Syscall(s.proc.PID, SysBlockWrite, 3)
	if err != nil || ret[0] != 0 {
		t.Fatalf("block write syscall failed: %v %v", ret, err)
	}
	ret, err = s.guest.Syscall(s.proc.PID, SysBlockRead, 3)
	if err != nil || ret[0] != 0 {
		t.Fatalf("block read syscall failed: %v %v", ret, err)
	}
}

func TestParallaxServesClients(t *testing.T) {
	s := newStack(t, RxFlip)
	pxDom, err := s.h.CreateDomain("parallax", 128)
	if err != nil {
		t.Fatal(err)
	}
	px, err := NewParallax(s.h, pxDom, s.dd, 512)
	if err != nil {
		t.Fatal(err)
	}
	// Client guest whose block device is Parallax-backed.
	cd, _ := s.h.CreateDomain("client", 64)
	cgk := NewGuestKernel(s.h, cd)
	if _, err := px.AttachClient(cgk, 128); err != nil {
		t.Fatal(err)
	}
	if err := cgk.Blk.Write(5, []byte("via-parallax")); err != nil {
		t.Fatal(err)
	}
	got, err := cgk.Blk.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:12]) != "via-parallax" {
		t.Fatalf("read %q", got[:12])
	}
	if px.Requests() != 2 {
		t.Fatalf("parallax served %d requests, want 2", px.Requests())
	}
	// Unwritten blocks read as zeros.
	z, err := cgk.Blk.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range z {
		if b != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestParallaxCopyOnWriteSnapshot(t *testing.T) {
	s := newStack(t, RxFlip)
	pxDom, _ := s.h.CreateDomain("parallax", 128)
	px, err := NewParallax(s.h, pxDom, nil, 0) // in-memory only
	if err != nil {
		t.Fatal(err)
	}
	cd, _ := s.h.CreateDomain("client", 64)
	cgk := NewGuestKernel(s.h, cd)
	px.AttachClient(cgk, 128)

	cgk.Blk.Write(1, []byte("v1"))
	n, err := px.Snapshot(cd.ID)
	if err != nil || n != 1 {
		t.Fatalf("snapshot captured %d blocks, err %v", n, err)
	}
	cgk.Blk.Write(1, []byte("v2"))
	got, _ := cgk.Blk.Read(1)
	if string(got[:2]) != "v2" {
		t.Fatal("live view must see post-snapshot write")
	}
	if snap := px.SnapshotRead(cd.ID, 1); string(snap[:2]) != "v1" {
		t.Fatal("snapshot must preserve pre-snapshot data")
	}
	// Reading an untouched block falls through to the snapshot.
	cgk.Blk.Write(2, []byte("x"))
	px.Snapshot(cd.ID)
	got, _ = cgk.Blk.Read(2)
	if string(got[:1]) != "x" {
		t.Fatal("read-through to snapshot failed")
	}
}

func TestParallaxDeathBlastRadius(t *testing.T) {
	// The E4 scenario from §3.1: Parallax fails; its clients lose
	// storage; the monitor, Dom0 and non-client domains are unaffected.
	s := newStack(t, RxFlip)
	pxDom, _ := s.h.CreateDomain("parallax", 128)
	px, err := NewParallax(s.h, pxDom, s.dd, 512)
	if err != nil {
		t.Fatal(err)
	}
	cd, _ := s.h.CreateDomain("client", 64)
	cgk := NewGuestKernel(s.h, cd)
	px.AttachClient(cgk, 128)
	if err := cgk.Blk.Write(1, []byte("pre-crash")); err != nil {
		t.Fatal(err)
	}

	s.h.DestroyDomain(pxDom.ID)

	if err := cgk.Blk.Write(2, []byte("post-crash")); !errors.Is(err, ErrBackendDead) {
		t.Fatalf("client write err = %v, want ErrBackendDead", err)
	}
	// Client domain itself is alive; only its storage service is gone.
	if !s.h.Alive(cd.ID) {
		t.Fatal("client domain died")
	}
	// Dom0's own storage path is unaffected.
	if err := s.guest.Blk.Write(9, []byte("still-works")); err != nil {
		t.Fatalf("unrelated guest's storage broken: %v", err)
	}
	if !s.h.Alive(vmm.Dom0) {
		t.Fatal("dom0 harmed")
	}
}

func TestParallaxOnDom0Consolidated(t *testing.T) {
	// The super-VM arrangement: Parallax hosted by Dom0 itself, with
	// persistence looping back through Dom0's own blkback.
	s := newStack(t, RxFlip)
	px, err := NewParallaxOn(s.dd.GK, s.dd, 256)
	if err != nil {
		t.Fatal(err)
	}
	cd, _ := s.h.CreateDomain("client", 64)
	cgk := NewGuestKernel(s.h, cd)
	if _, err := px.AttachClient(cgk, 64); err != nil {
		t.Fatal(err)
	}
	if err := cgk.Blk.Write(3, []byte("consolidated-write")); err != nil {
		t.Fatal(err)
	}
	got, err := cgk.Blk.Read(3)
	if err != nil || string(got[:18]) != "consolidated-write" {
		t.Fatalf("read %q, %v", got[:18], err)
	}
	// The single point of failure: killing Dom0 takes the storage
	// service AND the network with it.
	s.h.DestroyDomain(vmm.Dom0)
	if err := cgk.Blk.Write(4, []byte("x")); err == nil {
		t.Fatal("storage survived its consolidated host's death")
	}
	if err := s.guest.Net.Send([]byte("x")); err == nil {
		t.Fatal("network survived dom0 death")
	}
}

func TestParallaxSnapshotUnknownClient(t *testing.T) {
	s := newStack(t, RxFlip)
	pxDom, _ := s.h.CreateDomain("parallax", 64)
	px, _ := NewParallax(s.h, pxDom, nil, 0)
	if _, err := px.Snapshot(999); !errors.Is(err, ErrVDiskUnknown) {
		t.Fatalf("err = %v, want ErrVDiskUnknown", err)
	}
}

func TestRxDemuxToMultipleGuests(t *testing.T) {
	s := newStack(t, RxFlip)
	d2, _ := s.h.CreateDomain("domU2", 128)
	gk2 := NewGuestKernel(s.h, d2)
	if _, err := ConnectNet(s.dd, gk2); err != nil {
		t.Fatal(err)
	}
	// Destination byte 0 -> guest 1, byte 1 -> guest 2.
	s.nic.Inject([]byte{0, 0, 0})
	s.nic.Inject([]byte{1, 0, 0})
	s.nic.Inject([]byte{1, 0, 0})
	s.m.IRQ.DispatchPending(s.m.Rec.Intern(vmm.HypervisorComponent))
	s.pump()
	if s.guest.Net.Pending() != 1 {
		t.Fatalf("guest1 pending = %d, want 1", s.guest.Net.Pending())
	}
	if gk2.Net.Pending() != 2 {
		t.Fatalf("guest2 pending = %d, want 2", gk2.Net.Pending())
	}
}

func TestRxToDeadGuestDropped(t *testing.T) {
	s := newStack(t, RxFlip)
	s.h.DestroyDomain(s.guest.Dom.ID)
	injectPacket(s, 100)
	s.pump()
	// Dom0 must survive and not leak into a dead domain.
	if !s.h.Alive(vmm.Dom0) {
		t.Fatal("dom0 harmed by dead guest")
	}
	rx, _ := s.dd.Stats()
	if rx != 1 {
		t.Fatalf("netback handled %d packets, want 1 (dropped)", rx)
	}
}

func TestFlipVsCopyCPUProportionality(t *testing.T) {
	// Mini-E1: under flip, dom0+monitor cost per packet is flat in packet
	// size; under copy it grows.
	perPacketCost := func(mode RxMode, size int) uint64 {
		s := newStack(t, mode)
		driver := func() uint64 {
			return s.m.Rec.Cycles("vmm.dom0") + s.m.Rec.Cycles(vmm.HypervisorComponent) + s.m.Rec.Cycles("vmm.domU1")
		}
		before := driver()
		for i := 0; i < 20; i++ {
			injectPacket(s, size)
			s.pump()
		}
		return (driver() - before) / 20
	}
	flipSmall := perPacketCost(RxFlip, 64)
	flipBig := perPacketCost(RxFlip, 4096)
	copySmall := perPacketCost(RxCopy, 64)
	copyBig := perPacketCost(RxCopy, 4096)

	// Flip: size-independent within 2% (pool bookkeeping noise).
	diff := float64(flipBig) - float64(flipSmall)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(flipSmall) > 0.02 {
		t.Fatalf("flip cost not flat: 64B=%d 4096B=%d", flipSmall, flipBig)
	}
	// Copy: big packets must cost visibly more than small ones.
	if copyBig <= copySmall {
		t.Fatalf("copy cost not size-dependent: 64B=%d 4096B=%d", copySmall, copyBig)
	}
}

func TestGuestWriteMemorySeenByDirtyLog(t *testing.T) {
	// The guest-kernel store path lands in memory and, with the domain's
	// dirty log armed, is exactly what a live migration round collects.
	s := newStack(t, RxFlip)
	if err := s.guest.WriteMemory(5, 0, []byte("plain store")); err != nil {
		t.Fatal(err)
	}
	if got := s.m.Mem.Data(s.guest.Dom.FrameAt(5))[:11]; string(got) != "plain store" {
		t.Fatalf("store lost: %q", got)
	}
	dl, err := s.h.EnableDirtyLog(s.guest.Dom.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.guest.WriteMemory(7, 0, []byte("logged store")); err != nil {
		t.Fatal(err)
	}
	if dirty := dl.Dirty(); len(dirty) != 1 || dirty[0] != 7 {
		t.Fatalf("dirty = %v, want [7]", dirty)
	}
	s.h.DisableDirtyLog(s.guest.Dom.ID)
	if err := s.guest.WriteMemory(9999, 0, []byte("x")); err == nil {
		t.Fatal("out-of-range guest write accepted")
	}
}
