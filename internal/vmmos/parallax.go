package vmmos

import (
	"encoding/binary"

	"errors"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
)

// Parallax is the storage appliance domain from Warfield et al.'s HotOS'05
// paper, which the rebuttal's §3.1 leans on: a dedicated VM that provides
// virtual block devices (with copy-on-write snapshots) to a set of client
// VMs. It is "providing a critical system service" — structurally a
// user-level server, which is why its failure semantics are the heart of
// the liability-inversion experiment E4: when Parallax dies, its clients'
// storage fails, while the monitor, Dom0 and unrelated domains are
// untouched.
//
// Blocks live in Parallax's own memory and are written through to a
// partition it holds on the physical disk via its own blkfront — Parallax
// is itself a client of Dom0, mirroring the real system's structure.
type Parallax struct {
	H   *vmm.Hypervisor
	GK  *GuestKernel
	dd  *DriverDomain
	blk *BlkFront // write-through persistence, may be nil

	vdisks map[vmm.DomID]*VDisk

	requests uint64
	faults   uint64
}

// ErrVDiskUnknown is returned for requests on an unattached client.
var ErrVDiskUnknown = errors.New("vmmos: no virtual disk for this domain")

// VDisk is one client's virtual disk: a block map supporting copy-on-write
// snapshots. Unwritten blocks read as zeros.
type VDisk struct {
	owner    vmm.DomID
	blocks   map[uint64][]byte
	snapshot map[uint64][]byte // frozen view; nil when no snapshot taken
	persist  uint64            // physical partition offset for write-through
	size     uint64
}

// pxConn is the ring between a client guest and Parallax.
type pxConn struct {
	client    vmm.DomID
	pxPort    vmm.Port
	frontPort vmm.Port
	reqs      []*pxReq
	front     *PxFront
}

type pxReq struct {
	write bool
	block uint64
	ref   vmm.GrantRef
	frame hw.FrameID
	done  bool
	ok    bool
}

// NewParallax boots the appliance in its own domain — the decomposed
// structure the real Parallax paper advocates. When dd is non-nil the
// appliance connects a blkfront for write-through persistence.
func NewParallax(h *vmm.Hypervisor, dom *vmm.Domain, dd *DriverDomain, persistBlocks uint64) (*Parallax, error) {
	return NewParallaxOn(NewGuestKernel(h, dom), dd, persistBlocks)
}

// NewParallaxOn boots the appliance on an existing guest kernel. Passing
// Dom0's kernel builds the consolidated "super-VM" §2.2 warns about —
// storage and drivers sharing one failure domain — which the E9d ablation
// measures against the decomposed arrangement.
func NewParallaxOn(gk *GuestKernel, dd *DriverDomain, persistBlocks uint64) (*Parallax, error) {
	px := &Parallax{
		H:      gk.H,
		GK:     gk,
		dd:     dd,
		vdisks: make(map[vmm.DomID]*VDisk),
	}
	if dd != nil && dd.Disk != nil && persistBlocks > 0 {
		// Works for the consolidated case too: the blkfront/blkback pair
		// simply loops back within Dom0 over a self-channel.
		bf, err := ConnectBlk(dd, px.GK, persistBlocks)
		if err != nil {
			return nil, err
		}
		px.blk = bf
	}
	return px, nil
}

// Component returns the appliance's trace attribution name.
func (px *Parallax) Component() string { return px.GK.Component() }

// Comp returns the interned trace attribution handle.
func (px *Parallax) Comp() trace.Comp { return px.GK.Comp() }

// AttachClient creates a virtual disk for a client guest and wires its
// event channel; the returned PxFront plugs into the client kernel as its
// BlockDevice.
func (px *Parallax) AttachClient(gk *GuestKernel, size uint64) (*PxFront, error) {
	pxPort, frontPort, err := px.H.BindChannel(px.GK.Dom.ID, gk.Dom.ID)
	if err != nil {
		return nil, err
	}
	buf, err := px.H.M.Mem.Alloc(gk.Component())
	if err != nil {
		return nil, err
	}
	vd := &VDisk{owner: gk.Dom.ID, blocks: make(map[uint64][]byte), size: size, persist: uint64(len(px.vdisks)) * size}
	px.vdisks[gk.Dom.ID] = vd
	pf := &PxFront{gk: gk, px: px, localPort: frontPort, buf: buf}
	conn := &pxConn{client: gk.Dom.ID, pxPort: pxPort, frontPort: frontPort, front: pf}
	pf.conn = conn
	px.GK.ExtraEvent[pxPort] = func() { px.serve(conn) }
	gk.Blk = pf
	return pf, nil
}

// serve handles a client kick: pop requests, run the block map, move data
// through the granted page, notify completion.
func (px *Parallax) serve(conn *pxConn) {
	comp := px.Comp()
	h := px.H
	reqs := conn.reqs
	conn.reqs = nil
	const window = hw.VPN(0xE000)
	for _, r := range reqs {
		px.requests++
		h.M.CPU.Work(comp, 500) // block-map lookup, CoW bookkeeping
		vd := px.vdisks[conn.client]
		if vd == nil || r.block >= vd.size {
			r.done, r.ok = true, false
			h.NotifyChannel(px.GK.Dom.ID, conn.pxPort)
			continue
		}
		if err := h.GrantMap(px.GK.Dom.ID, conn.client, r.ref, window); err != nil {
			r.done, r.ok = true, false
			continue
		}
		e, _ := px.GK.Dom.PT.Lookup(window)
		ps := h.M.Mem.PageSize()
		if r.write {
			// Cache only the non-zero prefix (reads pad the tail back);
			// the write-through sees the whole granted page, which
			// BlkFront copies out before returning.
			src := h.M.Mem.Data(e.Frame)
			n := trimZeros(src)
			vd.write(r.block, append([]byte(nil), src[:n]...))
			h.M.CPU.Work(comp, h.M.CPU.CopyCost(ps))
			if px.blk != nil {
				// Write-through to the physical partition via Dom0.
				if err := px.blk.Write(vd.persist+r.block, src); err != nil {
					r.done, r.ok = true, false
					h.GrantUnmap(px.GK.Dom.ID, conn.client, r.ref, window)
					h.NotifyChannel(px.GK.Dom.ID, conn.pxPort)
					continue
				}
			}
		} else {
			data := vd.read(r.block)
			buf := h.M.Mem.Data(e.Frame)
			nc := copy(buf, data)
			clear(buf[nc:])
			h.M.CPU.Work(comp, h.M.CPU.CopyCost(ps))
		}
		h.GrantUnmap(px.GK.Dom.ID, conn.client, r.ref, window)
		r.done, r.ok = true, true
		h.NotifyChannel(px.GK.Dom.ID, conn.pxPort)
	}
}

// trimZeros returns the length of b without its all-zero tail (word-wise
// scan; cached blocks are mostly zero padding).
func trimZeros(b []byte) int {
	n := len(b)
	for n >= 8 && binary.LittleEndian.Uint64(b[n-8:n]) == 0 {
		n -= 8
	}
	for n > 0 && b[n-1] == 0 {
		n--
	}
	return n
}

func (vd *VDisk) read(block uint64) []byte {
	if b, ok := vd.blocks[block]; ok {
		return b
	}
	if vd.snapshot != nil {
		if b, ok := vd.snapshot[block]; ok {
			return b
		}
	}
	return nil
}

func (vd *VDisk) write(block uint64, data []byte) {
	vd.blocks[block] = data
}

// Snapshot freezes the current state of a client's disk; later writes go to
// fresh blocks (copy-on-write), earlier data remains readable. Returns the
// number of blocks captured.
func (px *Parallax) Snapshot(client vmm.DomID) (int, error) {
	vd := px.vdisks[client]
	if vd == nil {
		return 0, ErrVDiskUnknown
	}
	px.H.M.CPU.Work(px.Comp(), 800)
	if vd.snapshot == nil {
		vd.snapshot = make(map[uint64][]byte)
	}
	for b, data := range vd.blocks {
		vd.snapshot[b] = data
	}
	n := len(vd.blocks)
	vd.blocks = make(map[uint64][]byte)
	return n, nil
}

// SnapshotRead reads from the frozen view (nil if block unwritten at
// snapshot time or no snapshot exists).
func (px *Parallax) SnapshotRead(client vmm.DomID, block uint64) []byte {
	vd := px.vdisks[client]
	if vd == nil || vd.snapshot == nil {
		return nil
	}
	return vd.snapshot[block]
}

// Requests returns the number of client requests served.
func (px *Parallax) Requests() uint64 { return px.requests }

// PxFront is the client-side stub for a Parallax virtual disk; it satisfies
// BlockDevice so guests use it exactly like a blkfront.
type PxFront struct {
	gk        *GuestKernel
	px        *Parallax
	conn      *pxConn
	localPort vmm.Port
	buf       hw.FrameID

	reads   uint64
	writes  uint64
	readBuf []byte // reused Read result buffer, valid until the next Read
}

func (pf *PxFront) port() vmm.Port { return pf.localPort }

func (pf *PxFront) onEvent() {
	pf.gk.H.M.CPU.Work(pf.gk.Comp(), 150)
}

func (pf *PxFront) submit(write bool, block uint64) (*pxReq, error) {
	h := pf.gk.H
	if !h.Alive(pf.px.GK.Dom.ID) {
		return nil, ErrBackendDead
	}
	h.M.CPU.Work(pf.gk.Comp(), 250)
	ref, err := h.GrantAccess(pf.gk.Dom.ID, pf.buf, pf.px.GK.Dom.ID, false)
	if err != nil {
		return nil, err
	}
	req := &pxReq{write: write, block: block, ref: ref, frame: pf.buf}
	pf.conn.reqs = append(pf.conn.reqs, req)
	if err := h.NotifyChannel(pf.gk.Dom.ID, pf.conn.frontPort); err != nil {
		return nil, err
	}
	for i := 0; i < 64 && !req.done; i++ {
		if h.PumpIO(8) == 0 {
			break
		}
	}
	if !req.done || !req.ok {
		return nil, ErrIOTimeout
	}
	return req, nil
}

// Read returns the contents of a virtual block. The returned slice is a
// reused buffer, valid until the frontend's next Read.
func (pf *PxFront) Read(block uint64) ([]byte, error) {
	if _, err := pf.submit(false, block); err != nil {
		return nil, err
	}
	pf.reads++
	ps := pf.gk.H.M.Mem.PageSize()
	if cap(pf.readBuf) < int(ps) {
		pf.readBuf = make([]byte, ps)
	}
	out := pf.readBuf[:ps]
	copy(out, pf.gk.H.M.Mem.Data(pf.buf))
	return out, nil
}

// Write stores data into a virtual block.
func (pf *PxFront) Write(block uint64, data []byte) error {
	buf := pf.gk.H.M.Mem.Data(pf.buf)
	n := copy(buf, data)
	clear(buf[n:])
	if _, err := pf.submit(true, block); err != nil {
		return err
	}
	pf.writes++
	return nil
}

// Stats returns completed read/write counts.
func (pf *PxFront) Stats() (reads, writes uint64) { return pf.reads, pf.writes }
