// Package vmmos provides the operating-system personalities that run on
// the vmm hypervisor: a paravirtualised guest kernel (XenoLinux-like) with
// a small process and syscall model, the Dom0 driver domain with netback
// and blkback backends, the matching netfront/blkfront frontends, a
// Parallax-like storage appliance domain that serves virtual disks to
// other guests, and the KV appliance (E10's minimal extension).
//
// Together with package vmm this is "system B" of the paper's comparison —
// the structural twin of package mkos on the microkernel side. The I/O
// paths are modelled on Xen 2.x as measured by Cherkasova & Gardner:
// network receive moves pages from the driver domain to the guest by page
// flipping (one flip per packet, whatever the packet size), with a
// grant-copy mode available as the ablation E9 studies. Package core boots
// this stack as XenStack next to mkos's MKStack on identical hw machines.
//
// On a multiprocessor, GuestKernel.Place pins a guest's vCPUs to physical
// CPUs (vmm.PlaceVCPUs under the hood); the driver domain stays on the
// boot CPU, so backend→frontend event deliveries pay kick IPIs and the
// guest's shadow invalidations shoot down its pCPUs — the costs experiment
// E12 sweeps against core count.
package vmmos
