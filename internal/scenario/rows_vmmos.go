package scenario

import (
	"bytes"
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/hw/dev"
	"vmmk/internal/vmm"
	"vmmk/internal/vmmos"
)

// vmmos rows: the split-driver guest stack. The paper's liability question
// in executable form — when the backend (dom0) dies or a frontend is
// missing, the guest must get a typed error, not a hang or a corpse.

// vmmosConfig is the machine shape for the full split-driver stack.
var vmmosConfig = &hw.MachineConfig{Frames: 2048, IRQLines: 16}

// vmmosState carries the stack under test to Check.
type vmmosState struct {
	h    *vmm.Hypervisor
	domU vmm.DomID
	ret  []uint64
}

// vmmosRig builds hypervisor + driver domain (NIC and disk backends) + one
// guest with its paravirtual kernel.
func vmmosRig(env *Env) (*vmm.Hypervisor, *vmmos.DriverDomain, *vmmos.GuestKernel, error) {
	h, d0, err := vmm.New(env.M, 128)
	if err != nil {
		return nil, nil, nil, err
	}
	nic := dev.NewNIC(env.M, dev.NICConfig{RxIRQ: 1, TxIRQ: 2, RingSize: 64})
	disk := dev.NewDisk(env.M, dev.DiskConfig{IRQ: 3, Latency: 5000})
	dd, err := vmmos.NewDriverDomain(h, d0, nic, disk)
	if err != nil {
		return nil, nil, nil, err
	}
	dU, err := h.CreateDomain("domU1", 128)
	if err != nil {
		return nil, nil, nil, err
	}
	gk := vmmos.NewGuestKernel(h, dU)
	return h, dd, gk, nil
}

func init() {
	Register(S{
		ID:        "vmmos/blk-backend-destroyed",
		Subsystem: "vmmos",
		Fault:     "dom0 destroyed while the guest's block frontend is connected",
		Cfg:       vmmosConfig,
		Expect: Outcome{
			Desc: "ErrBackendDead; the guest domain itself survives",
			Err:  vmmos.ErrBackendDead,
			Check: func(env *Env) error {
				st := env.State.(*vmmosState)
				if !st.h.Alive(st.domU) {
					return fmt.Errorf("guest died with its backend")
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			h, dd, gk, err := vmmosRig(env)
			if err != nil {
				return err
			}
			env.State = &vmmosState{h: h, domU: gk.Dom.ID}
			bf, err := vmmos.ConnectBlk(dd, gk, 256)
			if err != nil {
				return err
			}
			payload := []byte("guest block three")
			if err := bf.Write(3, payload); err != nil {
				return err
			}
			if env.Armed {
				if err := h.DestroyDomain(dd.GK.Dom.ID); err != nil {
					return err
				}
			}
			got, err := bf.Read(3)
			if err != nil {
				return err
			}
			if !bytes.Equal(got[:len(payload)], payload) {
				return fmt.Errorf("read back %q", got[:len(payload)])
			}
			return nil
		},
	})

	Register(S{
		ID:        "vmmos/fs-without-block-frontend",
		Subsystem: "vmmos",
		Fault:     "guest mounts a filesystem with no block frontend connected",
		Cfg:       vmmosConfig,
		Expect: Outcome{
			Desc: "ErrNoBlock from MountFS",
			Err:  vmmos.ErrNoBlock,
		},
		Run: func(env *Env) error {
			_, dd, gk, err := vmmosRig(env)
			if err != nil {
				return err
			}
			if !env.Armed {
				if _, err := vmmos.ConnectBlk(dd, gk, 256); err != nil {
					return err
				}
			}
			fs, err := gk.MountFS(64)
			if err != nil {
				return err
			}
			if err := fs.WriteFile("f", []byte("hello")); err != nil {
				return err
			}
			got, err := fs.ReadFile("f")
			if err != nil {
				return err
			}
			if !bytes.Equal(got, []byte("hello")) {
				return fmt.Errorf("read back %q", got)
			}
			return nil
		},
	})

	Register(S{
		ID:        "vmmos/syscall-unknown-process",
		Subsystem: "vmmos",
		Fault:     "guest syscall issued with a PID the guest kernel never spawned",
		Cfg:       vmmosConfig,
		Expect: Outcome{
			Desc: "ErrNoSuchProcess",
			Err:  vmmos.ErrNoSuchProcess,
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 128)
			if err != nil {
				return err
			}
			dU, err := h.CreateDomain("domU1", 128)
			if err != nil {
				return err
			}
			gk := vmmos.NewGuestKernel(h, dU)
			p := gk.Spawn("app")
			pid := p.PID
			if env.Armed {
				pid = vmmos.PID(4242)
			}
			ret, err := gk.Syscall(pid, vmmos.SysGetPID)
			if err != nil {
				return err
			}
			if len(ret) != 1 || ret[0] != uint64(p.PID) {
				return fmt.Errorf("getpid returned %v", ret)
			}
			return nil
		},
	})

	Register(S{
		ID:        "vmmos/net-send-without-frontend",
		Subsystem: "vmmos",
		Fault:     "guest process sends on the network with no net frontend connected",
		Cfg:       vmmosConfig,
		Expect: Outcome{
			Desc: "syscall returns the error sentinel ^0 instead of bytes sent",
			Check: func(env *Env) error {
				st := env.State.(*vmmosState)
				if len(st.ret) != 1 {
					return fmt.Errorf("syscall returned %v", st.ret)
				}
				if env.Armed {
					if st.ret[0] != ^uint64(0) {
						return fmt.Errorf("send without frontend returned %d, want ^0", st.ret[0])
					}
				} else if st.ret[0] != 64 {
					return fmt.Errorf("send returned %d, want 64", st.ret[0])
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			h, dd, gk, err := vmmosRig(env)
			if err != nil {
				return err
			}
			if !env.Armed {
				if _, err := vmmos.ConnectNet(dd, gk); err != nil {
					return err
				}
			}
			p := gk.Spawn("app")
			ret, err := gk.Syscall(p.PID, vmmos.SysNetSend, 64)
			if err != nil {
				return err
			}
			env.State = &vmmosState{h: h, domU: gk.Dom.ID, ret: ret}
			return nil
		},
	})

	Register(S{
		ID:        "vmmos/parallax-snapshot-unattached",
		Subsystem: "vmmos",
		Fault:     "snapshot requested for a domain with no attached virtual disk",
		Cfg:       vmmosConfig,
		Expect: Outcome{
			Desc: "ErrVDiskUnknown",
			Err:  vmmos.ErrVDiskUnknown,
		},
		Run: func(env *Env) error {
			h, dd, gk, err := vmmosRig(env)
			if err != nil {
				return err
			}
			pxDom, err := h.CreateDomain("parallax", 64)
			if err != nil {
				return err
			}
			px, err := vmmos.NewParallax(h, pxDom, dd, 128)
			if err != nil {
				return err
			}
			if !env.Armed {
				if _, err := px.AttachClient(gk, 64); err != nil {
					return err
				}
			}
			_, err = px.Snapshot(gk.Dom.ID)
			return err
		},
	})
}
