package scenario

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"vmmk/internal/core"
	"vmmk/internal/hw"
)

// Row statuses. Every status is one of these three strings, so downstream
// tooling can switch on them.
const (
	StatusPass = "pass"
	StatusFail = "fail"
	StatusSkip = "skip"
)

// RowResult is one row's outcome: the row's declaration echoed back plus
// the status and, for non-pass rows, the detail.
type RowResult struct {
	ID        string
	Subsystem string
	Fault     string
	Expect    string
	Status    string
	Detail    string
}

// skipError marks a row that declined to run (Skip).
type skipError struct{ reason string }

func (e *skipError) Error() string { return "skipped: " + e.reason }

// Skip returns the error a Run function reports to mark its row skipped
// (e.g. a row needing a machine shape the harness cannot provide).
func Skip(reason string) error { return &skipError{reason: reason} }

// Options parameterises a matrix run.
type Options struct {
	// Parallel caps rows in flight (<= 0: GOMAXPROCS). Results are
	// byte-identical at any width.
	Parallel int
	// IDs selects a subset of rows, run in the order given; empty runs the
	// whole matrix in ID order.
	IDs []string
}

// Run executes the matrix and returns one result per row, in row order.
// Each row runs both legs — disarmed control first (the identical path with
// injection off must pass cleanly), then armed (the fault must produce the
// declared outcome) — on machines acquired from the worker's pool.
func Run(opts Options) ([]RowResult, error) {
	var rows []S
	if len(opts.IDs) == 0 {
		rows = Rows()
	} else {
		for _, id := range opts.IDs {
			s, ok := Lookup(id)
			if !ok {
				return nil, fmt.Errorf("unknown scenario %q (try 'scenarios list')", id)
			}
			rows = append(rows, s)
		}
	}
	r := core.NewRunner(opts.Parallel)
	return core.RunCells(r, len(rows), func(ctx context.Context, i int) (RowResult, error) {
		return execute(ctx, rows[i]), nil
	})
}

// execute runs one row's two legs and folds them into a result. When the
// row declares a Compare, both legs' Envs are retained and the cross-leg
// invariant is graded after both legs pass on their own.
func execute(ctx context.Context, s S) RowResult {
	res := RowResult{
		ID: s.ID, Subsystem: s.Subsystem, Fault: s.Fault,
		Expect: s.Expect.Desc, Status: StatusPass,
	}
	var legs [2]*Env
	for i, armed := range []bool{false, true} {
		env, detail, skip := runLeg(ctx, s, armed)
		if skip != "" {
			res.Status, res.Detail = StatusSkip, skip
			return res
		}
		if detail != "" {
			res.Status, res.Detail = StatusFail, detail
			return res
		}
		legs[i] = env
	}
	if s.Expect.Compare != nil {
		// Both legs' machines are released by now; Compare grades only
		// what the Runs copied into State.
		if cerr := s.Expect.Compare(legs[0], legs[1]); cerr != nil {
			res.Status, res.Detail = StatusFail, fmt.Sprintf("cross-leg compare: %v", cerr)
		}
	}
	return res
}

// runLeg executes one leg of a row on a pooled machine, grades it, and
// returns the leg's Env for cross-leg comparison.
func runLeg(ctx context.Context, s S, armed bool) (env *Env, detail, skip string) {
	cfg := s.Cfg
	if cfg == nil {
		cfg = DefaultConfig
	}
	m, release := core.AcquireMachine(ctx, hw.X86(), cfg)
	releases := []func(){release}
	defer func() {
		// Release in reverse acquisition order, mirroring the pool's
		// LIFO reuse so repeated legs see the same machine sequence.
		for i := len(releases) - 1; i >= 0; i-- {
			releases[i]()
		}
	}()
	env = &Env{M: m, Armed: armed}
	env.acquire = func(c *hw.MachineConfig) *hw.Machine {
		extra, rel := core.AcquireMachine(ctx, hw.X86(), c)
		releases = append(releases, rel)
		return extra
	}
	err, panicMsg := invoke(s.Run, env)
	var sk *skipError
	if errors.As(err, &sk) {
		return env, "", sk.reason
	}
	leg := "control"
	if armed {
		leg = "armed"
	}
	switch {
	case armed && s.Expect.Panic != "":
		if panicMsg == "" {
			return env, fmt.Sprintf("armed run completed (err=%v), want panic containing %q", err, s.Expect.Panic), ""
		}
		if !strings.Contains(panicMsg, s.Expect.Panic) {
			return env, fmt.Sprintf("armed run panicked with %q, want substring %q", panicMsg, s.Expect.Panic), ""
		}
	case panicMsg != "":
		return env, fmt.Sprintf("%s run panicked: %s", leg, panicMsg), ""
	case armed && s.Expect.Err != nil:
		if err == nil {
			return env, fmt.Sprintf("armed run returned nil, want %v", s.Expect.Err), ""
		}
		if !errors.Is(err, s.Expect.Err) {
			return env, fmt.Sprintf("armed run returned %q, want %v", err, s.Expect.Err), ""
		}
	case err != nil:
		return env, fmt.Sprintf("%s run failed: %v", leg, err), ""
	}
	if s.Expect.Check != nil {
		if cerr := s.Expect.Check(env); cerr != nil {
			return env, fmt.Sprintf("%s post-mortem check: %v", leg, cerr), ""
		}
	}
	return env, "", ""
}

// invoke runs fn with panics converted to a message — expected panics are a
// legitimate outcome (hw contract violations), and an unexpected panic in
// one row must fail that row, not the whole matrix.
func invoke(fn func(*Env) error, env *Env) (err error, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	return fn(env), ""
}

// Summarize counts results by status.
func Summarize(results []RowResult) (pass, fail, skip int) {
	for _, r := range results {
		switch r.Status {
		case StatusPass:
			pass++
		case StatusSkip:
			skip++
		default:
			fail++
		}
	}
	return pass, fail, skip
}

// Report renders run results through the core.Result model: the matrix
// table plus a per-subsystem summary, so `vmmklab scenarios` emits the same
// text/CSV/JSON shapes as the experiments.
func Report(results []RowResult) *core.Result {
	matrix := core.NewResultTable("scenario matrix",
		core.Col("id", ""), core.Col("subsystem", ""), core.Col("fault", ""),
		core.Col("expected", ""), core.Col("status", ""), core.Col("detail", ""))
	bySub := map[string]*[3]int{}
	for _, r := range results {
		matrix.AddRow(r.ID, r.Subsystem, r.Fault, r.Expect, r.Status, r.Detail)
		c := bySub[r.Subsystem]
		if c == nil {
			c = &[3]int{}
			bySub[r.Subsystem] = c
		}
		switch r.Status {
		case StatusPass:
			c[0]++
		case StatusFail:
			c[1]++
		default:
			c[2]++
		}
	}
	summary := core.NewResultTable("rows by subsystem",
		core.Col("subsystem", ""), core.Col("rows", ""), core.Col("pass", ""),
		core.Col("fail", ""), core.Col("skip", ""))
	subs := make([]string, 0, len(bySub))
	for sub := range bySub {
		subs = append(subs, sub)
	}
	sort.Strings(subs)
	for _, sub := range subs {
		c := bySub[sub]
		summary.AddRow(sub, c[0]+c[1]+c[2], c[0], c[1], c[2])
	}
	res := core.NewResult(matrix, summary)
	res.Experiment = "scenarios"
	res.Title = "fault-injection scenario matrix"
	res.Params = core.Params{}
	return res
}

// ListReport renders the matrix declaration (no execution) as a core.Result
// — the `vmmklab scenarios list` output.
func ListReport() *core.Result {
	t := core.NewResultTable("scenario matrix",
		core.Col("id", ""), core.Col("subsystem", ""),
		core.Col("fault", ""), core.Col("expected", ""))
	for _, s := range Rows() {
		t.AddRow(s.ID, s.Subsystem, s.Fault, s.Expect.Desc)
	}
	res := core.NewResult(t)
	res.Experiment = "scenarios"
	res.Title = "fault-injection scenario matrix"
	res.Params = core.Params{}
	return res
}
