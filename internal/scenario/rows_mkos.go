package scenario

import (
	"bytes"
	"fmt"

	"vmmk/internal/hw/dev"
	"vmmk/internal/mk"
	"vmmk/internal/mkos"
)

// mkos rows: the user-level OS personality on the microkernel. The driver
// runs as an ordinary thread, so its failures are IPC failures — and its
// request validation (partition bounds, grants, well-formedness) is the
// user-level twin of the hypervisor's monitor checks.

// mkosState carries the kernel, driver and client to Check.
type mkosState struct {
	k      *mk.Kernel
	drv    *mkos.BlkDriver
	client mk.ThreadID
}

// mkosBlkRig builds kernel + disk + block driver + a client thread.
func mkosBlkRig(env *Env) (*mkosState, error) {
	k := mk.New(env.M)
	disk := dev.NewDisk(env.M, dev.DiskConfig{IRQ: 3, Blocks: 512, Latency: 2000})
	drv, err := mkos.NewBlkDriver(k, disk)
	if err != nil {
		return nil, err
	}
	sp, err := k.NewSpace("client", mk.NilThread)
	if err != nil {
		return nil, err
	}
	cl := k.NewThread(sp, "client", 5, nil)
	return &mkosState{k: k, drv: drv, client: cl.ID}, nil
}

func init() {
	Register(S{
		ID:        "mkos/blk-read-beyond-partition",
		Subsystem: "mkos",
		Fault:     "block read at offset 100 of a 64-block partition (disk itself is larger)",
		Expect: Outcome{
			Desc: "ErrBadRequest; partition isolation holds inside the disk",
			Err:  mkos.ErrBadRequest,
		},
		Run: func(env *Env) error {
			st, err := mkosBlkRig(env)
			if err != nil {
				return err
			}
			st.drv.GrantPartition(st.client, 64)
			bc := st.drv.NewBlkClient(st.client, 64)
			payload := []byte("partition block five")
			if err := bc.Write(5, payload); err != nil {
				return err
			}
			block := uint64(5)
			if env.Armed {
				block = 100 // beyond the partition, within the disk
			}
			got, err := bc.Read(block)
			if err != nil {
				return err
			}
			if !bytes.Equal(got[:len(payload)], payload) {
				return fmt.Errorf("read back %q", got[:len(payload)])
			}
			return nil
		},
	})

	Register(S{
		ID:        "mkos/blk-request-without-partition",
		Subsystem: "mkos",
		Fault:     "block request from a thread that was never granted a partition",
		Expect: Outcome{
			Desc: "ErrNoBlock",
			Err:  mkos.ErrNoBlock,
		},
		Run: func(env *Env) error {
			st, err := mkosBlkRig(env)
			if err != nil {
				return err
			}
			st.drv.GrantPartition(st.client, 64)
			sp, err := st.k.NewSpace("intruder", mk.NilThread)
			if err != nil {
				return err
			}
			intruder := st.k.NewThread(sp, "intruder", 5, nil)
			caller := st.client
			if env.Armed {
				caller = intruder.ID
			}
			_, err = st.k.Call(caller, st.drv.Thread.ID,
				mk.Msg{Label: mkos.LabelBlkRead, Words: []uint64{1}})
			return err
		},
	})

	Register(S{
		ID:        "mkos/blk-driver-killed-mid-service",
		Subsystem: "mkos",
		Fault:     "disk driver thread killed between client requests",
		Expect: Outcome{
			Desc: "ErrDeadPartner; client and kernel unharmed",
			Err:  mk.ErrDeadPartner,
			Check: func(env *Env) error {
				st := env.State.(*mkosState)
				if !st.k.Alive(st.client) {
					return fmt.Errorf("client died with the driver")
				}
				return mkKernelStillWorks(st.k)
			},
		},
		Run: func(env *Env) error {
			st, err := mkosBlkRig(env)
			if err != nil {
				return err
			}
			env.State = st
			st.drv.GrantPartition(st.client, 64)
			bc := st.drv.NewBlkClient(st.client, 64)
			if err := bc.Write(3, []byte("before the crash")); err != nil {
				return err
			}
			if env.Armed {
				st.k.KillThread(st.drv.Thread.ID)
			}
			_, err = bc.Read(3)
			return err
		},
	})

	Register(S{
		ID:        "mkos/blk-malformed-request",
		Subsystem: "mkos",
		Fault:     "block request IPC with no block number word",
		Expect: Outcome{
			Desc: "ErrBadRequest; driver rejects and keeps serving",
			Err:  mkos.ErrBadRequest,
			Check: func(env *Env) error {
				st := env.State.(*mkosState)
				if _, err := st.k.Call(st.client, st.drv.Thread.ID,
					mk.Msg{Label: mkos.LabelBlkRead, Words: []uint64{2}}); err != nil {
					return fmt.Errorf("driver wedged after malformed request: %w", err)
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			st, err := mkosBlkRig(env)
			if err != nil {
				return err
			}
			env.State = st
			st.drv.GrantPartition(st.client, 64)
			words := []uint64{1}
			if env.Armed {
				words = nil // no block number
			}
			_, err = st.k.Call(st.client, st.drv.Thread.ID,
				mk.Msg{Label: mkos.LabelBlkRead, Words: words})
			return err
		},
	})

	Register(S{
		ID:        "mkos/syscall-unknown-process",
		Subsystem: "mkos",
		Fault:     "syscall issued with a PID the OS server never spawned",
		Expect: Outcome{
			Desc: "ErrNoSuchProcess",
			Err:  mkos.ErrNoSuchProcess,
		},
		Run: func(env *Env) error {
			k := mk.New(env.M)
			srv, err := mkos.NewOSServer(k, "linux")
			if err != nil {
				return err
			}
			p, err := srv.Spawn("init")
			if err != nil {
				return err
			}
			pid := p.PID
			if env.Armed {
				pid = mkos.PID(999)
			}
			ret, err := srv.Syscall(pid, mkos.SysGetPID)
			if err != nil {
				return err
			}
			if len(ret) != 1 || ret[0] != uint64(p.PID) {
				return fmt.Errorf("getpid returned %v", ret)
			}
			return nil
		},
	})
}
