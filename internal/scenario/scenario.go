package scenario

import (
	"fmt"
	"sort"
	"strings"

	"vmmk/internal/hw"
	"vmmk/internal/simrand"
)

// Subsystems every scenario row must name — the layers of the simulator,
// each of which contributes negative scenarios to the matrix.
var Subsystems = []string{"cluster", "fslite", "hw", "mk", "mkos", "vmm", "vmmos"}

// Outcome is the typed expected result of a scenario's armed run: a
// sentinel error, an expected panic, a post-mortem state predicate, and/or
// a cross-leg comparison. Desc is the short human-readable label the
// listings and result tables show. At least one of Err, Panic, Check or
// Compare must be set (enforced at registration and statically by
// vmmklint's scenrow analyzer).
type Outcome struct {
	// Desc is the short label for the expected outcome ("ErrGrantRevoked",
	// "panic: CPU index out of range", "bitmap consistent, old data intact").
	Desc string
	// Err, when non-nil, is the sentinel the armed Run must return,
	// matched with errors.Is. When nil, the armed Run must return nil.
	Err error
	// Panic, when non-empty, is a substring the armed Run must panic with.
	// Expected panics are hw-contract violations ("always a kernel bug").
	Panic string
	// Check, when non-nil, is the post-mortem state predicate: it runs
	// after Run in both the armed and the disarmed leg and must return nil.
	Check func(env *Env) error
	// Compare, when non-nil, is the cross-leg trace invariant: it runs once
	// after both legs pass their own grading, with the control and armed
	// Envs. By then the legs' machines are back in the pool, so Compare
	// must consult only what Run copied into Env.State (recorder deltas,
	// counts, costs) — never a live *hw.Machine.
	Compare func(control, armed *Env) error
}

// S is one scenario row of the matrix.
type S struct {
	// ID is "<subsystem>/<slug>", unique across the matrix.
	ID string
	// Subsystem is the layer under test: one of Subsystems.
	Subsystem string
	// Fault is the one-line description of the injected fault.
	Fault string
	// Cfg shapes the machine the row runs on; nil means DefaultConfig.
	Cfg *hw.MachineConfig
	// Expect is the typed expected outcome of the armed run.
	Expect Outcome
	// Run builds the system under test and triggers the fault when
	// env.Armed — and must run the identical path, injection disabled,
	// when not. The harness executes both legs.
	Run func(env *Env) error
}

// Env is the per-leg execution environment the harness hands a row.
type Env struct {
	// M is the pooled machine the leg runs on.
	M *hw.Machine
	// Armed reports whether the fault is injected this leg. Rows branch on
	// it to enable their fault hooks; everything else must be identical.
	Armed bool
	// State carries whatever Run built (the stack under test) to the
	// post-mortem Check. Each leg gets a fresh Env, so no state crosses
	// legs or repeated matrix runs.
	State any

	// acquire hands out an extra pooled machine (migration rows need a
	// destination host). The harness installs it and releases every
	// machine when the leg ends.
	acquire func(cfg *hw.MachineConfig) *hw.Machine
}

// Machine acquires an additional pooled machine for this leg (beyond
// env.M) — e.g. the destination host of a migration row. It is released
// back to the worker's pool with the rest of the leg's machines.
func (e *Env) Machine(cfg *hw.MachineConfig) *hw.Machine {
	if cfg == nil {
		cfg = DefaultConfig
	}
	return e.acquire(cfg)
}

// DefaultConfig is the machine shape rows get when they declare no Cfg.
var DefaultConfig = &hw.MachineConfig{Frames: 1024, IRQLines: 16}

// registry holds the matrix rows, kept sorted by ID.
var registry []S

// Register adds one row to the matrix (called from the rows_*.go init
// functions). Malformed or duplicate rows panic at init: the matrix is
// declarative and must be wholly well-formed before anything runs.
func Register(s S) {
	if s.ID == "" || s.Subsystem == "" || s.Fault == "" {
		panic(fmt.Sprintf("scenario: row %+v missing id, subsystem or fault", s))
	}
	if !strings.HasPrefix(s.ID, s.Subsystem+"/") {
		panic(fmt.Sprintf("scenario: id %q must start with %q", s.ID, s.Subsystem+"/"))
	}
	known := false
	for _, sub := range Subsystems {
		if s.Subsystem == sub {
			known = true
		}
	}
	if !known {
		panic(fmt.Sprintf("scenario: %s names unknown subsystem %q", s.ID, s.Subsystem))
	}
	if s.Expect.Desc == "" || (s.Expect.Err == nil && s.Expect.Panic == "" &&
		s.Expect.Check == nil && s.Expect.Compare == nil) {
		panic(fmt.Sprintf("scenario: %s declares no expected outcome", s.ID))
	}
	if s.Run == nil {
		panic(fmt.Sprintf("scenario: %s has no Run", s.ID))
	}
	for _, r := range registry {
		if r.ID == s.ID {
			panic(fmt.Sprintf("scenario: duplicate id %q", s.ID))
		}
	}
	registry = append(registry, s)
	sort.Slice(registry, func(i, j int) bool { return registry[i].ID < registry[j].ID })
}

// Rows returns the full matrix, sorted by ID.
func Rows() []S {
	return append([]S(nil), registry...)
}

// Lookup returns the row with the given id.
func Lookup(id string) (S, bool) {
	for _, s := range registry {
		if s.ID == id {
			return s, true
		}
	}
	return S{}, false
}

// ShuffledIDs returns every row ID in the seeded pseudo-random order the
// `scenarios -shuffle` mode runs them in. The permutation is a pure
// function of the seed, so a shuffled run is exactly reproducible — the
// point is to prove no row depends on its neighbours' pool residue, not to
// add nondeterminism.
func ShuffledIDs(seed uint64) []string {
	rows := Rows()
	perm := simrand.New(seed).Perm(len(rows))
	ids := make([]string, len(rows))
	for i, j := range perm {
		ids[i] = rows[j].ID
	}
	return ids
}
