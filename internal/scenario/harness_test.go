package scenario

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestMatrixAllPass runs the whole matrix and requires every row to pass —
// this is the repo's negative-testing gate, so a single failing row is a
// real bug (in the row or in the subsystem it probes).
func TestMatrixAllPass(t *testing.T) {
	results, err := Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Status != StatusPass {
			t.Errorf("%s: %s (%s)", r.ID, r.Status, r.Detail)
		}
	}
	pass, fail, skip := Summarize(results)
	t.Logf("matrix: %d pass, %d fail, %d skip", pass, fail, skip)
}

// TestMatrixCoverage pins the matrix floor: at least 30 rows overall and at
// least 3 per subsystem, so no layer of the stack loses its negative tests.
func TestMatrixCoverage(t *testing.T) {
	rows := Rows()
	if len(rows) < 30 {
		t.Errorf("matrix has %d rows, want >= 30", len(rows))
	}
	perSub := map[string]int{}
	for _, s := range rows {
		perSub[s.Subsystem]++
	}
	for _, sub := range Subsystems {
		if perSub[sub] < 3 {
			t.Errorf("subsystem %s has %d rows, want >= 3", sub, perSub[sub])
		}
	}
}

// TestMatrixDeterministic requires serial and parallel runs to produce
// byte-identical results — the harness's determinism contract, which the CI
// scenarios job and the golden files both lean on.
func TestMatrixDeterministic(t *testing.T) {
	serial, err := Run(Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("serial and parallel runs differ:\nserial: %+v\nwide:   %+v", serial, wide)
	}
	js, err := Report(serial).JSON()
	if err != nil {
		t.Fatal(err)
	}
	jw, err := Report(wide).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(js) != string(jw) {
		t.Fatal("serial and parallel JSON reports differ")
	}
}

// TestRunSubset runs a hand-picked subset and checks results come back in
// the order requested, not registry order.
func TestRunSubset(t *testing.T) {
	ids := []string{"vmm/hypercall-dead-domain", "fslite/read-device-error"}
	results, err := Run(Options{IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("got %d results, want %d", len(results), len(ids))
	}
	for i, id := range ids {
		if results[i].ID != id {
			t.Errorf("result %d is %s, want %s", i, results[i].ID, id)
		}
		if results[i].Status != StatusPass {
			t.Errorf("%s: %s (%s)", id, results[i].Status, results[i].Detail)
		}
	}
}

// TestRunUnknownID requires subset selection to reject ids the matrix does
// not declare.
func TestRunUnknownID(t *testing.T) {
	_, err := Run(Options{IDs: []string{"vmm/no-such-row"}})
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("got %v, want unknown-scenario error", err)
	}
}

// fabricate builds a minimal well-formed row around the given hooks so the
// meta-tests below can probe the harness's grading logic directly.
func fabricate(expect Outcome, run func(*Env) error) S {
	return S{
		ID: "hw/fabricated", Subsystem: "hw", Fault: "meta-test fixture",
		Expect: expect, Run: run,
	}
}

// TestHarnessFaultMustFire: a row whose armed leg returns nil when a
// sentinel was declared must fail — a fault that no longer fires is a
// regression in the test, not a pass.
func TestHarnessFaultMustFire(t *testing.T) {
	sentinel := errors.New("sentinel")
	res := execute(context.Background(), fabricate(
		Outcome{Desc: "sentinel", Err: sentinel},
		func(env *Env) error { return nil }, // fault never fires
	))
	if res.Status != StatusFail || !strings.Contains(res.Detail, "armed run returned nil") {
		t.Fatalf("got %s (%s), want fail on silent armed leg", res.Status, res.Detail)
	}
}

// TestHarnessWrongError: the armed leg returning a different error than
// declared must fail the row.
func TestHarnessWrongError(t *testing.T) {
	res := execute(context.Background(), fabricate(
		Outcome{Desc: "sentinel", Err: errors.New("declared")},
		func(env *Env) error {
			if env.Armed {
				return errors.New("some other failure")
			}
			return nil
		},
	))
	if res.Status != StatusFail || !strings.Contains(res.Detail, "want declared") {
		t.Fatalf("got %s (%s), want fail on wrong error", res.Status, res.Detail)
	}
}

// TestHarnessControlMustPass: the disarmed leg is the row's own control —
// if the identical path fails with injection off, the row is broken and
// the armed leg's result means nothing.
func TestHarnessControlMustPass(t *testing.T) {
	sentinel := errors.New("sentinel")
	res := execute(context.Background(), fabricate(
		Outcome{Desc: "sentinel", Err: sentinel},
		func(env *Env) error { return sentinel }, // fails both legs
	))
	if res.Status != StatusFail || !strings.Contains(res.Detail, "control run failed") {
		t.Fatalf("got %s (%s), want control-leg failure", res.Status, res.Detail)
	}
}

// TestHarnessUnexpectedPanic: a panic in a row that declared no panic must
// fail that row (and only that row).
func TestHarnessUnexpectedPanic(t *testing.T) {
	res := execute(context.Background(), fabricate(
		Outcome{Desc: "sentinel", Err: errors.New("declared")},
		func(env *Env) error { panic("boom") },
	))
	if res.Status != StatusFail || !strings.Contains(res.Detail, "panicked: boom") {
		t.Fatalf("got %s (%s), want panic converted to failure", res.Status, res.Detail)
	}
}

// TestHarnessExpectedPanic: a declared panic substring must match the armed
// leg's panic, and the control leg must still run clean.
func TestHarnessExpectedPanic(t *testing.T) {
	res := execute(context.Background(), fabricate(
		Outcome{Desc: "panic: boom", Panic: "boom"},
		func(env *Env) error {
			if env.Armed {
				panic("big boom here")
			}
			return nil
		},
	))
	if res.Status != StatusPass {
		t.Fatalf("got %s (%s), want pass", res.Status, res.Detail)
	}
}

// TestHarnessPanicMismatch: an armed panic with the wrong message must fail.
func TestHarnessPanicMismatch(t *testing.T) {
	res := execute(context.Background(), fabricate(
		Outcome{Desc: "panic: boom", Panic: "boom"},
		func(env *Env) error {
			if env.Armed {
				panic("thud")
			}
			return nil
		},
	))
	if res.Status != StatusFail || !strings.Contains(res.Detail, "want substring") {
		t.Fatalf("got %s (%s), want panic-substring mismatch", res.Status, res.Detail)
	}
}

// TestHarnessCheckRunsBothLegs: the post-mortem Check must run (and can
// fail) in the control leg too — predicates assert both sides of the fault.
func TestHarnessCheckRunsBothLegs(t *testing.T) {
	var legs []bool
	res := execute(context.Background(), fabricate(
		Outcome{Desc: "check", Check: func(env *Env) error {
			legs = append(legs, env.Armed)
			return nil
		}},
		func(env *Env) error { return nil },
	))
	if res.Status != StatusPass {
		t.Fatalf("got %s (%s), want pass", res.Status, res.Detail)
	}
	if !reflect.DeepEqual(legs, []bool{false, true}) {
		t.Fatalf("check ran for legs %v, want [false true]", legs)
	}

	res = execute(context.Background(), fabricate(
		Outcome{Desc: "check", Check: func(env *Env) error {
			if !env.Armed {
				return fmt.Errorf("control state wrong")
			}
			return nil
		}},
		func(env *Env) error { return nil },
	))
	if res.Status != StatusFail || !strings.Contains(res.Detail, "control post-mortem check") {
		t.Fatalf("got %s (%s), want control-leg check failure", res.Status, res.Detail)
	}
}

// TestHarnessSkip: a row that returns Skip is reported as skipped, with the
// reason, and does not fail the matrix.
func TestHarnessSkip(t *testing.T) {
	res := execute(context.Background(), fabricate(
		Outcome{Desc: "never", Err: errors.New("never")},
		func(env *Env) error { return Skip("needs 8 CPUs") },
	))
	if res.Status != StatusSkip || res.Detail != "needs 8 CPUs" {
		t.Fatalf("got %s (%s), want skip with reason", res.Status, res.Detail)
	}
}

// TestHarnessCompare: the cross-leg Compare runs once after both legs pass,
// with the control Env first and the armed Env second, and its error fails
// the row with a cross-leg detail.
func TestHarnessCompare(t *testing.T) {
	ran := 0
	res := execute(context.Background(), fabricate(
		Outcome{Desc: "trace invariant", Compare: func(control, armed *Env) error {
			ran++
			if control.Armed || !armed.Armed {
				return fmt.Errorf("legs handed to Compare in the wrong order")
			}
			return nil
		}},
		func(env *Env) error {
			env.State = env.Armed
			return nil
		},
	))
	if res.Status != StatusPass {
		t.Fatalf("got %s (%s), want pass", res.Status, res.Detail)
	}
	if ran != 1 {
		t.Fatalf("Compare ran %d times, want 1", ran)
	}

	res = execute(context.Background(), fabricate(
		Outcome{Desc: "trace invariant", Compare: func(control, armed *Env) error {
			return fmt.Errorf("delta out of bounds")
		}},
		func(env *Env) error { return nil },
	))
	if res.Status != StatusFail || !strings.Contains(res.Detail, "cross-leg compare: delta out of bounds") {
		t.Fatalf("got %s (%s), want cross-leg compare failure", res.Status, res.Detail)
	}
}

// TestHarnessCompareSkippedOnLegFailure: a row whose own legs fail never
// reaches Compare — the per-leg detail, not a confusing cross-leg one, is
// what the matrix reports.
func TestHarnessCompareSkippedOnLegFailure(t *testing.T) {
	ran := false
	res := execute(context.Background(), fabricate(
		Outcome{Desc: "trace invariant", Compare: func(control, armed *Env) error {
			ran = true
			return nil
		}},
		func(env *Env) error { return fmt.Errorf("leg broke") },
	))
	if res.Status != StatusFail || !strings.Contains(res.Detail, "control run failed") {
		t.Fatalf("got %s (%s), want control-leg failure", res.Status, res.Detail)
	}
	if ran {
		t.Fatal("Compare ran despite a failed leg")
	}
}

// TestShuffledIDs pins the -shuffle contract: a seeded shuffle is a
// permutation of the whole matrix, the same seed always yields the same
// order, and the order actually differs from the sorted registry order.
func TestShuffledIDs(t *testing.T) {
	ids := ShuffledIDs(7)
	if len(ids) != len(Rows()) {
		t.Fatalf("shuffle has %d ids, matrix %d", len(ids), len(Rows()))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("shuffle repeats %s", id)
		}
		seen[id] = true
		if _, ok := Lookup(id); !ok {
			t.Fatalf("shuffle invented %s", id)
		}
	}
	if !reflect.DeepEqual(ids, ShuffledIDs(7)) {
		t.Fatal("same seed produced different orders")
	}
	sorted := make([]string, 0, len(Rows()))
	for _, s := range Rows() {
		sorted = append(sorted, s.ID)
	}
	if reflect.DeepEqual(ids, sorted) {
		t.Fatal("seed 7 left the matrix in sorted order — shuffle is a no-op")
	}
}

// TestReportShape pins the report's table layout: the matrix table plus the
// per-subsystem summary, with one summary line per subsystem present.
func TestReportShape(t *testing.T) {
	results := []RowResult{
		{ID: "hw/a", Subsystem: "hw", Fault: "f", Expect: "e", Status: StatusPass},
		{ID: "hw/b", Subsystem: "hw", Fault: "f", Expect: "e", Status: StatusFail, Detail: "d"},
		{ID: "mk/a", Subsystem: "mk", Fault: "f", Expect: "e", Status: StatusSkip, Detail: "s"},
	}
	res := Report(results)
	if len(res.Tables) != 2 {
		t.Fatalf("report has %d tables, want 2", len(res.Tables))
	}
	if n := len(res.Tables[0].Rows); n != 3 {
		t.Errorf("matrix table has %d rows, want 3", n)
	}
	if n := len(res.Tables[1].Rows); n != 2 {
		t.Errorf("summary table has %d rows, want 2 (hw, mk)", n)
	}
	text := res.Text()
	for _, want := range []string{"hw/a", "scenario matrix", "rows by subsystem"} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q", want)
		}
	}
}
