package scenario

import (
	"bytes"
	"fmt"

	"vmmk/internal/fslite"
)

// fslite rows: device failures under the filesystem. The property every row
// guards is crash consistency — a failed write must leave the old contents,
// the allocation bitmap and the inode table in agreement (WriteFile is
// copy-on-write precisely so this holds).

// fsState carries the filesystem under test from Run to the post-mortem
// checks.
type fsState struct {
	fs    *fslite.FS
	fd    *FaultDev
	inner *MemDev
	free0 uint64 // FreeBlocks before the faulted operation
	old   []byte // the file's committed contents before the fault
	fresh []byte // the contents the non-faulted write installs
}

const fsBlock = 512

// fsFill returns n blocks of deterministic content tagged by c.
func fsFill(c byte, blocks int) []byte {
	b := make([]byte, blocks*fsBlock)
	for i := range b {
		b[i] = c
	}
	return b
}

// fsCheckIntact verifies consistency plus the armed/disarmed content split:
// armed legs must still read the old contents, control legs the new.
func fsCheckIntact(env *Env) error {
	st := env.State.(*fsState)
	if err := st.fs.CheckConsistency(); err != nil {
		return err
	}
	want := st.fresh
	if env.Armed {
		want = st.old
		if got := st.fs.FreeBlocks(); got != st.free0 {
			return fmt.Errorf("free blocks %d after rollback, want %d", got, st.free0)
		}
	}
	got, err := st.fs.ReadFile("f")
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("file contents changed: got %d bytes tagged %q", len(got), got[:1])
	}
	return nil
}

func init() {
	Register(S{
		ID:        "fslite/write-device-error-midfile",
		Subsystem: "fslite",
		Fault:     "block device dies on the 2nd write of a 3-block file rewrite",
		Expect: Outcome{
			Desc:  "ErrDeviceFault; old contents, bitmap and free count intact",
			Err:   ErrDeviceFault,
			Check: fsCheckIntact,
		},
		Run: func(env *Env) error {
			inner := NewMemDev(fsBlock)
			fd := &FaultDev{Inner: inner}
			fs, err := fslite.Mkfs(fd, fsBlock, 128)
			if err != nil {
				return err
			}
			st := &fsState{fs: fs, fd: fd, inner: inner, old: fsFill('a', 2), fresh: fsFill('b', 3)}
			if err := fs.WriteFile("f", st.old); err != nil {
				return err
			}
			st.free0 = fs.FreeBlocks()
			env.State = st
			if env.Armed {
				fd.FailWrite = fd.Writes() + 2
			}
			return fs.WriteFile("f", st.fresh)
		},
	})

	Register(S{
		ID:        "fslite/write-torn-multiblock",
		Subsystem: "fslite",
		Fault:     "torn write: the 3rd block of a rewrite lands half-written, then the device errors",
		Expect: Outcome{
			Desc: "ErrDeviceFault; in-memory and on-disk images both show the old file",
			Err:  ErrDeviceFault,
			Check: func(env *Env) error {
				if err := fsCheckIntact(env); err != nil {
					return err
				}
				// Remount from the raw device: the torn block hit a fresh
				// (copy-on-write) block, so the on-disk metadata still
				// describes the old file in both legs' failure story —
				// armed shows old, control committed the new image.
				st := env.State.(*fsState)
				fs2, err := fslite.Mount(st.inner, fsBlock)
				if err != nil {
					return err
				}
				if err := fs2.CheckConsistency(); err != nil {
					return fmt.Errorf("remounted image: %w", err)
				}
				want := st.fresh
				if env.Armed {
					want = st.old
				}
				got, err := fs2.ReadFile("f")
				if err != nil {
					return err
				}
				if !bytes.Equal(got, want) {
					return fmt.Errorf("remounted contents: got %d bytes tagged %q", len(got), got[:1])
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			inner := NewMemDev(fsBlock)
			fd := &FaultDev{Inner: inner, Torn: true}
			fs, err := fslite.Mkfs(fd, fsBlock, 128)
			if err != nil {
				return err
			}
			st := &fsState{fs: fs, fd: fd, inner: inner, old: fsFill('a', 2), fresh: fsFill('b', 3)}
			if err := fs.WriteFile("f", st.old); err != nil {
				return err
			}
			st.free0 = fs.FreeBlocks()
			env.State = st
			if env.Armed {
				fd.FailWrite = fd.Writes() + 3
			}
			return fs.WriteFile("f", st.fresh)
		},
	})

	Register(S{
		ID:        "fslite/write-no-space-midfile",
		Subsystem: "fslite",
		Fault:     "file data exceeds the blocks left on a nearly full disk",
		Expect: Outcome{
			Desc: "ErrNoSpace; partial allocation rolled back, first file untouched",
			Err:  fslite.ErrNoSpace,
			Check: func(env *Env) error {
				st := env.State.(*fsState)
				if err := st.fs.CheckConsistency(); err != nil {
					return err
				}
				got, err := st.fs.ReadFile("f")
				if err != nil {
					return err
				}
				if !bytes.Equal(got, st.old) {
					return fmt.Errorf("first file damaged: %d bytes", len(got))
				}
				if env.Armed {
					if free := st.fs.FreeBlocks(); free != st.free0 {
						return fmt.Errorf("free blocks %d after rollback, want %d", free, st.free0)
					}
					if size, err := st.fs.Stat("b"); err != nil || size != 0 {
						return fmt.Errorf("failed file has size %d (err %v), want 0", size, err)
					}
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			inner := NewMemDev(fsBlock)
			fd := &FaultDev{Inner: inner}
			fs, err := fslite.Mkfs(fd, fsBlock, 64)
			if err != nil {
				return err
			}
			st := &fsState{fs: fs, fd: fd, inner: inner, old: fsFill('a', 2)}
			if err := fs.WriteFile("f", st.old); err != nil {
				return err
			}
			// Fill until fewer free blocks remain than one max-size file,
			// so the armed demand cannot trip ErrFileTooBig instead. The
			// fillers are max-size themselves: blocks run out long before
			// the inode table does.
			maxBlocks := int(fs.MaxFileSize() / fsBlock)
			for i := 0; fs.FreeBlocks() >= uint64(maxBlocks); i++ {
				if err := fs.WriteFile(fmt.Sprintf("fill%d", i), fsFill('x', maxBlocks)); err != nil {
					return err
				}
			}
			st.free0 = fs.FreeBlocks()
			env.State = st
			blocks := int(st.free0) // fits exactly
			if env.Armed {
				blocks = int(st.free0) + 1 // one block over
			}
			return fs.WriteFile("b", fsFill('b', blocks))
		},
	})

	Register(S{
		ID:        "fslite/sync-torn-metadata",
		Subsystem: "fslite",
		Fault:     "device dies on the superblock write of the commit Sync",
		Expect: Outcome{
			Desc: "ErrDeviceFault; remount sees the pre-write image",
			Err:  ErrDeviceFault,
			Check: func(env *Env) error {
				st := env.State.(*fsState)
				// On-disk: the commit Sync died before any metadata block
				// landed, so a remount of the raw device shows the old
				// file (armed) or the committed new one (control).
				fs2, err := fslite.Mount(st.inner, fsBlock)
				if err != nil {
					return err
				}
				if err := fs2.CheckConsistency(); err != nil {
					return fmt.Errorf("remounted image: %w", err)
				}
				want := st.fresh
				if env.Armed {
					want = st.old
				}
				got, err := fs2.ReadFile("f")
				if err != nil {
					return err
				}
				if !bytes.Equal(got, want) {
					return fmt.Errorf("remounted contents: got %d bytes tagged %q", len(got), got[:1])
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			inner := NewMemDev(fsBlock)
			fd := &FaultDev{Inner: inner}
			fs, err := fslite.Mkfs(fd, fsBlock, 128)
			if err != nil {
				return err
			}
			st := &fsState{fs: fs, fd: fd, inner: inner, old: fsFill('a', 2), fresh: fsFill('b', 3)}
			if err := fs.WriteFile("f", st.old); err != nil {
				return err
			}
			env.State = st
			if env.Armed {
				// 3 data writes pass; the 4th write is Sync's first
				// metadata block (the superblock).
				fd.FailWrite = fd.Writes() + 4
			}
			return fs.WriteFile("f", st.fresh)
		},
	})

	Register(S{
		ID:        "fslite/read-device-error",
		Subsystem: "fslite",
		Fault:     "block device dies before a file read",
		Expect: Outcome{
			Desc: "ErrDeviceFault from ReadFile; metadata unharmed",
			Err:  ErrDeviceFault,
			Check: func(env *Env) error {
				return env.State.(*fsState).fs.CheckConsistency()
			},
		},
		Run: func(env *Env) error {
			inner := NewMemDev(fsBlock)
			fd := &FaultDev{Inner: inner}
			fs, err := fslite.Mkfs(fd, fsBlock, 64)
			if err != nil {
				return err
			}
			st := &fsState{fs: fs, fd: fd, inner: inner, old: fsFill('a', 3)}
			if err := fs.WriteFile("f", st.old); err != nil {
				return err
			}
			env.State = st
			if env.Armed {
				fd.FailRead = 1
			}
			got, err := fs.ReadFile("f")
			if err != nil {
				return err
			}
			if !bytes.Equal(got, st.old) {
				return fmt.Errorf("read back %d bytes, want %d", len(got), len(st.old))
			}
			return nil
		},
	})

	Register(S{
		ID:        "fslite/mount-corrupt-superblock",
		Subsystem: "fslite",
		Fault:     "superblock overwritten with garbage before mount",
		Expect: Outcome{
			Desc: "ErrNotFormatted from Mount",
			Err:  fslite.ErrNotFormatted,
		},
		Run: func(env *Env) error {
			inner := NewMemDev(fsBlock)
			fs, err := fslite.Mkfs(inner, fsBlock, 64)
			if err != nil {
				return err
			}
			content := fsFill('a', 2)
			if err := fs.WriteFile("f", content); err != nil {
				return err
			}
			if env.Armed {
				junk := make([]byte, fsBlock)
				for i := range junk {
					junk[i] = 0xFF
				}
				if err := inner.Write(0, junk); err != nil {
					return err
				}
			}
			fs2, err := fslite.Mount(inner, fsBlock)
			if err != nil {
				return err
			}
			got, err := fs2.ReadFile("f")
			if err != nil {
				return err
			}
			if !bytes.Equal(got, content) {
				return fmt.Errorf("mounted contents differ: %d bytes", len(got))
			}
			return nil
		},
	})
}
