package scenario

import (
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/mk"
)

// mk rows: microkernel IPC and fault-protocol failures. The recurring
// isolation property: one dead or misbehaving thread hurts only its IPC
// partners — the kernel and unrelated threads keep working, which every
// row's post-mortem check probes.

// mkState carries the kernel and the interesting thread ids to Check.
type mkState struct {
	k       *mk.Kernel
	client  mk.ThreadID
	victim  mk.ThreadID
	resumed bool
}

// mkEcho is the trivial server handler: reply with the request.
func mkEcho(_ *mk.Kernel, _ mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
	return msg, nil
}

// mkKernelStillWorks probes that the kernel survived the row's fault: a
// fresh space, thread and IPC round trip must all succeed.
func mkKernelStillWorks(k *mk.Kernel) error {
	sp, err := k.NewSpace("probe", mk.NilThread)
	if err != nil {
		return fmt.Errorf("post-fault NewSpace: %w", err)
	}
	srv := k.NewThread(sp, "probe-srv", 5, mkEcho)
	cl := k.NewThread(sp, "probe-cl", 5, nil)
	reply, err := k.Call(cl.ID, srv.ID, mk.Msg{Words: []uint64{42}})
	if err != nil {
		return fmt.Errorf("post-fault IPC: %w", err)
	}
	if len(reply.Words) != 1 || reply.Words[0] != 42 {
		return fmt.Errorf("post-fault IPC reply %v", reply.Words)
	}
	return nil
}

func init() {
	Register(S{
		ID:        "mk/ipc-dead-partner",
		Subsystem: "mk",
		Fault:     "server thread killed before the client's call",
		Expect: Outcome{
			Desc: "ErrDeadPartner; client and kernel unharmed",
			Err:  mk.ErrDeadPartner,
			Check: func(env *Env) error {
				st := env.State.(*mkState)
				if !st.k.Alive(st.client) {
					return fmt.Errorf("client died with its partner")
				}
				return mkKernelStillWorks(st.k)
			},
		},
		Run: func(env *Env) error {
			k := mk.New(env.M)
			sp, err := k.NewSpace("srv", mk.NilThread)
			if err != nil {
				return err
			}
			srv := k.NewThread(sp, "server", 5, mkEcho)
			cl := k.NewThread(sp, "client", 5, nil)
			env.State = &mkState{k: k, client: cl.ID}
			if env.Armed {
				k.KillThread(srv.ID)
			}
			reply, err := k.Call(cl.ID, srv.ID, mk.Msg{Words: []uint64{7}})
			if err != nil {
				return err
			}
			if len(reply.Words) != 1 || reply.Words[0] != 7 {
				return fmt.Errorf("echo reply %v", reply.Words)
			}
			return nil
		},
	})

	Register(S{
		ID:        "mk/ipc-oversized-payload",
		Subsystem: "mk",
		Fault:     "string transfer one byte over the 1 MiB IPC limit",
		Expect: Outcome{
			Desc: "ErrMsgTooLarge; partner still reachable afterwards",
			Err:  mk.ErrMsgTooLarge,
			Check: func(env *Env) error {
				st := env.State.(*mkState)
				if _, err := st.k.Call(st.client, st.victim, mk.Msg{Words: []uint64{1}}); err != nil {
					return fmt.Errorf("partner unreachable after oversized send: %w", err)
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			k := mk.New(env.M)
			sp, err := k.NewSpace("srv", mk.NilThread)
			if err != nil {
				return err
			}
			srv := k.NewThread(sp, "server", 5, mkEcho)
			cl := k.NewThread(sp, "client", 5, nil)
			env.State = &mkState{k: k, client: cl.ID, victim: srv.ID}
			size := 1024
			if env.Armed {
				size = 1<<20 + 1
			}
			_, err = k.Call(cl.ID, srv.ID, mk.Msg{Data: make([]byte, size)})
			return err
		},
	})

	Register(S{
		ID:        "mk/call-chain-overflow",
		Subsystem: "mk",
		Fault:     "two servers forward a call back and forth 40 levels deep",
		Expect: Outcome{
			Desc: "ErrCallDepth surfaces at the initiator; kernel unwinds cleanly",
			Check: func(env *Env) error {
				return mkKernelStillWorks(env.State.(*mkState).k)
			},
			Err: mk.ErrCallDepth,
		},
		Run: func(env *Env) error {
			k := mk.New(env.M)
			sp, err := k.NewSpace("pingpong", mk.NilThread)
			if err != nil {
				return err
			}
			var ta, tb *mk.Thread
			forward := func(self, partner **mk.Thread) mk.Handler {
				return func(k *mk.Kernel, _ mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
					depth := msg.Words[0]
					if depth == 0 {
						return mk.Msg{Words: []uint64{0}}, nil
					}
					return k.Call((*self).ID, (*partner).ID, mk.Msg{Words: []uint64{depth - 1}})
				}
			}
			ta = k.NewThread(sp, "ping", 5, forward(&ta, &tb))
			tb = k.NewThread(sp, "pong", 5, forward(&tb, &ta))
			cl := k.NewThread(sp, "client", 5, nil)
			env.State = &mkState{k: k, client: cl.ID}
			depth := uint64(4)
			if env.Armed {
				depth = 40
			}
			_, err = k.Call(cl.ID, ta.ID, mk.Msg{Words: []uint64{depth}})
			return err
		},
	})

	Register(S{
		ID:        "mk/page-fault-pager-dead",
		Subsystem: "mk",
		Fault:     "external pager killed before its client faults",
		Expect: Outcome{
			Desc: "ErrNoPager; the faulting thread survives, only its fault is lost",
			Err:  mk.ErrNoPager,
			Check: func(env *Env) error {
				st := env.State.(*mkState)
				if !st.k.Alive(st.victim) {
					return fmt.Errorf("faulting thread was killed; a missing pager must not be fatal")
				}
				return mkKernelStillWorks(st.k)
			},
		},
		Run: func(env *Env) error {
			k := mk.New(env.M)
			pgSp, err := k.NewSpace("pager", mk.NilThread)
			if err != nil {
				return err
			}
			window := hw.VPN(0x9000)
			pager := k.NewThread(pgSp, "pager", 5,
				func(k *mk.Kernel, _ mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
					vpn := hw.VPN(msg.Words[0])
					f, err := k.M.Mem.Alloc(pgSp.Component())
					if err != nil {
						return mk.Msg{}, err
					}
					k.MapPage(pgSp, window, f, hw.PermRW)
					item := mk.MapItem{SrcVPN: window, DstVPN: vpn, Count: 1, Perms: hw.PermRW}
					window++
					return mk.Msg{Label: mk.LabelPageFaultReply, Map: []mk.MapItem{item}}, nil
				})
			taskSp, err := k.NewSpace("task", pager.ID)
			if err != nil {
				return err
			}
			task := k.NewThread(taskSp, "task", 5, nil)
			env.State = &mkState{k: k, victim: task.ID}
			if env.Armed {
				k.KillThread(pager.ID)
			}
			pte, err := k.Touch(task.ID, 0x100, hw.PermR)
			if err != nil {
				return err
			}
			if pte.Frame == hw.NoFrame {
				return fmt.Errorf("pager resolved fault to no frame")
			}
			return nil
		},
	})

	Register(S{
		ID:        "mk/map-rights-amplification",
		Subsystem: "mk",
		Fault:     "map item tries to delegate read-write from a read-only mapping",
		Expect: Outcome{
			Desc: "ErrPermDenied; delegated rights can only narrow",
			Err:  mk.ErrPermDenied,
		},
		Run: func(env *Env) error {
			k := mk.New(env.M)
			sa, err := k.NewSpace("sender", mk.NilThread)
			if err != nil {
				return err
			}
			sb, err := k.NewSpace("receiver", mk.NilThread)
			if err != nil {
				return err
			}
			ta := k.NewThread(sa, "sender", 5, nil)
			// Reply must not echo the map items back: the receiver does
			// not hold 0x10, so an echoed item would fail the reply leg.
			tb := k.NewThread(sb, "receiver", 5,
				func(_ *mk.Kernel, _ mk.ThreadID, _ mk.Msg) (mk.Msg, error) {
					return mk.Msg{Words: []uint64{0}}, nil
				})
			f, err := k.M.Mem.Alloc(sa.Component())
			if err != nil {
				return err
			}
			k.MapPage(sa, 0x10, f, hw.PermR)
			perms := hw.PermR
			if env.Armed {
				perms = hw.PermRW // amplification attempt
			}
			_, err = k.Call(ta.ID, tb.ID, mk.Msg{
				Map: []mk.MapItem{{SrcVPN: 0x10, DstVPN: 0x20, Count: 1, Perms: perms}},
			})
			if err != nil {
				return err
			}
			if e, ok := sb.PT.Lookup(0x20); !ok || e.Frame != f {
				return fmt.Errorf("legitimate map item not applied")
			}
			return nil
		},
	})

	Register(S{
		ID:        "mk/exception-unhandled",
		Subsystem: "mk",
		Fault:     "thread raises an exception with no exception handler registered",
		Expect: Outcome{
			Desc: "faulting thread is killed, nothing else is; with a handler it resumes",
			Check: func(env *Env) error {
				st := env.State.(*mkState)
				alive := st.k.Alive(st.victim)
				if env.Armed {
					if st.resumed || alive {
						return fmt.Errorf("unhandled exception: resumed=%v alive=%v, want thread killed", st.resumed, alive)
					}
				} else if !st.resumed || !alive {
					return fmt.Errorf("handled exception: resumed=%v alive=%v, want resumed", st.resumed, alive)
				}
				return mkKernelStillWorks(st.k)
			},
		},
		Run: func(env *Env) error {
			k := mk.New(env.M)
			sp, err := k.NewSpace("task", mk.NilThread)
			if err != nil {
				return err
			}
			victim := k.NewThread(sp, "victim", 5, nil)
			if !env.Armed {
				hsp, err := k.NewSpace("exc", mk.NilThread)
				if err != nil {
					return err
				}
				eh := k.NewThread(hsp, "handler", 5,
					func(_ *mk.Kernel, _ mk.ThreadID, _ mk.Msg) (mk.Msg, error) {
						return mk.Msg{Words: []uint64{1}}, nil // resume
					})
				if err := k.SetExceptionHandler(sp, eh.ID); err != nil {
					return err
				}
			}
			resumed, err := k.RaiseException(victim.ID, 13)
			if err != nil {
				return err
			}
			env.State = &mkState{k: k, victim: victim.ID, resumed: resumed}
			return nil
		},
	})
}
