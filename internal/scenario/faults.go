package scenario

import (
	"errors"
	"fmt"

	"vmmk/internal/fslite"
	"vmmk/internal/hw"
	"vmmk/internal/vmm"
)

// Errors the fault hooks inject. Rows declare them as expected outcomes.
var (
	// ErrDeviceFault is what FaultDev returns from a failed block operation.
	ErrDeviceFault = errors.New("scenario: injected device fault")
	// ErrLinkDown is what Link reports when its page budget is exhausted.
	ErrLinkDown = errors.New("scenario: migration link failed")
)

// MemDev is a deterministic in-memory block device — the substrate FaultDev
// wraps for the fslite rows.
type MemDev struct {
	blocks    map[uint64][]byte
	blockSize uint64
}

// NewMemDev returns an empty in-memory device.
func NewMemDev(blockSize uint64) *MemDev {
	return &MemDev{blocks: make(map[uint64][]byte), blockSize: blockSize}
}

// Read returns a copy of the block (all-zero when never written).
func (d *MemDev) Read(block uint64) ([]byte, error) {
	out := make([]byte, d.blockSize)
	copy(out, d.blocks[block])
	return out, nil
}

// Write stores a copy of the block.
func (d *MemDev) Write(block uint64, data []byte) error {
	b := make([]byte, d.blockSize)
	copy(b, data)
	d.blocks[block] = b
	return nil
}

// FaultDev wraps a fslite.BlockDev and injects device failures: an error on
// the Nth write or read (1-based, sticky — a died device stays dead), and
// optionally a torn write, where the failing write lands only the first
// half of its block before the error. The zero value injects nothing.
type FaultDev struct {
	Inner fslite.BlockDev
	// FailWrite fails the Nth and every later write (0: never).
	FailWrite int
	// FailRead fails the Nth and every later read (0: never).
	FailRead int
	// Torn makes the first failing write a torn one: half the block is
	// written before the fault surfaces.
	Torn bool

	writes, reads int
}

// Writes returns how many writes the device has seen (failed ones included).
func (d *FaultDev) Writes() int { return d.writes }

// Read passes through to the wrapped device unless the read-fault fires.
func (d *FaultDev) Read(block uint64) ([]byte, error) {
	d.reads++
	if d.FailRead > 0 && d.reads >= d.FailRead {
		return nil, fmt.Errorf("%w: read %d of block %d", ErrDeviceFault, d.reads, block)
	}
	return d.Inner.Read(block)
}

// Write passes through unless the write-fault fires; the first failing
// write is torn when Torn is set.
func (d *FaultDev) Write(block uint64, data []byte) error {
	d.writes++
	if d.FailWrite > 0 && d.writes >= d.FailWrite {
		if d.Torn && d.writes == d.FailWrite {
			half := make([]byte, len(data))
			copy(half, data[:len(data)/2])
			// The torn half lands; the device then reports the failure.
			if err := d.Inner.Write(block, half); err != nil {
				return err
			}
		}
		return fmt.Errorf("%w: write %d of block %d", ErrDeviceFault, d.writes, block)
	}
	return d.Inner.Write(block, data)
}

// Link is the lossy, latency-bounded migration link shim around
// vmm.MigrateLive: it carries at most MaxPages page transfers (0: no
// budget, the link never drops) and charges PerPage cycles of link time to
// both machines for every page that crosses. Feed Transport into
// vmm.LiveOpts; when the budget is exhausted the migration aborts with
// vmm.ErrMigrationAborted wrapping ErrLinkDown.
type Link struct {
	MaxPages int
	PerPage  hw.Cycles

	pages int
}

// Pages returns how many page transfers the link has carried.
func (l *Link) Pages() int { return l.pages }

// Transport returns the vmm.LiveOpts.Transport hook for a migration from
// src to dst over this link.
func (l *Link) Transport(src, dst *hw.Machine) func(round, pages int) error {
	srcComp := src.Rec.Intern("link")
	dstComp := dst.Rec.Intern("link")
	return func(round, pages int) error {
		if l.MaxPages > 0 && l.pages+pages > l.MaxPages {
			return fmt.Errorf("%w: round %d needs %d pages, %d of %d remain",
				ErrLinkDown, round, pages, l.MaxPages-l.pages, l.MaxPages)
		}
		l.pages += pages
		if l.PerPage > 0 && pages > 0 {
			src.CPU.WorkN(srcComp, l.PerPage, uint64(pages))
			dst.CPU.WorkN(dstComp, l.PerPage, uint64(pages))
		}
		return nil
	}
}

// KillAtRound returns a vmm.LiveOpts.GuestWork hook that destroys dom at
// the given pre-copy round — the DestroyDomain-mid-operation trigger for
// the crash-mid-migration rows.
func KillAtRound(h *vmm.Hypervisor, dom vmm.DomID, round int) func(int) {
	return func(r int) {
		if r == round {
			h.DestroyDomain(dom)
		}
	}
}

// rng is a deterministic xorshift64* stream — the fuzzer's only source of
// variation, seeded per row so runs are reproducible byte for byte.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// FuzzHypercalls feeds n deterministic malformed or out-of-range hypercalls
// at the hypervisor — bogus domain ids, wild grant refs and ports, guest
// page numbers beyond the P2M, illegal pCPU placements — through victim, an
// unprivileged live domain. Every call must come back with a typed error
// (the arguments are invalid by construction) and none may panic; the first
// silent acceptance or panic is returned.
func FuzzHypercalls(h *vmm.Hypervisor, victim vmm.DomID, n int, seed uint64) error {
	r := newRNG(seed)
	badDom := func() vmm.DomID { return vmm.DomID(40000 + r.intn(20000)) }
	bigGPN := func() int { return 1 << (20 + r.intn(10)) }
	ops := []struct {
		name string
		call func() error
	}{
		{"hypercall-bad-dom", func() error {
			return h.Hypercall(badDom(), "fuzz", hw.Cycles(1+r.intn(50)))
		}},
		{"mmu-update-wild-gpn", func() error {
			return h.MMUUpdate(victim, hw.VPN(r.intn(1<<20)), bigGPN(), hw.PermRW, true)
		}},
		{"grant-map-wild-ref", func() error {
			return h.GrantMap(victim, victim, vmm.GrantRef(1<<20+r.intn(1<<20)), hw.VPN(r.intn(256)))
		}},
		{"grant-copy-wild-ref", func() error {
			return h.GrantCopy(victim, victim, vmm.GrantRef(1<<20+r.intn(1<<20)), hw.NoFrame, 64)
		}},
		{"grant-transfer-wild-ref", func() error {
			_, err := h.GrantTransfer(victim, victim, vmm.GrantRef(1<<20+r.intn(1<<20)))
			return err
		}},
		{"notify-wild-port", func() error {
			return h.NotifyChannel(victim, vmm.Port(1<<20+r.intn(1<<20)))
		}},
		{"balloon-out-bad-dom", func() error {
			_, err := h.BalloonOut(badDom(), 1+r.intn(16))
			return err
		}},
		{"place-bad-pcpu", func() error {
			return h.PlaceVCPUs(victim, h.M.NCPUs()+1+r.intn(64))
		}},
		{"route-irq-unprivileged", func() error {
			return h.RouteIRQ(hw.IRQLine(1+r.intn(8)), victim)
		}},
		{"guest-write-wild-gpn", func() error {
			return h.GuestMemWrite(victim, bigGPN(), 0, []byte{0xAA})
		}},
	}
	for i := 0; i < n; i++ {
		op := ops[r.intn(len(ops))]
		err, panicMsg := callRecovered(op.call)
		if panicMsg != "" {
			return fmt.Errorf("fuzz op %d (%s) panicked: %s", i, op.name, panicMsg)
		}
		if err == nil {
			return fmt.Errorf("fuzz op %d (%s) accepted malformed arguments", i, op.name)
		}
	}
	return nil
}

// callRecovered runs one fuzz op, converting a panic into a message.
func callRecovered(fn func() error) (err error, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	return fn(), ""
}
