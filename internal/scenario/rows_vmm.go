package scenario

import (
	"bytes"
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
)

// vmm rows: hypervisor-interface abuse and mid-operation crashes. The
// monitor's validation burden is the paper's point — every malformed
// hypercall, dangling grant, stale port and mid-migration death must come
// back as a typed error with the hypervisor and the surviving domains
// intact.

// vmmState carries the hypervisors and domains under test to Check, plus
// the recorder numbers the cross-leg Compare rows grade after the leg's
// machines are back in the pool.
type vmmState struct {
	h, dst   *vmm.Hypervisor
	dstM     *hw.Machine
	domU     vmm.DomID
	free     int
	dstFree0 int
	link     *Link

	dirtyFaults uint64
	dstCycles   uint64
}

// vmmStillWorks probes that the hypervisor survived: create, touch and
// destroy a probe domain.
func vmmStillWorks(h *vmm.Hypervisor) error {
	d, err := h.CreateDomain("probe", 8)
	if err != nil {
		return fmt.Errorf("post-fault CreateDomain: %w", err)
	}
	if err := h.GuestMemWrite(d.ID, 0, 0, []byte("ok")); err != nil {
		return fmt.Errorf("post-fault guest write: %w", err)
	}
	if err := h.DestroyDomain(d.ID); err != nil {
		return fmt.Errorf("post-fault DestroyDomain: %w", err)
	}
	return nil
}

func init() {
	Register(S{
		ID:        "vmm/hypercall-dead-domain",
		Subsystem: "vmm",
		Fault:     "hypercall issued by a destroyed domain",
		Expect: Outcome{
			Desc: "ErrDomainDead; hypervisor keeps serving others",
			Err:  vmm.ErrDomainDead,
			Check: func(env *Env) error {
				return vmmStillWorks(env.State.(*vmmState).h)
			},
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			d, err := h.CreateDomain("domU", 32)
			if err != nil {
				return err
			}
			env.State = &vmmState{h: h}
			if env.Armed {
				if err := h.DestroyDomain(d.ID); err != nil {
					return err
				}
			}
			return h.Hypercall(d.ID, "probe", 100)
		},
	})

	Register(S{
		ID:        "vmm/hypercall-unknown-domain",
		Subsystem: "vmm",
		Fault:     "hypercall names a domain id that was never created",
		Expect: Outcome{
			Desc: "ErrNoSuchDomain",
			Err:  vmm.ErrNoSuchDomain,
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			d, err := h.CreateDomain("domU", 32)
			if err != nil {
				return err
			}
			target := d.ID
			if env.Armed {
				target = vmm.DomID(999)
			}
			return h.Hypercall(target, "probe", 100)
		},
	})

	Register(S{
		ID:        "vmm/grant-revoked-while-mapped",
		Subsystem: "vmm",
		Fault:     "owner revokes a grant the peer still has mapped, then the peer copies",
		Expect: Outcome{
			Desc: "ErrGrantRevoked; the peer's unmap still succeeds",
			Err:  vmm.ErrGrantRevoked,
			Check: func(env *Env) error {
				return vmmStillWorks(env.State.(*vmmState).h)
			},
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			da, err := h.CreateDomain("domA", 32)
			if err != nil {
				return err
			}
			db, err := h.CreateDomain("domB", 32)
			if err != nil {
				return err
			}
			env.State = &vmmState{h: h}
			ref, err := h.GrantAccess(da.ID, da.FrameAt(0), db.ID, false)
			if err != nil {
				return err
			}
			if err := h.GrantMap(db.ID, da.ID, ref, 0x40); err != nil {
				return err
			}
			if env.Armed {
				if err := h.GrantRevoke(da.ID, ref); err != nil {
					return err
				}
			}
			copyErr := h.GrantCopy(db.ID, da.ID, ref, db.FrameAt(0), 64)
			// Tearing down one's own mapping must work even after revoke.
			if err := h.GrantUnmap(db.ID, da.ID, ref, 0x40); err != nil {
				return fmt.Errorf("unmap after revoke: %w", err)
			}
			return copyErr
		},
	})

	Register(S{
		ID:        "vmm/grant-dangling-after-flip",
		Subsystem: "vmm",
		Fault:     "second grant of a frame used after the first was page-flipped away",
		Expect: Outcome{
			Desc: "ErrGrantRevoked; a dangling grant exposes nobody's memory",
			Err:  vmm.ErrGrantRevoked,
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			da, err := h.CreateDomain("domA", 32)
			if err != nil {
				return err
			}
			db, err := h.CreateDomain("domB", 32)
			if err != nil {
				return err
			}
			f := da.FrameAt(0)
			ref1, err := h.GrantAccess(da.ID, f, db.ID, false)
			if err != nil {
				return err
			}
			ref2, err := h.GrantAccess(da.ID, f, db.ID, false)
			if err != nil {
				return err
			}
			if env.Armed {
				// The flip moves the frame to domB; ref2 now dangles.
				if _, err := h.GrantTransfer(db.ID, da.ID, ref1); err != nil {
					return err
				}
			}
			return h.GrantMap(db.ID, da.ID, ref2, 0x40)
		},
	})

	Register(S{
		ID:        "vmm/stale-port-after-rebind",
		Subsystem: "vmm",
		Fault:     "peer destroyed, channel slot rebound to a new domain, old port reused",
		Expect: Outcome{
			Desc: "ErrBadPort; generation stride keeps stale ports from the new channel",
			Err:  vmm.ErrBadPort,
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			da, err := h.CreateDomain("domA", 16)
			if err != nil {
				return err
			}
			db, err := h.CreateDomain("domB", 16)
			if err != nil {
				return err
			}
			dc, err := h.CreateDomain("domC", 16)
			if err != nil {
				return err
			}
			pa, _, err := h.BindChannel(da.ID, db.ID)
			if err != nil {
				return err
			}
			if env.Armed {
				if err := h.DestroyDomain(db.ID); err != nil {
					return err
				}
				// Reuses the freed slot with a bumped generation.
				if _, _, err := h.BindChannel(da.ID, dc.ID); err != nil {
					return err
				}
			}
			return h.NotifyChannel(da.ID, pa)
		},
	})

	Register(S{
		ID:        "vmm/notify-after-peer-destroyed",
		Subsystem: "vmm",
		Fault:     "event-channel notify after the peer domain was destroyed",
		Expect: Outcome{
			Desc: "ErrBadPort; destroy closed and reclaimed the channel",
			Err:  vmm.ErrBadPort,
			Check: func(env *Env) error {
				return vmmStillWorks(env.State.(*vmmState).h)
			},
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			da, err := h.CreateDomain("domA", 16)
			if err != nil {
				return err
			}
			db, err := h.CreateDomain("domB", 16)
			if err != nil {
				return err
			}
			env.State = &vmmState{h: h}
			pa, _, err := h.BindChannel(da.ID, db.ID)
			if err != nil {
				return err
			}
			if env.Armed {
				if err := h.DestroyDomain(db.ID); err != nil {
					return err
				}
			}
			return h.NotifyChannel(da.ID, pa)
		},
	})

	Register(S{
		ID:        "vmm/balloon-in-exhausted",
		Subsystem: "vmm",
		Fault:     "balloon-in demands more frames than the machine has free",
		Expect: Outcome{
			Desc: "ErrBalloonEmpty after partial inflate; ledger accounts every frame",
			Err:  vmm.ErrBalloonEmpty,
			Check: func(env *Env) error {
				st := env.State.(*vmmState)
				d := st.h.Domain(st.domU)
				if env.Armed {
					if free := st.h.M.Mem.FreeFrames(); free != 0 {
						return fmt.Errorf("machine has %d free frames after exhaustion, want 0", free)
					}
					if got, want := d.OwnedPages(), 256+st.free; got != want {
						return fmt.Errorf("domain owns %d pages, want %d", got, want)
					}
				} else if got := d.OwnedPages(); got != 256+4 {
					return fmt.Errorf("domain owns %d pages, want %d", got, 260)
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			d, err := h.CreateDomain("domU", 256)
			if err != nil {
				return err
			}
			free := env.M.Mem.FreeFrames()
			env.State = &vmmState{h: h, domU: d.ID, free: free}
			n := 4
			if env.Armed {
				n = free + 10
			}
			_, err = h.BalloonIn(d.ID, n)
			return err
		},
	})

	Register(S{
		ID:        "vmm/mmu-map-beyond-p2m",
		Subsystem: "vmm",
		Fault:     "MMU update maps a guest page number past the domain's P2M",
		Expect: Outcome{
			Desc: "ErrBadPTE",
			Err:  vmm.ErrBadPTE,
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			d, err := h.CreateDomain("domU", 32)
			if err != nil {
				return err
			}
			gpn := 1
			if env.Armed {
				gpn = 1 << 20
			}
			return h.MMUUpdate(d.ID, 0xA00, gpn, hw.PermRW, true)
		},
	})

	Register(S{
		ID:        "vmm/save-running-domain",
		Subsystem: "vmm",
		Fault:     "checkpoint attempted without pausing the domain first",
		Expect: Outcome{
			Desc: "ErrDomainLive",
			Err:  vmm.ErrDomainLive,
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			d, err := h.CreateDomain("domU", 32)
			if err != nil {
				return err
			}
			if !env.Armed {
				if err := h.Pause(d.ID); err != nil {
					return err
				}
			}
			_, err = h.SaveDomain(d.ID)
			return err
		},
	})

	Register(S{
		ID:        "vmm/dirty-log-double-enable",
		Subsystem: "vmm",
		Fault:     "dirty logging enabled twice without an intervening disable",
		Expect: Outcome{
			Desc: "ErrDirtyLogActive; disable/re-enable cycles stay legal",
			Err:  vmm.ErrDirtyLogActive,
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			d, err := h.CreateDomain("domU", 32)
			if err != nil {
				return err
			}
			if _, err := h.EnableDirtyLog(d.ID); err != nil {
				return err
			}
			if !env.Armed {
				h.DisableDirtyLog(d.ID)
			}
			_, err = h.EnableDirtyLog(d.ID)
			return err
		},
	})

	Register(S{
		ID:        "vmm/place-vcpus-bad-pcpu",
		Subsystem: "vmm",
		Fault:     "vCPU placement names a physical CPU the machine does not have",
		Cfg:       smpConfig,
		Expect: Outcome{
			Desc: "ErrBadPCPU",
			Err:  vmm.ErrBadPCPU,
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			d, err := h.CreateDomain("domU", 32)
			if err != nil {
				return err
			}
			pcpu := 1
			if env.Armed {
				pcpu = env.M.NCPUs() + 3
			}
			return h.PlaceVCPUs(d.ID, pcpu)
		},
	})

	Register(S{
		ID:        "vmm/hypercall-fuzz-storm",
		Subsystem: "vmm",
		Fault:     "300 malformed hypercalls: bogus domains, wild grant refs, ports, GPNs, pCPUs",
		Expect: Outcome{
			Desc: "every call rejected with a typed error; no panic, hypervisor intact",
			Check: func(env *Env) error {
				st := env.State.(*vmmState)
				if !st.h.Alive(st.domU) {
					return fmt.Errorf("fuzz victim died from rejected hypercalls")
				}
				return vmmStillWorks(st.h)
			},
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			d, err := h.CreateDomain("victim", 32)
			if err != nil {
				return err
			}
			env.State = &vmmState{h: h, domU: d.ID}
			if !env.Armed {
				// Injection off: the same interfaces, well-formed.
				if err := h.Hypercall(d.ID, "probe", 50); err != nil {
					return err
				}
				return h.MMUUpdate(d.ID, 0xB00, 2, hw.PermRW, true)
			}
			return FuzzHypercalls(h, d.ID, 300, 0x5EEDBEEF)
		},
	})

	Register(S{
		ID:        "vmm/migration-source-dies-midcopy",
		Subsystem: "vmm",
		Fault:     "source domain destroyed during pre-copy round 2 of a live migration",
		Expect: Outcome{
			Desc: "ErrMigrationAborted wrapping ErrDomainDead; no shell or frame leaks on dst",
			Err:  vmm.ErrMigrationAborted,
			Check: func(env *Env) error {
				st := env.State.(*vmmState)
				if env.Armed {
					if st.h.Alive(st.domU) {
						return fmt.Errorf("source domain still alive after its destruction")
					}
					if n := len(st.dst.Domains()); n != 1 {
						return fmt.Errorf("destination holds %d domains, want 1 (shell leaked)", n)
					}
					if free := st.dstM.Mem.FreeFrames(); free != st.dstFree0 {
						return fmt.Errorf("destination free frames %d, want %d (frames leaked)", free, st.dstFree0)
					}
				}
				return vmmStillWorks(st.h)
			},
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			m2 := env.Machine(nil)
			dst, _, err := vmm.New(m2, 64)
			if err != nil {
				return err
			}
			d, err := h.CreateDomain("domU", 48)
			if err != nil {
				return err
			}
			payload := []byte("live migration payload")
			if err := h.GuestMemWrite(d.ID, 0, 0, payload); err != nil {
				return err
			}
			env.State = &vmmState{h: h, dst: dst, dstM: m2, domU: d.ID, dstFree0: m2.Mem.FreeFrames()}
			kill := KillAtRound(h, d.ID, 2)
			mig, _, err := vmm.MigrateLive(h, d.ID, dst, vmm.LiveOpts{
				MaxRounds: 4,
				GuestWork: func(round int) {
					// The guest keeps dirtying pages while rounds run.
					_ = h.GuestMemWrite(d.ID, round%8, 0, []byte("dirty"))
					if env.Armed {
						kill(round)
					}
				},
			})
			if err != nil {
				return err
			}
			if err := dst.Unpause(mig.ID); err != nil {
				return err
			}
			if got := m2.Mem.Data(mig.FrameAt(0))[:len(payload)]; !bytes.Equal(got, payload) {
				return fmt.Errorf("migrated memory corrupted: %q", got)
			}
			return nil
		},
	})

	Register(S{
		ID:        "vmm/migration-link-exhausted",
		Subsystem: "vmm",
		Fault:     "migration link drops after carrying 16 pages of a 48-page guest",
		Expect: Outcome{
			Desc: "ErrMigrationAborted; source runs on unpaused, destination spotless",
			Err:  vmm.ErrMigrationAborted,
			Check: func(env *Env) error {
				st := env.State.(*vmmState)
				if env.Armed {
					if !st.h.Alive(st.domU) {
						return fmt.Errorf("source domain lost to an aborted migration")
					}
					if st.h.Paused(st.domU) {
						return fmt.Errorf("source left paused after abort")
					}
					if err := st.h.GuestMemWrite(st.domU, 1, 0, []byte("post-abort")); err != nil {
						return fmt.Errorf("source wedged after abort: %w", err)
					}
					// The abort must disarm the dirty log so a retry can
					// start one afresh.
					if _, err := st.h.EnableDirtyLog(st.domU); err != nil {
						return fmt.Errorf("dirty log left armed after abort: %w", err)
					}
					st.h.DisableDirtyLog(st.domU)
					if n := len(st.dst.Domains()); n != 1 {
						return fmt.Errorf("destination holds %d domains, want 1", n)
					}
					if free := st.dstM.Mem.FreeFrames(); free != st.dstFree0 {
						return fmt.Errorf("destination free frames %d, want %d", free, st.dstFree0)
					}
				} else if st.link.Pages() < 48 {
					return fmt.Errorf("healthy link carried only %d pages", st.link.Pages())
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			m2 := env.Machine(nil)
			dst, _, err := vmm.New(m2, 64)
			if err != nil {
				return err
			}
			d, err := h.CreateDomain("domU", 48)
			if err != nil {
				return err
			}
			link := &Link{PerPage: 100}
			if env.Armed {
				link.MaxPages = 16
			}
			env.State = &vmmState{h: h, dst: dst, dstM: m2, domU: d.ID,
				dstFree0: m2.Mem.FreeFrames(), link: link}
			mig, _, err := vmm.MigrateLive(h, d.ID, dst, vmm.LiveOpts{
				MaxRounds: 3,
				Transport: link.Transport(env.M, m2),
			})
			if err != nil {
				return err
			}
			return dst.Unpause(mig.ID)
		},
	})

	Register(S{
		ID:        "vmm/dirty-log-fault-accounting",
		Subsystem: "vmm",
		Fault:     "dirty logging armed across repeated stores to 6 guest pages",
		Expect: Outcome{
			Desc: "KDirtyLogFault delta is exactly one per protected page, zero disarmed",
			Compare: func(control, armed *Env) error {
				c := control.State.(*vmmState).dirtyFaults
				a := armed.State.(*vmmState).dirtyFaults
				if c != 0 {
					return fmt.Errorf("control leg took %d dirty-log faults with logging off", c)
				}
				if a != 6 {
					return fmt.Errorf("armed leg took %d dirty-log faults, want one per page = 6", a)
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			d, err := h.CreateDomain("domU", 32)
			if err != nil {
				return err
			}
			before := env.M.Rec.Counts(trace.KDirtyLogFault)
			if env.Armed {
				if _, err := h.EnableDirtyLog(d.ID); err != nil {
					return err
				}
			}
			// Two stores per page: only the first takes the write-protect
			// fault, the second runs at full speed on the unprotected PTE.
			for gpn := 0; gpn < 6; gpn++ {
				for pass := 0; pass < 2; pass++ {
					if err := h.GuestMemWrite(d.ID, gpn, 0, []byte("dirty")); err != nil {
						return err
					}
				}
			}
			if env.Armed {
				h.DisableDirtyLog(d.ID)
			}
			env.State = &vmmState{dirtyFaults: env.M.Rec.Counts(trace.KDirtyLogFault) - before}
			return nil
		},
	})

	Register(S{
		ID:        "vmm/migration-abort-cost",
		Subsystem: "vmm",
		Fault:     "link budget below the first pre-copy batch; the completed control run is the baseline",
		Expect: Outcome{
			Desc: "ErrMigrationAborted; the abort costs the destination less than completion",
			Err:  vmm.ErrMigrationAborted,
			Compare: func(control, armed *Env) error {
				c := control.State.(*vmmState).dstCycles
				a := armed.State.(*vmmState).dstCycles
				if c == 0 {
					return fmt.Errorf("control migration charged the destination nothing")
				}
				if a >= c {
					return fmt.Errorf("aborted run cost the destination %d cycles, completed run %d", a, c)
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			h, _, err := vmm.New(env.M, 64)
			if err != nil {
				return err
			}
			m2 := env.Machine(nil)
			dst, _, err := vmm.New(m2, 64)
			if err != nil {
				return err
			}
			d, err := h.CreateDomain("domU", 48)
			if err != nil {
				return err
			}
			l := &vmm.Link{PerPage: 50, Latency: 1000}
			if env.Armed {
				l.Budget = 16
			}
			st := &vmmState{h: h, dst: dst, dstM: m2, domU: d.ID}
			env.State = st
			mig, _, err := vmm.MigrateLive(h, d.ID, dst, vmm.LiveOpts{
				MaxRounds: 3,
				Transport: l.Transport(env.M, m2),
			})
			st.dstCycles = m2.Rec.TotalCycles()
			if err != nil {
				return err
			}
			return dst.Unpause(mig.ID)
		},
	})
}
