package scenario

import (
	"fmt"

	"vmmk/internal/cluster"
	"vmmk/internal/hw"
	"vmmk/internal/vmm"
)

// cluster rows: control-plane abuse at fleet level. The placement plane
// sits above the hypervisors, so its failures are admission and migration
// failures — a guest nobody can host, a guest placed twice, a migration
// link that dies under the transfer. Each must come back as a typed error
// with every host's books balanced, and the link-cost row grades the
// recorder delta between the control and armed legs.

// clusterState carries the fleet under test and the recorder numbers the
// cross-leg comparisons grade. Compare runs after the legs' machines are
// back in the pool, so everything it needs is copied here by Run.
type clusterState struct {
	c       *cluster.Cluster
	g       *cluster.Guest
	srcIdx  int
	dstIdx  int
	dstFree int
	dstDoms int

	// link-cost accounting, copied out for the cross-leg Compare.
	perPage, latency hw.Cycles
	srcLink, dstLink uint64
	live             *vmm.LiveStats
}

// pooledHosts binds a cluster's machine source to the leg's pool, so fleet
// rows exercise the same machine recycling as everything else.
func pooledHosts(env *Env) cluster.MachineSource {
	return func(cfg *hw.MachineConfig) (*hw.Machine, func()) {
		// The harness releases every acquired machine when the leg ends.
		return env.Machine(cfg), func() {}
	}
}

// clusterStillPlaces probes that the control plane survived: place and
// remove a probe guest.
func clusterStillPlaces(c *cluster.Cluster) error {
	if _, err := c.Place("probe", 4); err != nil {
		return fmt.Errorf("post-fault Place: %w", err)
	}
	if err := c.Remove("probe"); err != nil {
		return fmt.Errorf("post-fault Remove: %w", err)
	}
	return nil
}

func init() {
	Register(S{
		ID:        "cluster/admission-no-host-fits",
		Subsystem: "cluster",
		Fault:     "guest demands more pages than any host's whole capacity",
		Expect: Outcome{
			Desc: "ErrNoHostFits; rejection counted, control plane keeps placing",
			Err:  cluster.ErrNoHostFits,
			Check: func(env *Env) error {
				st := env.State.(*clusterState)
				s := st.c.Stats()
				if env.Armed {
					if s.Rejected != 1 {
						return fmt.Errorf("stats rejected = %d, want 1", s.Rejected)
					}
				} else if s.Rejected != 0 {
					return fmt.Errorf("control leg rejected %d placements", s.Rejected)
				}
				return clusterStillPlaces(st.c)
			},
		},
		Run: func(env *Env) error {
			c, err := cluster.New(cluster.Config{Hosts: 2, HostFrames: 96}, pooledHosts(env))
			if err != nil {
				return err
			}
			env.State = &clusterState{c: c}
			nominal := 8
			if env.Armed {
				nominal = 10_000
			}
			_, err = c.Place("greedy", nominal)
			return err
		},
	})

	Register(S{
		ID:        "cluster/double-place",
		Subsystem: "cluster",
		Fault:     "the same guest name placed a second time",
		Expect: Outcome{
			Desc: "ErrAlreadyPlaced; the first placement stands untouched",
			Err:  cluster.ErrAlreadyPlaced,
			Check: func(env *Env) error {
				st := env.State.(*clusterState)
				g, ok := st.c.Guest("a")
				if !ok {
					return fmt.Errorf("guest a lost from the books")
				}
				if g.Host() != st.srcIdx {
					return fmt.Errorf("guest a moved to host %d, was %d", g.Host(), st.srcIdx)
				}
				want := 2
				if env.Armed {
					want = 1
				}
				if got := len(st.c.Guests()); got != want {
					return fmt.Errorf("cluster tracks %d guests, want %d", got, want)
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			c, err := cluster.New(cluster.Config{Hosts: 2, HostFrames: 96}, pooledHosts(env))
			if err != nil {
				return err
			}
			a, err := c.Place("a", 16)
			if err != nil {
				return err
			}
			env.State = &clusterState{c: c, srcIdx: a.Host()}
			name := "b"
			if env.Armed {
				name = "a"
			}
			_, err = c.Place(name, 16)
			return err
		},
	})

	Register(S{
		ID:        "cluster/migration-dead-link",
		Subsystem: "cluster",
		Fault:     "cross-host migration over a link whose budget cannot carry the guest",
		Expect: Outcome{
			Desc: "ErrMigrationAborted; guest runs on at the source, destination spotless",
			Err:  vmm.ErrMigrationAborted,
			Check: func(env *Env) error {
				st := env.State.(*clusterState)
				src := st.c.Hosts()[st.srcIdx]
				dst := st.c.Hosts()[st.dstIdx]
				if env.Armed {
					if st.g.Host() != st.srcIdx {
						return fmt.Errorf("control plane moved the guest to host %d despite the abort", st.g.Host())
					}
					if !src.Hypervisor().Alive(st.g.DomID()) || src.Hypervisor().Paused(st.g.DomID()) {
						return fmt.Errorf("source guest not left running after abort")
					}
					if got := dst.Machine().Mem.FreeFrames(); got != st.dstFree {
						return fmt.Errorf("destination leaked frames: free %d, was %d", got, st.dstFree)
					}
					if got := len(dst.Hypervisor().Domains()); got != st.dstDoms {
						return fmt.Errorf("destination kept %d domains, was %d", got, st.dstDoms)
					}
					if s := st.c.Stats(); s.Aborted != 1 || s.Migrations != 0 {
						return fmt.Errorf("stats = %+v, want 1 aborted and 0 migrations", s)
					}
				} else {
					if st.g.Host() != st.dstIdx {
						return fmt.Errorf("healthy migration left the guest on host %d", st.g.Host())
					}
					if s := st.c.Stats(); s.Migrations != 1 {
						return fmt.Errorf("stats = %+v, want 1 migration", s)
					}
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			cfg := cluster.Config{Hosts: 2, HostFrames: 96, Policy: cluster.Spread}
			if env.Armed {
				cfg.LinkBudget = 4
			}
			c, err := cluster.New(cfg, pooledHosts(env))
			if err != nil {
				return err
			}
			g, err := c.Place("mover", 16)
			if err != nil {
				return err
			}
			dst := 1 - g.Host()
			st := &clusterState{
				c: c, g: g, srcIdx: g.Host(), dstIdx: dst,
				dstFree: c.Hosts()[dst].Machine().Mem.FreeFrames(),
				dstDoms: len(c.Hosts()[dst].Hypervisor().Domains()),
			}
			env.State = st
			_, err = c.MigrateGuest("mover", dst)
			return err
		},
	})

	Register(S{
		ID:        "cluster/link-cost-accounting",
		Subsystem: "cluster",
		Fault:     "migration link priced at 50x the control leg's bandwidth and latency",
		Expect: Outcome{
			Desc: "both endpoints charge exactly latency*(rounds+1) + perpage*pages",
			Compare: func(control, armed *Env) error {
				for _, leg := range []*Env{control, armed} {
					st := leg.State.(*clusterState)
					name := "control"
					if leg.Armed {
						name = "armed"
					}
					want := uint64(st.latency)*uint64(st.live.Rounds+1) +
						uint64(st.perPage)*uint64(st.live.PagesMoved)
					if st.srcLink != want {
						return fmt.Errorf("%s leg: source charged %d link cycles, want %d", name, st.srcLink, want)
					}
					if st.dstLink != want {
						return fmt.Errorf("%s leg: destination charged %d link cycles, want %d", name, st.dstLink, want)
					}
				}
				cs := control.State.(*clusterState)
				as := armed.State.(*clusterState)
				if as.srcLink <= cs.srcLink {
					return fmt.Errorf("pricey link charged %d cycles, control %d — no delta", as.srcLink, cs.srcLink)
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			perPage, latency := hw.Cycles(2), hw.Cycles(400)
			if env.Armed {
				perPage, latency = 100, 20_000
			}
			c, err := cluster.New(cluster.Config{
				Hosts: 2, HostFrames: 96, Policy: cluster.Spread,
				LinkPerPage: perPage, LinkLatency: latency,
			}, pooledHosts(env))
			if err != nil {
				return err
			}
			g, err := c.Place("mover", 24)
			if err != nil {
				return err
			}
			dst := 1 - g.Host()
			live, err := c.MigrateGuest("mover", dst)
			if err != nil {
				return err
			}
			env.State = &clusterState{
				perPage: perPage, latency: latency, live: live,
				srcLink: c.Hosts()[1-dst].Machine().Rec.Cycles(vmm.LinkComponent),
				dstLink: c.Hosts()[dst].Machine().Rec.Cycles(vmm.LinkComponent),
			}
			return nil
		},
	})
}
