package scenario

import (
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/hw/dev"
)

// hw rows: contract violations against the bare machine. The hardware layer
// panics on programming errors (a nonexistent APIC ID is always a kernel
// bug, never a recoverable condition) and reports resource exhaustion and
// bad device requests through typed errors and completion status.

// smpConfig is the machine shape for the rows that need more than one CPU.
var smpConfig = &hw.MachineConfig{Frames: 1024, IRQLines: 16, NCPUs: 4}

// hwState carries expectations from Run to Check.
type hwState struct {
	free0 int
	want  uint64
	comps []dev.DiskCompletion
}

func init() {
	Register(S{
		ID:        "hw/ipi-nonexistent-cpu",
		Subsystem: "hw",
		Fault:     "IPI aimed at CPU 9 of a 4-CPU machine",
		Cfg:       smpConfig,
		Expect: Outcome{
			Desc: "panic: CPU index out of range",
			// hw.Machine.checkCPU: programming a nonexistent APIC ID.
			Panic: "CPU index out of range",
			Check: func(env *Env) error {
				if env.Armed {
					return nil // the send never reached the controller
				}
				if got := env.M.IRQ.IPIs(); got != 1 {
					return fmt.Errorf("IPIs = %d, want 1", got)
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			to := 1
			if env.Armed {
				to = 9
			}
			env.M.SendIPI(0, to)
			return nil
		},
	})

	Register(S{
		ID:        "hw/shootdown-nonexistent-cpu",
		Subsystem: "hw",
		Fault:     "TLB shootdown targeting CPU 9 of a 4-CPU machine",
		Cfg:       smpConfig,
		Expect: Outcome{
			Desc:  "panic: CPU index out of range",
			Panic: "CPU index out of range",
		},
		Run: func(env *Env) error {
			target := 1
			if env.Armed {
				target = 9
			}
			env.M.ShootdownAll(0, []int{target})
			return nil
		},
	})

	Register(S{
		ID:        "hw/alloc-beyond-physmem",
		Subsystem: "hw",
		Fault:     "frame allocation asks for one frame more than physical memory holds",
		Expect: Outcome{
			Desc: "ErrOutOfMemory; allocation is atomic, free count unchanged",
			Err:  hw.ErrOutOfMemory,
			Check: func(env *Env) error {
				st := env.State.(*hwState)
				want := st.free0 - 4 // control allocated 4
				if env.Armed {
					want = st.free0 // failed AllocN must not leak frames
				}
				if got := env.M.Mem.FreeFrames(); got != want {
					return fmt.Errorf("free frames %d, want %d", got, want)
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			st := &hwState{free0: env.M.Mem.FreeFrames()}
			env.State = st
			n := 4
			if env.Armed {
				n = env.M.Mem.TotalFrames() + 1
			}
			_, err := env.M.Mem.AllocN("scenario", n)
			return err
		},
	})

	Register(S{
		ID:        "hw/disk-request-beyond-capacity",
		Subsystem: "hw",
		Fault:     "disk read submitted for a block past the device's last block",
		Expect: Outcome{
			Desc: "completion arrives with OK=false; no crash, no hang",
			Check: func(env *Env) error {
				st := env.State.(*hwState)
				if len(st.comps) != 1 {
					return fmt.Errorf("%d completions, want 1", len(st.comps))
				}
				c := st.comps[0]
				if c.Req.Tag != 7 {
					return fmt.Errorf("completion tag %d, want 7", c.Req.Tag)
				}
				if env.Armed == c.OK {
					return fmt.Errorf("completion OK=%v with fault armed=%v", c.OK, env.Armed)
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			disk := dev.NewDisk(env.M, dev.DiskConfig{IRQ: 3, Blocks: 128, Latency: 1000})
			f, err := env.M.Mem.Alloc("scenario")
			if err != nil {
				return err
			}
			block := uint64(5)
			if env.Armed {
				block = 1 << 40
			}
			disk.Submit(dev.DiskReq{Op: dev.DiskRead, Block: block, Frame: f, Tag: 7})
			env.M.RunUntilIdle(64)
			env.State = &hwState{comps: disk.Reap()}
			return nil
		},
	})

	Register(S{
		ID:        "hw/ipi-storm-smp",
		Subsystem: "hw",
		Fault:     "100k back-to-back cross-CPU IPIs around a 4-CPU ring",
		Cfg:       smpConfig,
		Expect: Outcome{
			Desc: "trace invariant: delivered == sent, clock strictly advances",
			Check: func(env *Env) error {
				st := env.State.(*hwState)
				if got := env.M.IRQ.IPIs(); got != st.want {
					return fmt.Errorf("IPIs delivered %d, want %d (storm lost interrupts)", got, st.want)
				}
				if env.M.Now() == 0 {
					return fmt.Errorf("clock did not advance under the storm")
				}
				return nil
			},
		},
		Run: func(env *Env) error {
			per := uint64(10)
			if env.Armed {
				per = 100000
			}
			ncpu := env.M.NCPUs()
			for src := 0; src < ncpu; src++ {
				env.M.SendIPIN(src, (src+1)%ncpu, per)
			}
			env.State = &hwState{want: per * uint64(ncpu)}
			return nil
		},
	})
}
