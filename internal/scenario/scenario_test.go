package scenario

import (
	"sort"
	"strings"
	"testing"
)

// mustPanic runs fn and returns the panic message, failing the test if fn
// returns normally.
func mustPanic(t *testing.T, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		fn()
		t.Fatal("expected panic, got normal return")
	}()
	return msg
}

// validRow is a well-formed fixture the rejection tests mutate. Its ID
// collides with a registered row on purpose, so even a test bug that
// reaches the duplicate check cannot pollute the registry.
func validRow() S {
	return S{
		ID: "hw/alloc-beyond-physmem", Subsystem: "hw", Fault: "fixture",
		Expect: Outcome{Desc: "d", Panic: "p"},
		Run:    func(*Env) error { return nil },
	}
}

// TestRegisterRejectsMalformed pins every registration invariant: the
// matrix must be wholly well-formed before anything runs.
func TestRegisterRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*S)
		want   string
	}{
		{"missing id", func(s *S) { s.ID = "" }, "missing id"},
		{"missing fault", func(s *S) { s.Fault = "" }, "missing id"},
		{"id prefix", func(s *S) { s.ID = "mk/misfiled" }, "must start with"},
		{"unknown subsystem", func(s *S) { s.ID = "net/x"; s.Subsystem = "net" }, "unknown subsystem"},
		{"no outcome desc", func(s *S) { s.Expect.Desc = "" }, "no expected outcome"},
		{"no outcome hook", func(s *S) { s.Expect = Outcome{Desc: "d"} }, "no expected outcome"},
		{"no run", func(s *S) { s.Run = nil }, "has no Run"},
		{"duplicate id", func(s *S) {}, "duplicate id"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validRow()
			tc.mutate(&s)
			msg := mustPanic(t, func() { Register(s) })
			if !strings.Contains(msg, tc.want) {
				t.Errorf("panic %q, want substring %q", msg, tc.want)
			}
		})
	}
}

// TestRowsSortedAndCopied: Rows returns the matrix in ID order, and the
// returned slice is the caller's to mutate.
func TestRowsSortedAndCopied(t *testing.T) {
	rows := Rows()
	if !sort.SliceIsSorted(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID }) {
		t.Error("Rows() not sorted by ID")
	}
	first := rows[0].ID
	rows[0].ID = "mutated"
	if Rows()[0].ID != first {
		t.Error("mutating Rows() result leaked into the registry")
	}
}

// TestLookup finds every registered row and nothing else.
func TestLookup(t *testing.T) {
	for _, s := range Rows() {
		got, ok := Lookup(s.ID)
		if !ok || got.ID != s.ID {
			t.Errorf("Lookup(%q) = %v, %v", s.ID, got.ID, ok)
		}
	}
	if _, ok := Lookup("hw/absent"); ok {
		t.Error("Lookup found a row that was never registered")
	}
}

// TestListReportShape: the list output declares every row with its fault
// and expected outcome, without running anything.
func TestListReportShape(t *testing.T) {
	res := ListReport()
	if len(res.Tables) != 1 {
		t.Fatalf("list report has %d tables, want 1", len(res.Tables))
	}
	if got, want := len(res.Tables[0].Rows), len(Rows()); got != want {
		t.Errorf("list has %d rows, want %d", got, want)
	}
	text := res.Text()
	if !strings.Contains(text, "fslite/write-device-error-midfile") {
		t.Error("list text missing a known row id")
	}
}
