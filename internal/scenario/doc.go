// Package scenario is the fault-injection scenario matrix: a table-driven
// negative-testing harness in the spirit of functional-test matrices where
// every row is a deliberate failure with an expected, typed outcome.
//
// Each scenario is one row — (id, subsystem, injected fault, expected
// outcome) plus a Run function that builds the system under test and
// triggers the fault. The expected outcome is typed: a sentinel error the
// armed run must return (matched with errors.Is), an expected panic (for
// hw-contract violations, which panic by design), and/or a post-mortem
// state predicate run after the fault (trace invariants, ledger
// consistency, filesystem bitmap/inode agreement).
//
// The harness asserts every row both ways: once armed (the fault fires and
// the outcome must match) and once disarmed (the same Run with injection
// off must pass cleanly), so a row can never "pass" by merely being broken.
// Rows execute deterministically on pooled hw.Machines via the bounded
// core.Runner fan-out — results are byte-identical at any -parallel width —
// and render as text and stable JSON through the core.Result model.
// `vmmklab scenarios` is the user-visible face.
package scenario
