package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/vmm"
)

// TestFaultDevNthWriteSticky: the write fault fires on exactly the Nth
// write and every write after it — a died device stays dead.
func TestFaultDevNthWriteSticky(t *testing.T) {
	fd := &FaultDev{Inner: NewMemDev(64), FailWrite: 3}
	data := bytes.Repeat([]byte{0xAB}, 64)
	for i := 1; i <= 2; i++ {
		if err := fd.Write(uint64(i), data); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	for i := 3; i <= 5; i++ {
		if err := fd.Write(uint64(i), data); !errors.Is(err, ErrDeviceFault) {
			t.Fatalf("write %d: got %v, want ErrDeviceFault", i, err)
		}
	}
	if got := fd.Writes(); got != 5 {
		t.Errorf("Writes() = %d, want 5 (failed writes count)", got)
	}
	// Blocks 1 and 2 landed; block 3 must not have (non-torn failure).
	got, err := fd.Inner.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Error("failed write landed data on the inner device")
	}
}

// TestFaultDevTorn: the first failing write lands exactly half the block
// before the error surfaces; later failing writes land nothing.
func TestFaultDevTorn(t *testing.T) {
	fd := &FaultDev{Inner: NewMemDev(64), FailWrite: 1, Torn: true}
	data := bytes.Repeat([]byte{0xCD}, 64)
	if err := fd.Write(7, data); !errors.Is(err, ErrDeviceFault) {
		t.Fatalf("got %v, want ErrDeviceFault", err)
	}
	got, err := fd.Inner.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 64)
	copy(want, data[:32])
	if !bytes.Equal(got, want) {
		t.Errorf("torn block = %x..., want first half written, second half zero", got[:4])
	}
	// The tear is one-shot: the second failing write leaves its block alone.
	if err := fd.Write(8, data); !errors.Is(err, ErrDeviceFault) {
		t.Fatalf("got %v, want ErrDeviceFault", err)
	}
	got, err = fd.Inner.Read(8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Error("second failing write landed data; only the first should tear")
	}
}

// TestFaultDevRead: the read fault mirrors the write fault — Nth and sticky.
func TestFaultDevRead(t *testing.T) {
	fd := &FaultDev{Inner: NewMemDev(64), FailRead: 2}
	if _, err := fd.Read(0); err != nil {
		t.Fatalf("read 1 failed early: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := fd.Read(0); !errors.Is(err, ErrDeviceFault) {
			t.Fatalf("got %v, want ErrDeviceFault", err)
		}
	}
}

// TestFaultDevZeroValueTransparent: the zero thresholds inject nothing —
// the disarmed leg of every fslite row runs through an idle FaultDev.
func TestFaultDevZeroValueTransparent(t *testing.T) {
	fd := &FaultDev{Inner: NewMemDev(64)}
	data := bytes.Repeat([]byte{0x11}, 64)
	for i := 0; i < 100; i++ {
		if err := fd.Write(uint64(i), data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if _, err := fd.Read(uint64(i)); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

// TestLinkBudget: the transport carries pages until the budget runs out,
// then reports ErrLinkDown without carrying the overflowing round.
func TestLinkBudget(t *testing.T) {
	src := hw.NewMachine(hw.X86(), DefaultConfig)
	dst := hw.NewMachine(hw.X86(), DefaultConfig)
	link := &Link{MaxPages: 10}
	tr := link.Transport(src, dst)
	if err := tr(0, 6); err != nil {
		t.Fatalf("round 0: %v", err)
	}
	if err := tr(1, 4); err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if err := tr(2, 1); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("round 2: got %v, want ErrLinkDown", err)
	}
	if got := link.Pages(); got != 10 {
		t.Errorf("Pages() = %d, want 10 (failed round not carried)", got)
	}
}

// TestLinkCharges: every page crossing the link costs PerPage cycles on
// both machines' clocks — the latency bound is simulated time, not config.
func TestLinkCharges(t *testing.T) {
	src := hw.NewMachine(hw.X86(), DefaultConfig)
	dst := hw.NewMachine(hw.X86(), DefaultConfig)
	link := &Link{PerPage: 100}
	tr := link.Transport(src, dst)
	s0, d0 := src.Now(), dst.Now()
	if err := tr(0, 8); err != nil {
		t.Fatal(err)
	}
	if got := src.Now() - s0; got != 800 {
		t.Errorf("source clock advanced %d, want 800", got)
	}
	if got := dst.Now() - d0; got != 800 {
		t.Errorf("destination clock advanced %d, want 800", got)
	}
	// No budget configured: the link never drops.
	if err := tr(1, 1<<20); err != nil {
		t.Errorf("unbudgeted link dropped: %v", err)
	}
}

// TestRNGDeterministic: the fuzzer's only randomness source is a pure
// function of its seed, and the zero seed falls back to a fixed constant.
func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	if newRNG(0).next() != newRNG(0).next() {
		t.Error("zero-seed fallback is not deterministic")
	}
	if newRNG(1).next() == newRNG(2).next() {
		t.Error("distinct seeds produced identical first values")
	}
}

// TestFuzzHypercallsRejectsAll: against a healthy hypervisor, every
// malformed call in a long deterministic stream must come back with a typed
// error — no panics, no silent acceptance — and the victim domain survives.
func TestFuzzHypercallsRejectsAll(t *testing.T) {
	m := hw.NewMachine(hw.X86(), DefaultConfig)
	h, _, err := vmm.New(m, 128)
	if err != nil {
		t.Fatal(err)
	}
	d, err := h.CreateDomain("victim", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := FuzzHypercalls(h, d.ID, 2000, 0xC0FFEE); err != nil {
		t.Fatal(err)
	}
	if !h.Alive(d.ID) {
		t.Error("victim domain died under the fuzz stream")
	}
}

// TestFuzzHypercallsDeadVictim: with the victim destroyed, every fuzz op
// must still come back with a typed error (dead-domain or bad-argument) —
// the stream completes clean rather than panicking on the corpse.
func TestFuzzHypercallsDeadVictim(t *testing.T) {
	m := hw.NewMachine(hw.X86(), DefaultConfig)
	h, _, err := vmm.New(m, 128)
	if err != nil {
		t.Fatal(err)
	}
	d, err := h.CreateDomain("victim", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.DestroyDomain(d.ID); err != nil {
		t.Fatal(err)
	}
	// Against a destroyed victim every op still returns a typed error
	// (dead-domain or bad-argument), so the stream must complete clean.
	if err := FuzzHypercalls(h, d.ID, 500, 7); err != nil {
		if !strings.Contains(err.Error(), "fuzz op") {
			t.Fatalf("unexpected failure shape: %v", err)
		}
		t.Fatalf("fuzz against dead victim reported: %v", err)
	}
}
