package hw

import (
	"fmt"

	"vmmk/internal/trace"
)

// Priv is a privilege ring. Ring0 is most privileged (the kernel or
// monitor); Ring1 hosts paravirtualised guest kernels under the VMM; Ring3
// is user code.
type Priv uint8

// Privilege rings.
const (
	Ring0 Priv = iota
	Ring1
	Ring2
	Ring3
)

// String returns the ring's conventional name ("ring0" … "ring3").
func (p Priv) String() string { return fmt.Sprintf("ring%d", uint8(p)) }

// SegReg indexes the six x86 segment registers.
type SegReg int

// x86 segment registers. Traps reload only CS and SS — the property the
// paper's §3.2 fast-path argument hinges on.
const (
	SegCS SegReg = iota
	SegSS
	SegDS
	SegES
	SegFS
	SegGS
	NumSegRegs
)

var segNames = [NumSegRegs]string{"cs", "ss", "ds", "es", "fs", "gs"}

// String returns the segment register's x86 mnemonic.
func (s SegReg) String() string {
	if s >= 0 && s < NumSegRegs {
		return segNames[s]
	}
	return fmt.Sprintf("seg(%d)", int(s))
}

// Segment is one segment descriptor: a base/limit window with a privilege
// level. On architectures without segmentation the selectors stay zeroed
// and are ignored.
type Segment struct {
	Base  uint64
	Limit uint64 // highest valid offset; a flat segment has Limit = ^0
	DPL   Priv
}

// Covers reports whether the linear address range of the segment reaches
// addr (i.e. addr is accessible through it).
func (s Segment) Covers(addr uint64) bool {
	return addr >= s.Base && addr-s.Base <= s.Limit
}

// CPU is one simulated processor: privilege state, segment state, the
// current address-space root, a private TLB, and the charging helpers every
// kernel path uses to account cycles. A Machine has one or more CPUs
// sharing its clock, memory and recorder; CPU 0 is the boot processor that
// every uniprocessor code path runs on. Per-CPU state (ring, segments,
// page-table root, TLB) is never shared, which is exactly why cross-CPU
// invalidation needs explicit shootdown (Machine.ShootdownAll/Entry).
type CPU struct {
	Arch  *Arch
	Clock *Clock
	TLB   *TLB
	Mem   *PhysMem
	Rec   *trace.Recorder

	// Index is the CPU's position in its Machine's CPU slice; 0 is the
	// boot processor.
	Index int

	ring Priv
	pt   *PageTable
	segs [NumSegRegs]Segment

	traps      uint64
	walkCharge bool   // charge page-walk cost on TLB miss
	cache      *Cache // optional cache-footprint model (AttachCache)

	// SMP attribution handles ("cpu<n>.ipi", "cpu<n>.shootdown"),
	// interned at construction and charged only by the cross-CPU paths,
	// so a uniprocessor run never touches them.
	ipiComp   trace.Comp
	shootComp trace.Comp
}

// NewCPU wires the boot CPU (index 0) to its substrate.
func NewCPU(arch *Arch, clock *Clock, mem *PhysMem, rec *trace.Recorder) *CPU {
	return NewCPUOn(arch, clock, mem, rec, 0)
}

// NewCPUOn wires CPU number index to its substrate. All CPUs of a machine
// share the clock, memory and recorder; the TLB is private per CPU.
func NewCPUOn(arch *Arch, clock *Clock, mem *PhysMem, rec *trace.Recorder, index int) *CPU {
	return &CPU{
		Arch:       arch,
		Clock:      clock,
		TLB:        NewTLB(arch.TLBEntries, arch.HasASID),
		Mem:        mem,
		Rec:        rec,
		Index:      index,
		ring:       Ring0,
		walkCharge: true,
		ipiComp:    rec.Intern(fmt.Sprintf("cpu%d.ipi", index)),
		shootComp:  rec.Intern(fmt.Sprintf("cpu%d.shootdown", index)),
	}
}

// Reset restores the CPU to its post-NewCPUOn state: ring 0, no address
// space, zeroed segments, no trap history, page-walk charging on, no cache
// model, and an empty TLB. The interned attribution handles survive — they
// are registry identities, not state.
func (c *CPU) Reset() {
	c.ring = Ring0
	c.pt = nil
	c.segs = [NumSegRegs]Segment{}
	c.traps = 0
	c.walkCharge = true
	c.cache = nil
	c.TLB.Reset()
}

// Ring returns the current privilege level.
func (c *CPU) Ring() Priv { return c.ring }

// SetRing changes privilege directly; kernels use Trap/ReturnTo for the
// accounted transitions and this only for initial setup.
func (c *CPU) SetRing(p Priv) { c.ring = p }

// PageTable returns the active address-space root (nil before the first
// SwitchSpace).
func (c *CPU) PageTable() *PageTable { return c.pt }

// Seg returns the current value of a segment register.
func (c *CPU) Seg(r SegReg) Segment { return c.segs[r] }

// Charge advances the clock by cost, attributes it to component and counts
// kind. It is the single point through which all accounted events flow.
func (c *CPU) Charge(component trace.Comp, kind trace.Kind, cost Cycles) {
	c.Clock.Advance(cost)
	c.Rec.Charge(uint64(c.Clock.Now()), kind, component, uint64(cost))
}

// Work advances the clock by cost and attributes it to component without
// counting a kernel event — ordinary computation.
func (c *CPU) Work(component trace.Comp, cost Cycles) {
	c.Clock.Advance(cost)
	c.Rec.ChargeCycles(component, uint64(cost))
}

// ChargeN advances the clock by n events of cost each and lands them in the
// recorder as one aggregate (one log record carrying the count). Counters
// and the cycle ledger end up exactly as n Charge calls would leave them —
// the batched hot path for uniform loops.
func (c *CPU) ChargeN(component trace.Comp, kind trace.Kind, cost Cycles, n uint64) {
	if n == 0 {
		return
	}
	c.Clock.Advance(cost * Cycles(n))
	c.Rec.ChargeN(uint64(c.Clock.Now()), kind, component, uint64(cost), n)
}

// WorkN advances the clock by n×cost of uncounted computation in one step.
func (c *CPU) WorkN(component trace.Comp, cost Cycles, n uint64) {
	if n == 0 {
		return
	}
	c.Clock.Advance(cost * Cycles(n))
	c.Rec.ChargeCycles(component, uint64(cost)*n)
}

// Trap enters ring 0 from the current ring, charging kernel-entry cost to
// component. fast selects the sysenter-style entry when the architecture
// has one.
func (c *CPU) Trap(component trace.Comp, fast bool) {
	cost := c.Arch.Costs.KernelEntry
	if fast && c.Arch.HasFastSyscall {
		cost = c.Arch.Costs.FastSyscall
	}
	c.traps++
	c.ring = Ring0
	c.Charge(component, trace.KTrap, cost)
}

// ReturnTo leaves ring 0 for the given ring, charging kernel-exit cost.
func (c *CPU) ReturnTo(component trace.Comp, p Priv) {
	c.ring = p
	c.Charge(component, trace.KKernelExit, c.Arch.Costs.KernelExit)
}

// TrapReturnN charges n complete trap/return round trips (enter ring 0,
// leave for ring p) as two aggregate events. It is the batched form of n
// Trap/ReturnTo pairs for loops whose bodies do nothing else privileged:
// counters, trap statistics, cycle totals and the final ring all match the
// per-item loop.
func (c *CPU) TrapReturnN(component trace.Comp, fast bool, p Priv, n uint64) {
	if n == 0 {
		return
	}
	entry := c.Arch.Costs.KernelEntry
	if fast && c.Arch.HasFastSyscall {
		entry = c.Arch.Costs.FastSyscall
	}
	c.traps += n
	c.ChargeN(component, trace.KTrap, entry, n)
	c.ring = p
	c.ChargeN(component, trace.KKernelExit, c.Arch.Costs.KernelExit, n)
}

// LoadSegment loads a segment register, charging descriptor-check cost. On
// a non-segmented architecture it charges nothing and stores nothing.
func (c *CPU) LoadSegment(component trace.Comp, r SegReg, s Segment) {
	if !c.Arch.HasSegmentation {
		return
	}
	c.segs[r] = s
	c.Work(component, c.Arch.Costs.SegmentReload)
}

// SegmentsExclude reports whether every currently-loaded data segment
// (those a trap does NOT reload) keeps the region [base, ~0] unreachable.
// This is the protection precondition for Xen's trap-gate syscall shortcut:
// since x86 traps reload only CS and SS, the remaining four selectors must
// already exclude the monitor's address range or guest code could touch it
// while running with the gate's privileges.
func (c *CPU) SegmentsExclude(base uint64) bool {
	if !c.Arch.HasSegmentation {
		return false // no segment limits -> no way to carve out the range
	}
	for r := SegDS; r <= SegGS; r++ {
		s := c.segs[r]
		if s.Limit == 0 && s.Base == 0 {
			continue // null selector, inaccessible
		}
		if s.Covers(base) {
			return false
		}
	}
	return true
}

// SwitchSpace makes pt the active address space. On an untagged TLB this
// costs a full flush; with ASIDs only the root write. Component is charged.
func (c *CPU) SwitchSpace(component trace.Comp, pt *PageTable) {
	if pt == c.pt {
		return
	}
	c.pt = pt
	c.Clock.Advance(c.Arch.Costs.ASSwitch)
	c.Rec.ChargeCycles(component, uint64(c.Arch.Costs.ASSwitch))
	if !c.Arch.HasASID {
		c.TLB.FlushAll()
		c.Charge(component, trace.KTLBFlush, c.Arch.Costs.TLBFlushAll)
	}
	c.CacheRun(component, pt.ASID())
}

// FlushTLB performs and charges a full TLB flush (shootdown after unmap,
// page flip, etc.).
func (c *CPU) FlushTLB(component trace.Comp) {
	c.TLB.FlushAll()
	c.Charge(component, trace.KTLBFlush, c.Arch.Costs.TLBFlushAll)
}

// FlushTLBEntry invalidates one entry and charges the single-entry cost.
func (c *CPU) FlushTLBEntry(component trace.Comp, asid uint16, vpn VPN) {
	c.TLB.FlushEntry(asid, vpn)
	c.Work(component, c.Arch.Costs.TLBFlushEntry)
}

// TranslateResult describes the outcome of an address translation.
type TranslateResult int

// Translation outcomes.
const (
	XlateOK TranslateResult = iota
	XlateNoMapping
	XlateProtection
	XlatePrivilege
)

// String names the translation outcome.
func (r TranslateResult) String() string {
	switch r {
	case XlateOK:
		return "ok"
	case XlateNoMapping:
		return "no-mapping"
	case XlateProtection:
		return "protection"
	case XlatePrivilege:
		return "privilege"
	}
	return "invalid"
}

// Translate resolves vpn in the active space with the wanted access,
// charging TLB-miss/page-walk costs to component. A failed translation is
// the hardware half of a page fault; the caller (kernel) decides what
// happens next.
func (c *CPU) Translate(component trace.Comp, vpn VPN, want Perm) (PTE, TranslateResult) {
	if c.pt == nil {
		return PTE{}, XlateNoMapping
	}
	asid := c.pt.ASID()
	if e, ok := c.TLB.Lookup(asid, vpn); ok {
		if !e.Perms.Allows(want) {
			return e, XlateProtection
		}
		if c.ring == Ring3 && !e.User {
			return e, XlatePrivilege
		}
		return e, XlateOK
	}
	// TLB miss: walk the page table (or take the software refill trap).
	walk := c.Arch.Costs.TLBMiss + Cycles(c.Arch.PTLevels)*c.Arch.Costs.PTEUpdate/4
	c.Charge(component, trace.KTLBMiss, walk)
	e, ok := c.pt.Lookup(vpn)
	if !ok {
		return PTE{}, XlateNoMapping
	}
	c.TLB.Insert(asid, vpn, e)
	if !e.Perms.Allows(want) {
		return e, XlateProtection
	}
	if c.ring == Ring3 && !e.User {
		return e, XlatePrivilege
	}
	return e, XlateOK
}

// CopyCost returns the cycle cost of copying n bytes, per the arch's
// per-word copy cost.
func (c *CPU) CopyCost(n uint64) Cycles {
	words := (n + uint64(c.Arch.WordBytes()) - 1) / uint64(c.Arch.WordBytes())
	return Cycles(words) * c.Arch.Costs.MemCopyWord
}

// Traps returns the number of kernel entries taken so far.
func (c *CPU) Traps() uint64 { return c.traps }
