package hw

import (
	"fmt"
	"sort"
)

// Perm is a page permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
	PermRW  = PermR | PermW
	PermRX  = PermR | PermX
	PermRWX = PermR | PermW | PermX
)

// String renders the permission set as "rwx" with dashes for absent bits.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Allows reports whether p grants every bit in want.
func (p Perm) Allows(want Perm) bool { return p&want == want }

// PTE is one page-table entry: a VPN -> frame mapping with permissions and
// a user/supervisor bit.
type PTE struct {
	Frame FrameID
	Perms Perm
	User  bool // accessible from user privilege
}

// VPN is a virtual page number (virtual address >> PageShift).
type VPN uint64

// densePTE is a PTE plus a presence bit, sized so the dense region is a
// flat pointer-free array the garbage collector never scans.
type densePTE struct {
	frame   FrameID
	perms   Perm
	user    bool
	present bool
}

// PageTable is a single-space page table. The simulated depth
// (Arch.PTLevels) affects only walk cost, not the data structure.
//
// Layout: domains and spaces map their pages densely from VPN 0 (identity
// maps, process images), so the low VPN range lives in a flat array —
// constant-time, allocation-free, hash-free. The occasional high mapping
// (pager and grant windows at 0x1000+) overflows into a map. Map/Lookup
// dispatch on the VPN alone, so the split is invisible to callers.
type PageTable struct {
	dense  []densePTE  // VPNs in [0, len(dense))
	sparse map[VPN]PTE // VPNs >= len(dense); allocated on first use
	n      int         // total live mappings across both regions

	// byFrame is the reverse index frame -> VPNs mapping it. Page flipping
	// revokes by frame on every packet, so revocation must not scan the
	// whole table; but most tables (identity-mapped domains that never
	// flip) pay for the index without ever consulting it, so it is built
	// lazily on the first reverse lookup and kept in lockstep only from
	// then on. Almost every frame has exactly one mapping, so the index
	// stores that VPN inline and only allocates a set for the rare
	// multiply-mapped frame.
	byFrame map[FrameID]frameRef

	asid  uint16
	epoch uint64 // bumped on any mutation; lets shadow tables detect drift
}

// denseDefault is the dense-region size for tables built without a hint
// (microkernel spaces): big enough for every process image the workloads
// fault in, 2KB of pointer-free memory per space.
const denseDefault = 256

// NewPageTable returns an empty page table tagged with asid.
func NewPageTable(asid uint16) *PageTable {
	return &PageTable{dense: make([]densePTE, denseDefault), asid: asid}
}

// NewPageTableSized is NewPageTable with a capacity hint for callers that
// know how many pages they are about to map (domain build maps one entry
// per frame; growing the tables incrementally showed up in profiles).
func NewPageTableSized(asid uint16, hint int) *PageTable {
	size := denseDefault
	if hint > 0 {
		size = hint + 64
	}
	return &PageTable{dense: make([]densePTE, size), asid: asid}
}

// frameRef is one reverse-index slot: the single mapping inline (the
// overwhelmingly common case — no allocation), or the full set once a
// second VPN maps the same frame.
type frameRef struct {
	single VPN
	multi  map[VPN]struct{} // nil unless the frame is multiply mapped
}

// ensureIndex builds the reverse index on first demand; after this every
// mutation maintains it incrementally.
func (pt *PageTable) ensureIndex() {
	if pt.byFrame != nil {
		return
	}
	pt.byFrame = make(map[FrameID]frameRef, pt.n)
	pt.Each(func(v VPN, e PTE) { pt.index(e.Frame, v) })
}

func (pt *PageTable) index(f FrameID, v VPN) {
	if pt.byFrame == nil {
		return
	}
	ref, ok := pt.byFrame[f]
	switch {
	case !ok:
		pt.byFrame[f] = frameRef{single: v}
	case ref.multi != nil:
		ref.multi[v] = struct{}{}
	case ref.single != v:
		ref.multi = map[VPN]struct{}{ref.single: {}, v: {}}
		pt.byFrame[f] = ref
	}
}

func (pt *PageTable) unindex(f FrameID, v VPN) {
	if pt.byFrame == nil {
		return
	}
	ref, ok := pt.byFrame[f]
	if !ok {
		return
	}
	if ref.multi == nil {
		if ref.single == v {
			delete(pt.byFrame, f)
		}
		return
	}
	delete(ref.multi, v)
	if len(ref.multi) == 0 {
		delete(pt.byFrame, f)
	}
}

// ASID returns the table's address-space identifier.
func (pt *PageTable) ASID() uint16 { return pt.asid }

// Epoch returns the mutation counter.
func (pt *PageTable) Epoch() uint64 { return pt.epoch }

// Map installs or replaces the entry for vpn.
func (pt *PageTable) Map(vpn VPN, e PTE) {
	if vpn < VPN(len(pt.dense)) {
		d := &pt.dense[vpn]
		if d.present {
			if d.frame != e.Frame {
				pt.unindex(d.frame, vpn)
				pt.index(e.Frame, vpn)
			}
		} else {
			pt.n++
			pt.index(e.Frame, vpn)
		}
		d.frame, d.perms, d.user, d.present = e.Frame, e.Perms, e.User, true
		pt.epoch++
		return
	}
	if old, ok := pt.sparse[vpn]; ok {
		if old.Frame != e.Frame {
			pt.unindex(old.Frame, vpn)
			pt.index(e.Frame, vpn)
		}
	} else {
		pt.n++
		pt.index(e.Frame, vpn)
	}
	if pt.sparse == nil {
		pt.sparse = make(map[VPN]PTE)
	}
	pt.sparse[vpn] = e
	pt.epoch++
}

// Unmap removes the entry for vpn; removing a missing entry is a no-op.
func (pt *PageTable) Unmap(vpn VPN) {
	if vpn < VPN(len(pt.dense)) {
		d := &pt.dense[vpn]
		if d.present {
			pt.unindex(d.frame, vpn)
			*d = densePTE{}
			pt.n--
			pt.epoch++
		}
		return
	}
	if e, ok := pt.sparse[vpn]; ok {
		delete(pt.sparse, vpn)
		pt.unindex(e.Frame, vpn)
		pt.n--
		pt.epoch++
	}
}

// Lookup returns the entry for vpn.
func (pt *PageTable) Lookup(vpn VPN) (PTE, bool) {
	if vpn < VPN(len(pt.dense)) {
		d := pt.dense[vpn]
		if !d.present {
			return PTE{}, false
		}
		return PTE{Frame: d.frame, Perms: d.perms, User: d.user}, true
	}
	e, ok := pt.sparse[vpn]
	return e, ok
}

// Len returns the number of mapped pages.
func (pt *PageTable) Len() int { return pt.n }

// Each calls fn for every mapping. Iteration order is unspecified; callers
// needing determinism must sort.
func (pt *PageTable) Each(fn func(VPN, PTE)) {
	for v := range pt.dense {
		if d := pt.dense[v]; d.present {
			fn(VPN(v), PTE{Frame: d.frame, Perms: d.perms, User: d.user})
		}
	}
	for v, e := range pt.sparse {
		fn(v, e)
	}
}

// FramesMapped returns how many entries reference frame f (used to verify
// revocation: after an unmap-all, the count must be zero).
func (pt *PageTable) FramesMapped(f FrameID) int {
	pt.ensureIndex()
	ref, ok := pt.byFrame[f]
	if !ok {
		return 0
	}
	if ref.multi == nil {
		return 1
	}
	return len(ref.multi)
}

// WritableByFrame returns, for every mapped frame, the VPNs referencing it
// with write permission, each list in ascending order. Dirty-page logging
// write-protects exactly these in one arm pass (read-only mappings must
// stay read-only when the log is disarmed), so the index is built in a
// single O(entries) sweep rather than one scan per frame.
func (pt *PageTable) WritableByFrame() map[FrameID][]VPN {
	out := make(map[FrameID][]VPN)
	pt.Each(func(v VPN, e PTE) {
		if e.Perms&PermW != 0 {
			out[e.Frame] = append(out[e.Frame], v)
		}
	})
	for _, vpns := range out {
		sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	}
	return out
}

// UnmapFrame removes every mapping of frame f and returns how many were
// removed. Page flipping and grant revocation use this on every packet, so
// it walks the reverse index — O(mappings of f), not O(table).
func (pt *PageTable) UnmapFrame(f FrameID) int {
	pt.ensureIndex()
	ref, ok := pt.byFrame[f]
	if !ok {
		return 0
	}
	n := 1
	if ref.multi == nil {
		pt.removeMapping(ref.single)
	} else {
		n = len(ref.multi)
		for v := range ref.multi {
			pt.removeMapping(v)
		}
	}
	delete(pt.byFrame, f)
	pt.epoch++
	return n
}

// removeMapping deletes the forward entry for vpn without touching the
// reverse index (UnmapFrame clears the whole slot itself).
func (pt *PageTable) removeMapping(vpn VPN) {
	if vpn < VPN(len(pt.dense)) {
		if pt.dense[vpn].present {
			pt.dense[vpn] = densePTE{}
			pt.n--
		}
		return
	}
	if _, ok := pt.sparse[vpn]; ok {
		delete(pt.sparse, vpn)
		pt.n--
	}
}

// String summarises the table for debugging output.
func (pt *PageTable) String() string {
	return fmt.Sprintf("pt(asid=%d, %d entries)", pt.asid, pt.n)
}
