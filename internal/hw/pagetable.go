package hw

import (
	"fmt"
	"sort"
)

// Perm is a page permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
	PermRW  = PermR | PermW
	PermRX  = PermR | PermX
	PermRWX = PermR | PermW | PermX
)

// String renders the permission set as "rwx" with dashes for absent bits.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Allows reports whether p grants every bit in want.
func (p Perm) Allows(want Perm) bool { return p&want == want }

// PTE is one page-table entry: a VPN -> frame mapping with permissions and
// a user/supervisor bit.
type PTE struct {
	Frame FrameID
	Perms Perm
	User  bool // accessible from user privilege
}

// VPN is a virtual page number (virtual address >> PageShift).
type VPN uint64

// PageTable is a sparse single-space page table. The simulated depth
// (Arch.PTLevels) affects only walk cost, not the data structure.
type PageTable struct {
	entries map[VPN]PTE
	asid    uint16
	epoch   uint64 // bumped on any mutation; lets shadow tables detect drift
}

// NewPageTable returns an empty page table tagged with asid.
func NewPageTable(asid uint16) *PageTable {
	return &PageTable{entries: make(map[VPN]PTE), asid: asid}
}

// ASID returns the table's address-space identifier.
func (pt *PageTable) ASID() uint16 { return pt.asid }

// Epoch returns the mutation counter.
func (pt *PageTable) Epoch() uint64 { return pt.epoch }

// Map installs or replaces the entry for vpn.
func (pt *PageTable) Map(vpn VPN, e PTE) {
	pt.entries[vpn] = e
	pt.epoch++
}

// Unmap removes the entry for vpn; removing a missing entry is a no-op.
func (pt *PageTable) Unmap(vpn VPN) {
	if _, ok := pt.entries[vpn]; ok {
		delete(pt.entries, vpn)
		pt.epoch++
	}
}

// Lookup returns the entry for vpn.
func (pt *PageTable) Lookup(vpn VPN) (PTE, bool) {
	e, ok := pt.entries[vpn]
	return e, ok
}

// Len returns the number of mapped pages.
func (pt *PageTable) Len() int { return len(pt.entries) }

// Each calls fn for every mapping. Iteration order is unspecified; callers
// needing determinism must sort.
func (pt *PageTable) Each(fn func(VPN, PTE)) {
	for v, e := range pt.entries {
		fn(v, e)
	}
}

// FramesMapped returns how many entries reference frame f (used to verify
// revocation: after an unmap-all, the count must be zero).
func (pt *PageTable) FramesMapped(f FrameID) int {
	n := 0
	for _, e := range pt.entries {
		if e.Frame == f {
			n++
		}
	}
	return n
}

// WritableByFrame returns, for every mapped frame, the VPNs referencing it
// with write permission, each list in ascending order. Dirty-page logging
// write-protects exactly these in one arm pass (read-only mappings must
// stay read-only when the log is disarmed), so the index is built in a
// single O(entries) sweep rather than one scan per frame.
func (pt *PageTable) WritableByFrame() map[FrameID][]VPN {
	out := make(map[FrameID][]VPN)
	for v, e := range pt.entries {
		if e.Perms&PermW != 0 {
			out[e.Frame] = append(out[e.Frame], v)
		}
	}
	for _, vpns := range out {
		sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	}
	return out
}

// UnmapFrame removes every mapping of frame f and returns how many were
// removed. Page flipping and grant revocation use this.
func (pt *PageTable) UnmapFrame(f FrameID) int {
	var victims []VPN
	for v, e := range pt.entries {
		if e.Frame == f {
			victims = append(victims, v)
		}
	}
	for _, v := range victims {
		delete(pt.entries, v)
	}
	if len(victims) > 0 {
		pt.epoch++
	}
	return len(victims)
}

// String summarises the table for debugging output.
func (pt *PageTable) String() string {
	return fmt.Sprintf("pt(asid=%d, %d entries)", pt.asid, len(pt.entries))
}
