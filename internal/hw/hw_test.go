package hw

import (
	"testing"
	"testing/quick"

	"vmmk/internal/trace"
)

func testMachine(t testing.TB) *Machine {
	t.Helper()
	return NewMachine(X86(), &MachineConfig{Frames: 128, IRQLines: 8})
}

func TestAllArchsCount(t *testing.T) {
	archs := AllArchs()
	if len(archs) != 9 {
		t.Fatalf("have %d architectures, the paper's claim needs 9", len(archs))
	}
	seen := map[string]bool{}
	for _, a := range archs {
		if seen[a.Name] {
			t.Errorf("duplicate arch %q", a.Name)
		}
		seen[a.Name] = true
		if a.PageSize() != 1<<a.PageShift {
			t.Errorf("%s: PageSize inconsistent", a.Name)
		}
		if a.Costs.KernelEntry == 0 || a.Costs.KernelExit == 0 {
			t.Errorf("%s: zero kernel entry/exit cost", a.Name)
		}
		if a.RegisterIPCWords == 0 {
			t.Errorf("%s: zero register IPC words", a.Name)
		}
	}
}

func TestOnlyX86HasSegmentation(t *testing.T) {
	// The trap-gate fast-path experiment (E3) only makes sense on x86;
	// the portability census (E6) counts on that asymmetry.
	for _, a := range AllArchs() {
		if a.HasSegmentation != (a.Name == "x86") {
			t.Errorf("%s: HasSegmentation = %v", a.Name, a.HasSegmentation)
		}
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.AdvanceTo(50)
	if c.Now() != 50 {
		t.Fatalf("clock = %d, want 50", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("backwards AdvanceTo did not panic")
		}
	}()
	c.AdvanceTo(49)
}

func TestEventQueueOrdering(t *testing.T) {
	clock := &Clock{}
	q := NewEventQueue(clock)
	var got []int
	q.Schedule(30, "c", func() { got = append(got, 3) })
	q.Schedule(10, "a", func() { got = append(got, 1) })
	q.Schedule(10, "b", func() { got = append(got, 2) }) // same time: scheduling order
	q.Schedule(20, "d", func() { got = append(got, 4) })
	n := q.RunUntilIdle(0)
	if n != 4 {
		t.Fatalf("fired %d events, want 4", n)
	}
	want := []int{1, 2, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if clock.Now() != 30 {
		t.Fatalf("clock = %d, want 30", clock.Now())
	}
}

func TestEventQueueRunDueDoesNotAdvance(t *testing.T) {
	clock := &Clock{}
	q := NewEventQueue(clock)
	fired := false
	q.Schedule(100, "later", func() { fired = true })
	if q.RunDue() != 0 || fired {
		t.Fatal("future event fired early")
	}
	clock.Advance(100)
	if q.RunDue() != 1 || !fired {
		t.Fatal("due event did not fire")
	}
}

func TestEventQueueCancel(t *testing.T) {
	clock := &Clock{}
	q := NewEventQueue(clock)
	fired := false
	e := q.Schedule(10, "x", func() { fired = true })
	q.Cancel(e)
	q.Cancel(e) // double cancel is a no-op
	q.RunUntilIdle(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEventQueueCascade(t *testing.T) {
	clock := &Clock{}
	q := NewEventQueue(clock)
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 5 {
			depth++
			q.ScheduleAfter(1, "r", recurse)
		}
	}
	q.Schedule(0, "seed", recurse)
	q.RunUntilIdle(0)
	if depth != 5 {
		t.Fatalf("cascade depth = %d, want 5", depth)
	}
}

func TestEventQueueRunUntil(t *testing.T) {
	clock := &Clock{}
	q := NewEventQueue(clock)
	var got []string
	q.Schedule(10, "a", func() { got = append(got, "a") })
	q.Schedule(20, "b", func() { got = append(got, "b") })
	q.RunUntil(15)
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("got %v, want [a]", got)
	}
	if clock.Now() != 15 {
		t.Fatalf("clock = %d, want 15", clock.Now())
	}
	if q.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", q.Pending())
	}
}

func TestPhysMemAllocFree(t *testing.T) {
	m := NewPhysMem(4, 4096)
	f1, err := m.Alloc("a")
	if err != nil {
		t.Fatal(err)
	}
	if m.Owner(f1) != "a" || m.FreeFrames() != 3 {
		t.Fatal("alloc bookkeeping wrong")
	}
	m.Free(f1)
	if m.Owner(f1) != "" || m.FreeFrames() != 4 {
		t.Fatal("free bookkeeping wrong")
	}
}

func TestPhysMemExhaustion(t *testing.T) {
	m := NewPhysMem(2, 4096)
	if _, err := m.AllocN("a", 3); err != ErrOutOfMemory {
		t.Fatalf("AllocN(3 of 2) err = %v, want ErrOutOfMemory", err)
	}
	if m.FreeFrames() != 2 {
		t.Fatal("failed AllocN leaked frames")
	}
	if _, err := m.AllocN("a", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc("b"); err != ErrOutOfMemory {
		t.Fatalf("Alloc on empty err = %v", err)
	}
}

func TestPhysMemDoubleFreePanics(t *testing.T) {
	m := NewPhysMem(2, 4096)
	f, _ := m.Alloc("a")
	m.Free(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.Free(f)
}

func TestPhysMemTransfer(t *testing.T) {
	m := NewPhysMem(2, 4096)
	f, _ := m.Alloc("dom0")
	copy(m.Data(f), []byte("payload"))
	m.Transfer(f, "domU")
	if m.Owner(f) != "domU" {
		t.Fatal("transfer did not change owner")
	}
	if string(m.Data(f)[:7]) != "payload" {
		t.Fatal("transfer must not disturb contents — that is the whole point of page flipping")
	}
	_, flips := m.Stats()
	if flips != 1 {
		t.Fatalf("flips = %d, want 1", flips)
	}
}

func TestPhysMemCopy(t *testing.T) {
	m := NewPhysMem(2, 4096)
	a, _ := m.Alloc("x")
	b, _ := m.Alloc("x")
	copy(m.Data(a), []byte("hello"))
	if n := m.Copy(b, a, 5); n != 5 {
		t.Fatalf("copied %d bytes, want 5", n)
	}
	if string(m.Data(b)[:5]) != "hello" {
		t.Fatal("copy corrupted data")
	}
	if n := m.Copy(b, a, 1<<40); n != 4096 {
		t.Fatalf("oversized copy moved %d bytes, want page size", n)
	}
}

func TestPageTableMapUnmap(t *testing.T) {
	pt := NewPageTable(7)
	pt.Map(5, PTE{Frame: 9, Perms: PermRW, User: true})
	e, ok := pt.Lookup(5)
	if !ok || e.Frame != 9 {
		t.Fatal("lookup after map failed")
	}
	ep1 := pt.Epoch()
	pt.Unmap(5)
	if _, ok := pt.Lookup(5); ok {
		t.Fatal("entry survived unmap")
	}
	if pt.Epoch() == ep1 {
		t.Fatal("epoch did not advance on unmap")
	}
	ep2 := pt.Epoch()
	pt.Unmap(5) // no-op
	if pt.Epoch() != ep2 {
		t.Fatal("no-op unmap advanced epoch")
	}
}

func TestPageTableUnmapFrame(t *testing.T) {
	pt := NewPageTable(1)
	pt.Map(1, PTE{Frame: 3, Perms: PermR})
	pt.Map(2, PTE{Frame: 3, Perms: PermR})
	pt.Map(4, PTE{Frame: 8, Perms: PermR})
	if n := pt.UnmapFrame(3); n != 2 {
		t.Fatalf("unmapped %d entries, want 2", n)
	}
	if pt.FramesMapped(3) != 0 || pt.FramesMapped(8) != 1 {
		t.Fatal("revocation incomplete")
	}
}

func TestPermString(t *testing.T) {
	if PermRW.String() != "rw-" || Perm(0).String() != "---" || PermRWX.String() != "rwx" {
		t.Fatal("perm rendering wrong")
	}
	if !PermRWX.Allows(PermRX) || PermR.Allows(PermW) {
		t.Fatal("Allows wrong")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(2, false)
	if _, ok := tlb.Lookup(0, 1); ok {
		t.Fatal("hit in empty TLB")
	}
	tlb.Insert(0, 1, PTE{Frame: 1})
	if _, ok := tlb.Lookup(0, 1); !ok {
		t.Fatal("miss after insert")
	}
	hits, misses, _ := tlb.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestTLBFIFOEviction(t *testing.T) {
	tlb := NewTLB(2, false)
	tlb.Insert(0, 1, PTE{})
	tlb.Insert(0, 2, PTE{})
	tlb.Insert(0, 3, PTE{}) // evicts vpn 1
	if _, ok := tlb.Lookup(0, 1); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := tlb.Lookup(0, 3); !ok {
		t.Fatal("newest entry missing")
	}
	if tlb.Len() != 2 {
		t.Fatalf("len = %d, want 2", tlb.Len())
	}
}

func TestTLBUntaggedIgnoresASID(t *testing.T) {
	tlb := NewTLB(4, false)
	tlb.Insert(1, 9, PTE{Frame: 5})
	if e, ok := tlb.Lookup(2, 9); !ok || e.Frame != 5 {
		t.Fatal("untagged TLB should alias across ASIDs — that is why x86 must flush")
	}
}

func TestTLBTaggedSeparatesASIDs(t *testing.T) {
	tlb := NewTLB(4, true)
	tlb.Insert(1, 9, PTE{Frame: 5})
	if _, ok := tlb.Lookup(2, 9); ok {
		t.Fatal("tagged TLB leaked a translation across spaces")
	}
	tlb.FlushASID(1)
	if _, ok := tlb.Lookup(1, 9); ok {
		t.Fatal("FlushASID left entry")
	}
}

func TestTLBFlushASIDUntaggedFlushesAll(t *testing.T) {
	tlb := NewTLB(4, false)
	tlb.Insert(0, 1, PTE{})
	tlb.Insert(0, 2, PTE{})
	tlb.FlushASID(7)
	if tlb.Len() != 0 {
		t.Fatal("untagged FlushASID must flush everything")
	}
}

func TestTLBEvictionAfterFlushInteraction(t *testing.T) {
	// A flush empties the map but the FIFO may hold stale keys; further
	// inserts must not over-evict.
	tlb := NewTLB(2, false)
	tlb.Insert(0, 1, PTE{})
	tlb.FlushAll()
	tlb.Insert(0, 2, PTE{})
	tlb.Insert(0, 3, PTE{})
	if tlb.Len() != 2 {
		t.Fatalf("len after flush+refill = %d, want 2", tlb.Len())
	}
}

func TestCPUTrapCharges(t *testing.T) {
	m := testMachine(t)
	m.CPU.SetRing(Ring3)
	before := m.Now()
	m.CPU.Trap(m.Rec.Intern("k"), false)
	if m.CPU.Ring() != Ring0 {
		t.Fatal("trap did not enter ring0")
	}
	if m.Now()-before != m.Arch.Costs.KernelEntry {
		t.Fatalf("trap cost %d, want %d", m.Now()-before, m.Arch.Costs.KernelEntry)
	}
	if m.Rec.Counts(trace.KTrap) != 1 {
		t.Fatal("trap not recorded")
	}
	m.CPU.ReturnTo(m.Rec.Intern("k"), Ring3)
	if m.CPU.Ring() != Ring3 {
		t.Fatal("return did not restore ring")
	}
}

func TestCPUFastTrapCheaper(t *testing.T) {
	m := testMachine(t)
	t0 := m.Now()
	m.CPU.Trap(m.Rec.Intern("k"), false)
	slow := m.Now() - t0
	t1 := m.Now()
	m.CPU.Trap(m.Rec.Intern("k"), true)
	fast := m.Now() - t1
	if fast >= slow {
		t.Fatalf("fast syscall (%d) not cheaper than trap (%d)", fast, slow)
	}
}

func TestCPUSwitchSpaceUntaggedFlushes(t *testing.T) {
	m := testMachine(t) // x86: untagged
	pt1, pt2 := NewPageTable(1), NewPageTable(2)
	m.CPU.SwitchSpace(m.Rec.Intern("k"), pt1)
	m.CPU.TLB.Insert(1, 5, PTE{Frame: 1})
	m.CPU.SwitchSpace(m.Rec.Intern("k"), pt2)
	if m.CPU.TLB.Len() != 0 {
		t.Fatal("untagged switch must flush the TLB")
	}
	if m.Rec.Counts(trace.KTLBFlush) == 0 {
		t.Fatal("flush not recorded")
	}
}

func TestCPUSwitchSpaceTaggedKeepsTLB(t *testing.T) {
	m := NewMachine(ARM(), &MachineConfig{Frames: 16})
	pt1, pt2 := NewPageTable(1), NewPageTable(2)
	m.CPU.SwitchSpace(m.Rec.Intern("k"), pt1)
	m.CPU.TLB.Insert(1, 5, PTE{Frame: 1})
	m.CPU.SwitchSpace(m.Rec.Intern("k"), pt2)
	if m.CPU.TLB.Len() != 1 {
		t.Fatal("tagged switch should keep TLB contents")
	}
}

func TestCPUSwitchSpaceSameIsFree(t *testing.T) {
	m := testMachine(t)
	pt := NewPageTable(1)
	m.CPU.SwitchSpace(m.Rec.Intern("k"), pt)
	before := m.Now()
	m.CPU.SwitchSpace(m.Rec.Intern("k"), pt)
	if m.Now() != before {
		t.Fatal("re-switching to the current space must be free")
	}
}

func TestCPUTranslate(t *testing.T) {
	m := testMachine(t)
	pt := NewPageTable(1)
	f, _ := m.Mem.Alloc("a")
	pt.Map(5, PTE{Frame: f, Perms: PermRW, User: true})
	m.CPU.SwitchSpace(m.Rec.Intern("k"), pt)
	m.CPU.SetRing(Ring3)

	if _, res := m.CPU.Translate(m.Rec.Intern("a"), 5, PermR); res != XlateOK {
		t.Fatalf("first translate = %v, want ok (miss+refill)", res)
	}
	misses0 := m.Rec.Counts(trace.KTLBMiss)
	if _, res := m.CPU.Translate(m.Rec.Intern("a"), 5, PermW); res != XlateOK {
		t.Fatal("second translate failed")
	}
	if m.Rec.Counts(trace.KTLBMiss) != misses0 {
		t.Fatal("second translate should hit the TLB")
	}
	if _, res := m.CPU.Translate(m.Rec.Intern("a"), 5, PermX); res != XlateProtection {
		t.Fatal("execute of rw- page should fault")
	}
	if _, res := m.CPU.Translate(m.Rec.Intern("a"), 99, PermR); res != XlateNoMapping {
		t.Fatal("unmapped vpn should fault")
	}
}

func TestCPUTranslatePrivilege(t *testing.T) {
	m := testMachine(t)
	pt := NewPageTable(1)
	pt.Map(5, PTE{Frame: 0, Perms: PermRW, User: false})
	m.CPU.SwitchSpace(m.Rec.Intern("k"), pt)
	m.CPU.SetRing(Ring3)
	if _, res := m.CPU.Translate(m.Rec.Intern("a"), 5, PermR); res != XlatePrivilege {
		t.Fatalf("user access to supervisor page = %v, want privilege fault", res)
	}
	m.CPU.SetRing(Ring0)
	// Entry is now cached; kernel access must succeed.
	if _, res := m.CPU.Translate(m.Rec.Intern("k"), 5, PermR); res != XlateOK {
		t.Fatal("kernel access to supervisor page failed")
	}
}

func TestSegmentsExclude(t *testing.T) {
	m := testMachine(t)
	const vmmBase = 0xFC00_0000
	// Truncated segments that stop below the monitor: fast path legal.
	for r := SegDS; r <= SegGS; r++ {
		m.CPU.LoadSegment(m.Rec.Intern("g"), r, Segment{Base: 0, Limit: vmmBase - 1, DPL: Ring3})
	}
	if !m.CPU.SegmentsExclude(vmmBase) {
		t.Fatal("truncated segments should exclude the monitor")
	}
	// glibc-TLS-style flat GS: violates the precondition.
	m.CPU.LoadSegment(m.Rec.Intern("g"), SegGS, Segment{Base: 0, Limit: ^uint64(0), DPL: Ring3})
	if m.CPU.SegmentsExclude(vmmBase) {
		t.Fatal("flat GS must break the exclusion — this is the glibc incident")
	}
}

func TestSegmentsExcludeNonSegmented(t *testing.T) {
	m := NewMachine(AMD64(), &MachineConfig{Frames: 16})
	if m.CPU.SegmentsExclude(0xFC00_0000) {
		t.Fatal("arch without segment limits can never exclude a range")
	}
}

func TestIRQDispatchOrderAndMask(t *testing.T) {
	m := testMachine(t)
	var got []IRQLine
	h := func(l IRQLine) { got = append(got, l) }
	m.IRQ.SetHandler(2, h)
	m.IRQ.SetHandler(5, h)
	m.IRQ.Raise(5)
	m.IRQ.Raise(2)
	m.IRQ.Mask(5)
	if n := m.IRQ.DispatchPending(m.Rec.Intern("k")); n != 1 {
		t.Fatalf("dispatched %d, want 1 (line 5 masked)", n)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v, want [2]", got)
	}
	m.IRQ.Unmask(5)
	m.IRQ.DispatchPending(m.Rec.Intern("k"))
	if len(got) != 2 || got[1] != 5 {
		t.Fatal("masked line lost its pending state")
	}
}

func TestIRQSpurious(t *testing.T) {
	m := testMachine(t)
	m.IRQ.Raise(3) // no handler
	m.IRQ.DispatchPending(m.Rec.Intern("k"))
	if _, spurious := m.IRQ.Stats(); spurious != 1 {
		t.Fatalf("spurious = %d, want 1", spurious)
	}
}

func TestCopyCost(t *testing.T) {
	m := testMachine(t) // 32-bit words, 1 cycle/word
	if got := m.CPU.CopyCost(8); got != 2 {
		t.Fatalf("CopyCost(8) = %d, want 2", got)
	}
	if got := m.CPU.CopyCost(1); got != 1 {
		t.Fatalf("CopyCost(1) = %d, want 1 (round up)", got)
	}
}

func TestQuickTLBNeverExceedsCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		tlb := NewTLB(8, true)
		for _, op := range ops {
			vpn := VPN(op % 64)
			asid := uint16(op % 3)
			switch op % 4 {
			case 0, 1:
				tlb.Insert(asid, vpn, PTE{Frame: FrameID(op)})
			case 2:
				tlb.Lookup(asid, vpn)
			case 3:
				tlb.FlushASID(asid)
			}
			if tlb.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPhysMemConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewPhysMem(16, 4096)
		var held []FrameID
		for _, op := range ops {
			if op%2 == 0 {
				if f, err := m.Alloc("q"); err == nil {
					held = append(held, f)
				}
			} else if len(held) > 0 {
				m.Free(held[len(held)-1])
				held = held[:len(held)-1]
			}
			if m.FreeFrames()+len(held) != 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
