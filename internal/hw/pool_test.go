package hw

import (
	"testing"

	"vmmk/internal/trace"
)

// exercise runs a small mixed workload on m: allocation, page writes, TLB
// traffic, traps, IPIs and scheduled events — enough to dirty every
// subsystem Reset must restore.
func exercise(t *testing.T, m *Machine) {
	t.Helper()
	comp := m.Rec.Intern("test.comp")
	frames, err := m.Mem.AllocN("test", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		m.Mem.Data(f)[0] = byte(i + 1)
	}
	pt := NewPageTable(1)
	for i, f := range frames {
		pt.Map(VPN(i), PTE{Frame: f, Perms: PermRW, User: true})
	}
	m.CPU.SwitchSpace(comp, pt)
	for i := range frames {
		m.CPU.Translate(comp, VPN(i), PermR)
	}
	m.CPU.Trap(comp, false)
	m.CPU.ReturnTo(comp, Ring3)
	if m.NCPUs() > 1 {
		m.SendIPI(0, 1)
		m.ShootdownAll(0, []int{1})
	}
	m.IRQ.SetHandler(3, func(IRQLine) {})
	m.IRQ.Raise(3)
	m.Events.ScheduleAfter(10_000, "never", func() { t.Error("stale event fired") })
	m.Mem.Free(frames[0])
}

// fingerprint captures everything a fresh machine exposes that an
// experiment could observe.
type machineFP struct {
	now      Cycles
	pending  int
	freeFrm  int
	total    uint64
	traps    uint64
	ring     Priv
	tlbLen   int
	ipis     uint64
	frame0   FrameID
	frame0b0 byte
}

func fingerprint(m *Machine) machineFP {
	f, err := m.Mem.Alloc("fp")
	if err != nil {
		panic(err)
	}
	b0 := m.Mem.Data(f)[0]
	fp := machineFP{
		now:      m.Now(),
		pending:  m.Events.Pending(),
		freeFrm:  m.Mem.FreeFrames(),
		total:    m.Rec.TotalCycles(),
		traps:    m.CPU.Traps(),
		ring:     m.CPU.Ring(),
		tlbLen:   m.CPU.TLB.Len(),
		ipis:     m.IRQ.IPIs(),
		frame0:   f,
		frame0b0: b0,
	}
	return fp
}

// TestMachineResetRestoresFreshState pins the Reset contract: after a mixed
// workload, Reset leaves the machine observably identical to a brand-new
// one — same virtual time, same allocator order, zeroed memory, empty TLB,
// quiescent queue and recorder.
func TestMachineResetRestoresFreshState(t *testing.T) {
	for _, ncpus := range []int{1, 4} {
		cfg := &MachineConfig{Frames: 64, NCPUs: ncpus}
		used := NewMachine(X86(), cfg)
		exercise(t, used)
		used.Reset()

		fresh := NewMachine(X86(), cfg)
		if got, want := fingerprint(used), fingerprint(fresh); got != want {
			t.Errorf("ncpus=%d: reset machine %+v, fresh machine %+v", ncpus, got, want)
		}
		for k := trace.Kind(0); k < trace.Kind(trace.NKinds); k++ {
			if used.Rec.Counts(k) != 0 {
				t.Errorf("ncpus=%d: counter %v = %d after Reset", ncpus, k, used.Rec.Counts(k))
			}
		}
	}
}

// TestMachineResetClearsEvents pins that queued events never leak across a
// Reset — the exercise helper schedules one that calls t.Error if fired.
func TestMachineResetClearsEvents(t *testing.T) {
	m := NewMachine(X86(), &MachineConfig{Frames: 64})
	exercise(t, m)
	m.Reset()
	m.RunUntilIdle(0) // would fire the stale event if Reset leaked it
	if m.Now() != 0 {
		t.Errorf("clock = %d after Reset+idle drain, want 0", m.Now())
	}
}

// TestMachinePoolReuse pins the pool identity rule: same arch value + same
// normalized config hits; different identities miss.
func TestMachinePoolReuse(t *testing.T) {
	p := NewMachinePool()
	m1 := p.Get(X86(), &MachineConfig{Frames: 64})
	p.Put(m1)
	// X86() returns a fresh pointer — the pool must key by value.
	m2 := p.Get(X86(), &MachineConfig{Frames: 64})
	if m1 != m2 {
		t.Fatal("pool did not reuse an identical machine")
	}
	if hits, _ := p.Stats(); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}

	p.Put(m2)
	if m3 := p.Get(ARM(), &MachineConfig{Frames: 64}); m3 == m2 {
		t.Fatal("pool crossed architectures")
	}
	if m4 := p.Get(X86(), &MachineConfig{Frames: 128}); m4 == m2 {
		t.Fatal("pool crossed configs")
	}
	// Defaults normalize: nil config and explicit defaults share a key.
	p2 := NewMachinePool()
	p2.Put(p2.Get(X86(), nil))
	if m5 := p2.Get(X86(), &MachineConfig{Frames: 4096, IRQLines: 16, NCPUs: 1}); m5 == nil {
		t.Fatal("nil get")
	} else if hits, _ := p2.Stats(); hits != 1 {
		t.Fatal("normalized config did not hit the nil-config entry")
	}
}

// TestPoolReturnsCleanMachine is the pool's differential contract end to
// end: Get, dirty the machine with a mixed workload, Put, Get again — the
// recycled machine must fingerprint identically to a brand-new one.
func TestPoolReturnsCleanMachine(t *testing.T) {
	cfg := &MachineConfig{Frames: 64, NCPUs: 2}
	p := NewMachinePool()
	m := p.Get(X86(), cfg)
	exercise(t, m)
	p.Put(m)
	got := p.Get(X86(), cfg)
	if got != m {
		t.Fatal("pool did not recycle the machine")
	}
	fresh := NewMachine(X86(), cfg)
	if a, b := fingerprint(got), fingerprint(fresh); a != b {
		t.Errorf("recycled machine %+v, fresh machine %+v", a, b)
	}
}

// TestNilPoolFallsBack pins that a nil *MachinePool degrades to plain
// NewMachine, so optional threading needs no guards.
func TestNilPoolFallsBack(t *testing.T) {
	var p *MachinePool
	m := p.Get(X86(), &MachineConfig{Frames: 32})
	if m == nil || m.Mem.TotalFrames() != 32 {
		t.Fatal("nil pool did not build a fresh machine")
	}
	p.Put(m) // no-op, must not panic
}

// TestBatchedChargeHelpersMatchLoops pins that the aggregate hw charge paths
// (ChargeN, WorkN, TrapReturnN, SendIPIN, ShootdownEntries) leave counters,
// cycles and the clock exactly where the per-item loops do.
func TestBatchedChargeHelpersMatchLoops(t *testing.T) {
	const n = 9
	cfg := &MachineConfig{Frames: 64, NCPUs: 3}

	loop := NewMachine(X86(), cfg)
	lc := loop.Rec.Intern("x")
	for i := 0; i < n; i++ {
		loop.CPU.Charge(lc, trace.KTrap, 10)
		loop.CPU.Work(lc, 7)
	}
	for i := 0; i < n; i++ {
		loop.CPU.Trap(lc, true)
		loop.CPU.ReturnTo(lc, Ring3)
	}
	for i := 0; i < n; i++ {
		loop.SendIPI(0, 1)
	}
	vpns := make([]VPN, n)
	for i := range vpns {
		vpns[i] = VPN(i)
		loop.ShootdownEntry(0, []int{1, 2}, 1, VPN(i))
	}

	batch := NewMachine(X86(), cfg)
	bc := batch.Rec.Intern("x")
	batch.CPU.ChargeN(bc, trace.KTrap, 10, n)
	batch.CPU.WorkN(bc, 7, n)
	batch.CPU.TrapReturnN(bc, true, Ring3, n)
	batch.SendIPIN(0, 1, n)
	batch.ShootdownEntries(0, []int{1, 2}, 1, vpns)

	if loop.Now() != batch.Now() {
		t.Errorf("clock: loop %d, batch %d", loop.Now(), batch.Now())
	}
	for k := trace.Kind(0); k < trace.Kind(trace.NKinds); k++ {
		if loop.Rec.Counts(k) != batch.Rec.Counts(k) {
			t.Errorf("counts(%v): loop %d, batch %d", k, loop.Rec.Counts(k), batch.Rec.Counts(k))
		}
	}
	for _, comp := range loop.Rec.Components() {
		if loop.Rec.Cycles(comp) != batch.Rec.Cycles(comp) {
			t.Errorf("cycles(%s): loop %d, batch %d", comp, loop.Rec.Cycles(comp), batch.Rec.Cycles(comp))
		}
	}
	if loop.CPU.Traps() != batch.CPU.Traps() {
		t.Errorf("traps: loop %d, batch %d", loop.CPU.Traps(), batch.CPU.Traps())
	}
	if loop.IRQ.IPIs() != batch.IRQ.IPIs() {
		t.Errorf("ipis: loop %d, batch %d", loop.IRQ.IPIs(), batch.IRQ.IPIs())
	}
}

// TestMachineRunSkipsIdleTime pins the event-driven step: Run jumps the
// clock across idle gaps instead of stepping through them, fires due events
// in order, and leaves late events queued.
func TestMachineRunSkipsIdleTime(t *testing.T) {
	m := NewMachine(X86(), &MachineConfig{Frames: 16})
	var fired []string
	m.Events.Schedule(1_000, "a", func() { fired = append(fired, "a") })
	m.Events.Schedule(500_000, "b", func() { fired = append(fired, "b") })
	m.Events.Schedule(2_000_000, "late", func() { fired = append(fired, "late") })

	if n := m.Run(1_000_000); n != 2 {
		t.Fatalf("Run fired %d events, want 2", n)
	}
	if m.Now() != 1_000_000 {
		t.Errorf("clock = %d, want 1000000 (idle skip to the horizon)", m.Now())
	}
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
		t.Errorf("fired = %v", fired)
	}
	if m.Events.Pending() != 1 {
		t.Errorf("late event lost: pending = %d", m.Events.Pending())
	}
	m.AdvanceTo(3_000_000)
	if len(fired) != 3 || fired[2] != "late" {
		t.Errorf("AdvanceTo did not fire the late event: %v", fired)
	}
}
