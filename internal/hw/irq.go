package hw

import (
	"fmt"

	"vmmk/internal/trace"
)

// IRQLine is a physical interrupt line number.
type IRQLine int

// Handler receives a dispatched interrupt.
type Handler func(line IRQLine)

// IRQController models a simple PIC/APIC: lines can be raised by devices,
// masked by the kernel, and are dispatched in ascending line order (fixed
// priority) when the kernel asks. Dispatch is explicit rather than
// preemptive: the kernels poll at their scheduling points, which matches
// how the simulation serialises work and keeps traces deterministic.
//
// On a multi-CPU machine the controller doubles as the local-APIC mesh:
// external device interrupts are routed to the boot CPU (CPUs[0], the
// common x86 arrangement of the paper's era), while inter-processor
// interrupts go point-to-point between any two CPUs via Machine.SendIPI.
type IRQController struct {
	cpu      *CPU       // boot CPU: fields all external interrupts
	comp     trace.Comp // "hw.irq", interned at construction
	lines    int
	pending  []bool
	masked   []bool
	handlers []Handler
	raised   uint64
	spurious uint64
	ipis     uint64
}

// NewIRQController returns a controller with n lines, all unmasked and
// without handlers, fielding external interrupts on cpus[0]. (IPIs are
// point-to-point — deliverIPI takes both endpoints — so the controller
// itself only needs the boot CPU.)
func NewIRQController(cpus []*CPU, n int) *IRQController {
	if n <= 0 {
		panic("hw: controller needs at least one line")
	}
	if len(cpus) == 0 {
		panic("hw: controller needs at least one CPU")
	}
	return &IRQController{
		cpu:      cpus[0],
		comp:     cpus[0].Rec.Intern("hw.irq"),
		lines:    n,
		pending:  make([]bool, n),
		masked:   make([]bool, n),
		handlers: make([]Handler, n),
	}
}

// Lines returns the number of interrupt lines.
func (ic *IRQController) Lines() int { return ic.lines }

// SetHandler installs the kernel's handler for a line.
func (ic *IRQController) SetHandler(line IRQLine, h Handler) {
	ic.check(line)
	ic.handlers[line] = h
}

// Mask disables delivery for a line; pending state is retained.
func (ic *IRQController) Mask(line IRQLine) {
	ic.check(line)
	ic.masked[line] = true
}

// Unmask re-enables delivery for a line.
func (ic *IRQController) Unmask(line IRQLine) {
	ic.check(line)
	ic.masked[line] = false
}

// Raise asserts a line (typically from a device completion event). The
// event is recorded; delivery happens at the next DispatchPending.
func (ic *IRQController) Raise(line IRQLine) {
	ic.check(line)
	ic.raised++
	ic.pending[line] = true
	ic.cpu.Rec.Charge(uint64(ic.cpu.Clock.Now()), trace.KIRQ, ic.comp, 0)
}

// Pending reports whether a line is asserted.
func (ic *IRQController) Pending(line IRQLine) bool {
	ic.check(line)
	return ic.pending[line]
}

// AnyPending reports whether any unmasked line is asserted.
func (ic *IRQController) AnyPending() bool {
	for i, p := range ic.pending {
		if p && !ic.masked[i] {
			return true
		}
	}
	return false
}

// DispatchPending delivers every unmasked pending line in ascending order,
// charging dispatch cost to component per delivery. Lines without handlers
// are counted as spurious and dropped. It returns the number delivered.
func (ic *IRQController) DispatchPending(component trace.Comp) int {
	n := 0
	for i := 0; i < ic.lines; i++ {
		if !ic.pending[i] || ic.masked[i] {
			continue
		}
		ic.pending[i] = false
		h := ic.handlers[i]
		if h == nil {
			ic.spurious++
			continue
		}
		ic.cpu.Charge(component, trace.KIRQ, ic.cpu.Arch.Costs.IRQDispatch)
		h(IRQLine(i))
		n++
	}
	return n
}

// deliverIPI is the inter-processor interrupt path (Machine.SendIPI and
// the shootdown helpers route through it): the sender pays the APIC write
// plus the cross-CPU interrupt latency, the target pays acceptance and
// vectoring. Both halves advance the one shared clock — the simulation
// serialises the machine — but each half lands on its own CPU's component
// ("cpu<n>.ipi"), so the E12 tables can show where the SMP tax falls.
func (ic *IRQController) deliverIPI(src, dst *CPU) { ic.deliverIPIN(src, dst, 1) }

// deliverIPIN delivers n back-to-back IPIs between the same two CPUs as one
// aggregate: identical counters, cycle totals and clock movement to n
// deliverIPI calls, in O(1) recorder work.
func (ic *IRQController) deliverIPIN(src, dst *CPU, n uint64) {
	if n == 0 {
		return
	}
	ic.ipis += n
	costs := src.Arch.Costs
	src.Clock.Advance(costs.IPI * Cycles(n))
	src.Rec.ChargeN(uint64(src.Clock.Now()), trace.KIPI, src.ipiComp, uint64(costs.IPI), n)
	dst.Clock.Advance(costs.IRQDispatch * Cycles(n))
	dst.Rec.ChargeCycles(dst.ipiComp, uint64(costs.IRQDispatch)*n)
}

// Reset restores the controller to its post-NewIRQController state: no
// pending or masked lines, no handlers, statistics cleared.
func (ic *IRQController) Reset() {
	clear(ic.pending)
	clear(ic.masked)
	clear(ic.handlers)
	ic.raised, ic.spurious, ic.ipis = 0, 0, 0
}

// IPIs returns how many inter-processor interrupts have been delivered.
func (ic *IRQController) IPIs() uint64 { return ic.ipis }

// Stats returns cumulative raised and spurious counts.
func (ic *IRQController) Stats() (raised, spurious uint64) { return ic.raised, ic.spurious }

func (ic *IRQController) check(line IRQLine) {
	if line < 0 || int(line) >= ic.lines {
		panic(fmt.Sprintf("hw: IRQ line %d out of range (%d lines)", line, ic.lines))
	}
}
