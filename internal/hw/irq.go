package hw

import (
	"fmt"

	"vmmk/internal/trace"
)

// IRQLine is a physical interrupt line number.
type IRQLine int

// Handler receives a dispatched interrupt.
type Handler func(line IRQLine)

// IRQController models a simple PIC/APIC: lines can be raised by devices,
// masked by the kernel, and are dispatched in ascending line order (fixed
// priority) when the kernel asks. Dispatch is explicit rather than
// preemptive: the kernels poll at their scheduling points, which matches
// how the simulation serialises work and keeps traces deterministic.
type IRQController struct {
	cpu      *CPU
	comp     trace.Comp // "hw.irq", interned at construction
	lines    int
	pending  []bool
	masked   []bool
	handlers []Handler
	raised   uint64
	spurious uint64
}

// NewIRQController returns a controller with n lines, all unmasked and
// without handlers.
func NewIRQController(cpu *CPU, n int) *IRQController {
	if n <= 0 {
		panic("hw: controller needs at least one line")
	}
	return &IRQController{
		cpu:      cpu,
		comp:     cpu.Rec.Intern("hw.irq"),
		lines:    n,
		pending:  make([]bool, n),
		masked:   make([]bool, n),
		handlers: make([]Handler, n),
	}
}

// Lines returns the number of interrupt lines.
func (ic *IRQController) Lines() int { return ic.lines }

// SetHandler installs the kernel's handler for a line.
func (ic *IRQController) SetHandler(line IRQLine, h Handler) {
	ic.check(line)
	ic.handlers[line] = h
}

// Mask disables delivery for a line; pending state is retained.
func (ic *IRQController) Mask(line IRQLine) {
	ic.check(line)
	ic.masked[line] = true
}

// Unmask re-enables delivery for a line.
func (ic *IRQController) Unmask(line IRQLine) {
	ic.check(line)
	ic.masked[line] = false
}

// Raise asserts a line (typically from a device completion event). The
// event is recorded; delivery happens at the next DispatchPending.
func (ic *IRQController) Raise(line IRQLine) {
	ic.check(line)
	ic.raised++
	ic.pending[line] = true
	ic.cpu.Rec.Charge(uint64(ic.cpu.Clock.Now()), trace.KIRQ, ic.comp, 0)
}

// Pending reports whether a line is asserted.
func (ic *IRQController) Pending(line IRQLine) bool {
	ic.check(line)
	return ic.pending[line]
}

// AnyPending reports whether any unmasked line is asserted.
func (ic *IRQController) AnyPending() bool {
	for i, p := range ic.pending {
		if p && !ic.masked[i] {
			return true
		}
	}
	return false
}

// DispatchPending delivers every unmasked pending line in ascending order,
// charging dispatch cost to component per delivery. Lines without handlers
// are counted as spurious and dropped. It returns the number delivered.
func (ic *IRQController) DispatchPending(component trace.Comp) int {
	n := 0
	for i := 0; i < ic.lines; i++ {
		if !ic.pending[i] || ic.masked[i] {
			continue
		}
		ic.pending[i] = false
		h := ic.handlers[i]
		if h == nil {
			ic.spurious++
			continue
		}
		ic.cpu.Charge(component, trace.KIRQ, ic.cpu.Arch.Costs.IRQDispatch)
		h(IRQLine(i))
		n++
	}
	return n
}

// Stats returns cumulative raised and spurious counts.
func (ic *IRQController) Stats() (raised, spurious uint64) { return ic.raised, ic.spurious }

func (ic *IRQController) check(line IRQLine) {
	if line < 0 || int(line) >= ic.lines {
		panic(fmt.Sprintf("hw: IRQ line %d out of range (%d lines)", line, ic.lines))
	}
}
