package hw

// tlbKey tags an entry with the address space that installed it. On
// architectures without ASIDs every entry carries tag 0 and a space switch
// must flush.
type tlbKey struct {
	asid uint16
	vpn  VPN
}

// TLB is a deterministic FIFO-replacement translation cache. Real TLBs are
// set-associative with pseudo-random replacement; FIFO preserves the only
// property the experiments need — bounded capacity with misses charged per
// refill — while keeping runs reproducible.
type TLB struct {
	capacity int
	tagged   bool
	entries  map[tlbKey]PTE
	fifo     []tlbKey
	hits     uint64
	misses   uint64
	flushes  uint64
}

// NewTLB returns a TLB of the given capacity. tagged selects ASID tagging.
func NewTLB(capacity int, tagged bool) *TLB {
	if capacity <= 0 {
		panic("hw: TLB capacity must be positive")
	}
	return &TLB{
		capacity: capacity,
		tagged:   tagged,
		entries:  make(map[tlbKey]PTE, capacity),
	}
}

// Tagged reports whether the TLB distinguishes address spaces.
func (t *TLB) Tagged() bool { return t.tagged }

// Capacity returns the entry capacity.
func (t *TLB) Capacity() int { return t.capacity }

func (t *TLB) key(asid uint16, vpn VPN) tlbKey {
	if !t.tagged {
		asid = 0
	}
	return tlbKey{asid, vpn}
}

// Lookup probes the TLB and updates hit/miss statistics.
func (t *TLB) Lookup(asid uint16, vpn VPN) (PTE, bool) {
	e, ok := t.entries[t.key(asid, vpn)]
	if ok {
		t.hits++
	} else {
		t.misses++
	}
	return e, ok
}

// Insert installs a translation, evicting the oldest entry when full.
func (t *TLB) Insert(asid uint16, vpn VPN, e PTE) {
	k := t.key(asid, vpn)
	if _, exists := t.entries[k]; !exists {
		for len(t.entries) >= t.capacity {
			victim := t.fifo[0]
			t.fifo = t.fifo[1:]
			// The victim may already have been removed by a flush;
			// deleting again is harmless.
			delete(t.entries, victim)
		}
		t.fifo = append(t.fifo, k)
	}
	t.entries[k] = e
}

// FlushAll empties the TLB (untagged space switch, or global shootdown).
// The map's buckets are kept: untagged architectures flush on every address
// space switch, and reallocating here dominated whole-engine profiles.
func (t *TLB) FlushAll() {
	clear(t.entries)
	t.fifo = t.fifo[:0]
	t.flushes++
}

// Reset restores the TLB to its post-NewTLB state: no entries, no
// statistics. Capacity and tagging are construction-time properties and
// survive.
func (t *TLB) Reset() {
	clear(t.entries)
	t.fifo = t.fifo[:0]
	t.hits, t.misses, t.flushes = 0, 0, 0
}

// FlushASID removes all entries for one address space. On an untagged TLB
// this degrades to FlushAll, exactly as on real hardware.
func (t *TLB) FlushASID(asid uint16) {
	if !t.tagged {
		t.FlushAll()
		return
	}
	kept := t.fifo[:0]
	for _, k := range t.fifo {
		if k.asid == asid {
			delete(t.entries, k)
		} else {
			kept = append(kept, k)
		}
	}
	t.fifo = kept
	t.flushes++
}

// FlushEntry removes one translation if present.
func (t *TLB) FlushEntry(asid uint16, vpn VPN) {
	delete(t.entries, t.key(asid, vpn))
}

// Len returns the number of live entries.
func (t *TLB) Len() int { return len(t.entries) }

// Stats returns cumulative hits, misses and flushes.
func (t *TLB) Stats() (hits, misses, flushes uint64) { return t.hits, t.misses, t.flushes }
