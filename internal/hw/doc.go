// Package hw simulates the hardware substrate both kernels run on: one or
// more CPUs with privilege rings and (on x86) segmentation, an MMU with
// page tables and per-CPU software-visible TLBs, physical memory with frame
// ownership, an interrupt controller doubling as the IPI mesh, and a
// discrete-event queue driving devices (hw/dev).
//
// Nothing here executes real instructions. The simulation is a cycle
// accounting model: every privileged operation advances a virtual clock by
// an architecture-specific cost (CostModel) and records the event in a
// trace.Recorder. The paper's claims are about counts of privileged
// crossings and their relative costs, so this level of fidelity is exactly
// what the experiments need, and it is fully deterministic. Nine Arch
// descriptors (AllArchs) capture what the portability and fast-path
// arguments depend on: segmentation, ASID-tagged TLBs, page-table depth,
// trap mechanisms, endianness, word width.
//
// Multiprocessor model: a Machine may have several CPUs (MachineConfig.
// NCPUs) sharing the clock, memory, recorder and IRQ controller; each CPU
// keeps private privilege state, address-space root and TLB. Cross-CPU
// coordination is explicit and charged: SendIPI delivers one
// inter-processor interrupt (cost split between "cpu<n>.ipi" components of
// sender and target), and ShootdownAll/ShootdownEntry interrupt target
// CPUs to invalidate their TLBs ("cpu<n>.shootdown"). CPU 0 is the boot
// processor every uniprocessor path uses, so a 1-CPU machine — the
// configuration experiments E1–E11 always run — behaves bit-for-bit as it
// did before SMP support existed; only experiment E12 sweeps NCPUs.
//
// Layering: package mk (the L4-style microkernel) and package vmm (the
// Xen-style monitor) both boot directly on a Machine; package core
// instantiates one Machine per experiment cell.
package hw
