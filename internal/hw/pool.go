package hw

// MachinePool recycles Machines between experiment cells. Booting a machine
// allocates its physical memory, CPUs, TLBs and recorder; under the runner
// every cell used to pay that again. The pool instead hands back a Reset
// machine whenever one with the same identity — architecture value plus
// normalized MachineConfig — has been released before.
//
// The pool is deliberately not thread-safe: the runner gives each worker its
// own pool, which keeps the hot path lock-free and the reuse pattern
// deterministic per worker.
type MachinePool struct {
	free map[poolKey][]*Machine
	hits uint64
	miss uint64
}

// poolKey identifies interchangeable machines. Arch is keyed by value —
// Arch constructors return fresh pointers per call, but equal architectures
// compare equal as structs — and the config is keyed in normalized form so
// zero fields and explicit defaults land on the same entry.
type poolKey struct {
	arch Arch
	cfg  MachineConfig
}

// NewMachinePool returns an empty pool.
func NewMachinePool() *MachinePool {
	return &MachinePool{free: make(map[poolKey][]*Machine)}
}

// Get returns a machine for arch/cfg: a pooled one (already Reset) when the
// identity matches, a fresh NewMachine otherwise. A nil pool always builds
// fresh, so call sites can thread an optional pool without guards.
func (p *MachinePool) Get(arch *Arch, cfg *MachineConfig) *Machine {
	if p == nil {
		return NewMachine(arch, cfg)
	}
	k := poolKey{arch: *arch, cfg: cfg.normalized()}
	if ms := p.free[k]; len(ms) > 0 {
		m := ms[len(ms)-1]
		ms[len(ms)-1] = nil
		p.free[k] = ms[:len(ms)-1]
		p.hits++
		return m
	}
	p.miss++
	return NewMachine(arch, cfg)
}

// Put resets m and returns it to the pool. A nil pool (or nil machine)
// drops it for the garbage collector, matching the pre-pool lifecycle.
func (p *MachinePool) Put(m *Machine) {
	if p == nil || m == nil {
		return
	}
	m.Reset()
	k := poolKey{arch: *m.Arch, cfg: m.Cfg}
	p.free[k] = append(p.free[k], m)
}

// Stats returns how many Gets were served from the pool vs built fresh.
func (p *MachinePool) Stats() (hits, misses uint64) {
	if p == nil {
		return 0, 0
	}
	return p.hits, p.miss
}
