package hw

import (
	"testing"

	"vmmk/internal/trace"
)

// TestDefaultMachineSingleCPU pins the uniprocessor default: a nil config
// (and any config with NCPUs unset) builds one CPU, and the boot-CPU alias
// is that CPU — the invariant every pre-SMP code path relies on.
func TestDefaultMachineSingleCPU(t *testing.T) {
	for _, m := range []*Machine{
		NewMachine(X86(), nil),
		NewMachine(X86(), &MachineConfig{Frames: 64}),
	} {
		if m.NCPUs() != 1 {
			t.Fatalf("default machine has %d CPUs, want 1", m.NCPUs())
		}
		if m.CPU != m.CPUs[0] {
			t.Fatal("boot-CPU alias does not point at CPUs[0]")
		}
		if m.CPU.Index != 0 {
			t.Fatalf("boot CPU index = %d, want 0", m.CPU.Index)
		}
	}
}

func TestMultiCPUMachineShape(t *testing.T) {
	m := NewMachine(X86(), &MachineConfig{Frames: 64, NCPUs: 4})
	if m.NCPUs() != 4 {
		t.Fatalf("NCPUs = %d, want 4", m.NCPUs())
	}
	for i, c := range m.CPUs {
		if c.Index != i {
			t.Fatalf("CPUs[%d].Index = %d", i, c.Index)
		}
		if c.Clock != m.Clock || c.Mem != m.Mem || c.Rec != m.Rec {
			t.Fatalf("CPU %d does not share the machine substrate", i)
		}
		for j, o := range m.CPUs {
			if i != j && c.TLB == o.TLB {
				t.Fatalf("CPUs %d and %d share a TLB", i, j)
			}
		}
	}
}

// TestSendIPICharges checks the cost split of one IPI: the sender pays the
// IPI cost on cpu<from>.ipi and an event count, the target pays dispatch
// on cpu<to>.ipi, and a self-IPI is free (short-circuited).
func TestSendIPICharges(t *testing.T) {
	m := NewMachine(X86(), &MachineConfig{Frames: 64, NCPUs: 2})
	before := m.Now()

	m.SendIPI(0, 0) // self-IPI: free
	if m.Rec.Counts(trace.KIPI) != 0 || m.Now() != before {
		t.Fatal("self-IPI charged something")
	}

	m.SendIPI(0, 1)
	if got := m.Rec.Counts(trace.KIPI); got != 1 {
		t.Fatalf("KIPI count = %d, want 1", got)
	}
	if got := m.Rec.Cycles("cpu0.ipi"); got != uint64(m.Arch.Costs.IPI) {
		t.Fatalf("sender charged %d, want %d", got, m.Arch.Costs.IPI)
	}
	if got := m.Rec.Cycles("cpu1.ipi"); got != uint64(m.Arch.Costs.IRQDispatch) {
		t.Fatalf("target charged %d, want %d", got, m.Arch.Costs.IRQDispatch)
	}
	wantClock := before + m.Arch.Costs.IPI + m.Arch.Costs.IRQDispatch
	if m.Now() != wantClock {
		t.Fatalf("clock = %d, want %d", m.Now(), wantClock)
	}
	if got := m.IRQ.IPIs(); got != 1 {
		t.Fatalf("controller IPI count = %d, want 1", got)
	}
}

func TestSendIPIPanicsOnBadCPU(t *testing.T) {
	m := NewMachine(X86(), &MachineConfig{Frames: 64, NCPUs: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("SendIPI to a nonexistent CPU did not panic")
		}
	}()
	m.SendIPI(0, 5)
}

// TestShootdownAllFlushesTargets: a full shootdown flushes exactly the
// target CPUs' TLBs (not the initiator's), counts one KTLBShootdown per
// target, and charges each target's cpu<n>.shootdown component.
func TestShootdownAllFlushesTargets(t *testing.T) {
	m := NewMachine(X86(), &MachineConfig{Frames: 64, NCPUs: 3})
	pte := PTE{Frame: 1, Perms: PermRW}
	for _, c := range m.CPUs {
		c.TLB.Insert(7, 0x40, pte)
	}

	m.ShootdownAll(0, []int{1, 2, 0, 2}) // duplicates and self tolerated
	if m.CPUs[0].TLB.Len() != 1 {
		t.Fatal("initiator's TLB was flushed; shootdown is remote-only")
	}
	for i := 1; i < 3; i++ {
		if m.CPUs[i].TLB.Len() != 0 {
			t.Fatalf("CPU %d TLB survived the shootdown", i)
		}
	}
	if got := m.Rec.Counts(trace.KTLBShootdown); got != 2 {
		t.Fatalf("KTLBShootdown count = %d, want 2", got)
	}
	if got := m.Rec.Counts(trace.KIPI); got != 2 {
		t.Fatalf("shootdown IPIs = %d, want 2", got)
	}
	for i := 1; i < 3; i++ {
		name := []string{"", "cpu1.shootdown", "cpu2.shootdown"}[i]
		if got := m.Rec.Cycles(name); got != uint64(m.Arch.Costs.TLBShootdown) {
			t.Fatalf("%s charged %d, want %d", name, got, m.Arch.Costs.TLBShootdown)
		}
	}
}

// TestShootdownEntryIsTargeted: the single-entry variant removes only the
// named translation on the targets.
func TestShootdownEntryIsTargeted(t *testing.T) {
	m := NewMachine(X86(), &MachineConfig{Frames: 64, NCPUs: 2})
	pte := PTE{Frame: 1, Perms: PermRW}
	m.CPUs[1].TLB.Insert(7, 0x40, pte)
	m.CPUs[1].TLB.Insert(7, 0x41, pte)

	m.ShootdownEntry(0, []int{1}, 7, 0x40)
	if _, ok := m.CPUs[1].TLB.Lookup(7, 0x40); ok {
		t.Fatal("shot-down entry survived")
	}
	if _, ok := m.CPUs[1].TLB.Lookup(7, 0x41); !ok {
		t.Fatal("unrelated entry was flushed")
	}
	if got := m.Rec.Counts(trace.KTLBShootdown); got != 1 {
		t.Fatalf("KTLBShootdown count = %d, want 1", got)
	}
}

// TestUniprocessorInternsButNeverCharges: the SMP components exist on a
// 1-CPU machine (interned at boot) but a full uniprocessor workout leaves
// them at zero — the accounting-level guarantee that E1–E11 are untouched.
func TestUniprocessorInternsButNeverCharges(t *testing.T) {
	m := NewMachine(X86(), &MachineConfig{Frames: 64})
	comp := m.Rec.Intern("test.kern")
	m.CPU.Trap(comp, false)
	m.CPU.FlushTLB(comp)
	m.CPU.ReturnTo(comp, Ring3)
	if got := m.Rec.CyclesPrefix("cpu"); got != 0 {
		t.Fatalf("uniprocessor charged %d SMP cycles", got)
	}
	if m.Rec.Counts(trace.KIPI) != 0 || m.Rec.Counts(trace.KTLBShootdown) != 0 {
		t.Fatal("uniprocessor counted SMP events")
	}
}
