package hw

import (
	"testing"
	"testing/quick"
)

func TestCacheColdRefill(t *testing.T) {
	c := NewCache(256, 10)
	c.SetFootprint(1, 100)
	if got := c.Run(1); got != 100 {
		t.Fatalf("cold run refilled %d lines, want 100", got)
	}
	if got := c.Run(1); got != 0 {
		t.Fatalf("hot run refilled %d lines, want 0", got)
	}
	if c.Resident(1) != 100 {
		t.Fatalf("resident = %d", c.Resident(1))
	}
}

func TestCacheTwoSpacesFit(t *testing.T) {
	// Small footprints coexist: after warmup, ping-pong is free. This is
	// the small-kernel case.
	c := NewCache(256, 10)
	c.SetFootprint(1, 100)
	c.SetFootprint(2, 100)
	c.Run(1)
	c.Run(2)
	if c.Run(1) != 0 || c.Run(2) != 0 {
		t.Fatal("fitting working sets must not thrash")
	}
}

func TestCacheThrash(t *testing.T) {
	// Large footprints evict each other: every switch refills. This is
	// what a fat kernel (or super-VM) does to its guests.
	c := NewCache(256, 10)
	c.SetFootprint(1, 200)
	c.SetFootprint(2, 200)
	c.Run(1)
	if got := c.Run(2); got != 200 {
		t.Fatalf("refill = %d, want 200", got)
	}
	if got := c.Run(1); got == 0 {
		t.Fatal("thrashing pair ran hot — eviction missing")
	}
}

func TestCacheCapacityInvariant(t *testing.T) {
	c := NewCache(100, 1)
	c.SetFootprint(1, 60)
	c.SetFootprint(2, 60)
	c.SetFootprint(3, 60)
	for i := 0; i < 10; i++ {
		c.Run(uint16(i%3 + 1))
		if c.total() > 100 {
			t.Fatalf("resident %d exceeds capacity", c.total())
		}
	}
}

func TestCacheFootprintClamped(t *testing.T) {
	c := NewCache(100, 1)
	c.SetFootprint(1, 500)
	if got := c.Run(1); got != 100 {
		t.Fatalf("oversized footprint refilled %d, want clamp to 100", got)
	}
}

func TestCPUCacheIntegration(t *testing.T) {
	m := NewMachine(X86(), &MachineConfig{Frames: 16})
	cache := NewCache(256, 10)
	cache.SetFootprint(1, 200)
	cache.SetFootprint(2, 200)
	m.CPU.AttachCache(cache)
	pt1, pt2 := NewPageTable(1), NewPageTable(2)

	m.CPU.SwitchSpace(m.Rec.Intern("k"), pt1) // cold: 200 lines
	t0 := m.Now()
	m.CPU.SwitchSpace(m.Rec.Intern("k"), pt2) // evicts 1, fills 2
	withCache := m.Now() - t0

	// Same switch without a cache attached.
	m2 := NewMachine(X86(), &MachineConfig{Frames: 16})
	q1, q2 := NewPageTable(1), NewPageTable(2)
	m2.CPU.SwitchSpace(m2.Rec.Intern("k"), q1)
	t1 := m2.Now()
	m2.CPU.SwitchSpace(m2.Rec.Intern("k"), q2)
	without := m2.Now() - t1

	if withCache <= without {
		t.Fatalf("cache model added no cost: %d vs %d", withCache, without)
	}
	if withCache-without != 200*10 {
		t.Fatalf("refill charge = %d, want 2000", withCache-without)
	}
}

func TestQuickCacheNeverExceedsCapacity(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) == 0 {
			return true
		}
		c := NewCache(64, 1)
		for i := 0; i < 8; i++ {
			c.SetFootprint(uint16(i), int(ops[i%len(ops)])%80)
		}
		for _, op := range ops {
			c.Run(uint16(op % 8))
			if c.total() > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
