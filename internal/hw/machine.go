package hw

import "vmmk/internal/trace"

// Machine bundles one complete simulated computer: architecture, clock,
// event queue, one or more CPUs, physical memory and interrupt controller.
// Both kernels boot on a Machine; the experiments instantiate one per
// platform under test.
//
// All CPUs share the clock, memory, recorder and IRQ controller; each CPU
// has its own privilege state, address-space root and TLB. CPU is the boot
// processor (CPUs[0]) and is what every uniprocessor code path uses, so a
// 1-CPU machine behaves exactly as it did before SMP support existed.
type Machine struct {
	Arch   *Arch
	Clock  *Clock
	Events *EventQueue
	CPU    *CPU   // boot processor, == CPUs[0]
	CPUs   []*CPU // all processors; len(CPUs) >= 1
	Mem    *PhysMem
	IRQ    *IRQController
	Rec    *trace.Recorder

	// Cfg is the fully normalized configuration the machine was built with
	// (defaults applied). It is the machine's pool identity: two machines
	// with equal Arch values and equal Cfg are interchangeable after Reset.
	Cfg MachineConfig
}

// MachineConfig sizes a Machine.
type MachineConfig struct {
	Frames   int // physical memory size in pages (default 4096)
	IRQLines int // interrupt lines (default 16)
	LogCap   int // trace event log capacity (default 0 = counters only)
	NCPUs    int // processor count (default 1)
}

// normalized returns the config with defaults applied — the canonical form
// NewMachine builds from and the pool keys by.
func (c *MachineConfig) normalized() MachineConfig {
	n := MachineConfig{Frames: 4096, IRQLines: 16, NCPUs: 1}
	if c != nil {
		if c.Frames > 0 {
			n.Frames = c.Frames
		}
		if c.IRQLines > 0 {
			n.IRQLines = c.IRQLines
		}
		if c.NCPUs > 0 {
			n.NCPUs = c.NCPUs
		}
		n.LogCap = c.LogCap
	}
	return n
}

// NewMachine builds a machine for arch. A nil cfg uses defaults.
func NewMachine(arch *Arch, cfg *MachineConfig) *Machine {
	c := cfg.normalized()
	clock := &Clock{}
	rec := trace.NewRecorder(c.LogCap)
	mem := NewPhysMem(c.Frames, arch.PageSize())
	cpus := make([]*CPU, c.NCPUs)
	for i := range cpus {
		cpus[i] = NewCPUOn(arch, clock, mem, rec, i)
	}
	return &Machine{
		Arch:   arch,
		Clock:  clock,
		Events: NewEventQueue(clock),
		CPU:    cpus[0],
		CPUs:   cpus,
		Mem:    mem,
		IRQ:    NewIRQController(cpus, c.IRQLines),
		Rec:    rec,
		Cfg:    c,
	}
}

// Reset restores the machine to its post-NewMachine state — clock at zero,
// empty event queue, every CPU at ring 0 with an empty TLB, all memory free
// and zeroed, quiescent interrupt controller, zeroed recorder counters —
// without reallocating any of it. This is the machine-pool contract: an
// experiment cell run on a Reset machine is byte-identical to one run on a
// fresh machine. Interned component handles survive (they are identities in
// the recorder's registry, and components with zero cycles are invisible to
// every table query).
func (m *Machine) Reset() {
	m.Events.Reset()
	m.Clock.Reset()
	for _, c := range m.CPUs {
		c.Reset()
	}
	m.Mem.Reset()
	m.IRQ.Reset()
	m.Rec.Reset()
}

// Now returns the machine's virtual time.
func (m *Machine) Now() Cycles { return m.Clock.Now() }

// Run drains, in order, every event due at or before t, then leaves the
// clock at t — the event-driven engine's basic step. Idle gaps between
// events are skipped, not stepped.
func (m *Machine) Run(until Cycles) int { return m.Events.RunUntil(until) }

// RunUntilIdle drains the event queue completely (advancing the clock to
// each event in turn), bounded by maxEvents (0 = unlimited).
func (m *Machine) RunUntilIdle(maxEvents int) int { return m.Events.RunUntilIdle(maxEvents) }

// AdvanceTo skips idle virtual time: the clock jumps straight to t, firing
// any events that become due on the way. Unlike Clock.AdvanceTo it is safe
// to call with pending events — they fire at their scheduled times first.
func (m *Machine) AdvanceTo(t Cycles) {
	m.Events.RunUntil(t)
}

// NCPUs returns the processor count.
func (m *Machine) NCPUs() int { return len(m.CPUs) }

// checkCPU panics on an out-of-range CPU index — always a kernel bug, the
// moral equivalent of programming a nonexistent APIC ID.
func (m *Machine) checkCPU(i int) *CPU {
	if i < 0 || i >= len(m.CPUs) {
		panic("hw: CPU index out of range")
	}
	return m.CPUs[i]
}

// SendIPI sends one inter-processor interrupt from CPU from to CPU to,
// charging the sender's APIC write plus interrupt latency to the sender's
// "cpu<from>.ipi" component and the target's acceptance to
// "cpu<to>.ipi". Sending to yourself is free and uncounted (kernels
// short-circuit self-IPIs), so uniprocessor paths may call this blindly.
func (m *Machine) SendIPI(from, to int) {
	src := m.checkCPU(from)
	dst := m.checkCPU(to)
	if src == dst {
		return
	}
	m.IRQ.deliverIPI(src, dst)
}

// SendIPIN sends n back-to-back IPIs from CPU from to CPU to as one
// aggregate — same counters, cycles and clock movement as n SendIPI calls.
// Self-IPIs remain free and uncounted.
func (m *Machine) SendIPIN(from, to int, n uint64) {
	src := m.checkCPU(from)
	dst := m.checkCPU(to)
	if src == dst {
		return
	}
	m.IRQ.deliverIPIN(src, dst, n)
}

// ShootdownAll performs a full TLB shootdown: CPU from interrupts every
// target CPU, which flushes its entire TLB and charges the handling cost to
// its own "cpu<n>.shootdown" component. The initiator's IPIs are charged
// per target; targets equal to from (or duplicated) are skipped, so callers
// may pass conservative target sets.
func (m *Machine) ShootdownAll(from int, targets []int) {
	m.shootdown(from, targets, func(c *CPU) {
		c.TLB.FlushAll()
	})
}

// ShootdownEntry is the single-entry variant of ShootdownAll: every target
// CPU invalidates just (asid, vpn). The IPI round trip dominates — the
// reason real kernels batch invalidations — so it costs the same shootdown
// handling as a full flush minus the refill misses the full flush causes.
func (m *Machine) ShootdownEntry(from int, targets []int, asid uint16, vpn VPN) {
	m.shootdown(from, targets, func(c *CPU) {
		c.TLB.FlushEntry(asid, vpn)
	})
}

// ShootdownEntries is the batched form of ShootdownEntry for a run of
// invalidations initiated back-to-back by the same CPU: every target CPU
// takes len(vpns) IPIs and invalidates each (asid, vpn) in order, with the
// per-target costs landed as aggregates. Counters, cycle totals and clock
// movement match the equivalent ShootdownEntry loop; only log timestamps
// coalesce (an aggregate is stamped at its last event).
func (m *Machine) ShootdownEntries(from int, targets []int, asid uint16, vpns []VPN) {
	if len(vpns) == 0 {
		return
	}
	src := m.checkCPU(from)
	want := make([]bool, len(m.CPUs))
	for _, t := range targets {
		if t == from {
			continue // the initiator flushes locally, not via IPI
		}
		m.checkCPU(t)
		want[t] = true
	}
	n := uint64(len(vpns))
	for i, dst := range m.CPUs {
		if !want[i] {
			continue
		}
		m.IRQ.deliverIPIN(src, dst, n)
		for _, vpn := range vpns {
			dst.TLB.FlushEntry(asid, vpn)
		}
		m.Clock.Advance(m.Arch.Costs.TLBShootdown * Cycles(n))
		m.Rec.ChargeN(uint64(m.Clock.Now()), trace.KTLBShootdown, dst.shootComp,
			uint64(m.Arch.Costs.TLBShootdown), n)
	}
}

// shootdown interrupts each distinct remote target in ascending CPU order
// (determinism), runs the invalidation on it and charges the costs.
func (m *Machine) shootdown(from int, targets []int, invalidate func(*CPU)) {
	src := m.checkCPU(from)
	want := make([]bool, len(m.CPUs))
	for _, t := range targets {
		if t == from {
			continue // the initiator flushes locally, not via IPI
		}
		m.checkCPU(t)
		want[t] = true
	}
	for i, dst := range m.CPUs {
		if !want[i] {
			continue
		}
		m.IRQ.deliverIPI(src, dst)
		invalidate(dst)
		m.Clock.Advance(m.Arch.Costs.TLBShootdown)
		m.Rec.Charge(uint64(m.Clock.Now()), trace.KTLBShootdown, dst.shootComp,
			uint64(m.Arch.Costs.TLBShootdown))
	}
}
