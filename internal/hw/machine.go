package hw

import "vmmk/internal/trace"

// Machine bundles one complete simulated computer: architecture, clock,
// event queue, one or more CPUs, physical memory and interrupt controller.
// Both kernels boot on a Machine; the experiments instantiate one per
// platform under test.
//
// All CPUs share the clock, memory, recorder and IRQ controller; each CPU
// has its own privilege state, address-space root and TLB. CPU is the boot
// processor (CPUs[0]) and is what every uniprocessor code path uses, so a
// 1-CPU machine behaves exactly as it did before SMP support existed.
type Machine struct {
	Arch   *Arch
	Clock  *Clock
	Events *EventQueue
	CPU    *CPU   // boot processor, == CPUs[0]
	CPUs   []*CPU // all processors; len(CPUs) >= 1
	Mem    *PhysMem
	IRQ    *IRQController
	Rec    *trace.Recorder
}

// MachineConfig sizes a Machine.
type MachineConfig struct {
	Frames   int // physical memory size in pages (default 4096)
	IRQLines int // interrupt lines (default 16)
	LogCap   int // trace event log capacity (default 0 = counters only)
	NCPUs    int // processor count (default 1)
}

// NewMachine builds a machine for arch. A nil cfg uses defaults.
func NewMachine(arch *Arch, cfg *MachineConfig) *Machine {
	c := MachineConfig{Frames: 4096, IRQLines: 16, NCPUs: 1}
	if cfg != nil {
		if cfg.Frames > 0 {
			c.Frames = cfg.Frames
		}
		if cfg.IRQLines > 0 {
			c.IRQLines = cfg.IRQLines
		}
		if cfg.NCPUs > 0 {
			c.NCPUs = cfg.NCPUs
		}
		c.LogCap = cfg.LogCap
	}
	clock := &Clock{}
	rec := trace.NewRecorder(c.LogCap)
	mem := NewPhysMem(c.Frames, arch.PageSize())
	cpus := make([]*CPU, c.NCPUs)
	for i := range cpus {
		cpus[i] = NewCPUOn(arch, clock, mem, rec, i)
	}
	return &Machine{
		Arch:   arch,
		Clock:  clock,
		Events: NewEventQueue(clock),
		CPU:    cpus[0],
		CPUs:   cpus,
		Mem:    mem,
		IRQ:    NewIRQController(cpus, c.IRQLines),
		Rec:    rec,
	}
}

// Now returns the machine's virtual time.
func (m *Machine) Now() Cycles { return m.Clock.Now() }

// NCPUs returns the processor count.
func (m *Machine) NCPUs() int { return len(m.CPUs) }

// checkCPU panics on an out-of-range CPU index — always a kernel bug, the
// moral equivalent of programming a nonexistent APIC ID.
func (m *Machine) checkCPU(i int) *CPU {
	if i < 0 || i >= len(m.CPUs) {
		panic("hw: CPU index out of range")
	}
	return m.CPUs[i]
}

// SendIPI sends one inter-processor interrupt from CPU from to CPU to,
// charging the sender's APIC write plus interrupt latency to the sender's
// "cpu<from>.ipi" component and the target's acceptance to
// "cpu<to>.ipi". Sending to yourself is free and uncounted (kernels
// short-circuit self-IPIs), so uniprocessor paths may call this blindly.
func (m *Machine) SendIPI(from, to int) {
	src := m.checkCPU(from)
	dst := m.checkCPU(to)
	if src == dst {
		return
	}
	m.IRQ.deliverIPI(src, dst)
}

// ShootdownAll performs a full TLB shootdown: CPU from interrupts every
// target CPU, which flushes its entire TLB and charges the handling cost to
// its own "cpu<n>.shootdown" component. The initiator's IPIs are charged
// per target; targets equal to from (or duplicated) are skipped, so callers
// may pass conservative target sets.
func (m *Machine) ShootdownAll(from int, targets []int) {
	m.shootdown(from, targets, func(c *CPU) {
		c.TLB.FlushAll()
	})
}

// ShootdownEntry is the single-entry variant of ShootdownAll: every target
// CPU invalidates just (asid, vpn). The IPI round trip dominates — the
// reason real kernels batch invalidations — so it costs the same shootdown
// handling as a full flush minus the refill misses the full flush causes.
func (m *Machine) ShootdownEntry(from int, targets []int, asid uint16, vpn VPN) {
	m.shootdown(from, targets, func(c *CPU) {
		c.TLB.FlushEntry(asid, vpn)
	})
}

// shootdown interrupts each distinct remote target in ascending CPU order
// (determinism), runs the invalidation on it and charges the costs.
func (m *Machine) shootdown(from int, targets []int, invalidate func(*CPU)) {
	src := m.checkCPU(from)
	want := make([]bool, len(m.CPUs))
	for _, t := range targets {
		if t == from {
			continue // the initiator flushes locally, not via IPI
		}
		m.checkCPU(t)
		want[t] = true
	}
	for i, dst := range m.CPUs {
		if !want[i] {
			continue
		}
		m.IRQ.deliverIPI(src, dst)
		invalidate(dst)
		m.Clock.Advance(m.Arch.Costs.TLBShootdown)
		m.Rec.Charge(uint64(m.Clock.Now()), trace.KTLBShootdown, dst.shootComp,
			uint64(m.Arch.Costs.TLBShootdown))
	}
}
