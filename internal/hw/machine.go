package hw

import "vmmk/internal/trace"

// Machine bundles one complete simulated computer: architecture, clock,
// event queue, CPU, physical memory and interrupt controller. Both kernels
// boot on a Machine; the experiments instantiate one per platform under
// test.
type Machine struct {
	Arch   *Arch
	Clock  *Clock
	Events *EventQueue
	CPU    *CPU
	Mem    *PhysMem
	IRQ    *IRQController
	Rec    *trace.Recorder
}

// MachineConfig sizes a Machine.
type MachineConfig struct {
	Frames   int // physical memory size in pages (default 4096)
	IRQLines int // interrupt lines (default 16)
	LogCap   int // trace event log capacity (default 0 = counters only)
}

// NewMachine builds a machine for arch. A nil cfg uses defaults.
func NewMachine(arch *Arch, cfg *MachineConfig) *Machine {
	c := MachineConfig{Frames: 4096, IRQLines: 16}
	if cfg != nil {
		if cfg.Frames > 0 {
			c.Frames = cfg.Frames
		}
		if cfg.IRQLines > 0 {
			c.IRQLines = cfg.IRQLines
		}
		c.LogCap = cfg.LogCap
	}
	clock := &Clock{}
	rec := trace.NewRecorder(c.LogCap)
	mem := NewPhysMem(c.Frames, arch.PageSize())
	cpu := NewCPU(arch, clock, mem, rec)
	return &Machine{
		Arch:   arch,
		Clock:  clock,
		Events: NewEventQueue(clock),
		CPU:    cpu,
		Mem:    mem,
		IRQ:    NewIRQController(cpu, c.IRQLines),
		Rec:    rec,
	}
}

// Now returns the machine's virtual time.
func (m *Machine) Now() Cycles { return m.Clock.Now() }
