package hw

// Cycles counts virtual CPU cycles, the only notion of time in the
// simulation.
type Cycles uint64

// CostModel gives the cycle cost of each primitive hardware operation for
// one architecture. Values are calibrated to the published numbers the
// paper's debate relies on (see DESIGN.md); experiments depend on their
// ratios, not their absolute magnitudes.
type CostModel struct {
	KernelEntry   Cycles // trap/interrupt entry to ring 0
	KernelExit    Cycles // return to user
	FastSyscall   Cycles // sysenter/epc-style entry, if the arch has one
	PrivCheck     Cycles // privilege/validity check in the kernel
	ASSwitch      Cycles // address-space root switch (CR3/TTBR write)
	TLBFlushAll   Cycles // full unselective TLB flush
	TLBFlushEntry Cycles // single-entry invalidation
	TLBMiss       Cycles // hardware or software refill of one entry
	MemCopyWord   Cycles // copy cost per machine word
	PTEUpdate     Cycles // validated page-table entry write
	IRQDispatch   Cycles // interrupt acceptance and vectoring
	WorldSwitch   Cycles // extra state save/restore for a cross-VM switch
	SegmentReload Cycles // segment register load incl. descriptor check
	DeviceMMIO    Cycles // one device register access
	CtxSave       Cycles // register file save or restore
	IPI           Cycles // send one inter-processor interrupt (sender side)
	TLBShootdown  Cycles // remote-CPU shootdown handling, per target CPU
}

// Arch describes one hardware platform. The microkernel's portability claim
// (paper §2.2: "software written for L4 naturally runs on nine different
// processor platforms") is exercised by instantiating the same components
// over each of these descriptors.
type Arch struct {
	Name      string
	Family    string // isa family, e.g. "x86", "arm", "power"
	WordBits  int
	PageShift uint // log2 of the page size

	// TLBEntries is the capacity of the (simulated, unified) TLB.
	TLBEntries int
	// HasASID: the TLB is tagged with address-space IDs, so an address
	// space switch needs no flush. x86 of the paper's era lacked this.
	HasASID bool
	// HasSegmentation: the arch has loadable segment registers with limit
	// checks. Only x86; Xen's trap-gate syscall shortcut depends on it.
	HasSegmentation bool
	// SegRegisters is the number of segment selectors; x86 has six, and
	// its trap mechanism reloads only two (CS, SS) — the root cause of
	// the fast-path fragility examined in experiment E3.
	SegRegisters      int
	SegReloadedOnTrap int
	// HasFastSyscall: a sysenter-like kernel entry exists.
	HasFastSyscall bool
	// SyscallInstr names the native syscall trap mechanism; differences
	// across architectures feed the E6 portability census.
	SyscallInstr string
	// PTLevels is the native page-table depth (0 = software-loaded TLB).
	PTLevels int
	// RegisterIPCWords is how many message words fit in registers for a
	// short IPC without touching memory.
	RegisterIPCWords int
	// BigEndian is part of the raw-interface delta for E6.
	BigEndian bool

	Costs CostModel
}

// PageSize returns the page size in bytes.
func (a *Arch) PageSize() uint64 { return 1 << a.PageShift }

// WordBytes returns the machine word size in bytes.
func (a *Arch) WordBytes() int { return a.WordBits / 8 }

// baseCosts is the x86 reference cost model; other architectures scale or
// override individual entries.
func baseCosts() CostModel {
	return CostModel{
		KernelEntry:   150,
		KernelExit:    120,
		FastSyscall:   70,
		PrivCheck:     10,
		ASSwitch:      500,
		TLBFlushAll:   400,
		TLBFlushEntry: 40,
		TLBMiss:       60,
		MemCopyWord:   1,
		PTEUpdate:     30,
		IRQDispatch:   200,
		WorldSwitch:   1800,
		SegmentReload: 40,
		DeviceMMIO:    120,
		CtxSave:       90,
		IPI:           700,
		TLBShootdown:  450,
	}
}

// X86 is the paper-era 32-bit x86: untagged TLB, six segment registers of
// which traps reload two, int 0x80 syscalls. This is the architecture every
// concrete argument in the paper (trap gates, glibc TLS segments, Xen's
// fast path) is about.
func X86() *Arch {
	return &Arch{
		Name: "x86", Family: "x86", WordBits: 32, PageShift: 12,
		TLBEntries: 64, HasASID: false, HasSegmentation: true,
		SegRegisters: 6, SegReloadedOnTrap: 2,
		HasFastSyscall: true, SyscallInstr: "int/sysenter",
		PTLevels: 2, RegisterIPCWords: 3, BigEndian: false,
		Costs: baseCosts(),
	}
}

// AMD64 models early x86-64: flat segmentation (no limit checks, so no
// trap-gate shortcut), still no tagged TLB.
func AMD64() *Arch {
	c := baseCosts()
	c.FastSyscall = 60
	return &Arch{
		Name: "amd64", Family: "x86", WordBits: 64, PageShift: 12,
		TLBEntries: 128, HasASID: false, HasSegmentation: false,
		SegRegisters: 6, SegReloadedOnTrap: 2,
		HasFastSyscall: true, SyscallInstr: "syscall",
		PTLevels: 4, RegisterIPCWords: 6, BigEndian: false,
		Costs: c,
	}
}

// ARM models ARMv5/v6 embedded cores with ASID-tagged TLBs (fast address
// space switch) and swi traps.
func ARM() *Arch {
	c := baseCosts()
	c.KernelEntry, c.KernelExit = 90, 70
	c.ASSwitch, c.TLBFlushAll = 120, 300
	return &Arch{
		Name: "arm", Family: "arm", WordBits: 32, PageShift: 12,
		TLBEntries: 32, HasASID: true, HasSegmentation: false,
		HasFastSyscall: false, SyscallInstr: "swi",
		PTLevels: 2, RegisterIPCWords: 4, BigEndian: false,
		Costs: c,
	}
}

// PPC32 models 32-bit PowerPC with a hashed page table and segment-register
// style ASIDs.
func PPC32() *Arch {
	c := baseCosts()
	c.KernelEntry, c.KernelExit = 110, 90
	c.ASSwitch = 150
	return &Arch{
		Name: "ppc32", Family: "power", WordBits: 32, PageShift: 12,
		TLBEntries: 64, HasASID: true, HasSegmentation: false,
		HasFastSyscall: false, SyscallInstr: "sc",
		PTLevels: 1, RegisterIPCWords: 8, BigEndian: true,
		Costs: c,
	}
}

// PPC64 models large multiprocessor PowerPC, the upper end of the paper's
// "nine platforms" span.
func PPC64() *Arch {
	c := baseCosts()
	c.KernelEntry, c.KernelExit = 100, 80
	c.ASSwitch = 140
	c.MemCopyWord = 1
	return &Arch{
		Name: "ppc64", Family: "power", WordBits: 64, PageShift: 16,
		TLBEntries: 256, HasASID: true, HasSegmentation: false,
		HasFastSyscall: false, SyscallInstr: "sc",
		PTLevels: 1, RegisterIPCWords: 8, BigEndian: true,
		Costs: c,
	}
}

// Itanium models IA-64 with region-ID tagged TLB and epc fast entry.
func Itanium() *Arch {
	c := baseCosts()
	c.KernelEntry, c.KernelExit = 200, 150
	c.FastSyscall = 40 // epc promotion is famously cheap
	c.ASSwitch = 100
	return &Arch{
		Name: "itanium", Family: "ia64", WordBits: 64, PageShift: 14,
		TLBEntries: 128, HasASID: true, HasSegmentation: false,
		HasFastSyscall: true, SyscallInstr: "epc/break",
		PTLevels: 3, RegisterIPCWords: 8, BigEndian: false,
		Costs: c,
	}
}

// MIPS64 models R4000-style software-loaded TLBs with ASIDs.
func MIPS64() *Arch {
	c := baseCosts()
	c.KernelEntry, c.KernelExit = 80, 60
	c.TLBMiss = 120 // software refill handler
	c.ASSwitch = 60
	return &Arch{
		Name: "mips64", Family: "mips", WordBits: 64, PageShift: 12,
		TLBEntries: 48, HasASID: true, HasSegmentation: false,
		HasFastSyscall: false, SyscallInstr: "syscall",
		PTLevels: 0, RegisterIPCWords: 8, BigEndian: true,
		Costs: c,
	}
}

// Alpha models 21264-class machines with PALcode kernel entry.
func Alpha() *Arch {
	c := baseCosts()
	c.KernelEntry, c.KernelExit = 70, 50
	c.ASSwitch = 80
	return &Arch{
		Name: "alpha", Family: "alpha", WordBits: 64, PageShift: 13,
		TLBEntries: 128, HasASID: true, HasSegmentation: false,
		HasFastSyscall: false, SyscallInstr: "call_pal",
		PTLevels: 3, RegisterIPCWords: 6, BigEndian: false,
		Costs: c,
	}
}

// SPARC64 models UltraSPARC with register windows (expensive context save)
// and MMU contexts.
func SPARC64() *Arch {
	c := baseCosts()
	c.CtxSave = 250 // register-window spill
	c.ASSwitch = 90
	return &Arch{
		Name: "sparc64", Family: "sparc", WordBits: 64, PageShift: 13,
		TLBEntries: 64, HasASID: true, HasSegmentation: false,
		HasFastSyscall: false, SyscallInstr: "ta",
		PTLevels: 0, RegisterIPCWords: 6, BigEndian: true,
		Costs: c,
	}
}

// AllArchs returns the nine supported platforms, mirroring the nine L4
// ports the paper cites. The slice is freshly allocated; callers may mutate
// the descriptors (e.g. to ablate ASID support).
func AllArchs() []*Arch {
	return []*Arch{X86(), AMD64(), ARM(), PPC32(), PPC64(), Itanium(), MIPS64(), Alpha(), SPARC64()}
}
