// Package hw_test holds the pool differential that needs the layers above
// hw: an aborted live migration leaves hypervisor state (dirty-log write
// protection, a half-filled destination shell, domain ledgers) on both
// machines, and the pool's Reset must scrub all of it. The test lives in an
// external test package because hw cannot import vmm.
package hw_test

import (
	"errors"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/vmm"
)

// observe captures the machine state an experiment cell could see — the
// external-package twin of pool_test.go's fingerprint.
type observed struct {
	now     hw.Cycles
	free    int
	total   uint64
	pending int
	traps   uint64
}

func observe(m *hw.Machine) observed {
	return observed{
		now:     m.Now(),
		free:    m.Mem.FreeFrames(),
		total:   m.Rec.TotalCycles(),
		pending: m.Events.Pending(),
		traps:   m.CPU.Traps(),
	}
}

// TestPoolCleanAfterAbortedMigration aborts a live migration mid-copy on
// pooled machines — on the source via a failing link, on a second pair via
// the guest dying between rounds — then recycles both machines and checks
// them against fresh boots.
func TestPoolCleanAfterAbortedMigration(t *testing.T) {
	cfg := &hw.MachineConfig{Frames: 1024, IRQLines: 16}
	linkDown := errors.New("link down")

	abortOnce := func(t *testing.T, opts vmm.LiveOpts, wire func(h *vmm.Hypervisor, d vmm.DomID, o *vmm.LiveOpts)) {
		t.Helper()
		p := hw.NewMachinePool()
		srcM := p.Get(hw.X86(), cfg)
		dstM := p.Get(hw.X86(), cfg)
		src, _, err := vmm.New(srcM, 128)
		if err != nil {
			t.Fatal(err)
		}
		dst, _, err := vmm.New(dstM, 128)
		if err != nil {
			t.Fatal(err)
		}
		d, err := src.CreateDomain("guest", 48)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.GuestMemWrite(d.ID, 0, 0, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if wire != nil {
			wire(src, d.ID, &opts)
		}
		if _, _, err := vmm.MigrateLive(src, d.ID, dst, opts); !errors.Is(err, vmm.ErrMigrationAborted) {
			t.Fatalf("migration returned %v, want ErrMigrationAborted", err)
		}

		// Recycle both machines; the pool is LIFO, so dstM comes back
		// first. Each must be indistinguishable from a fresh boot.
		p.Put(srcM)
		p.Put(dstM)
		for _, m := range []*hw.Machine{p.Get(hw.X86(), cfg), p.Get(hw.X86(), cfg)} {
			fresh := hw.NewMachine(hw.X86(), cfg)
			if got, want := observe(m), observe(fresh); got != want {
				t.Errorf("recycled machine %+v, fresh machine %+v", got, want)
			}
		}
	}

	t.Run("link-failure", func(t *testing.T) {
		abortOnce(t, vmm.LiveOpts{
			// Pre-copy rounds succeed; the link dies on the blackout
			// batch (round 0), after the source is already paused.
			Transport: func(round, pages int) error {
				if round == 0 {
					return linkDown
				}
				return nil
			},
		}, nil)
	})

	t.Run("source-dies-midcopy", func(t *testing.T) {
		abortOnce(t, vmm.LiveOpts{}, func(h *vmm.Hypervisor, d vmm.DomID, o *vmm.LiveOpts) {
			o.GuestWork = func(round int) {
				if round == 1 {
					h.DestroyDomain(d)
				}
			}
		})
	})
}
