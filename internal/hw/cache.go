package hw

import "vmmk/internal/trace"

// Cache models the indirect cost of protection-domain switching that the
// paper's minimality argument (§2.2) is really about: every domain has a
// cache footprint, the cache has finite capacity, and re-entering a domain
// whose lines were evicted costs a refill. The direct switch cost (CR3
// write, TLB flush) is charged by the CPU; this adds the part that made
// small kernels fast in practice — a small kernel's lines stay resident.
//
// The model is occupancy-based: each address space declares a footprint in
// lines; running a space brings its footprint resident, evicting other
// spaces' lines round-robin when capacity is exceeded. Re-entry charges
// per-line refill for whatever was lost. It is deliberately coarse — the
// experiments need the thrash-vs-fit distinction, not set indices.
type Cache struct {
	capacity  int // total lines
	refill    Cycles
	footprint map[uint16]int // asid -> declared working set
	resident  map[uint16]int // asid -> lines currently resident
	order     []uint16       // eviction rotation
	refills   uint64
}

// NewCache returns a cache with the given capacity in lines and per-line
// refill cost.
func NewCache(capacityLines int, refillPerLine Cycles) *Cache {
	if capacityLines <= 0 {
		panic("hw: cache capacity must be positive")
	}
	return &Cache{
		capacity:  capacityLines,
		refill:    refillPerLine,
		footprint: make(map[uint16]int),
		resident:  make(map[uint16]int),
	}
}

// SetFootprint declares an address space's working set in lines. Footprints
// larger than the cache are clamped.
func (c *Cache) SetFootprint(asid uint16, lines int) {
	if lines < 0 {
		lines = 0
	}
	if lines > c.capacity {
		lines = c.capacity
	}
	if _, ok := c.footprint[asid]; !ok {
		c.order = append(c.order, asid)
	}
	c.footprint[asid] = lines
}

// total returns the lines currently resident across all spaces.
func (c *Cache) total() int {
	t := 0
	for _, n := range c.resident {
		t += n
	}
	return t
}

// Run makes asid the running space: its footprint becomes resident,
// evicting other spaces round-robin as needed. It returns the number of
// lines refilled (0 when the space was still fully resident — the hot
// case small kernels live in).
func (c *Cache) Run(asid uint16) int {
	want, ok := c.footprint[asid]
	if !ok || want == 0 {
		return 0
	}
	missing := want - c.resident[asid]
	if missing <= 0 {
		return 0
	}
	// Evict from other spaces until the refill fits.
	need := c.total() + missing - c.capacity
	for need > 0 {
		evicted := false
		for _, victim := range c.order {
			if victim == asid || c.resident[victim] == 0 {
				continue
			}
			take := c.resident[victim]
			if take > need {
				take = need
			}
			c.resident[victim] -= take
			need -= take
			evicted = true
			if need == 0 {
				break
			}
		}
		if !evicted {
			break // only this space is resident; capacity clamp holds
		}
	}
	c.resident[asid] = want
	c.refills += uint64(missing)
	return missing
}

// RefillCost converts a line count to cycles.
func (c *Cache) RefillCost(lines int) Cycles { return Cycles(lines) * c.refill }

// Resident returns the lines currently resident for asid.
func (c *Cache) Resident(asid uint16) int { return c.resident[asid] }

// Refills returns cumulative refilled lines.
func (c *Cache) Refills() uint64 { return c.refills }

// AttachCache enables cache-footprint modelling on the CPU. Subsequent
// SwitchSpace calls charge refill costs for the incoming space.
func (c *CPU) AttachCache(cache *Cache) { c.cache = cache }

// CacheRun charges the refill cost of making asid hot; SwitchSpace calls it
// automatically when a cache is attached, and kernels may call it for
// same-space handoffs that still displace cache state (e.g. a large server
// running within a shared space).
func (c *CPU) CacheRun(component trace.Comp, asid uint16) {
	if c.cache == nil {
		return
	}
	lines := c.cache.Run(asid)
	if lines > 0 {
		c.Work(component, c.cache.RefillCost(lines))
	}
}
