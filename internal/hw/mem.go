package hw

import (
	"errors"
	"fmt"
)

// FrameID names one physical page frame. Frame 0 is valid.
type FrameID uint32

// NoFrame is the sentinel for "no frame".
const NoFrame FrameID = ^FrameID(0)

// ErrOutOfMemory is returned when the frame allocator is exhausted.
var ErrOutOfMemory = errors.New("hw: out of physical frames")

// PhysMem is the machine's physical memory: a frame allocator plus frame
// contents and ownership. Ownership is bookkeeping for the experiments
// (page flipping literally transfers ownership between domains; the E1
// analysis attributes flips to owners); the kernels enforce their own
// policy on top.
type PhysMem struct {
	pageSize uint64
	frames   int
	data     [][]byte // lazily allocated frame contents
	owner    []string
	free     []FrameID
	freeTmpl []FrameID // construction-order free stack, copied on Reset
	allocs   uint64
	flips    uint64
}

// NewPhysMem returns a memory of frames pages of pageSize bytes each.
func NewPhysMem(frames int, pageSize uint64) *PhysMem {
	if frames <= 0 || pageSize == 0 {
		panic("hw: invalid physical memory geometry")
	}
	m := &PhysMem{
		pageSize: pageSize,
		frames:   frames,
		data:     make([][]byte, frames),
		owner:    make([]string, frames),
		free:     make([]FrameID, 0, frames),
		freeTmpl: make([]FrameID, frames),
	}
	// Stack of free frames; popping from the end yields ascending IDs
	// first, which keeps traces readable. The template is the same stack
	// frozen at construction, so Reset restores it with one copy.
	for i := frames - 1; i >= 0; i-- {
		m.free = append(m.free, FrameID(i))
	}
	copy(m.freeTmpl, m.free)
	return m
}

// PageSize returns the frame size in bytes.
func (m *PhysMem) PageSize() uint64 { return m.pageSize }

// TotalFrames returns the number of frames in the machine.
func (m *PhysMem) TotalFrames() int { return m.frames }

// FreeFrames returns the number of unallocated frames.
func (m *PhysMem) FreeFrames() int { return len(m.free) }

// Alloc takes a frame for owner. It returns ErrOutOfMemory when exhausted.
func (m *PhysMem) Alloc(owner string) (FrameID, error) {
	if len(m.free) == 0 {
		return NoFrame, ErrOutOfMemory
	}
	f := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.owner[f] = owner
	m.allocs++
	return f, nil
}

// AllocN allocates n frames for owner, or fails atomically.
func (m *PhysMem) AllocN(owner string, n int) ([]FrameID, error) {
	if n > len(m.free) {
		return nil, ErrOutOfMemory
	}
	out := make([]FrameID, n)
	for i := range out {
		f, err := m.Alloc(owner)
		if err != nil { // cannot happen after the length check
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// Free returns a frame to the allocator and clears its contents and owner.
// The backing page is zeroed and kept rather than released: the next Data
// call sees the same all-zero contents either way, and reallocating pages
// was a measurable share of whole-engine allocations.
func (m *PhysMem) Free(f FrameID) {
	m.checkFrame(f)
	if m.owner[f] == "" {
		panic(fmt.Sprintf("hw: double free of frame %d", f))
	}
	m.owner[f] = ""
	if m.data[f] != nil {
		clear(m.data[f])
	}
	m.free = append(m.free, f)
}

// Reset restores the memory to its post-NewPhysMem state: every frame free
// and unowned, all touched contents zeroed (pages are kept, not released),
// statistics cleared, and the free stack rebuilt in construction order so a
// reused machine allocates the same frame IDs as a fresh one. Only frames
// still owned need their pages scrubbed here — Free already zeroes a page
// when the frame is returned, so free frames are clean by invariant.
func (m *PhysMem) Reset() {
	for f, o := range m.owner {
		if o == "" {
			continue
		}
		if m.data[f] != nil {
			clear(m.data[f])
		}
		m.owner[f] = ""
	}
	m.free = m.free[:m.frames]
	copy(m.free, m.freeTmpl)
	m.allocs, m.flips = 0, 0
}

// Owner returns the bookkeeping owner of f ("" if free).
func (m *PhysMem) Owner(f FrameID) string {
	m.checkFrame(f)
	return m.owner[f]
}

// Transfer reassigns ownership of f to newOwner, modelling a page flip. It
// panics if the frame is free: flipping an unowned page is a kernel bug.
func (m *PhysMem) Transfer(f FrameID, newOwner string) {
	m.checkFrame(f)
	if m.owner[f] == "" {
		panic(fmt.Sprintf("hw: transferring free frame %d", f))
	}
	m.owner[f] = newOwner
	m.flips++
}

// Data returns the writable contents of f, allocating them on first touch.
func (m *PhysMem) Data(f FrameID) []byte {
	m.checkFrame(f)
	if m.data[f] == nil {
		m.data[f] = make([]byte, m.pageSize)
	}
	return m.data[f]
}

// Copy copies min(len, pageSize) bytes between two frames and returns the
// number of bytes copied.
func (m *PhysMem) Copy(dst, src FrameID, n uint64) uint64 {
	if n > m.pageSize {
		n = m.pageSize
	}
	copy(m.Data(dst)[:n], m.Data(src)[:n])
	return n
}

// Stats returns cumulative allocation and ownership-transfer counts.
func (m *PhysMem) Stats() (allocs, transfers uint64) { return m.allocs, m.flips }

// OwnedBy returns the number of frames currently owned by owner.
func (m *PhysMem) OwnedBy(owner string) int {
	n := 0
	for _, o := range m.owner {
		if o == owner {
			n++
		}
	}
	return n
}

func (m *PhysMem) checkFrame(f FrameID) {
	if int(f) >= m.frames {
		panic(fmt.Sprintf("hw: frame %d out of range (%d frames)", f, m.frames))
	}
}
