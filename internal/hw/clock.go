package hw

import (
	"container/heap"
	"fmt"
)

// Clock is the single virtual time source. All costs in the simulation
// advance it; nothing reads wall-clock time.
type Clock struct {
	now Cycles
}

// Now returns the current virtual time.
func (c *Clock) Now() Cycles { return c.now }

// Advance moves time forward by d cycles.
func (c *Clock) Advance(d Cycles) { c.now += d }

// AdvanceTo moves time forward to t. It panics if t is in the past, which
// would indicate a broken event ordering.
func (c *Clock) AdvanceTo(t Cycles) {
	if t < c.now {
		panic(fmt.Sprintf("hw: clock moving backwards: now=%d target=%d", c.now, t))
	}
	c.now = t
}

// Reset rewinds the clock to cycle zero (machine reuse only — live kernels
// never travel backwards in time).
func (c *Clock) Reset() { c.now = 0 }

// Event is a scheduled callback in the discrete-event queue.
type Event struct {
	At   Cycles
	Name string
	Fn   func()
	seq  uint64 // tie-breaker for deterministic ordering
	idx  int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// EventQueue is a deterministic discrete-event scheduler. Events at the same
// cycle fire in scheduling order.
type EventQueue struct {
	clock *Clock
	heap  eventHeap
	seq   uint64
}

// NewEventQueue returns an empty queue bound to clock.
func NewEventQueue(clock *Clock) *EventQueue {
	return &EventQueue{clock: clock}
}

// Schedule arranges for fn to run at absolute cycle time at. Scheduling in
// the past clamps to now. It returns the event so callers may cancel it.
func (q *EventQueue) Schedule(at Cycles, name string, fn func()) *Event {
	if at < q.clock.Now() {
		at = q.clock.Now()
	}
	e := &Event{At: at, Name: name, Fn: fn, seq: q.seq}
	q.seq++
	heap.Push(&q.heap, e)
	return e
}

// ScheduleAfter arranges for fn to run d cycles from now.
func (q *EventQueue) ScheduleAfter(d Cycles, name string, fn func()) *Event {
	return q.Schedule(q.clock.Now()+d, name, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *EventQueue) Cancel(e *Event) {
	if e == nil || e.idx < 0 || e.idx >= len(q.heap) || q.heap[e.idx] != e {
		return
	}
	heap.Remove(&q.heap, e.idx)
}

// Pending returns the number of queued events.
func (q *EventQueue) Pending() int { return len(q.heap) }

// Reset drops every queued event and rewinds the sequence counter, so a
// reused machine schedules from the same deterministic starting point as a
// fresh one.
func (q *EventQueue) Reset() {
	for i := range q.heap {
		q.heap[i].idx = -1
		q.heap[i] = nil
	}
	q.heap = q.heap[:0]
	q.seq = 0
}

// NextAt returns the time of the earliest pending event, or false if none.
func (q *EventQueue) NextAt() (Cycles, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].At, true
}

// RunDue fires, in order, every event whose time is <= the current clock.
// Handlers may schedule further events; those are honoured if also due. It
// returns the number of events fired.
func (q *EventQueue) RunDue() int {
	n := 0
	for len(q.heap) > 0 && q.heap[0].At <= q.clock.Now() {
		e := heap.Pop(&q.heap).(*Event)
		e.Fn()
		n++
	}
	return n
}

// RunUntilIdle advances the clock to each pending event in turn and fires
// it, until the queue is empty or maxEvents have fired (0 = unlimited).
// It returns the number of events fired.
func (q *EventQueue) RunUntilIdle(maxEvents int) int {
	n := 0
	for len(q.heap) > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		e := heap.Pop(&q.heap).(*Event)
		if e.At > q.clock.Now() {
			q.clock.AdvanceTo(e.At)
		}
		e.Fn()
		n++
	}
	return n
}

// RunUntil advances through events until the clock would pass t; events
// strictly after t remain queued and the clock is left at t.
func (q *EventQueue) RunUntil(t Cycles) int {
	n := 0
	for len(q.heap) > 0 && q.heap[0].At <= t {
		e := heap.Pop(&q.heap).(*Event)
		if e.At > q.clock.Now() {
			q.clock.AdvanceTo(e.At)
		}
		e.Fn()
		n++
	}
	if q.clock.Now() < t {
		q.clock.AdvanceTo(t)
	}
	return n
}
