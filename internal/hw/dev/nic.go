// Package dev provides the simulated devices both driver stacks program:
// a DMA-capable NIC, a block disk, a periodic timer and a console. Devices
// interact with the rest of the machine only through the event queue, DMA
// into physical frames, and interrupt lines — the same contract real
// devices have with a real kernel.
package dev

import (
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// Packet is a network frame in flight.
type Packet struct {
	Data []byte
	Seq  uint64
}

// NIC is a simple DMA ring network interface. The driver posts receive
// buffers (physical frames); arriving packets are DMA'd into the next
// buffer and the RX interrupt is raised. Transmits complete after a fixed
// wire latency and raise the TX interrupt.
type NIC struct {
	m       *hw.Machine
	comp    trace.Comp // "hw.nic", interned at construction
	rxIRQ   hw.IRQLine
	txIRQ   hw.IRQLine
	wire    hw.Cycles // serialisation latency per packet
	dmaWord hw.Cycles // DMA cost per word moved

	rxRing    []hw.FrameID
	rxHead    int // next buffer to fill
	rxTail    int // next buffer for the driver to reap
	rxCount   int
	completed []RxCompletion

	txInFlight int
	txDone     uint64

	rxDrops uint64
	rxSeq   uint64

	coalesce     int
	sinceIRQ     int
	rxIRQsRaised uint64

	transmitted []Packet
}

// RxCompletion describes one received packet: which posted frame holds it
// and how many bytes were written.
type RxCompletion struct {
	Frame hw.FrameID
	Len   int
	Seq   uint64
}

// NICConfig sizes a NIC.
type NICConfig struct {
	RxIRQ, TxIRQ hw.IRQLine
	RingSize     int       // rx descriptor ring entries (default 64)
	WireLatency  hw.Cycles // per-packet latency (default 2000)
	// CoalesceRx batches receive interrupts: the RX line is raised only
	// every n completions (default 1 = interrupt per packet). Drivers
	// must call FlushRxIRQ when going idle to claim the remainder —
	// the classic mitigation/latency trade-off, ablated in E9f.
	CoalesceRx int
}

// NewNIC attaches a NIC to machine m.
func NewNIC(m *hw.Machine, cfg NICConfig) *NIC {
	ring := cfg.RingSize
	if ring <= 0 {
		ring = 64
	}
	wire := cfg.WireLatency
	if wire == 0 {
		wire = 2000
	}
	co := cfg.CoalesceRx
	if co <= 0 {
		co = 1
	}
	return &NIC{
		m:        m,
		comp:     m.Rec.Intern("hw.nic"),
		rxIRQ:    cfg.RxIRQ,
		txIRQ:    cfg.TxIRQ,
		wire:     wire,
		dmaWord:  1,
		rxRing:   make([]hw.FrameID, ring),
		coalesce: co,
	}
}

// RxIRQ returns the receive interrupt line.
func (n *NIC) RxIRQ() hw.IRQLine { return n.rxIRQ }

// TxIRQ returns the transmit-complete interrupt line.
func (n *NIC) TxIRQ() hw.IRQLine { return n.txIRQ }

// PostRxBuffer gives the NIC a frame to DMA a future packet into. It
// returns false if the descriptor ring is full.
func (n *NIC) PostRxBuffer(f hw.FrameID) bool {
	if n.rxCount == len(n.rxRing) {
		return false
	}
	n.rxRing[n.rxHead] = f
	n.rxHead = (n.rxHead + 1) % len(n.rxRing)
	n.rxCount++
	return true
}

// PostedBuffers returns how many RX buffers are currently posted.
func (n *NIC) PostedBuffers() int { return n.rxCount }

// Inject delivers a packet from "the wire" at the current instant: DMA into
// the next posted buffer and raise the RX IRQ. Without a posted buffer the
// packet is dropped, as on real hardware. Returns whether it was accepted.
func (n *NIC) Inject(data []byte) bool {
	if n.rxCount == 0 {
		n.rxDrops++
		return false
	}
	f := n.rxRing[n.rxTail]
	n.rxTail = (n.rxTail + 1) % len(n.rxRing)
	n.rxCount--
	buf := n.m.Mem.Data(f)
	nn := copy(buf, data)
	n.rxSeq++
	n.completed = append(n.completed, RxCompletion{Frame: f, Len: nn, Seq: n.rxSeq})
	words := hw.Cycles((nn + 7) / 8)
	n.m.CPU.Rec.Charge(uint64(n.m.Clock.Now()), trace.KDMATransfer, n.comp, uint64(words*n.dmaWord))
	n.sinceIRQ++
	if n.sinceIRQ >= n.coalesce {
		n.sinceIRQ = 0
		n.rxIRQsRaised++
		n.m.IRQ.Raise(n.rxIRQ)
	}
	return true
}

// FlushRxIRQ raises the RX interrupt if coalesced completions are waiting —
// the driver's going-idle poll.
func (n *NIC) FlushRxIRQ() {
	if n.sinceIRQ > 0 {
		n.sinceIRQ = 0
		n.rxIRQsRaised++
		n.m.IRQ.Raise(n.rxIRQ)
	}
}

// RxIRQsRaised returns how many receive interrupts the device has asserted.
func (n *NIC) RxIRQsRaised() uint64 { return n.rxIRQsRaised }

// InjectAt schedules a packet arrival at absolute time at.
func (n *NIC) InjectAt(at hw.Cycles, data []byte) {
	n.m.Events.Schedule(at, "nic.rx", func() { n.Inject(data) })
}

// ReapRx returns and clears the completed receive descriptors.
func (n *NIC) ReapRx() []RxCompletion {
	out := n.completed
	n.completed = nil
	return out
}

// Transmit queues a packet for transmission; completion raises the TX IRQ
// after the wire latency. The packet payload is read from frame f.
func (n *NIC) Transmit(f hw.FrameID, length int) {
	if length < 0 {
		panic(fmt.Sprintf("dev: negative tx length %d", length))
	}
	data := make([]byte, length)
	copy(data, n.m.Mem.Data(f))
	words := hw.Cycles((length + 7) / 8)
	n.m.CPU.Rec.Charge(uint64(n.m.Clock.Now()), trace.KDMATransfer, n.comp, uint64(words*n.dmaWord))
	n.txInFlight++
	n.m.Events.ScheduleAfter(n.wire, "nic.tx-done", func() {
		n.txInFlight--
		n.txDone++
		n.transmitted = append(n.transmitted, Packet{Data: data, Seq: n.txDone})
		n.m.IRQ.Raise(n.txIRQ)
	})
}

// Transmitted returns and clears the packets that completed transmission —
// the experiment harness's view of "the wire".
func (n *NIC) Transmitted() []Packet {
	out := n.transmitted
	n.transmitted = nil
	return out
}

// Stats returns drops and completed transmit count.
func (n *NIC) Stats() (rxDrops, txDone uint64) { return n.rxDrops, n.txDone }
