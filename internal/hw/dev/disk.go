package dev

import (
	"encoding/binary"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// DiskOp is a block-device operation direction.
type DiskOp int

// Disk operations.
const (
	DiskRead DiskOp = iota
	DiskWrite
)

// String names the disk operation.
func (op DiskOp) String() string {
	if op == DiskRead {
		return "read"
	}
	return "write"
}

// eventLabel is the completion event's queue label, precomputed: Submit is
// hot enough that formatting it per request showed up in profiles.
func (op DiskOp) eventLabel() string {
	if op == DiskRead {
		return "disk.read"
	}
	return "disk.write"
}

// DiskReq is one block request: move one block between the platter and a
// physical frame.
type DiskReq struct {
	Op    DiskOp
	Block uint64
	Frame hw.FrameID
	Tag   uint64 // caller-chosen identifier returned on completion
}

// DiskCompletion reports a finished request.
type DiskCompletion struct {
	Req DiskReq
	OK  bool
}

// Disk is a fixed-latency block device with a completion interrupt. Blocks
// are page-sized; contents persist in the device for the lifetime of the
// simulation, which lets storage servers (Parallax-like) be checked for
// end-to-end data integrity.
type Disk struct {
	m         *hw.Machine
	comp      trace.Comp // "hw.disk", interned at construction
	irq       hw.IRQLine
	latency   hw.Cycles
	blocks    uint64
	store     map[uint64][]byte
	completed []DiskCompletion
	inFlight  int
	served    uint64
}

// DiskConfig sizes a Disk.
type DiskConfig struct {
	IRQ     hw.IRQLine
	Blocks  uint64    // capacity in blocks (default 65536)
	Latency hw.Cycles // per-request service time (default 50000, i.e. "fast disk")
}

// NewDisk attaches a disk to machine m.
func NewDisk(m *hw.Machine, cfg DiskConfig) *Disk {
	blocks := cfg.Blocks
	if blocks == 0 {
		blocks = 65536
	}
	lat := cfg.Latency
	if lat == 0 {
		lat = 50000
	}
	return &Disk{m: m, comp: m.Rec.Intern("hw.disk"), irq: cfg.IRQ, latency: lat, blocks: blocks, store: make(map[uint64][]byte)}
}

// IRQ returns the completion interrupt line.
func (d *Disk) IRQ() hw.IRQLine { return d.irq }

// Blocks returns the device capacity in blocks.
func (d *Disk) Blocks() uint64 { return d.blocks }

// Submit queues a request; it completes after the device latency and raises
// the completion IRQ. Out-of-range blocks complete with OK=false.
func (d *Disk) Submit(req DiskReq) {
	d.inFlight++
	d.m.Events.ScheduleAfter(d.latency, req.Op.eventLabel(), func() {
		d.inFlight--
		ok := req.Block < d.blocks
		if ok {
			ps := d.m.Mem.PageSize()
			switch req.Op {
			case DiskRead:
				dst := d.m.Mem.Data(req.Frame)
				n := copy(dst, d.store[req.Block])
				clear(dst[n:])
			case DiskWrite:
				// The store keeps only each block's non-zero prefix: pages
				// are dominated by zero padding, and reads reconstruct the
				// tail with clear. Purely a simulator-memory optimisation —
				// the DMA charge below is per page either way.
				src := d.m.Mem.Data(req.Frame)
				n := trimZeros(src)
				blk := d.store[req.Block]
				if cap(blk) < n {
					blk = make([]byte, n)
				}
				blk = blk[:n]
				copy(blk, src[:n])
				d.store[req.Block] = blk
			}
			d.m.CPU.Rec.Charge(uint64(d.m.Clock.Now()), trace.KDMATransfer, d.comp, uint64(ps/8))
			d.served++
		}
		d.completed = append(d.completed, DiskCompletion{Req: req, OK: ok})
		d.m.IRQ.Raise(d.irq)
	})
}

// trimZeros returns the length of b without its all-zero tail, scanning
// word-at-a-time (pages are mostly zero padding, so the scan covers nearly
// the whole page on every write).
func trimZeros(b []byte) int {
	n := len(b)
	for n >= 8 && binary.LittleEndian.Uint64(b[n-8:n]) == 0 {
		n -= 8
	}
	for n > 0 && b[n-1] == 0 {
		n--
	}
	return n
}

// Reap returns and clears completed requests.
func (d *Disk) Reap() []DiskCompletion {
	out := d.completed
	d.completed = nil
	return out
}

// InFlight returns the number of submitted, un-completed requests.
func (d *Disk) InFlight() int { return d.inFlight }

// Served returns the number of successfully completed requests.
func (d *Disk) Served() uint64 { return d.served }

// PeekBlock returns a copy of a block's stored contents (nil if never
// written) — test/verification hook, not a device register.
func (d *Disk) PeekBlock(block uint64) []byte {
	blk, ok := d.store[block]
	if !ok {
		return nil
	}
	out := make([]byte, d.m.Mem.PageSize())
	copy(out, blk)
	return out
}

// Timer raises a periodic interrupt, driving preemptive scheduling in both
// kernels.
type Timer struct {
	m      *hw.Machine
	irq    hw.IRQLine
	period hw.Cycles
	on     bool
	ticks  uint64
}

// NewTimer attaches a periodic timer to machine m.
func NewTimer(m *hw.Machine, irq hw.IRQLine, period hw.Cycles) *Timer {
	if period == 0 {
		period = 1_000_000
	}
	return &Timer{m: m, irq: irq, period: period}
}

// Start begins ticking from now.
func (t *Timer) Start() {
	if t.on {
		return
	}
	t.on = true
	t.arm()
}

// Stop ceases future ticks (the currently armed tick still fires but is
// ignored).
func (t *Timer) Stop() { t.on = false }

// Ticks returns the number of delivered ticks.
func (t *Timer) Ticks() uint64 { return t.ticks }

func (t *Timer) arm() {
	t.m.Events.ScheduleAfter(t.period, "timer.tick", func() {
		if !t.on {
			return
		}
		t.ticks++
		t.m.IRQ.Raise(t.irq)
		t.arm()
	})
}

// Console is a byte sink with a cycle cost per write, standing in for the
// serial console both systems log to.
type Console struct {
	m   *hw.Machine
	buf []byte
}

// NewConsole attaches a console to machine m.
func NewConsole(m *hw.Machine) *Console { return &Console{m: m} }

// Write appends p to the console transcript, charging MMIO cost per chunk.
func (c *Console) Write(component trace.Comp, p []byte) {
	c.m.CPU.Work(component, c.m.Arch.Costs.DeviceMMIO)
	c.buf = append(c.buf, p...)
}

// Contents returns the transcript so far.
func (c *Console) Contents() string { return string(c.buf) }
