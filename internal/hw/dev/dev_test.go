package dev

import (
	"bytes"
	"testing"

	"vmmk/internal/hw"
)

func devMachine(t testing.TB) *hw.Machine {
	t.Helper()
	return hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 64, IRQLines: 8})
}

func TestNICRxPath(t *testing.T) {
	m := devMachine(t)
	nic := NewNIC(m, NICConfig{RxIRQ: 1, TxIRQ: 2, RingSize: 4})
	f, _ := m.Mem.Alloc("drv")
	if !nic.PostRxBuffer(f) {
		t.Fatal("post failed")
	}
	if !nic.Inject([]byte("ping")) {
		t.Fatal("inject with posted buffer failed")
	}
	if !m.IRQ.Pending(1) {
		t.Fatal("rx IRQ not raised")
	}
	comps := nic.ReapRx()
	if len(comps) != 1 || comps[0].Len != 4 || comps[0].Frame != f {
		t.Fatalf("bad completion %+v", comps)
	}
	if string(m.Mem.Data(f)[:4]) != "ping" {
		t.Fatal("DMA did not write packet data")
	}
	if len(nic.ReapRx()) != 0 {
		t.Fatal("reap did not clear completions")
	}
}

func TestNICDropWithoutBuffers(t *testing.T) {
	m := devMachine(t)
	nic := NewNIC(m, NICConfig{RxIRQ: 1, TxIRQ: 2})
	if nic.Inject([]byte("x")) {
		t.Fatal("packet accepted with no posted buffer")
	}
	drops, _ := nic.Stats()
	if drops != 1 {
		t.Fatalf("drops = %d, want 1", drops)
	}
}

func TestNICRingFull(t *testing.T) {
	m := devMachine(t)
	nic := NewNIC(m, NICConfig{RxIRQ: 1, TxIRQ: 2, RingSize: 2})
	f1, _ := m.Mem.Alloc("d")
	f2, _ := m.Mem.Alloc("d")
	f3, _ := m.Mem.Alloc("d")
	if !nic.PostRxBuffer(f1) || !nic.PostRxBuffer(f2) {
		t.Fatal("posts failed")
	}
	if nic.PostRxBuffer(f3) {
		t.Fatal("post succeeded on full ring")
	}
}

func TestNICTxCompletes(t *testing.T) {
	m := devMachine(t)
	nic := NewNIC(m, NICConfig{RxIRQ: 1, TxIRQ: 2, WireLatency: 500})
	f, _ := m.Mem.Alloc("drv")
	copy(m.Mem.Data(f), []byte("pong"))
	nic.Transmit(f, 4)
	if len(nic.Transmitted()) != 0 {
		t.Fatal("tx completed before wire latency")
	}
	m.Events.RunUntilIdle(0)
	pkts := nic.Transmitted()
	if len(pkts) != 1 || !bytes.Equal(pkts[0].Data, []byte("pong")) {
		t.Fatalf("bad tx %+v", pkts)
	}
	if !m.IRQ.Pending(2) {
		t.Fatal("tx IRQ not raised")
	}
}

func TestNICInjectAt(t *testing.T) {
	m := devMachine(t)
	nic := NewNIC(m, NICConfig{RxIRQ: 1, TxIRQ: 2})
	f, _ := m.Mem.Alloc("drv")
	nic.PostRxBuffer(f)
	nic.InjectAt(1000, []byte("later"))
	m.Events.RunUntilIdle(0)
	if m.Clock.Now() != 1000 {
		t.Fatalf("clock = %d, want 1000", m.Clock.Now())
	}
	if len(nic.ReapRx()) != 1 {
		t.Fatal("scheduled packet not delivered")
	}
}

func TestNICCoalescing(t *testing.T) {
	m := devMachine(t)
	nic := NewNIC(m, NICConfig{RxIRQ: 1, TxIRQ: 2, RingSize: 16, CoalesceRx: 4})
	for i := 0; i < 16; i++ {
		f, _ := m.Mem.Alloc("drv")
		nic.PostRxBuffer(f)
	}
	for i := 0; i < 6; i++ {
		nic.Inject([]byte{byte(i)})
	}
	// 6 packets at batch 4: one IRQ at packet 4, two completions waiting.
	if got := nic.RxIRQsRaised(); got != 1 {
		t.Fatalf("irqs = %d, want 1", got)
	}
	nic.FlushRxIRQ()
	if got := nic.RxIRQsRaised(); got != 2 {
		t.Fatalf("irqs after flush = %d, want 2", got)
	}
	nic.FlushRxIRQ() // nothing pending: no-op
	if got := nic.RxIRQsRaised(); got != 2 {
		t.Fatal("idle flush raised an interrupt")
	}
	if len(nic.ReapRx()) != 6 {
		t.Fatal("completions lost under coalescing")
	}
}

func TestDiskWriteReadRoundTrip(t *testing.T) {
	m := devMachine(t)
	d := NewDisk(m, DiskConfig{IRQ: 3, Latency: 100})
	fw, _ := m.Mem.Alloc("drv")
	fr, _ := m.Mem.Alloc("drv")
	copy(m.Mem.Data(fw), []byte("block-7-data"))
	d.Submit(DiskReq{Op: DiskWrite, Block: 7, Frame: fw, Tag: 1})
	m.Events.RunUntilIdle(0)
	d.Submit(DiskReq{Op: DiskRead, Block: 7, Frame: fr, Tag: 2})
	m.Events.RunUntilIdle(0)
	comps := d.Reap()
	if len(comps) != 2 || !comps[0].OK || !comps[1].OK {
		t.Fatalf("completions %+v", comps)
	}
	if string(m.Mem.Data(fr)[:12]) != "block-7-data" {
		t.Fatal("read did not return written data")
	}
	if d.Served() != 2 {
		t.Fatalf("served = %d, want 2", d.Served())
	}
}

func TestDiskReadUnwrittenIsZero(t *testing.T) {
	m := devMachine(t)
	d := NewDisk(m, DiskConfig{IRQ: 3})
	f, _ := m.Mem.Alloc("drv")
	m.Mem.Data(f)[0] = 0xFF
	d.Submit(DiskReq{Op: DiskRead, Block: 1, Frame: f})
	m.Events.RunUntilIdle(0)
	if m.Mem.Data(f)[0] != 0 {
		t.Fatal("unwritten block must read as zeros")
	}
}

func TestDiskOutOfRange(t *testing.T) {
	m := devMachine(t)
	d := NewDisk(m, DiskConfig{IRQ: 3, Blocks: 8})
	f, _ := m.Mem.Alloc("drv")
	d.Submit(DiskReq{Op: DiskRead, Block: 8, Frame: f})
	m.Events.RunUntilIdle(0)
	comps := d.Reap()
	if len(comps) != 1 || comps[0].OK {
		t.Fatal("out-of-range request must complete with OK=false")
	}
	if !m.IRQ.Pending(3) {
		t.Fatal("failed request must still interrupt")
	}
}

func TestDiskLatencyOrdering(t *testing.T) {
	m := devMachine(t)
	d := NewDisk(m, DiskConfig{IRQ: 3, Latency: 100})
	f, _ := m.Mem.Alloc("drv")
	d.Submit(DiskReq{Op: DiskWrite, Block: 1, Frame: f, Tag: 1})
	m.Clock.Advance(50)
	d.Submit(DiskReq{Op: DiskWrite, Block: 2, Frame: f, Tag: 2})
	if d.InFlight() != 2 {
		t.Fatalf("in flight = %d, want 2", d.InFlight())
	}
	m.Events.RunUntilIdle(0)
	comps := d.Reap()
	if comps[0].Req.Tag != 1 || comps[1].Req.Tag != 2 {
		t.Fatal("completions out of order")
	}
	if d.InFlight() != 0 {
		t.Fatal("in-flight not drained")
	}
}

func TestDiskPeekBlock(t *testing.T) {
	m := devMachine(t)
	d := NewDisk(m, DiskConfig{IRQ: 3})
	if d.PeekBlock(5) != nil {
		t.Fatal("unwritten block should peek nil")
	}
	f, _ := m.Mem.Alloc("drv")
	copy(m.Mem.Data(f), []byte("abc"))
	d.Submit(DiskReq{Op: DiskWrite, Block: 5, Frame: f})
	m.Events.RunUntilIdle(0)
	got := d.PeekBlock(5)
	if string(got[:3]) != "abc" {
		t.Fatal("peek returned wrong data")
	}
	got[0] = 'z' // must be a copy
	if string(d.PeekBlock(5)[:3]) != "abc" {
		t.Fatal("PeekBlock leaked internal storage")
	}
}

func TestTimerTicks(t *testing.T) {
	m := devMachine(t)
	tm := NewTimer(m, 0, 1000)
	tm.Start()
	tm.Start() // idempotent
	m.Events.RunUntil(3500)
	if tm.Ticks() != 3 {
		t.Fatalf("ticks = %d, want 3", tm.Ticks())
	}
	tm.Stop()
	m.Events.RunUntil(10000)
	if tm.Ticks() != 3 {
		t.Fatal("timer ticked after Stop")
	}
}

func TestConsole(t *testing.T) {
	m := devMachine(t)
	c := NewConsole(m)
	before := m.Clock.Now()
	c.Write(m.Rec.Intern("os"), []byte("hello "))
	c.Write(m.Rec.Intern("os"), []byte("world"))
	if c.Contents() != "hello world" {
		t.Fatalf("contents = %q", c.Contents())
	}
	if m.Clock.Now() == before {
		t.Fatal("console writes must cost cycles")
	}
}
