// Package fslite is a small, real filesystem over a block device: a
// superblock, an inode table with per-inode names (one flat root
// directory), an allocation bitmap, and direct block pointers. It exists to
// make the paper's component-reuse point (§2.2) concrete: the identical
// filesystem code mounts over the microkernel's storage server, over the
// VMM's blkfront, and over a Parallax virtual disk, because all it needs is
// the two-method block contract both personalities already provide.
package fslite

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// BlockDev is the device contract: read a whole block, write a whole block.
// Both OS personalities' storage clients satisfy it.
type BlockDev interface {
	Read(block uint64) ([]byte, error)
	Write(block uint64, data []byte) error
}

// Errors returned by the filesystem.
var (
	ErrNotFormatted = errors.New("fslite: device is not formatted")
	ErrExists       = errors.New("fslite: file exists")
	ErrNotFound     = errors.New("fslite: file not found")
	ErrNoSpace      = errors.New("fslite: out of space")
	ErrFileTooBig   = errors.New("fslite: file exceeds maximum size")
	ErrNameTooLong  = errors.New("fslite: name too long")
	ErrBadOffset    = errors.New("fslite: offset out of range")
)

const (
	magic        = 0x564D4653 // "VMFS"
	maxName      = 48
	directPtrs   = 12
	inodeSize    = 8 + 8 + maxName + directPtrs*8 // flags+size+name+pointers
	inodeBlocks  = 4                              // blocks reserved for the inode table
	bitmapBlock  = 1 + inodeBlocks                // one block of allocation bitmap
	firstDataBlk = bitmapBlock + 1
)

// FS is a mounted filesystem.
type FS struct {
	dev       BlockDev
	blockSize uint64
	nblocks   uint64
	ninodes   int
	inodes    []inode
	bitmap    []byte
}

type inode struct {
	used bool
	size uint64
	name string
	ptrs [directPtrs]uint64
}

// MaxFileSize returns the largest file this filesystem can hold.
func (fs *FS) MaxFileSize() uint64 { return directPtrs * fs.blockSize }

// Mkfs formats the device: writes the superblock, an empty inode table and
// a bitmap with the metadata blocks marked used.
func Mkfs(dev BlockDev, blockSize, nblocks uint64) (*FS, error) {
	if blockSize < 512 || nblocks <= firstDataBlk {
		return nil, fmt.Errorf("fslite: bad geometry %d x %d", blockSize, nblocks)
	}
	fs := &FS{
		dev:       dev,
		blockSize: blockSize,
		nblocks:   nblocks,
		ninodes:   int(inodeBlocks * blockSize / inodeSize),
	}
	fs.inodes = make([]inode, fs.ninodes)
	fs.bitmap = make([]byte, blockSize)
	for b := uint64(0); b < firstDataBlk; b++ {
		fs.setUsed(b, true)
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Mount reads filesystem state back from a formatted device.
func Mount(dev BlockDev, blockSize uint64) (*FS, error) {
	sb, err := dev.Read(0)
	if err != nil {
		return nil, err
	}
	if len(sb) < 24 || binary.LittleEndian.Uint32(sb) != magic {
		return nil, ErrNotFormatted
	}
	bs := binary.LittleEndian.Uint64(sb[8:])
	if bs != blockSize {
		return nil, fmt.Errorf("fslite: superblock block size %d, mounted with %d", bs, blockSize)
	}
	fs := &FS{
		dev:       dev,
		blockSize: blockSize,
		nblocks:   binary.LittleEndian.Uint64(sb[16:]),
		ninodes:   int(inodeBlocks * blockSize / inodeSize),
	}
	fs.inodes = make([]inode, fs.ninodes)
	// Inode table.
	per := int(blockSize) / inodeSize
	for blk := 0; blk < inodeBlocks; blk++ {
		data, err := dev.Read(uint64(1 + blk))
		if err != nil {
			return nil, err
		}
		for j := 0; j < per; j++ {
			idx := blk*per + j
			if idx >= fs.ninodes {
				break
			}
			fs.inodes[idx] = decodeInode(data[j*inodeSize : (j+1)*inodeSize])
		}
	}
	bm, err := dev.Read(bitmapBlock)
	if err != nil {
		return nil, err
	}
	fs.bitmap = append([]byte(nil), bm[:blockSize]...)
	return fs, nil
}

func decodeInode(b []byte) inode {
	var in inode
	flags := binary.LittleEndian.Uint64(b)
	if flags&1 == 0 {
		return in
	}
	in.used = true
	in.size = binary.LittleEndian.Uint64(b[8:])
	nameBytes := b[16 : 16+maxName]
	n := 0
	for n < maxName && nameBytes[n] != 0 {
		n++
	}
	in.name = string(nameBytes[:n])
	for i := 0; i < directPtrs; i++ {
		in.ptrs[i] = binary.LittleEndian.Uint64(b[16+maxName+i*8:])
	}
	return in
}

func encodeInode(in inode, b []byte) {
	for i := range b[:inodeSize] {
		b[i] = 0
	}
	if !in.used {
		return
	}
	binary.LittleEndian.PutUint64(b, 1)
	binary.LittleEndian.PutUint64(b[8:], in.size)
	copy(b[16:16+maxName], in.name)
	for i := 0; i < directPtrs; i++ {
		binary.LittleEndian.PutUint64(b[16+maxName+i*8:], in.ptrs[i])
	}
}

// Sync writes superblock, inode table and bitmap to the device.
func (fs *FS) Sync() error {
	sb := make([]byte, fs.blockSize)
	binary.LittleEndian.PutUint32(sb, magic)
	binary.LittleEndian.PutUint64(sb[8:], fs.blockSize)
	binary.LittleEndian.PutUint64(sb[16:], fs.nblocks)
	if err := fs.dev.Write(0, sb); err != nil {
		return err
	}
	per := int(fs.blockSize) / inodeSize
	for blk := 0; blk < inodeBlocks; blk++ {
		data := make([]byte, fs.blockSize)
		for j := 0; j < per; j++ {
			idx := blk*per + j
			if idx >= fs.ninodes {
				break
			}
			encodeInode(fs.inodes[idx], data[j*inodeSize:])
		}
		if err := fs.dev.Write(uint64(1+blk), data); err != nil {
			return err
		}
	}
	return fs.dev.Write(bitmapBlock, fs.bitmap)
}

func (fs *FS) setUsed(block uint64, used bool) {
	byteIdx, bit := block/8, block%8
	if used {
		fs.bitmap[byteIdx] |= 1 << bit
	} else {
		fs.bitmap[byteIdx] &^= 1 << bit
	}
}

func (fs *FS) isUsed(block uint64) bool {
	return fs.bitmap[block/8]&(1<<(block%8)) != 0
}

func (fs *FS) allocBlock() (uint64, error) {
	for b := uint64(firstDataBlk); b < fs.nblocks && b < fs.blockSize*8; b++ {
		if !fs.isUsed(b) {
			fs.setUsed(b, true)
			return b, nil
		}
	}
	return 0, ErrNoSpace
}

func (fs *FS) findInode(name string) int {
	for i := range fs.inodes {
		if fs.inodes[i].used && fs.inodes[i].name == name {
			return i
		}
	}
	return -1
}

// Create makes an empty file. It fails if the name exists or is too long.
func (fs *FS) Create(name string) error {
	if len(name) == 0 || len(name) > maxName {
		return ErrNameTooLong
	}
	if fs.findInode(name) >= 0 {
		return ErrExists
	}
	for i := range fs.inodes {
		if !fs.inodes[i].used {
			fs.inodes[i] = inode{used: true, name: name}
			return fs.Sync()
		}
	}
	return ErrNoSpace
}

// WriteFile replaces the file's contents (create-if-missing convenience
// plus truncating write — the common case for the workloads).
func (fs *FS) WriteFile(name string, data []byte) error {
	if fs.findInode(name) < 0 {
		if err := fs.Create(name); err != nil {
			return err
		}
	}
	idx := fs.findInode(name)
	in := &fs.inodes[idx]
	if uint64(len(data)) > fs.MaxFileSize() {
		return ErrFileTooBig
	}
	// Copy-on-write: allocate and write the new blocks first, while the old
	// ones stay allocated and the inode untouched. A device error or
	// ErrNoSpace mid-write then rolls back only the fresh allocations — the
	// file keeps its previous contents and the bitmap stays consistent with
	// the inode table. Only a fully written block set is committed.
	var newPtrs [directPtrs]uint64
	nNew := 0
	rollback := func() {
		for i := 0; i < nNew; i++ {
			fs.setUsed(newPtrs[i], false)
		}
	}
	remaining := data
	for len(remaining) > 0 {
		b, err := fs.allocBlock()
		if err != nil {
			rollback()
			return err
		}
		newPtrs[nNew] = b
		nNew++
		chunk := remaining
		if uint64(len(chunk)) > fs.blockSize {
			chunk = chunk[:fs.blockSize]
		}
		buf := make([]byte, fs.blockSize)
		copy(buf, chunk)
		if err := fs.dev.Write(b, buf); err != nil {
			rollback()
			return err
		}
		remaining = remaining[len(chunk):]
	}
	// Commit: release the old blocks, install the new pointers and size.
	for _, p := range in.ptrs {
		if p != 0 {
			fs.setUsed(p, false)
		}
	}
	in.ptrs = newPtrs
	in.size = uint64(len(data))
	return fs.Sync()
}

// ReadFile returns the file's full contents.
func (fs *FS) ReadFile(name string) ([]byte, error) {
	idx := fs.findInode(name)
	if idx < 0 {
		return nil, ErrNotFound
	}
	in := fs.inodes[idx]
	out := make([]byte, 0, in.size)
	remaining := in.size
	for i := 0; i < directPtrs && remaining > 0; i++ {
		if in.ptrs[i] == 0 {
			break
		}
		blk, err := fs.dev.Read(in.ptrs[i])
		if err != nil {
			return nil, err
		}
		n := remaining
		if n > fs.blockSize {
			n = fs.blockSize
		}
		out = append(out, blk[:n]...)
		remaining -= n
	}
	return out, nil
}

// ReadAt reads n bytes from offset.
func (fs *FS) ReadAt(name string, offset, n uint64) ([]byte, error) {
	data, err := fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if offset > uint64(len(data)) {
		return nil, ErrBadOffset
	}
	end := offset + n
	if end > uint64(len(data)) {
		end = uint64(len(data))
	}
	return data[offset:end], nil
}

// Remove deletes a file and frees its blocks.
func (fs *FS) Remove(name string) error {
	idx := fs.findInode(name)
	if idx < 0 {
		return ErrNotFound
	}
	for _, p := range fs.inodes[idx].ptrs {
		if p != 0 {
			fs.setUsed(p, false)
		}
	}
	fs.inodes[idx] = inode{}
	return fs.Sync()
}

// Stat returns a file's size.
func (fs *FS) Stat(name string) (uint64, error) {
	idx := fs.findInode(name)
	if idx < 0 {
		return 0, ErrNotFound
	}
	return fs.inodes[idx].size, nil
}

// List returns all file names, sorted.
func (fs *FS) List() []string {
	var out []string
	for i := range fs.inodes {
		if fs.inodes[i].used {
			out = append(out, fs.inodes[i].name)
		}
	}
	sort.Strings(out)
	return out
}

// CheckConsistency cross-checks the allocation bitmap against the inode
// table: metadata blocks allocated, every live file's pointers in range,
// allocated and unshared, pointer count matching the file size, and no
// allocated data block that no file references (a leak). It is the
// post-mortem invariant the fault-injection scenarios assert after failed
// writes.
func (fs *FS) CheckConsistency() error {
	for b := uint64(0); b < firstDataBlk; b++ {
		if !fs.isUsed(b) {
			return fmt.Errorf("fslite: metadata block %d marked free", b)
		}
	}
	owner := make(map[uint64]string)
	for i := range fs.inodes {
		in := &fs.inodes[i]
		if !in.used {
			continue
		}
		want := int((in.size + fs.blockSize - 1) / fs.blockSize)
		got := 0
		for _, p := range in.ptrs {
			if p == 0 {
				continue
			}
			got++
			if p < firstDataBlk || p >= fs.nblocks {
				return fmt.Errorf("fslite: %q points at block %d outside the data area", in.name, p)
			}
			if !fs.isUsed(p) {
				return fmt.Errorf("fslite: %q points at block %d which the bitmap marks free", in.name, p)
			}
			if prev, dup := owner[p]; dup {
				return fmt.Errorf("fslite: block %d shared by %q and %q", p, prev, in.name)
			}
			owner[p] = in.name
		}
		if got != want {
			return fmt.Errorf("fslite: %q has %d blocks for %d bytes (want %d)", in.name, got, in.size, want)
		}
	}
	for b := uint64(firstDataBlk); b < fs.nblocks && b < fs.blockSize*8; b++ {
		if fs.isUsed(b) {
			if _, ok := owner[b]; !ok {
				return fmt.Errorf("fslite: block %d allocated but unreferenced (leak)", b)
			}
		}
	}
	return nil
}

// FreeBlocks returns the number of unallocated data blocks.
func (fs *FS) FreeBlocks() uint64 {
	var n uint64
	for b := uint64(firstDataBlk); b < fs.nblocks && b < fs.blockSize*8; b++ {
		if !fs.isUsed(b) {
			n++
		}
	}
	return n
}
