package fslite

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// memDev is an in-memory block device for unit tests (the cross-stack
// integration tests in internal/core mount fslite over the real simulated
// storage paths).
type memDev struct {
	blocks    map[uint64][]byte
	blockSize uint64
	failAfter int // inject a failure after this many ops (0 = never)
	ops       int
}

func newMemDev(blockSize uint64) *memDev {
	return &memDev{blocks: make(map[uint64][]byte), blockSize: blockSize}
}

func (d *memDev) Read(block uint64) ([]byte, error) {
	d.ops++
	if d.failAfter > 0 && d.ops > d.failAfter {
		return nil, errors.New("memdev: injected failure")
	}
	if b, ok := d.blocks[block]; ok {
		out := make([]byte, d.blockSize)
		copy(out, b)
		return out, nil
	}
	return make([]byte, d.blockSize), nil
}

func (d *memDev) Write(block uint64, data []byte) error {
	d.ops++
	if d.failAfter > 0 && d.ops > d.failAfter {
		return errors.New("memdev: injected failure")
	}
	b := make([]byte, d.blockSize)
	copy(b, data)
	d.blocks[block] = b
	return nil
}

func newFS(t testing.TB) (*FS, *memDev) {
	t.Helper()
	dev := newMemDev(4096)
	fs, err := Mkfs(dev, 4096, 256)
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

func TestMkfsGeometryValidation(t *testing.T) {
	dev := newMemDev(4096)
	if _, err := Mkfs(dev, 100, 256); err == nil {
		t.Fatal("tiny block size accepted")
	}
	if _, err := Mkfs(dev, 4096, 3); err == nil {
		t.Fatal("too few blocks accepted")
	}
}

func TestCreateWriteRead(t *testing.T) {
	fs, _ := newFS(t)
	want := []byte("hello filesystem")
	if err := fs.WriteFile("greeting.txt", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("greeting.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
	size, err := fs.Stat("greeting.txt")
	if err != nil || size != uint64(len(want)) {
		t.Fatalf("stat = %d, %v", size, err)
	}
}

func TestMultiBlockFile(t *testing.T) {
	fs, _ := newFS(t)
	want := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16 KB = 4 blocks
	if err := fs.WriteFile("big", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("multi-block content mismatch")
	}
}

func TestFileTooBig(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.WriteFile("huge", make([]byte, fs.MaxFileSize()+1)); !errors.Is(err, ErrFileTooBig) {
		t.Fatalf("err = %v, want ErrFileTooBig", err)
	}
	// Exactly the max works.
	if err := fs.WriteFile("max", make([]byte, fs.MaxFileSize())); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteFreesOldBlocks(t *testing.T) {
	fs, _ := newFS(t)
	free0 := fs.FreeBlocks()
	if err := fs.WriteFile("f", make([]byte, 5*4096)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("f", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if got := fs.FreeBlocks(); got != free0-1 {
		t.Fatalf("free blocks = %d, want %d (shrinking rewrite must free)", got, free0-1)
	}
}

func TestRemoveFreesBlocks(t *testing.T) {
	fs, _ := newFS(t)
	free0 := fs.FreeBlocks()
	fs.WriteFile("f", make([]byte, 3*4096))
	if err := fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() != free0 {
		t.Fatal("remove leaked blocks")
	}
	if _, err := fs.ReadFile("f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := fs.Remove("f"); !errors.Is(err, ErrNotFound) {
		t.Fatal("double remove should fail")
	}
}

func TestCreateDuplicate(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Create("x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("x"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestNameValidation(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Create(""); !errors.Is(err, ErrNameTooLong) {
		t.Fatal("empty name accepted")
	}
	if err := fs.Create(strings.Repeat("n", maxName+1)); !errors.Is(err, ErrNameTooLong) {
		t.Fatal("overlong name accepted")
	}
	if err := fs.Create(strings.Repeat("n", maxName)); err != nil {
		t.Fatal("max-length name rejected")
	}
}

func TestListSorted(t *testing.T) {
	fs, _ := newFS(t)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := fs.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("list = %v", got)
	}
}

func TestReadAt(t *testing.T) {
	fs, _ := newFS(t)
	fs.WriteFile("f", []byte("abcdefghij"))
	got, err := fs.ReadAt("f", 3, 4)
	if err != nil || string(got) != "defg" {
		t.Fatalf("ReadAt = %q, %v", got, err)
	}
	// Short read at the tail.
	got, err = fs.ReadAt("f", 8, 10)
	if err != nil || string(got) != "ij" {
		t.Fatalf("tail ReadAt = %q, %v", got, err)
	}
	if _, err := fs.ReadAt("f", 11, 1); !errors.Is(err, ErrBadOffset) {
		t.Fatal("offset past EOF accepted")
	}
}

func TestMountRoundTrip(t *testing.T) {
	fs, dev := newFS(t)
	fs.WriteFile("persist", []byte("across mounts"))
	fs.WriteFile("other", bytes.Repeat([]byte("x"), 8000))

	fs2, err := Mount(dev, 4096)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile("persist")
	if err != nil || string(got) != "across mounts" {
		t.Fatalf("after remount: %q, %v", got, err)
	}
	if len(fs2.List()) != 2 {
		t.Fatalf("list after remount = %v", fs2.List())
	}
	if fs2.FreeBlocks() != fs.FreeBlocks() {
		t.Fatal("bitmap not persisted")
	}
}

func TestMountUnformatted(t *testing.T) {
	dev := newMemDev(4096)
	if _, err := Mount(dev, 4096); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("err = %v, want ErrNotFormatted", err)
	}
}

func TestMountWrongBlockSize(t *testing.T) {
	_, dev := newFS(t)
	if _, err := Mount(dev, 4096); err != nil {
		t.Fatal(err)
	}
	dev.blockSize = 8192
	if _, err := Mount(dev, 8192); err == nil {
		t.Fatal("mismatched block size accepted")
	}
}

func TestDeviceFailurePropagates(t *testing.T) {
	fs, dev := newFS(t)
	dev.failAfter = dev.ops + 1
	if err := fs.WriteFile("f", make([]byte, 8192)); err == nil {
		t.Fatal("device failure swallowed")
	}
}

func TestExhaustion(t *testing.T) {
	dev := newMemDev(4096)
	fs, err := Mkfs(dev, 4096, firstDataBlk+4) // only 4 data blocks
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("a", make([]byte, 4*4096)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("b", []byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestQuickWriteReadIdentity(t *testing.T) {
	fs, _ := newFS(t)
	i := 0
	f := func(data []byte) bool {
		if uint64(len(data)) > fs.MaxFileSize() {
			data = data[:fs.MaxFileSize()]
		}
		name := fmt.Sprintf("q%d", i%8)
		i++
		if err := fs.WriteFile(name, data); err != nil {
			return false
		}
		got, err := fs.ReadFile(name)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBlockConservation(t *testing.T) {
	// Alternating writes and removes never leak or double-free blocks.
	fs, _ := newFS(t)
	free0 := fs.FreeBlocks()
	f := func(sizes []uint16) bool {
		for i, sz := range sizes {
			name := fmt.Sprintf("c%d", i%4)
			data := make([]byte, uint64(sz)%fs.MaxFileSize())
			if err := fs.WriteFile(name, data); err != nil {
				return false
			}
			if i%3 == 0 {
				if err := fs.Remove(name); err != nil {
					return false
				}
			}
		}
		for _, n := range fs.List() {
			if err := fs.Remove(n); err != nil {
				return false
			}
		}
		return fs.FreeBlocks() == free0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteFailureKeepsOldContents pins the copy-on-write contract: a
// device error mid-rewrite must leave the old contents readable, the free
// count unchanged and the bitmap consistent with the inode table.
func TestWriteFailureKeepsOldContents(t *testing.T) {
	fs, dev := newFS(t)
	old := bytes.Repeat([]byte{'a'}, 2*4096)
	if err := fs.WriteFile("f", old); err != nil {
		t.Fatal(err)
	}
	free0 := fs.FreeBlocks()
	dev.failAfter = dev.ops + 1 // second write of the rewrite dies
	if err := fs.WriteFile("f", bytes.Repeat([]byte{'b'}, 3*4096)); err == nil {
		t.Fatal("device failure swallowed")
	}
	dev.failAfter = 0
	got, err := fs.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Errorf("old contents damaged: %d bytes tagged %q", len(got), got[:1])
	}
	if free := fs.FreeBlocks(); free != free0 {
		t.Errorf("free blocks %d after failed rewrite, want %d", free, free0)
	}
	if err := fs.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestNoSpaceRollsBackAllocation pins the other abort path of the same
// copy-on-write machinery: running out of blocks mid-write must release
// every fresh allocation and leave existing files untouched.
func TestNoSpaceRollsBackAllocation(t *testing.T) {
	dev := newMemDev(4096)
	fs, err := Mkfs(dev, 4096, firstDataBlk+6) // 6 data blocks
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{'a'}, 2*4096)
	if err := fs.WriteFile("f", old); err != nil {
		t.Fatal(err)
	}
	free0 := fs.FreeBlocks()
	// 5 blocks wanted, 4 free: the write dies after allocating some.
	if err := fs.WriteFile("b", make([]byte, 5*4096)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if free := fs.FreeBlocks(); free != free0 {
		t.Errorf("free blocks %d after rollback, want %d", free, free0)
	}
	if size, err := fs.Stat("b"); err != nil || size != 0 {
		t.Errorf("failed file: size %d, err %v, want empty", size, err)
	}
	got, err := fs.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Error("existing file damaged by the failed write")
	}
	if err := fs.CheckConsistency(); err != nil {
		t.Error(err)
	}
}
