package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// TestRunCellsOrderAndValues checks that results land at their cell's index
// no matter how the pool schedules them.
func TestRunCellsOrderAndValues(t *testing.T) {
	for _, parallel := range []int{1, 2, 8, 64} {
		r := NewRunner(parallel)
		out, err := runCells(r, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if len(out) != 100 {
			t.Fatalf("parallel=%d: got %d results", parallel, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

// TestRunCellsEmpty checks the degenerate case.
func TestRunCellsEmpty(t *testing.T) {
	out, err := runCells(NewRunner(4), 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("cell ran for n=0")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", out, err)
	}
}

// TestRunCellsFirstError checks that a failing cell aborts the run and that
// the reported error is a real cell error, with the serial runner picking
// the lowest failing index exactly.
func TestRunCellsFirstError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("cell %d exploded", i) }
	for _, parallel := range []int{1, 4} {
		r := NewRunner(parallel)
		_, err := runCells(r, 50, func(_ context.Context, i int) (int, error) {
			if i == 3 || i == 7 {
				return 0, boom(i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("parallel=%d: expected error", parallel)
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%d: cancellation masked the real error: %v", parallel, err)
		}
		if parallel == 1 && err.Error() != "cell 3 exploded" {
			t.Fatalf("serial: got %q, want the first failing cell", err)
		}
	}
}

// TestRunCellsErrorStopsLaterCells checks cancellation actually prunes
// work: with one worker, nothing after the failing cell may run.
func TestRunCellsErrorStopsLaterCells(t *testing.T) {
	var ran atomic.Int32
	_, err := runCells(SerialRunner(), 100, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 5 {
			return 0, errors.New("stop here")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 6 {
		t.Fatalf("ran %d cells, want 6 (0..5)", got)
	}
}

// TestRunCellsContextCancel checks an externally cancelled runner context
// surfaces as its error and stops scheduling cells.
func TestRunCellsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{Parallel: 4, Ctx: ctx}
	var ran atomic.Int32
	_, err := runCells(r, 1000, func(_ context.Context, i int) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("cancellation did not prune work: all %d cells ran", got)
	}
}

// TestRunFlatConcatenatesInOrder checks the flattening helper preserves
// group order.
func TestRunFlatConcatenatesInOrder(t *testing.T) {
	out, err := runFlat(NewRunner(8), 10, func(_ context.Context, i int) ([]int, error) {
		return []int{i * 10, i*10 + 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("got %d rows, want 20", len(out))
	}
	for i, v := range out {
		want := (i/2)*10 + i%2
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

// TestSerialParallelIdentical is the determinism guard the parallel engine
// must honour: every cell boots its own machine and seeds its own simrand
// streams, so a serial run and a -parallel 4 run of the same experiment
// must produce deeply equal tables. E1 (parameter sweep) and E7 (multi-row
// block cells) are the representative shapes; E8 adds a cross-cell derived
// column (relative cost vs native).
func TestSerialParallelIdentical(t *testing.T) {
	serial, par := SerialRunner(), NewRunner(4)

	cfg := E1Config{Sizes: []int{64, 1500, 4096}, Packets: 30}
	s1, err := serial.E1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := par.E1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, p1) {
		t.Errorf("E1 diverges:\nserial:   %+v\nparallel: %+v", s1, p1)
	}

	s7, err := serial.E7(40)
	if err != nil {
		t.Fatal(err)
	}
	p7, err := par.E7(40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s7, p7) {
		t.Errorf("E7 diverges:\nserial:   %+v\nparallel: %+v", s7, p7)
	}

	s8, err := serial.E8(15)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := par.E8(15)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s8, p8) {
		t.Errorf("E8 diverges:\nserial:   %+v\nparallel: %+v", s8, p8)
	}

	// E11's cells pair two machines each and seed per-cell write streams;
	// the migration sweep must still be order-independent.
	cfg11 := E11Config{Frames: 48, DirtyRates: []int{0, 8}, Budgets: []int{0, 2}, Cutoff: 2}
	s11, err := serial.E11(cfg11)
	if err != nil {
		t.Fatal(err)
	}
	p11, err := par.E11(cfg11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s11, p11) {
		t.Errorf("E11 diverges:\nserial:   %+v\nparallel: %+v", s11, p11)
	}
}

// TestSerialParallelIdenticalAll renders every experiment table through
// RunAll on both a serial and a wide runner and compares the full reports
// byte for byte — the whole-harness version of the guard above.
func TestSerialParallelIdenticalAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice")
	}
	render := func(r *Runner) string {
		var buf strings.Builder
		if err := r.RunAll(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := render(SerialRunner())
	b := render(NewRunner(4))
	if a != b {
		t.Error("serial and parallel full reports differ")
	}
}
