package core

import (
	"context"
	"errors"
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/hw/dev"
	"vmmk/internal/mk"
	"vmmk/internal/mkos"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
	"vmmk/internal/vmmos"
)

// Config sizes and parameterises a platform boot.
type Config struct {
	Arch        *hw.Arch
	Frames      int  // physical memory in pages
	Guests      int  // guest OS instances (>= 1)
	CopyMode    bool // I/O delivery by copy instead of flip/grant
	FastPath    bool // enable the VMM trap-gate shortcut where legal
	DiskLatency hw.Cycles
	StoreBlocks uint64 // per-guest virtual disk size
	LogCap      int    // trace event-log capacity (0 = counters only)
	// NCPUs is the machine's processor count (default 1). With more than
	// one CPU the stacks spread their guests over the non-boot CPUs —
	// vCPU placement on the VMM side, thread affinity on the mk side —
	// while drivers stay on the boot CPU, so cross-CPU coordination
	// (IPIs, TLB shootdown) becomes visible. E1–E11 always run with one
	// CPU and are bit-for-bit unaffected.
	NCPUs int
	// Consolidated colocates the storage service with the driver domain
	// (Parallax inside Dom0; store server inside the disk driver's space)
	// — the "super-VM" structure §2.2 warns about. Default is decomposed.
	Consolidated bool

	// pool, when set, supplies (and on Close reclaims) the stack's machine.
	// Cells populate it from their worker's context via poolFrom; a nil
	// pool boots fresh, the pre-pool behaviour.
	pool *hw.MachinePool
}

// WithPool returns the config bound to the cell context's machine pool —
// the one line every stack-booting cell adds to join the reuse scheme.
func (c Config) WithPool(ctx context.Context) Config {
	c.pool = poolFrom(ctx)
	return c
}

// machine acquires the stack's machine, pooled or fresh.
func (c *Config) machine() *hw.Machine {
	return c.pool.Get(c.Arch, &hw.MachineConfig{Frames: c.Frames, IRQLines: 16, LogCap: c.LogCap, NCPUs: c.NCPUs})
}

// Defaults fills zero fields.
func (c *Config) defaults() {
	if c.Arch == nil {
		c.Arch = hw.X86()
	}
	if c.Frames == 0 {
		c.Frames = 4096
	}
	if c.Guests == 0 {
		c.Guests = 1
	}
	if c.DiskLatency == 0 {
		c.DiskLatency = 5000
	}
	if c.StoreBlocks == 0 {
		c.StoreBlocks = 256
	}
	if c.NCPUs == 0 {
		c.NCPUs = 1
	}
}

// guestCPU spreads guest i over the non-boot CPUs (1-based round-robin);
// on a uniprocessor everything stays on CPU 0.
func (c *Config) guestCPU(i int) int {
	if c.NCPUs <= 1 {
		return 0
	}
	return 1 + i%(c.NCPUs-1)
}

// ErrGuestIndex is returned for out-of-range guest references.
var ErrGuestIndex = errors.New("core: guest index out of range")

// Platform is one booted system under test.
type Platform interface {
	// Name identifies the platform ("vmm", "mk", "native").
	Name() string
	// M returns the underlying machine (clock, recorder, memory).
	M() *hw.Machine
	// Pump drives device events and interrupts to quiescence.
	Pump()
	// InjectPackets delivers n packets of the given size addressed to
	// guest dest into the NIC and processes them.
	InjectPackets(n, size, dest int)
	// DrainRx issues receive syscalls on guest dest until empty,
	// returning the number of packets the application consumed.
	DrainRx(dest int) int
	// SendPackets transmits n packets of the given size from guest from.
	SendPackets(n, size, from int) error
	// DoSyscall issues one system call on guest from.
	DoSyscall(from int, no uint32, arg uint64) error
	// StorageWrite / StorageRead exercise the guest's storage service.
	StorageWrite(from int, block uint64, data []byte) error
	StorageRead(from int, block uint64) ([]byte, error)
	// KillStorage crashes the shared storage service (Parallax / store
	// server); KillDriver crashes the driver domain / driver servers.
	KillStorage()
	KillDriver()
	// Alive reports component liveness for the blast-radius survey.
	Alive() []ComponentStatus
	// DriverSideCycles returns CPU attributed to the privileged I/O
	// machinery (Dom0 + monitor, or driver servers + kernel).
	DriverSideCycles() uint64
	// Close releases the stack's machine back to its pool. Cells call it
	// when the row is computed; the stack must not be used afterwards.
	Close()
}

// ComponentStatus is one row of a liveness survey.
type ComponentStatus struct {
	Name  string
	Alive bool
}

// ---------------------------------------------------------------------------
// VMM platform

// XenStack is the booted Xen-like system: hypervisor, Dom0 with physical
// drivers, N guests with net frontends, and a Parallax appliance backing
// every guest's storage.
type XenStack struct {
	Cfg  Config
	Mach *hw.Machine
	H    *vmm.Hypervisor
	DD   *vmmos.DriverDomain
	NIC  *dev.NIC
	Disk *dev.Disk
	PX   *vmmos.Parallax
	ST   *vmm.Store // control plane: domain and device registry

	Guests []*vmmos.GuestKernel
	Procs  []vmmos.PID
}

// NewXenStack boots the full VMM-side system.
func NewXenStack(cfg Config) (*XenStack, error) {
	cfg.defaults()
	m := cfg.machine()
	h, d0, err := vmm.New(m, 256)
	if err != nil {
		return nil, err
	}
	h.FastPathPolicy = cfg.FastPath
	nic := dev.NewNIC(m, dev.NICConfig{RxIRQ: 1, TxIRQ: 2, RingSize: 128})
	disk := dev.NewDisk(m, dev.DiskConfig{IRQ: 3, Latency: cfg.DiskLatency})
	dd, err := vmmos.NewDriverDomain(h, d0, nic, disk)
	if err != nil {
		return nil, err
	}
	if cfg.CopyMode {
		dd.Mode = vmmos.RxCopy
	}
	var px *vmmos.Parallax
	if cfg.Consolidated {
		px, err = vmmos.NewParallaxOn(dd.GK, dd, cfg.StoreBlocks*uint64(cfg.Guests)+64)
	} else {
		var pxDom *vmm.Domain
		pxDom, err = h.CreateDomain("parallax", 128)
		if err != nil {
			return nil, err
		}
		px, err = vmmos.NewParallax(h, pxDom, dd, cfg.StoreBlocks*uint64(cfg.Guests)+64)
	}
	if err != nil {
		return nil, err
	}
	st := vmm.NewStore(h)
	s := &XenStack{Cfg: cfg, Mach: m, H: h, DD: dd, NIC: nic, Disk: disk, PX: px, ST: st}
	if err := st.Write(vmm.Dom0, "/vm/dom0/name", "driver domain"); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Guests; i++ {
		dU, err := h.CreateDomain(fmt.Sprintf("domU%d", i+1), 128)
		if err != nil {
			return nil, err
		}
		gk := vmmos.NewGuestKernel(h, dU)
		if err := st.Write(vmm.Dom0, fmt.Sprintf("/vm/%s/name", dU.Name), dU.Name); err != nil {
			return nil, err
		}
		if _, err := vmmos.ConnectNet(dd, gk); err != nil {
			return nil, err
		}
		if _, err := px.AttachClient(gk, cfg.StoreBlocks); err != nil {
			return nil, err
		}
		// The guest advertises its connected frontends, XenStore style.
		home := fmt.Sprintf("/local/domain/%d/", dU.ID)
		if err := st.Write(dU.ID, home+"device/vif/0/state", "connected"); err != nil {
			return nil, err
		}
		if err := st.Write(dU.ID, home+"device/vbd/0/state", "connected"); err != nil {
			return nil, err
		}
		// XenoLinux boot: truncated segments, fast path if the policy
		// allows.
		if cfg.Arch.HasSegmentation {
			for reg := hw.SegDS; reg <= hw.SegGS; reg++ {
				if err := h.LoadGuestSegment(dU.ID, reg, hw.Segment{Base: 0, Limit: vmm.VMMBase - 1, DPL: hw.Ring3}); err != nil {
					return nil, err
				}
			}
			if _, err := h.EnableFastPath(dU.ID); err != nil {
				return nil, err
			}
		}
		// On a multiprocessor the guest's vCPU lives on a non-boot pCPU
		// (Dom0 and Parallax stay on the boot CPU with the monitor), so
		// event deliveries to it pay IPIs and its shadow invalidations
		// shoot down its pCPU.
		if cfg.NCPUs > 1 {
			if err := gk.Place(cfg.guestCPU(i)); err != nil {
				return nil, err
			}
		}
		p := gk.Spawn("app")
		s.Guests = append(s.Guests, gk)
		s.Procs = append(s.Procs, p.PID)
	}
	return s, nil
}

// Name implements Platform.
func (s *XenStack) Name() string { return "vmm" }

// Close implements Platform: the machine goes back to the pool it came
// from (Reset), ready for the next cell. No-op when booted without a pool.
func (s *XenStack) Close() { s.Cfg.pool.Put(s.Mach) }

// M implements Platform.
func (s *XenStack) M() *hw.Machine { return s.Mach }

// Pump implements Platform.
func (s *XenStack) Pump() { s.H.PumpIO(256) }

// InjectPackets implements Platform.
func (s *XenStack) InjectPackets(n, size, dest int) {
	// One buffer for the whole burst: the NIC DMAs the bytes into a posted
	// frame on Inject, so the source can be reused.
	pkt := make([]byte, size)
	if size > 0 {
		pkt[0] = byte(dest)
	}
	for i := 0; i < n; i++ {
		s.NIC.Inject(pkt)
		s.Mach.IRQ.DispatchPending(s.H.Comp())
		s.Pump()
	}
}

// DrainRx implements Platform.
func (s *XenStack) DrainRx(dest int) int {
	if dest >= len(s.Guests) {
		return 0
	}
	gk := s.Guests[dest]
	n := 0
	for {
		ret, err := gk.Syscall(s.Procs[dest], vmmos.SysNetRecv)
		if err != nil || len(ret) == 0 || ret[0] == 0 || ret[0] == ^uint64(0) {
			break
		}
		n++
	}
	return n
}

// SendPackets implements Platform.
func (s *XenStack) SendPackets(n, size, from int) error {
	if from >= len(s.Guests) {
		return ErrGuestIndex
	}
	gk := s.Guests[from]
	for i := 0; i < n; i++ {
		ret, err := gk.Syscall(s.Procs[from], vmmos.SysNetSend, uint64(size))
		if err != nil {
			return err
		}
		if ret[0] == ^uint64(0) {
			return vmmos.ErrBackendDead
		}
		s.Pump()
	}
	return nil
}

// DoSyscall implements Platform.
func (s *XenStack) DoSyscall(from int, no uint32, arg uint64) error {
	if from >= len(s.Guests) {
		return ErrGuestIndex
	}
	_, err := s.Guests[from].Syscall(s.Procs[from], no, arg)
	return err
}

// StorageWrite implements Platform.
func (s *XenStack) StorageWrite(from int, block uint64, data []byte) error {
	if from >= len(s.Guests) {
		return ErrGuestIndex
	}
	return s.Guests[from].Blk.Write(block, data)
}

// StorageRead implements Platform.
func (s *XenStack) StorageRead(from int, block uint64) ([]byte, error) {
	if from >= len(s.Guests) {
		return nil, ErrGuestIndex
	}
	return s.Guests[from].Blk.Read(block)
}

// KillStorage implements Platform: crash the Parallax appliance.
func (s *XenStack) KillStorage() { s.H.DestroyDomain(s.PX.GK.Dom.ID) }

// KillDriver implements Platform: crash Dom0.
func (s *XenStack) KillDriver() { s.H.DestroyDomain(vmm.Dom0) }

// Alive implements Platform.
func (s *XenStack) Alive() []ComponentStatus {
	out := []ComponentStatus{
		{"monitor", true}, // the monitor itself cannot die in this model
		{"driver(dom0)", s.H.Alive(vmm.Dom0)},
		{"storage(parallax)", s.H.Alive(s.PX.GK.Dom.ID)},
	}
	for i, gk := range s.Guests {
		out = append(out, ComponentStatus{fmt.Sprintf("guest%d", i+1), s.H.Alive(gk.Dom.ID)})
	}
	return out
}

// DriverSideCycles implements Platform: Dom0 plus the monitor, the
// "driver-domain burden" Cherkasova & Gardner measured.
func (s *XenStack) DriverSideCycles() uint64 {
	return s.Mach.Rec.Cycles("vmm.dom0") + s.Mach.Rec.Cycles(vmm.HypervisorComponent)
}

// ---------------------------------------------------------------------------
// Microkernel platform

// MKStack is the booted L4-like system: microkernel, user-level NIC and
// disk driver servers, a storage server, and N OS server instances.
type MKStack struct {
	Cfg   Config
	Mach  *hw.Machine
	K     *mk.Kernel
	NIC   *dev.NIC
	Disk  *dev.Disk
	Net   *mkos.NetDriver
	Blk   *mkos.BlkDriver
	Store *mkos.StoreServer

	OSes  []*mkos.OSServer
	Procs []mkos.PID
}

// NewMKStack boots the full microkernel-side system.
func NewMKStack(cfg Config) (*MKStack, error) {
	cfg.defaults()
	m := cfg.machine()
	k := mk.New(m)
	nic := dev.NewNIC(m, dev.NICConfig{RxIRQ: 1, TxIRQ: 2, RingSize: 128})
	disk := dev.NewDisk(m, dev.DiskConfig{IRQ: 3, Latency: cfg.DiskLatency})
	nd, err := mkos.NewNetDriver(k, nic)
	if err != nil {
		return nil, err
	}
	if cfg.CopyMode {
		nd.Mode = mkos.RxStringCopy
	}
	bd, err := mkos.NewBlkDriver(k, disk)
	if err != nil {
		return nil, err
	}
	var store *mkos.StoreServer
	if cfg.Consolidated {
		store, err = mkos.NewStoreServerIn(k, bd.Space, "srv.blk.store", nil)
	} else {
		store, err = mkos.NewStoreServer(k, nil)
	}
	if err != nil {
		return nil, err
	}
	store.SetPersistence(bd.NewBlkClient(store.Thread.ID, cfg.StoreBlocks*uint64(cfg.Guests)+64))
	s := &MKStack{Cfg: cfg, Mach: m, K: k, NIC: nic, Disk: disk, Net: nd, Blk: bd, Store: store}
	for i := 0; i < cfg.Guests; i++ {
		osrv, err := mkos.NewOSServer(k, fmt.Sprintf("linux%d", i+1))
		if err != nil {
			return nil, err
		}
		nd.Attach(osrv)
		store.Attach(osrv, cfg.StoreBlocks)
		// Mirror the VMM-side placement: each guest OS instance (server
		// thread plus its processes) homes on a non-boot CPU while the
		// driver and store servers keep the boot CPU, so guest⇄driver
		// IPC crosses CPUs and pays IPIs.
		if cfg.NCPUs > 1 {
			if err := osrv.Pin(cfg.guestCPU(i)); err != nil {
				return nil, err
			}
		}
		p, err := osrv.Spawn("app")
		if err != nil {
			return nil, err
		}
		s.OSes = append(s.OSes, osrv)
		s.Procs = append(s.Procs, p.PID)
	}
	return s, nil
}

// Name implements Platform.
func (s *MKStack) Name() string { return "mk" }

// Close implements Platform.
func (s *MKStack) Close() { s.Cfg.pool.Put(s.Mach) }

// M implements Platform.
func (s *MKStack) M() *hw.Machine { return s.Mach }

// Pump implements Platform.
func (s *MKStack) Pump() { s.K.PumpIO(256) }

// InjectPackets implements Platform.
func (s *MKStack) InjectPackets(n, size, dest int) {
	// One buffer for the whole burst: the NIC DMAs the bytes into a posted
	// frame on Inject, so the source can be reused.
	pkt := make([]byte, size)
	if size > 0 {
		pkt[0] = byte(dest)
	}
	for i := 0; i < n; i++ {
		s.NIC.Inject(pkt)
		s.Mach.IRQ.DispatchPending(s.K.Comp())
		s.Pump()
	}
}

// DrainRx implements Platform.
func (s *MKStack) DrainRx(dest int) int {
	if dest >= len(s.OSes) {
		return 0
	}
	osrv := s.OSes[dest]
	n := 0
	for {
		ret, err := osrv.Syscall(s.Procs[dest], mkos.SysNetRecv)
		if err != nil || len(ret) == 0 || ret[0] == 0 || ret[0] == ^uint64(0) {
			break
		}
		n++
	}
	return n
}

// SendPackets implements Platform.
func (s *MKStack) SendPackets(n, size, from int) error {
	if from >= len(s.OSes) {
		return ErrGuestIndex
	}
	for i := 0; i < n; i++ {
		ret, err := s.OSes[from].Syscall(s.Procs[from], mkos.SysNetSend, uint64(size))
		if err != nil {
			return err
		}
		if ret[0] == ^uint64(0) {
			return mk.ErrDeadPartner
		}
		s.Pump()
	}
	return nil
}

// DoSyscall implements Platform.
func (s *MKStack) DoSyscall(from int, no uint32, arg uint64) error {
	if from >= len(s.OSes) {
		return ErrGuestIndex
	}
	_, err := s.OSes[from].Syscall(s.Procs[from], no, arg)
	return err
}

// StorageWrite implements Platform.
func (s *MKStack) StorageWrite(from int, block uint64, data []byte) error {
	if from >= len(s.OSes) {
		return ErrGuestIndex
	}
	return s.OSes[from].Blk.Write(block, data)
}

// StorageRead implements Platform.
func (s *MKStack) StorageRead(from int, block uint64) ([]byte, error) {
	if from >= len(s.OSes) {
		return nil, ErrGuestIndex
	}
	return s.OSes[from].Blk.Read(block)
}

// KillStorage implements Platform: crash the storage server.
func (s *MKStack) KillStorage() { s.K.KillSpace(s.Store.Space) }

// KillDriver implements Platform: crash both driver servers (the moral
// equivalent of losing Dom0's driver payload).
func (s *MKStack) KillDriver() {
	s.K.KillSpace(s.Net.Space)
	s.K.KillSpace(s.Blk.Space)
}

// Alive implements Platform.
func (s *MKStack) Alive() []ComponentStatus {
	out := []ComponentStatus{
		{"monitor", true}, // the kernel, likewise, cannot die here
		{"driver(net)", s.K.Alive(s.Net.Thread.ID)},
		{"driver(blk)", s.K.Alive(s.Blk.Thread.ID)},
		{"storage(store)", s.K.Alive(s.Store.Thread.ID)},
	}
	for i, osrv := range s.OSes {
		out = append(out, ComponentStatus{fmt.Sprintf("guest%d", i+1), s.K.Alive(osrv.Thread.ID)})
	}
	return out
}

// DriverSideCycles implements Platform: the driver servers plus kernel-mode
// IPC machinery — the mk analogue of the Dom0+monitor burden.
func (s *MKStack) DriverSideCycles() uint64 {
	return s.Mach.Rec.Cycles("mk.srv.net") + s.Mach.Rec.Cycles("mk.srv.blk") + s.Mach.Rec.Cycles(mk.KernelComponent)
}

// ---------------------------------------------------------------------------
// Native baseline

// NativeStack is a monolithic-kernel baseline: syscalls are one trap, the
// driver runs in the kernel, storage is a kernel subsystem. It exists so
// the macro experiment (E8) can report both systems' overhead relative to
// an unvirtualised OS, as HHL+97 did for L4Linux.
type NativeStack struct {
	Cfg  Config
	Mach *hw.Machine
	NIC  *dev.NIC
	Disk *dev.Disk

	comp trace.Comp // NativeComponent, interned at boot

	rxQueue int
	store   map[uint64][]byte
	dead    bool
}

// NativeComponent is the baseline's attribution name.
const NativeComponent = "native.kernel"

// NewNativeStack boots the baseline.
func NewNativeStack(cfg Config) (*NativeStack, error) {
	cfg.defaults()
	m := cfg.machine()
	s := &NativeStack{Cfg: cfg, Mach: m, comp: m.Rec.Intern(NativeComponent), store: make(map[uint64][]byte)}
	s.NIC = dev.NewNIC(m, dev.NICConfig{RxIRQ: 1, TxIRQ: 2, RingSize: 128})
	s.Disk = dev.NewDisk(m, dev.DiskConfig{IRQ: 3, Latency: cfg.DiskLatency})
	m.IRQ.SetHandler(1, func(hw.IRQLine) {
		// In-kernel driver: reap and queue, no domain crossings.
		m.CPU.Charge(s.comp, trace.KIRQ, 0)
		for range s.NIC.ReapRx() {
			m.CPU.Work(s.comp, 400)
			s.rxQueue++
		}
		for s.NIC.PostedBuffers() < 32 {
			f, err := m.Mem.Alloc(NativeComponent)
			if err != nil {
				break
			}
			if !s.NIC.PostRxBuffer(f) {
				m.Mem.Free(f)
				break
			}
		}
	})
	m.IRQ.SetHandler(2, func(hw.IRQLine) { m.CPU.Work(s.comp, 150) })
	m.IRQ.SetHandler(3, func(hw.IRQLine) { m.CPU.Work(s.comp, 200) })
	for i := 0; i < 32; i++ {
		f, err := m.Mem.Alloc(NativeComponent)
		if err != nil {
			break
		}
		s.NIC.PostRxBuffer(f)
	}
	return s, nil
}

// Name implements Platform.
func (s *NativeStack) Name() string { return "native" }

// Close implements Platform.
func (s *NativeStack) Close() { s.Cfg.pool.Put(s.Mach) }

// M implements Platform.
func (s *NativeStack) M() *hw.Machine { return s.Mach }

// Pump implements Platform.
func (s *NativeStack) Pump() {
	for i := 0; i < 256; i++ {
		n := s.Mach.Events.RunUntilIdle(1024)
		n += s.Mach.IRQ.DispatchPending(s.comp)
		if n == 0 {
			break
		}
	}
}

// syscall charges the native syscall path: one trap, kernel work, return.
func (s *NativeStack) syscall(work hw.Cycles) {
	s.Mach.CPU.SetRing(hw.Ring3)
	s.Mach.CPU.Trap(s.comp, s.Mach.Arch.HasFastSyscall)
	s.Mach.CPU.Work(s.comp, 150+work)
	s.Mach.CPU.ReturnTo(s.comp, hw.Ring3)
}

// InjectPackets implements Platform.
func (s *NativeStack) InjectPackets(n, size, dest int) {
	// One buffer for the whole burst: the NIC DMAs the bytes into a posted
	// frame on Inject, so the source can be reused.
	pkt := make([]byte, size)
	if size > 0 {
		pkt[0] = byte(dest)
	}
	for i := 0; i < n; i++ {
		s.NIC.Inject(pkt)
		s.Mach.IRQ.DispatchPending(s.comp)
		s.Pump()
	}
}

// appCPU is the core the application runs on in the SMP model: the last
// one, as far from the boot CPU (which fields interrupts and runs the
// in-kernel driver) as the machine allows. 0 on a uniprocessor.
func (s *NativeStack) appCPU() int { return s.Mach.NCPUs() - 1 }

// DrainRx implements Platform. On a multiprocessor each delivered packet
// costs the reschedule IPI the driver core sends to wake the application
// core — the monolithic kernel pays for cross-CPU coordination too, just
// without any protection-domain crossing.
func (s *NativeStack) DrainRx(int) int {
	n := s.rxQueue
	if n == 0 {
		return 0
	}
	s.rxQueue = 0
	// The whole backlog drains as one batched charge sequence — per
	// packet it is exactly syscall(100) plus the reschedule IPI, so the
	// aggregate counters and clock match the packet-at-a-time loop.
	s.Mach.CPU.SetRing(hw.Ring3)
	s.Mach.CPU.TrapReturnN(s.comp, s.Mach.Arch.HasFastSyscall, hw.Ring3, uint64(n))
	s.Mach.CPU.WorkN(s.comp, 250, uint64(n))
	if app := s.appCPU(); app != 0 {
		s.Mach.SendIPIN(0, app, uint64(n))
	}
	return n
}

// SendPackets implements Platform.
func (s *NativeStack) SendPackets(n, size, from int) error {
	if s.dead {
		return errors.New("core: native kernel dead")
	}
	for i := 0; i < n; i++ {
		s.syscall(300 + s.Mach.CPU.CopyCost(uint64(size)))
		f, err := s.Mach.Mem.Alloc(NativeComponent)
		if err != nil {
			return err
		}
		s.NIC.Transmit(f, size)
		s.Mach.Mem.Free(f)
		s.Pump()
	}
	return nil
}

// DoSyscall implements Platform.
func (s *NativeStack) DoSyscall(from int, no uint32, arg uint64) error {
	if s.dead {
		return errors.New("core: native kernel dead")
	}
	s.syscall(150)
	return nil
}

// smpUnmapBuffer models tearing down a transient kernel mapping on a
// multiprocessor: the unmapping core must shoot the stale translation out
// of every other core's TLB before the frame can be reused. Free on a
// uniprocessor.
func (s *NativeStack) smpUnmapBuffer(f hw.FrameID) {
	n := s.Mach.NCPUs()
	if n <= 1 {
		return
	}
	targets := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		targets = append(targets, i)
	}
	s.Mach.ShootdownEntry(0, targets, 0, hw.VPN(f))
}

// StorageWrite implements Platform: an in-kernel filesystem write.
func (s *NativeStack) StorageWrite(from int, block uint64, data []byte) error {
	if s.dead {
		return errors.New("core: native kernel dead")
	}
	s.syscall(500 + s.Mach.CPU.CopyCost(s.Mach.Mem.PageSize()))
	f, err := s.Mach.Mem.Alloc(NativeComponent)
	if err != nil {
		return err
	}
	defer s.Mach.Mem.Free(f)
	defer s.smpUnmapBuffer(f)
	buf := s.Mach.Mem.Data(f)
	copy(buf, data)
	s.Disk.Submit(dev.DiskReq{Op: dev.DiskWrite, Block: block, Frame: f})
	s.Pump()
	s.store[block] = append([]byte(nil), data...)
	return nil
}

// StorageRead implements Platform.
func (s *NativeStack) StorageRead(from int, block uint64) ([]byte, error) {
	if s.dead {
		return nil, errors.New("core: native kernel dead")
	}
	s.syscall(500 + s.Mach.CPU.CopyCost(s.Mach.Mem.PageSize()))
	f, err := s.Mach.Mem.Alloc(NativeComponent)
	if err != nil {
		return nil, err
	}
	defer s.Mach.Mem.Free(f)
	defer s.smpUnmapBuffer(f)
	s.Disk.Submit(dev.DiskReq{Op: dev.DiskRead, Block: block, Frame: f})
	s.Pump()
	out := make([]byte, s.Mach.Mem.PageSize())
	copy(out, s.store[block])
	return out, nil
}

// KillStorage implements Platform: in a monolithic kernel the filesystem IS
// the kernel — its failure takes everything, the paper's structural point.
func (s *NativeStack) KillStorage() { s.dead = true }

// KillDriver implements Platform: likewise fatal.
func (s *NativeStack) KillDriver() { s.dead = true }

// Alive implements Platform.
func (s *NativeStack) Alive() []ComponentStatus {
	a := !s.dead
	return []ComponentStatus{
		{"monitor", a}, {"driver(in-kernel)", a}, {"storage(in-kernel)", a}, {"guest1", a},
	}
}

// DriverSideCycles implements Platform.
func (s *NativeStack) DriverSideCycles() uint64 { return s.Mach.Rec.Cycles(NativeComponent) }

// Interface conformance.
var (
	_ Platform = (*XenStack)(nil)
	_ Platform = (*MKStack)(nil)
	_ Platform = (*NativeStack)(nil)
)
