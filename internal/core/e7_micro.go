package core

import (
	"context"

	"vmmk/internal/hw"
	"vmmk/internal/mk"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
)

// E7 is the primitive microbenchmark table: the raw cycle cost of each
// kernel mechanism on identical hardware — the cost structure every
// argument in §2.2/§3.2 rests on. IPC round trips, hypercalls, event
// notifications, page flips, grant copies and world switches, measured
// directly.

func init() {
	Register(Spec{
		ID:     "e7",
		Title:  "primitive microbenchmarks",
		Params: []Param{paramSyscalls},
		Run: func(_ context.Context, r *Runner, p Params) (*Result, error) {
			rows, err := r.E7(p.Int("syscalls"))
			if err != nil {
				return nil, err
			}
			return NewResult(e7Table(rows)), nil
		},
	})
}

// E7Row is one primitive's cost.
type E7Row struct {
	Op     string
	System string
	Cycles uint64
}

// RunE7 measures each primitive n times on fresh stacks and reports the
// mean.
func RunE7(n int) ([]E7Row, error) { return DefaultRunner().E7(n) }

// E7 runs the three measurement blocks — microkernel, VMM and bare
// hardware — as independent cells, each on its own machine. Primitives
// within a block stay sequential because they share that block's stack.
func (r *Runner) E7(n int) ([]E7Row, error) {
	if n <= 0 {
		n = 100
	}
	mean := func(rows *[]E7Row) func(op, sys string, total hw.Cycles) {
		return func(op, sys string, total hw.Cycles) {
			*rows = append(*rows, E7Row{Op: op, System: sys, Cycles: uint64(total) / uint64(n)})
		}
	}

	// --- Microkernel primitives.
	mkCell := func(ctx context.Context) ([]E7Row, error) {
		var rows []E7Row
		add := mean(&rows)
		m, release := acquireMachine(ctx, hw.X86(), &e7MKMach)
		defer release()
		k := mk.New(m)
		cs, err := k.NewSpace("c", mk.NilThread)
		if err != nil {
			return nil, err
		}
		ss, err := k.NewSpace("s", mk.NilThread)
		if err != nil {
			return nil, err
		}
		client := k.NewThread(cs, "c", 1, nil)
		echo := k.NewThread(ss, "s", 2, func(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
			return msg, nil
		})

		t0 := m.Now()
		for i := 0; i < n; i++ {
			if _, err := k.Call(client.ID, echo.ID, mk.Msg{Words: []uint64{1}}); err != nil {
				return nil, err
			}
		}
		add("IPC call round trip (short)", "mk", m.Now()-t0)

		t0 = m.Now()
		for i := 0; i < n; i++ {
			if _, err := k.Call(client.ID, echo.ID, mk.Msg{Data: make([]byte, 1024)}); err != nil {
				return nil, err
			}
		}
		add("IPC call round trip (1KB string)", "mk", m.Now()-t0)

		t0 = m.Now()
		for i := 0; i < n; i++ {
			if err := k.Send(client.ID, echo.ID, mk.Msg{}); err != nil {
				return nil, err
			}
		}
		add("IPC one-way send", "mk", m.Now()-t0)

		// A separate absorbing server for map items (an echo would try to
		// map the received pages back from addresses it never had).
		as, err := k.NewSpace("absorb", mk.NilThread)
		if err != nil {
			return nil, err
		}
		absorb := k.NewThread(as, "absorb", 2, func(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
			return mk.Msg{}, nil
		})
		if _, err := k.AllocAndMap(cs, 0, n, hw.PermRW); err != nil {
			return nil, err
		}
		t0 = m.Now()
		for i := 0; i < n; i++ {
			_, err := k.Call(client.ID, absorb.ID, mk.Msg{
				Map: []mk.MapItem{{SrcVPN: hw.VPN(i), DstVPN: hw.VPN(0x1000 + i), Count: 1, Perms: hw.PermR}},
			})
			if err != nil {
				return nil, err
			}
		}
		add("IPC map transfer (1 page)", "mk", m.Now()-t0)
		return rows, nil
	}

	// --- VMM primitives.
	vmmCell := func(ctx context.Context) ([]E7Row, error) {
		var rows []E7Row
		add := mean(&rows)
		m, release := acquireMachine(ctx, hw.X86(), &e7VMMMach)
		defer release()
		h, d0, err := vmm.New(m, 300)
		if err != nil {
			return nil, err
		}
		dU, err := h.CreateDomain("u", 64)
		if err != nil {
			return nil, err
		}
		dU.SetHooks(vmm.GuestHooks{OnEvent: func(vmm.Port) {}, OnSyscall: func(uint32, []uint64) []uint64 { return nil }})

		t0 := m.Now()
		for i := 0; i < n; i++ {
			if err := h.Hypercall(dU.ID, "nop", 0); err != nil {
				return nil, err
			}
		}
		add("hypercall (nop)", "vmm", m.Now()-t0)

		p0, _, err := h.BindChannel(d0.ID, dU.ID)
		if err != nil {
			return nil, err
		}
		t0 = m.Now()
		for i := 0; i < n; i++ {
			if err := h.NotifyChannel(d0.ID, p0); err != nil {
				return nil, err
			}
		}
		add("event-channel notify + upcall", "vmm", m.Now()-t0)

		t0 = m.Now()
		for i := 0; i < n; i++ {
			ref, err := h.GrantAccess(d0.ID, d0.FrameAt(i), dU.ID, false)
			if err != nil {
				return nil, err
			}
			if _, err := h.GrantTransfer(dU.ID, d0.ID, ref); err != nil {
				return nil, err
			}
		}
		add("grant + page flip", "vmm", m.Now()-t0)

		ref, err := h.GrantAccess(d0.ID, d0.FrameAt(n+1), dU.ID, true)
		if err != nil {
			return nil, err
		}
		dst := dU.FrameAt(0)
		t0 = m.Now()
		for i := 0; i < n; i++ {
			if err := h.GrantCopy(dU.ID, d0.ID, ref, dst, 1024); err != nil {
				return nil, err
			}
		}
		add("grant copy (1KB)", "vmm", m.Now()-t0)

		t0 = m.Now()
		for i := 0; i < n; i++ {
			// Alternate hypercalls between domains to force world
			// switches.
			if err := h.Hypercall(d0.ID, "nop", 0); err != nil {
				return nil, err
			}
			if err := h.Hypercall(dU.ID, "nop", 0); err != nil {
				return nil, err
			}
		}
		add("world switch pair (2 domains)", "vmm", m.Now()-t0)

		t0 = m.Now()
		for i := 0; i < n; i++ {
			if _, err := h.GuestSyscall(dU.ID, 1, nil); err != nil {
				return nil, err
			}
		}
		add("guest syscall (bounced)", "vmm", m.Now()-t0)
		return rows, nil
	}

	// --- Shared hardware costs for context.
	hwCell := func(ctx context.Context) ([]E7Row, error) {
		var rows []E7Row
		add := mean(&rows)
		m, release := acquireMachine(ctx, hw.X86(), nil)
		defer release()
		hwc := m.Rec.Intern("hw")
		t0 := m.Now()
		// One aggregate for the whole batch: n sysenter-style entries (the
		// same entry hypercalls use) plus n exits, identical in total to
		// the per-iteration loop.
		m.CPU.SetRing(hw.Ring3)
		m.CPU.TrapReturnN(hwc, true, hw.Ring3, uint64(n))
		add("bare trap + return", "hw", m.Now()-t0)

		pts := []*hw.PageTable{hw.NewPageTable(1), hw.NewPageTable(2)}
		t0 = m.Now()
		for i := 0; i < n; i++ {
			m.CPU.SwitchSpace(hwc, pts[i%2])
		}
		add("address-space switch (untagged)", "hw", m.Now()-t0)
		return rows, nil
	}

	return runFuncs(r, []func(context.Context) ([]E7Row, error){mkCell, vmmCell, hwCell})
}

// Machine geometries for the E7 measurement blocks, hoisted so repeated
// runs land on stable machine-pool identities.
var (
	e7MKMach  = hw.MachineConfig{Frames: 512}
	e7VMMMach = hw.MachineConfig{Frames: 1024}
)

// e7Table builds the registry table.
func e7Table(rows []E7Row) *ResultTable {
	t := NewResultTable(
		"E7 — primitive microbenchmarks (mean cycles/op on the x86 model)",
		Col("operation", ""), Col("system", ""), Col("cycles", "cycles"),
	)
	for _, r := range rows {
		t.AddRow(r.Op, r.System, r.Cycles)
	}
	return t
}

// E7Table renders the microbenchmarks (compatibility wrapper over the
// registry's Result model).
func E7Table(rows []E7Row) *trace.Table { return e7Table(rows).Trace() }
