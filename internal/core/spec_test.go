package core

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestRegistryHasAllExperiments pins the registry's contents and natural
// ordering: all thirteen experiments, e2 before e10.
func TestRegistryHasAllExperiments(t *testing.T) {
	want := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13"}
	specs := Specs()
	if len(specs) != len(want) {
		t.Fatalf("registry holds %d experiments, want %d", len(specs), len(want))
	}
	for i, s := range specs {
		if s.ID != want[i] {
			t.Errorf("Specs()[%d] = %s, want %s", i, s.ID, want[i])
		}
		if s.Title == "" || s.Run == nil {
			t.Errorf("%s: degenerate spec", s.ID)
		}
		if _, ok := Lookup(s.ID); !ok {
			t.Errorf("Lookup(%s) missed a registered spec", s.ID)
		}
	}
	if _, ok := Lookup("e99"); ok {
		t.Error("Lookup invented an experiment")
	}
}

// TestSharedValidatorRejectsNonPositive is the core half of the validation
// property: every registered parameter's Validate — the one validator the
// CLI and Normalize share — rejects zero and negative values, and list
// parameters reject empty lists and out-of-bound entries.
func TestSharedValidatorRejectsNonPositive(t *testing.T) {
	checked := 0
	for _, s := range Specs() {
		for _, p := range s.Params {
			checked++
			switch p.Kind {
			case ParamIntList:
				for _, bad := range [][]int{{0}, {2, -4}, {}} {
					if err := p.Validate(bad); err == nil {
						t.Errorf("%s -%s: accepted %v", s.ID, p.Name, bad)
					} else if !strings.Contains(err.Error(), p.Name) || !strings.Contains(err.Error(), "usage") {
						t.Errorf("%s -%s: error %q is not a usage error naming the flag", s.ID, p.Name, err)
					}
				}
				if p.Max > 0 {
					if err := p.Validate([]int{p.Max + 1}); err == nil {
						t.Errorf("%s -%s: accepted %d above Max %d", s.ID, p.Name, p.Max+1, p.Max)
					}
				}
				if _, err := p.Parse("two"); err == nil {
					t.Errorf("%s -%s: parsed garbage", s.ID, p.Name)
				}
				if _, err := p.Parse(","); err == nil {
					t.Errorf("%s -%s: parsed an empty list", s.ID, p.Name)
				}
			default:
				for _, bad := range []int{0, -5} {
					if err := p.Validate(bad); err == nil {
						t.Errorf("%s -%s: accepted %d", s.ID, p.Name, bad)
					} else if !strings.Contains(err.Error(), p.Name) || !strings.Contains(err.Error(), "usage") {
						t.Errorf("%s -%s: error %q is not a usage error naming the flag", s.ID, p.Name, err)
					}
				}
			}
			if err := p.Validate(p.Default()); err != nil {
				t.Errorf("%s -%s: default rejected: %v", s.ID, p.Name, err)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no parameters registered — property test is vacuous")
	}
}

// TestSpecNormalize checks default filling, flag-text parsing, unknown-name
// rejection and that the input map is left alone.
func TestSpecNormalize(t *testing.T) {
	s, ok := Lookup("e11")
	if !ok {
		t.Fatal("e11 not registered")
	}
	np, err := s.Normalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(np, s.Defaults()) {
		t.Errorf("Normalize(nil) = %v, want the defaults %v", np, s.Defaults())
	}

	in := Params{"frames": "32"}
	np, err = s.Normalize(in)
	if err != nil {
		t.Fatal(err)
	}
	if np.Int("frames") != 32 {
		t.Errorf("string param not parsed: %v", np["frames"])
	}
	if np.Int("rounds") != 4 || np.Int("dirty") != 48 {
		t.Errorf("missing params not defaulted: %v", np)
	}
	if _, isStr := in["frames"].(string); !isStr {
		t.Error("Normalize mutated its input")
	}

	if _, err := s.Normalize(Params{"frames": 0}); err == nil {
		t.Error("zero value survived Normalize")
	}
	if _, err := s.Normalize(Params{"bogus": 1}); err == nil {
		t.Error("unknown parameter name accepted")
	}

	s12, _ := Lookup("e12")
	np, err = s12.Normalize(Params{"cpus": "1, 2"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(np.IntList("cpus"), []int{1, 2}) {
		t.Errorf("list param parsed to %v", np["cpus"])
	}
	shared := []int{1, 2}
	np, err = s12.Normalize(Params{"cpus": shared})
	if err != nil {
		t.Fatal(err)
	}
	np.IntList("cpus")[0] = 99
	if shared[0] != 1 {
		t.Error("Normalize aliased the caller's slice")
	}
}

// TestRunExperimentStampsResult checks the uniform entry point: the Result
// carries the spec's id and title and echoes the normalized params.
func TestRunExperimentStampsResult(t *testing.T) {
	res, err := SerialRunner().RunExperiment(context.Background(), "e3", Params{"syscalls": 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment != "e3" || res.Title == "" {
		t.Errorf("unstamped result: %q %q", res.Experiment, res.Title)
	}
	if res.Params.Int("syscalls") != 40 {
		t.Errorf("params not echoed: %v", res.Params)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) == 0 {
		t.Fatalf("degenerate tables: %+v", res.Tables)
	}
	if _, err := RunExperiment("e99", nil); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestRunExperimentHonorsContext: a pre-cancelled context must abort the
// run with context.Canceled instead of executing cells.
func TestRunExperimentHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewRunner(2).RunExperiment(ctx, "e1", Params{"packets": 10})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestRegistryTextMatchesLegacyBuilders: the registry's Result renderer and
// the kept compatibility wrappers (EnTable over the same rows) must agree
// byte for byte — the in-package half of the byte-identity guarantee the
// CLI golden files pin end to end.
func TestRegistryTextMatchesLegacyBuilders(t *testing.T) {
	r := SerialRunner()

	rows3, err := r.E3(40)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := r.RunExperiment(context.Background(), "e3", Params{"syscalls": 40})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res3.Text(), E3Table(rows3).String()+"\n"; got != want {
		t.Errorf("e3 registry text diverged from E3Table:\n%s\nvs\n%s", got, want)
	}
	if got, want := res3.CSV(), E3Table(rows3).CSV(); got != want {
		t.Errorf("e3 registry CSV diverged from E3Table:\n%s\nvs\n%s", got, want)
	}

	cfg := E12Config{CPUCounts: []int{1, 2}}
	rows12, err := r.E12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res12, err := r.RunExperiment(context.Background(), "e12", Params{"cpus": []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res12.Text(), E12Table(rows12).String()+"\n"; got != want {
		t.Errorf("e12 registry text diverged from E12Table:\n%s\nvs\n%s", got, want)
	}
}

// TestResultJSONRoundTrip is the acceptance check for the machine-readable
// encoding: params, units and rows survive encoding/json intact, and the
// encoding is stable across runs.
func TestResultJSONRoundTrip(t *testing.T) {
	run := func() []byte {
		res, err := SerialRunner().RunExperiment(context.Background(), "e3", Params{"syscalls": 40})
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatal("JSON encoding not stable across identical runs")
	}

	var doc struct {
		Experiment string         `json:"experiment"`
		Title      string         `json:"title"`
		Params     map[string]any `json:"params"`
		Tables     []struct {
			Title   string `json:"title"`
			Columns []struct {
				Name string `json:"name"`
				Unit string `json:"unit"`
			} `json:"columns"`
			Rows [][]any `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Experiment != "e3" {
		t.Errorf("experiment = %q", doc.Experiment)
	}
	if got, ok := doc.Params["syscalls"].(float64); !ok || got != 40 {
		t.Errorf("params did not round-trip: %v", doc.Params)
	}
	if len(doc.Tables) != 1 {
		t.Fatalf("tables = %d", len(doc.Tables))
	}
	tb := doc.Tables[0]
	if len(tb.Rows) != 4 {
		t.Errorf("rows = %d, want the four syscall configurations", len(tb.Rows))
	}
	units := map[string]string{}
	for _, c := range tb.Columns {
		units[c.Name] = c.Unit
	}
	if units["cycles/syscall"] != "cycles" {
		t.Errorf("units did not round-trip: %v", units)
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Errorf("row width %d != %d columns", len(row), len(tb.Columns))
		}
		if _, ok := row[1].(float64); !ok {
			t.Errorf("numeric cell decoded as %T — numbers must stay numbers", row[1])
		}
	}
}

// TestE11DefaultsIdenticalForCLIAndAPI pins the satellite fix: the dirty-
// rate/budget derivation (including the PeakDirty/6 clamp and the cutoff of
// 2) lives in E11Config normalization, so a zero-value config, E11Defaults
// and the CLI's default flags all describe the same sweep.
func TestE11DefaultsIdenticalForCLIAndAPI(t *testing.T) {
	d := E11Defaults()
	if !reflect.DeepEqual(d.DirtyRates, []int{0, 8, 48}) {
		t.Errorf("default dirty rates = %v", d.DirtyRates)
	}
	if !reflect.DeepEqual(d.Budgets, []int{0, 1, 4}) {
		t.Errorf("default budgets = %v", d.Budgets)
	}
	if d.Cutoff != 2 || d.Frames != 96 {
		t.Errorf("defaults = %+v", d)
	}
	// The clamp: a peak dirty rate below 6 still yields a positive middle
	// rate.
	c := E11Config{PeakDirty: 4}
	c.defaults()
	if !reflect.DeepEqual(c.DirtyRates, []int{0, 1, 4}) {
		t.Errorf("clamped dirty rates = %v", c.DirtyRates)
	}
	// A zero cutoff normalizes to the published 2 for API callers too,
	// while a negative cutoff stays expressible as "no cutoff at all".
	c2 := E11Config{Frames: 8, DirtyRates: []int{0}, Budgets: []int{0}}
	c2.defaults()
	if c2.Cutoff != 2 {
		t.Errorf("cutoff = %d, want 2", c2.Cutoff)
	}
	c3 := E11Config{Frames: 8, DirtyRates: []int{0}, Budgets: []int{0}, Cutoff: -1}
	c3.defaults()
	if c3.Cutoff != 0 {
		t.Errorf("negative cutoff normalized to %d, want 0 (no cutoff)", c3.Cutoff)
	}
}

// TestFlagParamsOnePerName: the generated CLI flag surface has exactly one
// entry per parameter name, and shared parameters (the -syscalls flag E3,
// E7 and E10 all declare) agree on their shape.
func TestFlagParamsOnePerName(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range FlagParams() {
		if seen[p.Name] {
			t.Errorf("parameter -%s appears twice in FlagParams", p.Name)
		}
		seen[p.Name] = true
	}
	for _, name := range []string{"packets", "syscalls", "guests", "requests", "frames", "rounds", "dirty", "cpus"} {
		if !seen[name] {
			t.Errorf("expected flag -%s missing from the generated surface", name)
		}
	}
}

// TestRegistryMarkdownListsEverySpec: the generated docs table names every
// experiment and every flag.
func TestRegistryMarkdownListsEverySpec(t *testing.T) {
	md := RegistryMarkdown()
	for _, s := range Specs() {
		if !strings.Contains(md, "| "+s.ID+" |") {
			t.Errorf("markdown missing %s", s.ID)
		}
	}
	for _, p := range FlagParams() {
		if !strings.Contains(md, "`-"+p.Name+"`") {
			t.Errorf("markdown missing -%s", p.Name)
		}
	}
}
