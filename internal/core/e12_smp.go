package core

import (
	"context"
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/mk"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
)

// E12 measures what E1–E11 deliberately hold at zero: the cost of cross-CPU
// coordination. The paper's comparison — per-domain vCPUs multiplexed by a
// VMM versus a global thread pool scheduled by a microkernel — only
// separates on multiprocessors, where the two structures pay differently
// for IPIs, TLB shootdowns and run-queue placement. Three workloads sweep
// core count on all three platform stacks:
//
//   - ipc-pingpong: a client on the boot CPU round-robins synchronous
//     round trips over one partner per core. Cross-CPU rendezvous pays
//     wake/reply IPIs (mk), an event-delivery kick (vmm) or reschedule
//     IPIs (native), so the SMP tax climbs with the fraction of partners
//     that live remotely: 0 at one core, (n-1)/n of ops at n.
//   - dirty-scan: pages of a multi-vCPU guest (vmm, via log-dirty arming),
//     a multi-threaded space (mk, via unmap) or a kernel buffer pool
//     (native) are invalidated while every core may cache translations —
//     each invalidation shoots down n-1 TLBs, so cost grows linearly.
//   - driver-io: the full stacks from E1/E8 with guests placed on non-boot
//     CPUs and drivers on the boot CPU; RX delivery and storage writes pay
//     whatever IPIs and shootdowns the structure implies.
//
// Every cell is deterministic (no PRNG; fixed write/visit patterns), so
// the table is byte-identical at any -parallel width, and every 1-CPU row
// shows zero IPIs and shootdowns — the regression guard that E1–E11's
// uniprocessor accounting is untouched.

func init() {
	Register(Spec{
		ID:    "e12",
		Title: "SMP scaling: IPIs and TLB shootdown vs cores",
		Params: []Param{{
			Name: "cpus", Kind: ParamIntList, DefaultList: []int{1, 2, 4, 8}, Max: MaxCPUs,
			Unit: "cores", Help: "comma-separated core counts for the E12 SMP sweep",
		}},
		Run: func(_ context.Context, r *Runner, p Params) (*Result, error) {
			cfg := E12Defaults()
			cfg.CPUCounts = p.IntList("cpus")
			rows, err := r.E12(cfg)
			if err != nil {
				return nil, err
			}
			return NewResult(e12Table(rows)), nil
		},
	})
}

// MaxCPUs bounds the E12 sweep; the simulation is exact, not sampled, so a
// four-digit core count is a typo, not an experiment.
const MaxCPUs = 64

// E12Config parameterises the SMP sweep.
type E12Config struct {
	CPUCounts []int // machine sizes to sweep (each >= 1)
	Ops       int   // ping-pong round trips per cell
	Pages     int   // dirty-scan pages per round (two rounds per cell)
	Packets   int   // driver-io RX packets per guest
}

// E12Defaults returns the published sweep.
func E12Defaults() E12Config {
	return E12Config{CPUCounts: []int{1, 2, 4, 8}, Ops: 240, Pages: 64, Packets: 24}
}

func (c *E12Config) defaults() {
	d := E12Defaults()
	if len(c.CPUCounts) == 0 {
		c.CPUCounts = d.CPUCounts
	}
	if c.Ops <= 0 {
		c.Ops = d.Ops
	}
	if c.Pages <= 0 {
		c.Pages = d.Pages
	}
	if c.Packets <= 0 {
		c.Packets = d.Packets
	}
}

// E12Row is one (workload, platform, core count) measurement.
type E12Row struct {
	Workload   string
	Platform   string
	CPUs       int
	Ops        int    // logical operations the workload performed
	IPIs       uint64 // inter-processor interrupts delivered
	Shootdowns uint64 // remote TLB invalidations performed
	SMPCyc     uint64 // cycles attributed to cpu<n>.ipi / cpu<n>.shootdown
	TotalCyc   uint64 // whole-machine virtual time consumed
}

// RunE12 runs the sweep on the default parallel runner.
func RunE12(cfg E12Config) ([]E12Row, error) { return DefaultRunner().E12(cfg) }

// E12 fans one cell out per (workload, platform, core count) triple. Rows
// group each (workload, platform) pair's cores-vs-cost curve contiguously.
func (r *Runner) E12(cfg E12Config) ([]E12Row, error) {
	cfg.defaults()
	type cellCfg struct {
		workload, platform string
		ncpus              int
	}
	var cells []cellCfg
	for _, w := range []string{"ipc-pingpong", "dirty-scan", "driver-io"} {
		for _, p := range []string{"vmm", "mk", "native"} {
			for _, n := range cfg.CPUCounts {
				cells = append(cells, cellCfg{w, p, n})
			}
		}
	}
	return runCells(r, len(cells), func(ctx context.Context, i int) (E12Row, error) {
		c := cells[i]
		if c.ncpus < 1 {
			return E12Row{}, fmt.Errorf("E12: core count must be positive (got %d)", c.ncpus)
		}
		switch c.workload {
		case "ipc-pingpong":
			switch c.platform {
			case "vmm":
				return e12PingPongVMM(ctx, c.ncpus, cfg.Ops)
			case "mk":
				return e12PingPongMK(ctx, c.ncpus, cfg.Ops)
			default:
				return e12PingPongNative(ctx, c.ncpus, cfg.Ops)
			}
		case "dirty-scan":
			switch c.platform {
			case "vmm":
				return e12DirtyScanVMM(ctx, c.ncpus, cfg.Pages)
			case "mk":
				return e12DirtyScanMK(ctx, c.ncpus, cfg.Pages)
			default:
				return e12DirtyScanNative(ctx, c.ncpus, cfg.Pages)
			}
		default:
			return e12DriverIO(ctx, c.platform, c.ncpus, cfg.Packets)
		}
	})
}

// Machine geometries for the E12 cells, hoisted to named package-level
// configurations (with the pages-derived ones as functions of their named
// headroom) so every cell of a workload/platform pair presents the same
// machine-pool identity and reuse actually hits. Only NCPUs varies per
// cell, applied by e12Mach.
var (
	e12PingPongMKMach  = hw.MachineConfig{Frames: 1024}
	e12PingPongVMMMach = hw.MachineConfig{Frames: 2048}
	e12NativeMach      = hw.MachineConfig{Frames: 256}
)

// e12ScanHeadroom is the frame slack the dirty-scan machines add over the
// swept page count (hypervisor/kernel metadata plus the mapped pool).
const e12ScanHeadroom = 512

func e12ScanVMMMach(pages int) hw.MachineConfig {
	return hw.MachineConfig{Frames: pages + e12ScanHeadroom}
}

func e12ScanMKMach(pages int) hw.MachineConfig {
	return hw.MachineConfig{Frames: 2*pages + e12ScanHeadroom}
}

// e12Mach binds a hoisted geometry to the cell's core count.
func e12Mach(base hw.MachineConfig, ncpus int) *hw.MachineConfig {
	base.NCPUs = ncpus
	return &base
}

// e12Row reduces a finished cell's machine to its row.
func e12Row(m *hw.Machine, workload, platform string, ncpus, ops int) E12Row {
	return E12Row{
		Workload:   workload,
		Platform:   platform,
		CPUs:       ncpus,
		Ops:        ops,
		IPIs:       m.Rec.Counts(trace.KIPI),
		Shootdowns: m.Rec.Counts(trace.KTLBShootdown),
		SMPCyc:     m.Rec.CyclesPrefix("cpu"),
		TotalCyc:   uint64(m.Now()),
	}
}

// e12PingPongMK: a client thread on the boot CPU calls one echo server per
// CPU, round-robin. Calls to servers homed on other CPUs pay the wake and
// reply IPIs the kernel's cross-CPU IPC path charges.
func e12PingPongMK(ctx context.Context, ncpus, ops int) (E12Row, error) {
	m, release := acquireMachine(ctx, hw.X86(), e12Mach(e12PingPongMKMach, ncpus))
	defer release()
	k := mk.New(m)
	cs, err := k.NewSpace("client", mk.NilThread)
	if err != nil {
		return E12Row{}, err
	}
	client := k.NewThread(cs, "client", 5, nil)
	servers := make([]*mk.Thread, ncpus)
	for c := 0; c < ncpus; c++ {
		ss, err := k.NewSpace(fmt.Sprintf("echo%d", c), mk.NilThread)
		if err != nil {
			return E12Row{}, err
		}
		comp := ss.Comp()
		t := k.NewThread(ss, ss.Name, 5, func(kk *mk.Kernel, _ mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
			kk.M.CPU.Work(comp, 50)
			return msg, nil
		})
		if c > 0 {
			if err := k.SetAffinity(t.ID, c); err != nil {
				return E12Row{}, err
			}
		}
		servers[c] = t
	}
	msg := mk.Msg{Label: 1, Words: []uint64{0xE12}}
	for j := 0; j < ops; j++ {
		if _, err := k.Call(client.ID, servers[j%ncpus].ID, msg); err != nil {
			return E12Row{}, err
		}
	}
	return e12Row(m, "ipc-pingpong", "mk", ncpus, ops), nil
}

// e12PingPongVMM: Dom0 notifies an event channel to one peer domain per
// CPU, round-robin. Delivery into a domain whose vCPU is placed on another
// pCPU pays the kick IPI.
func e12PingPongVMM(ctx context.Context, ncpus, ops int) (E12Row, error) {
	m, release := acquireMachine(ctx, hw.X86(), e12Mach(e12PingPongVMMMach, ncpus))
	defer release()
	h, _, err := vmm.New(m, 128)
	if err != nil {
		return E12Row{}, err
	}
	ports := make([]vmm.Port, ncpus)
	for c := 0; c < ncpus; c++ {
		d, err := h.CreateDomain(fmt.Sprintf("peer%d", c), 16)
		if err != nil {
			return E12Row{}, err
		}
		if c > 0 {
			if err := h.PlaceVCPUs(d.ID, c); err != nil {
				return E12Row{}, err
			}
		}
		px, _, err := h.BindChannel(vmm.Dom0, d.ID)
		if err != nil {
			return E12Row{}, err
		}
		ports[c] = px
	}
	for j := 0; j < ops; j++ {
		if err := h.NotifyChannel(vmm.Dom0, ports[j%ncpus]); err != nil {
			return E12Row{}, err
		}
	}
	return e12Row(m, "ipc-pingpong", "vmm", ncpus, ops), nil
}

// e12PingPongNative: a monolithic kernel's cross-core pipe ping-pong — one
// syscall per round trip plus, for a partner on another core, the
// reschedule IPI each direction. No protection-domain crossing, but the
// hardware coordination cost is the same order as the structured systems'.
func e12PingPongNative(ctx context.Context, ncpus, ops int) (E12Row, error) {
	m, release := acquireMachine(ctx, hw.X86(), e12Mach(e12NativeMach, ncpus))
	defer release()
	comp := m.Rec.Intern(NativeComponent)
	// The per-round-trip costs are uniform, so the whole run lands as
	// aggregates: ops trap/return pairs, ops quanta of pipe work, and per
	// remote partner the wake/reply IPI pairs its share of the round-robin
	// earns. Totals match the per-item loop exactly.
	m.CPU.SetRing(hw.Ring3)
	m.CPU.TrapReturnN(comp, m.Arch.HasFastSyscall, hw.Ring3, uint64(ops))
	m.CPU.WorkN(comp, 200, uint64(ops))
	for t := 1; t < ncpus; t++ {
		rounds := uint64(ops / ncpus)
		if t < ops%ncpus {
			rounds++
		}
		m.SendIPIN(0, t, rounds) // wake the partner's core
		m.SendIPIN(t, 0, rounds) // its reply wakes ours
	}
	return e12Row(m, "ipc-pingpong", "native", ncpus, ops), nil
}

// e12DirtyScanVMM: a guest with one vCPU per pCPU runs two log-dirty
// rounds over its pages. Each (re)arm write-protects the guest and must
// shoot the stale writable translations out of every pCPU hosting one of
// its vCPUs — Xen's log-dirty broadcast, growing linearly with placement.
func e12DirtyScanVMM(ctx context.Context, ncpus, pages int) (E12Row, error) {
	m, release := acquireMachine(ctx, hw.X86(), e12Mach(e12ScanVMMMach(pages), ncpus))
	defer release()
	h, _, err := vmm.New(m, 64)
	if err != nil {
		return E12Row{}, err
	}
	d, err := h.CreateDomain("smpguest", pages)
	if err != nil {
		return E12Row{}, err
	}
	if ncpus > 1 {
		place := make([]int, ncpus)
		for i := range place {
			place[i] = i
		}
		if err := h.PlaceVCPUs(d.ID, place...); err != nil {
			return E12Row{}, err
		}
	}
	dl, err := h.EnableDirtyLog(d.ID)
	if err != nil {
		return E12Row{}, err
	}
	for round := 0; round < 2; round++ {
		for p := 0; p < pages; p++ {
			if err := h.GuestMemWrite(d.ID, p, 0, []byte{byte(round)}); err != nil {
				return E12Row{}, err
			}
		}
		dl.Rearm()
	}
	return e12Row(m, "dirty-scan", "vmm", ncpus, 2*pages), nil
}

// e12DirtyScanMK: a space with one worker thread installed per CPU has
// pages mapped and unmapped under it, twice. Each unmap invalidates
// locally and shoots down every other CPU currently running the space.
func e12DirtyScanMK(ctx context.Context, ncpus, pages int) (E12Row, error) {
	m, release := acquireMachine(ctx, hw.X86(), e12Mach(e12ScanMKMach(pages), ncpus))
	defer release()
	k := mk.New(m)
	s, err := k.NewSpace("scan", mk.NilThread)
	if err != nil {
		return E12Row{}, err
	}
	for c := 0; c < ncpus; c++ {
		t := k.NewThread(s, fmt.Sprintf("scan.w%d", c), 5, nil)
		if c > 0 {
			if err := k.SetAffinity(t.ID, c); err != nil {
				return E12Row{}, err
			}
		}
	}
	for c := 0; c < ncpus; c++ {
		k.ScheduleOn(c) // install each CPU's worker so the space is live there
	}
	const base = hw.VPN(0x1000)
	for round := 0; round < 2; round++ {
		if _, err := k.AllocAndMap(s, base, pages, hw.PermRW); err != nil {
			return E12Row{}, err
		}
		for p := 0; p < pages; p++ {
			k.UnmapPage(s, base+hw.VPN(p))
		}
	}
	return e12Row(m, "dirty-scan", "mk", ncpus, 2*pages), nil
}

// e12DirtyScanNative: the monolithic baseline tears down a kernel buffer
// pool — per-page PTE update, local invalidation, and on SMP a
// single-entry shootdown broadcast to every other core.
func e12DirtyScanNative(ctx context.Context, ncpus, pages int) (E12Row, error) {
	m, release := acquireMachine(ctx, hw.X86(), e12Mach(e12NativeMach, ncpus))
	defer release()
	comp := m.Rec.Intern(NativeComponent)
	var targets []int
	for i := 1; i < ncpus; i++ {
		targets = append(targets, i)
	}
	const base = hw.VPN(0x1000)
	vpns := make([]hw.VPN, pages)
	for p := range vpns {
		vpns[p] = base + hw.VPN(p)
	}
	// A teardown round's per-page costs are uniform, so each round charges
	// as three aggregates — PTE updates, local invalidations, and the
	// remote shootdown broadcast — with the local TLB state still
	// invalidated entry by entry. Totals match the per-page loop exactly.
	for round := 0; round < 2; round++ {
		m.CPU.WorkN(comp, m.Arch.Costs.PTEUpdate, uint64(pages))
		for _, vpn := range vpns {
			m.CPU.TLB.FlushEntry(0, vpn)
		}
		m.CPU.WorkN(comp, m.Arch.Costs.TLBFlushEntry, uint64(pages))
		if len(targets) > 0 {
			m.ShootdownEntries(0, targets, 0, vpns)
		}
	}
	return e12Row(m, "dirty-scan", "native", ncpus, 2*pages), nil
}

// e12DriverIO: the full platform stacks under the E1-style I/O workload,
// with guests spread over non-boot CPUs (Config.NCPUs) and the drivers on
// the boot CPU: RX delivery, drain and storage writes pay whatever
// cross-CPU coordination each structure implies.
func e12DriverIO(ctx context.Context, platform string, ncpus, packets int) (E12Row, error) {
	cfg := Config{Guests: 2, NCPUs: ncpus}.WithPool(ctx)
	var (
		p   Platform
		err error
	)
	switch platform {
	case "vmm":
		p, err = NewXenStack(cfg)
	case "mk":
		p, err = NewMKStack(cfg)
	default:
		p, err = NewNativeStack(cfg)
	}
	if err != nil {
		return E12Row{}, err
	}
	defer p.Close()
	guests := cfg.Guests
	if platform == "native" {
		guests = 1
	}
	ops := 0
	for g := 0; g < guests; g++ {
		p.InjectPackets(packets, 256, g)
		ops += p.DrainRx(g)
		for b := 0; b < 4; b++ {
			if err := p.StorageWrite(g, uint64(b+1), []byte("e12-smp")); err != nil {
				return E12Row{}, err
			}
			ops++
		}
	}
	return e12Row(p.M(), "driver-io", platform, ncpus, ops), nil
}

// e12Table builds the registry table.
func e12Table(rows []E12Row) *ResultTable {
	t := NewResultTable(
		"E12 — SMP scaling: IPI and TLB-shootdown cost vs core count",
		Col("workload", ""), Col("platform", ""), Col("cpus", "cores"), Col("ops", "ops"),
		Col("IPIs", "interrupts"), Col("shootdowns", "invalidations"),
		Col("smp cyc", "cycles"), Col("total cyc", "cycles"),
	)
	for _, r := range rows {
		t.AddRow(r.Workload, r.Platform, r.CPUs, r.Ops, r.IPIs, r.Shootdowns, r.SMPCyc, r.TotalCyc)
	}
	return t
}

// E12Table renders the sweep (compatibility wrapper over the registry's
// Result model).
func E12Table(rows []E12Row) *trace.Table { return e12Table(rows).Trace() }
