package core

import (
	"context"
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/hw/dev"
	"vmmk/internal/mk"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
	"vmmk/internal/vmmos"
)

// E9 ablates the design decisions DESIGN.md calls out:
//
//  a. page flip vs grant copy for inter-domain I/O, across packet sizes —
//     the CG05 follow-up question ("would copying be cheaper?");
//  b. tagged vs untagged TLB (ASIDs) for IPC cost — the microkernel's
//     context-switch burden depends on the hardware the paper's era lacked
//     on x86;
//  c. trap-gate fast path on vs off for syscall cost;
//  d. consolidated "super-VM" (storage in Dom0) vs decomposed servers,
//     measured by blast radius — §2.2's single-point-of-failure warning.

func init() {
	Register(Spec{
		ID:    "e9",
		Title: "design-decision ablations",
		Run: func(_ context.Context, r *Runner, _ Params) (*Result, error) {
			rows, err := r.E9()
			if err != nil {
				return nil, err
			}
			return NewResult(e9Table(rows)), nil
		},
	})
}

// E9Row is one ablation measurement.
type E9Row struct {
	Ablation string
	Variant  string
	Metric   string
	Value    float64
}

// RunE9 runs all four ablations.
func RunE9() ([]E9Row, error) { return DefaultRunner().E9() }

// E9 runs every ablation variant as its own cell — each builds its own
// machine, so the whole table fans out at once.
func (r *Runner) E9() ([]E9Row, error) {
	var cells []func(context.Context) ([]E9Row, error)
	one := func(cell func(ctx context.Context) (E9Row, error)) {
		cells = append(cells, func(ctx context.Context) ([]E9Row, error) {
			row, err := cell(ctx)
			if err != nil {
				return nil, err
			}
			return []E9Row{row}, nil
		})
	}

	// (a) flip vs copy per packet size: driver-side cycles per packet.
	for _, size := range []int{64, 1500, 4096} {
		for _, copyMode := range []bool{false, true} {
			one(func(ctx context.Context) (E9Row, error) {
				s, err := NewXenStack(Config{CopyMode: copyMode}.WithPool(ctx))
				if err != nil {
					return E9Row{}, err
				}
				defer s.Close()
				d0 := s.DriverSideCycles()
				s.InjectPackets(50, size, 0)
				s.DrainRx(0)
				per := float64(s.DriverSideCycles()-d0) / 50
				variant := "flip"
				if copyMode {
					variant = "copy"
				}
				return E9Row{
					Ablation: "a: rx transport",
					Variant:  fmt.Sprintf("%s @%dB", variant, size),
					Metric:   "driver cyc/pkt",
					Value:    per,
				}, nil
			})
		}
	}

	// (b) ASID on/off for IPC round-trip cost. Take the x86 descriptor
	// and graft a tagged TLB onto it, holding everything else fixed.
	for _, tagged := range []bool{false, true} {
		one(func(ctx context.Context) (E9Row, error) {
			arch := hw.X86()
			arch.HasASID = tagged
			if tagged {
				arch.Costs.ASSwitch = 150 // no full flush needed
			}
			m, release := acquireMachine(ctx, arch, &hw.MachineConfig{Frames: 256})
			defer release()
			k := mk.New(m)
			cs, err := k.NewSpace("c", mk.NilThread)
			if err != nil {
				return E9Row{}, err
			}
			ss, err := k.NewSpace("s", mk.NilThread)
			if err != nil {
				return E9Row{}, err
			}
			cl := k.NewThread(cs, "c", 1, nil)
			srv := k.NewThread(ss, "s", 2, func(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
				return msg, nil
			})
			t0 := m.Now()
			for i := 0; i < 100; i++ {
				if _, err := k.Call(cl.ID, srv.ID, mk.Msg{}); err != nil {
					return E9Row{}, err
				}
			}
			variant := "untagged TLB"
			if tagged {
				variant = "ASID-tagged TLB"
			}
			return E9Row{
				Ablation: "b: TLB tagging",
				Variant:  variant,
				Metric:   "IPC RT cyc",
				Value:    float64(m.Now()-t0) / 100,
			}, nil
		})
	}

	// (c) fast path on/off: syscall cost.
	for _, fast := range []bool{true, false} {
		one(func(ctx context.Context) (E9Row, error) {
			s, err := NewXenStack(Config{FastPath: fast}.WithPool(ctx))
			if err != nil {
				return E9Row{}, err
			}
			defer s.Close()
			t0 := s.M().Now()
			for i := 0; i < 100; i++ {
				if err := s.DoSyscall(0, 1, 0); err != nil {
					return E9Row{}, err
				}
			}
			variant := "fast path on"
			if !fast {
				variant = "fast path off"
			}
			return E9Row{
				Ablation: "c: trap-gate shortcut",
				Variant:  variant,
				Metric:   "syscall cyc",
				Value:    float64(s.M().Now()-t0) / 100,
			}, nil
		})
	}

	// (d) consolidation: storage decomposed (separate Parallax domain) vs
	// colocated with the driver domain (the super-VM). In both variants
	// the *storage host* is killed; the metric is how many of the two
	// services (network, storage) still work afterwards.
	for _, consolidated := range []bool{false, true} {
		one(func(ctx context.Context) (E9Row, error) {
			s, err := NewXenStack(Config{Guests: 2, Consolidated: consolidated}.WithPool(ctx))
			if err != nil {
				return E9Row{}, err
			}
			defer s.Close()
			s.KillStorage()
			working := 0
			if s.SendPackets(1, 64, 0) == nil {
				working++
			}
			if s.StorageWrite(0, 1, []byte("x")) == nil {
				working++
			}
			variant := "decomposed servers"
			if consolidated {
				variant = "super-VM (storage in dom0)"
			}
			return E9Row{
				Ablation: "d: consolidation",
				Variant:  variant,
				Metric:   "services alive after storage-host crash",
				Value:    float64(working),
			}, nil
		})
	}

	// (e) cache footprint: the §2.2 minimality argument. The same IPC
	// ping-pong between client and server, with the cache model attached,
	// comparing a small-footprint server (fits beside the client) against
	// a large-footprint one (thrashes the cache on every switch).
	for _, fat := range []bool{false, true} {
		one(func(ctx context.Context) (E9Row, error) {
			m, release := acquireMachine(ctx, hw.X86(), &hw.MachineConfig{Frames: 256})
			defer release()
			cache := hw.NewCache(512, 10)
			serverLines := 120 // small server: both fit in 512
			if fat {
				serverLines = 512 // fat server: displaces the client entirely
			}
			k := mk.New(m)
			cs, err := k.NewSpace("c", mk.NilThread)
			if err != nil {
				return E9Row{}, err
			}
			ss, err := k.NewSpace("s", mk.NilThread)
			if err != nil {
				return E9Row{}, err
			}
			cache.SetFootprint(uint16(cs.ID), 120)
			cache.SetFootprint(uint16(ss.ID), serverLines)
			m.CPU.AttachCache(cache)
			cl := k.NewThread(cs, "c", 1, nil)
			srv := k.NewThread(ss, "s", 2, func(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
				return msg, nil
			})
			// Warm up once, then measure steady state.
			if _, err := k.Call(cl.ID, srv.ID, mk.Msg{}); err != nil {
				return E9Row{}, err
			}
			t0 := m.Now()
			for i := 0; i < 100; i++ {
				if _, err := k.Call(cl.ID, srv.ID, mk.Msg{}); err != nil {
					return E9Row{}, err
				}
			}
			variant := "small server (fits in cache)"
			if fat {
				variant = "fat server (thrashes cache)"
			}
			return E9Row{
				Ablation: "e: cache footprint",
				Variant:  variant,
				Metric:   "IPC RT cyc (steady state)",
				Value:    float64(m.Now()-t0) / 100,
			}, nil
		})
	}

	// (f) interrupt coalescing: batching RX interrupts amortises the
	// injection path — fewer KHardIRQInject entries per packet, lower
	// driver-side cost, at the price of delivery latency (not modelled
	// as a metric here; the count is the point).
	for _, batch := range []int{1, 8} {
		one(func(ctx context.Context) (E9Row, error) {
			m, release := acquireMachine(ctx, hw.X86(), &hw.MachineConfig{Frames: 2048, IRQLines: 16})
			defer release()
			h, d0, err := vmm.New(m, 128)
			if err != nil {
				return E9Row{}, err
			}
			nic := dev.NewNIC(m, dev.NICConfig{RxIRQ: 1, TxIRQ: 2, RingSize: 128, CoalesceRx: batch})
			disk := dev.NewDisk(m, dev.DiskConfig{IRQ: 3})
			dd, err := vmmos.NewDriverDomain(h, d0, nic, disk)
			if err != nil {
				return E9Row{}, err
			}
			dU, err := h.CreateDomain("u", 64)
			if err != nil {
				return E9Row{}, err
			}
			gk := vmmos.NewGuestKernel(h, dU)
			if _, err := vmmos.ConnectNet(dd, gk); err != nil {
				return E9Row{}, err
			}
			driver0 := m.Rec.Cycles("vmm.dom0") + m.Rec.Cycles(vmm.HypervisorComponent)
			const pkts = 64
			for i := 0; i < pkts; i++ {
				nic.Inject(make([]byte, 256))
				m.IRQ.DispatchPending(h.Comp())
				h.PumpIO(16)
			}
			nic.FlushRxIRQ()
			m.IRQ.DispatchPending(h.Comp())
			h.PumpIO(16)
			driver := m.Rec.Cycles("vmm.dom0") + m.Rec.Cycles(vmm.HypervisorComponent) - driver0
			return E9Row{
				Ablation: "f: irq coalescing",
				Variant:  fmt.Sprintf("batch=%d (irqs=%d)", batch, nic.RxIRQsRaised()),
				Metric:   "driver cyc/pkt",
				Value:    float64(driver) / pkts,
			}, nil
		})
	}

	// (g) pure vs paravirtualisation: the same guest page-table update
	// stream through trap-and-emulate shadow paging (unmodified guest)
	// and through the explicit MMU hypercall (paravirtual guest) — the
	// cost gap §2.2 says drove VMMs away from "faithful representation
	// of the underlying hardware".
	for _, shadowMode := range []bool{true, false} {
		one(func(ctx context.Context) (E9Row, error) {
			m, release := acquireMachine(ctx, hw.X86(), &hw.MachineConfig{Frames: 512})
			defer release()
			h, _, err := vmm.New(m, 64)
			if err != nil {
				return E9Row{}, err
			}
			dU, err := h.CreateDomain("u", 64)
			if err != nil {
				return E9Row{}, err
			}
			const updates = 60
			t0 := m.Clock.Now()
			if shadowMode {
				sh, err := h.EnableShadowMMU(dU.ID)
				if err != nil {
					return E9Row{}, err
				}
				t0 = m.Clock.Now()
				for i := 0; i < updates; i++ {
					if err := sh.GuestPTWrite(hw.VPN(0x900+i), i%32, hw.PermRW, true); err != nil {
						return E9Row{}, err
					}
				}
			} else {
				for i := 0; i < updates; i++ {
					if err := h.MMUUpdate(dU.ID, hw.VPN(0x900+i), i%32, hw.PermRW, true); err != nil {
						return E9Row{}, err
					}
				}
			}
			variant := "paravirtual hypercall"
			if shadowMode {
				variant = "shadow trap-and-emulate"
			}
			return E9Row{
				Ablation: "g: virtualisation style",
				Variant:  variant,
				Metric:   "PT update cyc",
				Value:    float64(m.Clock.Now()-t0) / updates,
			}, nil
		})
	}
	return runFuncs(r, cells)
}

// e9Table builds the registry table.
func e9Table(rows []E9Row) *ResultTable {
	t := NewResultTable(
		"E9 — ablations of the design decisions in DESIGN.md",
		Col("ablation", ""), Col("variant", ""), Col("metric", ""), Col("value", ""),
	)
	for _, r := range rows {
		t.AddRow(r.Ablation, r.Variant, r.Metric, r.Value)
	}
	return t
}

// E9Table renders the ablations (compatibility wrapper over the registry's
// Result model).
func E9Table(rows []E9Row) *trace.Table { return e9Table(rows).Trace() }
