package core

import (
	"bytes"
	"testing"
)

// TestExperimentsPooledVsFresh is the engine's no-cycle-leakage guarantee:
// every experiment must render byte-identical tables whether its cells run
// on freshly booted machines or on pooled machines Reset from earlier work.
//
// The baseline binds each experiment to its own brand-new Runner (empty
// pools — every machine is a fresh boot). The probe runs the whole registry
// twice on one persistent Runner: the first sweep warms its pools, so by
// the second sweep every pool-keyed machine a cell asks for is a recycled
// one. Any state Reset failed to clear — a leftover cycle, a dirty page, a
// stale TLB entry or queued event — shows up as a table diff.
func TestExperimentsPooledVsFresh(t *testing.T) {
	fresh := map[string]string{}
	for _, e := range SerialRunner().Experiments() {
		var buf bytes.Buffer
		if err := e.Run(&buf); err != nil {
			t.Fatalf("%s (fresh): %v", e.ID, err)
		}
		fresh[e.ID] = buf.String()
	}

	r := SerialRunner()
	for sweep := 1; sweep <= 2; sweep++ {
		for _, e := range r.Experiments() {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s (sweep %d): %v", e.ID, sweep, err)
			}
			if got := buf.String(); got != fresh[e.ID] {
				t.Errorf("%s: sweep %d on pooled machines diverged from fresh machines\nfresh:\n%s\npooled:\n%s",
					e.ID, sweep, fresh[e.ID], got)
			}
		}
	}

	// The probe must actually have exercised the pool: the serial runner
	// keeps one pool, and the second sweep's Gets should have hit it.
	r.poolMu.Lock()
	defer r.poolMu.Unlock()
	if len(r.pools) != 1 {
		t.Fatalf("serial runner holds %d pools, want 1", len(r.pools))
	}
	if hits, _ := r.pools[0].Stats(); hits == 0 {
		t.Error("two sweeps never reused a pooled machine — the differential test tested nothing")
	}
}
