package core

import (
	"context"
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/simrand"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
)

// E11 measures the downtime/bandwidth trade-off of live pre-copy migration
// — the management workload §3.3's "treat the OS as a component" argument
// culminates in. A guest with a controlled dirty rate is moved between two
// hypervisors once per cell: with a zero round budget the move is the
// stop-and-copy baseline (the guest freezes for the whole copy); with a
// positive budget vmm.MigrateLive streams pages while the guest keeps
// writing, paying re-sent pages to shrink the final blackout. The table
// reports downtime cycles, total pages transferred and rounds used per
// (dirty rate × round budget) cell.

func init() {
	Register(Spec{
		ID:    "e11",
		Title: "live pre-copy migration downtime",
		Params: []Param{
			{Name: "frames", Kind: ParamInt, DefaultInt: 96, Max: 1 << 20,
				Unit: "pages", Help: "guest memory pages for E11 migrations"},
			{Name: "rounds", Kind: ParamInt, DefaultInt: 4, Max: 64,
				Unit: "rounds", Help: "max pre-copy round budget for E11"},
			{Name: "dirty", Kind: ParamInt, DefaultInt: 48, Max: 1 << 20,
				Unit: "pages/round", Help: "peak dirty rate (pages/round) for E11"},
		},
		Run: func(_ context.Context, r *Runner, p Params) (*Result, error) {
			cfg := E11Config{
				Frames:    p.Int("frames"),
				MaxRounds: p.Int("rounds"),
				PeakDirty: p.Int("dirty"),
			}
			rows, err := r.E11(cfg)
			if err != nil {
				return nil, err
			}
			return NewResult(e11Table(rows)), nil
		},
	})
}

// E11Config parameterises the migration sweep. Zero fields are normalized
// by the same derivation everywhere, so the CLI and direct API callers get
// identical defaults.
type E11Config struct {
	Frames     int   // guest pseudo-physical memory in pages
	DirtyRates []int // pages the guest writes per pre-copy round
	Budgets    []int // pre-copy round budgets; 0 = stop-and-copy baseline
	// Cutoff is the writable-working-set cutoff for early convergence.
	// Zero means the published default of 2; pass a negative value for
	// "no cutoff" (pre-copy stops only when the dirty set is empty or
	// stops shrinking).
	Cutoff int
	// PeakDirty derives DirtyRates when that slice is empty: the sweep is
	// {0, max(1, PeakDirty/6), PeakDirty}. Zero means the published 48.
	PeakDirty int
	// MaxRounds derives Budgets when that slice is empty: the sweep is
	// {0, 1, MaxRounds}. Zero means the published 4.
	MaxRounds int
}

// E11Defaults returns the fully normalized default sweep — the same
// configuration `vmmklab e11` runs with default flags.
func E11Defaults() E11Config {
	var c E11Config
	c.defaults()
	return c
}

// defaults normalizes zero fields in place: the quiet/medium/peak dirty
// sweep is derived from PeakDirty (the medium rate is PeakDirty/6, clamped
// to at least one page), the budget sweep from MaxRounds, and a zero
// writable-working-set cutoff lands at the published 2 (negative Cutoff
// normalizes to 0: no early-convergence cutoff).
func (c *E11Config) defaults() {
	if c.Frames <= 0 {
		c.Frames = 96
	}
	if c.PeakDirty <= 0 {
		c.PeakDirty = 48
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 4
	}
	if len(c.DirtyRates) == 0 {
		low := c.PeakDirty / 6
		if low < 1 {
			low = 1
		}
		c.DirtyRates = []int{0, low, c.PeakDirty}
	}
	if len(c.Budgets) == 0 {
		c.Budgets = []int{0, 1, c.MaxRounds}
	}
	switch {
	case c.Cutoff == 0:
		c.Cutoff = 2
	case c.Cutoff < 0:
		c.Cutoff = 0
	}
}

// E11Row is one migration cell's measurement.
type E11Row struct {
	DirtyRate   int    // pages written per round
	Budget      int    // pre-copy round budget (0 = stop-and-copy)
	Mode        string // "stop&copy" or "pre-copy"
	Rounds      int    // rounds actually run
	PagesMoved  int    // total page transfers, re-sends included
	DowntimeCyc uint64 // guest-observable blackout, both machines
	TotalCyc    uint64 // whole-migration cycles, both machines
}

// RunE11 runs the sweep on the default parallel runner.
func RunE11(cfg E11Config) ([]E11Row, error) { return DefaultRunner().E11(cfg) }

// E11 fans one cell out per (dirty rate, round budget) pair. Every cell
// boots its own source and destination machines and seeds its own write
// stream, so the table is byte-identical at any -parallel width.
func (r *Runner) E11(cfg E11Config) ([]E11Row, error) {
	cfg.defaults()
	type cellCfg struct{ rate, budget int }
	var cells []cellCfg
	for _, rate := range cfg.DirtyRates {
		for _, budget := range cfg.Budgets {
			cells = append(cells, cellCfg{rate, budget})
		}
	}
	return runCells(r, len(cells), func(ctx context.Context, i int) (E11Row, error) {
		c := cells[i]
		return e11Cell(ctx, cfg.Frames, c.rate, c.budget, cfg.Cutoff)
	})
}

// e11MachHeadroom is the frame slack each migration machine carries over
// the guest's pseudo-physical size (hypervisor metadata, shadow state).
// Hoisted to a named constant so the source and destination machines — and
// every cell of the sweep — present one machine-pool identity.
const e11MachHeadroom = 256

// e11Mach is the geometry both migration endpoints boot with.
func e11Mach(frames int) *hw.MachineConfig {
	return &hw.MachineConfig{Frames: frames + e11MachHeadroom}
}

// e11Cell boots a source stack with one guest and an empty destination
// hypervisor, then migrates the guest while it writes rate pages per round.
func e11Cell(ctx context.Context, frames, rate, budget, cutoff int) (E11Row, error) {
	srcM, releaseSrc := acquireMachine(ctx, hw.X86(), e11Mach(frames))
	defer releaseSrc()
	srcH, _, err := vmm.New(srcM, 64)
	if err != nil {
		return E11Row{}, err
	}
	dom, err := srcH.CreateDomain("mig", frames)
	if err != nil {
		return E11Row{}, err
	}
	// Deterministic page contents, plus a marker the cell verifies after
	// the move — the experiment doubles as an end-to-end correctness check.
	const marker = "e11-travels-whole"
	for gpn := 0; gpn < frames; gpn++ {
		srcM.Mem.Data(dom.FrameAt(gpn))[0] = byte(gpn)
	}
	copy(srcM.Mem.Data(dom.FrameAt(frames - 1))[16:], marker)

	dstM, releaseDst := acquireMachine(ctx, hw.X86(), e11Mach(frames))
	defer releaseDst()
	dstH, _, err := vmm.New(dstM, 64)
	if err != nil {
		return E11Row{}, err
	}

	var (
		moved *vmm.Domain
		row   = E11Row{DirtyRate: rate, Budget: budget}
	)
	if budget == 0 {
		s0, d0 := srcM.Now(), dstM.Now()
		moved, err = vmm.Migrate(srcH, dom.ID, dstH)
		if err != nil {
			return E11Row{}, err
		}
		down := uint64(srcM.Now()-s0) + uint64(dstM.Now()-d0)
		row.Mode = "stop&copy"
		row.PagesMoved = frames
		row.DowntimeCyc = down
		row.TotalCyc = down // the whole copy is blackout
	} else {
		// The guest's concurrent activity: rate page writes per round,
		// drawn from a stream seeded by the cell's own parameters.
		rng := simrand.New(0xE11 ^ uint64(rate)<<20 ^ uint64(budget)<<8)
		var workErr error
		work := func(round int) {
			for i := 0; i < rate; i++ {
				gpn := int(rng.Uint64n(uint64(frames)))
				if err := srcH.GuestMemWrite(dom.ID, gpn, 1, []byte{byte(round)}); err != nil && workErr == nil {
					workErr = fmt.Errorf("E11 guest write: %w", err)
				}
			}
		}
		var stats *vmm.LiveStats
		moved, stats, err = vmm.MigrateLive(srcH, dom.ID, dstH, vmm.LiveOpts{
			MaxRounds: budget,
			WSSCutoff: cutoff,
			GuestWork: work,
		})
		if err != nil {
			return E11Row{}, err
		}
		if workErr != nil {
			return E11Row{}, workErr
		}
		row.Mode = "pre-copy"
		row.Rounds = stats.Rounds
		row.PagesMoved = stats.PagesMoved
		row.DowntimeCyc = uint64(stats.Downtime)
		row.TotalCyc = uint64(stats.Total)
	}
	got := dstM.Mem.Data(moved.FrameAt(frames - 1))[16 : 16+len(marker)]
	if string(got) != marker {
		return E11Row{}, fmt.Errorf("E11 rate=%d budget=%d: memory corrupted in flight: %q", rate, budget, got)
	}
	if err := dstH.Unpause(moved.ID); err != nil {
		return E11Row{}, err
	}
	if err := dstH.Hypercall(moved.ID, "probe", 10); err != nil {
		return E11Row{}, fmt.Errorf("E11 rate=%d budget=%d: migrated guest dead: %w", rate, budget, err)
	}
	return row, nil
}

// e11Table builds the registry table.
func e11Table(rows []E11Row) *ResultTable {
	t := NewResultTable(
		"E11 — live pre-copy migration: downtime vs pages moved (paper §3.3)",
		Col("dirty/rnd", "pages/round"), Col("budget", "rounds"), Col("mode", ""),
		Col("rounds", "rounds"), Col("pages moved", "pages"),
		Col("downtime cyc", "cycles"), Col("total cyc", "cycles"),
	)
	for _, r := range rows {
		t.AddRow(r.DirtyRate, r.Budget, r.Mode, r.Rounds, r.PagesMoved, r.DowntimeCyc, r.TotalCyc)
	}
	return t
}

// E11Table renders the sweep (compatibility wrapper over the registry's
// Result model).
func E11Table(rows []E11Row) *trace.Table { return e11Table(rows).Trace() }
