package core

import (
	"testing"

	"vmmk/internal/simrand"
	"vmmk/internal/trace"
)

// TestSoakBothStacks drives a long random mixed workload — including
// mid-run component crashes — through each stack and checks global
// invariants at every step: physical frames are conserved, the virtual
// clock is monotone, the kernel survives everything, and the cycle ledger
// only grows. This is the failure-injection soak that gives the blast-
// radius results their credibility.
func TestSoakBothStacks(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	for _, build := range []func() (Platform, error){
		func() (Platform, error) { return NewMKStack(Config{Guests: 2, Frames: 4096}) },
		func() (Platform, error) { return NewXenStack(Config{Guests: 2, Frames: 4096}) },
	} {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		t.Run(p.Name(), func(t *testing.T) {
			r := simrand.New(0xBADC0FFEE)
			m := p.M()
			totalFrames := m.Mem.TotalFrames()
			storageDead := false
			driverDead := false
			lastNow := m.Now()
			lastCycles := m.Rec.TotalCycles()

			for step := 0; step < 400; step++ {
				guest := r.Intn(2)
				switch r.Intn(8) {
				case 0, 1, 2: // syscalls are the common case
					if err := p.DoSyscall(guest, 1, uint64(step)); err != nil {
						t.Fatalf("step %d: syscall on live guest failed: %v", step, err)
					}
				case 3:
					p.InjectPackets(1+r.Intn(3), 64+r.Intn(1400), guest)
					p.DrainRx(guest)
				case 4:
					err := p.StorageWrite(guest, r.Uint64n(32), []byte("soak"))
					if err == nil && storageDead {
						t.Fatalf("step %d: write through dead storage", step)
					}
					if err != nil && !storageDead && !driverDead {
						t.Fatalf("step %d: healthy storage failed: %v", step, err)
					}
				case 5:
					_, err := p.StorageRead(guest, r.Uint64n(32))
					if err != nil && !storageDead && !driverDead {
						t.Fatalf("step %d: healthy storage read failed: %v", step, err)
					}
				case 6:
					err := p.SendPackets(1, 64+r.Intn(512), guest)
					if err != nil && !driverDead {
						t.Fatalf("step %d: healthy network failed: %v", step, err)
					}
				case 7:
					// Rare crash injection.
					if !storageDead && r.Bool(0.03) {
						p.KillStorage()
						storageDead = true
					} else if !driverDead && r.Bool(0.01) {
						p.KillDriver()
						driverDead = true
						// On the VMM, storage persists through Dom0's
						// blkback; its writes now fail too.
						if p.Name() == "vmm" {
							storageDead = true
						}
					}
				}

				// Invariants, every step.
				if m.Mem.TotalFrames() != totalFrames {
					t.Fatalf("step %d: frame count changed", step)
				}
				if m.Now() < lastNow {
					t.Fatalf("step %d: clock went backwards", step)
				}
				lastNow = m.Now()
				if c := m.Rec.TotalCycles(); c < lastCycles {
					t.Fatalf("step %d: cycle ledger shrank", step)
				} else {
					lastCycles = c
				}
				// The kernel itself is never a casualty.
				for _, cs := range p.Alive() {
					if cs.Name == "monitor" && !cs.Alive {
						t.Fatalf("step %d: the kernel died", step)
					}
				}
			}
			// After 400 adversarial steps the guests still compute.
			if err := p.DoSyscall(0, 1, 0); err != nil {
				t.Fatalf("guest dead after soak: %v", err)
			}
			if m.Rec.Counts(trace.KFault) == 0 && (storageDead || driverDead) {
				t.Fatal("crashes not recorded in the trace")
			}
		})
	}
}
