package core

import (
	"reflect"
	"strings"
	"testing"

	"vmmk/internal/trace"
)

// e12TestConfig is a trimmed sweep sized for the unit tests.
var e12TestConfig = E12Config{CPUCounts: []int{1, 2, 4}, Ops: 60, Pages: 16, Packets: 8}

// TestE12SerialParallelIdentical extends the engine determinism guard to
// the SMP sweep: the table must be deeply equal at any worker width.
func TestE12SerialParallelIdentical(t *testing.T) {
	s, err := SerialRunner().E12(e12TestConfig)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewRunner(4).E12(e12TestConfig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, p) {
		t.Errorf("E12 diverges:\nserial:   %+v\nparallel: %+v", s, p)
	}
}

// TestE12Shape pins what the acceptance criteria promise: every workload ×
// platform pair appears once per core count, 1-CPU rows carry zero SMP
// tax, and the tax grows with core count on the scaling workloads.
func TestE12Shape(t *testing.T) {
	rows, err := SerialRunner().E12(e12TestConfig)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 3 * 3 * len(e12TestConfig.CPUCounts)
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	type curve struct{ workload, platform string }
	tax := map[curve]map[int]uint64{}
	for _, r := range rows {
		if r.CPUs == 1 {
			if r.IPIs != 0 || r.Shootdowns != 0 || r.SMPCyc != 0 {
				t.Errorf("%s/%s on 1 CPU has SMP tax: %+v", r.Workload, r.Platform, r)
			}
		}
		c := curve{r.Workload, r.Platform}
		if tax[c] == nil {
			tax[c] = map[int]uint64{}
		}
		tax[c][r.CPUs] = r.SMPCyc
	}
	// The ping-pong and dirty-scan curves must strictly grow with cores on
	// every platform (driver-io saturates once every guest has its own CPU).
	for _, w := range []string{"ipc-pingpong", "dirty-scan"} {
		for _, p := range []string{"vmm", "mk", "native"} {
			c := tax[curve{w, p}]
			prev := uint64(0)
			for _, n := range e12TestConfig.CPUCounts {
				if n > 1 && c[n] <= prev {
					t.Errorf("%s/%s SMP tax not growing: %d CPUs -> %d (prev %d)", w, p, n, c[n], prev)
				}
				prev = c[n]
			}
		}
	}
}

// TestExplicitOneCPUMatchesDefault is the byte-level regression guard for
// E1–E11: booting any stack with NCPUs: 1 spelled out must produce exactly
// the recorder state the pre-SMP default produces, for an identical
// workload. (The experiments always boot with the default, so equality
// here means the SMP refactor cannot have moved their tables.)
func TestExplicitOneCPUMatchesDefault(t *testing.T) {
	exercise := func(cfg Config, boot func(Config) (Platform, error)) string {
		p, err := boot(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.InjectPackets(6, 256, 0)
		p.DrainRx(0)
		if err := p.StorageWrite(0, 1, []byte("one-cpu")); err != nil {
			t.Fatal(err)
		}
		if err := p.DoSyscall(0, 1, 0); err != nil {
			t.Fatal(err)
		}
		return p.M().Rec.Summary()
	}
	boots := map[string]func(Config) (Platform, error){
		"vmm":    func(c Config) (Platform, error) { return NewXenStack(c) },
		"mk":     func(c Config) (Platform, error) { return NewMKStack(c) },
		"native": func(c Config) (Platform, error) { return NewNativeStack(c) },
	}
	for name, boot := range boots {
		def := exercise(Config{}, boot)
		one := exercise(Config{NCPUs: 1}, boot)
		if def != one {
			t.Errorf("%s: NCPUs:1 diverges from the default boot:\ndefault:\n%s\nexplicit:\n%s",
				name, def, one)
		}
		if strings.Contains(def, "cpu0.ipi") || strings.Contains(def, "cpu0.shootdown") {
			t.Errorf("%s: uniprocessor summary mentions SMP components:\n%s", name, def)
		}
	}
}

// TestUniprocessorExperimentsCountNoSMPEvents runs a representative
// experiment (E2 boots both full stacks and replays five workloads) and
// checks the global counters never see an IPI or shootdown — the
// accounting-level proof that E1–E11 output is untouched by the SMP layer.
func TestUniprocessorExperimentsCountNoSMPEvents(t *testing.T) {
	rows, err := SerialRunner().E2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("E2 produced no rows")
	}
	// E2 cells boot their own machines; re-run one stack here to inspect
	// a recorder directly under the same workload shape.
	p, err := NewXenStack(Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.InjectPackets(10, 256, 0)
	p.DrainRx(0)
	rec := p.M().Rec
	if rec.Counts(trace.KIPI) != 0 || rec.Counts(trace.KTLBShootdown) != 0 {
		t.Fatal("uniprocessor experiment machine counted SMP events")
	}
}
