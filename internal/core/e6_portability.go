package core

import (
	"context"
	"strconv"
	"strings"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// E6 tests the portability claim of §2.2: "software that is written for an
// L4 microkernel naturally runs on nine different processor platforms",
// whereas "software developed for one VMM is inherently unportable across
// architectures" because the VMM interface is the architecture.
//
// Method: boot the identical mk personality (OS server, drivers, store) on
// all nine hw.Arch descriptors and run a probe workload — zero source
// changes, by construction, verified by it actually working. For the VMM
// side, count the raw-interface properties a guest must be rewritten
// against when moving from the x86 baseline to each architecture.

func init() {
	Register(Spec{
		ID:    "e6",
		Title: "nine-architecture portability",
		Run: func(_ context.Context, r *Runner, _ Params) (*Result, error) {
			rows, err := r.E6()
			if err != nil {
				return nil, err
			}
			return NewResult(e6Table(rows)), nil
		},
	})
}

// E6Row is one architecture's result.
type E6Row struct {
	Arch          string
	MKRuns        bool // identical component binary "runs"
	MKChanges     int  // source changes needed (always 0 if MKRuns)
	VMMDeltas     int  // raw-interface differences vs x86 guest
	VMMDeltaNames []string
}

// vmmInterfaceDeltas counts the guest-visible interface properties that
// differ between two architectures' "raw hardware" views — each one a
// porting work item for a paravirtualised guest.
func vmmInterfaceDeltas(base, a *hw.Arch) []string {
	var deltas []string
	if base.SyscallInstr != a.SyscallInstr {
		deltas = append(deltas, "trap mechanism ("+a.SyscallInstr+")")
	}
	if base.PTLevels != a.PTLevels {
		deltas = append(deltas, "paging interface ("+strconv.Itoa(a.PTLevels)+"-level)")
	}
	if base.HasSegmentation != a.HasSegmentation {
		deltas = append(deltas, "segmentation/protection model")
	}
	if base.PageShift != a.PageShift {
		deltas = append(deltas, "page size")
	}
	if base.WordBits != a.WordBits {
		deltas = append(deltas, "word width")
	}
	if base.BigEndian != a.BigEndian {
		deltas = append(deltas, "endianness")
	}
	if base.HasASID != a.HasASID {
		deltas = append(deltas, "TLB management")
	}
	return deltas
}

// RunE6 boots the mk stack on all nine architectures and computes VMM
// interface deltas against x86.
func RunE6() ([]E6Row, error) { return DefaultRunner().E6() }

// E6 boots each architecture in its own cell.
func (r *Runner) E6() ([]E6Row, error) {
	base := hw.X86()
	archs := hw.AllArchs()
	return runCells(r, len(archs), func(ctx context.Context, i int) (E6Row, error) {
		arch := archs[i]
		row := E6Row{Arch: arch.Name}
		s, err := NewMKStack(Config{Arch: arch}.WithPool(ctx))
		if err != nil {
			return E6Row{}, err
		}
		defer s.Close()
		// The probe: a syscall, a packet, a storage op — the whole
		// personality, unchanged.
		probeOK := s.DoSyscall(0, 1, 0) == nil
		s.InjectPackets(1, 128, 0)
		probeOK = probeOK && s.DrainRx(0) == 1
		probeOK = probeOK && s.StorageWrite(0, 0, []byte("p")) == nil
		row.MKRuns = probeOK
		if !probeOK {
			row.MKChanges = -1 // signals a model bug; tests assert it never happens
		}
		row.VMMDeltaNames = vmmInterfaceDeltas(base, arch)
		row.VMMDeltas = len(row.VMMDeltaNames)
		return row, nil
	})
}

// e6Table builds the registry table.
func e6Table(rows []E6Row) *ResultTable {
	t := NewResultTable(
		"E6 — portability: identical mk personality across 9 architectures vs VMM interface deltas (paper §2.2)",
		Col("arch", ""), Col("mk component", ""), Col("changes", "changes"),
		Col("vmm port items", "items"), Col("which", ""),
	)
	for _, r := range rows {
		status := "runs unchanged"
		if !r.MKRuns {
			status = "FAILED"
		}
		t.AddRow(r.Arch, status, r.MKChanges, r.VMMDeltas, strings.Join(r.VMMDeltaNames, ", "))
	}
	return t
}

// E6Table renders the rows (compatibility wrapper over the registry's
// Result model).
func E6Table(rows []E6Row) *trace.Table { return e6Table(rows).Trace() }
