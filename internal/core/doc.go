// Package core is the comparison framework — the reproduction's actual
// contribution, standing in for the "systematic and objective examination
// of the similarities and differences of microkernels and VMMs" the paper
// calls for. It boots the two complete stacks (vmm+vmmos as XenStack,
// mk+mkos as MKStack) and a monolithic native baseline on identical
// simulated hardware (package hw), replays identical workloads, and
// reduces the traces (package trace) to the quantities the debate argues
// about: boundary-crossing counts, per-component CPU attribution, failure
// blast radii, primitive censuses, portability deltas, migration downtime
// and — on multiprocessors — IPI and TLB-shootdown burden.
//
// The experiments are E1–E12, one file each (e1_dom0.go … e12_smp.go),
// documented in EXPERIMENTS.md. Each file declares a Spec — id, title,
// typed parameters — and self-registers at init into the declarative
// registry (spec.go); the CLI's flags and validation, the `list` output,
// the `all` sweep and the benchmarks are all generated from Specs(). Every
// experiment implements the uniform entry point
// Run(ctx, *Runner, Params) (*Result, error); Result (result.go) is the
// single typed result model — column schema with units, rows, echoed
// params — rendering as aligned text, CSV and stable JSON. Each experiment
// decomposes into independent cells — one freshly booted Platform or
// hw.Machine per (platform, parameter-point) pair — executed by the
// parallel engine in runner.go: results land at their cell's index and
// every random stream is seeded inside the cell that consumes it, so any
// worker count yields byte-identical tables.
//
// E1–E11 always boot 1-CPU machines. Config.NCPUs sizes the machine for
// E12's SMP sweep: guests spread over non-boot CPUs (vCPU placement on the
// VMM side, thread affinity on the mk side) while drivers stay on the boot
// CPU with the monitor/kernel.
package core
