package core

import (
	"reflect"
	"testing"
)

// e13SmallConfig is the trimmed sweep the differential tests run.
func e13SmallConfig() E13Config {
	return E13Config{Fleets: []int{2, 3}, Churns: []int{32}, HostFrames: 160}
}

// TestE13SerialMatchesParallel is the fleet sweep's determinism
// differential: one worker and many workers must produce identical rows,
// even though the parallel run slices the fleet boots across per-worker
// machine pools.
func TestE13SerialMatchesParallel(t *testing.T) {
	serial, err := SerialRunner().E13(e13SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(8).E13(e13SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and parallel E13 rows differ:\n%+v\nvs\n%+v", serial, parallel)
	}
}

// TestE13RowsShaped sanity-checks the sweep's content: every (fleet,
// churn, policy) cell present, churn placing guests, and the consolidation
// column distinguishing the two policies somewhere in the sweep.
func TestE13RowsShaped(t *testing.T) {
	cfg := E13Defaults()
	rows, err := SerialRunner().E13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.Fleets) * len(cfg.Churns) * 2
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	consol := map[string]float64{}
	for _, r := range rows {
		if r.Placed == 0 {
			t.Fatalf("cell %+v placed nothing", r)
		}
		consol[r.Policy] += r.ConsolPct
	}
	if consol["binpack"] <= consol["spread"] {
		t.Fatalf("binpack did not consolidate more than spread: %v", consol)
	}
}
