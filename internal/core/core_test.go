package core

import (
	"bytes"
	"strings"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/mk"
	"vmmk/internal/vmm"
)

// Small aliases so cross-arch micro-measurements read cleanly.
func vmmNew(m *hw.Machine) (*vmm.Hypervisor, *vmm.Domain, error) { return vmm.New(m, 32) }
func mkNew(m *hw.Machine) *mk.Kernel                             { return mk.New(m) }
func mkMsg() mk.Msg                                              { return mk.Msg{Words: []uint64{1}} }
func echoHandler(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
	return msg, nil
}

func TestPlatformsBootAndProbe(t *testing.T) {
	builders := []func() (Platform, error){
		func() (Platform, error) { return NewMKStack(Config{}) },
		func() (Platform, error) { return NewXenStack(Config{}) },
		func() (Platform, error) { return NewNativeStack(Config{}) },
	}
	for _, build := range builders {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.DoSyscall(0, 1, 0); err != nil {
			t.Fatalf("%s: syscall: %v", p.Name(), err)
		}
		p.InjectPackets(3, 128, 0)
		if got := p.DrainRx(0); got != 3 {
			t.Fatalf("%s: drained %d packets, want 3", p.Name(), got)
		}
		if err := p.StorageWrite(0, 1, []byte("probe")); err != nil {
			t.Fatalf("%s: storage write: %v", p.Name(), err)
		}
		if data, err := p.StorageRead(0, 1); err != nil || string(data[:5]) != "probe" {
			t.Fatalf("%s: storage read: %q %v", p.Name(), data[:5], err)
		}
		if err := p.SendPackets(2, 64, 0); err != nil {
			t.Fatalf("%s: send: %v", p.Name(), err)
		}
	}
}

func TestPlatformGuestIndexValidation(t *testing.T) {
	p, err := NewMKStack(Config{Guests: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DoSyscall(5, 1, 0); err != ErrGuestIndex {
		t.Fatalf("err = %v, want ErrGuestIndex", err)
	}
	if err := p.SendPackets(1, 64, 5); err != ErrGuestIndex {
		t.Fatalf("err = %v, want ErrGuestIndex", err)
	}
}

// --- E1 ------------------------------------------------------------------

func TestE1FlipCostFlatInSize(t *testing.T) {
	rows, err := RunE1(E1Config{Sizes: []int{64, 4096}, Packets: 40})
	if err != nil {
		t.Fatal(err)
	}
	var flip []E1Row
	var cp []E1Row
	for _, r := range rows {
		if r.Mode == "flip" {
			flip = append(flip, r)
		} else {
			cp = append(cp, r)
		}
	}
	// CG05's headline: flip-mode driver cost per packet is independent of
	// message size.
	if flip[0].PerPktCyc != flip[1].PerPktCyc {
		t.Errorf("flip per-packet cost varies with size: %d vs %d", flip[0].PerPktCyc, flip[1].PerPktCyc)
	}
	// One flip per packet.
	for _, r := range flip {
		if r.Flips != uint64(r.Packets) {
			t.Errorf("flips = %d for %d packets", r.Flips, r.Packets)
		}
	}
	// Copy mode: no flips, cost grows with size.
	for _, r := range cp {
		if r.Flips != 0 {
			t.Errorf("copy mode flipped %d times", r.Flips)
		}
	}
	if cp[1].PerPktCyc <= cp[0].PerPktCyc {
		t.Errorf("copy per-packet cost not increasing: %d -> %d", cp[0].PerPktCyc, cp[1].PerPktCyc)
	}
	// Dom0+monitor dominate CPU under I/O load ("almost all of the CPU
	// load of the system under test").
	for _, r := range rows {
		if r.DriverShare < 0.5 {
			t.Errorf("%s@%dB: driver share %.2f, want dominant", r.Mode, r.PktSize, r.DriverShare)
		}
	}
}

func TestE1RateSweepShape(t *testing.T) {
	rows, err := RunE1Rates([]int{1000, 20000, 100000}, 80, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Delivered != r.Packets {
			t.Errorf("rate %d: dropped packets (%d/%d)", r.RatePktPerSec, r.Delivered, r.Packets)
		}
		if i > 0 && r.DriverLoad <= rows[i-1].DriverLoad {
			t.Errorf("driver load must rise with offered load: %.3f then %.3f",
				rows[i-1].DriverLoad, r.DriverLoad)
		}
	}
	// At the top rate the driver side dominates CPU consumption — "almost
	// all of the CPU load of the system under test".
	top := rows[len(rows)-1]
	if top.DriverLoad < 0.5 {
		t.Errorf("driver load at 100k pkt/s = %.2f, want dominant", top.DriverLoad)
	}
}

// --- E2 ------------------------------------------------------------------

func TestE2CountsEssentiallyEqual(t *testing.T) {
	rows, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.MKOps == 0 || r.VMMOps == 0 {
			t.Errorf("%s: degenerate counts %d/%d", r.Workload, r.MKOps, r.VMMOps)
			continue
		}
		// "Essentially the same number": same order of magnitude, within
		// 2x either way.
		if r.Ratio > 2.0 || r.Ratio < 0.5 {
			t.Errorf("%s: vmm/mk ratio %.2f outside [0.5, 2.0]", r.Workload, r.Ratio)
		}
	}
}

// --- E3 ------------------------------------------------------------------

func TestE3FastPathStory(t *testing.T) {
	rows, err := RunE3(100)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E3Row{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	native := byName["native trap"]
	fast := byName["xen trap-gate fast path"]
	bounced := byName["xen after glibc TLS (bounced)"]
	mkr := byName["mk IPC syscall (L4Linux)"]

	if !fast.FastPathLive {
		t.Fatal("fast path should be live on a pristine guest")
	}
	if bounced.FastPathLive {
		t.Fatal("fast path must die after the flat TLS segment")
	}
	// Cost ordering: fast ~ native < bounced < mk IPC.
	if fast.CyclesPerOp > native.CyclesPerOp*2 {
		t.Errorf("fast path (%d) should be near native (%d)", fast.CyclesPerOp, native.CyclesPerOp)
	}
	if bounced.CyclesPerOp <= fast.CyclesPerOp {
		t.Errorf("bounced (%d) must cost more than fast (%d)", bounced.CyclesPerOp, fast.CyclesPerOp)
	}
	// The monitor must be untouched on the fast path and charged on the
	// bounce.
	if fast.MonitorCyc != 0 {
		t.Errorf("fast path charged the monitor %d cyc/op", fast.MonitorCyc)
	}
	if bounced.MonitorCyc == 0 {
		t.Error("bounced path did not charge the monitor")
	}
	// The mk syscall costs more than a native trap (it is a full IPC) but
	// remains the same order of magnitude.
	if mkr.CyclesPerOp <= native.CyclesPerOp {
		t.Errorf("mk IPC syscall (%d) should exceed native (%d)", mkr.CyclesPerOp, native.CyclesPerOp)
	}
	if mkr.CyclesPerOp > native.CyclesPerOp*20 {
		t.Errorf("mk IPC syscall (%d) implausibly expensive vs native (%d)", mkr.CyclesPerOp, native.CyclesPerOp)
	}
}

// --- E4 ------------------------------------------------------------------

func TestE4BlastRadiusIdenticalOnBothSystems(t *testing.T) {
	rows, err := RunE4(3)
	if err != nil {
		t.Fatal(err)
	}
	get := func(platform, scenario string) E4Row {
		for _, r := range rows {
			if r.Platform == platform && r.Scenario == scenario {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", platform, scenario)
		return E4Row{}
	}
	for _, sc := range []string{"kill storage service", "kill driver domain"} {
		mkRow := get("mk", sc)
		vmmRow := get("vmm", sc)
		natRow := get("native", sc)

		// §3.1: identical confinement on mk and vmm.
		if mkRow.KernelAlive != vmmRow.KernelAlive ||
			mkRow.StorageWorks != vmmRow.StorageWorks ||
			mkRow.NetworkWorks != vmmRow.NetworkWorks ||
			mkRow.GuestsSurvive != vmmRow.GuestsSurvive {
			t.Errorf("%s: mk and vmm blast radii differ: %+v vs %+v", sc, mkRow, vmmRow)
		}
		// Both confine: kernel and guests survive, storage fails.
		if !mkRow.KernelAlive || mkRow.GuestsSurvive != 3 || mkRow.StorageWorks {
			t.Errorf("%s: mk confinement wrong: %+v", sc, mkRow)
		}
		// Native: everything dies.
		if natRow.KernelAlive || natRow.StorageWorks || natRow.NetworkWorks || natRow.GuestsSurvive != 0 {
			t.Errorf("%s: native should lose everything: %+v", sc, natRow)
		}
	}
	// Storage death must NOT take the network down (decomposition), but
	// driver death must.
	if !get("mk", "kill storage service").NetworkWorks || !get("vmm", "kill storage service").NetworkWorks {
		t.Error("storage crash took the network down")
	}
	if get("mk", "kill driver domain").NetworkWorks || get("vmm", "kill driver domain").NetworkWorks {
		t.Error("network survived its driver's death")
	}
}

// --- E5 ------------------------------------------------------------------

func TestE5CensusOneVsTen(t *testing.T) {
	rows, err := RunE5()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E5Row{}
	for _, r := range rows {
		byName[r.Platform] = r
	}
	// All mk primitives are facets of IPC; the census shows only ipc.*
	// entries.
	for _, p := range byName["mk"].Primitives {
		if !strings.HasPrefix(p, "ipc.") {
			t.Errorf("mk primitive %q is not an IPC facet", p)
		}
	}
	// The VMM must exercise all ten of the paper's primitives.
	if byName["vmm"].Count != 10 {
		t.Errorf("vmm census = %d, want the paper's 10", byName["vmm"].Count)
	}
	if byName["mk"].Count >= byName["vmm"].Count {
		t.Errorf("mk census (%d) must be smaller than vmm's (%d)", byName["mk"].Count, byName["vmm"].Count)
	}
	// "Each primitive requires a dedicated set of security mechanisms":
	// the union of mechanisms behind the VMM's primitives must dwarf the
	// microkernel's shared set.
	if byName["mk"].Mechanisms >= byName["vmm"].Mechanisms {
		t.Errorf("mechanisms: mk %d vs vmm %d — claim requires mk smaller",
			byName["mk"].Mechanisms, byName["vmm"].Mechanisms)
	}
	if byName["mk"].Mechanisms != 3 {
		t.Errorf("mk mechanisms = %d, want the shared 3", byName["mk"].Mechanisms)
	}
}

// --- E6 ------------------------------------------------------------------

func TestE6NinePlatformsUnchanged(t *testing.T) {
	rows, err := RunE6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9 architectures", len(rows))
	}
	nonZeroDeltas := 0
	for _, r := range rows {
		if !r.MKRuns || r.MKChanges != 0 {
			t.Errorf("%s: mk personality needed changes (%d) or failed", r.Arch, r.MKChanges)
		}
		if r.Arch == "x86" && r.VMMDeltas != 0 {
			t.Errorf("x86 baseline has %d deltas vs itself", r.VMMDeltas)
		}
		if r.Arch != "x86" && r.VMMDeltas > 0 {
			nonZeroDeltas++
		}
	}
	if nonZeroDeltas != 8 {
		t.Errorf("only %d/8 non-baseline archs show VMM interface deltas", nonZeroDeltas)
	}
}

// --- E7 ------------------------------------------------------------------

func TestE7CostStructure(t *testing.T) {
	rows, err := RunE7(50)
	if err != nil {
		t.Fatal(err)
	}
	get := func(op string) uint64 {
		for _, r := range rows {
			if r.Op == op {
				return r.Cycles
			}
		}
		t.Fatalf("missing op %q", op)
		return 0
	}
	ipc := get("IPC call round trip (short)")
	flip := get("grant + page flip")
	hyper := get("hypercall (nop)")
	trap := get("bare trap + return")
	// The cost hierarchy everything in the paper assumes.
	if !(trap < hyper && hyper < ipc) {
		t.Errorf("expected trap(%d) < hypercall(%d) < IPC RT(%d)", trap, hyper, ipc)
	}
	if flip <= ipc {
		t.Errorf("page flip (%d) should exceed an IPC round trip (%d)", flip, ipc)
	}
	if get("IPC call round trip (1KB string)") <= ipc {
		t.Error("string IPC should cost more than short IPC")
	}
}

func TestE7OrderingHoldsOnAllArchitectures(t *testing.T) {
	// The cost hierarchy the arguments rest on is not an x86 artifact:
	// on every platform, a hypercall is cheaper than a full IPC round
	// trip, and the guest syscall bounce sits between them.
	for _, arch := range hw.AllArchs() {
		arch := arch
		t.Run(arch.Name, func(t *testing.T) {
			// Hypercall cost.
			mv := hw.NewMachine(arch, &hw.MachineConfig{Frames: 256})
			h, _, err := vmmNew(mv)
			if err != nil {
				t.Fatal(err)
			}
			dU, err := h.CreateDomain("u", 16)
			if err != nil {
				t.Fatal(err)
			}
			t0 := mv.Now()
			for i := 0; i < 20; i++ {
				if err := h.Hypercall(dU.ID, "nop", 0); err != nil {
					t.Fatal(err)
				}
			}
			hyper := uint64(mv.Now()-t0) / 20

			// IPC round trip cost.
			mm := hw.NewMachine(arch, &hw.MachineConfig{Frames: 256})
			k := mkNew(mm)
			cs, _ := k.NewSpace("c", 0)
			ss, _ := k.NewSpace("s", 0)
			cl := k.NewThread(cs, "c", 1, nil)
			srv := k.NewThread(ss, "s", 2, echoHandler)
			t1 := mm.Now()
			for i := 0; i < 20; i++ {
				if _, err := k.Call(cl.ID, srv.ID, mkMsg()); err != nil {
					t.Fatal(err)
				}
			}
			ipc := uint64(mm.Now()-t1) / 20

			if !(hyper < ipc) {
				t.Errorf("%s: hypercall (%d) should be cheaper than IPC RT (%d)", arch.Name, hyper, ipc)
			}
		})
	}
}

// --- E8 ------------------------------------------------------------------

func TestE8BothParavirtStacksViable(t *testing.T) {
	rows, err := RunE8(20)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E8Row{}
	for _, r := range rows {
		byName[r.Platform] = r
	}
	if byName["native"].RelativeCost != 1.0 {
		t.Fatal("native must be the 1.0 baseline")
	}
	for _, name := range []string{"mk", "vmm"} {
		rc := byName[name].RelativeCost
		if rc < 1.0 {
			t.Errorf("%s faster than native (%.2fx) — accounting bug", name, rc)
		}
		// §3.3's point: the paravirtualised OS performs well on both;
		// neither stack is degenerate (an order of magnitude off).
		if rc > 3.0 {
			t.Errorf("%s relative cost %.2fx — not 'excellent performance'", name, rc)
		}
	}
}

// --- E9 ------------------------------------------------------------------

func TestE9Ablations(t *testing.T) {
	rows, err := RunE9()
	if err != nil {
		t.Fatal(err)
	}
	get := func(ablation, variant string) float64 {
		for _, r := range rows {
			if r.Ablation == ablation && r.Variant == variant {
				return r.Value
			}
		}
		t.Fatalf("missing %s/%s", ablation, variant)
		return 0
	}
	// (a) copy beats flip for small packets; flip wins at page size.
	if !(get("a: rx transport", "copy @64B") < get("a: rx transport", "flip @64B")) {
		t.Error("copy should beat flip at 64B")
	}
	if !(get("a: rx transport", "copy @4096B") > get("a: rx transport", "flip @4096B")) {
		t.Error("flip should beat copy at 4096B")
	}
	// (b) ASIDs cut IPC cost substantially.
	if !(get("b: TLB tagging", "ASID-tagged TLB") < get("b: TLB tagging", "untagged TLB")*0.7) {
		t.Error("ASID tagging should cut IPC cost by >30%")
	}
	// (c) fast path cheaper than bounced.
	if !(get("c: trap-gate shortcut", "fast path on") < get("c: trap-gate shortcut", "fast path off")) {
		t.Error("fast path should be cheaper")
	}
	// (d) decomposition preserves more services through a storage crash.
	if !(get("d: consolidation", "decomposed servers") > get("d: consolidation", "super-VM (storage in dom0)")) {
		t.Error("decomposed structure should survive better")
	}
	// (e) a fat server's cache footprint must make steady-state IPC
	// markedly slower than a small server's — the minimality argument.
	small := get("e: cache footprint", "small server (fits in cache)")
	fatCost := get("e: cache footprint", "fat server (thrashes cache)")
	if fatCost < small*1.5 {
		t.Errorf("cache thrash too cheap: fat %.0f vs small %.0f", fatCost, small)
	}
	// (f) coalescing reduces per-packet driver cost (and the variant
	// labels carry the IRQ counts, asserted by substring).
	var batch1, batch8 float64
	for _, r := range rows {
		if r.Ablation != "f: irq coalescing" {
			continue
		}
		if strings.HasPrefix(r.Variant, "batch=1 ") {
			batch1 = r.Value
			if !strings.Contains(r.Variant, "irqs=64") {
				t.Errorf("batch=1 should interrupt per packet: %s", r.Variant)
			}
		}
		if strings.HasPrefix(r.Variant, "batch=8 ") {
			batch8 = r.Value
			if !strings.Contains(r.Variant, "irqs=8") {
				t.Errorf("batch=8 should raise 8 interrupts: %s", r.Variant)
			}
		}
	}
	if !(batch8 < batch1) {
		t.Errorf("coalescing did not reduce driver cost: %.0f vs %.0f", batch8, batch1)
	}
	// (g) trap-and-emulate must cost more than the paravirtual hypercall
	// per PT update — why VMMs diverged to paravirtualisation.
	shadow := get("g: virtualisation style", "shadow trap-and-emulate")
	para := get("g: virtualisation style", "paravirtual hypercall")
	if !(shadow > para*1.2) {
		t.Errorf("shadow (%.0f) should clearly exceed paravirt (%.0f)", shadow, para)
	}
}

func TestConsolidatedModeWidensBlastRadius(t *testing.T) {
	// §2.2: "centralized super-VMs that combine and colocate significant
	// critical system functionality … poses the risk of a single point of
	// failure." Same crash, two structures, different wreckage — on BOTH
	// systems, because the structural choice is orthogonal to mk-vs-vmm.
	type outcome struct{ net, storage bool }
	probe := func(p Platform) outcome {
		p.KillStorage()
		return outcome{
			net:     p.SendPackets(1, 64, 0) == nil,
			storage: p.StorageWrite(0, 1, []byte("x")) == nil,
		}
	}
	for _, name := range []string{"mk", "vmm"} {
		build := func(consolidated bool) (Platform, error) {
			cfg := Config{Consolidated: consolidated}
			if name == "mk" {
				return NewMKStack(cfg)
			}
			return NewXenStack(cfg)
		}
		decomposed, err := build(false)
		if err != nil {
			t.Fatal(err)
		}
		consolidated, err := build(true)
		if err != nil {
			t.Fatal(err)
		}
		d, c := probe(decomposed), probe(consolidated)
		if d.storage || c.storage {
			t.Errorf("%s: storage survived its own crash", name)
		}
		if !d.net {
			t.Errorf("%s decomposed: network should survive a storage crash", name)
		}
		if name == "vmm" && c.net {
			t.Errorf("vmm consolidated: network should die with the super-VM")
		}
	}
}

func TestConsolidatedStorageStillWorks(t *testing.T) {
	for _, build := range []func() (Platform, error){
		func() (Platform, error) { return NewMKStack(Config{Consolidated: true}) },
		func() (Platform, error) { return NewXenStack(Config{Consolidated: true}) },
	} {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StorageWrite(0, 1, []byte("consolidated")); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		got, err := p.StorageRead(0, 1)
		if err != nil || string(got[:12]) != "consolidated" {
			t.Fatalf("%s: read %q, %v", p.Name(), got[:12], err)
		}
	}
}

// --- E10 -----------------------------------------------------------------

func TestE10ExtensionComplexity(t *testing.T) {
	rows, err := RunE10(50)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E10Row{}
	for _, r := range rows {
		byName[r.Platform] = r
	}
	mkRow, vmmRow := byName["mk"], byName["vmm"]
	// §2.2: the microkernel extension programs against strictly fewer
	// privileged interfaces, at boot and in steady state.
	if mkRow.BootPrimitives >= vmmRow.BootPrimitives {
		t.Errorf("boot surface: mk %d vs vmm %d — claim requires mk smaller",
			mkRow.BootPrimitives, vmmRow.BootPrimitives)
	}
	if mkRow.ServePrimitives > vmmRow.ServePrimitives {
		t.Errorf("serve surface: mk %d vs vmm %d", mkRow.ServePrimitives, vmmRow.ServePrimitives)
	}
	// All of mk's interfaces are IPC facets.
	for _, n := range mkRow.BootNames {
		if !strings.HasPrefix(n, "ipc.") {
			t.Errorf("mk extension used non-IPC primitive %s", n)
		}
	}
	// Identical service logic: the VMM's higher per-request cost is pure
	// interface overhead, and it must be substantial (the grant+event
	// machinery vs one IPC call).
	if vmmRow.CyclesPerGet <= mkRow.CyclesPerGet {
		t.Errorf("per-get: vmm %d should exceed mk %d", vmmRow.CyclesPerGet, mkRow.CyclesPerGet)
	}
}

// --- E11 -----------------------------------------------------------------

func TestE11LiveMigrationBeatsStopAndCopy(t *testing.T) {
	cfg := E11Config{Frames: 64, DirtyRates: []int{0, 4, 16}, Budgets: []int{0, 1, 4}, Cutoff: 2}
	rows, err := RunE11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.DirtyRates)*len(cfg.Budgets) {
		t.Fatalf("rows = %d, want %d", len(rows), len(cfg.DirtyRates)*len(cfg.Budgets))
	}
	get := func(rate, budget int) E11Row {
		for _, r := range rows {
			if r.DirtyRate == rate && r.Budget == budget {
				return r
			}
		}
		t.Fatalf("missing cell rate=%d budget=%d", rate, budget)
		return E11Row{}
	}
	for _, rate := range cfg.DirtyRates {
		stop := get(rate, 0)
		live := get(rate, 4)
		// The acceptance criterion: pre-copy's blackout is strictly shorter
		// than freezing the guest for the whole copy, at every dirty rate
		// below memory size.
		if live.DowntimeCyc >= stop.DowntimeCyc {
			t.Errorf("rate %d: live downtime %d not below stop-and-copy %d",
				rate, live.DowntimeCyc, stop.DowntimeCyc)
		}
		// The price is bandwidth: pre-copy never moves fewer pages.
		if live.PagesMoved < stop.PagesMoved {
			t.Errorf("rate %d: live moved %d pages, stop-and-copy %d",
				rate, live.PagesMoved, stop.PagesMoved)
		}
	}
	// A clean guest converges after one full round with nothing to re-send.
	clean := get(0, 4)
	if clean.Rounds != 1 || clean.PagesMoved != cfg.Frames {
		t.Errorf("clean guest: rounds=%d moved=%d, want 1 round, %d pages",
			clean.Rounds, clean.PagesMoved, cfg.Frames)
	}
	// A writing guest re-sends: strictly more transfers than memory size.
	if hot := get(16, 4); hot.PagesMoved <= cfg.Frames {
		t.Errorf("hot guest moved only %d pages across %d rounds", hot.PagesMoved, hot.Rounds)
	}
	// More budget at the same rate must not lengthen the blackout.
	for _, rate := range []int{4, 16} {
		if get(rate, 4).DowntimeCyc > get(rate, 1).DowntimeCyc {
			t.Errorf("rate %d: budget 4 downtime %d exceeds budget 1's %d",
				rate, get(rate, 4).DowntimeCyc, get(rate, 1).DowntimeCyc)
		}
	}
}

// --- harness -------------------------------------------------------------

func TestRunAllProducesEveryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range Experiments() {
		if !strings.Contains(out, "== "+e.ID+":") {
			t.Errorf("output missing experiment %s", e.ID)
		}
	}
}

func TestXenStoreRegistryPopulatedAtBoot(t *testing.T) {
	s, err := NewXenStack(Config{Guests: 2})
	if err != nil {
		t.Fatal(err)
	}
	vms, err := s.ST.List(s.Guests[0].Dom.ID, "/vm")
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 3 { // dom0 + 2 guests
		t.Fatalf("registry lists %v", vms)
	}
	state, err := s.ST.Read(s.Guests[0].Dom.ID, "/local/domain/2/device/vif/0/state")
	if err != nil || state != "connected" {
		t.Fatalf("vif state = %q, %v", state, err)
	}
}

func TestPersonalityMountFSHelpers(t *testing.T) {
	mkStack, err := NewMKStack(Config{})
	if err != nil {
		t.Fatal(err)
	}
	mfs, err := mkStack.OSes[0].MountFS(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := mfs.WriteFile("a", []byte("mk-side")); err != nil {
		t.Fatal(err)
	}
	xen, err := NewXenStack(Config{})
	if err != nil {
		t.Fatal(err)
	}
	vfs, err := xen.Guests[0].MountFS(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile("a", []byte("vmm-side")); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile("a")
	if err != nil || string(got) != "vmm-side" {
		t.Fatalf("read %q, %v", got, err)
	}
}

func TestWholeEvaluationIsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full evaluation twice")
	}
	// The repository's headline determinism property: the entire
	// evaluation, byte for byte, twice.
	var a, b bytes.Buffer
	if err := RunAll(&a); err != nil {
		t.Fatal(err)
	}
	if err := RunAll(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two runs of the full evaluation differ — nondeterminism crept in")
	}
}

func TestDeterministicReplay(t *testing.T) {
	// The whole point of the simulation: identical runs yield identical
	// cycle counts.
	run := func() uint64 {
		s, err := NewXenStack(Config{})
		if err != nil {
			t.Fatal(err)
		}
		s.InjectPackets(10, 700, 0)
		s.DrainRx(0)
		if err := s.StorageWrite(0, 3, []byte("det")); err != nil {
			t.Fatal(err)
		}
		return uint64(s.M().Now())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged: %d vs %d cycles", a, b)
	}
}

func TestCrossArchBothStacksBoot(t *testing.T) {
	// The VMM stack also boots on non-x86 (paravirtual interface exists
	// everywhere); only the fast path is x86-only. This keeps E6 honest:
	// the portability difference is interface variance, not "vmm cannot
	// exist elsewhere".
	for _, arch := range []*hw.Arch{hw.ARM(), hw.PPC64()} {
		s, err := NewXenStack(Config{Arch: arch})
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		if err := s.DoSyscall(0, 1, 0); err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		if s.H.FastPathActive(s.Guests[0].Dom.ID) {
			t.Fatalf("%s: fast path cannot be active without segmentation", arch.Name)
		}
	}
}
