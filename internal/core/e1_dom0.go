package core

import (
	"context"
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
	"vmmk/internal/workload"
)

// E1 reproduces the shape of Cherkasova & Gardner's measurement that the
// paper's §3.2 leans on: under network receive load, the driver domain
// (Dom0 plus the monitor) accounts for most of the system's CPU time, and
// its per-packet cost tracks the number of page flips, not the number of
// payload bytes.

func init() {
	Register(Spec{
		ID:    "e1",
		Title: "Dom0 CPU overhead under I/O load (CG05 shape)",
		Params: []Param{{
			Name: "packets", Kind: ParamInt, DefaultInt: 100, Max: 1 << 20,
			Unit: "packets", Help: "packet count for E1 sweeps",
		}},
		Run: func(_ context.Context, r *Runner, p Params) (*Result, error) {
			cfg := E1Defaults()
			cfg.Packets = p.Int("packets")
			rows, err := r.E1(cfg)
			if err != nil {
				return nil, err
			}
			return NewResult(e1Table(rows)), nil
		},
	})
}

// E1Row is one point of the sweep.
type E1Row struct {
	Mode        string // flip or copy
	PktSize     int
	Packets     int
	Flips       uint64
	DriverCyc   uint64 // Dom0 + monitor cycles in the window
	GuestCyc    uint64
	DriverShare float64 // driver-side fraction of total window cycles
	PerPktCyc   uint64  // driver-side cycles per packet
	PerFlipCyc  uint64  // driver-side cycles per flip (0 in copy mode)
}

// E1Config parameterises the sweep.
type E1Config struct {
	Sizes   []int
	Packets int
}

// E1Defaults is the published sweep: small to MTU-and-beyond messages.
func E1Defaults() E1Config {
	return E1Config{Sizes: []int{64, 256, 1024, 1500, 4096}, Packets: 100}
}

// RunE1 sweeps packet sizes in both delivery modes on a fresh Xen stack per
// point and returns the rows, fanning the points across GOMAXPROCS workers.
func RunE1(cfg E1Config) ([]E1Row, error) { return DefaultRunner().E1(cfg) }

// E1 runs the sweep on this runner's worker pool: one cell per
// (delivery mode, packet size) point, each booting its own stack.
func (r *Runner) E1(cfg E1Config) ([]E1Row, error) {
	if cfg.Packets <= 0 {
		cfg.Packets = E1Defaults().Packets
	}
	modes := []bool{false, true}
	return runCells(r, len(modes)*len(cfg.Sizes), func(ctx context.Context, i int) (E1Row, error) {
		copyMode := modes[i/len(cfg.Sizes)]
		size := cfg.Sizes[i%len(cfg.Sizes)]
		s, err := NewXenStack(Config{CopyMode: copyMode}.WithPool(ctx))
		if err != nil {
			return E1Row{}, err
		}
		defer s.Close()
		rec := s.M().Rec
		snap := rec.Snapshot()
		driver0 := s.DriverSideCycles()
		guest0 := rec.CyclesPrefix("vmm.domU")
		total0 := rec.TotalCycles()

		s.InjectPackets(cfg.Packets, size, 0)
		s.DrainRx(0)

		flips := rec.CountsSince(snap, trace.KPageFlip)
		driver := s.DriverSideCycles() - driver0
		guest := rec.CyclesPrefix("vmm.domU") - guest0
		total := rec.TotalCycles() - total0
		row := E1Row{
			Mode:      map[bool]string{false: "flip", true: "copy"}[copyMode],
			PktSize:   size,
			Packets:   cfg.Packets,
			Flips:     flips,
			DriverCyc: driver,
			GuestCyc:  guest,
			PerPktCyc: driver / uint64(cfg.Packets),
		}
		if total > 0 {
			row.DriverShare = float64(driver) / float64(total)
		}
		if flips > 0 {
			row.PerFlipCyc = driver / flips
		}
		return row, nil
	})
}

// E1RateRow is one point of the offered-load sweep: packets arrive on a
// schedule (not back to back), so idle time exists and the driver side's
// share of *machine time* rises with load — the x-axis of the CG05 figure.
type E1RateRow struct {
	RatePktPerSec int
	Packets       int
	DriverCyc     uint64
	WindowCyc     uint64  // total virtual time the run spanned
	DriverLoad    float64 // driver cycles / window cycles ("CPU utilisation")
	Delivered     int
}

// RunE1Rates sweeps offered load at a fixed packet size in flip mode.
func RunE1Rates(rates []int, packets, size int) ([]E1RateRow, error) {
	return DefaultRunner().E1Rates(rates, packets, size)
}

// E1Rates runs the offered-load sweep, one cell per rate point.
func (r *Runner) E1Rates(rates []int, packets, size int) ([]E1RateRow, error) {
	if len(rates) == 0 {
		rates = []int{1000, 5000, 20000, 50000, 100000}
	}
	if packets <= 0 {
		packets = 100
	}
	return runCells(r, len(rates), func(ctx context.Context, i int) (E1RateRow, error) {
		rate := rates[i]
		s, err := NewXenStack(Config{}.WithPool(ctx))
		if err != nil {
			return E1RateRow{}, err
		}
		defer s.Close()
		gap := hw.Cycles(workload.RateSchedule(rate))
		start := s.M().Now()
		driver0 := s.DriverSideCycles()
		for i := 0; i < packets; i++ {
			pkt := make([]byte, size)
			at := start + hw.Cycles(i+1)*gap
			s.NIC.InjectAt(at, pkt)
		}
		// Drive the machine through the whole arrival schedule, fielding
		// each interrupt as it lands (one event per dispatch round).
		for s.M().Events.Pending() > 0 {
			s.M().Events.RunUntilIdle(1)
			s.M().IRQ.DispatchPending(s.H.Comp())
		}
		s.M().IRQ.DispatchPending(s.H.Comp())
		s.Pump()
		delivered := s.DrainRx(0)
		window := uint64(s.M().Now() - start)
		driver := s.DriverSideCycles() - driver0
		row := E1RateRow{
			RatePktPerSec: rate,
			Packets:       packets,
			DriverCyc:     driver,
			WindowCyc:     window,
			Delivered:     delivered,
		}
		if window > 0 {
			row.DriverLoad = float64(driver) / float64(window)
		}
		return row, nil
	})
}

// e1RateTable builds the offered-load sweep's registry table.
func e1RateTable(rows []E1RateRow) *ResultTable {
	t := NewResultTable(
		"E1b — driver-side CPU utilisation vs offered load (flip mode, 1500B)",
		Col("rate pkt/s", "packets/s"), Col("pkts", "packets"), Col("delivered", "packets"),
		Col("driver cyc", "cycles"), Col("window cyc", "cycles"), Col("driver load", "%"),
	)
	for _, r := range rows {
		t.AddRow(r.RatePktPerSec, r.Packets, r.Delivered, r.DriverCyc, r.WindowCyc,
			fmt.Sprintf("%.1f%%", 100*r.DriverLoad))
	}
	return t
}

// E1RateTable renders the offered-load sweep (compatibility wrapper over
// the registry's Result model).
func E1RateTable(rows []E1RateRow) *trace.Table { return e1RateTable(rows).Trace() }

// e1Table builds the main sweep's registry table.
func e1Table(rows []E1Row) *ResultTable {
	t := NewResultTable(
		"E1 — Dom0/driver-domain CPU under network RX load (Cherkasova-Gardner shape)",
		Col("mode", ""), Col("pkt B", "bytes"), Col("pkts", "packets"), Col("flips", "flips"),
		Col("driver cyc", "cycles"), Col("driver/pkt", "cycles/packet"),
		Col("driver share", "%"), Col("cyc/flip", "cycles/flip"),
	)
	for _, r := range rows {
		t.AddRow(r.Mode, r.PktSize, r.Packets, r.Flips, r.DriverCyc, r.PerPktCyc,
			fmt.Sprintf("%.0f%%", 100*r.DriverShare), r.PerFlipCyc)
	}
	return t
}

// E1Table renders the rows as the experiment's result table (compatibility
// wrapper over the registry's Result model).
func E1Table(rows []E1Row) *trace.Table { return e1Table(rows).Trace() }
