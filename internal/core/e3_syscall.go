package core

import (
	"context"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
	"vmmk/internal/vmmos"
)

// E3 reproduces the trap-gate story of §3.2: Xen's int-0x80 shortcut makes
// guest syscalls near-native, but only while every guest data segment
// excludes the monitor; one glibc-style flat TLS segment and every syscall
// takes the bounced path. The microkernel syscall (one IPC to the OS
// server) and the native trap are measured on the same hardware model for
// comparison.

func init() {
	Register(Spec{
		ID:     "e3",
		Title:  "guest system-call paths",
		Params: []Param{paramSyscalls},
		Run: func(_ context.Context, r *Runner, p Params) (*Result, error) {
			rows, err := r.E3(p.Int("syscalls"))
			if err != nil {
				return nil, err
			}
			return NewResult(e3Table(rows)), nil
		},
	})
}

// E3Row is one configuration's per-syscall cost.
type E3Row struct {
	Config       string
	CyclesPerOp  uint64
	MonitorCyc   uint64 // monitor/kernel share per op (0 = untouched)
	FastPathLive bool
}

// RunE3 measures the four configurations with n syscalls each.
func RunE3(n int) ([]E3Row, error) { return DefaultRunner().E3(n) }

// E3 runs the four configurations as independent cells, each on its own
// freshly booted stack.
func (r *Runner) E3(n int) ([]E3Row, error) {
	if n <= 0 {
		n = 200
	}
	cells := []func(context.Context) ([]E3Row, error){
		// Native baseline.
		func(ctx context.Context) ([]E3Row, error) {
			s, err := NewNativeStack(Config{}.WithPool(ctx))
			if err != nil {
				return nil, err
			}
			defer s.Close()
			t0 := s.M().Now()
			for i := 0; i < n; i++ {
				if err := s.DoSyscall(0, 1, 0); err != nil {
					return nil, err
				}
			}
			return []E3Row{{
				Config:      "native trap",
				CyclesPerOp: uint64(s.M().Now()-t0) / uint64(n),
			}}, nil
		},
		// Xen fast path: fresh stack, pristine segments.
		func(ctx context.Context) ([]E3Row, error) {
			s, err := NewXenStack(Config{FastPath: true}.WithPool(ctx))
			if err != nil {
				return nil, err
			}
			defer s.Close()
			mon0 := s.M().Rec.Cycles(vmm.HypervisorComponent)
			t0 := s.M().Now()
			for i := 0; i < n; i++ {
				if err := s.DoSyscall(0, vmmos.SysGetPID, 0); err != nil {
					return nil, err
				}
			}
			return []E3Row{{
				Config:       "xen trap-gate fast path",
				CyclesPerOp:  uint64(s.M().Now()-t0) / uint64(n),
				MonitorCyc:   (s.M().Rec.Cycles(vmm.HypervisorComponent) - mon0) / uint64(n),
				FastPathLive: s.H.FastPathActive(s.Guests[0].Dom.ID),
			}}, nil
		},
		// Xen after glibc TLS: load a flat GS segment, fast path dies.
		func(ctx context.Context) ([]E3Row, error) {
			s, err := NewXenStack(Config{FastPath: true}.WithPool(ctx))
			if err != nil {
				return nil, err
			}
			defer s.Close()
			dom := s.Guests[0].Dom.ID
			if err := s.H.LoadGuestSegment(dom, hw.SegGS, hw.Segment{Base: 0, Limit: ^uint64(0), DPL: hw.Ring3}); err != nil {
				return nil, err
			}
			mon0 := s.M().Rec.Cycles(vmm.HypervisorComponent)
			t0 := s.M().Now()
			for i := 0; i < n; i++ {
				if err := s.DoSyscall(0, vmmos.SysGetPID, 0); err != nil {
					return nil, err
				}
			}
			return []E3Row{{
				Config:       "xen after glibc TLS (bounced)",
				CyclesPerOp:  uint64(s.M().Now()-t0) / uint64(n),
				MonitorCyc:   (s.M().Rec.Cycles(vmm.HypervisorComponent) - mon0) / uint64(n),
				FastPathLive: s.H.FastPathActive(dom),
			}}, nil
		},
		// Microkernel: syscall as one IPC call to the OS server.
		func(ctx context.Context) ([]E3Row, error) {
			s, err := NewMKStack(Config{}.WithPool(ctx))
			if err != nil {
				return nil, err
			}
			defer s.Close()
			kc0 := s.M().Rec.Cycles("mk.kernel")
			t0 := s.M().Now()
			for i := 0; i < n; i++ {
				if err := s.DoSyscall(0, 1, 0); err != nil {
					return nil, err
				}
			}
			return []E3Row{{
				Config:      "mk IPC syscall (L4Linux)",
				CyclesPerOp: uint64(s.M().Now()-t0) / uint64(n),
				MonitorCyc:  (s.M().Rec.Cycles("mk.kernel") - kc0) / uint64(n),
			}}, nil
		},
	}
	return runFuncs(r, cells)
}

// e3Table builds the registry table.
func e3Table(rows []E3Row) *ResultTable {
	t := NewResultTable(
		"E3 — guest system-call paths (paper §3.2: the shortcut is fragile)",
		Col("configuration", ""), Col("cycles/syscall", "cycles"),
		Col("monitor cyc/op", "cycles"), Col("fast path", ""),
	)
	for _, r := range rows {
		live := "-"
		if r.FastPathLive {
			live = "live"
		}
		t.AddRow(r.Config, r.CyclesPerOp, r.MonitorCyc, live)
	}
	return t
}

// E3Table renders the rows (compatibility wrapper over the registry's
// Result model).
func E3Table(rows []E3Row) *trace.Table { return e3Table(rows).Trace() }
