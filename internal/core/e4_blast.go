package core

import (
	"context"
	"strconv"

	"vmmk/internal/trace"
)

// E4 measures failure blast radii, §3.1's liability-inversion argument:
// when the shared storage service dies (Parallax on the VMM, the store
// server on the microkernel), exactly its clients lose service, the
// privileged kernel/monitor survives, and unrelated components continue —
// identically on both systems. The native baseline shows the structural
// alternative: an in-kernel service's death is everyone's death.

func init() {
	Register(Spec{
		ID:    "e4",
		Title: "failure blast radius",
		Params: []Param{{
			Name: "guests", Kind: ParamInt, DefaultInt: 3, Max: 256,
			Unit: "guests", Help: "guest count for E4",
		}},
		Run: func(_ context.Context, r *Runner, p Params) (*Result, error) {
			rows, err := r.E4(p.Int("guests"))
			if err != nil {
				return nil, err
			}
			return NewResult(e4Table(rows)), nil
		},
	})
}

// E4Row is one platform × scenario outcome.
type E4Row struct {
	Platform      string
	Scenario      string
	KernelAlive   bool
	StorageWorks  bool // a client storage op after the crash
	NetworkWorks  bool // an unrelated network op after the crash
	GuestsSurvive int
	GuestsTotal   int
}

// RunE4 runs the kill-the-storage-service and kill-the-driver scenarios on
// all three platforms with nGuests guests each.
func RunE4(nGuests int) ([]E4Row, error) { return DefaultRunner().E4(nGuests) }

// E4 runs the scenario × platform grid as independent cells: each crash
// happens on its own freshly booted system.
func (r *Runner) E4(nGuests int) ([]E4Row, error) {
	if nGuests <= 0 {
		nGuests = 3
	}
	type scenario struct {
		name string
		kill func(Platform)
	}
	scenarios := []scenario{
		{"kill storage service", func(p Platform) { p.KillStorage() }},
		{"kill driver domain", func(p Platform) { p.KillDriver() }},
	}
	builders := []func(Config) (Platform, error){
		func(c Config) (Platform, error) { return NewMKStack(c) },
		func(c Config) (Platform, error) { return NewXenStack(c) },
		func(c Config) (Platform, error) { return NewNativeStack(c) },
	}
	return runCells(r, len(scenarios)*len(builders), func(ctx context.Context, i int) (E4Row, error) {
		sc := scenarios[i/len(builders)]
		p, err := builders[i%len(builders)](Config{Guests: nGuests}.WithPool(ctx))
		if err != nil {
			return E4Row{}, err
		}
		defer p.Close()
		// Pre-crash sanity: storage and network work.
		if err := p.StorageWrite(0, 1, []byte("pre")); err != nil {
			return E4Row{}, err
		}
		p.InjectPackets(1, 64, 0)
		p.DrainRx(0)

		sc.kill(p)

		row := E4Row{Platform: p.Name(), Scenario: sc.name, GuestsTotal: nGuests}
		row.StorageWorks = p.StorageWrite(0, 2, []byte("post")) == nil
		row.NetworkWorks = p.SendPackets(1, 64, 0) == nil
		for _, cs := range p.Alive() {
			switch {
			case cs.Name == "monitor":
				row.KernelAlive = cs.Alive
			case len(cs.Name) > 5 && cs.Name[:5] == "guest":
				if cs.Alive {
					row.GuestsSurvive++
				}
			}
		}
		return row, nil
	})
}

// e4Table builds the registry table.
func e4Table(rows []E4Row) *ResultTable {
	t := NewResultTable(
		"E4 — failure blast radius (paper §3.1: identical confinement on both systems)",
		Col("platform", ""), Col("scenario", ""), Col("kernel", ""), Col("storage", ""),
		Col("network", ""), Col("guests alive", "guests"),
	)
	yn := func(b bool) string {
		if b {
			return "ok"
		}
		return "FAILED"
	}
	for _, r := range rows {
		t.AddRow(r.Platform, r.Scenario, yn(r.KernelAlive), yn(r.StorageWorks), yn(r.NetworkWorks),
			strconv.Itoa(r.GuestsSurvive)+"/"+strconv.Itoa(r.GuestsTotal))
	}
	return t
}

// E4Table renders the rows (compatibility wrapper over the registry's
// Result model).
func E4Table(rows []E4Row) *trace.Table { return e4Table(rows).Trace() }
