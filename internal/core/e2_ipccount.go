package core

import (
	"context"
	"fmt"

	"vmmk/internal/trace"
	"vmmk/internal/workload"
)

// E2 tests the rebuttal's central quantitative claim (§3.2): "A Xen-based
// system performs essentially the same number of IPC operations as a
// comparable microkernel-based system." Identical workloads run on both
// stacks; the recorder counts every IPC-equivalent boundary crossing
// (defined in trace.Kind.IsIPCEquivalent) on each.

func init() {
	Register(Spec{
		ID:    "e2",
		Title: "IPC-equivalent operation counts",
		Run: func(_ context.Context, r *Runner, _ Params) (*Result, error) {
			rows, err := r.E2()
			if err != nil {
				return nil, err
			}
			return NewResult(e2Table(rows)), nil
		},
	})
}

// E2Row is one workload's comparison.
type E2Row struct {
	Workload string
	MKOps    uint64
	VMMOps   uint64
	Ratio    float64 // VMM / MK
}

// E2Workload names a canned workload.
type E2Workload struct {
	Name string
	Run  func(p Platform) error
}

// E2Workloads returns the canonical set: network echo, syscall mix, storage
// I/O, and the composite web serve.
func E2Workloads() []E2Workload {
	return []E2Workload{
		{"net-echo-64B", func(p Platform) error {
			p.InjectPackets(50, 64, 0)
			p.DrainRx(0)
			return p.SendPackets(50, 64, 0)
		}},
		{"net-echo-1500B", func(p Platform) error {
			p.InjectPackets(50, 1500, 0)
			p.DrainRx(0)
			return p.SendPackets(50, 1500, 0)
		}},
		{"syscall-mix", func(p Platform) error {
			for _, op := range workload.DefaultMix.Sequence(200, 42) {
				var no uint32
				switch op.Kind {
				case workload.OpGetPID:
					no = 1
				case workload.OpWrite:
					no = 2
				default:
					no = 3
				}
				if err := p.DoSyscall(0, no, op.Arg); err != nil {
					return err
				}
			}
			return nil
		}},
		{"storage-io", func(p Platform) error {
			for _, op := range (workload.BlockPattern{N: 30, WSBlocks: 16, WriteFrac: 0.5, Seed: 7}).Ops() {
				var err error
				if op.Kind == workload.OpBlockWrite {
					err = p.StorageWrite(0, op.Arg, []byte("e2"))
				} else {
					_, err = p.StorageRead(0, op.Arg)
				}
				if err != nil {
					return err
				}
			}
			return nil
		}},
		{"web-serve", func(p Platform) error {
			for _, req := range (workload.WebStream{N: 20, WSBlocks: 16, Seed: 3}).Requests() {
				p.InjectPackets(1, req.ReqSize, 0)
				p.DrainRx(0)
				if _, err := p.StorageRead(0, req.Block); err != nil {
					return err
				}
				if err := p.SendPackets(1, req.RespSize, 0); err != nil {
					return err
				}
			}
			return nil
		}},
	}
}

// RunE2 runs every workload on fresh stacks of both kinds and counts
// IPC-equivalent operations.
func RunE2() ([]E2Row, error) { return DefaultRunner().E2() }

// E2 runs the comparison on this runner's worker pool: one cell per
// workload, each booting a fresh pair of stacks.
func (r *Runner) E2() ([]E2Row, error) {
	ws := E2Workloads()
	return runCells(r, len(ws), func(ctx context.Context, i int) (E2Row, error) {
		w := ws[i]
		counts := map[string]uint64{}
		for _, build := range []func(Config) (Platform, error){
			func(c Config) (Platform, error) { return NewMKStack(c) },
			func(c Config) (Platform, error) { return NewXenStack(c) },
		} {
			p, err := build(Config{}.WithPool(ctx))
			if err != nil {
				return E2Row{}, err
			}
			snap := p.M().Rec.Snapshot()
			if err := w.Run(p); err != nil {
				return E2Row{}, fmt.Errorf("E2 %s on %s: %w", w.Name, p.Name(), err)
			}
			counts[p.Name()] = p.M().Rec.IPCEquivalentSince(snap)
			p.Close()
		}
		row := E2Row{Workload: w.Name, MKOps: counts["mk"], VMMOps: counts["vmm"]}
		if row.MKOps > 0 {
			row.Ratio = float64(row.VMMOps) / float64(row.MKOps)
		}
		return row, nil
	})
}

// e2Table builds the comparison's registry table.
func e2Table(rows []E2Row) *ResultTable {
	t := NewResultTable(
		"E2 — IPC-equivalent operations per workload (paper §3.2: counts should be essentially equal)",
		Col("workload", ""), Col("mk ops", "ops"), Col("vmm ops", "ops"), Col("vmm/mk", "ratio"),
	)
	for _, r := range rows {
		t.AddRow(r.Workload, r.MKOps, r.VMMOps, fmt.Sprintf("%.2fx", r.Ratio))
	}
	return t
}

// E2Table renders the comparison (compatibility wrapper over the registry's
// Result model).
func E2Table(rows []E2Row) *trace.Table { return e2Table(rows).Trace() }
