package core

import (
	"context"

	"vmmk/internal/hw"
)

// Machine pooling. Booting a hw.Machine is the dominant fixed cost of an
// experiment cell, and cells destroy their machine the moment the row is
// computed. The runner therefore gives every worker its own hw.MachinePool,
// carried to the cells through the context: cells acquire a machine (a
// Reset one when the pool has seen the same architecture/config identity
// before, a fresh boot otherwise) and release it when the cell is done.
//
// Pools are strictly per worker — no locks on the hot path, and each
// worker's acquire/release sequence is deterministic. Because a Reset
// machine is observably identical to a new one (the contract
// hw.Machine.Reset pins, and TestExperimentsPooledVsFresh verifies per
// experiment), cells are free to ignore which kind they got: the tables are
// byte-identical either way, at any -parallel width.

// poolCtxKey carries the current worker's MachinePool in a cell context.
type poolCtxKey struct{}

// withPool attaches a worker's machine pool to the context handed to cells.
func withPool(ctx context.Context, p *hw.MachinePool) context.Context {
	return context.WithValue(ctx, poolCtxKey{}, p)
}

// poolFrom extracts the worker's machine pool; nil (build-fresh machines)
// when the context does not carry one — e.g. direct API calls bypassing the
// runner.
func poolFrom(ctx context.Context) *hw.MachinePool {
	p, _ := ctx.Value(poolCtxKey{}).(*hw.MachinePool)
	return p
}

// acquireMachine hands out a machine for arch/cfg from the cell's worker
// pool and returns it together with the release that puts it back (Reset)
// for the next cell. Without a pool in the context both degrade gracefully:
// the machine is a plain NewMachine and the release is a no-op.
func acquireMachine(ctx context.Context, arch *hw.Arch, cfg *hw.MachineConfig) (*hw.Machine, func()) {
	p := poolFrom(ctx)
	m := p.Get(arch, cfg)
	return m, func() { p.Put(m) }
}

// AcquireMachine is acquireMachine for harnesses built on RunCells (the
// scenario matrix): inside a cell it hands out a machine from the worker's
// pool and the release that Resets it for the next cell; outside a runner
// it degrades to a fresh boot and a no-op release.
func AcquireMachine(ctx context.Context, arch *hw.Arch, cfg *hw.MachineConfig) (*hw.Machine, func()) {
	return acquireMachine(ctx, arch, cfg)
}
