package core

// result.go is the single typed result model every experiment returns: a
// column schema with units, the rows, and the echoed parameters, with
// renderers for aligned text (byte-identical to the pre-registry tables),
// CSV, and a stable JSON encoding downstream tooling (benchmark trackers,
// regression diffing, sweep aggregation) can consume without screen-scraping.

import (
	"encoding/json"
	"strings"

	"vmmk/internal/trace"
)

// Column is one column of a ResultTable: the display name (exactly the
// header the text and CSV renderers print) plus the unit of the quantity,
// carried separately for machine-readable output.
type Column struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
}

// Col constructs a Column.
func Col(name, unit string) Column { return Column{Name: name, Unit: unit} }

// ResultTable is one table of an experiment's Result: title, column schema
// and rows. Cells keep their native types (integers stay numbers in JSON);
// cells the text renderer shows pre-formatted (percentages, ratios) are
// strings here too, so every renderer agrees on what was measured.
type ResultTable struct {
	Title   string   `json:"title"`
	Columns []Column `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

// NewResultTable returns a table with the given title and column schema.
func NewResultTable(title string, cols ...Column) *ResultTable {
	return &ResultTable{Title: title, Columns: cols}
}

// AddRow appends one row; cells line up with Columns.
func (t *ResultTable) AddRow(cells ...any) {
	t.Rows = append(t.Rows, cells)
}

// Trace converts the table to the text/CSV renderer's type. Cell formatting
// (float rounding, alignment) is trace.Table's, so text output is
// byte-identical to the pre-registry builders'.
func (t *ResultTable) Trace() *trace.Table {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	tt := trace.NewTable(t.Title, names...)
	for _, row := range t.Rows {
		tt.AddRow(row...)
	}
	return tt
}

// Result is the uniform experiment outcome: which experiment ran, with
// which (normalized) parameters, and the tables it produced. RunExperiment
// stamps Experiment, Title and Params; Spec.Run only builds Tables.
type Result struct {
	Experiment string         `json:"experiment"`
	Title      string         `json:"title"`
	Params     Params         `json:"params"`
	Tables     []*ResultTable `json:"tables"`
}

// NewResult wraps tables into a Result (id, title and params are stamped by
// RunExperiment).
func NewResult(tables ...*ResultTable) *Result {
	return &Result{Tables: tables}
}

// Text renders every table as the aligned text the CLI prints by default,
// one blank line after each table — byte-identical to the pre-registry
// per-experiment output.
func (r *Result) Text() string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString(t.Trace().String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders every table as comma-separated values (headers first).
func (r *Result) CSV() string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString(t.Trace().CSV())
	}
	return b.String()
}

// JSON returns the stable machine-readable encoding: one compact document
// with the experiment id, title, echoed params, and every table's column
// schema (with units) and rows. Params encode with sorted keys, so equal
// results encode to equal bytes.
func (r *Result) JSON() ([]byte, error) {
	return json.Marshal(r)
}
