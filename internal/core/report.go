package core

import (
	"context"
	"fmt"
	"io"
)

// Experiment is the line-oriented view of one registered experiment: its
// identifier, title, and a Run that renders the default-parameter Result as
// aligned text. It is generated from the registry — the CLI, the report
// harness and the benchmarks all iterate the same Specs.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// Experiments returns all registered experiments in registry order, bound
// to the default (GOMAXPROCS-parallel) runner.
func Experiments() []Experiment { return DefaultRunner().Experiments() }

// Experiments returns all registered experiments in registry order, bound
// to this runner: each Run executes the experiment with its declared
// default parameters, fanning its cells out across the runner's worker
// pool, and writes the text tables to w.
func (r *Runner) Experiments() []Experiment {
	specs := Specs()
	out := make([]Experiment, len(specs))
	for i, s := range specs {
		id := s.ID
		out[i] = Experiment{ID: s.ID, Title: s.Title, Run: func(w io.Writer) error {
			res, err := r.RunExperiment(context.Background(), id, nil)
			if err != nil {
				return err
			}
			_, err = io.WriteString(w, res.Text())
			return err
		}}
	}
	return out
}

// RunAll executes every registered experiment on the default runner,
// writing each table to w.
func RunAll(w io.Writer) error { return DefaultRunner().RunAll(w) }

// RunAll executes every registered experiment on this runner, writing each
// table to w. Experiments run one after another; parallelism lives inside
// each, across its cells, so the tables stream out in their canonical
// order.
func (r *Runner) RunAll(w io.Writer) error {
	for _, e := range r.Experiments() {
		if _, err := fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title); err != nil {
			return err
		}
		if err := e.Run(w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
