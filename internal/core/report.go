package core

import (
	"fmt"
	"io"
)

// Experiment is one runnable experiment with its identifier and
// description, the unit the CLI and the bench harness iterate over.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// Experiments returns all experiments in order, bound to the default
// (GOMAXPROCS-parallel) runner.
func Experiments() []Experiment { return DefaultRunner().Experiments() }

// Experiments returns all experiments in order, bound to this runner: each
// Run fans its cells out across the runner's worker pool.
func (r *Runner) Experiments() []Experiment {
	return []Experiment{
		{"e1", "Dom0 CPU overhead under I/O load (CG05 shape)", func(w io.Writer) error {
			rows, err := r.E1(E1Defaults())
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w, E1Table(rows)); err != nil {
				return err
			}
			rateRows, err := r.E1Rates(nil, 100, 1500)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, E1RateTable(rateRows))
			return err
		}},
		{"e2", "IPC-equivalent operation counts", func(w io.Writer) error {
			rows, err := r.E2()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, E2Table(rows))
			return err
		}},
		{"e3", "guest system-call paths", func(w io.Writer) error {
			rows, err := r.E3(200)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, E3Table(rows))
			return err
		}},
		{"e4", "failure blast radius", func(w io.Writer) error {
			rows, err := r.E4(3)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, E4Table(rows))
			return err
		}},
		{"e5", "privileged-primitive census", func(w io.Writer) error {
			rows, err := r.E5()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, E5Table(rows))
			return err
		}},
		{"e6", "nine-architecture portability", func(w io.Writer) error {
			rows, err := r.E6()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, E6Table(rows))
			return err
		}},
		{"e7", "primitive microbenchmarks", func(w io.Writer) error {
			rows, err := r.E7(100)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, E7Table(rows))
			return err
		}},
		{"e8", "web-serving macro benchmark", func(w io.Writer) error {
			rows, err := r.E8(50)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, E8Table(rows))
			return err
		}},
		{"e9", "design-decision ablations", func(w io.Writer) error {
			rows, err := r.E9()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, E9Table(rows))
			return err
		}},
		{"e10", "minimal-extension interface complexity", func(w io.Writer) error {
			rows, err := r.E10(100)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, E10Table(rows))
			return err
		}},
		{"e11", "live pre-copy migration downtime", func(w io.Writer) error {
			rows, err := r.E11(E11Defaults())
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, E11Table(rows))
			return err
		}},
		{"e12", "SMP scaling: IPIs and TLB shootdown vs cores", func(w io.Writer) error {
			rows, err := r.E12(E12Defaults())
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, E12Table(rows))
			return err
		}},
	}
}

// RunAll executes every experiment on the default runner, writing each
// table to w.
func RunAll(w io.Writer) error { return DefaultRunner().RunAll(w) }

// RunAll executes every experiment on this runner, writing each table to w.
// Experiments run one after another; parallelism lives inside each, across
// its cells, so the tables stream out in their canonical order.
func (r *Runner) RunAll(w io.Writer) error {
	for _, e := range r.Experiments() {
		if _, err := fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title); err != nil {
			return err
		}
		if err := e.Run(w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
