package core

import (
	"context"
	"runtime"
	"sync"

	"vmmk/internal/hw"
)

// Runner is the experiment engine: it executes the independent cells an
// experiment decomposes into on a bounded worker pool. One cell is one
// (platform, parameter-point) pair booting its own Platform/hw.Machine, so
// cells share no state and any interleaving yields the same table — results
// land at their cell's index, and every simrand stream is seeded inside the
// cell that consumes it, so serial and parallel runs are byte-identical.
type Runner struct {
	// Parallel caps the number of cells in flight; <= 0 means GOMAXPROCS.
	Parallel int
	// Ctx, when non-nil, cancels an in-progress experiment early.
	Ctx context.Context

	// poolMu guards pools, the idle machine pools handed to workers. Each
	// worker borrows one pool for the duration of an experiment (so the
	// per-cell acquire/release path is lock-free) and returns it when the
	// fan-out joins, which lets machines warm in one experiment be reused
	// by the next on the same Runner.
	poolMu sync.Mutex
	pools  []*hw.MachinePool
}

// NewRunner returns a runner with the given worker cap (<= 0: GOMAXPROCS).
func NewRunner(parallel int) *Runner { return &Runner{Parallel: parallel} }

// DefaultRunner fans out across GOMAXPROCS workers — what the plain RunE*
// helpers use.
func DefaultRunner() *Runner { return &Runner{} }

// SerialRunner executes one cell at a time, in index order.
func SerialRunner() *Runner { return &Runner{Parallel: 1} }

func (r *Runner) workers() int {
	if r == nil || r.Parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Parallel
}

func (r *Runner) ctx() context.Context {
	if r == nil || r.Ctx == nil {
		return context.Background()
	}
	return r.Ctx
}

// borrowPool hands a worker an idle machine pool, creating one when all are
// in use. A nil Runner (direct cell calls in tests) gets a nil pool, which
// acquireMachine treats as "always build fresh".
func (r *Runner) borrowPool() *hw.MachinePool {
	if r == nil {
		return nil
	}
	r.poolMu.Lock()
	defer r.poolMu.Unlock()
	if n := len(r.pools); n > 0 {
		p := r.pools[n-1]
		r.pools[n-1] = nil
		r.pools = r.pools[:n-1]
		return p
	}
	return hw.NewMachinePool()
}

// returnPool puts a worker's pool back for the next experiment on this
// Runner.
func (r *Runner) returnPool(p *hw.MachinePool) {
	if r == nil || p == nil {
		return
	}
	r.poolMu.Lock()
	r.pools = append(r.pools, p)
	r.poolMu.Unlock()
}

// runCells executes n independent cells on up to r.Parallel workers and
// returns their results in cell order. A failure cancels the cells not yet
// started; the lowest-indexed failure actually observed is returned after
// in-flight cells drain. Cancellation of the runner's own context wins only
// when no cell failed outright.
func runCells[T any](r *Runner, n int, cell func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := r.workers()
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(r.ctx())
	defer cancel()

	out := make([]T, n)
	var (
		mu      sync.Mutex
		errIdx  = n
		cellErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, cellErr = i, err
		}
		mu.Unlock()
		cancel()
	}

	if workers == 1 {
		// Serial fast path: no goroutines, deterministic by construction.
		pool := r.borrowPool()
		cctx := withPool(ctx, pool)
		for i := 0; i < n && ctx.Err() == nil; i++ {
			v, err := cell(cctx, i)
			if err != nil {
				fail(i, err)
				break
			}
			out[i] = v
		}
		r.returnPool(pool)
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				// Each worker owns a machine pool for the whole fan-out:
				// per-cell reuse stays lock-free and deterministic.
				pool := r.borrowPool()
				defer r.returnPool(pool)
				cctx := withPool(ctx, pool)
				for i := range idx {
					if ctx.Err() != nil {
						continue // drain the channel without running cells
					}
					v, err := cell(cctx, i)
					if err != nil {
						fail(i, err)
						continue
					}
					out[i] = v
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	if cellErr != nil {
		return nil, cellErr
	}
	if err := r.ctx().Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// RunCells is the exported face of runCells for deterministic harnesses
// outside the experiment registry (the scenario matrix): n independent
// cells fan out across the runner's bounded worker pool, each worker
// carrying its own machine pool in the cell context (AcquireMachine), and
// results land in cell order — serial and parallel runs are identical.
func RunCells[T any](r *Runner, n int, cell func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return runCells(r, n, cell)
}

// runFlat is runCells for experiments whose cells each yield a slice of
// rows: the per-cell groups are concatenated in cell order.
func runFlat[T any](r *Runner, n int, cell func(ctx context.Context, i int) ([]T, error)) ([]T, error) {
	groups, err := runCells(r, n, cell)
	if err != nil {
		return nil, err
	}
	var out []T
	for _, g := range groups {
		out = append(out, g...)
	}
	return out, nil
}

// runFuncs executes a fixed list of heterogeneous cells (each already bound
// to its parameters) and concatenates their row groups in list order — the
// shape E3, E7 and E9 decompose into.
func runFuncs[T any](r *Runner, cells []func(ctx context.Context) ([]T, error)) ([]T, error) {
	return runFlat(r, len(cells), func(ctx context.Context, i int) ([]T, error) {
		return cells[i](ctx)
	})
}
