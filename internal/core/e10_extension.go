package core

import (
	"context"
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/mk"
	"vmmk/internal/mkos"
	"vmmk/internal/trace"
	"vmmk/internal/vmm"
	"vmmk/internal/vmmos"
)

// E10 reproduces the extension-complexity claim of §2.2: "For extensions
// that are not an existing operating system, the VMM's interfaces
// significantly increase the complexity of software design." The same
// minimal service — a key-value cache with identical logic and identical
// per-request service cost — is built both ways (mkos.KVServer,
// vmmos.KVAppliance); the experiment counts the kernel interface surface
// each must program against to boot and to serve, plus per-request cost.

func init() {
	Register(Spec{
		ID:     "e10",
		Title:  "minimal-extension interface complexity",
		Params: []Param{paramSyscalls},
		Run: func(_ context.Context, r *Runner, p Params) (*Result, error) {
			rows, err := r.E10(p.Int("syscalls"))
			if err != nil {
				return nil, err
			}
			return NewResult(e10Table(rows)), nil
		},
	})
}

// E10Row is one platform's measurement.
type E10Row struct {
	Platform        string
	BootPrimitives  int      // distinct privileged interfaces used to set up
	BootNames       []string //  which ones
	ServePrimitives int      // distinct interfaces per steady-state request
	CyclesPerGet    uint64
}

// RunE10 boots the extension on both systems and serves n get requests.
func RunE10(n int) ([]E10Row, error) { return DefaultRunner().E10(n) }

// E10 boots each platform's extension in its own cell.
func (r *Runner) E10(n int) ([]E10Row, error) {
	if n <= 0 {
		n = 100
	}
	cells := []func(context.Context) ([]E10Row, error){
		// --- Microkernel: one thread, one handler, IPC only.
		func(ctx context.Context) ([]E10Row, error) {
			m, release := acquireMachine(ctx, hw.X86(), &hw.MachineConfig{Frames: 512})
			defer release()
			k := mk.New(m)
			snap := m.Rec.Snapshot()
			kv, err := mkos.NewKVServer(k)
			if err != nil {
				return nil, err
			}
			cs, err := k.NewSpace("client", mk.NilThread)
			if err != nil {
				return nil, err
			}
			client := k.NewThread(cs, "client", 1, nil)
			if err := kv.Put(client.ID, "k", []byte("v")); err != nil {
				return nil, err
			}
			boot := distinctSince(m.Rec, snap)

			snap2 := m.Rec.Snapshot()
			t0 := m.Now()
			for i := 0; i < n; i++ {
				if _, ok, err := kv.Get(client.ID, "k"); err != nil || !ok {
					return nil, fmt.Errorf("E10 mk get: ok=%v err=%v", ok, err)
				}
			}
			serve := distinctSince(m.Rec, snap2)
			return []E10Row{{
				Platform:        "mk",
				BootPrimitives:  len(boot),
				BootNames:       kindNames(boot),
				ServePrimitives: len(serve),
				CyclesPerGet:    uint64(m.Now()-t0) / uint64(n),
			}}, nil
		},
		// --- VMM: a domain with hooks, channels and grants.
		func(ctx context.Context) ([]E10Row, error) {
			m, release := acquireMachine(ctx, hw.X86(), &hw.MachineConfig{Frames: 1024})
			defer release()
			h, _, err := vmm.New(m, 64)
			if err != nil {
				return nil, err
			}
			snap := m.Rec.Snapshot()
			appDom, err := h.CreateDomain("kv", 64)
			if err != nil {
				return nil, err
			}
			app := vmmos.NewKVAppliance(h, appDom)
			clDom, err := h.CreateDomain("client", 64)
			if err != nil {
				return nil, err
			}
			cgk := vmmos.NewGuestKernel(h, clDom)
			cl, err := app.Connect(cgk)
			if err != nil {
				return nil, err
			}
			if err := cl.Put("k", []byte("v")); err != nil {
				return nil, err
			}
			boot := distinctSince(m.Rec, snap)

			snap2 := m.Rec.Snapshot()
			t0 := m.Now()
			for i := 0; i < n; i++ {
				if _, ok, err := cl.Get("k"); err != nil || !ok {
					return nil, fmt.Errorf("E10 vmm get: ok=%v err=%v", ok, err)
				}
			}
			serve := distinctSince(m.Rec, snap2)
			return []E10Row{{
				Platform:        "vmm",
				BootPrimitives:  len(boot),
				BootNames:       kindNames(boot),
				ServePrimitives: len(serve),
				CyclesPerGet:    uint64(m.Now()-t0) / uint64(n),
			}}, nil
		},
	}
	return runFuncs(r, cells)
}

// distinctSince returns the primitive kinds whose counters moved since the
// snapshot.
func distinctSince(rec *trace.Recorder, snap trace.Snapshot) []trace.Kind {
	var out []trace.Kind
	for k := trace.Kind(0); int(k) < trace.NKinds; k++ {
		if !k.IsMKPrimitive() && !k.IsVMMPrimitive() {
			continue
		}
		if rec.CountsSince(snap, k) > 0 {
			out = append(out, k)
		}
	}
	return out
}

// e10Table builds the registry table.
func e10Table(rows []E10Row) *ResultTable {
	t := NewResultTable(
		"E10 — minimal extension (KV cache): interface surface and cost (paper §2.2)",
		Col("platform", ""), Col("boot primitives", "primitives"),
		Col("serve primitives", "primitives"), Col("cyc/get", "cycles"),
	)
	for _, r := range rows {
		t.AddRow(r.Platform, r.BootPrimitives, r.ServePrimitives, r.CyclesPerGet)
	}
	return t
}

// E10Table renders the comparison (compatibility wrapper over the
// registry's Result model).
func E10Table(rows []E10Row) *trace.Table { return e10Table(rows).Trace() }
