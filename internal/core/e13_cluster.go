package core

import (
	"context"
	"fmt"

	"vmmk/internal/cluster"
	"vmmk/internal/hw"
)

// E13 lifts the simulator to fleet scale — the level where the paper's
// closing argument (VMMs won because they manage whole systems) actually
// bites. Each cell boots a fleet of hosts under one placement control
// plane (internal/cluster) and drives it through a seeded churn of guest
// arrivals and departures: admission under 150% memory overcommit realized
// by balloon squeezing, plus policy-driven live migrations over a costed
// network link — consolidation sweeps for bin-packing, leveling moves for
// spread. The table reports how consolidated the fleet ends up, what the
// migrations cost in guest-observable downtime (p99), and how often the
// fleet broke service (rejections + downtime SLO misses).

func init() {
	Register(Spec{
		ID:    "e13",
		Title: "fleet placement, overcommit and cross-host migration",
		Params: []Param{
			{Name: "fleet", Kind: ParamIntList, DefaultList: []int{2, 4, 8}, Max: 64,
				Unit: "hosts", Help: "comma-separated fleet sizes for the E13 cluster sweep"},
			{Name: "churn", Kind: ParamIntList, DefaultList: []int{24, 96}, Max: 1 << 16,
				Unit: "events", Help: "comma-separated churn event counts for E13"},
			{Name: "hostframes", Kind: ParamInt, DefaultInt: 192, Max: 1 << 20,
				Unit: "pages", Help: "physical memory pages per E13 host"},
		},
		Run: func(_ context.Context, r *Runner, p Params) (*Result, error) {
			cfg := E13Config{
				Fleets:     p.IntList("fleet"),
				Churns:     p.IntList("churn"),
				HostFrames: p.Int("hostframes"),
			}
			rows, err := r.E13(cfg)
			if err != nil {
				return nil, err
			}
			return NewResult(e13Table(rows)), nil
		},
	})
}

// E13Config parameterises the fleet sweep. Zero fields are normalized by
// the same derivation everywhere, so the CLI and direct API callers get
// identical defaults.
type E13Config struct {
	Fleets     []int // fleet sizes (hosts per cell); default {2, 4, 8}
	Churns     []int // churn event counts; default {24, 96}
	HostFrames int   // physical pages per host; default 192
	// SLO is the downtime service-level objective in cycles; migrations
	// whose blackout exceeds it count as violations. Zero means the
	// published default of 10000.
	SLO hw.Cycles
}

// E13Defaults returns the fully normalized default sweep — the same
// configuration `vmmklab e13` runs with default flags.
func E13Defaults() E13Config {
	var c E13Config
	c.defaults()
	return c
}

// defaults normalizes zero fields in place.
func (c *E13Config) defaults() {
	if len(c.Fleets) == 0 {
		c.Fleets = []int{2, 4, 8}
	}
	if len(c.Churns) == 0 {
		c.Churns = []int{24, 96}
	}
	if c.HostFrames <= 0 {
		c.HostFrames = 192
	}
	if c.SLO <= 0 {
		c.SLO = 10000
	}
}

// E13Row is one fleet cell's measurement.
type E13Row struct {
	Fleet      int     // hosts in the fleet
	Churn      int     // churn events driven
	Policy     string  // placement policy
	Placed     int     // admissions granted
	Rejected   int     // admissions rejected
	Migrations int     // live migrations completed
	ConsolPct  float64 // committed pages / in-use host capacity, percent
	P99Cyc     uint64  // p99 migration downtime, cycles
	SLOViol    int     // rejections + downtime SLO misses
}

// RunE13 runs the sweep on the default parallel runner.
func RunE13(cfg E13Config) ([]E13Row, error) { return DefaultRunner().E13(cfg) }

// E13 fans one cell out per (fleet size, churn count, policy) triple.
// Every cell boots its own fleet from the worker's machine pool and seeds
// its own churn stream from the cell parameters, so the table is
// byte-identical at any -parallel width.
func (r *Runner) E13(cfg E13Config) ([]E13Row, error) {
	cfg.defaults()
	type cellCfg struct {
		fleet, churn int
		policy       cluster.Policy
	}
	var cells []cellCfg
	for _, fleet := range cfg.Fleets {
		for _, churn := range cfg.Churns {
			for _, pol := range cluster.Policies {
				cells = append(cells, cellCfg{fleet, churn, pol})
			}
		}
	}
	return runCells(r, len(cells), func(ctx context.Context, i int) (E13Row, error) {
		c := cells[i]
		return e13Cell(ctx, c.fleet, c.churn, cfg.HostFrames, c.policy, cfg.SLO)
	})
}

// e13Cell boots one fleet, runs its churn, and reads the meters.
func e13Cell(ctx context.Context, fleet, churn, hostFrames int, pol cluster.Policy, slo hw.Cycles) (E13Row, error) {
	src := func(mc *hw.MachineConfig) (*hw.Machine, func()) {
		return acquireMachine(ctx, hw.X86(), mc)
	}
	cl, err := cluster.New(cluster.Config{
		Hosts:      fleet,
		HostFrames: hostFrames,
		Policy:     pol,
	}, src)
	if err != nil {
		return E13Row{}, err
	}
	defer cl.Close()
	seed := 0xE13 ^ uint64(fleet)<<32 ^ uint64(churn)<<12 ^ uint64(pol)
	// Guests sized a healthy fraction of a host make admission control and
	// the balloon squeeze actually work for their keep: small fleets run
	// out of commitment headroom under sustained churn.
	opts := cluster.ChurnOpts{Events: churn, Seed: seed, MinPages: 12, MaxPages: 44}
	if err := cl.RunChurn(opts); err != nil {
		return E13Row{}, fmt.Errorf("E13 fleet=%d churn=%d %s: %w", fleet, churn, pol, err)
	}
	s := cl.Stats()
	return E13Row{
		Fleet:      fleet,
		Churn:      churn,
		Policy:     pol.String(),
		Placed:     s.Placed,
		Rejected:   s.Rejected,
		Migrations: s.Migrations,
		ConsolPct:  cl.ConsolidationPct(),
		P99Cyc:     uint64(s.DowntimeP99()),
		SLOViol:    s.SLOViolations(slo),
	}, nil
}

// e13Table builds the registry table.
func e13Table(rows []E13Row) *ResultTable {
	t := NewResultTable(
		"E13 — fleet placement and migration under churn (paper §4)",
		Col("fleet", "hosts"), Col("churn", "events"), Col("policy", ""),
		Col("placed", "domains"), Col("rejected", "domains"),
		Col("migrations", "count"), Col("consol", "%"),
		Col("downtime p99", "cycles"), Col("slo viol", "count"),
	)
	for _, r := range rows {
		t.AddRow(r.Fleet, r.Churn, r.Policy, r.Placed, r.Rejected,
			r.Migrations, fmt.Sprintf("%.1f", r.ConsolPct), r.P99Cyc, r.SLOViol)
	}
	return t
}
