package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"vmmk/internal/fslite"
	"vmmk/internal/hw"
	"vmmk/internal/simrand"
)

// platformDev adapts any Platform's storage interface to fslite.BlockDev,
// so the same filesystem code can be mounted over every stack.
type platformDev struct {
	p     Platform
	guest int
}

func (d platformDev) Read(block uint64) ([]byte, error) { return d.p.StorageRead(d.guest, block) }
func (d platformDev) Write(block uint64, data []byte) error {
	return d.p.StorageWrite(d.guest, block, data)
}

// TestFsliteOverEveryStorageStack is the §2.2 reuse claim as an integration
// test: one filesystem implementation, unchanged, over (a) the
// microkernel's storage server, (b) a Parallax virtual disk on the VMM, and
// (c) the native in-kernel path. Same bytes in, same bytes out, everywhere.
func TestFsliteOverEveryStorageStack(t *testing.T) {
	builders := []func() (Platform, error){
		func() (Platform, error) { return NewMKStack(Config{}) },
		func() (Platform, error) { return NewXenStack(Config{}) },
		func() (Platform, error) { return NewNativeStack(Config{}) },
	}
	for _, build := range builders {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		t.Run(p.Name(), func(t *testing.T) {
			dev := platformDev{p: p, guest: 0}
			fs, err := fslite.Mkfs(dev, p.M().Mem.PageSize(), 128)
			if err != nil {
				t.Fatal(err)
			}
			want := bytes.Repeat([]byte("component reuse! "), 500) // ~8.5KB, multi-block
			if err := fs.WriteFile("motd", want); err != nil {
				t.Fatal(err)
			}
			if err := fs.WriteFile("config", []byte("small")); err != nil {
				t.Fatal(err)
			}
			got, err := fs.ReadFile("motd")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("content corrupted through the storage stack")
			}
			// Remount from the same device: metadata survived the stack.
			fs2, err := fslite.Mount(dev, p.M().Mem.PageSize())
			if err != nil {
				t.Fatal(err)
			}
			if len(fs2.List()) != 2 {
				t.Fatalf("remount lost files: %v", fs2.List())
			}
			got2, err := fs2.ReadFile("motd")
			if err != nil || !bytes.Equal(got2, want) {
				t.Fatal("remounted content mismatch")
			}
		})
	}
}

// TestFsliteSurvivesStorageServerCrashOnlyBeforehand pins the E4 story at
// the filesystem level: data written before the storage service dies is
// unrecoverable through that service afterwards, but the client can still
// compute (its kernel survives).
func TestFsliteStorageCrashSemantics(t *testing.T) {
	for _, build := range []func() (Platform, error){
		func() (Platform, error) { return NewMKStack(Config{}) },
		func() (Platform, error) { return NewXenStack(Config{}) },
	} {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		dev := platformDev{p: p, guest: 0}
		fs, err := fslite.Mkfs(dev, p.M().Mem.PageSize(), 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("doomed", []byte("data")); err != nil {
			t.Fatal(err)
		}
		p.KillStorage()
		if err := fs.WriteFile("after", []byte("x")); err == nil {
			t.Fatalf("%s: write through dead storage service succeeded", p.Name())
		}
		// The guest still computes.
		if err := p.DoSyscall(0, 1, 0); err != nil {
			t.Fatalf("%s: guest dead after storage crash: %v", p.Name(), err)
		}
	}
}

// diffOp is one step of the differential workload.
type diffOp struct {
	kind int // 0 syscall, 1 inject+drain, 2 storage write, 3 storage read, 4 net send
	arg  uint64
}

func genOps(seed uint64, n int) []diffOp {
	r := simrand.New(seed)
	ops := make([]diffOp, n)
	for i := range ops {
		ops[i] = diffOp{kind: r.Intn(5), arg: r.Uint64n(16)}
	}
	return ops
}

// TestDifferentialSemantics replays identical randomized operation
// sequences on both stacks and demands identical observable semantics:
// same packets delivered, same storage contents read back, same success/
// failure pattern. The paper says the two structures are the same animal;
// this is the behavioural half of that claim (the performance half is E1-E9).
func TestDifferentialSemantics(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ops := genOps(seed, 60)
			type result struct {
				recvs int
				errs  int
				reads map[uint64]string
			}
			runOn := func(p Platform) result {
				res := result{reads: make(map[uint64]string)}
				for _, op := range ops {
					switch op.kind {
					case 0:
						if err := p.DoSyscall(0, 1, op.arg); err != nil {
							res.errs++
						}
					case 1:
						p.InjectPackets(1, 64+int(op.arg)*32, 0)
						res.recvs += p.DrainRx(0)
					case 2:
						data := []byte(fmt.Sprintf("blk-%d-%d", op.arg, seed))
						if err := p.StorageWrite(0, op.arg, data); err != nil {
							res.errs++
						}
					case 3:
						data, err := p.StorageRead(0, op.arg)
						if err != nil {
							res.errs++
						} else {
							res.reads[op.arg] = string(bytes.TrimRight(data, "\x00"))
						}
					case 4:
						if err := p.SendPackets(1, 64+int(op.arg)*8, 0); err != nil {
							res.errs++
						}
					}
				}
				return res
			}
			mkStack, err := NewMKStack(Config{})
			if err != nil {
				t.Fatal(err)
			}
			xen, err := NewXenStack(Config{})
			if err != nil {
				t.Fatal(err)
			}
			a, b := runOn(mkStack), runOn(xen)
			if a.recvs != b.recvs {
				t.Errorf("packet deliveries differ: mk=%d vmm=%d", a.recvs, b.recvs)
			}
			if a.errs != b.errs {
				t.Errorf("error patterns differ: mk=%d vmm=%d", a.errs, b.errs)
			}
			for blk, v := range a.reads {
				if b.reads[blk] != v {
					t.Errorf("block %d reads differ: mk=%q vmm=%q", blk, v, b.reads[blk])
				}
			}
		})
	}
}

// TestDifferentialSemanticsOnARM repeats the differential replay on a
// different architecture: behavioural equivalence of the two structures is
// not an x86 artifact.
func TestDifferentialSemanticsOnARM(t *testing.T) {
	ops := genOps(42, 40)
	type result struct{ recvs, errs int }
	runOn := func(p Platform) result {
		var res result
		for _, op := range ops {
			switch op.kind {
			case 0:
				if err := p.DoSyscall(0, 1, op.arg); err != nil {
					res.errs++
				}
			case 1:
				p.InjectPackets(1, 64+int(op.arg)*32, 0)
				res.recvs += p.DrainRx(0)
			case 2:
				if err := p.StorageWrite(0, op.arg, []byte("arm")); err != nil {
					res.errs++
				}
			case 3:
				if _, err := p.StorageRead(0, op.arg); err != nil {
					res.errs++
				}
			case 4:
				if err := p.SendPackets(1, 64, 0); err != nil {
					res.errs++
				}
			}
		}
		return res
	}
	arm := hw.ARM()
	mkStack, err := NewMKStack(Config{Arch: arm})
	if err != nil {
		t.Fatal(err)
	}
	xen, err := NewXenStack(Config{Arch: hw.ARM()})
	if err != nil {
		t.Fatal(err)
	}
	a, b := runOn(mkStack), runOn(xen)
	if a != b {
		t.Fatalf("ARM differential mismatch: mk=%+v vmm=%+v", a, b)
	}
}

// TestQuickDifferentialStorage is a property-based version over the storage
// path alone: any write/read interleaving yields identical contents on both
// stacks.
func TestQuickDifferentialStorage(t *testing.T) {
	f := func(seed uint64) bool {
		r := simrand.New(seed)
		mkStack, err := NewMKStack(Config{})
		if err != nil {
			return false
		}
		xen, err := NewXenStack(Config{})
		if err != nil {
			return false
		}
		for i := 0; i < 12; i++ {
			blk := r.Uint64n(8)
			if r.Bool(0.5) {
				data := []byte(fmt.Sprintf("v%d", r.Intn(100)))
				e1 := mkStack.StorageWrite(0, blk, data)
				e2 := xen.StorageWrite(0, blk, data)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			} else {
				d1, e1 := mkStack.StorageRead(0, blk)
				d2, e2 := xen.StorageRead(0, blk)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
				if e1 == nil && !bytes.Equal(d1, d2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
