package core

// spec.go is the declarative experiment registry — the single source of
// truth the CLI, the report harness and the benchmarks all generate from.
// Each experiment file declares a Spec (id, title, typed parameters) and
// self-registers at init; adding experiment thirteen is one new file with
// one Register call, and the flag surface, validation, `list` output and
// the `all` sweep follow without touching cmd/vmmklab.

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ParamKind discriminates the value type of a Param.
type ParamKind int

// The supported parameter kinds.
const (
	// ParamInt is a single positive integer.
	ParamInt ParamKind = iota
	// ParamIntList is a comma-separated list of positive integers.
	ParamIntList
)

// Param declares one typed experiment parameter: its flag name, value kind,
// default, unit and bounds. Every experiment parameter must be positive —
// zero or negative values are usage errors, never silent clamps — and list
// parameters must be non-empty; Validate is the one validator the CLI, the
// registry and the tests all share.
type Param struct {
	// Name is the parameter (and CLI flag) name, e.g. "packets".
	Name string
	// Kind selects int or int-list semantics.
	Kind ParamKind
	// Help is the one-line flag description.
	Help string
	// Unit names the quantity for machine-readable output ("packets",
	// "pages", "cores", ...).
	Unit string
	// DefaultInt is the default for ParamInt parameters.
	DefaultInt int
	// DefaultList is the default for ParamIntList parameters.
	DefaultList []int
	// Max, when positive, bounds each value (list entries included).
	Max int
}

// Default returns the parameter's default value (an int or a fresh []int).
func (p Param) Default() any {
	if p.Kind == ParamIntList {
		return append([]int(nil), p.DefaultList...)
	}
	return p.DefaultInt
}

// DefaultString renders the default the way the CLI displays and re-parses
// it ("100", or "1,2,4,8" for lists).
func (p Param) DefaultString() string {
	if p.Kind == ParamIntList {
		parts := make([]string, len(p.DefaultList))
		for i, n := range p.DefaultList {
			parts[i] = strconv.Itoa(n)
		}
		return strings.Join(parts, ",")
	}
	return strconv.Itoa(p.DefaultInt)
}

// Parse converts flag text into a validated value of the parameter's kind.
// Errors are usage errors naming the offending flag.
func (p Param) Parse(s string) (any, error) {
	if p.Kind == ParamIntList {
		var out []int
		for _, part := range strings.Split(s, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			n, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("usage: -%s entries must be integers (got %q)", p.Name, part)
			}
			out = append(out, n)
		}
		if err := p.Validate(out); err != nil {
			return nil, err
		}
		return out, nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return nil, fmt.Errorf("usage: -%s must be an integer (got %q)", p.Name, s)
	}
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	return n, nil
}

// Validate checks a typed value against the parameter's constraints: every
// value must be positive and, when Max is set, at most Max; lists need at
// least one entry. Errors are usage errors naming the offending flag.
func (p Param) Validate(v any) error {
	if p.Kind == ParamIntList {
		list, ok := v.([]int)
		if !ok {
			return fmt.Errorf("usage: -%s wants a comma-separated integer list (got %T)", p.Name, v)
		}
		if len(list) == 0 {
			return fmt.Errorf("usage: -%s needs at least one value", p.Name)
		}
		for _, n := range list {
			if n < 1 {
				return fmt.Errorf("usage: -%s entries must be positive (got %d)", p.Name, n)
			}
			if p.Max > 0 && n > p.Max {
				return fmt.Errorf("usage: -%s entries must be at most %d (got %d)", p.Name, p.Max, n)
			}
		}
		return nil
	}
	n, ok := v.(int)
	if !ok {
		return fmt.Errorf("usage: -%s wants an integer (got %T)", p.Name, v)
	}
	if n < 1 {
		return fmt.Errorf("usage: -%s must be positive (got %d)", p.Name, n)
	}
	if p.Max > 0 && n > p.Max {
		return fmt.Errorf("usage: -%s must be at most %d (got %d)", p.Name, p.Max, n)
	}
	return nil
}

// Params carries one experiment invocation's parameter values by name.
// Values are int or []int (string values are accepted by Normalize, which
// parses them through the declaring Param — what the CLI feeds in).
type Params map[string]any

// Int returns the named int parameter, or 0 when absent.
func (ps Params) Int(name string) int {
	v, _ := ps[name].(int)
	return v
}

// IntList returns the named list parameter, or nil when absent.
func (ps Params) IntList(name string) []int {
	v, _ := ps[name].([]int)
	return v
}

// Spec declares one experiment: identifier, human title, typed parameters
// and the uniform entry point every experiment implements. Experiments
// self-register at init via Register.
type Spec struct {
	// ID is the experiment identifier ("e1" ... "e12").
	ID string
	// Title is the one-line description `list` and the report headers show.
	Title string
	// Params declares the experiment's parameters. Parameters shared
	// across experiments (one CLI flag) must be declared identically.
	Params []Param
	// Run executes the experiment on the given runner with normalized
	// parameters and returns its tables. RunExperiment stamps the Result
	// with the spec's id, title and the echoed params.
	Run func(ctx context.Context, r *Runner, p Params) (*Result, error)
}

// Param returns the declaration of the named parameter.
func (s Spec) Param(name string) (Param, bool) {
	for _, p := range s.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Defaults returns a fresh Params holding every declared default.
func (s Spec) Defaults() Params {
	out := make(Params, len(s.Params))
	for _, p := range s.Params {
		out[p.Name] = p.Default()
	}
	return out
}

// Normalize fills missing parameters with their defaults and validates
// everything through the shared validator. String values are parsed as flag
// text; unknown parameter names are usage errors. The input map is not
// modified.
func (s Spec) Normalize(p Params) (Params, error) {
	// Sorted so the error names the alphabetically first unknown parameter,
	// not whichever one map iteration happened to visit first.
	for _, name := range sortedKeys(p) {
		if _, ok := s.Param(name); !ok {
			return nil, fmt.Errorf("usage: experiment %s has no parameter -%s", s.ID, name)
		}
	}
	out := make(Params, len(s.Params))
	for _, d := range s.Params {
		v, ok := p[d.Name]
		if !ok || v == nil {
			out[d.Name] = d.Default()
			continue
		}
		if text, isText := v.(string); isText {
			parsed, err := d.Parse(text)
			if err != nil {
				return nil, err
			}
			out[d.Name] = parsed
			continue
		}
		if err := d.Validate(v); err != nil {
			return nil, err
		}
		if list, isList := v.([]int); isList {
			v = append([]int(nil), list...)
		}
		out[d.Name] = v
	}
	return out, nil
}

// paramSyscalls is the iteration-count parameter E3, E7 and E10 share: one
// CLI flag, one default, one validator.
var paramSyscalls = Param{
	Name: "syscalls", Kind: ParamInt, DefaultInt: 200, Max: 1 << 20,
	Unit: "ops", Help: "iteration count for E3/E7/E10",
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Spec{}
)

// Register adds a Spec to the experiment registry. It panics on a malformed
// spec, a duplicate id, or a parameter redeclared with a different shape
// than another spec's — the registry keeps exactly one flag per parameter
// name, so shared parameters must agree everywhere.
func Register(s Spec) {
	if s.ID == "" || s.Title == "" || s.Run == nil {
		panic(fmt.Sprintf("core: Register(%q): id, title and run are all required", s.ID))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.ID]; dup {
		panic(fmt.Sprintf("core: experiment %q registered twice", s.ID))
	}
	for _, p := range s.Params {
		if p.Name == "" {
			panic(fmt.Sprintf("core: experiment %q declares an unnamed parameter", s.ID))
		}
		// Sorted so a conflicting redeclaration panics with a stable
		// message naming the same prior experiment on every run.
		for _, id := range sortedKeys(registry) {
			if q, ok := registry[id].Param(p.Name); ok && !sameParamShape(p, q) {
				panic(fmt.Sprintf("core: parameter -%s declared differently by %q and %q", p.Name, s.ID, id))
			}
		}
	}
	registry[s.ID] = s
}

// sortedKeys returns a map's keys in sorted order, for iteration whose
// visit order must be deterministic.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sameParamShape reports whether two declarations of a shared parameter
// agree on everything a single CLI flag must agree on.
func sameParamShape(a, b Param) bool {
	if a.Kind != b.Kind || a.DefaultInt != b.DefaultInt || a.Max != b.Max ||
		a.Unit != b.Unit || a.Help != b.Help || len(a.DefaultList) != len(b.DefaultList) {
		return false
	}
	for i := range a.DefaultList {
		if a.DefaultList[i] != b.DefaultList[i] {
			return false
		}
	}
	return true
}

// Specs returns every registered experiment in natural id order (e2 before
// e10).
func Specs() []Spec {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return specLess(out[i].ID, out[j].ID) })
	return out
}

// Lookup returns the spec registered under id.
func Lookup(id string) (Spec, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[id]
	return s, ok
}

// specLess orders experiment ids by alphabetic prefix, then numeric suffix.
func specLess(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

// splitID separates an id's alphabetic prefix from its numeric suffix.
func splitID(id string) (string, int) {
	i := len(id)
	for i > 0 && id[i-1] >= '0' && id[i-1] <= '9' {
		i--
	}
	n, _ := strconv.Atoi(id[i:])
	return id[:i], n
}

// FlagParams returns the union of every registered parameter, one entry per
// name, in registry order — what a data-driven CLI binds its flags from.
func FlagParams() []Param {
	seen := map[string]bool{}
	var out []Param
	for _, s := range Specs() {
		for _, p := range s.Params {
			if !seen[p.Name] {
				seen[p.Name] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// RunExperiment runs the registered experiment id on the default parallel
// runner with the given parameters (nil means all defaults).
func RunExperiment(id string, p Params) (*Result, error) {
	return DefaultRunner().RunExperiment(context.Background(), id, p)
}

// RunExperiment normalizes p against the experiment's spec, runs it on this
// runner and returns the Result stamped with the experiment's id, title and
// the echoed normalized parameters. A non-background ctx cancels in-flight
// cells.
func (r *Runner) RunExperiment(ctx context.Context, id string, p Params) (*Result, error) {
	s, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (try 'list')", id)
	}
	np, err := s.Normalize(p)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if r == nil {
		r = DefaultRunner()
	}
	if ctx != context.Background() {
		// Rebind the context on a fresh Runner rather than copying r: a
		// Runner now owns a mutex-guarded machine-pool stack and must not
		// be duplicated. The bound runner starts with cold pools, which
		// only costs the first cell per worker a machine boot.
		r = &Runner{Parallel: r.Parallel, Ctx: ctx}
	}
	res, err := s.Run(ctx, r, np)
	if err != nil {
		return nil, err
	}
	res.Experiment = s.ID
	res.Title = s.Title
	res.Params = np
	return res, nil
}

// RegistryMarkdown renders the registered experiments and their parameters
// as the markdown table EXPERIMENTS.md embeds between its registry markers;
// the docs test pins the embedded copy to this output so the documentation
// can never drift from the registry.
func RegistryMarkdown() string {
	var b strings.Builder
	b.WriteString("| id | experiment | parameters |\n")
	b.WriteString("|----|------------|------------|\n")
	for _, s := range Specs() {
		var ps []string
		for _, p := range s.Params {
			unit := p.Unit
			if unit == "" {
				unit = "n"
			}
			ps = append(ps, fmt.Sprintf("`-%s` (%s, default `%s`)", p.Name, unit, p.DefaultString()))
		}
		cell := "—"
		if len(ps) > 0 {
			cell = strings.Join(ps, ", ")
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", s.ID, s.Title, cell)
	}
	return b.String()
}
