package core

import (
	"context"
	"fmt"

	"vmmk/internal/trace"
	"vmmk/internal/workload"
)

// E8 is the macro-benchmark of §3.3: a composite web-serving workload
// (receive request, consult storage, send response) run on the native
// baseline and on both paravirtualised stacks. HHL+97 reported L4Linux
// within a few percent of native for macro loads; the experiment reports
// each system's relative slowdown so the "OS as component works on both"
// claim is checkable.

func init() {
	Register(Spec{
		ID:    "e8",
		Title: "web-serving macro benchmark",
		Params: []Param{{
			Name: "requests", Kind: ParamInt, DefaultInt: 50, Max: 1 << 20,
			Unit: "requests", Help: "request count for E8",
		}},
		Run: func(_ context.Context, r *Runner, p Params) (*Result, error) {
			rows, err := r.E8(p.Int("requests"))
			if err != nil {
				return nil, err
			}
			return NewResult(e8Table(rows)), nil
		},
	})
}

// E8Row is one platform's macro result.
type E8Row struct {
	Platform     string
	Requests     int
	TotalCycles  uint64
	CyclesPerReq uint64
	RelativeCost float64 // vs native (1.0 = native speed)
}

// thinkCycles is the per-request application work (page rendering, string
// handling). Macro benchmarks are compute-diluted — this is what lets
// HHL+97 report few-percent overheads despite multi-x syscall
// microbenchmark costs; without it the experiment would measure only
// crossing overhead, which is E7's job.
const thinkCycles = 100_000

// RunE8 serves n web requests on each platform.
func RunE8(n int) ([]E8Row, error) { return DefaultRunner().E8(n) }

// E8 serves the same request stream on each platform in its own cell; the
// relative-cost column is derived from the native row after the cells join,
// so it is independent of which platform finishes first.
func (r *Runner) E8(n int) ([]E8Row, error) {
	if n <= 0 {
		n = 50
	}
	reqs := (workload.WebStream{N: n, WSBlocks: 32, Seed: 11}).Requests()
	serve := func(p Platform) (uint64, error) {
		// The per-request think-time charge goes to the app's own
		// component; intern its handle once, not per request.
		app := p.M().Rec.Intern("app." + p.Name())
		// Preload the working set so reads hit.
		for b := uint64(0); b < 32; b++ {
			if err := p.StorageWrite(0, b, []byte("content")); err != nil {
				return 0, err
			}
		}
		t0 := p.M().Now()
		for _, r := range reqs {
			p.InjectPackets(1, r.ReqSize, 0)
			if p.DrainRx(0) != 1 {
				return 0, fmt.Errorf("E8: request packet lost on %s", p.Name())
			}
			if _, err := p.StorageRead(0, r.Block); err != nil {
				return 0, err
			}
			if err := p.SendPackets(1, r.RespSize, 0); err != nil {
				return 0, err
			}
		}
		// The application think time lands as one deferred aggregate after
		// the request loop. Every device wait is scheduled relative to the
		// current clock, so moving this uniform per-request charge out of
		// the loop shifts intermediate timestamps but leaves the elapsed
		// total — the only thing the table reports — identical.
		p.M().CPU.WorkN(app, thinkCycles, uint64(len(reqs)))
		return uint64(p.M().Now() - t0), nil
	}

	builders := []func(Config) (Platform, error){
		func(c Config) (Platform, error) { return NewNativeStack(c) },
		func(c Config) (Platform, error) { return NewMKStack(c) },
		func(c Config) (Platform, error) { return NewXenStack(c) },
	}
	rows, err := runCells(r, len(builders), func(ctx context.Context, i int) (E8Row, error) {
		p, err := builders[i](Config{}.WithPool(ctx))
		if err != nil {
			return E8Row{}, err
		}
		defer p.Close()
		cyc, err := serve(p)
		if err != nil {
			return E8Row{}, err
		}
		return E8Row{Platform: p.Name(), Requests: n, TotalCycles: cyc, CyclesPerReq: cyc / uint64(n)}, nil
	})
	if err != nil {
		return nil, err
	}
	var nativeCyc uint64
	for _, row := range rows {
		if row.Platform == "native" {
			nativeCyc = row.TotalCycles
		}
	}
	for i := range rows {
		if rows[i].Platform == "native" {
			rows[i].RelativeCost = 1.0
		} else if nativeCyc > 0 {
			rows[i].RelativeCost = float64(rows[i].TotalCycles) / float64(nativeCyc)
		}
	}
	return rows, nil
}

// e8Table builds the registry table.
func e8Table(rows []E8Row) *ResultTable {
	t := NewResultTable(
		"E8 — web-serving macro workload (paper §3.3: paravirt OS works on both)",
		Col("platform", ""), Col("requests", "requests"),
		Col("cycles/request", "cycles"), Col("relative cost", "ratio"),
	)
	for _, r := range rows {
		t.AddRow(r.Platform, r.Requests, r.CyclesPerReq, fmt.Sprintf("%.2fx", r.RelativeCost))
	}
	return t
}

// E8Table renders the rows (compatibility wrapper over the registry's
// Result model).
func E8Table(rows []E8Row) *trace.Table { return e8Table(rows).Trace() }
