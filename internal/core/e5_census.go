package core

import (
	"context"
	"strings"

	"vmmk/internal/trace"
)

// E5 is the primitive census of §2.2: run an identical composite workload
// on both systems and count the distinct privileged primitives each
// exercises. The paper enumerates one extensibility primitive for the
// microkernel (IPC, with its transfer facets) against ten for the VMM,
// "each requiring a dedicated set of security mechanisms, resources, and
// kernel code".

func init() {
	Register(Spec{
		ID:    "e5",
		Title: "privileged-primitive census",
		Run: func(_ context.Context, r *Runner, _ Params) (*Result, error) {
			rows, err := r.E5()
			if err != nil {
				return nil, err
			}
			return NewResult(e5Table(rows)), nil
		},
	})
}

// E5Row is one platform's census.
type E5Row struct {
	Platform   string
	Count      int
	Primitives []string
	Mechanisms int // distinct security mechanisms backing those primitives
}

// securityMechanisms maps each primitive to the validation machinery the
// kernel must implement and get right for it — the "dedicated set of
// security mechanisms" of §2.2. The microkernel's facets share one set
// (partner validation + rights + the mapping database); each VMM primitive
// brings its own.
var securityMechanisms = map[trace.Kind][]string{
	// mk: every facet rides the same three checks.
	trace.KIPCSend:           {"partner-validation", "ipc-rights", "mapdb"},
	trace.KIPCReceive:        {"partner-validation", "ipc-rights", "mapdb"},
	trace.KIPCCall:           {"partner-validation", "ipc-rights", "mapdb"},
	trace.KIPCMapTransfer:    {"partner-validation", "ipc-rights", "mapdb"},
	trace.KIPCStringTransfer: {"partner-validation", "ipc-rights", "mapdb"},
	trace.KPagerFault:        {"partner-validation", "ipc-rights", "mapdb"},
	// vmm: one mechanism set per primitive.
	trace.KGuestUserToKernel: {"ring-transition-check"},
	trace.KGuestKernelToUser: {"iret-validation"},
	trace.KEvtchnSend:        {"port-binding-table"},
	trace.KHypercall:         {"hypercall-dispatch-validation"},
	trace.KShadowPTUpdate:    {"pte-ownership-validation"},
	trace.KPageFlip:          {"grant-table", "p2m-accounting", "tlb-shootdown"},
	trace.KExceptionBounce:   {"exception-reflection-state"},
	trace.KVirtIRQ:           {"virq-routing-table"},
	trace.KHardIRQInject:     {"irq-ownership-check"},
	trace.KVirtDeviceOp:      {"device-model-acl"},
	trace.KGrantMap:          {"grant-table"},
	trace.KGrantCopy:         {"grant-table", "buffer-ownership-check"},
	trace.KSyscallFastPath:   {"segment-exclusion-check"},
}

// distinctMechanisms returns the size of the union of mechanisms behind a
// set of exercised primitives.
func distinctMechanisms(kinds []trace.Kind) int {
	set := map[string]bool{}
	for _, k := range kinds {
		for _, m := range securityMechanisms[k] {
			set[m] = true
		}
	}
	return len(set)
}

// censusWorkload exercises every subsystem: syscalls, net RX/TX, storage,
// and a page fault (on mk).
func censusWorkload(p Platform) error {
	for i := 0; i < 5; i++ {
		if err := p.DoSyscall(0, 1, 0); err != nil {
			return err
		}
	}
	p.InjectPackets(5, 256, 0)
	p.DrainRx(0)
	if err := p.SendPackets(2, 256, 0); err != nil {
		return err
	}
	if err := p.StorageWrite(0, 1, []byte("census")); err != nil {
		return err
	}
	if _, err := p.StorageRead(0, 1); err != nil {
		return err
	}
	return nil
}

// RunE5 runs the census on fresh stacks.
func RunE5() ([]E5Row, error) { return DefaultRunner().E5() }

// E5 runs the two platform censuses as independent cells.
func (r *Runner) E5() ([]E5Row, error) {
	cells := []func(context.Context) ([]E5Row, error){
		// Microkernel.
		func(ctx context.Context) ([]E5Row, error) {
			s, err := NewMKStack(Config{}.WithPool(ctx))
			if err != nil {
				return nil, err
			}
			defer s.Close()
			if err := censusWorkload(s); err != nil {
				return nil, err
			}
			// Also provoke a page fault so the pager facet shows up.
			if _, err := s.K.Touch(s.OSes[0].Proc(s.Procs[0]).Thread.ID, 0x123, 2); err != nil {
				return nil, err
			}
			kinds := s.M().Rec.DistinctPrimitives("mk")
			return []E5Row{{
				Platform:   "mk",
				Count:      len(kinds),
				Primitives: kindNames(kinds),
				Mechanisms: distinctMechanisms(kinds),
			}}, nil
		},
		// VMM.
		func(ctx context.Context) ([]E5Row, error) {
			s, err := NewXenStack(Config{FastPath: true}.WithPool(ctx))
			if err != nil {
				return nil, err
			}
			defer s.Close()
			if err := censusWorkload(s); err != nil {
				return nil, err
			}
			// Provoke an exception bounce so primitive 7 shows up even with
			// the syscall fast path live.
			if _, err := s.H.GuestException(s.Guests[0].Dom.ID, 14, func() {}); err != nil {
				return nil, err
			}
			// Monitor-provided virtual device (primitive 10): console write.
			if err := s.H.VirtDeviceOp(s.Guests[0].Dom.ID, "console", 20); err != nil {
				return nil, err
			}
			kinds := s.M().Rec.DistinctPrimitives("vmm")
			return []E5Row{{
				Platform:   "vmm",
				Count:      len(kinds),
				Primitives: kindNames(kinds),
				Mechanisms: distinctMechanisms(kinds),
			}}, nil
		},
	}
	return runFuncs(r, cells)
}

func kindNames(kinds []trace.Kind) []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

// e5Table builds the registry table.
func e5Table(rows []E5Row) *ResultTable {
	t := NewResultTable(
		"E5 — distinct privileged primitives exercised by the same workload (paper §2.2)",
		Col("platform", ""), Col("count", "primitives"),
		Col("security mechanisms", "mechanisms"), Col("primitives", ""),
	)
	for _, r := range rows {
		t.AddRow(r.Platform, r.Count, r.Mechanisms, strings.Join(r.Primitives, " "))
	}
	return t
}

// E5Table renders the census (compatibility wrapper over the registry's
// Result model).
func E5Table(rows []E5Row) *trace.Table { return e5Table(rows).Trace() }
