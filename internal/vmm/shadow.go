package vmm

import (
	"errors"
	"fmt"
	"sort"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// Shadow paging: the pure-virtualisation MMU path. An unmodified guest
// writes page-table entries in its own memory as if it owned the hardware;
// the monitor write-protects those pages, takes a fault per update,
// emulates the write, and keeps a shadow table the real MMU walks. Per
// update that costs a trap + decode + validation instead of paravirt's
// batched, explicit hypercall — this gap is precisely why, as the paper
// puts it, VMMs diverged "from pure virtualisation (faithful representation
// of the underlying hardware) to paravirtualisation" (§2.2). Ablation E9g
// measures it.

// ShadowMMU tracks one domain's guest-visible page table and its shadow.
type ShadowMMU struct {
	h   *Hypervisor
	d   *Domain
	gpt map[hw.VPN]shadowGPTE // what the guest thinks it wrote
	// The shadow itself is the domain's real PT (d.PT), rebuilt from gpt
	// entries the monitor has validated.
	emulated uint64
	rejected uint64
}

type shadowGPTE struct {
	gpn   int
	perms hw.Perm
	user  bool
}

// EnableShadowMMU switches a domain to trap-and-emulate paging. The guest
// must stop using MMUUpdate (which is the paravirtual interface) and issue
// GuestPTWrite instead, which models an ordinary store into a
// write-protected page-table page.
func (h *Hypervisor) EnableShadowMMU(dom DomID) (*ShadowMMU, error) {
	d, err := h.lookup(dom)
	if err != nil {
		return nil, err
	}
	// Write-protecting the PT pages is itself monitor work.
	h.M.CPU.Work(h.comp, 800)
	return &ShadowMMU{h: h, d: d, gpt: make(map[hw.VPN]shadowGPTE)}, nil
}

// GuestPTWrite emulates one guest PTE store: the store faults (the page is
// write-protected), the monitor decodes the instruction, validates the new
// entry exactly as MMUUpdate would, updates the guest view and the shadow,
// and resumes the guest. Invalid entries are dropped from the shadow (the
// guest sees its write "succeed" — real hardware would fault on use).
func (s *ShadowMMU) GuestPTWrite(vpn hw.VPN, gpn int, perms hw.Perm, user bool) error {
	h, d := s.h, s.d
	if d.Dead {
		return ErrDomainDead
	}
	h.switchTo(d)
	// The write-protect fault: full trap into the monitor.
	h.M.CPU.Trap(h.comp, false)
	h.M.CPU.Charge(h.comp, trace.KExceptionBounce, h.M.Arch.Costs.CtxSave)
	// Instruction decode + emulation of the store.
	h.M.CPU.Work(h.comp, 180)
	s.gpt[vpn] = shadowGPTE{gpn: gpn, perms: perms, user: user}
	// Validation identical to the paravirtual path's.
	f := d.FrameAt(gpn)
	if f == hw.NoFrame || !d.OwnsFrame(f) {
		s.rejected++
		d.PT.Unmap(vpn) // shadow must not map what the guest may not have
		h.M.CPU.Charge(h.comp, trace.KShadowPTUpdate, h.M.Arch.Costs.PrivCheck)
		h.M.CPU.ReturnTo(h.comp, hw.Ring1)
		return nil // the *guest* write succeeded; the shadow just ignores it
	}
	d.PT.Map(vpn, hw.PTE{Frame: f, Perms: perms, User: user})
	s.emulated++
	h.M.CPU.Charge(h.comp, trace.KShadowPTUpdate, h.M.Arch.Costs.PTEUpdate)
	h.M.CPU.FlushTLBEntry(h.comp, d.PT.ASID(), vpn)
	// A shadow entry changed under every vCPU of the domain: pCPUs other
	// than the monitor's must drop their stale translation by shootdown.
	h.shootdownEntry(d, vpn)
	h.M.CPU.ReturnTo(h.comp, hw.Ring1)
	return nil
}

// ---------------------------------------------------------------------------
// Dirty-page logging: the write-fault half of shadow paging repurposed for
// live pre-copy migration. Arming the log write-protects every writable
// mapping of the domain's pages; the first guest store to an armed page
// faults into the monitor, which logs the guest page number, restores the
// page's write permissions and resumes the guest. Each pre-copy round
// re-arms the log and consumes the pages dirtied during the previous round
// — exactly the mechanism behind Xen's log-dirty mode.

// ErrDirtyLogActive is returned when enabling a second dirty log on a
// domain whose log is already armed.
var ErrDirtyLogActive = errors.New("vmm: dirty log already enabled")

// DirtyLog tracks which guest pages a domain wrote since the last (re)arm.
type DirtyLog struct {
	h *Hypervisor
	d *Domain

	armed map[int]bool     // gpn -> write-protected, next store faults
	dirty map[int]bool     // gpn -> written since the last (re)arm
	wprot map[int][]hw.VPN // gpn -> mappings whose PermW the log removed

	faults uint64
}

// EnableDirtyLog arms write-fault-driven dirty-page tracking on a domain
// and returns its log. The domain keeps running; only its first store to
// each page per round pays a fault.
func (h *Hypervisor) EnableDirtyLog(dom DomID) (*DirtyLog, error) {
	d, err := h.lookup(dom)
	if err != nil {
		return nil, err
	}
	if d.dirtyLog != nil {
		return nil, ErrDirtyLogActive
	}
	dl := &DirtyLog{
		h:     h,
		d:     d,
		armed: make(map[int]bool),
		dirty: make(map[int]bool),
		wprot: make(map[int][]hw.VPN),
	}
	d.dirtyLog = dl
	h.M.CPU.Work(h.comp, 400) // log-dirty mode switch
	dl.arm()
	return dl, nil
}

// DisableDirtyLog restores the domain's write permissions and detaches the
// log. Destroyed domains are fine: there is nothing left to restore.
func (h *Hypervisor) DisableDirtyLog(dom DomID) {
	d := h.dom(dom)
	if d == nil || d.dirtyLog == nil {
		return
	}
	dl := d.dirtyLog
	for gpn := range dl.armed {
		dl.disarm(gpn)
	}
	d.dirtyLog = nil
}

// arm write-protects every owned page not already protected. Pages still
// armed from a previous round are skipped — their write permissions are
// already stripped, and their wprot record (which mappings to restore on
// disarm) must survive untouched. One pass over the page table builds the
// frame -> writable-VPNs index, so a round costs O(entries), not
// O(frames × entries).
func (dl *DirtyLog) arm() {
	h, d := dl.h, dl.d
	byFrame := d.PT.WritableByFrame()
	for gpn, f := range d.frames {
		if f == hw.NoFrame || !d.OwnsFrame(f) || dl.armed[gpn] {
			continue
		}
		vpns := byFrame[f]
		for _, vpn := range vpns {
			e, _ := d.PT.Lookup(vpn)
			e.Perms &^= hw.PermW
			d.PT.Map(vpn, e)
			h.M.CPU.Charge(h.comp, trace.KShadowPTUpdate, h.M.Arch.Costs.PTEUpdate)
		}
		dl.wprot[gpn] = vpns
		dl.armed[gpn] = true
	}
	// Stale writable translations must go before protection is real — on
	// every pCPU hosting one of the domain's vCPUs, not just the boot CPU
	// the monitor runs on. This per-round broadcast is why log-dirty mode
	// gets more expensive with core count (E12's dirty-scan workload).
	h.M.CPU.FlushTLB(h.comp)
	h.shootdownAll(d)
}

// disarm restores the write permissions the log removed from gpn's
// mappings and takes the page off the armed set.
func (dl *DirtyLog) disarm(gpn int) {
	d := dl.d
	for _, vpn := range dl.wprot[gpn] {
		if e, ok := d.PT.Lookup(vpn); ok {
			e.Perms |= hw.PermW
			d.PT.Map(vpn, e)
		}
	}
	delete(dl.wprot, gpn)
	delete(dl.armed, gpn)
}

// fault is the write-protect fault path: trap, decode, log, unprotect.
func (dl *DirtyLog) fault(gpn int) {
	h, d := dl.h, dl.d
	dl.faults++
	h.switchTo(d)
	h.M.CPU.Trap(h.comp, false)
	h.M.CPU.Charge(h.comp, trace.KExceptionBounce, h.M.Arch.Costs.CtxSave)
	h.M.CPU.Work(h.comp, 120) // decode + log-dirty bookkeeping
	dl.dirty[gpn] = true
	nvpns := len(dl.wprot[gpn])
	dl.disarm(gpn) // later stores to this page are full speed until re-arm
	if nvpns == 0 {
		nvpns = 1
	}
	h.M.CPU.Charge(h.comp, trace.KDirtyLogFault,
		hw.Cycles(nvpns)*h.M.Arch.Costs.PTEUpdate)
	h.M.CPU.ReturnTo(h.comp, hw.Ring1)
}

// Dirty returns the pages written since the last (re)arm, ascending.
func (dl *DirtyLog) Dirty() []int {
	out := make([]int, 0, len(dl.dirty))
	for gpn := range dl.dirty {
		out = append(out, gpn)
	}
	sort.Ints(out)
	return out
}

// Rearm collects the current dirty set, clears it and write-protects the
// domain's pages again — one pre-copy round boundary. It returns the pages
// dirtied since the previous arm, ascending.
func (dl *DirtyLog) Rearm() []int {
	out := dl.Dirty()
	dl.dirty = make(map[int]bool)
	dl.arm()
	return out
}

// Faults returns how many write-protect faults the log has taken.
func (dl *DirtyLog) Faults() uint64 { return dl.faults }

// GuestMemWrite models a guest store of data into its page gpn at byte
// offset off. With an armed dirty log the first store to a page takes the
// write-protect fault above; otherwise it is ordinary guest work. This is
// the mutation path the live-migration experiments drive.
func (h *Hypervisor) GuestMemWrite(dom DomID, gpn, off int, data []byte) error {
	d, err := h.lookup(dom)
	if err != nil {
		return err
	}
	f := d.FrameAt(gpn)
	if f == hw.NoFrame || !d.OwnsFrame(f) {
		return ErrFrameNotOwned
	}
	page := h.M.Mem.Data(f)
	if off < 0 || off+len(data) > len(page) {
		return fmt.Errorf("vmm: guest write [%d,%d) outside page", off, off+len(data))
	}
	if dl := d.dirtyLog; dl != nil && dl.armed[gpn] {
		dl.fault(gpn)
	}
	h.M.CPU.Work(d.comp, h.M.CPU.CopyCost(uint64(len(data))))
	copy(page[off:], data)
	return nil
}

// GuestPTEntry returns what the guest believes it wrote at vpn.
func (s *ShadowMMU) GuestPTEntry(vpn hw.VPN) (gpn int, perms hw.Perm, ok bool) {
	e, found := s.gpt[vpn]
	if !found {
		return 0, 0, false
	}
	return e.gpn, e.perms, true
}

// Stats returns emulated and rejected update counts.
func (s *ShadowMMU) Stats() (emulated, rejected uint64) { return s.emulated, s.rejected }
