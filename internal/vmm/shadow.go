package vmm

import (
	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// Shadow paging: the pure-virtualisation MMU path. An unmodified guest
// writes page-table entries in its own memory as if it owned the hardware;
// the monitor write-protects those pages, takes a fault per update,
// emulates the write, and keeps a shadow table the real MMU walks. Per
// update that costs a trap + decode + validation instead of paravirt's
// batched, explicit hypercall — this gap is precisely why, as the paper
// puts it, VMMs diverged "from pure virtualisation (faithful representation
// of the underlying hardware) to paravirtualisation" (§2.2). Ablation E9g
// measures it.

// ShadowMMU tracks one domain's guest-visible page table and its shadow.
type ShadowMMU struct {
	h   *Hypervisor
	d   *Domain
	gpt map[hw.VPN]shadowGPTE // what the guest thinks it wrote
	// The shadow itself is the domain's real PT (d.PT), rebuilt from gpt
	// entries the monitor has validated.
	emulated uint64
	rejected uint64
}

type shadowGPTE struct {
	gpn   int
	perms hw.Perm
	user  bool
}

// EnableShadowMMU switches a domain to trap-and-emulate paging. The guest
// must stop using MMUUpdate (which is the paravirtual interface) and issue
// GuestPTWrite instead, which models an ordinary store into a
// write-protected page-table page.
func (h *Hypervisor) EnableShadowMMU(dom DomID) (*ShadowMMU, error) {
	d := h.domains[dom]
	if d == nil {
		return nil, ErrNoSuchDomain
	}
	if d.Dead {
		return nil, ErrDomainDead
	}
	// Write-protecting the PT pages is itself monitor work.
	h.M.CPU.Work(HypervisorComponent, 800)
	return &ShadowMMU{h: h, d: d, gpt: make(map[hw.VPN]shadowGPTE)}, nil
}

// GuestPTWrite emulates one guest PTE store: the store faults (the page is
// write-protected), the monitor decodes the instruction, validates the new
// entry exactly as MMUUpdate would, updates the guest view and the shadow,
// and resumes the guest. Invalid entries are dropped from the shadow (the
// guest sees its write "succeed" — real hardware would fault on use).
func (s *ShadowMMU) GuestPTWrite(vpn hw.VPN, gpn int, perms hw.Perm, user bool) error {
	h, d := s.h, s.d
	if d.Dead {
		return ErrDomainDead
	}
	h.switchTo(d)
	// The write-protect fault: full trap into the monitor.
	h.M.CPU.Trap(HypervisorComponent, false)
	h.M.CPU.Charge(HypervisorComponent, trace.KExceptionBounce, h.M.Arch.Costs.CtxSave)
	// Instruction decode + emulation of the store.
	h.M.CPU.Work(HypervisorComponent, 180)
	s.gpt[vpn] = shadowGPTE{gpn: gpn, perms: perms, user: user}
	// Validation identical to the paravirtual path's.
	f := d.FrameAt(gpn)
	if f == hw.NoFrame || !d.OwnsFrame(f) {
		s.rejected++
		d.PT.Unmap(vpn) // shadow must not map what the guest may not have
		h.M.CPU.Charge(HypervisorComponent, trace.KShadowPTUpdate, h.M.Arch.Costs.PrivCheck)
		h.M.CPU.ReturnTo(HypervisorComponent, hw.Ring1)
		return nil // the *guest* write succeeded; the shadow just ignores it
	}
	d.PT.Map(vpn, hw.PTE{Frame: f, Perms: perms, User: user})
	s.emulated++
	h.M.CPU.Charge(HypervisorComponent, trace.KShadowPTUpdate, h.M.Arch.Costs.PTEUpdate)
	h.M.CPU.FlushTLBEntry(HypervisorComponent, d.PT.ASID(), vpn)
	h.M.CPU.ReturnTo(HypervisorComponent, hw.Ring1)
	return nil
}

// GuestPTEntry returns what the guest believes it wrote at vpn.
func (s *ShadowMMU) GuestPTEntry(vpn hw.VPN) (gpn int, perms hw.Perm, ok bool) {
	e, found := s.gpt[vpn]
	if !found {
		return 0, 0, false
	}
	return e.gpn, e.perms, true
}

// Stats returns emulated and rejected update counts.
func (s *ShadowMMU) Stats() (emulated, rejected uint64) { return s.emulated, s.rejected }
