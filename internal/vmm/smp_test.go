package vmm

import (
	"errors"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// smpHyp boots a hypervisor on an n-CPU machine.
func smpHyp(t testing.TB, ncpus int) (*hw.Machine, *Hypervisor, *Domain) {
	t.Helper()
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 1024, NCPUs: ncpus})
	h, d0, err := New(m, 64)
	if err != nil {
		t.Fatal(err)
	}
	return m, h, d0
}

func TestPlaceVCPUsValidation(t *testing.T) {
	_, h, _ := smpHyp(t, 2)
	d, err := h.CreateDomain("guest", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.PlaceVCPUs(d.ID, 0, 2); !errors.Is(err, ErrBadPCPU) {
		t.Fatalf("out-of-range pCPU: got %v, want ErrBadPCPU", err)
	}
	if err := h.PlaceVCPUs(DomID(99), 0); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("missing domain: got %v, want ErrNoSuchDomain", err)
	}
	if d.VCPUs() != 1 || d.VCPUPlacement() != nil {
		t.Fatal("unplaced domain should report one implicit vCPU")
	}
	if err := h.PlaceVCPUs(d.ID, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if d.VCPUs() != 3 {
		t.Fatalf("VCPUs = %d, want 3", d.VCPUs())
	}
	if got := d.VCPUPlacement(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("placement = %v", got)
	}
	if err := h.PlaceVCPUs(d.ID); err != nil {
		t.Fatal(err)
	}
	if d.VCPUs() != 1 {
		t.Fatal("PlaceVCPUs() did not reset to the uniprocessor arrangement")
	}
}

// TestVCPUNeverOnTwoPCPUs runs credit epochs over a mixed placement and
// asserts that no (domain, vCPU) pair is ever installed on two pCPUs.
func TestVCPUNeverOnTwoPCPUs(t *testing.T) {
	const ncpus = 4
	_, h, _ := smpHyp(t, ncpus)
	a, err := h.CreateDomain("a", 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.CreateDomain("b", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.PlaceVCPUs(a.ID, 0, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := h.PlaceVCPUs(b.ID, 1, 2); err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 8; epoch++ {
		h.ScheduleSMP()
		type slot struct {
			dom  DomID
			vcpu int
		}
		seen := map[slot]int{}
		for p := 0; p < ncpus; p++ {
			d, v := h.RunningOn(p)
			if d == nil {
				continue
			}
			s := slot{d.ID, v}
			if prev, dup := seen[s]; dup {
				t.Fatalf("epoch %d: %s vCPU%d on pCPUs %d and %d at once",
					epoch, d.Name, v, prev, p)
			}
			seen[s] = p
		}
	}
}

// TestScheduleSMPPlacesByPlacement: every pCPU with candidates gets one,
// and a pCPU nobody is placed on idles.
func TestScheduleSMPPlacesByPlacement(t *testing.T) {
	_, h, _ := smpHyp(t, 3)
	g, err := h.CreateDomain("g", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.PlaceVCPUs(g.ID, 1); err != nil {
		t.Fatal(err)
	}
	picks := h.ScheduleSMP()
	if picks[0] == nil {
		t.Fatal("boot pCPU idle despite dom0 being unplaced (implicit pCPU 0)")
	}
	if picks[1] == nil || picks[1].ID != g.ID {
		t.Fatalf("pCPU 1 ran %v, want domain g", picks[1])
	}
	if picks[2] != nil {
		t.Fatalf("pCPU 2 ran %s with nothing placed there", picks[2].Name)
	}
	if d, v := h.RunningOn(1); d == nil || d.ID != g.ID || v != 0 {
		t.Fatal("RunningOn(1) does not report g's vCPU0")
	}
}

// TestShadowInvalidationShootsDown: with a guest's vCPUs placed on other
// pCPUs, shadow-page-table invalidation (trap-and-emulate write and
// paravirtual unmap alike) broadcasts a shootdown to each of them.
func TestShadowInvalidationShootsDown(t *testing.T) {
	m, h, _ := smpHyp(t, 3)
	g, err := h.CreateDomain("g", 16)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := h.EnableShadowMMU(g.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.GuestPTWrite(0x10, 1, hw.PermRW, true); err != nil {
		t.Fatal(err)
	}
	if got := m.Rec.Counts(trace.KTLBShootdown); got != 0 {
		t.Fatalf("unplaced guest caused %d shootdowns", got)
	}

	if err := h.PlaceVCPUs(g.ID, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := sm.GuestPTWrite(0x11, 2, hw.PermRW, true); err != nil {
		t.Fatal(err)
	}
	if got := m.Rec.Counts(trace.KTLBShootdown); got != 2 {
		t.Fatalf("placed guest PT write caused %d shootdowns, want 2", got)
	}
	if err := h.MMUUnmap(g.ID, 0x11); err != nil {
		t.Fatal(err)
	}
	if got := m.Rec.Counts(trace.KTLBShootdown); got != 4 {
		t.Fatalf("MMUUnmap raised shootdowns to %d, want 4", got)
	}
	if m.Rec.Cycles("cpu1.shootdown") == 0 || m.Rec.Cycles("cpu2.shootdown") == 0 {
		t.Fatal("shootdown cycles not attributed to the target CPUs")
	}
}

// TestDirtyLogArmBroadcast: arming log-dirty mode on a placed guest pays
// one remote flush per placed pCPU, per (re)arm.
func TestDirtyLogArmBroadcast(t *testing.T) {
	m, h, _ := smpHyp(t, 4)
	g, err := h.CreateDomain("g", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.PlaceVCPUs(g.ID, 0, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	dl, err := h.EnableDirtyLog(g.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Rec.Counts(trace.KTLBShootdown); got != 3 {
		t.Fatalf("arm broadcast hit %d CPUs, want 3", got)
	}
	if err := h.GuestMemWrite(g.ID, 0, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	dl.Rearm()
	if got := m.Rec.Counts(trace.KTLBShootdown); got != 6 {
		t.Fatalf("re-arm raised shootdowns to %d, want 6", got)
	}
	h.DisableDirtyLog(g.ID)
}

// TestEventDeliveryKicksRemoteDomain: notifying a channel whose remote
// domain is placed off the boot CPU pays the kick IPI; an unplaced remote
// does not.
func TestEventDeliveryKicksRemoteDomain(t *testing.T) {
	m, h, _ := smpHyp(t, 2)
	g, err := h.CreateDomain("g", 16)
	if err != nil {
		t.Fatal(err)
	}
	p0, _, err := h.BindChannel(Dom0, g.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.NotifyChannel(Dom0, p0); err != nil {
		t.Fatal(err)
	}
	if got := m.Rec.Counts(trace.KIPI); got != 0 {
		t.Fatalf("unplaced remote cost %d IPIs", got)
	}
	if err := h.PlaceVCPUs(g.ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.NotifyChannel(Dom0, p0); err != nil {
		t.Fatal(err)
	}
	if got := m.Rec.Counts(trace.KIPI); got != 1 {
		t.Fatalf("remote delivery cost %d IPIs, want 1", got)
	}
	if err := h.SendVIRQ(g.ID, 3); err != nil {
		t.Fatal(err)
	}
	if got := m.Rec.Counts(trace.KIPI); got != 2 {
		t.Fatalf("remote VIRQ raised IPIs to %d, want 2", got)
	}
}

// TestDestroyedDomainLeavesNoSMPResidue: destroying a placed, running
// domain clears its pCPU installations, and a later epoch never resurrects
// it.
func TestDestroyedDomainLeavesNoSMPResidue(t *testing.T) {
	_, h, _ := smpHyp(t, 2)
	g, err := h.CreateDomain("g", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.PlaceVCPUs(g.ID, 1); err != nil {
		t.Fatal(err)
	}
	h.ScheduleSMP()
	if d, _ := h.RunningOn(1); d == nil || d.ID != g.ID {
		t.Fatal("setup: g not installed on pCPU 1")
	}
	if err := h.DestroyDomain(g.ID); err != nil {
		t.Fatal(err)
	}
	if d, _ := h.RunningOn(1); d != nil {
		t.Fatalf("destroyed domain still installed on pCPU 1: %s", d.Name)
	}
	picks := h.ScheduleSMP()
	if picks[1] != nil {
		t.Fatalf("pCPU 1 resurrected %s", picks[1].Name)
	}
}

// TestIdlePCPUClearsInstallation: pausing or re-placing a domain must not
// leave its vCPU reported as installed on a pCPU it no longer runs on —
// RunningOn goes nil once the pCPU's next epoch finds nothing to run, and
// a re-placed vCPU never shows up on two pCPUs.
func TestIdlePCPUClearsInstallation(t *testing.T) {
	_, h, _ := smpHyp(t, 2)
	g, err := h.CreateDomain("g", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.PlaceVCPUs(g.ID, 1); err != nil {
		t.Fatal(err)
	}
	h.ScheduleSMP()
	if d, _ := h.RunningOn(1); d == nil || d.ID != g.ID {
		t.Fatal("setup: g not installed on pCPU 1")
	}

	if err := h.Pause(g.ID); err != nil {
		t.Fatal(err)
	}
	h.ScheduleSMP()
	if d, _ := h.RunningOn(1); d != nil {
		t.Fatalf("paused domain still installed on pCPU 1: %s", d.Name)
	}
	if err := h.Unpause(g.ID); err != nil {
		t.Fatal(err)
	}

	// Re-placement: the vCPU moves from pCPU 1 to pCPU 0; its old
	// installation must be descheduled immediately, not shadow-owned.
	h.ScheduleSMP()
	if err := h.PlaceVCPUs(g.ID, 0); err != nil {
		t.Fatal(err)
	}
	if d, _ := h.RunningOn(1); d != nil {
		t.Fatalf("re-placed domain still installed on pCPU 1: %s", d.Name)
	}
	h.ScheduleSMP()
	type slot struct {
		dom  DomID
		vcpu int
	}
	seen := map[slot]int{}
	for p := 0; p < 2; p++ {
		if d, v := h.RunningOn(p); d != nil {
			s := slot{d.ID, v}
			if prev, dup := seen[s]; dup {
				t.Fatalf("%s vCPU%d on pCPUs %d and %d after re-placement", d.Name, v, prev, p)
			}
			seen[s] = p
		}
	}
}

// TestUniprocessorHypervisorChargesNoSMP mirrors the mk-side guard: a full
// hypercall + event + shadow workout on a 1-CPU machine leaves every SMP
// counter at zero.
func TestUniprocessorHypervisorChargesNoSMP(t *testing.T) {
	m, h, _ := smpHyp(t, 1)
	g, err := h.CreateDomain("g", 16)
	if err != nil {
		t.Fatal(err)
	}
	p0, _, err := h.BindChannel(Dom0, g.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := h.NotifyChannel(Dom0, p0); err != nil {
			t.Fatal(err)
		}
		if err := h.MMUUpdate(g.ID, hw.VPN(0x20+i), i, hw.PermRW, true); err != nil {
			t.Fatal(err)
		}
		if err := h.MMUUnmap(g.ID, hw.VPN(0x20+i)); err != nil {
			t.Fatal(err)
		}
		h.ScheduleNext()
	}
	if m.Rec.Counts(trace.KIPI) != 0 || m.Rec.Counts(trace.KTLBShootdown) != 0 {
		t.Fatal("uniprocessor hypervisor counted SMP events")
	}
	if got := m.Rec.CyclesPrefix("cpu"); got != 0 {
		t.Fatalf("uniprocessor hypervisor charged %d SMP cycles", got)
	}
}
