package vmm

import (
	"errors"
	"fmt"

	"vmmk/internal/hw"
)

// The migration link: live migration's pages do not teleport — they cross a
// network whose bandwidth and latency are guest-visible costs (the blackout
// batch crosses while the guest is paused). Link models that network for
// LiveOpts.Transport: a per-round propagation latency, a per-page bandwidth
// cost, and an optional page budget after which the link is down. The costs
// are charged to each endpoint machine's own "vmm.link" trace component, so
// fleet-level accounting (internal/cluster, E13) can attribute link time
// per host.

// ErrLinkDown is returned by a Link whose page budget is exhausted; it
// surfaces from MigrateLive wrapped in ErrMigrationAborted.
var ErrLinkDown = errors.New("vmm: migration link down")

// LinkComponent is the trace component name link time is charged to on each
// endpoint machine.
const LinkComponent = "vmm.link"

// Link models the network between two migration endpoints. The zero Link
// is a free, infinite link (no cost, no budget); set PerPage/Latency for
// costs and Budget to make the link fail after that many page transfers.
type Link struct {
	// PerPage is the bandwidth term: link cycles per page transferred.
	PerPage hw.Cycles
	// Latency is the propagation term: link cycles per transfer round,
	// paid even for an empty round.
	Latency hw.Cycles
	// Budget, when positive, is the total page transfers the link carries
	// before going down — a round that would exceed it fails whole.
	Budget int

	pages  int
	rounds int
}

// Pages returns how many page transfers the link has carried.
func (l *Link) Pages() int { return l.pages }

// Rounds returns how many transfer rounds the link has carried.
func (l *Link) Rounds() int { return l.rounds }

// Cost returns the link cycles charged to each endpoint so far.
func (l *Link) Cost() hw.Cycles {
	return l.Latency*hw.Cycles(l.rounds) + l.PerPage*hw.Cycles(l.pages)
}

// Transport binds the link to a source and destination machine and returns
// the LiveOpts.Transport hook for a migration between them. Both endpoint
// components are interned here, at bind time; the returned hook charges
// Latency once per round plus PerPage per page to each machine's
// LinkComponent. When the budget would be exceeded the hook reports
// ErrLinkDown without charging — the round never crossed.
func (l *Link) Transport(src, dst *hw.Machine) func(round, pages int) error {
	srcComp := src.Rec.Intern(LinkComponent)
	dstComp := dst.Rec.Intern(LinkComponent)
	return func(round, pages int) error {
		if l.Budget > 0 && l.pages+pages > l.Budget {
			return fmt.Errorf("%w: round %d needs %d pages, %d of %d remain",
				ErrLinkDown, round, pages, l.Budget-l.pages, l.Budget)
		}
		l.rounds++
		l.pages += pages
		if l.Latency > 0 {
			src.CPU.Work(srcComp, l.Latency)
			dst.CPU.Work(dstComp, l.Latency)
		}
		if l.PerPage > 0 && pages > 0 {
			src.CPU.WorkN(srcComp, l.PerPage, uint64(pages))
			dst.CPU.WorkN(dstComp, l.PerPage, uint64(pages))
		}
		return nil
	}
}
