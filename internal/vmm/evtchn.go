package vmm

import (
	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// Port is a domain-local event-channel port number.
type Port int

// endpoint is one side of a channel.
type endpoint struct {
	dom  DomID
	port Port
}

// channel is an interdomain event channel: the paper's primitive 3
// ("asynchronous communication channels across domains"). Signalling a
// channel sets the remote side's pending bit and, if the remote has events
// unmasked, delivers an upcall — which requires scheduling (a world switch)
// when the remote is not the current domain. This is precisely the
// "simple asynchronous unidirectional event mechanism" the original paper
// described and the rebuttal identifies as asynchronous IPC.
type channel struct {
	a, b   endpoint
	closed bool
	sends  uint64
}

// chanPortStride separates the port numbers of successive occupants of
// one channel slot. Slot indexes stay far below it in any realistic run.
const chanPortStride = 1 << 20

// BindChannel creates a channel between two domains and returns the local
// port each side uses. Both domains must be alive. Channel slots freed by
// DestroyDomain are reused so domain churn does not grow the port table;
// each reuse shifts the slot's port numbers by a generation stride, so a
// surviving peer still holding a dead channel's port gets an error rather
// than silently signalling the slot's next occupant.
func (h *Hypervisor) BindChannel(x, y DomID) (Port, Port, error) {
	dx, err := h.lookup(x)
	if err != nil {
		return 0, 0, err
	}
	if _, err := h.lookup(y); err != nil {
		return 0, 0, err
	}
	// A bind is a hypercall from the allocating side.
	h.hypercallEntry(dx)
	slot := len(h.ports)
	if n := len(h.freeChans); n > 0 {
		slot = h.freeChans[n-1]
		h.freeChans = h.freeChans[:n-1]
	} else {
		h.ports = append(h.ports, nil)
		h.chanGen = append(h.chanGen, 0)
	}
	base := h.chanGen[slot] * chanPortStride
	px := Port(base + slot*2 + 1)
	py := Port(base + slot*2 + 2)
	h.ports[slot] = &channel{a: endpoint{x, px}, b: endpoint{y, py}}
	h.hypercallExit(dx)
	return px, py, nil
}

// findChannel locates the channel and the remote endpoint for (dom, port).
func (h *Hypervisor) findChannel(dom DomID, port Port) (*channel, endpoint, bool) {
	for _, ch := range h.ports {
		if ch == nil {
			continue
		}
		if ch.a.dom == dom && ch.a.port == port {
			return ch, ch.b, true
		}
		if ch.b.dom == dom && ch.b.port == port {
			return ch, ch.a, true
		}
	}
	return nil, endpoint{}, false
}

// NotifyChannel signals the channel bound to (from, port). The sending side
// pays the hypercall; delivery to the remote costs an upcall and, if the
// remote is not current, a world switch — the cycle structure behind the
// paper's observation that Xen's event mechanism is IPC by another name.
func (h *Hypervisor) NotifyChannel(from DomID, port Port) error {
	d, err := h.lookup(from)
	if err != nil {
		return err
	}
	ch, remote, ok := h.findChannel(from, port)
	if !ok {
		return ErrBadPort
	}
	if ch.closed {
		return ErrPortUnbound
	}
	rd := h.dom(remote.dom)
	if rd == nil || rd.Dead {
		return ErrDomainDead
	}

	h.hypercallEntry(d)
	ch.sends++
	h.M.CPU.Charge(h.comp, trace.KEvtchnSend, 80)
	h.hypercallExit(d)

	if rd.masked {
		rd.pending = append(rd.pending, remote.port)
		return nil
	}
	h.deliverEvent(rd, remote.port)
	return nil
}

// deliverEvent runs the remote domain's upcall for port, switching worlds
// if needed and switching back afterwards (the sender continues). A domain
// whose vCPUs are placed on other pCPUs is first kicked with an IPI — the
// cross-CPU event-delivery surcharge E12 measures.
func (h *Hypervisor) deliverEvent(rd *Domain, port Port) {
	h.kickDomain(rd)
	prev := h.current
	h.switchTo(rd)
	h.M.CPU.Charge(h.comp, trace.KVirtIRQ, h.M.Arch.Costs.IRQDispatch/2)
	if rd.Hooks.OnEvent != nil {
		rd.Hooks.OnEvent(port)
	}
	if prev != nil && prev != rd && !prev.Dead {
		h.switchTo(prev)
	}
}

// SendVIRQ injects a virtual interrupt (timer, debug, …) into a domain:
// paper primitive 8.
func (h *Hypervisor) SendVIRQ(dom DomID, virq int) error {
	d, err := h.lookup(dom)
	if err != nil {
		return err
	}
	h.kickDomain(d)
	prev := h.current
	h.switchTo(d)
	h.M.CPU.Charge(h.comp, trace.KVirtIRQ, h.M.Arch.Costs.IRQDispatch/2)
	if d.Hooks.OnVIRQ != nil {
		d.Hooks.OnVIRQ(virq)
	}
	if prev != nil && prev != d && !prev.Dead {
		h.switchTo(prev)
	}
	return nil
}

// RouteIRQ gives a domain (in practice Dom0) ownership of a physical
// interrupt line: paper primitive 9 ("hardware interrupt notification via
// virtualised interrupt controller"). The monitor fields the interrupt and
// injects it into the owner.
func (h *Hypervisor) RouteIRQ(line hw.IRQLine, dom DomID) error {
	d, err := h.lookup(dom)
	if err != nil {
		return err
	}
	if !d.Privileged {
		return ErrNotPrivileged
	}
	h.M.IRQ.SetHandler(line, func(l hw.IRQLine) {
		owner := h.dom(dom)
		if owner == nil || owner.Dead {
			return // driver domain died; interrupt dropped, monitor fine
		}
		h.M.CPU.Charge(h.comp, trace.KHardIRQInject, h.M.Arch.Costs.IRQDispatch)
		prev := h.current
		h.switchTo(owner)
		if owner.Hooks.OnVIRQ != nil {
			owner.Hooks.OnVIRQ(int(l))
		}
		if prev != nil && prev != owner && !prev.Dead {
			h.switchTo(prev)
		}
	})
	h.M.CPU.Work(h.comp, 100)
	return nil
}

// ChannelSends returns how many notifications have crossed the channel
// owning (dom, port).
func (h *Hypervisor) ChannelSends(dom DomID, port Port) uint64 {
	ch, _, ok := h.findChannel(dom, port)
	if !ok {
		return 0
	}
	return ch.sends
}
