package vmm

import (
	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// scheduler is a weighted round-robin domain scheduler, a simplification of
// Xen's BVT/credit schedulers that preserves what the experiments observe:
// which domain gets the CPU next and what a domain switch costs. Weights
// give Dom0 the boost driver domains get in practice.
type scheduler struct {
	h         *Hypervisor
	run       []*Domain
	weights   map[DomID]int
	credits   map[DomID]int
	decisions uint64
}

func newScheduler(h *Hypervisor) *scheduler {
	return &scheduler{h: h, weights: make(map[DomID]int), credits: make(map[DomID]int)}
}

func (s *scheduler) add(d *Domain) {
	s.run = append(s.run, d)
	if _, ok := s.weights[d.ID]; !ok {
		s.weights[d.ID] = 1
	}
	s.credits[d.ID] = s.weights[d.ID]
}

func (s *scheduler) remove(d *Domain) {
	for i, x := range s.run {
		if x == d {
			s.run = append(s.run[:i], s.run[i+1:]...)
			return
		}
	}
}

// SetWeight adjusts a domain's scheduling weight (credits per refill).
func (h *Hypervisor) SetWeight(dom DomID, w int) error {
	if _, err := h.lookup(dom); err != nil {
		return err
	}
	if w < 1 {
		w = 1
	}
	h.sched.weights[dom] = w
	return nil
}

// ScheduleNext picks the next runnable domain by weighted round-robin and
// switches to it, charging the world switch. It returns nil when no domain
// is runnable.
func (h *Hypervisor) ScheduleNext() *Domain {
	s := h.sched
	if len(s.run) == 0 {
		return nil
	}
	h.M.CPU.Trap(h.comp, false)
	h.M.IRQ.DispatchPending(h.comp)
	s.decisions++

	// Find the first domain (in queue order) with credits; refill all
	// when everyone is exhausted.
	var pick *Domain
	for tries := 0; tries < 2 && pick == nil; tries++ {
		for i, d := range s.run {
			if d.Dead {
				continue
			}
			if s.credits[d.ID] > 0 {
				s.credits[d.ID]--
				pick = d
				// Rotate the queue past the pick for round-robin.
				s.run = append(append(append([]*Domain{}, s.run[i+1:]...), s.run[:i]...), d)
				break
			}
		}
		if pick == nil {
			for id, w := range s.weights {
				s.credits[id] = w
			}
		}
	}
	h.M.CPU.Charge(h.comp, trace.KSchedule, 60)
	if pick != nil {
		h.switchTo(pick)
	}
	h.M.CPU.ReturnTo(h.comp, hw.Ring1)
	return pick
}

// Decisions returns how many scheduling decisions have been made.
func (h *Hypervisor) Decisions() uint64 { return h.sched.decisions }
