package vmm

import (
	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// scheduler is a weighted round-robin domain scheduler, a simplification of
// Xen's BVT/credit schedulers that preserves what the experiments observe:
// which domain gets the CPU next and what a domain switch costs. Weights
// give Dom0 the boost driver domains get in practice.
//
// On a multiprocessor the same credit pool drives vCPU placement:
// ScheduleSMP runs one decision per physical CPU, picking among the vCPUs
// placed there (PlaceVCPUs) and burning one domain credit per vCPU
// installed — a domain with more vCPUs drains its credits faster, exactly
// the proportional-share property Xen's credit scheduler has. The
// uniprocessor ScheduleNext entry point is untouched: a 1-CPU machine
// schedules exactly as it did before SMP support existed.
type scheduler struct {
	h         *Hypervisor
	run       []*Domain
	weights   map[DomID]int
	credits   map[DomID]int
	decisions uint64

	// Per-pCPU SMP state: which vCPU each pCPU is running and its
	// round-robin cursor over the pCPU's candidate list.
	currentOn []vcpuID
	cursor    []int
}

// vcpuID names one virtual CPU of one domain; noVCPU marks an idle pCPU.
type vcpuID struct {
	dom  DomID
	vcpu int
}

var noVCPU = vcpuID{dom: ^DomID(0), vcpu: -1}

func newScheduler(h *Hypervisor) *scheduler {
	n := h.M.NCPUs()
	s := &scheduler{
		h:         h,
		weights:   make(map[DomID]int),
		credits:   make(map[DomID]int),
		currentOn: make([]vcpuID, n),
		cursor:    make([]int, n),
	}
	for i := range s.currentOn {
		s.currentOn[i] = noVCPU
	}
	return s
}

func (s *scheduler) add(d *Domain) {
	s.run = append(s.run, d)
	if _, ok := s.weights[d.ID]; !ok {
		s.weights[d.ID] = 1
	}
	s.credits[d.ID] = s.weights[d.ID]
}

func (s *scheduler) remove(d *Domain) {
	for i, x := range s.run {
		if x == d {
			s.run = append(s.run[:i], s.run[i+1:]...)
			return
		}
	}
}

// SetWeight adjusts a domain's scheduling weight (credits per refill).
func (h *Hypervisor) SetWeight(dom DomID, w int) error {
	if _, err := h.lookup(dom); err != nil {
		return err
	}
	if w < 1 {
		w = 1
	}
	h.sched.weights[dom] = w
	return nil
}

// ScheduleNext picks the next runnable domain by weighted round-robin and
// switches to it, charging the world switch. It returns nil when no domain
// is runnable.
func (h *Hypervisor) ScheduleNext() *Domain {
	s := h.sched
	if len(s.run) == 0 {
		return nil
	}
	h.M.CPU.Trap(h.comp, false)
	h.M.IRQ.DispatchPending(h.comp)
	s.decisions++

	// Find the first domain (in queue order) with credits; refill all
	// when everyone is exhausted.
	var pick *Domain
	for tries := 0; tries < 2 && pick == nil; tries++ {
		for i, d := range s.run {
			if d.Dead {
				continue
			}
			if s.credits[d.ID] > 0 {
				s.credits[d.ID]--
				pick = d
				// Rotate the queue past the pick for round-robin.
				s.run = append(append(append([]*Domain{}, s.run[i+1:]...), s.run[:i]...), d)
				break
			}
		}
		if pick == nil {
			for id, w := range s.weights {
				s.credits[id] = w
			}
		}
	}
	h.M.CPU.Charge(h.comp, trace.KSchedule, 60)
	if pick != nil {
		h.switchTo(pick)
	}
	h.M.CPU.ReturnTo(h.comp, hw.Ring1)
	return pick
}

// Decisions returns how many scheduling decisions have been made.
func (h *Hypervisor) Decisions() uint64 { return h.sched.decisions }

// ScheduleSMP runs one placement epoch of the credit scheduler: every
// physical CPU, in ascending order, picks the next runnable vCPU placed on
// it and installs it, charging the decision and any world switch to that
// CPU (so each pCPU's TLB state is its own). It returns the domain chosen
// per pCPU (nil entries for idle pCPUs). Unplaced domains count as one
// vCPU on pCPU 0, which makes a 1-CPU epoch equivalent to one
// ScheduleNext decision per runnable domain.
func (h *Hypervisor) ScheduleSMP() []*Domain {
	out := make([]*Domain, h.M.NCPUs())
	for p := range out {
		out[p] = h.schedulePCPU(p)
	}
	return out
}

// RunningOn returns the domain whose vCPU the given pCPU last installed
// via ScheduleSMP (nil when idle), plus which of its vCPUs it is.
func (h *Hypervisor) RunningOn(pcpu int) (*Domain, int) {
	cur := h.sched.currentOn[pcpu]
	if cur == noVCPU {
		return nil, -1
	}
	return h.dom(cur.dom), cur.vcpu
}

// candidatesOn lists the vCPUs placed on pcpu in domain-creation order —
// the deterministic electorate of one pCPU's scheduling decision.
func (h *Hypervisor) candidatesOn(pcpu int) []vcpuID {
	var cand []vcpuID
	for _, id := range h.order {
		d := h.dom(id)
		if d == nil || d.Dead || d.paused {
			continue
		}
		if len(d.placement) == 0 {
			if pcpu == 0 {
				cand = append(cand, vcpuID{id, 0})
			}
			continue
		}
		for v, pp := range d.placement {
			if pp == pcpu {
				cand = append(cand, vcpuID{id, v})
			}
		}
	}
	return cand
}

// schedulePCPU makes one credit decision on one physical CPU.
func (h *Hypervisor) schedulePCPU(p int) *Domain {
	s := h.sched
	c := h.M.CPUs[p]
	cand := h.candidatesOn(p)
	c.Trap(h.comp, false)
	if p == 0 {
		h.M.IRQ.DispatchPending(h.comp)
	}
	s.decisions++

	pick, found := noVCPU, false
	for tries := 0; tries < 2 && !found && len(cand) > 0; tries++ {
		for i := 0; i < len(cand); i++ {
			idx := (s.cursor[p] + i) % len(cand)
			if s.credits[cand[idx].dom] > 0 {
				s.credits[cand[idx].dom]--
				s.cursor[p] = (idx + 1) % len(cand)
				pick, found = cand[idx], true
				break
			}
		}
		if !found {
			for id, w := range s.weights {
				s.credits[id] = w
			}
		}
	}
	c.Charge(h.comp, trace.KSchedule, 60)

	var d *Domain
	if found {
		d = h.dom(pick.dom)
		if s.currentOn[p] != pick {
			h.worldSw++
			c.Charge(h.comp, trace.KWorldSwitch, h.M.Arch.Costs.WorldSwitch)
			c.SwitchSpace(h.comp, d.PT)
			s.currentOn[p] = pick
			if p == 0 {
				h.current = d
			}
		}
	} else {
		// Idle: nothing placed (or runnable) here any more. Clearing the
		// installation keeps RunningOn's "nil when idle" contract and
		// prevents a re-placed vCPU from appearing installed on its old
		// pCPU after it moves.
		s.currentOn[p] = noVCPU
	}
	c.ReturnTo(h.comp, hw.Ring1)
	return d
}
