package vmm

import (
	"errors"
	"fmt"

	"vmmk/internal/hw"
)

// Domain save/restore: the checkpointing half of the VM-migration story
// that made VMMs attractive for management ("treat the OS as a component"
// taken to its logical end — the component becomes a file). A DomainImage
// captures a domain's pseudo-physical memory and page-table skeleton; it
// can be restored on the same hypervisor or a different one (migration).
//
// Event channels and grant entries are deliberately NOT captured: like real
// migration, device connections are torn down and the frontends reconnect
// after restore. What travels is memory and mappings.

// ErrDomainLive is returned when saving a domain that was not paused.
var ErrDomainLive = errors.New("vmm: domain must be paused for save")

// savedPTE is one page-table entry in guest terms (gpn, not machine frame).
type savedPTE struct {
	VPN   hw.VPN
	GPN   int
	Perms hw.Perm
	User  bool
}

// DomainImage is a serialised domain.
type DomainImage struct {
	Name       string
	Privileged bool
	Memory     [][]byte // index = guest pseudo-physical page number; nil = hole
	PT         []savedPTE
}

// Pause takes the domain off the scheduler; a paused domain's vCPU never
// runs, but its state remains intact.
func (h *Hypervisor) Pause(dom DomID) error {
	d := h.domains[dom]
	if d == nil {
		return ErrNoSuchDomain
	}
	if d.Dead {
		return ErrDomainDead
	}
	d.paused = true
	h.sched.remove(d)
	if h.current == d {
		h.current = nil
	}
	h.M.CPU.Work(HypervisorComponent, 200)
	return nil
}

// Unpause puts the domain back on the run queue.
func (h *Hypervisor) Unpause(dom DomID) error {
	d := h.domains[dom]
	if d == nil {
		return ErrNoSuchDomain
	}
	if d.Dead {
		return ErrDomainDead
	}
	if !d.paused {
		return nil
	}
	d.paused = false
	h.sched.add(d)
	h.M.CPU.Work(HypervisorComponent, 200)
	return nil
}

// Paused reports whether the domain is paused.
func (h *Hypervisor) Paused(dom DomID) bool {
	d := h.domains[dom]
	return d != nil && d.paused
}

// SaveDomain captures a paused domain's memory and page table. The copy is
// charged per page — the dominant cost of real checkpointing.
func (h *Hypervisor) SaveDomain(dom DomID) (*DomainImage, error) {
	d := h.domains[dom]
	if d == nil {
		return nil, ErrNoSuchDomain
	}
	if d.Dead {
		return nil, ErrDomainDead
	}
	if !d.paused {
		return nil, ErrDomainLive
	}
	img := &DomainImage{Name: d.Name, Privileged: d.Privileged}
	ps := h.M.Mem.PageSize()
	gpnOf := make(map[hw.FrameID]int, len(d.frames))
	for gpn, f := range d.frames {
		if f == hw.NoFrame {
			img.Memory = append(img.Memory, nil)
			continue
		}
		gpnOf[f] = gpn
		page := make([]byte, ps)
		copy(page, h.M.Mem.Data(f))
		img.Memory = append(img.Memory, page)
		h.M.CPU.Work(HypervisorComponent, h.M.CPU.CopyCost(ps))
	}
	d.PT.Each(func(v hw.VPN, e hw.PTE) {
		if gpn, ok := gpnOf[e.Frame]; ok {
			img.PT = append(img.PT, savedPTE{VPN: v, GPN: gpn, Perms: e.Perms, User: e.User})
		}
		// Entries referencing foreign frames (grant maps) are dropped,
		// like real migration drops grant mappings.
	})
	return img, nil
}

// RestoreDomain materialises an image as a new (paused) domain on this
// hypervisor — which may be a different machine than the one that saved it.
// The caller unpauses after reconnecting devices.
func (h *Hypervisor) RestoreDomain(img *DomainImage) (*Domain, error) {
	if img == nil || img.Name == "" {
		return nil, fmt.Errorf("vmm: empty domain image")
	}
	frames := 0
	for _, p := range img.Memory {
		if p != nil {
			frames++
		}
	}
	if frames == 0 {
		return nil, fmt.Errorf("vmm: image has no memory")
	}
	d, err := h.CreateDomain(img.Name, frames)
	if err != nil {
		return nil, err
	}
	d.Privileged = img.Privileged
	ps := h.M.Mem.PageSize()
	// Lay pages back down, preserving gpn numbering (holes stay holes).
	rebuilt := make([]hw.FrameID, len(img.Memory))
	next := 0
	for gpn, page := range img.Memory {
		if page == nil {
			rebuilt[gpn] = hw.NoFrame
			continue
		}
		f := d.frames[next]
		next++
		rebuilt[gpn] = f
		copy(h.M.Mem.Data(f), page)
		h.M.CPU.Work(HypervisorComponent, h.M.CPU.CopyCost(ps))
	}
	d.frames = rebuilt
	// Rebuild the page table through the validated path.
	d.PT = hw.NewPageTable(d.PT.ASID())
	for _, e := range img.PT {
		f := d.FrameAt(e.GPN)
		if f == hw.NoFrame {
			continue
		}
		d.PT.Map(e.VPN, hw.PTE{Frame: f, Perms: e.Perms, User: e.User})
		h.M.CPU.Work(HypervisorComponent, h.M.Arch.Costs.PTEUpdate)
	}
	// Restored domains start paused, like migrated VMs pre-resume.
	d.paused = true
	h.sched.remove(d)
	return d, nil
}

// Migrate is save + destroy + restore onto a destination hypervisor: the
// whole-OS mobility that §3.3's "treat the OS as a component" enables. It
// returns the new domain on dst.
func Migrate(src *Hypervisor, dom DomID, dst *Hypervisor) (*Domain, error) {
	if err := src.Pause(dom); err != nil {
		return nil, err
	}
	img, err := src.SaveDomain(dom)
	if err != nil {
		return nil, err
	}
	if err := src.DestroyDomain(dom); err != nil {
		return nil, err
	}
	return dst.RestoreDomain(img)
}
