package vmm

import (
	"errors"
	"fmt"
	"sort"

	"vmmk/internal/hw"
)

// Domain save/restore: the checkpointing half of the VM-migration story
// that made VMMs attractive for management ("treat the OS as a component"
// taken to its logical end — the component becomes a file). A DomainImage
// captures a domain's pseudo-physical memory and page-table skeleton; it
// can be restored on the same hypervisor or a different one (migration).
//
// Event channels and grant entries are deliberately NOT captured: like real
// migration, device connections are torn down and the frontends reconnect
// after restore. What travels is memory and mappings.

// ErrDomainLive is returned when saving a domain that was not paused.
var ErrDomainLive = errors.New("vmm: domain must be paused for save")

// savedPTE is one page-table entry in guest terms (gpn, not machine frame).
type savedPTE struct {
	VPN   hw.VPN
	GPN   int
	Perms hw.Perm
	User  bool
}

// DomainImage is a serialised domain.
type DomainImage struct {
	Name       string
	Privileged bool
	Memory     [][]byte // index = guest pseudo-physical page number; nil = hole
	PT         []savedPTE
}

// Pause takes the domain off the scheduler; a paused domain's vCPU never
// runs, but its state remains intact.
func (h *Hypervisor) Pause(dom DomID) error {
	d, err := h.lookup(dom)
	if err != nil {
		return err
	}
	d.paused = true
	h.sched.remove(d)
	if h.current == d {
		h.current = nil
	}
	h.M.CPU.Work(h.comp, 200)
	return nil
}

// Unpause puts the domain back on the run queue.
func (h *Hypervisor) Unpause(dom DomID) error {
	d, err := h.lookup(dom)
	if err != nil {
		return err
	}
	if !d.paused {
		return nil
	}
	d.paused = false
	h.sched.add(d)
	h.M.CPU.Work(h.comp, 200)
	return nil
}

// Paused reports whether the domain is paused.
func (h *Hypervisor) Paused(dom DomID) bool {
	d := h.dom(dom)
	return d != nil && d.paused
}

// capturePT serialises a domain's page table in guest terms (gpn, not
// machine frame), sorted by VPN. Entries referencing foreign frames
// (grant maps) are dropped, like real migration drops grant mappings.
func capturePT(d *Domain) []savedPTE {
	gpnOf := make(map[hw.FrameID]int, len(d.frames))
	for gpn, f := range d.frames {
		if f != hw.NoFrame {
			gpnOf[f] = gpn
		}
	}
	var out []savedPTE
	d.PT.Each(func(v hw.VPN, e hw.PTE) {
		if gpn, ok := gpnOf[e.Frame]; ok {
			out = append(out, savedPTE{VPN: v, GPN: gpn, Perms: e.Perms, User: e.User})
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].VPN < out[j].VPN })
	return out
}

// allocShell creates a paused domain with one fresh frame per true slot in
// exists, holes preserved at the false slots, and an empty page table —
// the receiving half of restore and live migration.
func (h *Hypervisor) allocShell(name string, privileged bool, exists []bool) (*Domain, error) {
	n := 0
	for _, ok := range exists {
		if ok {
			n++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("vmm: domain %q has no memory", name)
	}
	d, err := h.CreateDomain(name, n)
	if err != nil {
		return nil, err
	}
	d.Privileged = privileged
	frames := make([]hw.FrameID, len(exists))
	next := 0
	for gpn, ok := range exists {
		if !ok {
			frames[gpn] = hw.NoFrame
			continue
		}
		frames[gpn] = d.frames[next]
		next++
	}
	d.frames = frames
	d.PT = hw.NewPageTable(d.PT.ASID())
	// Shells start paused, like migrated VMs pre-resume.
	d.paused = true
	h.sched.remove(d)
	return d, nil
}

// SaveDomain captures a paused domain's memory and page table. The copy is
// charged per page — the dominant cost of real checkpointing.
func (h *Hypervisor) SaveDomain(dom DomID) (*DomainImage, error) {
	d, err := h.lookup(dom)
	if err != nil {
		return nil, err
	}
	if !d.paused {
		return nil, ErrDomainLive
	}
	img := &DomainImage{Name: d.Name, Privileged: d.Privileged, PT: capturePT(d)}
	ps := h.M.Mem.PageSize()
	pages := uint64(0)
	live := 0
	for _, f := range d.frames {
		if f != hw.NoFrame {
			live++
		}
	}
	// One arena backs every captured page; the per-page slices just view
	// into it, which keeps a big save at one allocation.
	arena := make([]byte, uint64(live)*ps)
	img.Memory = make([][]byte, 0, len(d.frames))
	for _, f := range d.frames {
		if f == hw.NoFrame {
			img.Memory = append(img.Memory, nil)
			continue
		}
		page := arena[pages*ps : (pages+1)*ps : (pages+1)*ps]
		copy(page, h.M.Mem.Data(f))
		img.Memory = append(img.Memory, page)
		pages++
	}
	h.M.CPU.WorkN(h.comp, h.M.CPU.CopyCost(ps), pages)
	return img, nil
}

// RestoreDomain materialises an image as a new (paused) domain on this
// hypervisor — which may be a different machine than the one that saved it.
// The caller unpauses after reconnecting devices.
func (h *Hypervisor) RestoreDomain(img *DomainImage) (*Domain, error) {
	if img == nil || img.Name == "" {
		return nil, fmt.Errorf("vmm: empty domain image")
	}
	exists := make([]bool, len(img.Memory))
	for gpn, page := range img.Memory {
		exists[gpn] = page != nil
	}
	d, err := h.allocShell(img.Name, img.Privileged, exists)
	if err != nil {
		return nil, err
	}
	// Lay pages back down (gpn numbering is the shell's layout). The copy
	// work lands as one batched charge per phase: the cost per page is
	// constant, so the aggregate is cycle-identical to the per-page loop.
	ps := h.M.Mem.PageSize()
	pages := uint64(0)
	for gpn, page := range img.Memory {
		if page == nil {
			continue
		}
		copy(h.M.Mem.Data(d.FrameAt(gpn)), page)
		pages++
	}
	h.M.CPU.WorkN(h.comp, h.M.CPU.CopyCost(ps), pages)
	// Rebuild the page table through the validated path.
	mapped := uint64(0)
	for _, e := range img.PT {
		f := d.FrameAt(e.GPN)
		if f == hw.NoFrame {
			continue
		}
		d.PT.Map(e.VPN, hw.PTE{Frame: f, Perms: e.Perms, User: e.User})
		mapped++
	}
	h.M.CPU.WorkN(h.comp, h.M.Arch.Costs.PTEUpdate, mapped)
	return d, nil
}

// Migrate is save + destroy + restore onto a destination hypervisor: the
// whole-OS mobility that §3.3's "treat the OS as a component" enables. It
// returns the new domain on dst. The guest is frozen for the entire copy —
// the stop-and-copy baseline MigrateLive improves on.
//
// Between two distinct hypervisors the pages stream frame-to-frame without
// materialising a DomainImage: each machine's charge sequence (pause, copy
// work, destroy on the source; domain build, copy work, page-table rebuild
// on the destination) is identical to the save/restore path, so the
// accounting cannot differ — only the simulator's own buffering does.
// Same-hypervisor migration still round-trips through the image, because
// there the source must be torn down before its frames can back the copy.
func Migrate(src *Hypervisor, dom DomID, dst *Hypervisor) (*Domain, error) {
	if src == dst {
		if err := src.Pause(dom); err != nil {
			return nil, err
		}
		img, err := src.SaveDomain(dom)
		if err != nil {
			return nil, err
		}
		if err := src.DestroyDomain(dom); err != nil {
			return nil, err
		}
		return dst.RestoreDomain(img)
	}

	d, err := src.lookup(dom)
	if err != nil {
		return nil, err
	}
	if err := src.Pause(dom); err != nil {
		return nil, err
	}
	pt := capturePT(d)
	exists := make([]bool, len(d.frames))
	for gpn, f := range d.frames {
		exists[gpn] = f != hw.NoFrame
	}
	shell, err := dst.allocShell(d.Name, d.Privileged, exists)
	if err != nil {
		return nil, err
	}
	ps := src.M.Mem.PageSize()
	pages := uint64(0)
	for gpn, sf := range d.frames {
		if sf == hw.NoFrame {
			continue
		}
		copy(dst.M.Mem.Data(shell.frames[gpn]), src.M.Mem.Data(sf))
		pages++
	}
	src.M.CPU.WorkN(src.comp, src.M.CPU.CopyCost(ps), pages)
	dst.M.CPU.WorkN(dst.comp, dst.M.CPU.CopyCost(ps), pages)
	mapped := uint64(0)
	for _, e := range pt {
		f := shell.FrameAt(e.GPN)
		if f == hw.NoFrame {
			continue
		}
		shell.PT.Map(e.VPN, hw.PTE{Frame: f, Perms: e.Perms, User: e.User})
		mapped++
	}
	dst.M.CPU.WorkN(dst.comp, dst.M.Arch.Costs.PTEUpdate, mapped)
	if err := src.DestroyDomain(dom); err != nil {
		return nil, err
	}
	return shell, nil
}

// ErrMigrationAborted is returned when a live migration cannot finish —
// the link failed or the source domain died mid-copy. The abort is clean:
// the destination shell is destroyed, the dirty log disabled, and a source
// paused for the blackout is resumed. The underlying cause is wrapped.
var ErrMigrationAborted = errors.New("vmm: live migration aborted")

// LiveOpts parameterises a pre-copy live migration.
type LiveOpts struct {
	// MaxRounds bounds the pre-copy rounds before the stop-and-copy
	// finish (default 3).
	MaxRounds int
	// WSSCutoff stops iterating early once the dirty set is this small:
	// the remaining pages are the guest's writable working set, and
	// re-sending them live cannot converge further.
	WSSCutoff int
	// GuestWork, when non-nil, runs the guest's activity concurrent with
	// each pre-copy round (1-based round number). The guest dirties pages
	// through Hypervisor.GuestMemWrite, which the armed dirty log sees.
	GuestWork func(round int)
	// Transport, when non-nil, models the migration link. It is consulted
	// before each page batch crosses — round is the 1-based pre-copy round,
	// or 0 for the final blackout batch — with the number of pages about to
	// move. Returning an error aborts the migration: MigrateLive tears the
	// destination shell down, disables the dirty log, resumes a source it
	// paused, and returns ErrMigrationAborted wrapping the link error.
	Transport func(round, pages int) error
}

// LiveStats reports what a live migration did and what it cost.
type LiveStats struct {
	Rounds     int       // pre-copy rounds actually run
	PagesMoved int       // page transfers in total, re-sends included
	PagesFinal int       // pages copied during the blackout
	Downtime   hw.Cycles // guest-observable pause: src pause→destroy + dst final apply
	Total      hw.Cycles // whole-migration cycles across both machines
}

// MigrateLive moves a running guest with iterative pre-copy: round one
// transfers every page while the guest keeps executing; each further round
// transfers only the pages the dirty log caught since the previous round;
// the final round falls back to pause + stop-and-copy for whatever is
// still dirty (plus the page table) and resumes on the destination. The
// returned domain is paused on dst, exactly like RestoreDomain's — the
// caller reconnects devices and unpauses.
func MigrateLive(src *Hypervisor, dom DomID, dst *Hypervisor, opts LiveOpts) (*Domain, *LiveStats, error) {
	d, err := src.lookup(dom)
	if err != nil {
		return nil, nil, err
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 3
	}
	dl, err := src.EnableDirtyLog(dom)
	if err != nil {
		return nil, nil, err
	}
	srcT0, dstT0 := src.M.Now(), dst.M.Now()

	// Destination shell with the same pseudo-physical layout; it stays
	// paused while pages stream in. Its page table is rebuilt in the
	// blackout.
	var all []int // gpns that exist at the source
	exists := make([]bool, len(d.frames))
	for gpn, f := range d.frames {
		if f != hw.NoFrame {
			exists[gpn] = true
			all = append(all, gpn)
		}
	}
	shell, err := dst.allocShell(d.Name, d.Privileged, exists)
	if err != nil {
		src.DisableDirtyLog(dom)
		return nil, nil, err
	}

	ps := src.M.Mem.PageSize()
	stats := &LiveStats{}
	// abort unwinds a migration that cannot finish: whatever the cause, the
	// destination must not keep a half-filled shell, the source must not
	// keep log-dirty write protection, and a source paused for the blackout
	// must resume. pausedHere distinguishes "we paused it for the blackout"
	// from "the caller handed us a paused domain".
	pausedHere := false
	abort := func(cause error) (*Domain, *LiveStats, error) {
		src.DisableDirtyLog(dom)
		if pausedHere && src.Alive(dom) {
			src.Unpause(dom)
		}
		dst.DestroyDomain(shell.ID)
		return nil, nil, fmt.Errorf("%w: %w", ErrMigrationAborted, cause)
	}
	// sendAll moves one round's worth of pages and charges the copy work
	// as a single batch per machine: both ends pay a fixed cost per page,
	// so the round's aggregate is cycle-identical to charging page by
	// page (the two machines' clocks are independent, and nothing inside
	// a round observes either clock).
	sendAll := func(gpns []int) {
		moved := uint64(0)
		for _, gpn := range gpns {
			sf, df := d.frames[gpn], shell.frames[gpn]
			if sf == hw.NoFrame || df == hw.NoFrame {
				continue
			}
			copy(dst.M.Mem.Data(df), src.M.Mem.Data(sf))
			moved++
		}
		// Reading out and landing the pages are monitor work on each end.
		src.M.CPU.WorkN(src.comp, src.M.CPU.CopyCost(ps), moved)
		dst.M.CPU.WorkN(dst.comp, dst.M.CPU.CopyCost(ps), moved)
		stats.PagesMoved += int(moved)
	}

	// Pre-copy rounds: the guest runs (and dirties pages) while each
	// round's set crosses; whatever it dirtied becomes the next round's
	// set. Stop when the budget is spent, the dirty set is inside the
	// cutoff, or the writable working set stops shrinking.
	toSend := all
	for round := 1; ; round++ {
		stats.Rounds = round
		if opts.GuestWork != nil {
			opts.GuestWork(round)
			// The guest's activity may include dying (crash, DestroyDomain
			// from the toolstack). Copying out of a dead domain's frames
			// would read memory the ledger has already reclaimed.
			if !src.Alive(dom) {
				return abort(ErrDomainDead)
			}
		}
		if opts.Transport != nil {
			if err := opts.Transport(round, len(toSend)); err != nil {
				return abort(err)
			}
		}
		sendAll(toSend)
		dirty := dl.Rearm()
		prev := len(toSend)
		toSend = dirty
		if round >= opts.MaxRounds || len(dirty) <= opts.WSSCutoff || len(dirty) >= prev {
			break
		}
	}

	// The blackout: pause, move the remainder and the page table, kill the
	// source copy. Everything in this window is guest-visible downtime.
	downSrc, downDst := src.M.Now(), dst.M.Now()
	pausedHere = !src.Paused(dom)
	if err := src.Pause(dom); err != nil {
		pausedHere = false
		return abort(err)
	}
	if opts.Transport != nil {
		// The link can fail inside the blackout too — the worst case, since
		// the guest is already off the source's run queue. The abort path
		// resumes it.
		if err := opts.Transport(0, len(toSend)); err != nil {
			return abort(err)
		}
	}
	sendAll(toSend)
	stats.PagesFinal = len(toSend)

	// Page-table skeleton travels in guest terms, like SaveDomain's.
	rebuilt := uint64(0)
	for _, e := range capturePT(d) {
		f := shell.FrameAt(e.GPN)
		if f == hw.NoFrame {
			continue
		}
		perms := e.Perms
		// Mappings still write-protected by the log regain PermW on the
		// destination: the protection was the log's, not the guest's.
		for _, v := range dl.wprot[e.GPN] {
			if v == e.VPN {
				perms |= hw.PermW
				break
			}
		}
		shell.PT.Map(e.VPN, hw.PTE{Frame: f, Perms: perms, User: e.User})
		rebuilt++
	}
	dst.M.CPU.WorkN(dst.comp, dst.M.Arch.Costs.PTEUpdate, rebuilt)
	src.DisableDirtyLog(dom)
	if err := src.DestroyDomain(dom); err != nil {
		return nil, nil, err
	}
	stats.Downtime = (src.M.Now() - downSrc) + (dst.M.Now() - downDst)
	stats.Total = (src.M.Now() - srcT0) + (dst.M.Now() - dstT0)
	return shell, stats, nil
}
