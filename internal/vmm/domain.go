package vmm

import (
	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// GuestHooks are the paravirtualised guest kernel's registered entry
// points, the moral equivalent of the vectors a guest registers with Xen at
// boot. Package vmmos provides real implementations.
type GuestHooks struct {
	// OnSyscall handles a guest-user system call in the guest kernel.
	// Work it performs must be charged to the domain's component.
	OnSyscall func(no uint32, args []uint64) []uint64
	// OnEvent handles an event-channel upcall for a local port.
	OnEvent func(port Port)
	// OnVIRQ handles a virtual interrupt (timer, etc.).
	OnVIRQ func(virq int)
}

// Domain is one virtual machine: pseudo-physical memory, a validated page
// table, a grant table, event-channel state and the guest kernel's hooks.
type Domain struct {
	ID         DomID
	Name       string
	PT         *hw.PageTable
	Privileged bool // Dom0: may touch real devices and other domains
	Dead       bool
	paused     bool // off the run queue, state intact (save/migrate)

	Hooks GuestHooks

	frames []hw.FrameID
	holes  []int // free P2M slots (frames[i] == NoFrame), reused on fill
	grants *grantTable
	hyp    *Hypervisor

	// fastPathOK tracks whether the trap-gate syscall shortcut is
	// currently safe for this domain (see LoadGuestSegment).
	fastPathOK bool

	// dirtyLog, when non-nil, write-protects this domain's pages and logs
	// guest stores (live pre-copy migration; see shadow.go).
	dirtyLog *DirtyLog

	// masked, when true, defers event upcalls (guest cli on events).
	masked  bool
	pending []Port

	// placement maps vCPU index -> physical CPU. Empty means the
	// uniprocessor arrangement every pre-SMP caller gets: one implicit
	// vCPU on pCPU 0, no IPIs, no shootdowns. PlaceVCPUs sets it.
	placement []int

	syscalls     uint64
	fastSyscalls uint64

	comp     trace.Comp // "vmm."+Name, interned at creation
	compName string     // "vmm."+Name, cached: OwnsFrame checks it per packet

	// remote0 caches remotePCPUs(0) — the shootdown/kick target set every
	// hypervisor-side caller wants — invalidated when placement changes.
	remote0   []int
	remote0OK bool
}

// Component returns the domain's trace attribution name.
func (d *Domain) Component() string { return d.compName }

// Comp returns the domain's interned trace attribution handle.
func (d *Domain) Comp() trace.Comp { return d.comp }

// Frames returns the domain's pseudo-physical frame list (index = guest
// pseudo-physical page number).
func (d *Domain) Frames() []hw.FrameID { return d.frames }

// FrameAt returns the machine frame backing guest page gpn, or NoFrame.
func (d *Domain) FrameAt(gpn int) hw.FrameID {
	if gpn < 0 || gpn >= len(d.frames) {
		return hw.NoFrame
	}
	return d.frames[gpn]
}

// OwnsFrame reports whether the machine frame currently belongs to d
// according to the physical-memory ledger.
func (d *Domain) OwnsFrame(f hw.FrameID) bool {
	if f == hw.NoFrame {
		return false
	}
	return d.hyp.M.Mem.Owner(f) == d.Component()
}

// ReleaseFrame returns an owned frame to the machine pool (balloon-out),
// punching a hole in the pseudo-physical map. Guests use this to return
// pages received by flipping once consumed.
func (d *Domain) ReleaseFrame(f hw.FrameID) error {
	if !d.OwnsFrame(f) {
		return ErrFrameNotOwned
	}
	d.removeFrame(f)
	d.PT.UnmapFrame(f)
	d.hyp.M.Mem.Free(f)
	d.hyp.M.CPU.Work(d.comp, 60)
	return nil
}

// Syscalls returns total and fast-path guest syscall counts.
func (d *Domain) Syscalls() (total, fast uint64) { return d.syscalls, d.fastSyscalls }

// VCPUs returns the domain's virtual CPU count: the length of its
// placement, or 1 for an unplaced (uniprocessor-style) domain.
func (d *Domain) VCPUs() int {
	if len(d.placement) == 0 {
		return 1
	}
	return len(d.placement)
}

// VCPUPlacement returns a copy of the vCPU -> pCPU placement (nil when the
// domain is unplaced).
func (d *Domain) VCPUPlacement() []int {
	if len(d.placement) == 0 {
		return nil
	}
	return append([]int(nil), d.placement...)
}

// remotePCPUs returns the distinct physical CPUs other than except that
// host one of d's vCPUs, ascending — the target set for a TLB shootdown
// after one of the domain's shadow translations changes, and the CPUs an
// event delivery may need to kick. Unplaced domains live entirely on pCPU
// 0 and return nothing.
func (d *Domain) remotePCPUs(except int) []int {
	if len(d.placement) == 0 {
		return nil
	}
	if except == 0 && d.remote0OK {
		return d.remote0
	}
	n := d.hyp.M.NCPUs()
	seen := make([]bool, n)
	for _, p := range d.placement {
		if p != except && p >= 0 && p < n {
			seen[p] = true
		}
	}
	var out []int
	for p, ok := range seen {
		if ok {
			out = append(out, p)
		}
	}
	if except == 0 {
		d.remote0, d.remote0OK = out, true
	}
	return out
}

// PlaceVCPUs gives a domain one virtual CPU per argument, each pinned to
// the named physical CPU (vCPU i on pcpus[i]). Placement is the SMP
// control-plane operation Dom0's toolstack performs at domain build; the
// credit scheduler (ScheduleSMP) honours it, shadow-page-table
// invalidation shoots down every placed pCPU, and event delivery to a
// remotely placed domain pays an IPI. Calling it with no arguments resets
// the domain to the unplaced uniprocessor arrangement.
func (h *Hypervisor) PlaceVCPUs(dom DomID, pcpus ...int) error {
	d, err := h.lookup(dom)
	if err != nil {
		return err
	}
	for _, p := range pcpus {
		if p < 0 || p >= h.M.NCPUs() {
			return ErrBadPCPU
		}
	}
	// Re-placement deschedules the domain's vCPUs wherever they currently
	// run; the next ScheduleSMP epoch installs them at their new homes.
	// Without this scrub a moved vCPU could appear installed on its old
	// pCPU and its new one at once.
	for p, cur := range h.sched.currentOn {
		if cur.dom == dom {
			h.sched.currentOn[p] = noVCPU
		}
	}
	d.remote0, d.remote0OK = nil, false
	if len(pcpus) == 0 {
		d.placement = nil
		return nil
	}
	d.placement = append([]int(nil), pcpus...)
	h.M.CPU.Work(h.comp, 200) // toolstack placement hypercall
	return nil
}

// MMUUpdate is the validated page-table-update hypercall (paper primitive
// 5: "resource allocation within the VM via hardware page-table
// virtualisation"). The monitor checks that the domain owns the frame it is
// mapping before installing the entry — the essence of shadow/direct
// paravirtual paging.
func (h *Hypervisor) MMUUpdate(dom DomID, vpn hw.VPN, gpn int, perms hw.Perm, user bool) error {
	d, err := h.lookup(dom)
	if err != nil {
		return err
	}
	h.hypercallEntry(d)
	defer h.hypercallExit(d)

	f := d.FrameAt(gpn)
	if f == hw.NoFrame || !d.OwnsFrame(f) {
		h.M.CPU.Charge(h.comp, trace.KShadowPTUpdate, h.M.Arch.Costs.PrivCheck)
		return ErrBadPTE
	}
	d.PT.Map(vpn, hw.PTE{Frame: f, Perms: perms, User: user})
	h.M.CPU.Charge(h.comp, trace.KShadowPTUpdate, h.M.Arch.Costs.PTEUpdate)
	return nil
}

// MMUUnmap removes a guest mapping with the required TLB invalidation —
// locally, and by shootdown on every other pCPU hosting one of the
// domain's vCPUs.
func (h *Hypervisor) MMUUnmap(dom DomID, vpn hw.VPN) error {
	d, err := h.lookup(dom)
	if err != nil {
		return err
	}
	h.hypercallEntry(d)
	defer h.hypercallExit(d)
	d.PT.Unmap(vpn)
	h.M.CPU.Charge(h.comp, trace.KShadowPTUpdate, h.M.Arch.Costs.PTEUpdate)
	h.M.CPU.FlushTLBEntry(h.comp, d.PT.ASID(), vpn)
	h.shootdownEntry(d, vpn)
	return nil
}

// SetHooks registers the guest kernel's entry points (done once at guest
// boot by vmmos).
func (d *Domain) SetHooks(hooks GuestHooks) { d.Hooks = hooks }

// MaskEvents defers upcall delivery (guest critical section).
func (h *Hypervisor) MaskEvents(dom DomID) {
	if d := h.dom(dom); d != nil {
		d.masked = true
	}
}

// UnmaskEvents re-enables upcalls and delivers anything pending, in port
// order of arrival.
func (h *Hypervisor) UnmaskEvents(dom DomID) {
	d := h.dom(dom)
	if d == nil || !d.masked {
		return
	}
	d.masked = false
	pend := d.pending
	d.pending = nil
	for _, p := range pend {
		h.deliverEvent(d, p)
	}
}
