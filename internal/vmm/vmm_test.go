package vmm

import (
	"errors"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// vrig is a booted hypervisor with dom0 and one guest domain.
type vrig struct {
	m    *hw.Machine
	h    *Hypervisor
	dom0 *Domain
	domU *Domain
}

func newVrig(t testing.TB, arch *hw.Arch) *vrig {
	t.Helper()
	m := hw.NewMachine(arch, &hw.MachineConfig{Frames: 512})
	h, d0, err := New(m, 64)
	if err != nil {
		t.Fatal(err)
	}
	dU, err := h.CreateDomain("domU1", 64)
	if err != nil {
		t.Fatal(err)
	}
	return &vrig{m: m, h: h, dom0: d0, domU: dU}
}

func TestBootCreatesDom0Privileged(t *testing.T) {
	r := newVrig(t, hw.X86())
	if r.dom0.ID != Dom0 || !r.dom0.Privileged {
		t.Fatal("dom0 must be domain 0 and privileged")
	}
	if r.domU.Privileged {
		t.Fatal("guest must be unprivileged")
	}
	if len(r.h.Domains()) != 2 {
		t.Fatalf("domains = %d, want 2", len(r.h.Domains()))
	}
	if r.m.Mem.OwnedBy("vmm.dom0") != 64 {
		t.Fatalf("dom0 owns %d frames, want 64", r.m.Mem.OwnedBy("vmm.dom0"))
	}
}

func TestHypercallCharges(t *testing.T) {
	r := newVrig(t, hw.X86())
	hc0, _ := r.h.Stats()
	c0 := r.m.Rec.Cycles(HypervisorComponent)
	if err := r.h.Hypercall(r.domU.ID, "test", 100); err != nil {
		t.Fatal(err)
	}
	hc1, _ := r.h.Stats()
	if hc1 != hc0+1 {
		t.Fatalf("hypercalls = %d, want %d", hc1, hc0+1)
	}
	if r.m.Rec.Cycles(HypervisorComponent) <= c0 {
		t.Fatal("monitor cycles not charged")
	}
}

func TestHypercallFromDeadDomain(t *testing.T) {
	r := newVrig(t, hw.X86())
	r.h.DestroyDomain(r.domU.ID)
	if err := r.h.Hypercall(r.domU.ID, "x", 10); !errors.Is(err, ErrDomainDead) {
		t.Fatalf("err = %v, want ErrDomainDead", err)
	}
}

func TestMMUUpdateValidatesOwnership(t *testing.T) {
	r := newVrig(t, hw.X86())
	if err := r.h.MMUUpdate(r.domU.ID, 0x100, 5, hw.PermRW, true); err != nil {
		t.Fatal(err)
	}
	e, ok := r.domU.PT.Lookup(0x100)
	if !ok || e.Frame != r.domU.FrameAt(5) {
		t.Fatal("mapping not installed")
	}
	// Out-of-range guest page: rejected.
	if err := r.h.MMUUpdate(r.domU.ID, 0x101, 9999, hw.PermRW, true); !errors.Is(err, ErrBadPTE) {
		t.Fatalf("err = %v, want ErrBadPTE", err)
	}
	if r.m.Rec.Counts(trace.KShadowPTUpdate) < 2 {
		t.Fatal("shadow PT updates not recorded")
	}
}

func TestMMUUpdateRejectsFlippedAwayFrame(t *testing.T) {
	r := newVrig(t, hw.X86())
	// Grant a dom0 frame to domU and flip it; dom0 must then be unable to
	// remap the frame it no longer owns.
	f := r.dom0.FrameAt(3)
	ref, err := r.h.GrantAccess(r.dom0.ID, f, r.domU.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.h.GrantTransfer(r.domU.ID, r.dom0.ID, ref); err != nil {
		t.Fatal(err)
	}
	if err := r.h.MMUUpdate(r.dom0.ID, 0x200, 3, hw.PermRW, true); !errors.Is(err, ErrBadPTE) {
		t.Fatalf("err = %v, want ErrBadPTE (frame was flipped away)", err)
	}
}

func TestEventChannelRoundTrip(t *testing.T) {
	r := newVrig(t, hw.X86())
	var got []Port
	r.domU.SetHooks(GuestHooks{OnEvent: func(p Port) { got = append(got, p) }})
	p0, pU, err := r.h.BindChannel(r.dom0.ID, r.domU.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.h.NotifyChannel(r.dom0.ID, p0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != pU {
		t.Fatalf("upcalls = %v, want [%d]", got, pU)
	}
	if r.m.Rec.Counts(trace.KEvtchnSend) != 1 {
		t.Fatal("event send not recorded")
	}
	if r.h.ChannelSends(r.dom0.ID, p0) != 1 {
		t.Fatal("channel send counter wrong")
	}
}

func TestEventMaskingDefersDelivery(t *testing.T) {
	r := newVrig(t, hw.X86())
	n := 0
	r.domU.SetHooks(GuestHooks{OnEvent: func(p Port) { n++ }})
	p0, _, _ := r.h.BindChannel(r.dom0.ID, r.domU.ID)
	r.h.MaskEvents(r.domU.ID)
	r.h.NotifyChannel(r.dom0.ID, p0)
	r.h.NotifyChannel(r.dom0.ID, p0)
	if n != 0 {
		t.Fatal("masked events delivered")
	}
	r.h.UnmaskEvents(r.domU.ID)
	if n != 2 {
		t.Fatalf("deferred deliveries = %d, want 2", n)
	}
}

func TestNotifyDeadRemote(t *testing.T) {
	r := newVrig(t, hw.X86())
	p0, _, _ := r.h.BindChannel(r.dom0.ID, r.domU.ID)
	r.h.DestroyDomain(r.domU.ID)
	err := r.h.NotifyChannel(r.dom0.ID, p0)
	if err == nil {
		t.Fatal("notify to destroyed domain should fail")
	}
	// Dom0 itself is unharmed: the failure is confined to the user of the
	// dead service, as in §3.1.
	if !r.h.Alive(r.dom0.ID) {
		t.Fatal("dom0 harmed by guest death")
	}
}

func TestNotifyBadPort(t *testing.T) {
	r := newVrig(t, hw.X86())
	if err := r.h.NotifyChannel(r.dom0.ID, 999); !errors.Is(err, ErrBadPort) {
		t.Fatalf("err = %v, want ErrBadPort", err)
	}
}

func TestGrantMapAndCopy(t *testing.T) {
	r := newVrig(t, hw.X86())
	src := r.dom0.FrameAt(1)
	copy(r.m.Mem.Data(src), []byte("grant-payload"))
	ref, err := r.h.GrantAccess(r.dom0.ID, src, r.domU.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	// Map path.
	if err := r.h.GrantMap(r.domU.ID, r.dom0.ID, ref, 0x300); err != nil {
		t.Fatal(err)
	}
	e, ok := r.domU.PT.Lookup(0x300)
	if !ok || e.Frame != src || e.Perms != hw.PermR {
		t.Fatalf("grant map wrong: %+v ok=%v", e, ok)
	}
	if err := r.h.GrantUnmap(r.domU.ID, r.dom0.ID, ref, 0x300); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.domU.PT.Lookup(0x300); ok {
		t.Fatal("grant unmap left mapping")
	}
	// Copy path.
	dst := r.domU.FrameAt(0)
	if err := r.h.GrantCopy(r.domU.ID, r.dom0.ID, ref, dst, 13); err != nil {
		t.Fatal(err)
	}
	if string(r.m.Mem.Data(dst)[:13]) != "grant-payload" {
		t.Fatal("grant copy corrupted data")
	}
	if r.m.Rec.Counts(trace.KGrantCopy) != 1 || r.m.Rec.Counts(trace.KGrantMap) != 1 {
		t.Fatal("grant events not recorded")
	}
}

func TestGrantValidation(t *testing.T) {
	r := newVrig(t, hw.X86())
	// Granting a frame you don't own is rejected.
	foreign := r.domU.FrameAt(0)
	if _, err := r.h.GrantAccess(r.dom0.ID, foreign, r.domU.ID, false); !errors.Is(err, ErrFrameNotOwned) {
		t.Fatalf("err = %v, want ErrFrameNotOwned", err)
	}
	// Using a grant addressed to someone else is rejected.
	f := r.dom0.FrameAt(0)
	other, _ := r.h.CreateDomain("domU2", 8)
	ref, _ := r.h.GrantAccess(r.dom0.ID, f, other.ID, false)
	if err := r.h.GrantMap(r.domU.ID, r.dom0.ID, ref, 0x300); !errors.Is(err, ErrBadGrant) {
		t.Fatalf("err = %v, want ErrBadGrant", err)
	}
	// Revoked grants fail.
	r.h.GrantRevoke(r.dom0.ID, ref)
	if err := r.h.GrantMap(other.ID, r.dom0.ID, ref, 0x300); !errors.Is(err, ErrGrantRevoked) {
		t.Fatalf("err = %v, want ErrGrantRevoked", err)
	}
}

func TestGrantTransferFlipsOwnership(t *testing.T) {
	r := newVrig(t, hw.X86())
	f := r.dom0.FrameAt(2)
	copy(r.m.Mem.Data(f), []byte("flipped"))
	nU := len(r.domU.Frames())
	ref, _ := r.h.GrantAccess(r.dom0.ID, f, r.domU.ID, false)
	got, err := r.h.GrantTransfer(r.domU.ID, r.dom0.ID, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Fatal("wrong frame returned")
	}
	if !r.domU.OwnsFrame(f) {
		t.Fatal("ownership did not move")
	}
	if len(r.domU.Frames()) != nU+1 {
		t.Fatal("receiver frame list not extended")
	}
	if r.dom0.FrameAt(2) != hw.NoFrame {
		t.Fatal("donor pseudo-physical map must have a hole after the flip")
	}
	if string(r.m.Mem.Data(f)[:7]) != "flipped" {
		t.Fatal("flip must not disturb contents")
	}
	if r.m.Rec.Counts(trace.KPageFlip) != 1 {
		t.Fatal("page flip not recorded")
	}
	if r.m.Rec.Counts(trace.KTLBFlush) == 0 {
		t.Fatal("page flip must shoot down the TLB")
	}
	// A flip consumes the grant.
	if _, err := r.h.GrantTransfer(r.domU.ID, r.dom0.ID, ref); !errors.Is(err, ErrGrantRevoked) {
		t.Fatalf("second flip err = %v, want ErrGrantRevoked", err)
	}
}

func TestDanglingGrantsAfterFlipRefused(t *testing.T) {
	// The same frame granted twice: after one grant's flip moves the frame,
	// the other grant dangles and must be dead for every operation —
	// otherwise a second transfer reassigns a frame its granter no longer
	// owns and corrupts the ownership ledger (caught originally by
	// TestQuickGrantOwnershipInvariants).
	r := newVrig(t, hw.X86())
	other, err := r.h.CreateDomain("domU2", 8)
	if err != nil {
		t.Fatal(err)
	}
	f := r.dom0.FrameAt(6)
	ref1, _ := r.h.GrantAccess(r.dom0.ID, f, r.domU.ID, false)
	ref2, _ := r.h.GrantAccess(r.dom0.ID, f, other.ID, false)
	refRO, _ := r.h.GrantAccess(r.dom0.ID, f, other.ID, true)
	if _, err := r.h.GrantTransfer(r.domU.ID, r.dom0.ID, ref1); err != nil {
		t.Fatal(err)
	}
	// Transfer through the dangling grant must refuse, leaving the ledger
	// and both P2M maps untouched.
	if _, err := r.h.GrantTransfer(other.ID, r.dom0.ID, ref2); !errors.Is(err, ErrGrantRevoked) {
		t.Fatalf("dangling transfer err = %v, want ErrGrantRevoked", err)
	}
	if !r.domU.OwnsFrame(f) {
		t.Fatal("dangling transfer moved ownership")
	}
	if len(other.Frames()) != 8 {
		t.Fatal("dangling transfer grew the receiver's frame list")
	}
	// Map and copy through dangling grants must refuse too: the frame now
	// holds another domain's memory.
	if err := r.h.GrantMap(other.ID, r.dom0.ID, refRO, 0x300); !errors.Is(err, ErrGrantRevoked) {
		t.Fatalf("dangling map err = %v, want ErrGrantRevoked", err)
	}
	if err := r.h.GrantCopy(other.ID, r.dom0.ID, refRO, other.FrameAt(0), 16); !errors.Is(err, ErrGrantRevoked) {
		t.Fatalf("dangling copy err = %v, want ErrGrantRevoked", err)
	}
	// A read-only dangling grant still reports read-only first on
	// transfer (the monitor checks the grant's own mode before its
	// backing frame).
	if _, err := r.h.GrantTransfer(other.ID, r.dom0.ID, refRO); !errors.Is(err, ErrGrantReadOnly) {
		t.Fatalf("ro dangling transfer err = %v, want ErrGrantReadOnly", err)
	}
}

func TestGrantTransferReadOnlyRefused(t *testing.T) {
	r := newVrig(t, hw.X86())
	f := r.dom0.FrameAt(2)
	ref, _ := r.h.GrantAccess(r.dom0.ID, f, r.domU.ID, true)
	if _, err := r.h.GrantTransfer(r.domU.ID, r.dom0.ID, ref); !errors.Is(err, ErrGrantReadOnly) {
		t.Fatalf("err = %v, want ErrGrantReadOnly", err)
	}
}

func TestPageFlipCostIndependentOfPayload(t *testing.T) {
	// The heart of E1: a flip costs the same whether the page carries 64
	// bytes or 4096.
	r := newVrig(t, hw.X86())
	gpn := 0
	cost := func(fill int) hw.Cycles {
		f := r.dom0.FrameAt(gpn)
		gpn++
		for i := 0; i < fill; i++ {
			r.m.Mem.Data(f)[i] = byte(i)
		}
		ref, err := r.h.GrantAccess(r.dom0.ID, f, r.domU.ID, false)
		if err != nil {
			t.Fatal(err)
		}
		t0 := r.m.Now()
		if _, err := r.h.GrantTransfer(r.domU.ID, r.dom0.ID, ref); err != nil {
			t.Fatal(err)
		}
		return r.m.Now() - t0
	}
	small := cost(64)
	large := cost(4096)
	if small != large {
		t.Fatalf("flip cost varies with payload: 64B=%d 4096B=%d", small, large)
	}
}

func TestGrantCopyCostScalesWithPayload(t *testing.T) {
	r := newVrig(t, hw.X86())
	cost := func(n uint64) hw.Cycles {
		f := r.dom0.FrameAt(1)
		ref, _ := r.h.GrantAccess(r.dom0.ID, f, r.domU.ID, true)
		dst := r.domU.FrameAt(0)
		t0 := r.m.Now()
		if err := r.h.GrantCopy(r.domU.ID, r.dom0.ID, ref, dst, n); err != nil {
			t.Fatal(err)
		}
		return r.m.Now() - t0
	}
	if !(cost(4096) > cost(64)) {
		t.Fatal("copy cost must scale with bytes")
	}
}

func TestFastPathLifecycle(t *testing.T) {
	r := newVrig(t, hw.X86())
	r.domU.SetHooks(GuestHooks{OnSyscall: func(no uint32, args []uint64) []uint64 {
		r.m.CPU.Work(r.domU.Comp(), 200)
		return []uint64{uint64(no)}
	}})
	// Guest boots with truncated segments (XenoLinux layout).
	for reg := hw.SegDS; reg <= hw.SegGS; reg++ {
		if err := r.h.LoadGuestSegment(r.domU.ID, reg, hw.Segment{Base: 0, Limit: VMMBase - 1, DPL: hw.Ring3}); err != nil {
			t.Fatal(err)
		}
	}
	on, err := r.h.EnableFastPath(r.domU.ID)
	if err != nil || !on {
		t.Fatalf("fast path should enable: on=%v err=%v", on, err)
	}

	// Fast syscall: monitor not involved.
	mon0 := r.m.Rec.Cycles(HypervisorComponent)
	ret, err := r.h.GuestSyscall(r.domU.ID, 20, nil)
	if err != nil || ret[0] != 20 {
		t.Fatalf("syscall failed: %v %v", ret, err)
	}
	if r.m.Rec.Cycles(HypervisorComponent) != mon0 {
		t.Fatal("fast path must not charge the monitor")
	}
	if r.m.Rec.Counts(trace.KSyscallFastPath) != 1 {
		t.Fatal("fast path not recorded")
	}
	total, fast := r.domU.Syscalls()
	if total != 1 || fast != 1 {
		t.Fatalf("syscall counts = %d/%d, want 1/1", total, fast)
	}

	// glibc TLS: a flat GS segment. The monitor must kill the shortcut.
	if err := r.h.LoadGuestSegment(r.domU.ID, hw.SegGS, hw.Segment{Base: 0, Limit: ^uint64(0), DPL: hw.Ring3}); err != nil {
		t.Fatal(err)
	}
	if r.h.FastPathActive(r.domU.ID) {
		t.Fatal("flat segment must disable the fast path")
	}
	mon1 := r.m.Rec.Cycles(HypervisorComponent)
	if _, err := r.h.GuestSyscall(r.domU.ID, 21, nil); err != nil {
		t.Fatal(err)
	}
	if r.m.Rec.Cycles(HypervisorComponent) <= mon1 {
		t.Fatal("bounced syscall must charge the monitor")
	}
	if r.m.Rec.Counts(trace.KExceptionBounce) == 0 {
		t.Fatal("bounce not recorded")
	}
}

func TestFastPathPolicyAblation(t *testing.T) {
	r := newVrig(t, hw.X86())
	for reg := hw.SegDS; reg <= hw.SegGS; reg++ {
		r.h.LoadGuestSegment(r.domU.ID, reg, hw.Segment{Base: 0, Limit: VMMBase - 1, DPL: hw.Ring3})
	}
	r.h.FastPathPolicy = false
	on, _ := r.h.EnableFastPath(r.domU.ID)
	if on {
		t.Fatal("policy off must refuse the fast path")
	}
}

func TestFastPathUnavailableWithoutSegmentation(t *testing.T) {
	r := newVrig(t, hw.AMD64())
	on, err := r.h.EnableFastPath(r.domU.ID)
	if err != nil {
		t.Fatal(err)
	}
	if on {
		t.Fatal("amd64 (no segment limits) cannot support the trap-gate shortcut")
	}
}

func TestSyscallCostOrdering(t *testing.T) {
	// fast path < bounced path, on the same machine state.
	r := newVrig(t, hw.X86())
	r.domU.SetHooks(GuestHooks{OnSyscall: func(no uint32, args []uint64) []uint64 { return nil }})
	for reg := hw.SegDS; reg <= hw.SegGS; reg++ {
		r.h.LoadGuestSegment(r.domU.ID, reg, hw.Segment{Base: 0, Limit: VMMBase - 1, DPL: hw.Ring3})
	}
	r.h.EnableFastPath(r.domU.ID)
	t0 := r.m.Now()
	r.h.GuestSyscall(r.domU.ID, 1, nil)
	fastCost := r.m.Now() - t0

	r.h.LoadGuestSegment(r.domU.ID, hw.SegGS, hw.Segment{Base: 0, Limit: ^uint64(0), DPL: hw.Ring3})
	t1 := r.m.Now()
	r.h.GuestSyscall(r.domU.ID, 1, nil)
	slowCost := r.m.Now() - t1
	if fastCost >= slowCost {
		t.Fatalf("fast (%d) must beat bounced (%d)", fastCost, slowCost)
	}
}

func TestGuestException(t *testing.T) {
	r := newVrig(t, hw.X86())
	handled := false
	ok, err := r.h.GuestException(r.domU.ID, 14, func() {
		handled = true
		r.m.CPU.Work(r.domU.Comp(), 50)
	})
	if err != nil || !ok || !handled {
		t.Fatalf("exception not handled: ok=%v err=%v", ok, err)
	}
	if r.m.Rec.Counts(trace.KExceptionBounce) != 1 {
		t.Fatal("bounce not recorded")
	}
	// Unhandled exception.
	ok, err = r.h.GuestException(r.domU.ID, 6, nil)
	if err != nil || ok {
		t.Fatal("nil handler must report unhandled")
	}
}

func TestRouteIRQRequiresPrivilege(t *testing.T) {
	r := newVrig(t, hw.X86())
	if err := r.h.RouteIRQ(3, r.domU.ID); !errors.Is(err, ErrNotPrivileged) {
		t.Fatalf("err = %v, want ErrNotPrivileged", err)
	}
	hits := 0
	r.dom0.SetHooks(GuestHooks{OnVIRQ: func(v int) { hits++ }})
	if err := r.h.RouteIRQ(3, r.dom0.ID); err != nil {
		t.Fatal(err)
	}
	r.m.IRQ.Raise(3)
	r.m.IRQ.DispatchPending(r.m.Rec.Intern(HypervisorComponent))
	if hits != 1 {
		t.Fatalf("dom0 saw %d injections, want 1", hits)
	}
	if r.m.Rec.Counts(trace.KHardIRQInject) != 1 {
		t.Fatal("injection not recorded")
	}
}

func TestIRQToDeadDom0Dropped(t *testing.T) {
	r := newVrig(t, hw.X86())
	r.dom0.SetHooks(GuestHooks{OnVIRQ: func(v int) { t.Fatal("dead dom0 handler ran") }})
	r.h.RouteIRQ(3, r.dom0.ID)
	r.h.DestroyDomain(r.dom0.ID)
	r.m.IRQ.Raise(3)
	r.m.IRQ.DispatchPending(r.m.Rec.Intern(HypervisorComponent)) // must not panic
}

func TestSendVIRQ(t *testing.T) {
	r := newVrig(t, hw.X86())
	var got []int
	r.domU.SetHooks(GuestHooks{OnVIRQ: func(v int) { got = append(got, v) }})
	if err := r.h.SendVIRQ(r.domU.ID, 7); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("virqs = %v, want [7]", got)
	}
}

func TestDestroyDomainReleasesResources(t *testing.T) {
	r := newVrig(t, hw.X86())
	free0 := r.m.Mem.FreeFrames()
	if err := r.h.DestroyDomain(r.domU.ID); err != nil {
		t.Fatal(err)
	}
	if r.m.Mem.FreeFrames() != free0+64 {
		t.Fatalf("freed %d frames, want 64", r.m.Mem.FreeFrames()-free0)
	}
	if r.h.Alive(r.domU.ID) {
		t.Fatal("domain still alive")
	}
	if r.m.Rec.Counts(trace.KFault) != 1 {
		t.Fatal("destruction not recorded as fault")
	}
	// Idempotent.
	if err := r.h.DestroyDomain(r.domU.ID); err != nil {
		t.Fatal("second destroy should be a no-op")
	}
}

func TestDestroyDomainDoesNotFreeFlippedFrames(t *testing.T) {
	r := newVrig(t, hw.X86())
	f := r.dom0.FrameAt(0)
	ref, _ := r.h.GrantAccess(r.dom0.ID, f, r.domU.ID, false)
	r.h.GrantTransfer(r.domU.ID, r.dom0.ID, ref)
	// Destroy the *previous* owner; the flipped frame now belongs to domU
	// and must survive.
	r.h.DestroyDomain(r.dom0.ID)
	if r.m.Mem.Owner(f) != "vmm.domU1" {
		t.Fatalf("flipped frame owner = %q after donor death", r.m.Mem.Owner(f))
	}
}

func TestDomainChurnReturnsToBaseline(t *testing.T) {
	// The churn regression: a create -> bind -> destroy loop must leave no
	// per-domain residue in the monitor — domain map, creation order,
	// scheduler weight/credit maps, run queue, channel table and physical
	// memory all return to their baseline sizes.
	r := newVrig(t, hw.X86())
	livePorts := func() int {
		n := 0
		for _, ch := range r.h.ports {
			if ch != nil {
				n++
			}
		}
		return n
	}
	liveDomains := func() int {
		n := 0
		for _, d := range r.h.domains {
			if d != nil {
				n++
			}
		}
		return n
	}
	baseDomains := liveDomains()
	baseOrder := len(r.h.order)
	baseWeights := len(r.h.sched.weights)
	baseCredits := len(r.h.sched.credits)
	baseRun := len(r.h.sched.run)
	basePorts := livePorts()
	baseFree := r.m.Mem.FreeFrames()

	const cycles = 50
	for i := 0; i < cycles; i++ {
		d, err := r.h.CreateDomain("churn", 8)
		if err != nil {
			t.Fatal(err)
		}
		p0, _, err := r.h.BindChannel(r.dom0.ID, d.ID)
		if err != nil {
			t.Fatal(err)
		}
		d.SetHooks(GuestHooks{OnEvent: func(Port) {}})
		if err := r.h.NotifyChannel(r.dom0.ID, p0); err != nil {
			t.Fatal(err)
		}
		if err := r.h.DestroyDomain(d.ID); err != nil {
			t.Fatal(err)
		}
	}

	if n := liveDomains(); n != baseDomains {
		t.Errorf("live domain count grew: %d -> %d", baseDomains, n)
	}
	if n := len(r.h.order); n != baseOrder {
		t.Errorf("creation-order list grew: %d -> %d", baseOrder, n)
	}
	if n := len(r.h.sched.weights); n != baseWeights {
		t.Errorf("scheduler weights grew: %d -> %d", baseWeights, n)
	}
	if n := len(r.h.sched.credits); n != baseCredits {
		t.Errorf("scheduler credits grew: %d -> %d", baseCredits, n)
	}
	if n := len(r.h.sched.run); n != baseRun {
		t.Errorf("run queue grew: %d -> %d", baseRun, n)
	}
	if n := livePorts(); n != basePorts {
		t.Errorf("live channels grew: %d -> %d", basePorts, n)
	}
	// Reclaimed slots are reused, so the slot table grows by at most the
	// single slot the loop keeps in flight.
	if n := len(r.h.ports); n > basePorts+1 {
		t.Errorf("channel slot table grew unboundedly: %d slots after %d cycles", n, cycles)
	}
	if free := r.m.Mem.FreeFrames(); free != baseFree {
		t.Errorf("frames leaked: %d free -> %d", baseFree, free)
	}

	// Destroyed ids still answer with the dead-domain error, never a
	// ghost entry; unknown ids stay distinct.
	if err := r.h.Hypercall(r.domU.ID+1, "x", 0); !errors.Is(err, ErrDomainDead) {
		t.Errorf("destroyed id err = %v, want ErrDomainDead", err)
	}
	if err := r.h.Hypercall(9999, "x", 0); !errors.Is(err, ErrNoSuchDomain) {
		t.Errorf("unknown id err = %v, want ErrNoSuchDomain", err)
	}
}

func TestStalePortCannotAliasReusedChannelSlot(t *testing.T) {
	// A destroyed domain's channel slot is reclaimed, but the surviving
	// peer may still hold the old port number. The reused slot's ports
	// carry a new generation, so signalling the stale port must error —
	// never deliver an upcall to the slot's next occupant.
	r := newVrig(t, hw.X86())
	a, err := r.h.CreateDomain("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	pStale, _, err := r.h.BindChannel(r.dom0.ID, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.h.DestroyDomain(a.ID); err != nil {
		t.Fatal(err)
	}
	b, err := r.h.CreateDomain("b", 8)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	b.SetHooks(GuestHooks{OnEvent: func(Port) { hits++ }})
	pNew, _, err := r.h.BindChannel(r.dom0.ID, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if pNew == pStale {
		t.Fatal("reused slot handed out the dead channel's port number")
	}
	if err := r.h.NotifyChannel(r.dom0.ID, pStale); err == nil {
		t.Fatal("stale port accepted")
	}
	if hits != 0 {
		t.Fatal("stale port delivered an upcall to the slot's new occupant")
	}
	if err := r.h.NotifyChannel(r.dom0.ID, pNew); err != nil || hits != 1 {
		t.Fatalf("fresh channel broken: err=%v hits=%d", err, hits)
	}
}

func TestBalloonChurnKeepsHolesBounded(t *testing.T) {
	// BalloonIn must prune the P2M holes it fills; an out/in churn loop
	// otherwise accumulates stale entries without bound.
	r := newVrig(t, hw.X86())
	d := r.domU
	countHoles := func() int {
		n := 0
		for _, f := range d.frames {
			if f == hw.NoFrame {
				n++
			}
		}
		return n
	}
	for i := 0; i < 20; i++ {
		out, err := r.h.BalloonOut(d.ID, 8)
		if err != nil || out != 8 {
			t.Fatalf("cycle %d: ballooned out %d, %v", i, out, err)
		}
		in, err := r.h.BalloonIn(d.ID, 8)
		if err != nil || in != 8 {
			t.Fatalf("cycle %d: ballooned in %d, %v", i, in, err)
		}
		if got, want := len(d.holes), countHoles(); got != want {
			t.Fatalf("cycle %d: hole list has %d entries for %d real holes", i, got, want)
		}
	}
	if len(d.holes) != 0 {
		t.Fatalf("hole list not empty after balanced churn: %d", len(d.holes))
	}
	// A flip-punched hole is pruned the same way once ballooned full.
	f := d.FrameAt(3)
	ref, err := r.h.GrantAccess(d.ID, f, r.dom0.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.h.GrantTransfer(r.dom0.ID, d.ID, ref); err != nil {
		t.Fatal(err)
	}
	if len(d.holes) != 1 {
		t.Fatalf("flip should punch one hole, have %d", len(d.holes))
	}
	if _, err := r.h.BalloonIn(d.ID, 1); err != nil {
		t.Fatal(err)
	}
	if len(d.holes) != 0 || countHoles() != 0 {
		t.Fatalf("hole not pruned after fill: list=%d real=%d", len(d.holes), countHoles())
	}
}

func TestSchedulerWeightedRoundRobin(t *testing.T) {
	r := newVrig(t, hw.X86())
	r.h.SetWeight(r.dom0.ID, 2)
	counts := map[DomID]int{}
	for i := 0; i < 9; i++ {
		d := r.h.ScheduleNext()
		if d == nil {
			t.Fatal("no runnable domain")
		}
		counts[d.ID]++
	}
	if counts[r.dom0.ID] <= counts[r.domU.ID] {
		t.Fatalf("weighting ignored: %v", counts)
	}
	if counts[r.domU.ID] == 0 {
		t.Fatal("starvation: domU never ran")
	}
	if r.h.Decisions() != 9 {
		t.Fatalf("decisions = %d, want 9", r.h.Decisions())
	}
}

func TestSchedulerSkipsDeadDomains(t *testing.T) {
	r := newVrig(t, hw.X86())
	r.h.DestroyDomain(r.domU.ID)
	for i := 0; i < 5; i++ {
		d := r.h.ScheduleNext()
		if d == nil || d.ID != r.dom0.ID {
			t.Fatalf("scheduled %v, want dom0 only", d)
		}
	}
}

func TestWorldSwitchChargedOnDomainChange(t *testing.T) {
	r := newVrig(t, hw.X86())
	ws0 := r.m.Rec.Counts(trace.KWorldSwitch)
	r.h.Hypercall(r.dom0.ID, "a", 0)
	r.h.Hypercall(r.domU.ID, "b", 0)
	r.h.Hypercall(r.domU.ID, "c", 0) // same domain: no switch
	ws1 := r.m.Rec.Counts(trace.KWorldSwitch)
	if ws1-ws0 != 2 {
		t.Fatalf("world switches = %d, want 2", ws1-ws0)
	}
}

func TestTenPrimitivesAllObservable(t *testing.T) {
	// Exercise each of the paper's ten primitives once and verify each
	// leaves its distinct trace — the raw material of the E5 census.
	r := newVrig(t, hw.X86())
	r.domU.SetHooks(GuestHooks{
		OnSyscall: func(no uint32, args []uint64) []uint64 { return nil },
		OnEvent:   func(p Port) {},
		OnVIRQ:    func(v int) {},
	})
	r.dom0.SetHooks(GuestHooks{OnVIRQ: func(v int) {}})

	r.h.GuestSyscall(r.domU.ID, 1, nil)                          // 1+2 (u2k, k2u) via 7 (bounce)
	p0, _, _ := r.h.BindChannel(r.dom0.ID, r.domU.ID)            //
	r.h.NotifyChannel(r.dom0.ID, p0)                             // 3 (+8 virq upcall)
	r.h.Hypercall(r.domU.ID, "balloon", 50)                      // 4
	r.h.MMUUpdate(r.domU.ID, 0x400, 1, hw.PermRW, true)          // 5
	f := r.dom0.FrameAt(4)                                       //
	ref, _ := r.h.GrantAccess(r.dom0.ID, f, r.domU.ID, false)    //
	r.h.GrantTransfer(r.domU.ID, r.dom0.ID, ref)                 // 6
	r.h.RouteIRQ(2, r.dom0.ID)                                   // 9 setup
	r.m.IRQ.Raise(2)                                             //
	r.m.IRQ.DispatchPending(r.m.Rec.Intern(HypervisorComponent)) // 9
	r.h.VirtDeviceOp(r.domU.ID, "console", 10)                   // 10

	want := []trace.Kind{
		trace.KGuestUserToKernel, trace.KGuestKernelToUser, trace.KEvtchnSend,
		trace.KHypercall, trace.KShadowPTUpdate, trace.KPageFlip,
		trace.KExceptionBounce, trace.KVirtIRQ, trace.KHardIRQInject, trace.KVirtDeviceOp,
	}
	for _, k := range want {
		if r.m.Rec.Counts(k) == 0 {
			t.Errorf("primitive %v never observed", k)
		}
	}
	if got := len(r.m.Rec.DistinctPrimitives("vmm")); got != 10 {
		t.Fatalf("census sees %d distinct VMM primitives, want 10", got)
	}
}
