package vmm

import (
	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// GrantRef names an entry in a domain's grant table.
type GrantRef int

// grantEntry is one granted page.
type grantEntry struct {
	frame    hw.FrameID
	to       DomID
	readOnly bool
	revoked  bool
	mapped   int // active foreign mappings
}

// grantTable is a domain's table of pages it has offered to other domains.
// Grants are the mutual-agreement half of Xen I/O: the frontend grants, the
// backend maps/copies/flips. Entries are stored by value; the pointers the
// lookup helpers hand out are into the slice and stay valid only until the
// next GrantAccess, which every caller satisfies by finishing its hypercall
// before issuing another grant.
type grantTable struct {
	entries []grantEntry
}

func newGrantTable() *grantTable { return &grantTable{} }

func (g *grantTable) revokeAll() {
	for i := range g.entries {
		g.entries[i].revoked = true
	}
}

// GrantAccess creates a grant of the owner's frame to domain to. The owner
// must actually own the frame; this is the monitor's validation burden.
func (h *Hypervisor) GrantAccess(owner DomID, frame hw.FrameID, to DomID, readOnly bool) (GrantRef, error) {
	d, err := h.lookup(owner)
	if err != nil {
		return 0, err
	}
	if !d.OwnsFrame(frame) {
		return 0, ErrFrameNotOwned
	}
	h.hypercallEntry(d)
	defer h.hypercallExit(d)
	d.grants.entries = append(d.grants.entries, grantEntry{frame: frame, to: to, readOnly: readOnly})
	h.M.CPU.Work(h.comp, 60)
	return GrantRef(len(d.grants.entries) - 1), nil
}

// lookupGrant validates a (owner, ref) pair for use by domain user.
func (h *Hypervisor) lookupGrant(owner DomID, ref GrantRef, user DomID) (*Domain, *grantEntry, error) {
	d := h.dom(owner)
	if d == nil || d.Dead {
		return nil, nil, ErrDomainDead
	}
	if ref < 0 || int(ref) >= len(d.grants.entries) {
		return nil, nil, ErrBadGrant
	}
	e := &d.grants.entries[ref]
	if e.revoked {
		return nil, nil, ErrGrantRevoked
	}
	if e.to != user {
		return nil, nil, ErrBadGrant
	}
	return d, e, nil
}

// GrantMap maps a granted page into the user domain at vpn (netback-style
// zero-copy RX examination). Costs: hypercall + PTE install.
func (h *Hypervisor) GrantMap(user DomID, owner DomID, ref GrantRef, vpn hw.VPN) error {
	ud, err := h.lookup(user)
	if err != nil {
		return err
	}
	od, e, err := h.lookupGrant(owner, ref, user)
	if err != nil {
		return err
	}
	if !od.OwnsFrame(e.frame) {
		// The frame left the granter (another grant's flip): the grant
		// dangles and must not expose the new owner's memory.
		return ErrGrantRevoked
	}
	h.hypercallEntry(ud)
	defer h.hypercallExit(ud)
	perms := hw.PermRW
	if e.readOnly {
		perms = hw.PermR
	}
	ud.PT.Map(vpn, hw.PTE{Frame: e.frame, Perms: perms, User: false})
	e.mapped++
	h.M.CPU.Charge(h.comp, trace.KGrantMap, h.M.Arch.Costs.PTEUpdate+40)
	return nil
}

// GrantUnmap removes a previously mapped grant from the user domain. The
// owner may already be dead or destroyed — tearing down one's own mapping
// of a defunct peer's page must always succeed (frontends unmap after a
// backend crash); only the grant's map count is then left unadjusted.
func (h *Hypervisor) GrantUnmap(user DomID, owner DomID, ref GrantRef, vpn hw.VPN) error {
	ud, err := h.lookup(user)
	if err != nil {
		return err
	}
	var e *grantEntry
	if d := h.dom(owner); d != nil {
		if ref < 0 || int(ref) >= len(d.grants.entries) {
			return ErrBadGrant
		}
		e = &d.grants.entries[ref]
	} else if owner >= h.nextDom {
		return ErrNoSuchDomain
	}
	h.hypercallEntry(ud)
	defer h.hypercallExit(ud)
	ud.PT.Unmap(vpn)
	if e != nil && e.mapped > 0 {
		e.mapped--
	}
	h.M.CPU.Work(h.comp, h.M.Arch.Costs.PTEUpdate)
	h.M.CPU.FlushTLBEntry(h.comp, ud.PT.ASID(), vpn)
	return nil
}

// GrantCopy copies n bytes from a granted source page into the user's
// buffer frame, mediated and validated by the monitor. This is the
// copy-mode alternative to page flipping whose trade-off E9 ablates (and
// which Xen itself later adopted for network RX).
func (h *Hypervisor) GrantCopy(user DomID, owner DomID, ref GrantRef, dst hw.FrameID, n uint64) error {
	ud, err := h.lookup(user)
	if err != nil {
		return err
	}
	if !ud.OwnsFrame(dst) {
		return ErrFrameNotOwned
	}
	od, e, err := h.lookupGrant(owner, ref, user)
	if err != nil {
		return err
	}
	if !od.OwnsFrame(e.frame) {
		return ErrGrantRevoked // dangling: the frame was flipped away
	}
	h.hypercallEntry(ud)
	defer h.hypercallExit(ud)
	copied := h.M.Mem.Copy(dst, e.frame, n)
	h.M.CPU.Charge(h.comp, trace.KGrantCopy, 120+h.M.CPU.CopyCost(copied))
	return nil
}

// GrantTransfer performs a page flip: ownership of the granted frame moves
// from owner to user, the owner's mappings of it are torn down, and the TLB
// is shot down. Paper primitive 6 ("resource re-allocation via page
// flipping"). Note the cost structure: per *page*, independent of how many
// bytes of the page carry payload — the exact property Cherkasova &
// Gardner measured and E1 reproduces.
func (h *Hypervisor) GrantTransfer(user DomID, owner DomID, ref GrantRef) (hw.FrameID, error) {
	ud, err := h.lookup(user)
	if err != nil {
		return hw.NoFrame, err
	}
	od, e, err := h.lookupGrant(owner, ref, user)
	if err != nil {
		return hw.NoFrame, err
	}
	if e.readOnly {
		return hw.NoFrame, ErrGrantReadOnly
	}
	if !od.OwnsFrame(e.frame) {
		// The same frame was granted more than once and another grant's
		// flip already moved it: this grant dangles. Without this check a
		// second transfer would reassign a frame its granter no longer
		// owns and desynchronise the ownership ledger.
		return hw.NoFrame, ErrGrantRevoked
	}
	h.hypercallEntry(ud)
	defer h.hypercallExit(ud)

	// Tear down the previous owner's mappings of the frame.
	removed := od.PT.UnmapFrame(e.frame)
	h.M.CPU.Work(h.comp, hw.Cycles(removed)*h.M.Arch.Costs.PTEUpdate)
	// Ownership moves in the physical ledger and in both frame lists.
	h.M.Mem.Transfer(e.frame, ud.Component())
	od.removeFrame(e.frame)
	ud.addFrame(e.frame)
	e.revoked = true
	// TLB shootdown: the flip invalidates translations machine-wide.
	h.M.CPU.FlushTLB(h.comp)
	h.M.CPU.Charge(h.comp, trace.KPageFlip,
		2*h.M.Arch.Costs.PTEUpdate+h.M.Arch.Costs.TLBFlushAll+200)
	return e.frame, nil
}

// removeFrame punches a hole in the pseudo-physical map: after a flip the
// donor's guest page number maps to nothing until a replacement page is
// ballooned in, exactly like Xen's physical-to-machine table. The slot is
// remembered for reuse.
func (d *Domain) removeFrame(f hw.FrameID) {
	for i, x := range d.frames {
		if x == f {
			d.frames[i] = hw.NoFrame
			d.holes = append(d.holes, i)
			return
		}
	}
}

// addFrame installs an incoming frame, reusing a P2M hole when one exists.
// It returns the guest page number.
func (d *Domain) addFrame(f hw.FrameID) int {
	for len(d.holes) > 0 {
		i := d.holes[len(d.holes)-1]
		d.holes = d.holes[:len(d.holes)-1]
		// BalloonIn prunes the holes it fills, so entries here should
		// always be genuine; the check stays as a defensive guard.
		if d.frames[i] == hw.NoFrame {
			d.frames[i] = f
			return i
		}
	}
	d.frames = append(d.frames, f)
	return len(d.frames) - 1
}

// pruneHole removes gpn from the free-slot list after the hole is filled
// by a path that addresses slots directly (BalloonIn) rather than popping
// them (addFrame).
func (d *Domain) pruneHole(gpn int) {
	for i, g := range d.holes {
		if g == gpn {
			d.holes = append(d.holes[:i], d.holes[i+1:]...)
			return
		}
	}
}

// GrantRevoke withdraws a grant the owner previously issued.
func (h *Hypervisor) GrantRevoke(owner DomID, ref GrantRef) error {
	d, err := h.lookup(owner)
	if err != nil {
		return err
	}
	if ref < 0 || int(ref) >= len(d.grants.entries) {
		return ErrBadGrant
	}
	h.hypercallEntry(d)
	defer h.hypercallExit(d)
	d.grants.entries[ref].revoked = true
	h.M.CPU.Work(h.comp, 40)
	return nil
}
