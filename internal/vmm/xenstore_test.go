package vmm

import (
	"errors"
	"testing"

	"vmmk/internal/hw"
)

func storeRig(t *testing.T) (*vrig, *Store) {
	t.Helper()
	r := newVrig(t, hw.X86())
	return r, NewStore(r.h)
}

func TestStoreHomePrefixWrite(t *testing.T) {
	r, st := storeRig(t)
	home := homePrefix(r.domU.ID)
	if err := st.Write(r.domU.ID, home+"device/vif/0/state", "connected"); err != nil {
		t.Fatal(err)
	}
	v, err := st.Read(r.domU.ID, home+"device/vif/0/state")
	if err != nil || v != "connected" {
		t.Fatalf("read = %q, %v", v, err)
	}
}

func TestStoreDeniesForeignWrite(t *testing.T) {
	r, st := storeRig(t)
	if err := st.Write(r.domU.ID, "/local/domain/0/backend", "evil"); !errors.Is(err, ErrStorePerm) {
		t.Fatalf("err = %v, want ErrStorePerm", err)
	}
}

func TestStorePrivilegedWritesAnywhere(t *testing.T) {
	r, st := storeRig(t)
	if err := st.Write(r.dom0.ID, "/vm/"+r.domU.Name+"/name", "guest one"); err != nil {
		t.Fatal(err)
	}
}

func TestStoreGrantWrite(t *testing.T) {
	r, st := storeRig(t)
	path := "/local/domain/0/backend/vbd/1/state"
	if err := st.GrantWrite(r.dom0.ID, r.domU.ID, path); err != nil {
		t.Fatal(err)
	}
	if err := st.Write(r.domU.ID, path, "ready"); err != nil {
		t.Fatal(err)
	}
	// Granting requires privilege.
	if err := st.GrantWrite(r.domU.ID, r.domU.ID, "/x/y"); !errors.Is(err, ErrNotPrivileged) {
		t.Fatalf("err = %v, want ErrNotPrivileged", err)
	}
}

func TestStoreReadMissing(t *testing.T) {
	r, st := storeRig(t)
	if _, err := st.Read(r.domU.ID, "/nope"); !errors.Is(err, ErrStoreNoEntry) {
		t.Fatalf("err = %v, want ErrStoreNoEntry", err)
	}
}

func TestStoreBadPaths(t *testing.T) {
	r, st := storeRig(t)
	for _, p := range []string{"", "noslash", "/", "/a//b"} {
		if err := st.Write(r.dom0.ID, p, "x"); !errors.Is(err, ErrStoreBadPath) {
			t.Errorf("path %q: err = %v, want ErrStoreBadPath", p, err)
		}
	}
}

func TestStoreList(t *testing.T) {
	r, st := storeRig(t)
	st.Write(r.dom0.ID, "/vm/a/name", "1")
	st.Write(r.dom0.ID, "/vm/b/name", "2")
	st.Write(r.dom0.ID, "/vm/b/memory", "64")
	kids, err := st.List(r.dom0.ID, "/vm")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0] != "a" || kids[1] != "b" {
		t.Fatalf("list = %v", kids)
	}
}

func TestStoreWatchFires(t *testing.T) {
	r, st := storeRig(t)
	var got []string
	err := st.Watch(r.dom0.ID, "/local/domain/1/device", func(p, v string) {
		got = append(got, p+"="+v)
	})
	if err != nil {
		t.Fatal(err)
	}
	home := homePrefix(r.domU.ID)
	st.Write(r.domU.ID, home+"device/vif/0/state", "init")
	if len(got) != 1 || got[0] != home+"device/vif/0/state=init" {
		t.Fatalf("watch deliveries = %v", got)
	}
	// Unrelated path: no fire.
	st.Write(r.dom0.ID, "/vm/x", "y")
	if len(got) != 1 {
		t.Fatal("watch fired for unrelated path")
	}
}

func TestStoreWatchSkipsDeadWatcher(t *testing.T) {
	r, st := storeRig(t)
	fired := false
	st.Watch(r.domU.ID, "/vm", func(p, v string) { fired = true })
	r.h.DestroyDomain(r.domU.ID)
	st.Write(r.dom0.ID, "/vm/x", "y")
	if fired {
		t.Fatal("dead domain's watch fired")
	}
}

func TestStoreDeadDomainOps(t *testing.T) {
	r, st := storeRig(t)
	r.h.DestroyDomain(r.domU.ID)
	if err := st.Write(r.domU.ID, homePrefix(r.domU.ID)+"x", "y"); !errors.Is(err, ErrDomainDead) {
		t.Fatalf("err = %v, want ErrDomainDead", err)
	}
	if _, err := st.Read(r.domU.ID, "/x"); !errors.Is(err, ErrDomainDead) {
		t.Fatalf("err = %v, want ErrDomainDead", err)
	}
}

func TestBalloonOutIn(t *testing.T) {
	r := newVrig(t, hw.X86())
	owned0 := r.domU.OwnedPages()
	free0 := r.m.Mem.FreeFrames()

	out, err := r.h.BalloonOut(r.domU.ID, 10)
	if err != nil || out != 10 {
		t.Fatalf("balloon out = %d, %v", out, err)
	}
	if r.domU.OwnedPages() != owned0-10 {
		t.Fatal("owned pages wrong after deflate")
	}
	if r.m.Mem.FreeFrames() != free0+10 {
		t.Fatal("machine pool wrong after deflate")
	}

	in, err := r.h.BalloonIn(r.domU.ID, 10)
	if err != nil || in != 10 {
		t.Fatalf("balloon in = %d, %v", in, err)
	}
	if r.domU.OwnedPages() != owned0 {
		t.Fatal("owned pages wrong after inflate")
	}
	// Holes must be gone.
	for gpn := 0; gpn < len(r.domU.Frames()); gpn++ {
		if r.domU.FrameAt(gpn) == hw.NoFrame {
			t.Fatalf("hole at gpn %d after inflate", gpn)
		}
	}
}

func TestBalloonOutUnmapsPages(t *testing.T) {
	r := newVrig(t, hw.X86())
	last := len(r.domU.Frames()) - 1
	if err := r.h.MMUUpdate(r.domU.ID, 0x600, last, hw.PermRW, true); err != nil {
		t.Fatal(err)
	}
	if _, err := r.h.BalloonOut(r.domU.ID, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.domU.PT.Lookup(0x600); ok {
		t.Fatal("ballooned-out page still mapped — guest could touch free memory")
	}
}

func TestBalloonInExhaustion(t *testing.T) {
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 70})
	h, _, err := New(m, 64)
	if err != nil {
		t.Fatal(err)
	}
	dU, err := h.CreateDomain("u", 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.BalloonIn(dU.ID, 10) // only ~2 frames left
	if !errors.Is(err, ErrBalloonEmpty) {
		t.Fatalf("err = %v, want ErrBalloonEmpty", err)
	}
}
