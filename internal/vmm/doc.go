// Package vmm implements a Xen-style virtual-machine monitor over the hw
// substrate: domains with paravirtualised guest kernels, the hypercall
// interface, asynchronous event channels, grant tables with page flipping
// and hypervisor-mediated copy, validated (shadow) page-table updates with
// a write-fault dirty log, exception virtualisation with the x86 trap-gate
// syscall shortcut, a virtual interrupt controller, whole-domain mobility
// (pause/save/restore, stop-and-copy Migrate and live pre-copy
// MigrateLive), and a credit scheduler. It is "system B" of the paper's
// comparison; package mk is its L4-shaped counterpart, package vmmos the
// guest side that runs on it, and package core boots and measures the two
// side by side.
//
// The package deliberately exposes the ten primitives the paper's §2.2
// enumerates as "the common subset … found in most VMMs", each with its own
// entry point, validation and bookkeeping — in contrast to package mk,
// where one IPC primitive carries everything. Experiment E5 counts exactly
// this difference.
//
// Multiprocessor model: a domain may be given several virtual CPUs, each
// pinned to a physical CPU (PlaceVCPUs); ScheduleSMP runs the credit
// scheduler's placement epoch, one decision per pCPU, and never installs
// the same vCPU on two pCPUs. Shadow-page-table invalidation (trap-and-
// emulate writes, MMUUnmap, dirty-log arming) shoots down every pCPU
// hosting one of the domain's vCPUs, and event delivery into a remotely
// placed domain pays a kick IPI. Domains that are never placed keep the
// free uniprocessor arrangement, which is how E1–E11 stay bit-for-bit
// unchanged; experiment E12 sweeps core counts.
package vmm
