package vmm

import (
	"errors"

	"vmmk/internal/hw"
)

// Ballooning: the memory-elasticity hypercalls that let a domain return
// pages to the machine pool and reclaim them later. This is the mechanism
// behind the flip path's steady state (the guest balloons out consumed
// packet pages, Dom0 balloons replacements into its NIC pool) and the
// standard way VM memory is resized — another entry in the VMM's primitive
// inventory (it rides hypercall + P2M machinery, primitives 4 and 5).

// ErrBalloonEmpty is returned when inflating from an empty machine pool.
var ErrBalloonEmpty = errors.New("vmm: no free machine memory to balloon in")

// BalloonOut releases n owned pages (highest guest page numbers first) to
// the machine pool. It returns how many were actually released — holes and
// flipped-away slots are skipped.
func (h *Hypervisor) BalloonOut(dom DomID, n int) (int, error) {
	d, err := h.lookup(dom)
	if err != nil {
		return 0, err
	}
	h.hypercallEntry(d)
	defer h.hypercallExit(d)
	released := 0
	for gpn := len(d.frames) - 1; gpn >= 0 && released < n; gpn-- {
		f := d.frames[gpn]
		if f == hw.NoFrame || !d.OwnsFrame(f) {
			continue
		}
		d.PT.UnmapFrame(f)
		d.frames[gpn] = hw.NoFrame
		d.holes = append(d.holes, gpn)
		h.M.Mem.Free(f)
		h.M.CPU.Work(h.comp, hw.Cycles(60)+h.M.Arch.Costs.PTEUpdate)
		released++
	}
	if released > 0 {
		h.M.CPU.FlushTLB(h.comp)
	}
	return released, nil
}

// BalloonIn allocates n fresh pages to the domain, filling P2M holes first
// and appending beyond them. It returns how many pages were obtained.
func (h *Hypervisor) BalloonIn(dom DomID, n int) (int, error) {
	d, err := h.lookup(dom)
	if err != nil {
		return 0, err
	}
	h.hypercallEntry(d)
	defer h.hypercallExit(d)
	got := 0
	fill := func(gpn int) bool {
		f, err := h.M.Mem.Alloc(d.Component())
		if err != nil {
			return false
		}
		if gpn < len(d.frames) {
			d.frames[gpn] = f
			// The slot is no longer a hole: prune it from the free list so
			// churn does not accumulate stale entries for addFrame to skip.
			d.pruneHole(gpn)
		} else {
			d.frames = append(d.frames, f)
		}
		h.M.CPU.Work(h.comp, 80)
		got++
		return true
	}
	for gpn := 0; gpn < len(d.frames) && got < n; gpn++ {
		if d.frames[gpn] == hw.NoFrame {
			if !fill(gpn) {
				return got, ErrBalloonEmpty
			}
		}
	}
	for got < n {
		if !fill(len(d.frames)) {
			return got, ErrBalloonEmpty
		}
	}
	return got, nil
}

// OwnedPages returns the number of machine pages the domain currently owns
// (holes excluded).
func (d *Domain) OwnedPages() int {
	n := 0
	for _, f := range d.frames {
		if f != hw.NoFrame && d.OwnsFrame(f) {
			n++
		}
	}
	return n
}
