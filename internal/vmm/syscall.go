package vmm

import (
	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// This file implements exception virtualisation (paper primitives 1, 2 and
// 7) and the x86 trap-gate syscall shortcut whose fragility the paper's
// §3.2 dissects:
//
//	"Xen provides a shortcut based on x86's trap gates that avoids
//	invoking the VMM on guest system calls. However, this shortcut is
//	specifically targeted and limited to Linux's int 0x80 system-call
//	variant and restricts the use of segments. Protection can only be
//	preserved if all active segment configurations explicitly exclude
//	the VMM kernel. Since x86's trap mechanism only reloads two of the
//	six segment selectors, the solution is limited; Linux's latest
//	glibc violates the assumption and renders the shortcut useless."
//
// The model: a domain's fast path is valid while every guest data segment
// excludes [VMMBase, ∞). Loading a flat segment (glibc's TLS setup does
// exactly this) invalidates it, and every subsequent syscall takes the
// bounced path through the monitor.

// EnableFastPath registers the guest's trap gate and (re)computes the
// segment precondition. Returns whether the fast path is active.
func (h *Hypervisor) EnableFastPath(dom DomID) (bool, error) {
	d, err := h.lookup(dom)
	if err != nil {
		return false, err
	}
	h.hypercallEntry(d)
	defer h.hypercallExit(d)
	if !h.M.Arch.HasSegmentation || !h.FastPathPolicy {
		d.fastPathOK = false
		return false, nil
	}
	d.fastPathOK = h.M.CPU.SegmentsExclude(VMMBase)
	return d.fastPathOK, nil
}

// LoadGuestSegment virtualises a guest segment-register load (the guest
// updates its GDT/LDT via hypercall, then reloads the selector). The
// monitor re-validates the fast-path precondition: one flat segment kills
// the shortcut for the whole domain.
func (h *Hypervisor) LoadGuestSegment(dom DomID, reg hw.SegReg, seg hw.Segment) error {
	d, err := h.lookup(dom)
	if err != nil {
		return err
	}
	h.hypercallEntry(d) // update_descriptor hypercall
	h.M.CPU.LoadSegment(d.comp, reg, seg)
	if d.fastPathOK && !h.M.CPU.SegmentsExclude(VMMBase) {
		d.fastPathOK = false
	}
	h.hypercallExit(d)
	return nil
}

// FastPathActive reports whether the domain's syscall shortcut is live.
func (h *Hypervisor) FastPathActive(dom DomID) bool {
	d := h.dom(dom)
	return d != nil && d.fastPathOK && h.FastPathPolicy
}

// GuestSyscall executes one guest system call. Two paths exist:
//
// Fast path (trap gate): ring 3 -> ring 1 directly, the monitor never
// runs. Costs one gate entry plus the guest kernel's own work, essentially
// native. Counted as KSyscallFastPath + the guest-u2k/k2u pair.
//
// Bounced path: ring 3 -> ring 0 (monitor) -> ring 1 (guest kernel) ->
// ring 0 -> ring 3. The monitor pays entry, validation and two transitions;
// this is the "IPC operation between the guest application and the guest
// OS" the paper identifies.
//
// The returned values are whatever the guest kernel's OnSyscall produced.
func (h *Hypervisor) GuestSyscall(dom DomID, no uint32, args []uint64) ([]uint64, error) {
	d, err := h.lookup(dom)
	if err != nil {
		return nil, err
	}
	h.switchTo(d)
	d.syscalls++

	fast := d.fastPathOK && h.FastPathPolicy && h.M.Arch.HasSegmentation
	if fast {
		// Trap gate: direct ring3 -> ring1 transition at hardware trap
		// cost, charged to the *guest*, since the monitor is not involved.
		d.fastSyscalls++
		h.M.CPU.Clock.Advance(h.M.Arch.Costs.KernelEntry)
		h.M.Rec.Charge(uint64(h.M.Clock.Now()), trace.KSyscallFastPath, d.comp, uint64(h.M.Arch.Costs.KernelEntry))
		h.M.CPU.SetRing(hw.Ring1)
		h.M.Rec.Charge(uint64(h.M.Clock.Now()), trace.KGuestUserToKernel, d.comp, 0)
	} else {
		// Bounce: monitor entry, validation, reflected into the guest
		// kernel (primitive 7), which is an accounted exception bounce.
		h.M.CPU.Trap(h.comp, false)
		h.M.CPU.Work(h.comp, h.M.Arch.Costs.PrivCheck)
		h.M.CPU.Charge(h.comp, trace.KExceptionBounce, h.M.Arch.Costs.CtxSave)
		h.M.CPU.ReturnTo(h.comp, hw.Ring1)
		h.M.Rec.Charge(uint64(h.M.Clock.Now()), trace.KGuestUserToKernel, d.comp, 0)
	}

	// Guest kernel executes the system call.
	var ret []uint64
	if d.Hooks.OnSyscall != nil {
		ret = d.Hooks.OnSyscall(no, args)
	}

	// Return to guest user (primitive 2). The fast path irets directly;
	// the bounced path needs the monitor again for the privileged iret.
	if fast {
		h.M.CPU.Clock.Advance(h.M.Arch.Costs.KernelExit)
		h.M.Rec.Charge(uint64(h.M.Clock.Now()), trace.KGuestKernelToUser, d.comp, uint64(h.M.Arch.Costs.KernelExit))
		h.M.CPU.SetRing(hw.Ring3)
	} else {
		h.M.CPU.Trap(h.comp, h.M.Arch.HasFastSyscall)
		h.M.CPU.ReturnTo(h.comp, hw.Ring3)
		h.M.Rec.Charge(uint64(h.M.Clock.Now()), trace.KGuestKernelToUser, d.comp, 0)
	}
	return ret, nil
}

// GuestException reflects a guest-application exception (page fault,
// divide error, …) into the guest kernel: paper primitive 7 ("page-fault
// and exception handling via exception virtualisation"). The handler
// argument is the guest kernel's response; a nil handler models an
// unhandled exception and returns false.
func (h *Hypervisor) GuestException(dom DomID, vector int, handle func()) (bool, error) {
	d, err := h.lookup(dom)
	if err != nil {
		return false, err
	}
	h.switchTo(d)
	// Exceptions always enter the monitor first (no gate shortcut: the
	// monitor must see faults to maintain its own invariants).
	h.M.CPU.Trap(h.comp, false)
	h.M.CPU.Charge(h.comp, trace.KExceptionBounce, h.M.Arch.Costs.CtxSave)
	h.M.CPU.ReturnTo(h.comp, hw.Ring1)
	if handle == nil {
		return false, nil
	}
	handle()
	h.M.CPU.Trap(h.comp, h.M.Arch.HasFastSyscall)
	h.M.CPU.ReturnTo(h.comp, hw.Ring3)
	_ = vector
	return true, nil
}

// VirtDeviceOp models an access to a monitor-provided virtual device
// (paper primitive 10: "a set of common devices, such as NIC and disk").
// In Xen proper the split-driver model pushes most of this to Dom0, but
// the monitor still owns the console, the domain control interface and
// emergency devices.
func (h *Hypervisor) VirtDeviceOp(dom DomID, device string, cost hw.Cycles) error {
	d, err := h.lookup(dom)
	if err != nil {
		return err
	}
	h.hypercallEntry(d)
	defer h.hypercallExit(d)
	h.M.CPU.Charge(h.comp, trace.KVirtDeviceOp, h.M.Arch.Costs.DeviceMMIO+cost)
	_ = device
	return nil
}
