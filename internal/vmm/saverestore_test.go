package vmm

import (
	"errors"
	"testing"

	"vmmk/internal/hw"
)

func TestPauseUnpause(t *testing.T) {
	r := newVrig(t, hw.X86())
	if err := r.h.Pause(r.domU.ID); err != nil {
		t.Fatal(err)
	}
	if !r.h.Paused(r.domU.ID) {
		t.Fatal("not paused")
	}
	// A paused domain never gets scheduled.
	for i := 0; i < 5; i++ {
		if d := r.h.ScheduleNext(); d != nil && d.ID == r.domU.ID {
			t.Fatal("paused domain scheduled")
		}
	}
	if err := r.h.Unpause(r.domU.ID); err != nil {
		t.Fatal(err)
	}
	seen := false
	for i := 0; i < 5; i++ {
		if d := r.h.ScheduleNext(); d != nil && d.ID == r.domU.ID {
			seen = true
		}
	}
	if !seen {
		t.Fatal("unpaused domain never scheduled")
	}
}

func TestSaveRequiresPause(t *testing.T) {
	r := newVrig(t, hw.X86())
	if _, err := r.h.SaveDomain(r.domU.ID); !errors.Is(err, ErrDomainLive) {
		t.Fatalf("err = %v, want ErrDomainLive", err)
	}
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	r := newVrig(t, hw.X86())
	// Distinctive memory and a mapping.
	copy(r.m.Mem.Data(r.domU.FrameAt(3)), []byte("page-three-data"))
	if err := r.h.MMUUpdate(r.domU.ID, 0x500, 3, hw.PermRW, true); err != nil {
		t.Fatal(err)
	}
	if err := r.h.Pause(r.domU.ID); err != nil {
		t.Fatal(err)
	}
	img, err := r.h.SaveDomain(r.domU.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.h.DestroyDomain(r.domU.ID); err != nil {
		t.Fatal(err)
	}

	d2, err := r.h.RestoreDomain(img)
	if err != nil {
		t.Fatal(err)
	}
	if !r.h.Paused(d2.ID) {
		t.Fatal("restored domain must start paused")
	}
	if string(r.m.Mem.Data(d2.FrameAt(3))[:15]) != "page-three-data" {
		t.Fatal("memory contents lost in save/restore")
	}
	e, ok := d2.PT.Lookup(0x500)
	if !ok || e.Frame != d2.FrameAt(3) || e.Perms != hw.PermRW {
		t.Fatal("page table not rebuilt")
	}
	if err := r.h.Unpause(d2.ID); err != nil {
		t.Fatal(err)
	}
	// The restored domain is fully operational.
	if err := r.h.Hypercall(d2.ID, "probe", 10); err != nil {
		t.Fatal(err)
	}
}

func TestSavePreservesP2MHoles(t *testing.T) {
	r := newVrig(t, hw.X86())
	// Flip a frame away to punch a hole, then save/restore.
	f := r.dom0.FrameAt(0)
	ref, _ := r.h.GrantAccess(r.dom0.ID, f, r.domU.ID, false)
	if _, err := r.h.GrantTransfer(r.domU.ID, r.dom0.ID, ref); err != nil {
		t.Fatal(err)
	}
	r.h.Pause(r.dom0.ID)
	img, err := r.h.SaveDomain(r.dom0.ID)
	if err != nil {
		t.Fatal(err)
	}
	if img.Memory[0] != nil {
		t.Fatal("hole not preserved in image")
	}
	r.h.DestroyDomain(r.dom0.ID)
	d2, err := r.h.RestoreDomain(img)
	if err != nil {
		t.Fatal(err)
	}
	if d2.FrameAt(0) != hw.NoFrame {
		t.Fatal("hole not preserved after restore")
	}
}

func TestMigrateBetweenHypervisors(t *testing.T) {
	// Two machines, two hypervisors; move a guest between them.
	src := newVrig(t, hw.X86())
	m2 := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 512})
	dstH, _, err := New(m2, 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(src.m.Mem.Data(src.domU.FrameAt(7)), []byte("travels-with-me"))
	if err := src.h.MMUUpdate(src.domU.ID, 0x700, 7, hw.PermR, true); err != nil {
		t.Fatal(err)
	}

	d2, err := Migrate(src.h, src.domU.ID, dstH)
	if err != nil {
		t.Fatal(err)
	}
	// Gone at the source, alive (paused) at the destination.
	if src.h.Alive(src.domU.ID) {
		t.Fatal("domain still alive at source")
	}
	if string(m2.Mem.Data(d2.FrameAt(7))[:15]) != "travels-with-me" {
		t.Fatal("memory did not travel")
	}
	if e, ok := d2.PT.Lookup(0x700); !ok || e.Perms != hw.PermR {
		t.Fatal("mappings did not travel")
	}
	if err := dstH.Unpause(d2.ID); err != nil {
		t.Fatal(err)
	}
	if err := dstH.Hypercall(d2.ID, "probe", 10); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreEmptyImage(t *testing.T) {
	r := newVrig(t, hw.X86())
	if _, err := r.h.RestoreDomain(nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if _, err := r.h.RestoreDomain(&DomainImage{Name: "x"}); err == nil {
		t.Fatal("memoryless image accepted")
	}
}

func TestSaveDropsForeignGrantMappings(t *testing.T) {
	r := newVrig(t, hw.X86())
	// domU maps a granted dom0 page; the mapping must not survive a
	// save/restore (the grant is connection state).
	f := r.dom0.FrameAt(1)
	ref, _ := r.h.GrantAccess(r.dom0.ID, f, r.domU.ID, true)
	if err := r.h.GrantMap(r.domU.ID, r.dom0.ID, ref, 0x900); err != nil {
		t.Fatal(err)
	}
	r.h.Pause(r.domU.ID)
	img, err := r.h.SaveDomain(r.domU.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range img.PT {
		if e.VPN == 0x900 {
			t.Fatal("foreign grant mapping leaked into the image")
		}
	}
}
