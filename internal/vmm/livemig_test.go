package vmm

import (
	"errors"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// --- dirty-page logging ----------------------------------------------------

func TestDirtyLogCatchesFirstWritePerRound(t *testing.T) {
	r := newVrig(t, hw.X86())
	dl, err := r.h.EnableDirtyLog(r.domU.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.h.GuestMemWrite(r.domU.ID, 5, 0, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if got := dl.Dirty(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("dirty = %v, want [5]", got)
	}
	if dl.Faults() != 1 {
		t.Fatalf("faults = %d, want 1", dl.Faults())
	}
	if r.m.Rec.Counts(trace.KDirtyLogFault) != 1 {
		t.Fatal("dirty-log fault not recorded")
	}
	// The second store to an unprotected page is full speed: no new fault.
	if err := r.h.GuestMemWrite(r.domU.ID, 5, 8, []byte("again")); err != nil {
		t.Fatal(err)
	}
	if dl.Faults() != 1 {
		t.Fatalf("faults after free write = %d, want 1", dl.Faults())
	}
	// Re-arming hands back the round's dirty set and re-protects.
	if got := dl.Rearm(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("rearm returned %v, want [5]", got)
	}
	if got := dl.Dirty(); len(got) != 0 {
		t.Fatalf("dirty after rearm = %v, want empty", got)
	}
	if err := r.h.GuestMemWrite(r.domU.ID, 5, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if dl.Faults() != 2 {
		t.Fatalf("re-armed page did not fault: faults = %d", dl.Faults())
	}
}

func TestDirtyLogWriteProtectsAndRestoresPerms(t *testing.T) {
	r := newVrig(t, hw.X86())
	// One mapping the guest holds writable, one deliberately read-only.
	if err := r.h.MMUUpdate(r.domU.ID, 0xA00, 3, hw.PermRW, true); err != nil {
		t.Fatal(err)
	}
	if err := r.h.MMUUpdate(r.domU.ID, 0xA01, 4, hw.PermR, true); err != nil {
		t.Fatal(err)
	}
	if _, err := r.h.EnableDirtyLog(r.domU.ID); err != nil {
		t.Fatal(err)
	}
	if e, _ := r.domU.PT.Lookup(0xA00); e.Perms&hw.PermW != 0 {
		t.Fatal("armed page still writable")
	}
	// The fault restores write permission on the faulting page only.
	if err := r.h.GuestMemWrite(r.domU.ID, 3, 0, []byte("w")); err != nil {
		t.Fatal(err)
	}
	if e, _ := r.domU.PT.Lookup(0xA00); e.Perms&hw.PermW == 0 {
		t.Fatal("fault did not restore write permission")
	}
	r.h.DisableDirtyLog(r.domU.ID)
	if e, _ := r.domU.PT.Lookup(0xA00); e.Perms&hw.PermW == 0 {
		t.Fatal("disable did not restore write permission")
	}
	// The guest's own read-only mapping must never gain PermW.
	if e, _ := r.domU.PT.Lookup(0xA01); e.Perms != hw.PermR {
		t.Fatalf("read-only mapping perms mutated to %v", e.Perms)
	}
}

func TestDirtyLogRearmKeepsCleanPagesRestorable(t *testing.T) {
	// Pages that never fault stay armed across Rearm; their record of
	// which mappings lost PermW must survive so disable (and migration's
	// PT transfer) can restore them. A rearm that rescanned the — now
	// write-protected — page table would wipe that record and leave clean
	// pages read-only forever.
	r := newVrig(t, hw.X86())
	dl, err := r.h.EnableDirtyLog(r.domU.ID)
	if err != nil {
		t.Fatal(err)
	}
	dl.Rearm()
	dl.Rearm()
	r.h.DisableDirtyLog(r.domU.ID)
	if e, ok := r.domU.PT.Lookup(hw.VPN(4)); !ok || e.Perms&hw.PermW == 0 {
		t.Fatalf("clean page left write-protected after rearm cycle: %+v ok=%v", e, ok)
	}
}

func TestDirtyLogLifecycleErrors(t *testing.T) {
	r := newVrig(t, hw.X86())
	if _, err := r.h.EnableDirtyLog(r.domU.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.h.EnableDirtyLog(r.domU.ID); !errors.Is(err, ErrDirtyLogActive) {
		t.Fatalf("double enable err = %v, want ErrDirtyLogActive", err)
	}
	if err := r.h.GuestMemWrite(r.domU.ID, 9999, 0, []byte("x")); !errors.Is(err, ErrFrameNotOwned) {
		t.Fatalf("out-of-range write err = %v, want ErrFrameNotOwned", err)
	}
	if err := r.h.GuestMemWrite(r.domU.ID, 0, 4090, []byte("too-long")); err == nil {
		t.Fatal("page-overrunning write accepted")
	}
	r.h.DestroyDomain(r.domU.ID)
	if err := r.h.GuestMemWrite(r.domU.ID, 0, 0, []byte("x")); !errors.Is(err, ErrDomainDead) {
		t.Fatalf("write to destroyed domain err = %v, want ErrDomainDead", err)
	}
	r.h.DisableDirtyLog(r.domU.ID) // destroyed domain: must be a no-op
}

// --- live pre-copy migration ------------------------------------------------

// liveRig is a source rig plus an empty destination hypervisor.
type liveRig struct {
	*vrig
	m2   *hw.Machine
	dstH *Hypervisor
}

func newLiveRig(t *testing.T) *liveRig {
	t.Helper()
	src := newVrig(t, hw.X86())
	m2 := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 512})
	dstH, _, err := New(m2, 64)
	if err != nil {
		t.Fatal(err)
	}
	return &liveRig{vrig: src, m2: m2, dstH: dstH}
}

func TestMigrateLiveMovesMemoryAndMappings(t *testing.T) {
	r := newLiveRig(t)
	copy(r.m.Mem.Data(r.domU.FrameAt(7)), []byte("steady-state-page"))
	if err := r.h.MMUUpdate(r.domU.ID, 0x700, 7, hw.PermR, true); err != nil {
		t.Fatal(err)
	}
	// The guest keeps writing while pre-copy rounds run; every write must
	// still arrive, including one in the last live round.
	work := func(round int) {
		if err := r.h.GuestMemWrite(r.domU.ID, 9, 0, []byte{'r', byte('0' + round)}); err != nil {
			t.Fatal(err)
		}
	}
	d2, stats, err := MigrateLive(r.h, r.domU.ID, r.dstH, LiveOpts{MaxRounds: 3, GuestWork: work})
	if err != nil {
		t.Fatal(err)
	}
	if r.h.Alive(r.domU.ID) {
		t.Fatal("domain still alive at source")
	}
	if !r.dstH.Paused(d2.ID) {
		t.Fatal("migrated domain must arrive paused")
	}
	if got := string(r.m2.Mem.Data(d2.FrameAt(7))[:17]); got != "steady-state-page" {
		t.Fatalf("memory corrupted in flight: %q", got)
	}
	wantLast := []byte{'r', byte('0' + stats.Rounds)}
	if got := r.m2.Mem.Data(d2.FrameAt(9))[:2]; string(got) != string(wantLast) {
		t.Fatalf("last-round write lost: %q, want %q", got, wantLast)
	}
	if e, ok := d2.PT.Lookup(0x700); !ok || e.Perms != hw.PermR {
		t.Fatal("guest mapping did not travel")
	}
	// Kernel identity mappings regain write permission at the destination
	// (the write-protection belonged to the dirty log, not the guest) —
	// both for the repeatedly dirtied page and for a never-written one.
	if e, ok := d2.PT.Lookup(hw.VPN(9)); !ok || e.Perms&hw.PermW == 0 {
		t.Fatalf("dirtied page's mapping lost PermW: %+v ok=%v", e, ok)
	}
	if e, ok := d2.PT.Lookup(hw.VPN(8)); !ok || e.Perms&hw.PermW == 0 {
		t.Fatalf("clean page's mapping lost PermW: %+v ok=%v", e, ok)
	}
	if stats.Rounds < 1 || stats.Rounds > 3 {
		t.Fatalf("rounds = %d", stats.Rounds)
	}
	if stats.PagesFinal > stats.PagesMoved || stats.PagesMoved < len(d2.Frames()) {
		t.Fatalf("page accounting wrong: %+v", stats)
	}
	if stats.Downtime <= 0 || stats.Total < stats.Downtime {
		t.Fatalf("cycle accounting wrong: %+v", stats)
	}
	// The arrival is a working guest.
	if err := r.dstH.Unpause(d2.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.dstH.Hypercall(d2.ID, "probe", 10); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateLiveDowntimeBeatsStopAndCopy(t *testing.T) {
	// The acceptance criterion: for a low-dirty-rate guest, pre-copy's
	// blackout is strictly shorter than freezing the guest for the whole
	// copy. Both legs run on identically prepared rigs.
	prep := func() *liveRig {
		r := newLiveRig(t)
		for gpn := 0; gpn < 16; gpn++ {
			copy(r.m.Mem.Data(r.domU.FrameAt(gpn)), []byte{byte(gpn)})
		}
		return r
	}

	stop := prep()
	s0, d0 := stop.m.Now(), stop.m2.Now()
	if _, err := Migrate(stop.h, stop.domU.ID, stop.dstH); err != nil {
		t.Fatal(err)
	}
	stopDowntime := (stop.m.Now() - s0) + (stop.m2.Now() - d0)

	live := prep()
	work := func(round int) {
		// Two pages per round: a light writable working set.
		for gpn := 0; gpn < 2; gpn++ {
			if err := live.h.GuestMemWrite(live.domU.ID, gpn, 0, []byte("hot")); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, stats, err := MigrateLive(live.h, live.domU.ID, live.dstH, LiveOpts{MaxRounds: 4, GuestWork: work})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Downtime >= stopDowntime {
		t.Fatalf("live downtime %d not below stop-and-copy %d", stats.Downtime, stopDowntime)
	}
	// Pre-copy pays for the shorter blackout with re-sent pages.
	if stats.PagesMoved <= stats.PagesFinal {
		t.Fatalf("expected pre-copy rounds to move extra pages: %+v", stats)
	}
}

func TestMigrateLivePreservesP2MHoles(t *testing.T) {
	r := newLiveRig(t)
	// Flip a frame away from domU to punch a hole in its P2M.
	f := r.domU.FrameAt(2)
	ref, err := r.h.GrantAccess(r.domU.ID, f, r.dom0.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.h.GrantTransfer(r.dom0.ID, r.domU.ID, ref); err != nil {
		t.Fatal(err)
	}
	d2, _, err := MigrateLive(r.h, r.domU.ID, r.dstH, LiveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.FrameAt(2) != hw.NoFrame {
		t.Fatal("hole not preserved across live migration")
	}
	if d2.FrameAt(3) == hw.NoFrame {
		t.Fatal("neighbouring page lost")
	}
}

func TestMigrateLiveWSSCutoffBoundsRounds(t *testing.T) {
	r := newLiveRig(t)
	// A guest that redirties its whole memory every round can never
	// converge; the working-set cutoff must stop the iteration at the
	// first non-shrinking round rather than burning the full budget.
	n := len(r.domU.Frames())
	work := func(round int) {
		for gpn := 0; gpn < n; gpn++ {
			if err := r.h.GuestMemWrite(r.domU.ID, gpn, 0, []byte{byte(round)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, stats, err := MigrateLive(r.h, r.domU.ID, r.dstH, LiveOpts{MaxRounds: 8, GuestWork: work})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 1 {
		t.Fatalf("non-converging guest ran %d rounds, want the cutoff after 1", stats.Rounds)
	}
	if stats.PagesFinal != n {
		t.Fatalf("final round moved %d pages, want the whole working set %d", stats.PagesFinal, n)
	}
}

func TestMigrateLiveErrors(t *testing.T) {
	r := newLiveRig(t)
	if _, _, err := MigrateLive(r.h, 9999, r.dstH, LiveOpts{}); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("err = %v, want ErrNoSuchDomain", err)
	}
	r.h.DestroyDomain(r.domU.ID)
	if _, _, err := MigrateLive(r.h, r.domU.ID, r.dstH, LiveOpts{}); !errors.Is(err, ErrDomainDead) {
		t.Fatalf("err = %v, want ErrDomainDead", err)
	}
	// A failed migration must not leave the source's dirty log armed.
	r2 := newLiveRig(t)
	tiny := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 8})
	tinyH, _, err := New(tiny, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MigrateLive(r2.h, r2.domU.ID, tinyH, LiveOpts{}); err == nil {
		t.Fatal("migration into an out-of-memory destination should fail")
	}
	if r2.domU.dirtyLog != nil {
		t.Fatal("failed migration left the dirty log enabled")
	}
	// The domain is unharmed and can be migrated properly afterwards.
	if _, _, err := MigrateLive(r2.h, r2.domU.ID, r2.dstH, LiveOpts{}); err != nil {
		t.Fatal(err)
	}
}

// --- transport hook and abort unwinding --------------------------------------

// TestMigrateLiveTransportSeesEveryBatch pins the Transport contract: it is
// consulted once per pre-copy round (1-based, with the round's page count)
// and once for the blackout batch (round 0), and a clean link changes
// nothing about the migration's outcome.
func TestMigrateLiveTransportSeesEveryBatch(t *testing.T) {
	r := newLiveRig(t)
	if err := r.h.GuestMemWrite(r.domU.ID, 3, 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	type batch struct{ round, pages int }
	var batches []batch
	moved, _, err := MigrateLive(r.h, r.domU.ID, r.dstH, LiveOpts{
		Transport: func(round, pages int) error {
			batches = append(batches, batch{round, pages})
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) < 2 {
		t.Fatalf("transport saw %d batches, want >= 2 (pre-copy + blackout)", len(batches))
	}
	if batches[0].round != 1 || batches[0].pages != 64 {
		t.Errorf("first batch = %+v, want round 1 with all 64 pages", batches[0])
	}
	if last := batches[len(batches)-1]; last.round != 0 {
		t.Errorf("last batch = %+v, want the blackout (round 0)", last)
	}
	if moved == nil {
		t.Fatal("no destination domain")
	}
}

// TestMigrateLiveLinkFailureAborts: a transport error during pre-copy must
// abort cleanly — the sentinel and the cause both surface, the dirty log is
// off, the destination keeps no shell, and the source is live and
// migratable again.
func TestMigrateLiveLinkFailureAborts(t *testing.T) {
	linkDown := errors.New("link down")
	for name, failAt := range map[string]int{"pre-copy": 1, "blackout": 0} {
		t.Run(name, func(t *testing.T) {
			r := newLiveRig(t)
			dstDomains := len(r.dstH.Domains())
			_, _, err := MigrateLive(r.h, r.domU.ID, r.dstH, LiveOpts{
				Transport: func(round, pages int) error {
					if round == failAt {
						return linkDown
					}
					return nil
				},
			})
			if !errors.Is(err, ErrMigrationAborted) || !errors.Is(err, linkDown) {
				t.Fatalf("err = %v, want ErrMigrationAborted wrapping the link error", err)
			}
			if r.domU.dirtyLog != nil {
				t.Error("abort left the dirty log enabled")
			}
			if got := len(r.dstH.Domains()); got != dstDomains {
				t.Errorf("destination holds %d domains after abort, want %d", got, dstDomains)
			}
			if !r.h.Alive(r.domU.ID) || r.h.Paused(r.domU.ID) {
				t.Fatal("abort left the source dead or paused")
			}
			if _, _, err := MigrateLive(r.h, r.domU.ID, r.dstH, LiveOpts{}); err != nil {
				t.Fatalf("source not migratable after abort: %v", err)
			}
		})
	}
}

// TestMigrateLiveSourceDeathAborts: the guest dying between rounds (crash
// or toolstack DestroyDomain) aborts with ErrDomainDead and releases every
// destination frame the half-filled shell held.
func TestMigrateLiveSourceDeathAborts(t *testing.T) {
	r := newLiveRig(t)
	dstFree := r.m2.Mem.FreeFrames()
	_, _, err := MigrateLive(r.h, r.domU.ID, r.dstH, LiveOpts{
		MaxRounds: 4,
		GuestWork: func(round int) {
			if round == 2 {
				r.h.DestroyDomain(r.domU.ID)
			} else if err := r.h.GuestMemWrite(r.domU.ID, round, 0, []byte("dirty")); err != nil {
				t.Error(err)
			}
		},
	})
	if !errors.Is(err, ErrMigrationAborted) || !errors.Is(err, ErrDomainDead) {
		t.Fatalf("err = %v, want ErrMigrationAborted wrapping ErrDomainDead", err)
	}
	if got := r.m2.Mem.FreeFrames(); got != dstFree {
		t.Errorf("destination frames leaked: %d free after abort, want %d", got, dstFree)
	}
}

// TestMigrateLiveCallerPausedStaysPaused: abort only resumes a source the
// migration itself paused — a domain the caller paused stays paused.
func TestMigrateLiveCallerPausedStaysPaused(t *testing.T) {
	r := newLiveRig(t)
	if err := r.h.Pause(r.domU.ID); err != nil {
		t.Fatal(err)
	}
	linkDown := errors.New("link down")
	_, _, err := MigrateLive(r.h, r.domU.ID, r.dstH, LiveOpts{
		Transport: func(round, pages int) error { return linkDown },
	})
	if !errors.Is(err, ErrMigrationAborted) {
		t.Fatalf("err = %v, want ErrMigrationAborted", err)
	}
	if !r.h.Paused(r.domU.ID) {
		t.Error("abort resumed a domain the caller had paused")
	}
}
