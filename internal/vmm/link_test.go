package vmm

import (
	"errors"
	"testing"

	"vmmk/internal/hw"
)

// linkRig boots two hypervisors with one 24-page guest on the source.
func linkRig(t *testing.T) (srcM, dstM *hw.Machine, src, dst *Hypervisor, dom DomID) {
	t.Helper()
	cfg := &hw.MachineConfig{Frames: 256}
	srcM = hw.NewMachine(hw.X86(), cfg)
	dstM = hw.NewMachine(hw.X86(), cfg)
	src, _, err := New(srcM, 32)
	if err != nil {
		t.Fatal(err)
	}
	dst, _, err = New(dstM, 32)
	if err != nil {
		t.Fatal(err)
	}
	d, err := src.CreateDomain("lnk", 24)
	if err != nil {
		t.Fatal(err)
	}
	return srcM, dstM, src, dst, d.ID
}

// TestLinkChargesBothEndpoints pins the link accounting: every transfer
// round charges Latency plus PerPage×pages to the LinkComponent of both
// machines, and the total matches Link.Cost exactly.
func TestLinkChargesBothEndpoints(t *testing.T) {
	srcM, dstM, src, dst, dom := linkRig(t)
	l := &Link{PerPage: 3, Latency: 500}
	moved, stats, err := MigrateLive(src, dom, dst, LiveOpts{
		MaxRounds: 2,
		Transport: l.Transport(srcM, dstM),
	})
	if err != nil {
		t.Fatal(err)
	}
	if moved == nil || stats == nil {
		t.Fatal("no result from migration")
	}
	if l.Pages() == 0 || l.Rounds() == 0 {
		t.Fatalf("link carried nothing: pages=%d rounds=%d", l.Pages(), l.Rounds())
	}
	want := uint64(l.Cost())
	if want != uint64(l.Latency)*uint64(l.Rounds())+uint64(l.PerPage)*uint64(l.Pages()) {
		t.Fatalf("Cost %d inconsistent with rounds=%d pages=%d", want, l.Rounds(), l.Pages())
	}
	if got := srcM.Rec.Cycles(LinkComponent); got != want {
		t.Errorf("src %s cycles = %d, want %d", LinkComponent, got, want)
	}
	if got := dstM.Rec.Cycles(LinkComponent); got != want {
		t.Errorf("dst %s cycles = %d, want %d", LinkComponent, got, want)
	}
}

// TestLinkZeroIsFree pins that the zero Link charges nothing and never
// drops.
func TestLinkZeroIsFree(t *testing.T) {
	srcM, dstM, src, dst, dom := linkRig(t)
	l := &Link{}
	if _, _, err := MigrateLive(src, dom, dst, LiveOpts{Transport: l.Transport(srcM, dstM)}); err != nil {
		t.Fatal(err)
	}
	if got := srcM.Rec.Cycles(LinkComponent); got != 0 {
		t.Fatalf("free link charged %d cycles", got)
	}
	if l.Cost() != 0 {
		t.Fatalf("free link Cost = %d", l.Cost())
	}
}

// TestLinkBudgetAborts pins the failure mode: a link whose budget cannot
// carry the first round reports ErrLinkDown and the migration aborts
// cleanly (shell gone, source still running).
func TestLinkBudgetAborts(t *testing.T) {
	srcM, dstM, src, dst, dom := linkRig(t)
	l := &Link{Budget: 4}
	_, _, err := MigrateLive(src, dom, dst, LiveOpts{Transport: l.Transport(srcM, dstM)})
	if !errors.Is(err, ErrMigrationAborted) || !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrMigrationAborted wrapping ErrLinkDown", err)
	}
	if l.Pages() != 0 {
		t.Fatalf("down link still carried %d pages", l.Pages())
	}
	if !src.Alive(dom) || src.Paused(dom) {
		t.Fatal("source guest not left running after abort")
	}
	if n := len(dst.Domains()); n != 1 { // dom0 only
		t.Fatalf("destination kept %d domains, want 1", n)
	}
}
