package vmm

import (
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

func TestShadowMMUEmulatesValidWrite(t *testing.T) {
	r := newVrig(t, hw.X86())
	s, err := r.h.EnableShadowMMU(r.domU.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.GuestPTWrite(0x800, 5, hw.PermRW, true); err != nil {
		t.Fatal(err)
	}
	// The shadow (real) PT carries the validated mapping.
	e, ok := r.domU.PT.Lookup(0x800)
	if !ok || e.Frame != r.domU.FrameAt(5) {
		t.Fatal("shadow not updated")
	}
	// The guest view agrees.
	gpn, perms, ok := s.GuestPTEntry(0x800)
	if !ok || gpn != 5 || perms != hw.PermRW {
		t.Fatal("guest view wrong")
	}
	em, rej := s.Stats()
	if em != 1 || rej != 0 {
		t.Fatalf("stats = %d/%d", em, rej)
	}
	// Each update is a trap-and-emulate: an exception bounce, not a
	// hypercall.
	if r.m.Rec.Counts(trace.KExceptionBounce) == 0 {
		t.Fatal("no trap recorded for PT write")
	}
}

func TestShadowMMURejectsForeignFrame(t *testing.T) {
	r := newVrig(t, hw.X86())
	s, _ := r.h.EnableShadowMMU(r.domU.ID)
	if err := s.GuestPTWrite(0x801, 9999, hw.PermRW, true); err != nil {
		t.Fatal(err)
	}
	// The guest believes the write landed…
	if _, _, ok := s.GuestPTEntry(0x801); !ok {
		t.Fatal("guest view lost the write")
	}
	// …but the shadow refuses to map it.
	if _, ok := r.domU.PT.Lookup(0x801); ok {
		t.Fatal("shadow mapped a frame the domain does not own")
	}
	if _, rej := s.Stats(); rej != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestShadowMMUOverwriteInvalidates(t *testing.T) {
	r := newVrig(t, hw.X86())
	s, _ := r.h.EnableShadowMMU(r.domU.ID)
	s.GuestPTWrite(0x802, 3, hw.PermRW, true)
	// Overwrite with an invalid entry: the shadow must drop the mapping.
	s.GuestPTWrite(0x802, 9999, hw.PermRW, true)
	if _, ok := r.domU.PT.Lookup(0x802); ok {
		t.Fatal("stale shadow entry after invalid overwrite")
	}
}

func TestShadowVsParavirtCost(t *testing.T) {
	// The reason paravirtualisation exists: a shadow (trap-and-emulate)
	// PT update must cost visibly more than the explicit hypercall.
	r := newVrig(t, hw.X86())
	s, _ := r.h.EnableShadowMMU(r.domU.ID)

	t0 := r.m.Now()
	for i := 0; i < 50; i++ {
		if err := s.GuestPTWrite(hw.VPN(0x900+i), i%32, hw.PermRW, true); err != nil {
			t.Fatal(err)
		}
	}
	shadowCost := uint64(r.m.Now()-t0) / 50

	r2 := newVrig(t, hw.X86())
	t1 := r2.m.Now()
	for i := 0; i < 50; i++ {
		if err := r2.h.MMUUpdate(r2.domU.ID, hw.VPN(0x900+i), i%32, hw.PermRW, true); err != nil {
			t.Fatal(err)
		}
	}
	paraCost := uint64(r2.m.Now()-t1) / 50

	if shadowCost <= paraCost {
		t.Fatalf("shadow (%d) should cost more than paravirt (%d) per update", shadowCost, paraCost)
	}
}

func TestShadowMMUOnDeadDomain(t *testing.T) {
	r := newVrig(t, hw.X86())
	s, _ := r.h.EnableShadowMMU(r.domU.ID)
	r.h.DestroyDomain(r.domU.ID)
	if err := s.GuestPTWrite(0x800, 1, hw.PermR, true); err != ErrDomainDead {
		t.Fatalf("err = %v, want ErrDomainDead", err)
	}
	if _, err := r.h.EnableShadowMMU(r.domU.ID); err != ErrDomainDead {
		t.Fatalf("enable err = %v, want ErrDomainDead", err)
	}
}
