package vmm

import (
	"errors"
	"sort"
	"strings"
)

// Store is the hypervisor's shared configuration tree — the XenStore role:
// a hierarchical key-value space domains use to advertise backends, find
// frontends and watch for changes. Every access is a hypercall-priced
// operation with per-path ownership: a domain may write only under its own
// prefix unless privileged.
//
// In the real system XenStore lives in Dom0; hosting it in the monitor here
// trades a little fidelity for not entangling the control plane with the
// driver domain's liveness (the experiments kill Dom0 a lot). The paper's
// census cares that the mechanism exists and is a *separate* privileged
// facility — which it is either way.
type Store struct {
	h       *Hypervisor
	entries map[string]string
	owners  map[string]DomID
	watches map[string][]watch
}

type watch struct {
	dom DomID
	fn  func(path, value string)
}

// Store errors.
var (
	ErrStorePerm    = errors.New("vmm: store permission denied")
	ErrStoreNoEntry = errors.New("vmm: store entry not found")
	ErrStoreBadPath = errors.New("vmm: malformed store path")
)

// NewStore attaches a store to the hypervisor.
func NewStore(h *Hypervisor) *Store {
	return &Store{
		h:       h,
		entries: make(map[string]string),
		owners:  make(map[string]DomID),
		watches: make(map[string][]watch),
	}
}

func validPath(path string) bool {
	return strings.HasPrefix(path, "/") && !strings.Contains(path, "//") && len(path) > 1
}

// homePrefix is the subtree a domain owns by default.
func homePrefix(dom DomID) string {
	return "/local/domain/" + itoa(int(dom)) + "/"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// mayWrite reports whether dom can write path.
func (s *Store) mayWrite(dom DomID, path string) bool {
	d := s.h.dom(dom)
	if d == nil || d.Dead {
		return false
	}
	if d.Privileged {
		return true
	}
	if owner, ok := s.owners[path]; ok {
		return owner == dom
	}
	return strings.HasPrefix(path, homePrefix(dom))
}

// Write sets path to value. Unprivileged domains write only under their
// home prefix or paths granted to them. Watches on the path and its
// ancestors fire synchronously.
func (s *Store) Write(dom DomID, path, value string) error {
	if !validPath(path) {
		return ErrStoreBadPath
	}
	d, err := s.h.lookup(dom)
	if err != nil {
		return err
	}
	s.h.hypercallEntry(d)
	defer s.h.hypercallExit(d)
	if !s.mayWrite(dom, path) {
		return ErrStorePerm
	}
	s.entries[path] = value
	if _, ok := s.owners[path]; !ok {
		s.owners[path] = dom
	}
	s.h.M.CPU.Work(s.h.comp, 150)
	s.fire(path, value)
	return nil
}

// Read returns the value at path. Reads are unrestricted, as in XenStore's
// common configuration.
func (s *Store) Read(dom DomID, path string) (string, error) {
	d, err := s.h.lookup(dom)
	if err != nil {
		return "", err
	}
	s.h.hypercallEntry(d)
	defer s.h.hypercallExit(d)
	v, ok := s.entries[path]
	if !ok {
		return "", ErrStoreNoEntry
	}
	s.h.M.CPU.Work(s.h.comp, 100)
	return v, nil
}

// GrantWrite lets a privileged domain hand write access on one path to
// another domain (how Dom0 sets up frontend directories for new guests).
func (s *Store) GrantWrite(granter, to DomID, path string) error {
	d, err := s.h.lookup(granter)
	if err != nil {
		return err
	}
	if !d.Privileged {
		return ErrNotPrivileged
	}
	if !validPath(path) {
		return ErrStoreBadPath
	}
	s.owners[path] = to
	s.h.M.CPU.Work(s.h.comp, 120)
	return nil
}

// List returns the direct children of prefix, sorted.
func (s *Store) List(dom DomID, prefix string) ([]string, error) {
	d, err := s.h.lookup(dom)
	if err != nil {
		return nil, err
	}
	s.h.hypercallEntry(d)
	defer s.h.hypercallExit(d)
	s.h.M.CPU.Work(s.h.comp, 150)
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	seen := map[string]bool{}
	for p := range s.entries {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Watch registers fn to run when path (or anything under it) changes. The
// callback runs in the watcher's context: delivery world-switches to the
// watcher like an event upcall.
func (s *Store) Watch(dom DomID, path string, fn func(path, value string)) error {
	if _, err := s.h.lookup(dom); err != nil {
		return err
	}
	if !validPath(path) {
		return ErrStoreBadPath
	}
	s.watches[path] = append(s.watches[path], watch{dom: dom, fn: fn})
	s.h.M.CPU.Work(s.h.comp, 120)
	return nil
}

// fire delivers watch callbacks for path and every ancestor prefix.
func (s *Store) fire(path, value string) {
	for watched, ws := range s.watches {
		if path != watched && !strings.HasPrefix(path, watched+"/") {
			continue
		}
		for _, w := range ws {
			wd := s.h.dom(w.dom)
			if wd == nil || wd.Dead {
				continue
			}
			prev := s.h.current
			s.h.switchTo(wd)
			s.h.M.CPU.Work(s.h.comp, 80)
			w.fn(path, value)
			if prev != nil && prev != wd && !prev.Dead {
				s.h.switchTo(prev)
			}
		}
	}
}
