package vmm

import (
	"testing"
	"testing/quick"

	"vmmk/internal/hw"
	"vmmk/internal/simrand"
)

// TestQuickGrantOwnershipInvariants drives random grant operations between
// three domains and checks the safety properties the monitor must uphold no
// matter the interleaving:
//
//  1. every machine frame has exactly one owner in the physical ledger;
//  2. a frame a domain flipped away can never be granted by it again;
//  3. a read-only grant can never move ownership;
//  4. a revoked or consumed grant never works again.
func TestQuickGrantOwnershipInvariants(t *testing.T) {
	type grantRec struct {
		owner DomID
		to    DomID
		ref   GrantRef
		ro    bool
		gone  bool // revoked or consumed
	}
	f := func(seed uint64) bool {
		r := simrand.New(seed)
		m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 256})
		h, d0, err := New(m, 32)
		if err != nil {
			return false
		}
		d1, err := h.CreateDomain("d1", 32)
		if err != nil {
			return false
		}
		d2, err := h.CreateDomain("d2", 32)
		if err != nil {
			return false
		}
		doms := []*Domain{d0, d1, d2}
		var grants []*grantRec

		for step := 0; step < 60; step++ {
			switch r.Intn(4) {
			case 0: // grant a random owned frame
				owner := doms[r.Intn(3)]
				to := doms[r.Intn(3)]
				if owner == to || len(owner.Frames()) == 0 {
					continue
				}
				f := owner.FrameAt(r.Intn(len(owner.Frames())))
				if f == hw.NoFrame {
					continue
				}
				ro := r.Bool(0.3)
				ref, err := h.GrantAccess(owner.ID, f, to.ID, ro)
				if err != nil {
					// Must only fail if the frame isn't owned anymore.
					if owner.OwnsFrame(f) {
						return false
					}
					continue
				}
				grants = append(grants, &grantRec{owner: owner.ID, to: to.ID, ref: ref, ro: ro})
			case 1: // transfer through a random grant
				if len(grants) == 0 {
					continue
				}
				g := grants[r.Intn(len(grants))]
				_, err := h.GrantTransfer(g.to, g.owner, g.ref)
				switch {
				case err == nil:
					if g.gone || g.ro {
						return false // property 3/4 violated
					}
					g.gone = true
				case g.ro && err != ErrGrantReadOnly && !g.gone:
					return false
				}
			case 2: // map through a random grant into a scratch vpn
				if len(grants) == 0 {
					continue
				}
				g := grants[r.Intn(len(grants))]
				err := h.GrantMap(g.to, g.owner, g.ref, hw.VPN(0x4000+step))
				if err == nil && g.gone {
					return false // property 4
				}
			case 3: // revoke a random grant
				if len(grants) == 0 {
					continue
				}
				g := grants[r.Intn(len(grants))]
				if h.GrantRevoke(g.owner, g.ref) == nil {
					g.gone = true
				}
			}
			// Property 1: ledger consistency — every domain's non-hole
			// frame list entry is owned by that domain.
			for _, d := range doms {
				for _, f := range d.Frames() {
					if f == hw.NoFrame {
						continue
					}
					if m.Mem.Owner(f) != d.Component() {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
