package vmm

import (
	"errors"
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/trace"
)

// DomID names a domain. Dom0 is, by Xen convention, the privileged domain
// that hosts legacy device drivers.
type DomID uint16

// Dom0 is the control/driver domain's well-known ID.
const Dom0 DomID = 0

// Errors returned by hypervisor operations.
var (
	ErrNoSuchDomain  = errors.New("vmm: no such domain")
	ErrDomainDead    = errors.New("vmm: domain is dead")
	ErrBadGrant      = errors.New("vmm: invalid grant reference")
	ErrGrantRevoked  = errors.New("vmm: grant revoked")
	ErrGrantReadOnly = errors.New("vmm: write through read-only grant")
	ErrBadPort       = errors.New("vmm: invalid event-channel port")
	ErrPortUnbound   = errors.New("vmm: event-channel port not bound")
	ErrBadPTE        = errors.New("vmm: page-table update failed validation")
	ErrNotPrivileged = errors.New("vmm: operation requires Dom0 privilege")
	ErrNoFastPath    = errors.New("vmm: fast path unavailable")
	ErrFrameNotOwned = errors.New("vmm: domain does not own frame")
	ErrBadPCPU       = errors.New("vmm: physical CPU index out of range")
)

// HypervisorComponent is the trace attribution name of monitor-mode work.
const HypervisorComponent = "vmm.xen"

// VMMBase is the start of the virtual-address region the monitor reserves
// for itself in every guest (Xen reserves the top 64 MB on x86/32). The
// trap-gate fast path is safe only while every guest data segment excludes
// this region.
const VMMBase uint64 = 0xFC00_0000

// Hypervisor is the monitor proper.
type Hypervisor struct {
	M *hw.Machine

	comp trace.Comp // HypervisorComponent, interned at boot

	// domains is indexed by DomID (ids are allocated sequentially and
	// never reused); destroyed domains leave a nil slot, which is what
	// keeps the id watermark semantics while letting the hot lookup path
	// be a bounds-checked load instead of a map probe.
	domains []*Domain
	order   []DomID // creation order, for deterministic iteration
	nextDom DomID

	ports     []*channel
	chanGen   []int // per-slot reuse generation: stale ports never alias
	freeChans []int // reclaimed channel slots, reused by BindChannel
	current   *Domain
	sched     *scheduler

	// FastPathPolicy globally enables the trap-gate syscall shortcut
	// (ablation switch for E9; per-domain validity is tracked separately).
	FastPathPolicy bool

	hypercalls uint64
	worldSw    uint64
}

// New boots a hypervisor on machine m and creates Dom0 with the given
// memory size in pages.
func New(m *hw.Machine, dom0Frames int) (*Hypervisor, *Domain, error) {
	h := &Hypervisor{
		M:              m,
		comp:           m.Rec.Intern(HypervisorComponent),
		FastPathPolicy: true,
	}
	h.sched = newScheduler(h)
	m.CPU.Work(h.comp, 8000) // monitor boot
	d0, err := h.CreateDomain("dom0", dom0Frames)
	if err != nil {
		return nil, nil, err
	}
	d0.Privileged = true
	return h, d0, nil
}

// CreateDomain builds a new domain with frames pages of pseudo-physical
// memory, mapped 1:1 at the bottom of its virtual space (paravirtualised
// guests see machine frames through a physical-to-machine map; the identity
// layout keeps the simulation readable without changing any accounting).
func (h *Hypervisor) CreateDomain(name string, frames int) (*Domain, error) {
	id := h.nextDom
	h.nextDom++
	d := &Domain{
		ID:     id,
		Name:   name,
		PT:     hw.NewPageTableSized(uint16(id)+100, frames), // ASIDs disjoint from mk's
		grants: newGrantTable(),
		hyp:    h,
		comp:   h.M.Rec.Intern("vmm." + name),
	}
	d.compName = "vmm." + name
	mem, err := h.M.Mem.AllocN(d.Component(), frames)
	if err != nil {
		return nil, err
	}
	d.frames = mem
	for i, f := range mem {
		// Guest kernel mappings; guest user pages are re-flagged later.
		d.PT.Map(hw.VPN(i), hw.PTE{Frame: f, Perms: hw.PermRWX, User: true})
	}
	h.M.CPU.Charge(h.comp, trace.KHypercall, 600) // domain-build hypercall
	h.hypercalls++
	h.domains = append(h.domains, d)
	h.order = append(h.order, id)
	h.sched.add(d)
	return d, nil
}

// Comp returns the monitor's interned trace attribution handle.
func (h *Hypervisor) Comp() trace.Comp { return h.comp }

// Domain returns the domain for id, or nil.
func (h *Hypervisor) Domain(id DomID) *Domain { return h.dom(id) }

// dom returns the domain slot for id (nil when destroyed or never
// allocated).
func (h *Hypervisor) dom(id DomID) *Domain {
	if int(id) < len(h.domains) {
		return h.domains[id]
	}
	return nil
}

// lookup resolves id to a live domain. DestroyDomain reclaims a domain's
// bookkeeping outright (so a create/destroy churn loop stays bounded), which
// means destroyed ids hold a nil slot; the nextDom watermark keeps their
// error distinct: an id that was once allocated reports ErrDomainDead, an id
// that never existed reports ErrNoSuchDomain.
func (h *Hypervisor) lookup(id DomID) (*Domain, error) {
	if d := h.dom(id); d != nil {
		if d.Dead {
			return nil, ErrDomainDead
		}
		return d, nil
	}
	if id < h.nextDom {
		return nil, ErrDomainDead
	}
	return nil, ErrNoSuchDomain
}

// Domains returns live domains in creation order.
func (h *Hypervisor) Domains() []*Domain {
	out := make([]*Domain, 0, len(h.order))
	for _, id := range h.order {
		if d := h.dom(id); d != nil && !d.Dead {
			out = append(out, d)
		}
	}
	return out
}

// Current returns the domain whose context is on the CPU (nil at boot).
func (h *Hypervisor) Current() *Domain { return h.current }

// switchTo installs dom's context: a world switch with full state
// save/restore, address-space switch, and (on untagged TLBs) a flush. A
// switch to the already-current domain is free, matching hardware.
func (h *Hypervisor) switchTo(d *Domain) {
	if h.current == d {
		return
	}
	h.worldSw++
	h.M.CPU.Charge(h.comp, trace.KWorldSwitch, h.M.Arch.Costs.WorldSwitch)
	h.M.CPU.SwitchSpace(h.comp, d.PT)
	h.current = d
}

// shootdownEntry invalidates one of d's translations on every other pCPU
// hosting a vCPU of d. The monitor runs on the boot CPU, whose TLB the
// caller has already flushed directly; unplaced domains (every
// uniprocessor caller) cost nothing.
func (h *Hypervisor) shootdownEntry(d *Domain, vpn hw.VPN) {
	if targets := d.remotePCPUs(0); len(targets) > 0 {
		h.M.ShootdownEntry(0, targets, d.PT.ASID(), vpn)
	}
}

// shootdownAll is the full-flush variant of shootdownEntry (dirty-log
// arming and other whole-table invalidations).
func (h *Hypervisor) shootdownAll(d *Domain) {
	if targets := d.remotePCPUs(0); len(targets) > 0 {
		h.M.ShootdownAll(0, targets)
	}
}

// kickDomain sends the IPI that accompanies delivering an asynchronous
// event into a domain whose vCPUs live on other pCPUs: the monitor (boot
// CPU) pokes the domain's first remote pCPU so its vCPU takes the upcall.
func (h *Hypervisor) kickDomain(d *Domain) {
	if targets := d.remotePCPUs(0); len(targets) > 0 {
		h.M.SendIPI(0, targets[0])
	}
}

// Hypercall performs a generic control hypercall from dom: ring transition
// into the monitor, validation, op-specific work cost, return. It is the
// paper's primitive 4 ("resource allocation per VM via VMM hypercall
// interface"); the specific hypercalls below (MMUUpdate, grant operations,
// event operations) layer their own semantics over the same entry path.
func (h *Hypervisor) Hypercall(dom DomID, op string, workCost hw.Cycles) error {
	d, err := h.lookup(dom)
	if err != nil {
		return err
	}
	h.hypercallEntry(d)
	h.M.CPU.Work(h.comp, workCost)
	h.hypercallExit(d)
	_ = op
	return nil
}

// hypercallEntry charges the guest-kernel -> monitor transition.
func (h *Hypervisor) hypercallEntry(d *Domain) {
	h.switchTo(d) // hypercalls execute in the caller's context
	h.M.CPU.Trap(h.comp, h.M.Arch.HasFastSyscall)
	h.M.CPU.Charge(h.comp, trace.KHypercall, h.M.Arch.Costs.PrivCheck)
	h.hypercalls++
}

// hypercallExit returns to the guest kernel ring.
func (h *Hypervisor) hypercallExit(d *Domain) {
	_ = d
	h.M.CPU.ReturnTo(h.comp, hw.Ring1)
}

// PumpIO drives the machine until quiescent or maxRounds: fire every due
// scheduled event, then field pending interrupts (the monitor's idle loop).
// It returns the total number of events plus interrupts processed.
func (h *Hypervisor) PumpIO(maxRounds int) int {
	total := 0
	for round := 0; round < maxRounds; round++ {
		n := h.M.Events.RunUntilIdle(1024)
		n += h.M.IRQ.DispatchPending(h.comp)
		total += n
		if n == 0 {
			break
		}
	}
	return total
}

// Stats returns cumulative hypercall and world-switch counts.
func (h *Hypervisor) Stats() (hypercalls, worldSwitches uint64) {
	return h.hypercalls, h.worldSw
}

// DestroyDomain kills a domain outright (crash injection or shutdown): its
// vCPU never runs again, its event channels are closed, its grants are
// revoked, and its memory is released. Other domains observe failures only
// through their own references to it — the E4 blast-radius property.
//
// All per-domain monitor state is reclaimed here, not just marked dead:
// the domain map and creation-order entries, the scheduler's weight and
// credit entries, and the channel slots of every event channel either of
// whose endpoints was this domain. A create/destroy churn loop therefore
// returns the monitor to its baseline footprint (the churn regression test
// asserts exactly this). Holders of a stale *Domain still observe Dead.
func (h *Hypervisor) DestroyDomain(id DomID) error {
	d := h.dom(id)
	if d == nil {
		if id < h.nextDom {
			return nil // already destroyed and reclaimed: idempotent
		}
		return ErrNoSuchDomain
	}
	if d.Dead {
		return nil
	}
	d.Dead = true
	for i, ch := range h.ports {
		if ch == nil {
			continue
		}
		if ch.a.dom == id || ch.b.dom == id {
			ch.closed = true
			h.ports[i] = nil
			// Bump the slot's generation so the surviving peer's stale
			// port numbers can never resolve to whatever channel reuses
			// the slot next.
			h.chanGen[i]++
			h.freeChans = append(h.freeChans, i)
		}
	}
	d.grants.revokeAll()
	for _, f := range d.frames {
		// Flipped-away slots are holes; only release what the domain
		// still owns.
		if f == hw.NoFrame {
			continue
		}
		if h.M.Mem.Owner(f) == d.Component() {
			h.M.Mem.Free(f)
		}
	}
	if h.current == d {
		h.current = nil
	}
	for p, cur := range h.sched.currentOn {
		if cur.dom == id {
			h.sched.currentOn[p] = noVCPU
		}
	}
	d.dirtyLog = nil
	h.sched.remove(d)
	delete(h.sched.weights, id)
	delete(h.sched.credits, id)
	h.domains[id] = nil
	for i, oid := range h.order {
		if oid == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	h.M.Rec.Charge(uint64(h.M.Clock.Now()), trace.KFault, d.comp, 0)
	return nil
}

// Alive reports whether the domain exists and is not dead.
func (h *Hypervisor) Alive(id DomID) bool {
	d := h.dom(id)
	return d != nil && !d.Dead
}

// String summarises the monitor for debugging output.
func (h *Hypervisor) String() string {
	return fmt.Sprintf("hypervisor(%d domains)", len(h.Domains()))
}
