package mkos

import (
	"vmmk/internal/hw"
	"vmmk/internal/hw/dev"
	"vmmk/internal/mk"
	"vmmk/internal/trace"
)

// RxMode selects how the driver moves received packets to a client OS
// server: by granting the packet page through a map item (the zero-copy
// analogue of Xen's page flip) or by a string-transfer copy. The E9
// ablation compares the two, mirroring the flip/copy study on the VMM side.
type RxMode int

// Receive modes.
const (
	RxGrant RxMode = iota
	RxStringCopy
)

// String names the receive delivery mode.
func (m RxMode) String() string {
	if m == RxGrant {
		return "grant"
	}
	return "copy"
}

// NetDriver is the user-level NIC driver server: a thread that receives the
// NIC's interrupts as IPC, reaps the device, and forwards each packet to
// the owning client with one IPC. It is exactly the Dom0-encapsulated
// driver of §3.2 without the virtual machine around it.
type NetDriver struct {
	K      *mk.Kernel
	NIC    *dev.NIC
	Space  *mk.Space
	Thread *mk.Thread
	Mode   RxMode

	clients      []*NetClient
	rxPoolTarget int
	ringVPN      hw.VPN

	rxHandled uint64
	txHandled uint64
}

// NetClient is one OS server's connection to the driver.
type NetClient struct {
	drv *NetDriver
	os  *OSServer
}

// NewNetDriver boots the driver server and claims the NIC's interrupts.
func NewNetDriver(k *mk.Kernel, nic *dev.NIC) (*NetDriver, error) {
	sp, err := k.NewSpace("srv.net", mk.NilThread)
	if err != nil {
		return nil, err
	}
	d := &NetDriver{
		K:            k,
		NIC:          nic,
		Space:        sp,
		Mode:         RxGrant,
		rxPoolTarget: 32,
		ringVPN:      0xA000,
	}
	d.Thread = k.NewThread(sp, "srv.net", 8, d.handle)
	if err := k.RegisterIRQ(nic.RxIRQ(), d.Thread.ID); err != nil {
		return nil, err
	}
	if err := k.RegisterIRQ(nic.TxIRQ(), d.Thread.ID); err != nil {
		return nil, err
	}
	d.replenish()
	return d, nil
}

// Component returns the driver's trace attribution name.
func (d *NetDriver) Component() string { return d.Thread.Component() }

// Comp returns the server's interned trace attribution handle.
func (d *NetDriver) Comp() trace.Comp { return d.Thread.Comp() }

// Attach connects an OS server as a packet client; packets whose first byte
// selects this client's index are delivered to it.
func (d *NetDriver) Attach(os *OSServer) *NetClient {
	c := &NetClient{drv: d, os: os}
	d.clients = append(d.clients, c)
	os.Net = c
	return c
}

// replenish posts driver-owned frames to the NIC.
func (d *NetDriver) replenish() {
	for d.NIC.PostedBuffers() < d.rxPoolTarget {
		f, err := d.K.M.Mem.Alloc(d.Component())
		if err != nil {
			return
		}
		d.K.M.CPU.Work(d.Comp(), 120)
		if !d.NIC.PostRxBuffer(f) {
			d.K.M.Mem.Free(f)
			return
		}
	}
}

// handle is the driver's IPC entry: interrupt IPCs from the kernel and TX
// requests from clients.
func (d *NetDriver) handle(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
	switch msg.Label {
	case mk.LabelIRQ:
		if len(msg.Words) == 0 {
			return mk.Msg{}, ErrBadRequest
		}
		switch hw.IRQLine(msg.Words[0]) {
		case d.NIC.RxIRQ():
			d.rx(k)
		case d.NIC.TxIRQ():
			k.M.CPU.Work(d.Comp(), 150) // reap TX descriptors
		}
		return mk.Msg{}, nil
	case LabelNetTx:
		return d.tx(k, msg)
	}
	return mk.Msg{}, ErrBadRequest
}

// tx stages a client payload into a driver frame and programs the NIC.
func (d *NetDriver) tx(k *mk.Kernel, msg mk.Msg) (mk.Msg, error) {
	comp := d.Comp()
	k.M.CPU.Work(comp, 350) // driver TX path
	f, err := k.M.Mem.Alloc(d.Component())
	if err != nil {
		return mk.Msg{}, err
	}
	copy(k.M.Mem.Data(f), msg.Data)
	d.NIC.Transmit(f, len(msg.Data))
	d.txHandled++
	// The NIC copied the payload out during Transmit; release the staging
	// frame immediately.
	k.M.Mem.Free(f)
	return mk.Msg{Words: []uint64{uint64(len(msg.Data))}}, nil
}

// rx drains the NIC and forwards each packet to its client via IPC.
func (d *NetDriver) rx(k *mk.Kernel) {
	comp := d.Comp()
	for _, c := range d.NIC.ReapRx() {
		d.rxHandled++
		k.M.CPU.Work(comp, 400) // driver RX path: demux, checksum
		if len(d.clients) == 0 {
			k.M.Mem.Free(c.Frame)
			continue
		}
		dst := int(k.M.Mem.Data(c.Frame)[0]) % len(d.clients)
		client := d.clients[dst]
		if !k.Alive(client.os.Thread.ID) {
			k.M.Mem.Free(c.Frame)
			continue
		}
		// The kernel clones message bodies on delivery, so the frame's
		// live bytes can ride in the descriptor directly — one copy per
		// packet (the clone), not two.
		payload := k.M.Mem.Data(c.Frame)[:c.Len]
		switch d.Mode {
		case RxGrant:
			// Zero-copy delivery: grant the packet page to the client
			// alongside the (small) descriptor. The page leaves the
			// driver's pool; the client frees it after consumption and
			// the driver re-allocates — one ownership transfer per
			// packet, the mk analogue of the flip.
			vpn := d.ringVPN
			d.ringVPN++
			d.Space.PT.Map(vpn, hw.PTE{Frame: c.Frame, Perms: hw.PermRW, User: true})
			err := k.Send(d.Thread.ID, client.os.Thread.ID, mk.Msg{
				Label: LabelNetRxDeliver,
				Words: []uint64{uint64(c.Len)},
				Data:  payload, // descriptor+payload view for the client queue
				Map:   []mk.MapItem{{SrcVPN: vpn, DstVPN: vpn, Count: 1, Perms: hw.PermRW, Grant: true}},
			})
			if err != nil {
				k.M.Mem.Free(c.Frame)
				continue
			}
			// The client consumed the payload into its queue; the page
			// itself is returned to the allocator (balloon model).
			client.os.Space.PT.Unmap(vpn)
			k.M.Mem.Free(c.Frame)
		case RxStringCopy:
			err := k.Send(d.Thread.ID, client.os.Thread.ID, mk.Msg{
				Label: LabelNetRxDeliver,
				Words: []uint64{uint64(c.Len)},
				Data:  payload,
			})
			if err == nil {
				// Driver keeps its page: straight back into the pool.
				d.K.M.CPU.Work(comp, 80)
				d.NIC.PostRxBuffer(c.Frame)
				continue
			}
			k.M.Mem.Free(c.Frame)
		}
	}
	d.replenish()
}

// Send transmits one packet on behalf of the client: one IPC to the driver,
// which stages the payload into a frame and programs the NIC.
func (c *NetClient) Send(data []byte) error {
	k := c.drv.K
	if !k.Alive(c.drv.Thread.ID) {
		return mk.ErrDeadPartner
	}
	_, err := k.Call(c.os.Thread.ID, c.drv.Thread.ID, mk.Msg{Label: LabelNetTx, Data: data})
	return err
}

// Stats returns packets handled.
func (d *NetDriver) Stats() (rx, tx uint64) { return d.rxHandled, d.txHandled }
