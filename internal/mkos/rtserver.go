package mkos

import (
	"errors"
	"fmt"

	"vmmk/internal/hw"
	"vmmk/internal/mk"
	"vmmk/internal/trace"
)

// RTServer is a DROPS-style real-time service running beside the
// time-sharing OS server — the arrangement §3.3 cites as evidence that a
// microkernel hosts a paravirtualised OS *and* real-time services at once
// ("the Dresden DROPS system … is in industrial use"). Periodic tasks are
// admitted under a utilisation bound and driven by the hardware timer,
// whose ticks reach the server as interrupt IPCs; jobs that do not finish
// within their period are counted as deadline misses.
type RTServer struct {
	K      *mk.Kernel
	Space  *mk.Space
	Thread *mk.Thread

	tickInterval hw.Cycles
	utilCap      float64 // admissible fraction of each tick's capacity
	tasks        []*RTTask
	tick         uint64
}

// RTTask is one periodic activity.
type RTTask struct {
	Name        string
	PeriodTicks uint64    // release every n timer ticks
	Budget      hw.Cycles // work per job

	pending   hw.Cycles // work left in the current job (0 = idle)
	deadline  uint64    // absolute tick the current job must finish by
	releases  uint64
	completes uint64
	misses    uint64
}

// Stats returns the task's release/completion/miss counters.
func (t *RTTask) Stats() (releases, completes, misses uint64) {
	return t.releases, t.completes, t.misses
}

// Errors from the real-time server.
var (
	ErrAdmission = errors.New("mkos: task set would exceed the utilisation bound")
	ErrBadTask   = errors.New("mkos: invalid task parameters")
)

// NewRTServer boots the real-time server and claims the timer line. The
// timer device must be started by the caller with the same interval.
func NewRTServer(k *mk.Kernel, timerLine hw.IRQLine, tickInterval hw.Cycles, utilCap float64) (*RTServer, error) {
	if tickInterval == 0 {
		return nil, ErrBadTask
	}
	if utilCap <= 0 || utilCap > 1 {
		utilCap = 0.8
	}
	sp, err := k.NewSpace("srv.rt", mk.NilThread)
	if err != nil {
		return nil, err
	}
	s := &RTServer{K: k, Space: sp, tickInterval: tickInterval, utilCap: utilCap}
	s.Thread = k.NewThread(sp, "srv.rt", 10, s.handle) // highest priority
	if err := k.RegisterIRQ(timerLine, s.Thread.ID); err != nil {
		return nil, err
	}
	return s, nil
}

// Component returns the server's trace attribution name.
func (s *RTServer) Component() string { return s.Thread.Component() }

// Comp returns the server's interned trace attribution handle.
func (s *RTServer) Comp() trace.Comp { return s.Thread.Comp() }

// Utilisation returns the admitted task set's total utilisation.
func (s *RTServer) Utilisation() float64 {
	u := 0.0
	for _, t := range s.tasks {
		u += float64(t.Budget) / (float64(t.PeriodTicks) * float64(s.tickInterval))
	}
	return u
}

// Admit adds a periodic task if the utilisation bound allows it.
func (s *RTServer) Admit(name string, periodTicks uint64, budget hw.Cycles) (*RTTask, error) {
	if periodTicks == 0 || budget == 0 {
		return nil, ErrBadTask
	}
	add := float64(budget) / (float64(periodTicks) * float64(s.tickInterval))
	if s.Utilisation()+add > s.utilCap {
		return nil, fmt.Errorf("%w: %.2f + %.2f > %.2f", ErrAdmission, s.Utilisation(), add, s.utilCap)
	}
	t := &RTTask{Name: name, PeriodTicks: periodTicks, Budget: budget}
	s.tasks = append(s.tasks, t)
	s.K.M.CPU.Work(s.Comp(), 300) // admission test, reservation setup
	return t, nil
}

// ForceAdmit bypasses admission control (to demonstrate overload — the
// misses it produces are the point).
func (s *RTServer) ForceAdmit(name string, periodTicks uint64, budget hw.Cycles) *RTTask {
	t := &RTTask{Name: name, PeriodTicks: periodTicks, Budget: budget}
	s.tasks = append(s.tasks, t)
	return t
}

// handle receives timer-interrupt IPCs and runs one scheduling round.
func (s *RTServer) handle(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
	if msg.Label != mk.LabelIRQ {
		return mk.Msg{}, ErrBadRequest
	}
	s.tick++
	comp := s.Comp()
	k.M.CPU.Work(comp, 80) // scheduler entry

	// Release phase: jobs whose period divides the tick count. A job
	// still pending at its next release is a deadline miss (the job is
	// abandoned; the new one starts — standard overrun policy).
	for _, t := range s.tasks {
		if s.tick%t.PeriodTicks != 0 {
			continue
		}
		if t.pending > 0 {
			t.misses++
		}
		t.releases++
		t.pending = t.Budget
		t.deadline = s.tick + t.PeriodTicks
	}

	// Execution phase: earliest deadline first, within this tick's
	// capacity share.
	capacity := hw.Cycles(float64(s.tickInterval) * s.utilCap)
	for capacity > 0 {
		var next *RTTask
		for _, t := range s.tasks {
			if t.pending == 0 {
				continue
			}
			if next == nil || t.deadline < next.deadline {
				next = t
			}
		}
		if next == nil {
			break
		}
		run := next.pending
		if run > capacity {
			run = capacity
		}
		k.M.CPU.Work(comp, run)
		next.pending -= run
		capacity -= run
		if next.pending == 0 {
			next.completes++
		}
	}
	return mk.Msg{}, nil
}

// Ticks returns how many timer ticks the server has processed.
func (s *RTServer) Ticks() uint64 { return s.tick }

// TotalMisses sums deadline misses across the task set.
func (s *RTServer) TotalMisses() uint64 {
	var n uint64
	for _, t := range s.tasks {
		n += t.misses
	}
	return n
}
