package mkos

import (
	"vmmk/internal/mk"
	"vmmk/internal/trace"
)

// KVServer is the "minimal extension" of §2.2's complexity argument: a
// from-scratch service that is NOT an existing operating system — here a
// tiny key-value cache. On the microkernel it is one thread with one IPC
// handler: the entire kernel interface it programs against is the IPC
// primitive. Compare vmmos.KVAppliance, the same service as a VMM guest,
// which must stand up a domain, kernel hooks, event channels and grants
// before it can serve its first request.
type KVServer struct {
	K      *mk.Kernel
	Space  *mk.Space
	Thread *mk.Thread

	data map[string][]byte

	gets, puts uint64
}

// KV protocol labels.
const (
	LabelKVGet uint32 = 0x200 + iota
	LabelKVPut
	LabelKVDelete
)

// NewKVServer boots the extension: one space, one thread, one handler.
func NewKVServer(k *mk.Kernel) (*KVServer, error) {
	sp, err := k.NewSpace("srv.kv", mk.NilThread)
	if err != nil {
		return nil, err
	}
	s := &KVServer{K: k, Space: sp, data: make(map[string][]byte)}
	s.Thread = k.NewThread(sp, "srv.kv", 4, s.handle)
	return s, nil
}

// Component returns the server's trace attribution name.
func (s *KVServer) Component() string { return s.Thread.Component() }

// Comp returns the server's interned trace attribution handle.
func (s *KVServer) Comp() trace.Comp { return s.Thread.Comp() }

// handle serves get/put/delete. Keys ride in msg.Data up to the first NUL;
// values follow it.
func (s *KVServer) handle(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
	comp := s.Comp()
	k.M.CPU.Work(comp, 200) // hash, lookup
	key, value := splitKV(msg.Data)
	switch msg.Label {
	case LabelKVGet:
		v, ok := s.data[key]
		if !ok {
			return mk.Msg{Words: []uint64{0}}, nil
		}
		s.gets++
		return mk.Msg{Words: []uint64{1}, Data: v}, nil
	case LabelKVPut:
		s.puts++
		s.data[key] = append([]byte(nil), value...)
		k.M.CPU.Work(comp, k.M.CPU.CopyCost(uint64(len(value))))
		return mk.Msg{Words: []uint64{1}}, nil
	case LabelKVDelete:
		delete(s.data, key)
		return mk.Msg{Words: []uint64{1}}, nil
	}
	return mk.Msg{}, ErrBadRequest
}

func splitKV(data []byte) (string, []byte) {
	for i, b := range data {
		if b == 0 {
			return string(data[:i]), data[i+1:]
		}
	}
	return string(data), nil
}

func kvMsg(label uint32, key string, value []byte) mk.Msg {
	data := append([]byte(key), 0)
	data = append(data, value...)
	return mk.Msg{Label: label, Data: data}
}

// Get fetches a key on behalf of client thread from.
func (s *KVServer) Get(from mk.ThreadID, key string) ([]byte, bool, error) {
	reply, err := s.K.Call(from, s.Thread.ID, kvMsg(LabelKVGet, key, nil))
	if err != nil {
		return nil, false, err
	}
	if reply.Words[0] == 0 {
		return nil, false, nil
	}
	return reply.Data, true, nil
}

// Put stores a key on behalf of client thread from.
func (s *KVServer) Put(from mk.ThreadID, key string, value []byte) error {
	_, err := s.K.Call(from, s.Thread.ID, kvMsg(LabelKVPut, key, value))
	return err
}

// Delete removes a key on behalf of client thread from.
func (s *KVServer) Delete(from mk.ThreadID, key string) error {
	_, err := s.K.Call(from, s.Thread.ID, kvMsg(LabelKVDelete, key, nil))
	return err
}

// Stats returns served get/put counts.
func (s *KVServer) Stats() (gets, puts uint64) { return s.gets, s.puts }
