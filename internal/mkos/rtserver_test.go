package mkos

import (
	"errors"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/hw/dev"
	"vmmk/internal/mk"
)

// rtRig is a kernel with a timer driving an RT server.
type rtRig struct {
	m     *hw.Machine
	k     *mk.Kernel
	timer *dev.Timer
	rt    *RTServer
}

func newRTRig(t *testing.T, interval hw.Cycles, cap float64) *rtRig {
	t.Helper()
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 256, IRQLines: 8})
	k := mk.New(m)
	timer := dev.NewTimer(m, 4, interval)
	rt, err := NewRTServer(k, 4, interval, cap)
	if err != nil {
		t.Fatal(err)
	}
	timer.Start()
	return &rtRig{m: m, k: k, timer: timer, rt: rt}
}

// runTicks advances the machine through n timer periods, dispatching the
// interrupts as they land.
func (r *rtRig) runTicks(n uint64) {
	target := r.m.Clock.Now() + hw.Cycles(n)*100_000
	for r.rt.Ticks() < r.rt.tick+n && r.m.Clock.Now() < target {
		r.m.Events.RunUntilIdle(4)
		r.m.IRQ.DispatchPending(r.m.Rec.Intern(mk.KernelComponent))
	}
}

func TestRTAdmissionControl(t *testing.T) {
	r := newRTRig(t, 100_000, 0.8)
	// 0.5 utilisation: fine.
	if _, err := r.rt.Admit("a", 1, 50_000); err != nil {
		t.Fatal(err)
	}
	// +0.2: still fine (0.7 <= 0.8).
	if _, err := r.rt.Admit("b", 2, 40_000); err != nil {
		t.Fatal(err)
	}
	// +0.2 would hit 0.9: rejected.
	if _, err := r.rt.Admit("c", 1, 20_000); !errors.Is(err, ErrAdmission) {
		t.Fatalf("err = %v, want ErrAdmission", err)
	}
	if u := r.rt.Utilisation(); u < 0.69 || u > 0.71 {
		t.Fatalf("utilisation = %.2f, want 0.70", u)
	}
}

func TestRTBadTaskParams(t *testing.T) {
	r := newRTRig(t, 100_000, 0.8)
	if _, err := r.rt.Admit("x", 0, 100); !errors.Is(err, ErrBadTask) {
		t.Fatal("zero period accepted")
	}
	if _, err := r.rt.Admit("x", 1, 0); !errors.Is(err, ErrBadTask) {
		t.Fatal("zero budget accepted")
	}
}

func TestRTAdmittedTasksMeetDeadlines(t *testing.T) {
	r := newRTRig(t, 100_000, 0.8)
	a, err := r.rt.Admit("audio", 1, 30_000) // every tick, 30% of a tick
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.rt.Admit("video", 4, 160_000) // every 4 ticks, 40% avg
	if err != nil {
		t.Fatal(err)
	}
	// Run 40 ticks of virtual time.
	for i := 0; i < 40; i++ {
		r.m.Events.RunUntilIdle(2)
		r.m.IRQ.DispatchPending(r.m.Rec.Intern(mk.KernelComponent))
	}
	if r.rt.Ticks() < 30 {
		t.Fatalf("only %d ticks delivered", r.rt.Ticks())
	}
	ra, ca, ma := a.Stats()
	if ma != 0 {
		t.Fatalf("audio missed %d deadlines (released %d, completed %d)", ma, ra, ca)
	}
	if ca == 0 || ca < ra-1 {
		t.Fatalf("audio completions lag: %d/%d", ca, ra)
	}
	_, cb, mb := b.Stats()
	if mb != 0 {
		t.Fatalf("video missed %d deadlines", mb)
	}
	if cb == 0 {
		t.Fatal("video never completed")
	}
	if r.rt.TotalMisses() != 0 {
		t.Fatal("admitted set must not miss")
	}
}

func TestRTOverloadMisses(t *testing.T) {
	r := newRTRig(t, 100_000, 0.8)
	// Forced past admission: 1.5 utilisation cannot fit.
	hog := r.rt.ForceAdmit("hog", 1, 150_000)
	for i := 0; i < 30; i++ {
		r.m.Events.RunUntilIdle(2)
		r.m.IRQ.DispatchPending(r.m.Rec.Intern(mk.KernelComponent))
	}
	_, _, misses := hog.Stats()
	if misses == 0 {
		t.Fatal("overloaded task never missed — scheduler is lying")
	}
}

func TestRTEDFOrdering(t *testing.T) {
	// A tight-deadline task admitted next to a slack one completes every
	// period even when both are pending: EDF runs it first.
	r := newRTRig(t, 100_000, 0.8)
	tight, err := r.rt.Admit("tight", 1, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	slack, err := r.rt.Admit("slack", 10, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		r.m.Events.RunUntilIdle(2)
		r.m.IRQ.DispatchPending(r.m.Rec.Intern(mk.KernelComponent))
	}
	if _, _, m := tight.Stats(); m != 0 {
		t.Fatalf("tight task missed %d deadlines under EDF", m)
	}
	if _, c, _ := slack.Stats(); c == 0 {
		t.Fatal("slack task starved")
	}
}

func TestRTCoexistsWithOSServer(t *testing.T) {
	// The DROPS claim: real-time service and the paravirt OS share the
	// machine; syscall load does not break deadlines (the simulation is
	// synchronous, so this checks end-to-end wiring, priorities and
	// accounting rather than preemption physics).
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 1024, IRQLines: 8})
	k := mk.New(m)
	timer := dev.NewTimer(m, 4, 100_000)
	rt, err := NewRTServer(k, 4, 100_000, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	timer.Start()
	task, err := rt.Admit("periodic", 1, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	osrv, err := NewOSServer(k, "linux")
	if err != nil {
		t.Fatal(err)
	}
	p, err := osrv.Spawn("app")
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: bursts of syscalls, then let time advance.
	for round := 0; round < 20; round++ {
		for i := 0; i < 5; i++ {
			if _, err := osrv.Syscall(p.PID, SysGetPID); err != nil {
				t.Fatal(err)
			}
		}
		m.Events.RunUntilIdle(2)
		m.IRQ.DispatchPending(m.Rec.Intern(mk.KernelComponent))
	}
	if rt.Ticks() == 0 {
		t.Fatal("timer never reached the RT server")
	}
	if _, _, misses := task.Stats(); misses != 0 {
		t.Fatalf("RT task missed %d deadlines beside the OS server", misses)
	}
	// The RT server's work is attributed to its own component.
	if m.Rec.Cycles("mk.srv.rt") == 0 {
		t.Fatal("RT work not attributed")
	}
}
