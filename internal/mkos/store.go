package mkos

import (
	"errors"

	"vmmk/internal/mk"
	"vmmk/internal/trace"
)

// StoreServer is the microkernel twin of the Parallax appliance: a
// user-level server providing virtual block devices with copy-on-write
// snapshots to client OS servers, persisting through the disk driver
// server. §3.1's point is precisely that this server and Parallax are the
// same design — "exactly what a user-level server does in a
// microkernel-based system" — so the two implementations mirror each other
// and E4 kills each to compare the wreckage.
type StoreServer struct {
	K      *mk.Kernel
	Space  *mk.Space
	Thread *mk.Thread

	vdisks map[mk.ThreadID]*StoreDisk
	blk    BlockService // write-through persistence; may be nil

	requests uint64
	replyBuf []byte // reused read-reply staging page (kernel clones replies)
}

// ErrNoVDisk is returned for requests from unattached clients.
var ErrNoVDisk = errors.New("mkos: no virtual disk for this client")

// StoreDisk is one client's virtual disk.
type StoreDisk struct {
	blocks   map[uint64][]byte
	snapshot map[uint64][]byte
	persist  uint64
	size     uint64
}

// NewStoreServer boots the storage server in its own protection domain;
// blk (if non-nil) is its persistence path, typically a BlkClient on the
// disk driver.
func NewStoreServer(k *mk.Kernel, blk BlockService) (*StoreServer, error) {
	sp, err := k.NewSpace("srv.store", mk.NilThread)
	if err != nil {
		return nil, err
	}
	return NewStoreServerIn(k, sp, "srv.store", blk)
}

// NewStoreServerIn boots the storage server as a thread named name inside
// an existing space — the consolidated arrangement (storage colocated with
// a driver) whose widened blast radius the E9d ablation measures.
// Decomposed callers should use NewStoreServer.
func NewStoreServerIn(k *mk.Kernel, sp *mk.Space, name string, blk BlockService) (*StoreServer, error) {
	s := &StoreServer{K: k, Space: sp, vdisks: make(map[mk.ThreadID]*StoreDisk), blk: blk}
	s.Thread = k.NewThread(sp, name, 6, s.handle)
	return s, nil
}

// Component returns the server's trace attribution name.
func (s *StoreServer) Component() string { return s.Thread.Component() }

// Comp returns the server's interned trace attribution handle.
func (s *StoreServer) Comp() trace.Comp { return s.Thread.Comp() }

// SetPersistence installs (or replaces) the server's write-through path.
// Pass a BlkClient bound to this server's thread ID.
func (s *StoreServer) SetPersistence(blk BlockService) { s.blk = blk }

// Attach creates a virtual disk of size blocks for a client OS server and
// installs the store as the client's block service.
func (s *StoreServer) Attach(os *OSServer, size uint64) *StoreClient {
	s.vdisks[os.Thread.ID] = &StoreDisk{
		blocks:  make(map[uint64][]byte),
		persist: uint64(len(s.vdisks)) * size,
		size:    size,
	}
	c := &StoreClient{store: s, client: os.Thread.ID}
	os.Blk = c
	return c
}

// handle serves read/write/snapshot requests from clients.
func (s *StoreServer) handle(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) {
	comp := s.Comp()
	vd := s.vdisks[from]
	if vd == nil {
		return mk.Msg{}, ErrNoVDisk
	}
	switch msg.Label {
	case LabelStoreRead:
		if len(msg.Words) < 1 || msg.Words[0] >= vd.size {
			return mk.Msg{}, ErrBadRequest
		}
		s.requests++
		k.M.CPU.Work(comp, 500) // block-map lookup
		block := msg.Words[0]
		data := vd.read(block)
		if data == nil && s.blk != nil {
			// Fall through to the persistent copy.
			var err error
			data, err = s.blk.Read(vd.persist + block)
			if err != nil {
				return mk.Msg{}, err
			}
		}
		// Reply via a reused scratch page: the kernel clones the reply
		// before the client sees it, so the buffer is free again as soon
		// as Call returns.
		if cap(s.replyBuf) < int(k.M.Mem.PageSize()) {
			s.replyBuf = make([]byte, k.M.Mem.PageSize())
		}
		out := s.replyBuf[:k.M.Mem.PageSize()]
		clear(out)
		copy(out, data)
		k.M.CPU.Work(comp, k.M.CPU.CopyCost(uint64(len(out))))
		return mk.Msg{Data: out}, nil
	case LabelStoreWrite:
		if len(msg.Words) < 1 || msg.Words[0] >= vd.size {
			return mk.Msg{}, ErrBadRequest
		}
		s.requests++
		k.M.CPU.Work(comp, 500)
		block := msg.Words[0]
		// The kernel delivered a private clone of the message; its Data
		// is ours to keep as the cached block without another copy.
		data := msg.Data
		vd.blocks[block] = data
		k.M.CPU.Work(comp, k.M.CPU.CopyCost(uint64(len(data))))
		if s.blk != nil {
			if err := s.blk.Write(vd.persist+block, data); err != nil {
				return mk.Msg{}, err
			}
		}
		return mk.Msg{Words: []uint64{0}}, nil
	case LabelStoreSnapshot:
		k.M.CPU.Work(comp, 800)
		if vd.snapshot == nil {
			vd.snapshot = make(map[uint64][]byte)
		}
		n := uint64(len(vd.blocks))
		for b, d := range vd.blocks {
			vd.snapshot[b] = d
		}
		vd.blocks = make(map[uint64][]byte)
		return mk.Msg{Words: []uint64{n}}, nil
	}
	return mk.Msg{}, ErrBadRequest
}

func (vd *StoreDisk) read(block uint64) []byte {
	if b, ok := vd.blocks[block]; ok {
		return b
	}
	if vd.snapshot != nil {
		if b, ok := vd.snapshot[block]; ok {
			return b
		}
	}
	return nil
}

// SnapshotRead returns the frozen view of a client's block (test hook,
// symmetric with Parallax.SnapshotRead).
func (s *StoreServer) SnapshotRead(client mk.ThreadID, block uint64) []byte {
	vd := s.vdisks[client]
	if vd == nil || vd.snapshot == nil {
		return nil
	}
	return vd.snapshot[block]
}

// Requests returns the number of served client requests.
func (s *StoreServer) Requests() uint64 { return s.requests }

// StoreClient adapts the store to BlockService for one client.
type StoreClient struct {
	store  *StoreServer
	client mk.ThreadID
}

// Read fetches a virtual block via IPC.
func (c *StoreClient) Read(block uint64) ([]byte, error) {
	reply, err := c.store.K.Call(c.client, c.store.Thread.ID, mk.Msg{Label: LabelStoreRead, Words: []uint64{block}})
	if err != nil {
		return nil, err
	}
	return reply.Data, nil
}

// Write stores a virtual block via IPC.
func (c *StoreClient) Write(block uint64, data []byte) error {
	_, err := c.store.K.Call(c.client, c.store.Thread.ID, mk.Msg{Label: LabelStoreWrite, Words: []uint64{block}, Data: data})
	return err
}

// Snapshot freezes the client's disk, returning captured block count.
func (c *StoreClient) Snapshot() (uint64, error) {
	reply, err := c.store.K.Call(c.client, c.store.Thread.ID, mk.Msg{Label: LabelStoreSnapshot})
	if err != nil {
		return 0, err
	}
	return reply.Words[0], nil
}

var _ BlockService = (*StoreClient)(nil)
