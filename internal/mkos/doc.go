// Package mkos provides the operating-system personality that runs on the
// mk microkernel: a paravirtualised OS server (L4Linux-like) whose
// processes make system calls by IPC, user-level NIC and disk driver
// servers that receive interrupts as IPC, a storage server with
// copy-on-write snapshots — the microkernel-side twin of package vmmos's
// Parallax appliance, used by the liability-inversion experiment E4 — plus
// a KV server (E10's minimal extension) and shared-memory and real-time
// helpers.
//
// Together with package mk this is "system A" of the paper's comparison.
// Structurally it is the DROPS/L4Linux arrangement §3.3 cites: the OS is
// one server among several, drivers are ordinary user-level threads, and
// every interaction is the one IPC primitive. Package core boots this
// stack as MKStack next to vmmos's XenStack on identical hw machines.
//
// On a multiprocessor, OSServer.Pin re-homes one OS instance (server
// thread plus processes) onto its own CPU — the analogue of placing a
// guest's vCPUs — while the driver servers stay on the boot CPU, so
// syscalls stay CPU-local and guest⇄driver IPC pays the cross-CPU IPI
// surcharge experiment E12 measures.
package mkos
