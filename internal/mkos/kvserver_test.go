package mkos

import (
	"bytes"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/mk"
)

func kvRig(t *testing.T) (*mk.Kernel, *KVServer, *mk.Thread) {
	t.Helper()
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 256})
	k := mk.New(m)
	kv, err := NewKVServer(k)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := k.NewSpace("client", mk.NilThread)
	if err != nil {
		t.Fatal(err)
	}
	client := k.NewThread(cs, "client", 1, nil)
	return k, kv, client
}

func TestKVPutGetDelete(t *testing.T) {
	_, kv, cl := kvRig(t)
	if err := kv.Put(cl.ID, "alpha", []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := kv.Get(cl.ID, "alpha")
	if err != nil || !ok || !bytes.Equal(v, []byte("one")) {
		t.Fatalf("get = %q, %v, %v", v, ok, err)
	}
	if err := kv.Delete(cl.ID, "alpha"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := kv.Get(cl.ID, "alpha"); ok {
		t.Fatal("deleted key found")
	}
	gets, puts := kv.Stats()
	if gets != 1 || puts != 1 {
		t.Fatalf("stats = %d/%d", gets, puts)
	}
}

func TestKVMissingKey(t *testing.T) {
	_, kv, cl := kvRig(t)
	v, ok, err := kv.Get(cl.ID, "ghost")
	if err != nil || ok || v != nil {
		t.Fatalf("missing-key get = %q, %v, %v", v, ok, err)
	}
}

func TestKVOverwrite(t *testing.T) {
	_, kv, cl := kvRig(t)
	kv.Put(cl.ID, "k", []byte("v1"))
	kv.Put(cl.ID, "k", []byte("v2"))
	v, ok, _ := kv.Get(cl.ID, "k")
	if !ok || string(v) != "v2" {
		t.Fatalf("overwrite lost: %q", v)
	}
}

func TestKVValueWithNULBytes(t *testing.T) {
	// The wire format NUL-separates key and value; values may contain
	// NULs (only the first separates).
	_, kv, cl := kvRig(t)
	val := []byte("a\x00b\x00c")
	kv.Put(cl.ID, "bin", val)
	v, ok, _ := kv.Get(cl.ID, "bin")
	if !ok || !bytes.Equal(v, val) {
		t.Fatalf("binary value mangled: %q", v)
	}
}

func TestKVServerDeathConfined(t *testing.T) {
	k, kv, cl := kvRig(t)
	k.KillThread(kv.Thread.ID)
	if err := kv.Put(cl.ID, "x", nil); err == nil {
		t.Fatal("put to dead server succeeded")
	}
	if !k.Alive(cl.ID) {
		t.Fatal("client died with the extension")
	}
}
