package mkos

import (
	"errors"

	"vmmk/internal/hw"
	"vmmk/internal/mk"
)

// Shared memory regions: the classic microkernel pattern of using IPC once
// to establish a shared mapping, then exchanging bulk data with no kernel
// involvement at all. Setup is a map-item IPC (mutual agreement: the owner
// offers, the peer accepts by receiving); teardown is the owner's recursive
// unmap, which revokes the peer's view through the mapping database no
// matter how far it was re-delegated. Liedtke's three IPC purposes, then
// silence — the opposite end of the spectrum from the VMM's per-operation
// grant machinery.

// ErrShmRevoked is returned when touching a region after revocation.
var ErrShmRevoked = errors.New("mkos: shared region was revoked")

// ShmRegion is an owner's handle on a shared region.
type ShmRegion struct {
	K       *mk.Kernel
	Owner   *mk.Space
	BaseVPN hw.VPN
	Pages   int
	frames  []hw.FrameID
	revoked bool
}

// ShmView is a peer's mapped view of a region.
type ShmView struct {
	region  *ShmRegion
	Space   *mk.Space
	BaseVPN hw.VPN
}

// NewShmRegion allocates pages frames in the owner's space at baseVPN.
func NewShmRegion(k *mk.Kernel, owner *mk.Space, baseVPN hw.VPN, pages int) (*ShmRegion, error) {
	frames, err := k.AllocAndMap(owner, baseVPN, pages, hw.PermRW)
	if err != nil {
		return nil, err
	}
	return &ShmRegion{K: k, Owner: owner, BaseVPN: baseVPN, Pages: pages, frames: frames}, nil
}

// Share maps the region into the peer's space at dstVPN with the given
// rights, via one IPC call from the owner thread to the peer thread (the
// peer's handler models its acceptance).
func (r *ShmRegion) Share(from, to mk.ThreadID, peer *mk.Space, dstVPN hw.VPN, perms hw.Perm) (*ShmView, error) {
	if r.revoked {
		return nil, ErrShmRevoked
	}
	_, err := r.K.Call(from, to, mk.Msg{
		Map: []mk.MapItem{{SrcVPN: r.BaseVPN, DstVPN: dstVPN, Count: r.Pages, Perms: perms}},
	})
	if err != nil {
		return nil, err
	}
	return &ShmView{region: r, Space: peer, BaseVPN: dstVPN}, nil
}

// Write stores data into the region at a page offset, through the owner's
// mapping — ordinary memory traffic, no kernel entry.
func (r *ShmRegion) Write(page int, data []byte) error {
	if r.revoked {
		return ErrShmRevoked
	}
	if page < 0 || page >= r.Pages {
		return mk.ErrBadMapping
	}
	copy(r.K.M.Mem.Data(r.frames[page]), data)
	r.K.M.CPU.Work(r.Owner.Comp(), r.K.M.CPU.CopyCost(uint64(len(data))))
	return nil
}

// Read returns the page's contents through the peer's view, after checking
// the view's mapping is still live (a revoked view faults).
func (v *ShmView) Read(page int, n int) ([]byte, error) {
	e, ok := v.Space.PT.Lookup(v.BaseVPN + hw.VPN(page))
	if !ok {
		return nil, ErrShmRevoked
	}
	out := make([]byte, n)
	copy(out, v.region.K.M.Mem.Data(e.Frame))
	v.region.K.M.CPU.Work(v.Space.Comp(), v.region.K.M.CPU.CopyCost(uint64(n)))
	return out, nil
}

// Alive reports whether the view's first page is still mapped.
func (v *ShmView) Alive() bool {
	_, ok := v.Space.PT.Lookup(v.BaseVPN)
	return ok
}

// Revoke withdraws every view of the region, however many times it was
// re-delegated, through the mapping database. The owner keeps its own
// mapping.
func (r *ShmRegion) Revoke() int {
	if r.revoked {
		return 0
	}
	n := 0
	for i := 0; i < r.Pages; i++ {
		n += r.K.UnmapRecursive(r.Owner, r.BaseVPN+hw.VPN(i), false)
	}
	return n
}

// Destroy revokes all views and releases the region's frames.
func (r *ShmRegion) Destroy() {
	if r.revoked {
		return
	}
	r.Revoke()
	for i, f := range r.frames {
		r.K.UnmapPage(r.Owner, r.BaseVPN+hw.VPN(i))
		r.K.M.Mem.Free(f)
	}
	r.revoked = true
}
