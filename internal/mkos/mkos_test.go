package mkos

import (
	"bytes"
	"errors"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/hw/dev"
	"vmmk/internal/mk"
	"vmmk/internal/trace"
)

// mstack is a complete microkernel software stack: kernel, drivers, OS
// server with one process, and the storage server.
type mstack struct {
	m     *hw.Machine
	k     *mk.Kernel
	nic   *dev.NIC
	disk  *dev.Disk
	net   *NetDriver
	blk   *BlkDriver
	store *StoreServer
	os    *OSServer
	proc  *Proc
}

func newMStack(t testing.TB, mode RxMode) *mstack {
	t.Helper()
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 2048, IRQLines: 16})
	k := mk.New(m)
	nic := dev.NewNIC(m, dev.NICConfig{RxIRQ: 1, TxIRQ: 2, RingSize: 64})
	disk := dev.NewDisk(m, dev.DiskConfig{IRQ: 3, Latency: 5000})
	nd, err := NewNetDriver(k, nic)
	if err != nil {
		t.Fatal(err)
	}
	nd.Mode = mode
	bd, err := NewBlkDriver(k, disk)
	if err != nil {
		t.Fatal(err)
	}
	osrv, err := NewOSServer(k, "linux")
	if err != nil {
		t.Fatal(err)
	}
	nd.Attach(osrv)
	store, err := NewStoreServer(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	store.SetPersistence(bd.NewBlkClient(store.Thread.ID, 1024))
	store.Attach(osrv, 256)
	proc, err := osrv.Spawn("app")
	if err != nil {
		t.Fatal(err)
	}
	return &mstack{m: m, k: k, nic: nic, disk: disk, net: nd, blk: bd, store: store, os: osrv, proc: proc}
}

func (s *mstack) pump() { s.k.PumpIO(64) }

func (s *mstack) inject(size int) {
	s.nic.Inject(make([]byte, size))
	s.m.IRQ.DispatchPending(s.m.Rec.Intern(mk.KernelComponent))
}

func TestSyscallGetPID(t *testing.T) {
	s := newMStack(t, RxGrant)
	ret, err := s.os.Syscall(s.proc.PID, SysGetPID)
	if err != nil {
		t.Fatal(err)
	}
	if PID(ret[0]) != s.proc.PID {
		t.Fatalf("getpid = %d, want %d", ret[0], s.proc.PID)
	}
	// The syscall was exactly one IPC call.
	calls, _, _ := s.k.Stats()
	if calls == 0 {
		t.Fatal("syscall did not go through IPC")
	}
}

func TestSyscallUnknownIsENOSYS(t *testing.T) {
	s := newMStack(t, RxGrant)
	ret, err := s.os.Syscall(s.proc.PID, 999)
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != ^uint64(0) {
		t.Fatal("unknown syscall should return ENOSYS marker")
	}
}

func TestSyscallBadProcess(t *testing.T) {
	s := newMStack(t, RxGrant)
	if _, err := s.os.Syscall(999, SysGetPID); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("err = %v, want ErrNoSuchProcess", err)
	}
}

func TestConsoleWrite(t *testing.T) {
	s := newMStack(t, RxGrant)
	for _, b := range []byte("ok") {
		if _, err := s.os.Syscall(s.proc.PID, SysWrite, uint64(b)); err != nil {
			t.Fatal(err)
		}
	}
	if string(s.os.Console()) != "ok" {
		t.Fatalf("console = %q", s.os.Console())
	}
}

func TestProcessPageFaultPagedByOS(t *testing.T) {
	s := newMStack(t, RxGrant)
	// Touch an unmapped page in the process: the OS server is its pager.
	if _, err := s.k.Touch(s.proc.Thread.ID, 0x77, hw.PermW); err != nil {
		t.Fatal(err)
	}
	if s.m.Rec.Counts(trace.KPagerFault) != 1 {
		t.Fatal("fault did not go through the pager protocol")
	}
	if _, ok := s.proc.Space.PT.Lookup(0x77); !ok {
		t.Fatal("mapping not installed")
	}
}

func TestNetRxGrantEndToEnd(t *testing.T) {
	s := newMStack(t, RxGrant)
	s.inject(1500)
	s.pump()
	if s.os.PendingRx() != 1 {
		t.Fatalf("pending = %d, want 1", s.os.PendingRx())
	}
	ret, err := s.os.Syscall(s.proc.PID, SysNetRecv)
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != 1500 {
		t.Fatalf("recv len = %d, want 1500", ret[0])
	}
	if s.m.Rec.Counts(trace.KIPCMapTransfer) == 0 {
		t.Fatal("grant mode must use map transfer")
	}
	if s.proc.RxDelivered() != 1 {
		t.Fatal("delivery count wrong")
	}
}

func TestNetRxCopyEndToEnd(t *testing.T) {
	s := newMStack(t, RxStringCopy)
	maps0 := s.m.Rec.Counts(trace.KIPCMapTransfer)
	s.inject(800)
	s.pump()
	if s.os.PendingRx() != 1 {
		t.Fatalf("pending = %d, want 1", s.os.PendingRx())
	}
	if s.m.Rec.Counts(trace.KIPCMapTransfer) != maps0 {
		t.Fatal("copy mode must not map-transfer")
	}
	if s.m.Rec.Counts(trace.KIPCStringTransfer) == 0 {
		t.Fatal("copy mode must string-transfer")
	}
}

func TestNetRxBurstConservesMemory(t *testing.T) {
	s := newMStack(t, RxGrant)
	free0 := s.m.Mem.FreeFrames()
	for i := 0; i < 50; i++ {
		s.inject(100)
		s.pump()
	}
	for s.os.PendingRx() > 0 {
		if _, err := s.os.Syscall(s.proc.PID, SysNetRecv); err != nil {
			t.Fatal(err)
		}
	}
	free1 := s.m.Mem.FreeFrames()
	if free0-free1 > 40 {
		t.Fatalf("frame leak: free %d -> %d", free0, free1)
	}
}

func TestNetTxEndToEnd(t *testing.T) {
	s := newMStack(t, RxGrant)
	ret, err := s.os.Syscall(s.proc.PID, SysNetSend, 900)
	if err != nil {
		t.Fatal(err)
	}
	if ret[0] != 900 {
		t.Fatalf("send returned %d", ret[0])
	}
	s.pump()
	pkts := s.nic.Transmitted()
	if len(pkts) != 1 || len(pkts[0].Data) != 900 {
		t.Fatalf("wire saw %v packets", len(pkts))
	}
	_, tx := s.net.Stats()
	if tx != 1 {
		t.Fatalf("driver tx = %d, want 1", tx)
	}
}

func TestNetSendToDeadDriverFails(t *testing.T) {
	s := newMStack(t, RxGrant)
	s.k.KillThread(s.net.Thread.ID)
	if err := s.os.Net.Send([]byte("x")); !errors.Is(err, mk.ErrDeadPartner) {
		t.Fatalf("err = %v, want ErrDeadPartner", err)
	}
	// OS server survives; only the network service is gone.
	if !s.k.Alive(s.os.Thread.ID) {
		t.Fatal("OS server died with the driver")
	}
}

func TestBlkDriverDirectReadWrite(t *testing.T) {
	s := newMStack(t, RxGrant)
	osClient := s.blk.NewBlkClient(s.os.Thread.ID, 128)
	want := []byte("mk-block-data")
	if err := osClient.Write(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := osClient.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(want)], want) {
		t.Fatalf("read %q, want %q", got[:len(want)], want)
	}
	if s.blk.Served() < 2 {
		t.Fatalf("driver served %d", s.blk.Served())
	}
}

func TestBlkPartitionIsolation(t *testing.T) {
	s := newMStack(t, RxGrant)
	os2, err := NewOSServer(s.k, "linux2")
	if err != nil {
		t.Fatal(err)
	}
	c1 := s.blk.NewBlkClient(s.os.Thread.ID, 64)
	c2 := s.blk.NewBlkClient(os2.Thread.ID, 64)
	if err := c1.Write(0, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := c2.Write(0, []byte("two")); err != nil {
		t.Fatal(err)
	}
	g1, _ := c1.Read(0)
	g2, _ := c2.Read(0)
	if string(g1[:3]) != "one" || string(g2[:3]) != "two" {
		t.Fatal("partition isolation broken")
	}
}

func TestBlkOutOfRange(t *testing.T) {
	s := newMStack(t, RxGrant)
	c := s.blk.NewBlkClient(s.os.Thread.ID, 16)
	if _, err := c.Read(16); err == nil {
		t.Fatal("out-of-partition read must fail")
	}
}

func TestStoreServesViaSyscall(t *testing.T) {
	s := newMStack(t, RxGrant)
	ret, err := s.os.Syscall(s.proc.PID, SysBlockWrite, 5)
	if err != nil || ret[0] != 0 {
		t.Fatalf("block write failed: %v %v", ret, err)
	}
	ret, err = s.os.Syscall(s.proc.PID, SysBlockRead, 5)
	if err != nil || ret[0] != 0 {
		t.Fatalf("block read failed: %v %v", ret, err)
	}
	if s.store.Requests() != 2 {
		t.Fatalf("store served %d, want 2", s.store.Requests())
	}
}

func TestStoreCopyOnWriteSnapshot(t *testing.T) {
	s := newMStack(t, RxGrant)
	client := s.os.Blk.(*StoreClient)
	if err := client.Write(1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	n, err := client.Snapshot()
	if err != nil || n != 1 {
		t.Fatalf("snapshot captured %d, err %v", n, err)
	}
	if err := client.Write(1, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := client.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:2]) != "v2" {
		t.Fatal("live view missing post-snapshot write")
	}
	if snap := s.store.SnapshotRead(s.os.Thread.ID, 1); string(snap[:2]) != "v1" {
		t.Fatal("snapshot lost pre-snapshot data")
	}
}

func TestStoreReadThroughPersistence(t *testing.T) {
	s := newMStack(t, RxGrant)
	client := s.os.Blk.(*StoreClient)
	if err := client.Write(9, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	// Clear the in-memory cache to force read-through from the disk
	// driver (simulating a store restart with warm persistence).
	s.store.vdisks[s.os.Thread.ID].blocks = make(map[uint64][]byte)
	got, err := client.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:7]) != "durable" {
		t.Fatalf("read-through returned %q", got[:7])
	}
}

func TestStoreDeathBlastRadius(t *testing.T) {
	// E4's microkernel half: kill the storage server; its clients lose
	// storage, the kernel and other servers are unaffected. Identical in
	// structure to Parallax's failure on the VMM side.
	s := newMStack(t, RxGrant)
	client := s.os.Blk.(*StoreClient)
	if err := client.Write(1, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	s.k.KillThread(s.store.Thread.ID)

	if err := client.Write(2, []byte("post")); !errors.Is(err, mk.ErrDeadPartner) {
		t.Fatalf("err = %v, want ErrDeadPartner", err)
	}
	if !s.k.Alive(s.os.Thread.ID) || !s.k.Alive(s.proc.Thread.ID) {
		t.Fatal("client killed by server death")
	}
	// Unrelated services still work.
	if _, err := s.os.Syscall(s.proc.PID, SysGetPID); err != nil {
		t.Fatalf("kernel/OS path broken: %v", err)
	}
	direct := s.blk.NewBlkClient(s.os.Thread.ID, 32)
	if err := direct.Write(0, []byte("ok")); err != nil {
		t.Fatalf("disk driver broken by store death: %v", err)
	}
}

func TestStoreInDriverSpaceConsolidated(t *testing.T) {
	// The mk-side super-server: storage colocated with the disk driver.
	// It works — and dies with the driver, unlike the decomposed layout.
	s := newMStack(t, RxGrant)
	colo, err := NewStoreServerIn(s.k, s.blk.Space, "srv.blk.store", nil)
	if err != nil {
		t.Fatal(err)
	}
	os2, _ := NewOSServer(s.k, "linux2")
	client := colo.Attach(os2, 64)
	if err := client.Write(1, []byte("colo")); err != nil {
		t.Fatal(err)
	}
	s.k.KillSpace(s.blk.Space)
	if err := client.Write(2, []byte("x")); err == nil {
		t.Fatal("colocated store survived its host space's death")
	}
	// The decomposed store (in its own space) is untouched.
	if !s.k.Alive(s.store.Thread.ID) {
		t.Fatal("separate store harmed by driver-space death")
	}
}

func TestStoreUnattachedClientRejected(t *testing.T) {
	s := newMStack(t, RxGrant)
	os2, _ := NewOSServer(s.k, "intruder")
	_, err := s.k.Call(os2.Thread.ID, s.store.Thread.ID, mk.Msg{Label: LabelStoreRead, Words: []uint64{0}})
	if !errors.Is(err, ErrNoVDisk) {
		t.Fatalf("err = %v, want ErrNoVDisk", err)
	}
}

func TestRxDemuxToMultipleOSServers(t *testing.T) {
	s := newMStack(t, RxGrant)
	os2, _ := NewOSServer(s.k, "linux2")
	s.net.Attach(os2)
	s.nic.Inject([]byte{0, 0})
	s.nic.Inject([]byte{1, 0})
	s.nic.Inject([]byte{1, 0})
	s.m.IRQ.DispatchPending(s.m.Rec.Intern(mk.KernelComponent))
	s.pump()
	if s.os.PendingRx() != 1 {
		t.Fatalf("os1 pending = %d, want 1", s.os.PendingRx())
	}
	if os2.PendingRx() != 2 {
		t.Fatalf("os2 pending = %d, want 2", os2.PendingRx())
	}
}

func TestRxToDeadOSServerDropped(t *testing.T) {
	s := newMStack(t, RxGrant)
	s.k.KillThread(s.os.Thread.ID)
	s.inject(64)
	s.pump()
	rx, _ := s.net.Stats()
	if rx != 1 {
		t.Fatalf("driver handled %d, want 1 (dropped)", rx)
	}
	if !s.k.Alive(s.net.Thread.ID) {
		t.Fatal("driver harmed by dead client")
	}
}

func TestGrantVsCopyCPUProportionality(t *testing.T) {
	// Mini-E1, microkernel side: grant-mode per-packet cost is nearly
	// flat in packet size; string-copy mode grows with size.
	perPacket := func(mode RxMode, size int) uint64 {
		s := newMStack(t, mode)
		total := func() uint64 { return s.m.Rec.TotalCycles() }
		before := total()
		for i := 0; i < 20; i++ {
			s.inject(size)
			s.pump()
		}
		return (total() - before) / 20
	}
	grantSmall := perPacket(RxGrant, 64)
	grantBig := perPacket(RxGrant, 4096)
	copySmall := perPacket(RxStringCopy, 64)
	copyBig := perPacket(RxStringCopy, 4096)
	// Note: the driver itself copies payload for the descriptor in both
	// modes, so "flat" here is looser than on the VMM side; the claim is
	// only that copy mode grows strictly faster.
	growGrant := float64(grantBig) / float64(grantSmall)
	growCopy := float64(copyBig) / float64(copySmall)
	if growCopy <= growGrant {
		t.Fatalf("copy growth (%.2f) should exceed grant growth (%.2f)", growCopy, growGrant)
	}
}

func TestCrossArchStackBoots(t *testing.T) {
	// The whole personality stack is arch-independent: boot it on all
	// nine platforms unchanged and run a syscall + a packet through it.
	for _, arch := range hw.AllArchs() {
		arch := arch
		t.Run(arch.Name, func(t *testing.T) {
			m := hw.NewMachine(arch, &hw.MachineConfig{Frames: 1024, IRQLines: 16})
			k := mk.New(m)
			nic := dev.NewNIC(m, dev.NICConfig{RxIRQ: 1, TxIRQ: 2})
			nd, err := NewNetDriver(k, nic)
			if err != nil {
				t.Fatal(err)
			}
			osrv, err := NewOSServer(k, "linux")
			if err != nil {
				t.Fatal(err)
			}
			nd.Attach(osrv)
			p, err := osrv.Spawn("app")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := osrv.Syscall(p.PID, SysGetPID); err != nil {
				t.Fatal(err)
			}
			nic.Inject(make([]byte, 256))
			m.IRQ.DispatchPending(m.Rec.Intern(mk.KernelComponent))
			k.PumpIO(16)
			if osrv.PendingRx() != 1 {
				t.Fatal("packet lost")
			}
		})
	}
}
