package mkos

import (
	"errors"
	"testing"

	"vmmk/internal/hw"
	"vmmk/internal/mk"
	"vmmk/internal/trace"
)

type shmRig struct {
	m       *hw.Machine
	k       *mk.Kernel
	a, b, c *mk.Space
	at, bt  *mk.Thread
	ct      *mk.Thread
}

func newShmRig(t *testing.T) *shmRig {
	t.Helper()
	m := hw.NewMachine(hw.X86(), &hw.MachineConfig{Frames: 128})
	k := mk.New(m)
	accept := func(k *mk.Kernel, from mk.ThreadID, msg mk.Msg) (mk.Msg, error) { return mk.Msg{}, nil }
	a, _ := k.NewSpace("a", mk.NilThread)
	b, _ := k.NewSpace("b", mk.NilThread)
	c, _ := k.NewSpace("c", mk.NilThread)
	return &shmRig{
		m: m, k: k, a: a, b: b, c: c,
		at: k.NewThread(a, "a", 1, accept),
		bt: k.NewThread(b, "b", 1, accept),
		ct: k.NewThread(c, "c", 1, accept),
	}
}

func TestShmSetupOnceThenKernelFreeTransfer(t *testing.T) {
	r := newShmRig(t)
	region, err := NewShmRegion(r.k, r.a, 0x100, 2)
	if err != nil {
		t.Fatal(err)
	}
	view, err := region.Share(r.at.ID, r.bt.ID, r.b, 0x200, hw.PermR)
	if err != nil {
		t.Fatal(err)
	}
	// Setup used IPC; the transfers below must not.
	snap := r.m.Rec.Snapshot()
	if err := region.Write(0, []byte("zero-kernel-cost data")); err != nil {
		t.Fatal(err)
	}
	got, err := view.Read(0, 21)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "zero-kernel-cost data" {
		t.Fatalf("read %q", got)
	}
	if r.m.Rec.IPCEquivalentSince(snap) != 0 {
		t.Fatal("post-setup transfer used kernel-mediated operations")
	}
	if r.m.Rec.CountsSince(snap, trace.KTrap) != 0 {
		t.Fatal("post-setup transfer entered the kernel")
	}
}

func TestShmSecondPage(t *testing.T) {
	r := newShmRig(t)
	region, _ := NewShmRegion(r.k, r.a, 0x100, 2)
	view, err := region.Share(r.at.ID, r.bt.ID, r.b, 0x200, hw.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	region.Write(1, []byte("page-two"))
	got, _ := view.Read(1, 8)
	if string(got) != "page-two" {
		t.Fatalf("read %q", got)
	}
	if err := region.Write(5, nil); !errors.Is(err, mk.ErrBadMapping) {
		t.Fatal("out-of-region write accepted")
	}
}

func TestShmRevokeCutsAllViews(t *testing.T) {
	r := newShmRig(t)
	region, _ := NewShmRegion(r.k, r.a, 0x100, 1)
	viewB, err := region.Share(r.at.ID, r.bt.ID, r.b, 0x200, hw.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	// B re-delegates to C — the owner doesn't even know.
	_, err = r.k.Call(r.bt.ID, r.ct.ID, mk.Msg{
		Map: []mk.MapItem{{SrcVPN: 0x200, DstVPN: 0x300, Count: 1, Perms: hw.PermR}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.c.PT.Lookup(0x300); !ok {
		t.Fatal("re-delegation failed")
	}

	// Revocation reaches both B and C through the mapping database.
	if n := region.Revoke(); n != 2 {
		t.Fatalf("revoked %d mappings, want 2", n)
	}
	if viewB.Alive() {
		t.Fatal("B's view survived revocation")
	}
	if _, ok := r.c.PT.Lookup(0x300); ok {
		t.Fatal("C's re-delegated view survived revocation")
	}
	if _, err := viewB.Read(0, 1); !errors.Is(err, ErrShmRevoked) {
		t.Fatalf("read after revoke: %v", err)
	}
	// The owner still has it.
	if err := region.Write(0, []byte("mine")); err != nil {
		t.Fatal("owner lost its own region")
	}
}

func TestShmDestroyFreesFrames(t *testing.T) {
	r := newShmRig(t)
	free0 := r.m.Mem.FreeFrames()
	region, _ := NewShmRegion(r.k, r.a, 0x100, 3)
	region.Share(r.at.ID, r.bt.ID, r.b, 0x200, hw.PermR)
	region.Destroy()
	if r.m.Mem.FreeFrames() != free0 {
		t.Fatalf("destroy leaked frames: %d -> %d", free0, r.m.Mem.FreeFrames())
	}
	if err := region.Write(0, nil); !errors.Is(err, ErrShmRevoked) {
		t.Fatal("write to destroyed region accepted")
	}
	region.Destroy() // idempotent
}

func TestShmShareAfterRevokeFails(t *testing.T) {
	r := newShmRig(t)
	region, _ := NewShmRegion(r.k, r.a, 0x100, 1)
	region.Destroy()
	if _, err := region.Share(r.at.ID, r.bt.ID, r.b, 0x200, hw.PermR); !errors.Is(err, ErrShmRevoked) {
		t.Fatalf("share after destroy: %v", err)
	}
}
